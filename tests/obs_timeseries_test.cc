// TimeSeriesStore: ring retention, windowed counter rates, histogram-delta
// percentiles (including the process-restart clamp), gauge window queries,
// the /history JSON document, and the background sampler lifecycle.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"

namespace ucad::obs {
namespace {

// ---------- HistogramDelta ----------

TEST(HistogramDeltaTest, SubtractsAndInterpolatesPercentiles) {
  const std::vector<double> bounds = {1.0, 5.0, 10.0};
  HistogramPoint earlier;
  earlier.count = 2;
  earlier.sum = 1.0;
  earlier.buckets = {2, 0, 0, 0};
  HistogramPoint later;
  later.count = 6;
  later.sum = 9.0;
  later.buckets = {4, 2, 0, 0};
  const WindowedHistogram w = HistogramDelta(later, earlier, bounds);
  EXPECT_EQ(w.count, 4u);
  EXPECT_DOUBLE_EQ(w.sum, 8.0);
  // Delta buckets are [2,2,0,0] over 4 observations. p50's rank-2 target
  // lands exactly at the top of the first bucket (upper bound 1); p99's
  // rank 3.96 interpolates 98% into the (1,5] bucket.
  EXPECT_DOUBLE_EQ(w.p50, 1.0);
  EXPECT_NEAR(w.p99, 1.0 + 4.0 * 0.98, 1e-12);
}

TEST(HistogramDeltaTest, OverflowBucketPinsToLastBound) {
  const std::vector<double> bounds = {1.0, 5.0};
  HistogramPoint earlier;  // empty
  HistogramPoint later;
  later.count = 3;
  later.sum = 300.0;
  later.buckets = {0, 0, 3};  // everything in +inf
  const WindowedHistogram w = HistogramDelta(later, earlier, bounds);
  EXPECT_EQ(w.count, 3u);
  EXPECT_DOUBLE_EQ(w.p50, 5.0);
  EXPECT_DOUBLE_EQ(w.p99, 5.0);
}

TEST(HistogramDeltaTest, RestartClampsWholeDeltaToEmpty) {
  // The later snapshot carries FEWER total observations than the earlier
  // one: the producing process restarted, so the baseline describes a dead
  // counter stream. The delta must clamp to empty — never underflow.
  const std::vector<double> bounds = {1.0, 5.0};
  HistogramPoint earlier;
  earlier.count = 10;
  earlier.sum = 50.0;
  earlier.buckets = {5, 5, 0};
  HistogramPoint later;
  later.count = 3;
  later.sum = 4.0;
  later.buckets = {3, 0, 0};
  const WindowedHistogram w = HistogramDelta(later, earlier, bounds);
  EXPECT_EQ(w.count, 0u);
  EXPECT_DOUBLE_EQ(w.sum, 0.0);
  EXPECT_DOUBLE_EQ(w.p50, 0.0);
  EXPECT_DOUBLE_EQ(w.p99, 0.0);
}

TEST(HistogramDeltaTest, PerBucketUnderflowClampsToZero) {
  // Total count grew but one bucket read torn (relaxed atomics): the torn
  // bucket clamps to zero instead of wrapping to 2^64.
  const std::vector<double> bounds = {1.0};
  HistogramPoint earlier;
  earlier.count = 4;
  earlier.buckets = {4, 0};
  HistogramPoint later;
  later.count = 6;
  later.buckets = {3, 3};  // first bucket "shrank"
  const WindowedHistogram w = HistogramDelta(later, earlier, bounds);
  EXPECT_EQ(w.count, 2u);
  EXPECT_DOUBLE_EQ(w.p50, 1.0);  // all visible delta mass in overflow
}

// ---------- Sampling and ring retention ----------

TEST(TimeSeriesStoreTest, RingEvictsOldestPastCapacity) {
  MetricsRegistry registry;
  registry.GetCounter("a/ticks_total");
  TimeSeriesOptions options;
  options.capacity = 3;
  TimeSeriesStore store(&registry, options);
  for (int i = 1; i <= 5; ++i) {
    store.Sample(1000 * i);
  }
  EXPECT_EQ(store.TickCount(), 3u);
  EXPECT_EQ(store.LatestTickMs(), 5000);
  // The JSON view confirms the oldest two ticks were evicted.
  auto doc = ParseJson(store.HistoryJson());
  ASSERT_TRUE(doc.ok());
  const JsonValue* ticks = doc->Find("ticks");
  ASSERT_NE(ticks, nullptr);
  ASSERT_EQ(ticks->array.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks->array[0].number, 3000.0);
  EXPECT_DOUBLE_EQ(ticks->array[2].number, 5000.0);
}

TEST(TimeSeriesStoreTest, CounterRateOverTrailingWindow) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("req/served_total");
  TimeSeriesStore store(&registry);
  c->Increment(10);
  store.Sample(1000);
  c->Increment(30);
  store.Sample(4000);
  double rate = 0.0;
  // 30 new observations over 3 seconds.
  ASSERT_TRUE(store.CounterRate("req/served_total", 10'000, &rate));
  EXPECT_DOUBLE_EQ(rate, 10.0);
  // A window too short to span two ticks has no rate to report.
  EXPECT_FALSE(store.CounterRate("req/served_total", 1, &rate));
  // Unknown series and wrong-type lookups answer false.
  EXPECT_FALSE(store.CounterRate("req/unknown_total", 10'000, &rate));
}

TEST(TimeSeriesStoreTest, WindowClampsToRetainedHistory) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("req/served_total");
  TimeSeriesStore store(&registry);
  store.Sample(1000);
  c->Increment(6);
  store.Sample(4000);
  double rate = 0.0;
  // The window is far longer than the history: it clamps to what exists.
  ASSERT_TRUE(store.CounterRate("req/served_total", 3'600'000, &rate));
  EXPECT_DOUBLE_EQ(rate, 2.0);
}

TEST(TimeSeriesStoreTest, HistogramWindowPercentiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("req/latency_ms", {}, {1.0, 5.0, 10.0});
  TimeSeriesStore store(&registry);
  h->Observe(0.5);
  store.Sample(1000);
  h->Observe(4.0);
  h->Observe(4.5);
  h->Observe(100.0);
  store.Sample(2000);
  WindowedHistogram w;
  ASSERT_TRUE(store.HistogramWindow("req/latency_ms", 10'000, &w));
  // Only the 3 observations between the ticks count; the pre-window 0.5
  // must not show up in the delta.
  EXPECT_EQ(w.count, 3u);
  EXPECT_GT(w.p50, 1.0);
  EXPECT_LE(w.p50, 5.0);
  EXPECT_DOUBLE_EQ(w.p99, 10.0);  // overflow pinned to the last bound
  EXPECT_FALSE(store.HistogramWindow("req/latency_ms", 1, &w));
}

TEST(TimeSeriesStoreTest, GaugeLatestMaxMin) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("detector/drift/psi");
  TimeSeriesStore store(&registry);
  double v = 0.0;
  EXPECT_FALSE(store.GaugeLatest("detector/drift/psi", &v));
  g->Set(0.1);
  store.Sample(1000);
  g->Set(0.4);
  store.Sample(2000);
  g->Set(0.2);
  store.Sample(3000);
  ASSERT_TRUE(store.GaugeLatest("detector/drift/psi", &v));
  EXPECT_DOUBLE_EQ(v, 0.2);
  ASSERT_TRUE(store.GaugeMax("detector/drift/psi", 10'000, &v));
  EXPECT_DOUBLE_EQ(v, 0.4);
  ASSERT_TRUE(store.GaugeMin("detector/drift/psi", 10'000, &v));
  EXPECT_DOUBLE_EQ(v, 0.1);
  // A window covering only the newest tick sees only its value.
  ASSERT_TRUE(store.GaugeMax("detector/drift/psi", 500, &v));
  EXPECT_DOUBLE_EQ(v, 0.2);
}

// ---------- /history JSON ----------

TEST(TimeSeriesStoreTest, HistoryJsonRatesReconcileWithCumulativeValues) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("req/served_total");
  TimeSeriesStore store(&registry);
  store.Sample(1000);
  c->Increment(4);
  store.Sample(3000);
  c->Increment(10);
  store.Sample(4000);
  auto doc = ParseJson(store.HistoryJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* series = doc->Find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->array.size(), 1u);
  const JsonValue& counter = series->array[0];
  EXPECT_EQ(counter.Find("series")->string_value, "req/served_total");
  EXPECT_EQ(counter.Find("type")->string_value, "counter");
  const JsonValue* values = counter.Find("values");
  const JsonValue* rates = counter.Find("rates");
  ASSERT_NE(values, nullptr);
  ASSERT_NE(rates, nullptr);
  ASSERT_EQ(values->array.size(), 3u);
  ASSERT_EQ(rates->array.size(), 3u);
  EXPECT_DOUBLE_EQ(values->array[0].number, 0.0);
  EXPECT_DOUBLE_EQ(values->array[1].number, 4.0);
  EXPECT_DOUBLE_EQ(values->array[2].number, 14.0);
  // rate[i] must equal (values[i] - values[i-1]) / elapsed seconds — the
  // windowed series and the cumulative series describe the same events.
  EXPECT_DOUBLE_EQ(rates->array[0].number, 0.0);
  EXPECT_DOUBLE_EQ(rates->array[1].number, 4.0 / 2.0);
  EXPECT_DOUBLE_EQ(rates->array[2].number, 10.0 / 1.0);
}

TEST(TimeSeriesStoreTest, HistoryJsonHistogramWindowCountsReconcile) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("req/latency_ms", {}, {1.0, 10.0});
  TimeSeriesStore store(&registry);
  h->Observe(0.5);
  store.Sample(1000);
  h->Observe(5.0);
  h->Observe(6.0);
  store.Sample(2000);
  auto doc = ParseJson(store.HistoryJson());
  ASSERT_TRUE(doc.ok());
  const JsonValue& hist = doc->Find("series")->array[0];
  EXPECT_EQ(hist.Find("type")->string_value, "histogram");
  const JsonValue* counts = hist.Find("counts");
  const JsonValue* window_counts = hist.Find("window_counts");
  const JsonValue* p99 = hist.Find("p99");
  ASSERT_NE(counts, nullptr);
  ASSERT_NE(window_counts, nullptr);
  ASSERT_NE(p99, nullptr);
  EXPECT_DOUBLE_EQ(counts->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(counts->array[1].number, 3.0);
  // Per-tick delta equals the difference of adjacent cumulative counts.
  EXPECT_DOUBLE_EQ(window_counts->array[0].number, 0.0);
  EXPECT_DOUBLE_EQ(window_counts->array[1].number, 2.0);
  EXPECT_GT(p99->array[1].number, 1.0);
}

TEST(TimeSeriesStoreTest, HistoryJsonTicksLimitAndPrefixFilter) {
  MetricsRegistry registry;
  registry.GetCounter("canary/probes_total")->Increment();
  registry.GetCounter("detector/sessions_total")->Increment();
  TimeSeriesStore store(&registry);
  store.Sample(1000);
  store.Sample(2000);
  store.Sample(3000);
  auto doc = ParseJson(store.HistoryJson(2, "canary/"));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("ticks")->array.size(), 2u);
  const JsonValue* series = doc->Find("series");
  ASSERT_EQ(series->array.size(), 1u);
  EXPECT_EQ(series->array[0].Find("series")->string_value,
            "canary/probes_total");
  // Arrays parallel the limited tick view.
  EXPECT_EQ(series->array[0].Find("values")->array.size(), 2u);
}

TEST(TimeSeriesStoreTest, HistoryJsonLabeledSeriesUseSnapshotKeyFormat) {
  MetricsRegistry registry;
  registry.GetCounter("canary/probes_total", {{"class", "normal"}})
      ->Increment();
  TimeSeriesStore store(&registry);
  store.Sample(1000);
  const std::string json = store.HistoryJson();
  // Same "name{k=v}" rendering as snapshot.cc, so /history series line up
  // with snapshot/bench tooling.
  EXPECT_NE(json.find("canary/probes_total{class=normal}"),
            std::string::npos)
      << json;
}

// ---------- Background sampler ----------

TEST(TimeSeriesStoreTest, SamplerThreadTicksAndStops) {
  MetricsRegistry registry;
  registry.GetCounter("a/ticks_total");
  TimeSeriesOptions options;
  options.interval_ms = 2;
  TimeSeriesStore store(&registry, options);
  EXPECT_FALSE(store.sampling());
  std::atomic<int> callbacks{0};
  store.Start([&callbacks](int64_t stamp) {
    EXPECT_GT(stamp, 0);
    callbacks.fetch_add(1);
  });
  EXPECT_TRUE(store.sampling());
  store.Start();  // no-op while running
  for (int i = 0; i < 500 && store.TickCount() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(store.TickCount(), 3u);
  EXPECT_GE(callbacks.load(), 3);
  store.Stop();
  store.Stop();  // idempotent
  EXPECT_FALSE(store.sampling());
  const size_t after_stop = store.TickCount();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(store.TickCount(), after_stop);
}

}  // namespace
}  // namespace ucad::obs
