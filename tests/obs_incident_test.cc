// Incident aggregator: folding attributed verdicts into signature-keyed
// incidents, the open/total split, metric export, and the triage table.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/audit_log.h"
#include "obs/explain.h"
#include "obs/incident.h"
#include "obs/metrics.h"

namespace ucad::obs {
namespace {

AuditRecord AbnormalRecord(const std::string& session, int position,
                           const std::string& offending,
                           const std::vector<std::string>& context,
                           int rank, int64_t wall_ms) {
  AuditRecord r;
  r.session_id = session;
  r.position = position;
  r.key = 7;
  r.observed = offending;
  r.rank = rank;
  r.score = -1.0f;
  r.abnormal = true;
  r.wall_ms = wall_ms;
  for (size_t i = 0; i < context.size(); ++i) {
    ExplainContribution c;
    c.position = static_cast<int>(i);
    c.key = static_cast<int>(i) + 1;
    c.tmpl = context[i];
    c.attention = 1.0f / static_cast<float>(context.size());
    c.cf_rank = 1;
    r.explain.contributions.push_back(c);
  }
  r.explain.signature = IncidentSignature(offending, context);
  r.has_explain = true;
  return r;
}

TEST(IncidentAggregatorTest, FoldsSameSignatureIntoOneIncident) {
  IncidentAggregator aggregator;
  const std::vector<std::string> context = {"A", "B"};
  EXPECT_TRUE(aggregator.Observe(
      AbnormalRecord("s1", 4, "DROP TABLE t", context, 40, 1000)));
  EXPECT_TRUE(aggregator.Observe(
      AbnormalRecord("s2", 9, "DROP TABLE t", context, 90, 2000)));
  EXPECT_TRUE(aggregator.Observe(
      AbnormalRecord("s3", 2, "DROP TABLE t", context, 10, 3000)));
  EXPECT_EQ(aggregator.IncidentsTotal(), 1u);
  EXPECT_EQ(aggregator.VerdictsTotal(), 3u);
  const std::vector<Incident> incidents = aggregator.Snapshot();
  ASSERT_EQ(incidents.size(), 1u);
  const Incident& incident = incidents[0];
  EXPECT_EQ(incident.signature, IncidentSignature("DROP TABLE t", context));
  EXPECT_EQ(incident.offending, "DROP TABLE t");
  EXPECT_EQ(incident.count, 3u);
  EXPECT_EQ(incident.first_seen_ms, 1000);
  EXPECT_EQ(incident.last_seen_ms, 3000);
  // Worst verdict (highest rank) supplies the exemplar.
  EXPECT_EQ(incident.worst_rank, 90);
  EXPECT_EQ(incident.exemplar_session, "s2");
  EXPECT_EQ(incident.exemplar_position, 9);
  EXPECT_EQ(incident.context, (std::vector<std::string>{"A", "B"}));
}

TEST(IncidentAggregatorTest, ContextOrderJitterDoesNotSplitIncidents) {
  // The same offending template against the same context set must fold
  // into one incident even when per-window attention ordering differs.
  IncidentAggregator aggregator;
  aggregator.Observe(
      AbnormalRecord("s1", 1, "DELETE FROM t", {"A", "B", "C"}, 5, 1));
  aggregator.Observe(
      AbnormalRecord("s2", 1, "DELETE FROM t", {"C", "B", "A"}, 5, 2));
  EXPECT_EQ(aggregator.IncidentsTotal(), 1u);
  // A different context set is a different incident.
  aggregator.Observe(
      AbnormalRecord("s3", 1, "DELETE FROM t", {"A", "B"}, 5, 3));
  EXPECT_EQ(aggregator.IncidentsTotal(), 2u);
}

TEST(IncidentAggregatorTest, IgnoresNormalAndUnattributedRecords) {
  IncidentAggregator aggregator;
  AuditRecord normal = AbnormalRecord("s1", 1, "X", {"A"}, 1, 1);
  normal.abnormal = false;
  EXPECT_FALSE(aggregator.Observe(normal));
  AuditRecord unattributed = AbnormalRecord("s1", 2, "X", {"A"}, 50, 1);
  unattributed.has_explain = false;
  EXPECT_FALSE(aggregator.Observe(unattributed));
  EXPECT_EQ(aggregator.IncidentsTotal(), 0u);
  EXPECT_EQ(aggregator.VerdictsTotal(), 0u);
}

TEST(IncidentAggregatorTest, SnapshotSortsByCountThenFirstSeen) {
  IncidentAggregator aggregator;
  aggregator.Observe(AbnormalRecord("s1", 1, "rare", {"A"}, 5, 50));
  for (int i = 0; i < 3; ++i) {
    aggregator.Observe(AbnormalRecord("s2", i + 1, "hot", {"B"}, 5, 100 + i));
  }
  aggregator.Observe(AbnormalRecord("s3", 1, "tie", {"C"}, 5, 10));
  const std::vector<Incident> incidents = aggregator.Snapshot();
  ASSERT_EQ(incidents.size(), 3u);
  EXPECT_EQ(incidents[0].offending, "hot");   // count 3
  EXPECT_EQ(incidents[1].offending, "tie");   // count 1, first seen 10
  EXPECT_EQ(incidents[2].offending, "rare");  // count 1, first seen 50
}

TEST(IncidentAggregatorTest, OpenWindowAgesIncidentsOut) {
  IncidentOptions options;
  options.open_window_ms = 1000;
  IncidentAggregator aggregator(options);
  aggregator.Observe(AbnormalRecord("s1", 1, "old", {"A"}, 5, 1000));
  aggregator.Observe(AbnormalRecord("s2", 1, "new", {"B"}, 5, 5000));
  EXPECT_EQ(aggregator.IncidentsTotal(), 2u);
  EXPECT_EQ(aggregator.OpenIncidents(5500), 1u);  // "old" idle > 1s
  EXPECT_EQ(aggregator.OpenIncidents(1500), 2u);
  // open_window_ms = 0 disables the age-out.
  IncidentAggregator forever(IncidentOptions{.open_window_ms = 0});
  forever.Observe(AbnormalRecord("s1", 1, "old", {"A"}, 5, 1000));
  EXPECT_EQ(forever.OpenIncidents(1000000000), 1u);
}

TEST(IncidentAggregatorTest, PublishMetricsExportsRollupAndTopN) {
  IncidentOptions options;
  options.top_n = 1;
  IncidentAggregator aggregator(options);
  for (int i = 0; i < 2; ++i) {
    aggregator.Observe(AbnormalRecord("s1", i + 1, "hot", {"A"}, 30, 100));
  }
  aggregator.Observe(AbnormalRecord("s2", 1, "cold", {"B"}, 9, 100));
  MetricsRegistry registry;
  aggregator.PublishMetrics(&registry, 100);
  EXPECT_DOUBLE_EQ(registry.GetGauge("detector/incidents_total")->Value(),
                   2.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("detector/incidents_open")->Value(),
                   2.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("detector/incident_verdicts_total")->Value(), 3.0);
  // Only the top-1 incident gets labeled per-incident gauges.
  const Labels hot = {
      {"signature",
       SignatureHex(IncidentSignature("hot", {"A"}))},
      {"offending", "hot"}};
  EXPECT_DOUBLE_EQ(registry.GetGauge("detector/incident/count", hot)->Value(),
                   2.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("detector/incident/worst_rank", hot)->Value(), 30.0);
  bool saw_cold = false;
  registry.ForEachSeries([&](const MetricsRegistry::SeriesRef& s) {
    for (const auto& [k, v] : s.labels) {
      saw_cold |= k == "offending" && v == "cold";
    }
  });
  EXPECT_FALSE(saw_cold);
}

TEST(IncidentAggregatorTest, FormatTableListsTopIncidents) {
  IncidentAggregator aggregator;
  for (int i = 0; i < 2; ++i) {
    aggregator.Observe(
        AbnormalRecord("s7", i + 1, "UPDATE t SET x = ?", {"A"}, 12, 100));
  }
  const std::string table =
      FormatIncidentTable(aggregator.Snapshot(), /*top_n=*/5);
  EXPECT_NE(table.find("UPDATE t SET x = ?"), std::string::npos) << table;
  EXPECT_NE(table.find("s7@"), std::string::npos) << table;
  EXPECT_NE(
      table.find(SignatureHex(IncidentSignature("UPDATE t SET x = ?",
                                                {"A"}))),
      std::string::npos)
      << table;
  EXPECT_TRUE(FormatIncidentTable({}, 5).empty());
  // Overflow note when more incidents exist than the table shows.
  aggregator.Observe(AbnormalRecord("s8", 1, "other", {"B"}, 2, 100));
  const std::string truncated =
      FormatIncidentTable(aggregator.Snapshot(), /*top_n=*/1);
  EXPECT_NE(truncated.find("1 more incident"), std::string::npos)
      << truncated;
}

TEST(IncidentAggregatorTest, RoundTripsThroughAuditJsonl) {
  // The aggregator built online and one rebuilt from the serialized audit
  // records must agree — this is the contract tools/incident_report
  // depends on.
  IncidentAggregator online;
  std::vector<std::string> lines;
  for (int i = 0; i < 4; ++i) {
    AuditRecord r = AbnormalRecord("s1", i + 1, "DROP TABLE t",
                                   {"SELECT 1", "key:9"}, 20 + i, 1000 + i);
    online.Observe(r);
    lines.push_back(AuditRecordToJson(r));
  }
  IncidentAggregator replayed;
  for (const std::string& line : lines) {
    auto parsed = ParseAuditRecord(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    replayed.Observe(*parsed);
  }
  const std::vector<Incident> a = online.Snapshot();
  const std::vector<Incident> b = replayed.Snapshot();
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].signature, b[0].signature);
  EXPECT_EQ(a[0].count, b[0].count);
  EXPECT_EQ(a[0].worst_rank, b[0].worst_rank);
  EXPECT_EQ(a[0].first_seen_ms, b[0].first_seen_ms);
  EXPECT_EQ(a[0].last_seen_ms, b[0].last_seen_ms);
  EXPECT_EQ(a[0].exemplar_session, b[0].exemplar_session);
  EXPECT_EQ(a[0].context, b[0].context);
}

}  // namespace
}  // namespace ucad::obs
