#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/monitor.h"

namespace ucad::obs {
namespace {

// ---------- P² quantile sketch ----------

TEST(P2QuantileTest, ExactForFirstFiveObservations) {
  P2Quantile median(0.5);
  median.Observe(9.0);
  median.Observe(1.0);
  median.Observe(5.0);
  EXPECT_DOUBLE_EQ(median.Value(), 5.0);
  median.Observe(3.0);
  median.Observe(7.0);
  EXPECT_DOUBLE_EQ(median.Value(), 5.0);
  EXPECT_EQ(median.Count(), 5u);
}

TEST(P2QuantileTest, ApproximatesUniformQuantiles) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> uniform(0.0, 100.0);
  P2Quantile p50(0.5), p90(0.9), p99(0.99);
  for (int i = 0; i < 20000; ++i) {
    const double v = uniform(rng);
    p50.Observe(v);
    p90.Observe(v);
    p99.Observe(v);
  }
  EXPECT_NEAR(p50.Value(), 50.0, 2.0);
  EXPECT_NEAR(p90.Value(), 90.0, 2.0);
  EXPECT_NEAR(p99.Value(), 99.0, 1.0);
}

TEST(P2QuantileTest, PreWarmupQueriesAreExactNearestRank) {
  // Queried before the five-sample warmup, the sketch must fall back to
  // the exact nearest-rank quantile of the sorted prefix — including the
  // empty case, which a scrape can hit before any operation was scored.
  P2Quantile median(0.5);
  P2Quantile p90(0.9);
  EXPECT_DOUBLE_EQ(median.Value(), 0.0);
  EXPECT_DOUBLE_EQ(p90.Value(), 0.0);
  const double values[4] = {7.0, 2.0, 9.0, 1.0};
  for (double v : values) {
    median.Observe(v);
    p90.Observe(v);
  }
  // Sorted prefix {1,2,7,9}: nearest rank idx = lround(q * (n-1)).
  EXPECT_DOUBLE_EQ(median.Value(), 7.0);  // idx lround(1.5) = 2
  EXPECT_DOUBLE_EQ(p90.Value(), 9.0);     // idx lround(2.7) = 3
  EXPECT_EQ(median.Count(), 4u);
  // One observation: every quantile is that observation.
  P2Quantile p99(0.99);
  p99.Observe(42.0);
  EXPECT_DOUBLE_EQ(p99.Value(), 42.0);
}

TEST(P2QuantileTest, MonotoneUnderSortedInput) {
  // Sorted input is the classic degenerate case for marker-based
  // sketches; the estimate must stay within the observed range.
  P2Quantile p90(0.9);
  for (int i = 1; i <= 1000; ++i) p90.Observe(i);
  EXPECT_GE(p90.Value(), 1.0);
  EXPECT_LE(p90.Value(), 1000.0);
  EXPECT_NEAR(p90.Value(), 900.0, 50.0);
}

// ---------- Rank buckets ----------

TEST(RankBucketsTest, PartitionIsExhaustiveAndOrdered) {
  const auto& bounds = RankBuckets::UpperBounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_EQ(RankBuckets::Size(), bounds.size() + 1);  // + unbounded tail
  // Every rank lands in exactly one bucket and bucket indices are
  // monotone in rank.
  size_t prev = 0;
  for (int rank = 1; rank <= bounds.back() + 10; ++rank) {
    const size_t b = RankBuckets::BucketOf(rank);
    ASSERT_LT(b, RankBuckets::Size());
    EXPECT_GE(b, prev);
    prev = b;
  }
  EXPECT_EQ(RankBuckets::BucketOf(1), 0u);
  EXPECT_EQ(RankBuckets::BucketOf(bounds.back() + 1000000),
            RankBuckets::Size() - 1);
}

TEST(RankBucketsTest, LabelsNameTheBounds) {
  EXPECT_EQ(RankBuckets::LabelOf(0),
            "<=" + std::to_string(RankBuckets::UpperBounds().front()));
  EXPECT_EQ(RankBuckets::LabelOf(RankBuckets::Size() - 1),
            ">" + std::to_string(RankBuckets::UpperBounds().back()));
}

// ---------- PSI ----------

TEST(PsiTest, IdenticalDistributionsScoreNearZero) {
  std::vector<uint64_t> counts = {50, 30, 15, 5};
  EXPECT_NEAR(PopulationStabilityIndex(counts, counts), 0.0, 1e-12);
  // Scaling a distribution does not change its shape.
  std::vector<uint64_t> scaled = {500, 300, 150, 50};
  EXPECT_NEAR(PopulationStabilityIndex(counts, scaled), 0.0, 1e-3);
}

TEST(PsiTest, DisjointDistributionsAlert) {
  std::vector<uint64_t> reference = {100, 0, 0, 0};
  std::vector<uint64_t> live = {0, 0, 0, 100};
  EXPECT_GT(PopulationStabilityIndex(reference, live), 0.25);
}

TEST(PsiTest, SmoothingKeepsEmptyBucketsFinite) {
  std::vector<uint64_t> reference = {10, 0, 10, 0};
  std::vector<uint64_t> live = {0, 10, 0, 10};
  const double psi = PopulationStabilityIndex(reference, live);
  EXPECT_TRUE(std::isfinite(psi));
  EXPECT_GT(psi, 0.0);
}

TEST(PsiTest, AllEmptyReferenceHistogramScoresZero) {
  // A reference with no mass cannot support a ratio; the contract is a
  // hard 0.0 (stable), not NaN/inf from the smoothing terms.
  std::vector<uint64_t> empty(4, 0);
  std::vector<uint64_t> live = {10, 20, 5, 1};
  EXPECT_DOUBLE_EQ(PopulationStabilityIndex(empty, live), 0.0);
  EXPECT_DOUBLE_EQ(PopulationStabilityIndex(live, empty), 0.0);
  EXPECT_DOUBLE_EQ(PopulationStabilityIndex(empty, empty), 0.0);
}

TEST(PsiTest, ModerateShiftLandsBetweenThresholds) {
  std::vector<uint64_t> reference = {60, 25, 10, 5};
  std::vector<uint64_t> live = {50, 30, 13, 7};
  const double psi = PopulationStabilityIndex(reference, live);
  EXPECT_GT(psi, 0.0);
  EXPECT_LT(psi, 0.25);
}

// ---------- DetectionMonitor ----------

MonitorOptions SmallWindow(int window = 8) {
  MonitorOptions options;
  options.window = window;
  return options;
}

TEST(DetectionMonitorTest, RegistersSeriesAtConstruction) {
  MetricsRegistry registry;
  DetectionMonitor monitor(SmallWindow(), &registry);
  bool saw_psi = false, saw_rank_p50 = false, saw_ops = false;
  registry.ForEachSeries([&](const MetricsRegistry::SeriesRef& s) {
    saw_psi |= s.name == "detector/drift/psi";
    saw_rank_p50 |= s.name == "detector/rank/p50";
    saw_ops |= s.name == "detector/monitor/operations_total";
  });
  EXPECT_TRUE(saw_psi);
  EXPECT_TRUE(saw_rank_p50);
  EXPECT_TRUE(saw_ops);
}

TEST(DetectionMonitorTest, AutoAdoptsFirstWindowAsReference) {
  MetricsRegistry registry;
  DetectionMonitor monitor(SmallWindow(8), &registry);
  EXPECT_FALSE(monitor.HasReference());
  for (int i = 0; i < 8; ++i) monitor.ObserveOperation(1, 2.0);
  EXPECT_TRUE(monitor.HasReference());
  EXPECT_EQ(monitor.WindowsCompleted(), 1u);
  EXPECT_DOUBLE_EQ(monitor.LastPsi(), 0.0);  // reference window scores no PSI
  // Second identical window: PSI stays near zero, no alert.
  for (int i = 0; i < 8; ++i) monitor.ObserveOperation(1, 2.0);
  EXPECT_EQ(monitor.WindowsCompleted(), 2u);
  EXPECT_NEAR(monitor.LastPsi(), 0.0, 0.05);
  EXPECT_EQ(monitor.Alerts(), 0u);
  EXPECT_EQ(monitor.Operations(), 16u);
}

TEST(DetectionMonitorTest, DriftedWindowRaisesAlert) {
  MetricsRegistry registry;
  DetectionMonitor monitor(SmallWindow(16), &registry);
  for (int i = 0; i < 16; ++i) monitor.ObserveOperation(1, 2.0);
  ASSERT_TRUE(monitor.HasReference());
  // Live window entirely in the unbounded tail: maximal shape change.
  for (int i = 0; i < 16; ++i) monitor.ObserveOperation(10000, -3.0);
  EXPECT_GT(monitor.LastPsi(), 0.25);
  EXPECT_EQ(monitor.Alerts(), 1u);
  EXPECT_GT(registry.GetGauge("detector/drift/psi")->Value(), 0.25);
  EXPECT_EQ(registry.GetCounter("detector/drift/alerts_total")->Value(), 1u);
}

TEST(DetectionMonitorTest, ExplicitReferenceSuppressesAutoAdoption) {
  MetricsRegistry registry;
  DetectionMonitor monitor(SmallWindow(8), &registry);
  std::vector<int> training_ranks(64, 1);
  monitor.SetReferenceRanks(training_ranks);
  EXPECT_TRUE(monitor.HasReference());
  // First completed window is now compared, not adopted.
  for (int i = 0; i < 8; ++i) monitor.ObserveOperation(512, 0.0);
  EXPECT_EQ(monitor.WindowsCompleted(), 1u);
  EXPECT_GT(monitor.LastPsi(), 0.25);
  EXPECT_EQ(monitor.Alerts(), 1u);
}

TEST(DetectionMonitorTest, PublishesQuantileGauges) {
  MetricsRegistry registry;
  DetectionMonitor monitor(SmallWindow(4), &registry);
  for (int i = 0; i < 100; ++i) monitor.ObserveOperation(3, 1.5);
  monitor.ObserveLatency(12.0);
  EXPECT_NEAR(registry.GetGauge("detector/rank/p50")->Value(), 3.0, 0.5);
  EXPECT_NEAR(registry.GetGauge("detector/score/p50")->Value(), 1.5, 0.1);
  EXPECT_GT(registry.GetGauge("detector/latency/p50")->Value(), 0.0);
  EXPECT_EQ(
      registry.GetCounter("detector/monitor/operations_total")->Value(),
      100u);
}

TEST(DetectionMonitorTest, NonFiniteScoreIsIgnoredByScoreSketch) {
  MetricsRegistry registry;
  DetectionMonitor monitor(SmallWindow(4), &registry);
  monitor.ObserveOperation(2, 4.0);
  monitor.ObserveOperation(900, -INFINITY);  // unknown key
  EXPECT_EQ(monitor.Operations(), 2u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("detector/score/p50")->Value(), 4.0);
}

TEST(DetectionMonitorTest, StatusLineMentionsLiveCounts) {
  MetricsRegistry registry;
  DetectionMonitor monitor(SmallWindow(4), &registry);
  for (int i = 0; i < 6; ++i) monitor.ObserveOperation(2, 1.0);
  const std::string line = monitor.StatusLine();
  EXPECT_NE(line.find("ops=6"), std::string::npos) << line;
  EXPECT_NE(line.find("psi="), std::string::npos) << line;
}

TEST(DetectionMonitorTest, ResetClearsStateAndGauges) {
  MetricsRegistry registry;
  DetectionMonitor monitor(SmallWindow(4), &registry);
  for (int i = 0; i < 12; ++i) monitor.ObserveOperation(5, 2.0);
  ASSERT_GT(monitor.Operations(), 0u);
  monitor.Reset();
  EXPECT_EQ(monitor.Operations(), 0u);
  EXPECT_EQ(monitor.WindowsCompleted(), 0u);
  EXPECT_FALSE(monitor.HasReference());
  EXPECT_DOUBLE_EQ(registry.GetGauge("detector/rank/p50")->Value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("detector/drift/psi")->Value(), 0.0);
}

TEST(DetectionMonitorTest, EmptyExplicitReferenceNeverAlerts) {
  // SetReferenceRanks({}) installs an all-zero reference histogram (e.g. a
  // training replay that produced no scored ops). Completed windows must
  // score PSI 0 against it — never NaN, never a spurious alert.
  MetricsRegistry registry;
  DetectionMonitor monitor(SmallWindow(8), &registry);
  monitor.SetReferenceRanks({});
  EXPECT_TRUE(monitor.HasReference());
  for (int i = 0; i < 8; ++i) monitor.ObserveOperation(10000, -1.0);
  EXPECT_EQ(monitor.WindowsCompleted(), 1u);
  EXPECT_DOUBLE_EQ(monitor.LastPsi(), 0.0);
  EXPECT_EQ(monitor.Alerts(), 0u);
  EXPECT_FALSE(monitor.DriftAlertActive());
}

TEST(DetectionMonitorTest, DriftAlertClearsWhenDistributionRecovers) {
  MetricsRegistry registry;
  DetectionMonitor monitor(SmallWindow(8), &registry);
  // Window 1 auto-adopts as reference; window 2 drifts hard.
  for (int i = 0; i < 8; ++i) monitor.ObserveOperation(1, 2.0);
  for (int i = 0; i < 8; ++i) monitor.ObserveOperation(10000, -3.0);
  ASSERT_TRUE(monitor.DriftAlertActive());
  ASSERT_EQ(monitor.Alerts(), 1u);
  // Window 3 matches the reference again: the flag must clear (it is
  // re-stored on every completed window), while the alert counter —
  // cumulative by contract — keeps its count.
  for (int i = 0; i < 8; ++i) monitor.ObserveOperation(1, 2.0);
  EXPECT_FALSE(monitor.DriftAlertActive());
  EXPECT_NEAR(monitor.LastPsi(), 0.0, 0.05);
  EXPECT_EQ(monitor.Alerts(), 1u);
}

TEST(DetectionMonitorTest, EnableFlagDefaultsOffAndToggles) {
  // The global flag gates the detector hot path; the default must be off.
  const bool was_enabled = DetectionMonitorEnabled();
  SetDetectionMonitorEnabled(false);
  EXPECT_FALSE(DetectionMonitorEnabled());
  SetDetectionMonitorEnabled(true);
  EXPECT_TRUE(DetectionMonitorEnabled());
  SetDetectionMonitorEnabled(was_enabled);
}

}  // namespace
}  // namespace ucad::obs
