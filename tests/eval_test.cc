#include <set>

#include <gtest/gtest.h>

#include "eval/dataset.h"
#include "eval/experiment_config.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace ucad::eval {
namespace {

// ---------- Metrics ----------

TEST(MetricsTest, PerfectClassifier) {
  std::vector<LabeledSet> sets = {
      {sql::SessionLabel::kNormal, {{1, 2}, {3, 4}}},
      {sql::SessionLabel::kPrivilegeAbuse, {{9, 9}, {9, 8}}},
  };
  const EvalResult r = Evaluate(
      [](const std::vector<int>& s) { return s[0] == 9; }, sets);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
  EXPECT_DOUBLE_EQ(r.Rate(sql::SessionLabel::kNormal), 0.0);
  EXPECT_DOUBLE_EQ(r.Rate(sql::SessionLabel::kPrivilegeAbuse), 0.0);
}

TEST(MetricsTest, KnownConfusion) {
  // 4 normal (1 flagged) + 4 abnormal (3 flagged):
  // FPR=0.25, FNR=0.25, P=3/4, R=3/4.
  std::vector<LabeledSet> sets = {
      {sql::SessionLabel::kNormal, {{0}, {1}, {2}, {3}}},
      {sql::SessionLabel::kCredentialTheft, {{10}, {11}, {12}, {13}}},
  };
  const EvalResult r = Evaluate(
      [](const std::vector<int>& s) {
        return s[0] == 0 || s[0] == 10 || s[0] == 11 || s[0] == 12;
      },
      sets);
  EXPECT_DOUBLE_EQ(r.Rate(sql::SessionLabel::kNormal), 0.25);
  EXPECT_DOUBLE_EQ(r.Rate(sql::SessionLabel::kCredentialTheft), 0.25);
  EXPECT_DOUBLE_EQ(r.precision, 0.75);
  EXPECT_DOUBLE_EQ(r.recall, 0.75);
  EXPECT_DOUBLE_EQ(r.f1, 0.75);
}

TEST(MetricsTest, DegenerateClassifierZeroF1) {
  std::vector<LabeledSet> sets = {
      {sql::SessionLabel::kNormal, {{1}}},
      {sql::SessionLabel::kMisoperation, {{2}}},
  };
  const EvalResult r =
      Evaluate([](const std::vector<int>&) { return false; }, sets);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
}

TEST(MetricsTest, BinaryEvaluation) {
  const std::vector<std::vector<int>> sessions = {{1}, {2}, {3}, {4}};
  const std::vector<bool> labels = {true, true, false, false};
  const BinaryMetrics m = EvaluateBinary(
      [](const std::vector<int>& s) { return s[0] <= 2; }, sessions, labels);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

// ---------- Dataset build ----------

class DatasetTest : public ::testing::Test {
 protected:
  static const ScenarioDataset& Dataset() {
    static const ScenarioDataset* ds = [] {
      ScenarioConfig config = ScenarioIConfig(Scale::kSmoke);
      auto* built = new ScenarioDataset(
          BuildScenarioDataset(config.spec, config.dataset));
      return built;
    }();
    return *ds;
  }
};

TEST_F(DatasetTest, SplitsAndSizes) {
  const auto& ds = Dataset();
  EXPECT_GT(ds.train.size(), 20u);
  // |V1| = |V2| = |V3| = |A1| = |A2| = |A3| (paper: abnormal sets sized to
  // the normal testing set).
  EXPECT_EQ(ds.v1.size(), ds.v2.size());
  EXPECT_EQ(ds.v1.size(), ds.v3.size());
  EXPECT_EQ(ds.v1.size(), ds.a1.size());
  EXPECT_EQ(ds.v1.size(), ds.a2.size());
  EXPECT_EQ(ds.v1.size(), ds.a3.size());
  EXPECT_GT(ds.v1.size(), 5u);
  EXPECT_GT(ds.avg_train_length, 4.0);
}

TEST_F(DatasetTest, VocabularyConsistency) {
  const auto& ds = Dataset();
  EXPECT_TRUE(ds.vocab.frozen());
  EXPECT_EQ(static_cast<int>(ds.key_commands.size()), ds.vocab.size());
  // Training sessions contain only known keys.
  for (const auto& s : ds.train) {
    for (int k : s) {
      EXPECT_GE(k, 1);
      EXPECT_LT(k, ds.vocab.size());
    }
  }
}

TEST_F(DatasetTest, TestSetsCarryLabels) {
  const auto sets = Dataset().TestSets();
  ASSERT_EQ(sets.size(), 6u);
  EXPECT_EQ(sets[0].label, sql::SessionLabel::kNormal);
  EXPECT_EQ(sets[5].label, sql::SessionLabel::kMisoperation);
}

TEST_F(DatasetTest, HybridTrainingAddsAnomalies) {
  const auto& ds = Dataset();
  util::Rng rng(5);
  const auto hybrid = ds.HybridTrain(0.1, &rng);
  const size_t expected =
      ds.train.size() + static_cast<size_t>(ds.train.size() * 0.1 + 0.5);
  EXPECT_EQ(hybrid.size(), expected);
}

TEST_F(DatasetTest, DeterministicForSeed) {
  ScenarioConfig config = ScenarioIConfig(Scale::kSmoke);
  const ScenarioDataset a = BuildScenarioDataset(config.spec, config.dataset);
  const ScenarioDataset b = BuildScenarioDataset(config.spec, config.dataset);
  ASSERT_EQ(a.train.size(), b.train.size());
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.a2, b.a2);
}

// ---------- Configs ----------

TEST(ConfigTest, PaperDefaultsMatchSection61) {
  const ScenarioConfig one = ScenarioIConfig(Scale::kPaper);
  EXPECT_EQ(one.model.window, 30);
  EXPECT_EQ(one.model.hidden_dim, 10);
  EXPECT_EQ(one.model.num_heads, 2);
  EXPECT_EQ(one.model.num_blocks, 6);
  EXPECT_EQ(one.detection.top_p, 5);
  EXPECT_FLOAT_EQ(one.training.margin, 0.5f);

  const ScenarioConfig two = ScenarioIIConfig(Scale::kPaper);
  EXPECT_EQ(two.model.window, 100);
  EXPECT_EQ(two.model.hidden_dim, 64);
  EXPECT_EQ(two.model.num_heads, 8);
  EXPECT_EQ(two.model.num_blocks, 6);
  EXPECT_EQ(two.detection.top_p, 10);
}

TEST(ConfigTest, ScaleFromEnvDefaultsToRepro) {
  // No env manipulation here; just check it returns a valid value.
  const Scale s = ScaleFromEnv();
  EXPECT_TRUE(s == Scale::kSmoke || s == Scale::kRepro || s == Scale::kPaper);
  EXPECT_STREQ(ScaleName(Scale::kRepro), "repro");
}

// ---------- Runner (smoke end-to-end) ----------

TEST(RunnerTest, TransDasBeatsChanceOnSmokeScenario) {
  ScenarioConfig config = ScenarioIConfig(Scale::kSmoke);
  const ScenarioDataset ds =
      BuildScenarioDataset(config.spec, config.dataset);
  config.training.epochs = 4;
  const TransDasRun run = RunTransDas(ds, config.model, config.training,
                                      config.detection, ds.train);
  EXPECT_EQ(run.epochs.size(), 4u);
  EXPECT_GT(run.metrics.f1, 0.5);
  EXPECT_GT(run.MeanEpochSeconds(), 0.0);
}

TEST(RunnerTest, BaselinesConstructAndRun) {
  ScenarioConfig config = ScenarioIConfig(Scale::kSmoke);
  const ScenarioDataset ds =
      BuildScenarioDataset(config.spec, config.dataset);
  for (const std::string& name : BaselineNames()) {
    auto detector = MakeBaseline(name, config, ds);
    ASSERT_NE(detector, nullptr) << name;
    const EvalResult r = RunBaseline(detector.get(), ds, ds.train);
    EXPECT_GE(r.recall, 0.0) << name;
    EXPECT_LE(r.f1, 1.0) << name;
  }
}

TEST(RunnerTest, EmitsPerMethodTimingHistograms) {
  ScenarioConfig config = ScenarioIConfig(Scale::kSmoke);
  const ScenarioDataset ds =
      BuildScenarioDataset(config.spec, config.dataset);
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  const uint64_t transdas_before =
      reg.GetHistogram("eval/transdas/train_ms")->Count();
  const uint64_t iforest_before =
      reg.GetHistogram("eval/iforest/detect_ms")->Count();

  config.training.epochs = 1;
  RunTransDas(ds, config.model, config.training, config.detection, ds.train);
  auto iforest = MakeBaseline("iForest", config, ds);
  RunBaseline(iforest.get(), ds, ds.train);

  // bench_compare gates on these histogram series: one observation per run,
  // `min` as the noise-robust statistic.
  EXPECT_EQ(reg.GetHistogram("eval/transdas/train_ms")->Count(),
            transdas_before + 1);
  EXPECT_GT(reg.GetHistogram("eval/transdas/train_ms")->Max(), 0.0);
  EXPECT_EQ(reg.GetHistogram("eval/transdas/detect_ms")->Count(),
            transdas_before + 1);
  EXPECT_EQ(reg.GetHistogram("eval/iforest/train_ms")->Count(),
            iforest_before + 1);
  EXPECT_EQ(reg.GetHistogram("eval/iforest/detect_ms")->Count(),
            iforest_before + 1);
  // Training refreshes the process peak-RSS gauge.
  EXPECT_GT(reg.GetGauge("proc/peak_rss_bytes")->Value(), 0.0);
}

TEST(RunnerTest, EmitsConfusionCounters) {
  ScenarioConfig config = ScenarioIConfig(Scale::kSmoke);
  const ScenarioDataset ds =
      BuildScenarioDataset(config.spec, config.dataset);
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  const uint64_t tp_before = reg.GetCounter("eval/iforest/tp")->Value();
  const uint64_t fp_before = reg.GetCounter("eval/iforest/fp")->Value();
  const uint64_t fn_before = reg.GetCounter("eval/iforest/fn")->Value();
  const uint64_t tn_before = reg.GetCounter("eval/iforest/tn")->Value();

  auto iforest = MakeBaseline("iForest", config, ds);
  const EvalResult result = RunBaseline(iforest.get(), ds, ds.train);

  // The raw confusion counts land in per-method counters so a scrape can
  // recompute precision/recall without re-running the evaluation.
  EXPECT_EQ(reg.GetCounter("eval/iforest/tp")->Value() - tp_before,
            static_cast<uint64_t>(result.true_positives));
  EXPECT_EQ(reg.GetCounter("eval/iforest/fp")->Value() - fp_before,
            static_cast<uint64_t>(result.false_positives));
  EXPECT_EQ(reg.GetCounter("eval/iforest/fn")->Value() - fn_before,
            static_cast<uint64_t>(result.false_negatives));
  EXPECT_EQ(reg.GetCounter("eval/iforest/tn")->Value() - tn_before,
            static_cast<uint64_t>(result.true_negatives));
  // The four cells partition every labeled test session.
  size_t test_sessions = 0;
  for (const auto& set : ds.TestSets()) test_sessions += set.sessions.size();
  EXPECT_EQ(static_cast<size_t>(result.true_positives +
                                result.false_positives +
                                result.false_negatives +
                                result.true_negatives),
            test_sessions);
}

}  // namespace
}  // namespace ucad::eval
