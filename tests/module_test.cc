#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/gradcheck.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/tape.h"
#include "util/rng.h"

namespace ucad::nn {
namespace {

TEST(LinearTest, ShapesAndBias) {
  util::Rng rng(1);
  Linear layer(3, 2, &rng);
  layer.bias().value().at(0, 1) = 5.0f;
  Tape tape;
  VarId x = tape.Constant(Tensor(4, 3));
  VarId y = layer.Forward(&tape, x);
  EXPECT_EQ(tape.value(y).rows(), 4);
  EXPECT_EQ(tape.value(y).cols(), 2);
  // Zero input -> output equals bias.
  EXPECT_FLOAT_EQ(tape.value(y).at(2, 1), 5.0f);
}

TEST(LinearTest, LearnsLinearMap) {
  // Fit y = 2x - 1 with SGD.
  util::Rng rng(2);
  Linear layer(1, 1, &rng);
  Sgd opt(layer.Params(), 0.1f);
  for (int step = 0; step < 400; ++step) {
    const float x = static_cast<float>(rng.UniformDouble(-1, 1));
    const float target = 2.0f * x - 1.0f;
    Tape tape;
    VarId vx = tape.Constant(Tensor(1, 1, {x}));
    VarId pred = layer.Forward(&tape, vx);
    VarId diff = tape.Sub(pred, tape.Constant(Tensor(1, 1, {target})));
    tape.Backward(tape.SumAll(tape.Mul(diff, diff)));
    opt.Step();
  }
  EXPECT_NEAR(layer.weight().value().at(0, 0), 2.0f, 0.05f);
  EXPECT_NEAR(layer.bias().value().at(0, 0), -1.0f, 0.05f);
}

TEST(EmbeddingTest, PaddingRowStaysZero) {
  util::Rng rng(3);
  Embedding embedding(5, 4, &rng);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(embedding.table().value().at(0, c), 0.0f);
  }
  // Perturb then re-freeze.
  embedding.table().value().at(0, 2) = 1.0f;
  embedding.FreezePaddingRow();
  EXPECT_EQ(embedding.table().value().at(0, 2), 0.0f);
}

TEST(EmbeddingTest, GathersConfiguredRows) {
  util::Rng rng(4);
  Embedding embedding(4, 2, &rng);
  embedding.table().value().at(2, 0) = 7.0f;
  Tape tape;
  VarId out = embedding.Forward(&tape, {2, 2, 0});
  EXPECT_FLOAT_EQ(tape.value(out).at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(tape.value(out).at(1, 0), 7.0f);
  EXPECT_FLOAT_EQ(tape.value(out).at(2, 0), 0.0f);  // padding
}

TEST(LayerNormModuleTest, GradCheck) {
  util::Rng rng(5);
  LayerNorm ln(6);
  // Break the degenerate case gain=1, bias=0 in which sum(y^2) is
  // constant in x (normalized rows have fixed norm).
  ln.gain().value() = Tensor::Randn(1, 6, 0.5f, &rng);
  ln.bias().value() = Tensor::Randn(1, 6, 0.5f, &rng);
  Parameter x(Tensor::Randn(2, 6, 1.0f, &rng));
  auto build = [&](Tape* tape) {
    VarId vx = tape->Param(&x);
    VarId y = ln.Forward(tape, vx);
    return tape->SumAll(tape->Mul(y, y));
  };
  auto loss_value = [&]() {
    Tape tape;
    return static_cast<double>(tape.value(build(&tape)).at(0, 0));
  };
  auto loss_backward = [&]() {
    Tape tape;
    VarId loss = build(&tape);
    tape.Backward(loss);
    return static_cast<double>(tape.value(loss).at(0, 0));
  };
  std::vector<Parameter*> params = {&x};
  for (Parameter* p : ln.Params()) params.push_back(p);
  const GradCheckResult result =
      CheckGradients(loss_backward, loss_value, params);
  EXPECT_LT(result.max_rel_error, 5e-2f);
}

TEST(LstmTest, StateShapesAndDeterminism) {
  util::Rng rng(6);
  LstmCell lstm(3, 8, &rng);
  Tape tape;
  LstmCell::State state = lstm.InitialState(&tape);
  VarId x = tape.Constant(Tensor(1, 3, {0.5f, -0.2f, 0.1f}));
  state = lstm.Step(&tape, x, state);
  EXPECT_EQ(tape.value(state.h).cols(), 8);
  EXPECT_EQ(tape.value(state.c).cols(), 8);
  // Outputs bounded by tanh/sigmoid structure.
  for (int c = 0; c < 8; ++c) {
    EXPECT_LT(std::abs(tape.value(state.h).at(0, c)), 1.0f);
  }
}

TEST(LstmTest, LearnsToMemorizeFirstInput) {
  // Task: output sign of the first input after 4 steps.
  util::Rng rng(7);
  LstmCell lstm(1, 8, &rng);
  Linear readout(8, 1, &rng);
  std::vector<Parameter*> params = lstm.Params();
  for (Parameter* p : readout.Params()) params.push_back(p);
  Adam opt(params, 1e-2f);
  double final_loss = 1.0;
  for (int step = 0; step < 500; ++step) {
    const float first = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
    Tape tape;
    LstmCell::State state = lstm.InitialState(&tape);
    for (int t = 0; t < 4; ++t) {
      const float value =
          t == 0 ? first : static_cast<float>(rng.UniformDouble(-0.2, 0.2));
      state = lstm.Step(&tape, tape.Constant(Tensor(1, 1, {value})), state);
    }
    VarId pred = readout.Forward(&tape, state.h);
    VarId diff = tape.Sub(pred, tape.Constant(Tensor(1, 1, {first})));
    VarId loss = tape.SumAll(tape.Mul(diff, diff));
    final_loss = tape.value(loss).at(0, 0);
    tape.Backward(loss);
    opt.Step();
  }
  EXPECT_LT(final_loss, 0.2);
}

TEST(SgdTest, MomentumAcceleratesOnQuadratic) {
  // Minimize f(w) = w^2 from w=10.
  Parameter w(Tensor(1, 1, {10.0f}));
  Sgd opt({&w}, 0.05f, 0.9f);
  for (int i = 0; i < 100; ++i) {
    Tape tape;
    VarId v = tape.Param(&w);
    tape.Backward(tape.SumAll(tape.Mul(v, v)));
    opt.Step();
  }
  EXPECT_NEAR(w.value().at(0, 0), 0.0f, 0.05f);
}

TEST(SgdTest, WeightDecayShrinksUnusedWeights) {
  Parameter w(Tensor(1, 1, {4.0f}));
  Sgd opt({&w}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  for (int i = 0; i < 50; ++i) {
    // Zero task gradient: only decay applies.
    opt.Step();
  }
  EXPECT_LT(std::abs(w.value().at(0, 0)), 0.5f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Parameter w(Tensor(1, 2, {5.0f, -7.0f}));
  Adam opt({&w}, 0.2f);
  for (int i = 0; i < 200; ++i) {
    Tape tape;
    VarId v = tape.Param(&w);
    tape.Backward(tape.SumAll(tape.Mul(v, v)));
    opt.Step();
  }
  EXPECT_NEAR(w.value().at(0, 0), 0.0f, 0.05f);
  EXPECT_NEAR(w.value().at(0, 1), 0.0f, 0.05f);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Parameter w(Tensor(1, 2, {0.0f, 0.0f}));
  w.grad().at(0, 0) = 30.0f;
  w.grad().at(0, 1) = 40.0f;  // norm 50
  Sgd opt({&w}, 1.0f);
  opt.ClipGradNorm(5.0f);
  const float norm = std::sqrt(w.grad().SquaredNorm());
  EXPECT_NEAR(norm, 5.0f, 1e-3f);
  // Direction preserved.
  EXPECT_NEAR(w.grad().at(0, 0) / w.grad().at(0, 1), 0.75f, 1e-4f);
}

TEST(OptimizerTest, StepClearsGradients) {
  Parameter w(Tensor(1, 1, {1.0f}));
  w.grad().at(0, 0) = 2.0f;
  Adam opt({&w}, 0.01f);
  opt.Step();
  EXPECT_EQ(w.grad().at(0, 0), 0.0f);
}

}  // namespace
}  // namespace ucad::nn
