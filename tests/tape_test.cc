#include <cmath>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nn/gradcheck.h"
#include "nn/tape.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace ucad::nn {
namespace {

// ---------- Forward values ----------

TEST(TapeForwardTest, AddSubMul) {
  Tape tape;
  VarId a = tape.Constant(Tensor(1, 3, {1, 2, 3}));
  VarId b = tape.Constant(Tensor(1, 3, {4, 5, 6}));
  EXPECT_FLOAT_EQ(tape.value(tape.Add(a, b)).at(0, 2), 9.0f);
  EXPECT_FLOAT_EQ(tape.value(tape.Sub(a, b)).at(0, 0), -3.0f);
  EXPECT_FLOAT_EQ(tape.value(tape.Mul(a, b)).at(0, 1), 10.0f);
}

TEST(TapeForwardTest, ScalarOps) {
  Tape tape;
  VarId a = tape.Constant(Tensor(1, 2, {2, -3}));
  EXPECT_FLOAT_EQ(tape.value(tape.Scale(a, 2.5f)).at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(tape.value(tape.AddScalar(a, 1.0f)).at(0, 1), -2.0f);
  EXPECT_FLOAT_EQ(tape.value(tape.Relu(a)).at(0, 1), 0.0f);
  EXPECT_NEAR(tape.value(tape.Sigmoid(a)).at(0, 0), 0.8807971f, 1e-5f);
  EXPECT_NEAR(tape.value(tape.Tanh(a)).at(0, 0), std::tanh(2.0f), 1e-6f);
}

TEST(TapeForwardTest, LogSigmoidMatchesComposition) {
  Tape tape;
  VarId a = tape.Constant(Tensor(1, 4, {-30, -1, 1, 30}));
  const Tensor& direct = tape.value(tape.LogSigmoid(a));
  for (int c = 0; c < 4; ++c) {
    const double x = tape.value(a).at(0, c);
    const double expected = -std::log1p(std::exp(-x));
    EXPECT_NEAR(direct.at(0, c), expected, 1e-4);
  }
  // Extreme negative input stays finite.
  EXPECT_TRUE(std::isfinite(direct.at(0, 0)));
}

TEST(TapeForwardTest, MatMulAndTranspose) {
  Tape tape;
  VarId a = tape.Constant(Tensor(2, 2, {1, 2, 3, 4}));
  VarId b = tape.Constant(Tensor(2, 2, {0, 1, 1, 0}));
  EXPECT_FLOAT_EQ(tape.value(tape.MatMul(a, b)).at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(tape.value(tape.Transpose(a)).at(0, 1), 3.0f);
}

TEST(TapeForwardTest, SoftmaxRowsSumToOne) {
  Tape tape;
  VarId a = tape.Constant(Tensor(2, 3, {1, 2, 3, -5, 0, 5}));
  const Tensor& y = tape.value(tape.SoftmaxRows(a));
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) {
      sum += y.at(r, c);
      EXPECT_GT(y.at(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(y.at(0, 2), y.at(0, 0));
}

TEST(TapeForwardTest, SoftmaxHandlesMaskValues) {
  Tape tape;
  VarId a = tape.Constant(Tensor(1, 3, {1.0f, -1e9f, 2.0f}));
  const Tensor& y = tape.value(tape.SoftmaxRows(a));
  EXPECT_NEAR(y.at(0, 1), 0.0f, 1e-12f);
  EXPECT_NEAR(y.at(0, 0) + y.at(0, 2), 1.0f, 1e-5f);
}

TEST(TapeForwardTest, SliceConcatRowAreInverses) {
  Tape tape;
  VarId a = tape.Constant(Tensor(2, 4, {1, 2, 3, 4, 5, 6, 7, 8}));
  VarId left = tape.SliceCols(a, 0, 2);
  VarId right = tape.SliceCols(a, 2, 2);
  VarId joined = tape.ConcatCols({left, right});
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(tape.value(joined).at(r, c), tape.value(a).at(r, c));
    }
  }
  VarId row1 = tape.Row(a, 1);
  EXPECT_EQ(tape.value(row1).at(0, 2), 7.0f);
  VarId stacked = tape.ConcatRows({tape.Row(a, 0), row1});
  EXPECT_EQ(tape.value(stacked).at(1, 3), 8.0f);
}

TEST(TapeForwardTest, Reductions) {
  Tape tape;
  VarId a = tape.Constant(Tensor(2, 3, {1, 2, 3, 4, 5, 6}));
  EXPECT_FLOAT_EQ(tape.value(tape.SumRows(a)).at(1, 0), 15.0f);
  EXPECT_FLOAT_EQ(tape.value(tape.SumAll(a)).at(0, 0), 21.0f);
  EXPECT_FLOAT_EQ(tape.value(tape.MeanAll(a)).at(0, 0), 3.5f);
}

TEST(TapeForwardTest, EmbeddingGather) {
  Tape tape;
  VarId table = tape.Constant(Tensor(3, 2, {0, 0, 10, 11, 20, 21}));
  VarId g = tape.EmbeddingGather(table, {2, 0, 1});
  EXPECT_FLOAT_EQ(tape.value(g).at(0, 1), 21.0f);
  EXPECT_FLOAT_EQ(tape.value(g).at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(tape.value(g).at(2, 0), 10.0f);
}

TEST(TapeForwardTest, DropoutInferenceIsIdentity) {
  Tape tape;
  VarId a = tape.Constant(Tensor(1, 4, {1, 2, 3, 4}));
  VarId d = tape.Dropout(a, 0.5f, /*training=*/false, nullptr);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(tape.value(d).at(0, c), tape.value(a).at(0, c));
  }
}

TEST(TapeForwardTest, DropoutTrainingZeroesAndRescales) {
  util::Rng rng(3);
  Tape tape;
  VarId a = tape.Constant(Tensor::Full(1, 1000, 1.0f));
  VarId d = tape.Dropout(a, 0.4f, /*training=*/true, &rng);
  int zeros = 0;
  for (int c = 0; c < 1000; ++c) {
    const float v = tape.value(d).at(0, c);
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5f);
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.4, 0.06);
}

TEST(TapeForwardTest, LayerNormNormalizesRows) {
  Tape tape;
  VarId x = tape.Constant(Tensor(2, 4, {1, 2, 3, 4, -10, 0, 10, 20}));
  VarId gain = tape.Constant(Tensor::Full(1, 4, 1.0f));
  VarId bias = tape.Constant(Tensor(1, 4));
  const Tensor& y = tape.value(tape.LayerNormRows(x, gain, bias));
  for (int r = 0; r < 2; ++r) {
    double mean = 0.0, var = 0.0;
    for (int c = 0; c < 4; ++c) mean += y.at(r, c);
    mean /= 4;
    for (int c = 0; c < 4; ++c) var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(TapeForwardTest, SoftmaxCrossEntropyValue) {
  Tape tape;
  // Uniform logits over 4 classes -> loss = log(4).
  VarId logits = tape.Constant(Tensor(2, 4));
  VarId loss = tape.SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(tape.value(loss).at(0, 0), std::log(4.0f), 1e-5f);
}

// ---------- Gradients (finite differences) ----------

/// Builds a scalar loss from a parameter via `graph`, checking analytic
/// vs. numeric gradients.
void CheckGraphGradient(
    Parameter* param,
    const std::function<VarId(Tape*, VarId)>& graph, float tol = 2e-2f) {
  auto loss_value = [&]() -> double {
    Tape tape;
    VarId p = tape.Param(param);
    VarId loss = graph(&tape, p);
    return tape.value(loss).at(0, 0);
  };
  auto loss_backward = [&]() -> double {
    Tape tape;
    VarId p = tape.Param(param);
    VarId loss = graph(&tape, p);
    tape.Backward(loss);
    return tape.value(loss).at(0, 0);
  };
  const GradCheckResult result =
      CheckGradients(loss_backward, loss_value, {param});
  EXPECT_GT(result.entries, 0u);
  EXPECT_LT(result.max_rel_error, tol)
      << "abs=" << result.max_abs_error;
}

struct GradCase {
  std::string name;
  std::function<VarId(Tape*, VarId)> graph;
};

class GradientCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradientCheckTest, AnalyticMatchesNumeric) {
  util::Rng rng(99);
  Parameter param(Tensor::Randn(3, 4, 0.7f, &rng));
  CheckGraphGradient(&param, GetParam().graph);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, GradientCheckTest,
    ::testing::Values(
        GradCase{"sum", [](Tape* t, VarId p) { return t->SumAll(p); }},
        GradCase{"mean", [](Tape* t, VarId p) { return t->MeanAll(p); }},
        GradCase{"scale_add",
                 [](Tape* t, VarId p) {
                   return t->SumAll(t->AddScalar(t->Scale(p, 1.7f), 0.3f));
                 }},
        GradCase{"square",
                 [](Tape* t, VarId p) { return t->SumAll(t->Mul(p, p)); }},
        GradCase{"relu",
                 [](Tape* t, VarId p) { return t->SumAll(t->Relu(p)); }},
        GradCase{"sigmoid",
                 [](Tape* t, VarId p) { return t->SumAll(t->Sigmoid(p)); }},
        GradCase{"tanh",
                 [](Tape* t, VarId p) { return t->SumAll(t->Tanh(p)); }},
        GradCase{"logsigmoid",
                 [](Tape* t, VarId p) {
                   return t->Scale(t->SumAll(t->LogSigmoid(p)), -1.0f);
                 }},
        GradCase{"softmax",
                 [](Tape* t, VarId p) {
                   VarId s = t->SoftmaxRows(p);
                   return t->SumAll(t->Mul(s, s));
                 }},
        GradCase{"transpose_matmul",
                 [](Tape* t, VarId p) {
                   VarId prod = t->MatMul(p, t->Transpose(p));
                   return t->SumAll(t->Mul(prod, prod));
                 }},
        GradCase{"slice_concat",
                 [](Tape* t, VarId p) {
                   VarId a = t->SliceCols(p, 0, 2);
                   VarId b = t->SliceCols(p, 2, 2);
                   VarId j = t->ConcatCols({b, a});
                   return t->SumAll(t->Mul(j, j));
                 }},
        GradCase{"rows",
                 [](Tape* t, VarId p) {
                   VarId r0 = t->Row(p, 0);
                   VarId r2 = t->Row(p, 2);
                   VarId j = t->ConcatRows({r0, r2});
                   return t->SumAll(t->Mul(j, j));
                 }},
        GradCase{"sumrows",
                 [](Tape* t, VarId p) {
                   VarId s = t->SumRows(p);
                   return t->SumAll(t->Mul(s, s));
                 }}),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

TEST(GradientCheckTest, MatMulTwoOperands) {
  util::Rng rng(7);
  Parameter a(Tensor::Randn(2, 3, 0.5f, &rng));
  Parameter b(Tensor::Randn(3, 2, 0.5f, &rng));
  auto build = [&](Tape* tape) {
    VarId va = tape->Param(&a);
    VarId vb = tape->Param(&b);
    VarId prod = tape->MatMul(va, vb);
    return tape->SumAll(tape->Mul(prod, prod));
  };
  auto loss_value = [&]() {
    Tape tape;
    return static_cast<double>(tape.value(build(&tape)).at(0, 0));
  };
  auto loss_backward = [&]() {
    Tape tape;
    VarId loss = build(&tape);
    tape.Backward(loss);
    return static_cast<double>(tape.value(loss).at(0, 0));
  };
  const GradCheckResult result =
      CheckGradients(loss_backward, loss_value, {&a, &b});
  EXPECT_LT(result.max_rel_error, 2e-2f);
}

TEST(GradientCheckTest, LayerNormAllParams) {
  util::Rng rng(11);
  Parameter x(Tensor::Randn(3, 5, 1.0f, &rng));
  Parameter gain(Tensor::Full(1, 5, 1.2f));
  Parameter bias(Tensor::Randn(1, 5, 0.3f, &rng));
  auto build = [&](Tape* tape) {
    VarId vx = tape->Param(&x);
    VarId vg = tape->Param(&gain);
    VarId vb = tape->Param(&bias);
    VarId y = tape->LayerNormRows(vx, vg, vb);
    return tape->SumAll(tape->Mul(y, y));
  };
  auto loss_value = [&]() {
    Tape tape;
    return static_cast<double>(tape.value(build(&tape)).at(0, 0));
  };
  auto loss_backward = [&]() {
    Tape tape;
    VarId loss = build(&tape);
    tape.Backward(loss);
    return static_cast<double>(tape.value(loss).at(0, 0));
  };
  const GradCheckResult result =
      CheckGradients(loss_backward, loss_value, {&x, &gain, &bias});
  EXPECT_LT(result.max_rel_error, 5e-2f);
}

TEST(GradientCheckTest, EmbeddingGatherScattersGrads) {
  util::Rng rng(13);
  Parameter table(Tensor::Randn(4, 3, 0.5f, &rng));
  auto build = [&](Tape* tape) {
    VarId vt = tape->Param(&table);
    VarId g = tape->EmbeddingGather(vt, {1, 3, 1});
    return tape->SumAll(tape->Mul(g, g));
  };
  auto loss_value = [&]() {
    Tape tape;
    return static_cast<double>(tape.value(build(&tape)).at(0, 0));
  };
  auto loss_backward = [&]() {
    Tape tape;
    VarId loss = build(&tape);
    tape.Backward(loss);
    return static_cast<double>(tape.value(loss).at(0, 0));
  };
  const GradCheckResult result =
      CheckGradients(loss_backward, loss_value, {&table});
  EXPECT_LT(result.max_rel_error, 2e-2f);
  // Row 0 and 2 are never gathered: loss must not depend on them, and the
  // analytic gradient there must be zero.
  Tape tape;
  VarId loss = build(&tape);
  tape.Backward(loss);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(table.grad().at(0, c), 0.0f);
    EXPECT_EQ(table.grad().at(2, c), 0.0f);
  }
}

TEST(GradientCheckTest, SoftmaxCrossEntropy) {
  util::Rng rng(17);
  Parameter logits(Tensor::Randn(4, 5, 1.0f, &rng));
  const std::vector<int> targets = {0, 2, 4, 2};
  auto build = [&](Tape* tape) {
    VarId v = tape->Param(&logits);
    return tape->SoftmaxCrossEntropy(v, targets);
  };
  auto loss_value = [&]() {
    Tape tape;
    return static_cast<double>(tape.value(build(&tape)).at(0, 0));
  };
  auto loss_backward = [&]() {
    Tape tape;
    VarId loss = build(&tape);
    tape.Backward(loss);
    return static_cast<double>(tape.value(loss).at(0, 0));
  };
  const GradCheckResult result =
      CheckGradients(loss_backward, loss_value, {&logits});
  EXPECT_LT(result.max_rel_error, 2e-2f);
}

TEST(GradientCheckTest, RowVectorBroadcasts) {
  util::Rng rng(19);
  Parameter x(Tensor::Randn(3, 4, 0.5f, &rng));
  Parameter bias(Tensor::Randn(1, 4, 0.5f, &rng));
  Parameter scale(Tensor::Randn(1, 4, 0.5f, &rng));
  auto build = [&](Tape* tape) {
    VarId vx = tape->Param(&x);
    VarId vb = tape->Param(&bias);
    VarId vs = tape->Param(&scale);
    VarId y = tape->MulRowVector(tape->AddRowVector(vx, vb), vs);
    return tape->SumAll(tape->Mul(y, y));
  };
  auto loss_value = [&]() {
    Tape tape;
    return static_cast<double>(tape.value(build(&tape)).at(0, 0));
  };
  auto loss_backward = [&]() {
    Tape tape;
    VarId loss = build(&tape);
    tape.Backward(loss);
    return static_cast<double>(tape.value(loss).at(0, 0));
  };
  const GradCheckResult result =
      CheckGradients(loss_backward, loss_value, {&x, &bias, &scale});
  EXPECT_LT(result.max_rel_error, 2e-2f);
}

TEST(TapeBackwardTest, GradAccumulatesAcrossUses) {
  Parameter p(Tensor(1, 1, {3.0f}));
  Tape tape;
  VarId v = tape.Param(&p);
  // loss = v*v + 2v -> dL/dv = 2v + 2 = 8.
  VarId loss = tape.SumAll(tape.Add(tape.Mul(v, v), tape.Scale(v, 2.0f)));
  tape.Backward(loss);
  EXPECT_NEAR(p.grad().at(0, 0), 8.0f, 1e-4f);
}

TEST(TapeBackwardTest, ParamGradsAccumulateAcrossTapes) {
  Parameter p(Tensor(1, 1, {1.0f}));
  for (int i = 0; i < 3; ++i) {
    Tape tape;
    VarId v = tape.Param(&p);
    tape.Backward(tape.SumAll(v));
  }
  EXPECT_NEAR(p.grad().at(0, 0), 3.0f, 1e-5f);
}

// ---------- Reset / tensor recycling ----------

/// A graph touching every pooling path: copies (Relu), fresh buffers
/// (MatMul, SoftmaxRows), gathers, shared op scratch (LayerNormRows'
/// normalized activations, SoftmaxCrossEntropy's probabilities, Dropout's
/// mask), and lazily pooled gradients.
float BuildGraphAndBackward(Tape* tape, Parameter* table, Parameter* w,
                            Parameter* gain, Parameter* bias,
                            util::Rng* rng) {
  VarId x = tape->EmbeddingGather(tape->Param(table), {0, 2, 1, 3});
  VarId h = tape->MatMul(x, tape->Param(w));
  h = tape->LayerNormRows(h, tape->Param(gain), tape->Param(bias));
  h = tape->Dropout(tape->Relu(h), 0.25f, /*training=*/true, rng);
  VarId att = tape->SoftmaxRows(h);
  VarId loss = tape->SoftmaxCrossEntropy(tape->MatMul(att, tape->Transpose(
                                             tape->Param(table))),
                                         {1, 2, 3, 0});
  tape->Backward(loss);
  return tape->value(loss).at(0, 0);
}

TEST(TapeResetTest, ReusedTapeMatchesFreshTapesBitwise) {
  util::Rng init(6);
  Parameter table(Tensor::Randn(5, 4, 0.5f, &init));
  Parameter w(Tensor::Randn(4, 4, 0.5f, &init));
  Parameter gain(Tensor(1, 4, {1.0f, 1.0f, 1.0f, 1.0f}));
  Parameter bias(Tensor(1, 4));
  Tape reused;
  for (int step = 0; step < 5; ++step) {
    // Identical RNG streams so dropout masks match between the two runs.
    util::Rng fresh_rng(100 + step);
    util::Rng reused_rng(100 + step);
    Tape fresh;
    const float fresh_loss =
        BuildGraphAndBackward(&fresh, &table, &w, &gain, &bias, &fresh_rng);
    const Tensor fresh_table_grad = table.grad();
    table.ZeroGrad();
    w.ZeroGrad();
    gain.ZeroGrad();
    bias.ZeroGrad();
    reused.Reset();
    const float reused_loss =
        BuildGraphAndBackward(&reused, &table, &w, &gain, &bias, &reused_rng);
    EXPECT_EQ(fresh_loss, reused_loss);
    ASSERT_TRUE(fresh_table_grad.SameShape(table.grad()));
    for (int i = 0; i < fresh_table_grad.rows(); ++i) {
      for (int j = 0; j < fresh_table_grad.cols(); ++j) {
        EXPECT_EQ(fresh_table_grad.at(i, j), table.grad().at(i, j));
      }
    }
    table.ZeroGrad();
    w.ZeroGrad();
    gain.ZeroGrad();
    bias.ZeroGrad();
  }
}

TEST(TapeResetTest, WarmReplayAllocatesNoTensors) {
  util::Rng init(7);
  Parameter table(Tensor::Randn(5, 4, 0.5f, &init));
  Parameter w(Tensor::Randn(4, 4, 0.5f, &init));
  Parameter gain(Tensor(1, 4, {1.0f, 1.0f, 1.0f, 1.0f}));
  Parameter bias(Tensor(1, 4));
  Tape tape;
  util::Rng warm_rng(8);
  BuildGraphAndBackward(&tape, &table, &w, &gain, &bias, &warm_rng);
  SetTensorMemTrackingEnabled(true);
  const uint64_t allocs_before = TensorMemStats().alloc_count;
  for (int step = 0; step < 4; ++step) {
    util::Rng rng(9 + step);
    tape.Reset();
    BuildGraphAndBackward(&tape, &table, &w, &gain, &bias, &rng);
  }
  const uint64_t allocs_after = TensorMemStats().alloc_count;
  SetTensorMemTrackingEnabled(false);
  EXPECT_EQ(allocs_after, allocs_before)
      << "replaying the same graph on a Reset tape must hit the pool";
}

TEST(TapeResetTest, ResetClearsNodesButKeepsTapeUsable) {
  Tape tape;
  VarId a = tape.Leaf(Tensor(2, 2, {1.0f, 2.0f, 3.0f, 4.0f}));
  tape.SumAll(a);
  EXPECT_EQ(tape.NumNodes(), 2u);
  tape.Reset();
  EXPECT_EQ(tape.NumNodes(), 0u);
  VarId b = tape.Leaf(Tensor(2, 2, {5.0f, 6.0f, 7.0f, 8.0f}));
  VarId total = tape.SumAll(b);
  EXPECT_FLOAT_EQ(tape.value(total).at(0, 0), 26.0f);
  tape.Backward(total);
  EXPECT_FLOAT_EQ(tape.grad(b).at(0, 0), 1.0f);
}

// ---------- Per-op profiler ----------

/// Serializes tests that toggle the process-wide profiler.
class TapeProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TapeProfiler::SetEnabled(true);
    TapeProfiler::Reset();
  }
  void TearDown() override {
    TapeProfiler::SetEnabled(false);
    TapeProfiler::Reset();
  }

  /// One matmul forward+backward: [4x5] @ [5x6].
  static void RunMatMulGraph() {
    Tape tape;
    VarId a = tape.Leaf(Tensor(4, 5, std::vector<float>(20, 0.5f)));
    VarId b = tape.Leaf(Tensor(5, 6, std::vector<float>(30, 0.25f)));
    tape.Backward(tape.SumAll(tape.MatMul(a, b)));
  }

  static const OpProfile* FindOp(const std::vector<OpProfile>& rows,
                                 OpKind kind) {
    for (const OpProfile& row : rows) {
      if (row.kind == kind) return &row;
    }
    return nullptr;
  }
};

TEST_F(TapeProfilerTest, DisabledRecordsNothing) {
  TapeProfiler::SetEnabled(false);
  RunMatMulGraph();
  EXPECT_TRUE(TapeProfiler::Snapshot().empty());
  EXPECT_TRUE(TapeProfiler::FormatTable().empty());
}

TEST_F(TapeProfilerTest, RecordsCallsTimeAndMatMulFlops) {
  RunMatMulGraph();
  const std::vector<OpProfile> rows = TapeProfiler::Snapshot();
  const OpProfile* mm = FindOp(rows, OpKind::kMatMul);
  ASSERT_NE(mm, nullptr);
  EXPECT_STREQ(mm->name, "matmul");
  EXPECT_EQ(mm->calls, 1u);
  EXPECT_EQ(mm->backward_calls, 1u);
  EXPECT_EQ(mm->flops, 2ull * 4 * 5 * 6);  // 2mkn
  EXPECT_GT(mm->bytes, 0u);
  EXPECT_GE(mm->forward_ms, 0.0);
  EXPECT_GE(mm->backward_ms, 0.0);
  // SumAll ran too, and the snapshot is sorted by total time descending.
  EXPECT_NE(FindOp(rows, OpKind::kSumAll), nullptr);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].TotalMs(), rows[i].TotalMs());
  }
}

TEST_F(TapeProfilerTest, ResetClearsAndTableMentionsOps) {
  RunMatMulGraph();
  const std::string table = TapeProfiler::FormatTable();
  EXPECT_NE(table.find("matmul"), std::string::npos);
  EXPECT_NE(table.find("sum_all"), std::string::npos);
  TapeProfiler::Reset();
  EXPECT_TRUE(TapeProfiler::Snapshot().empty());
}

TEST_F(TapeProfilerTest, ExportToPublishesPerOpSeries) {
  RunMatMulGraph();
  obs::MetricsRegistry reg;
  TapeProfiler::ExportTo(&reg);
  EXPECT_EQ(reg.GetCounter("nn/op/calls", {{"op", "matmul"}})->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("nn/op/flops", {{"op", "matmul"}})->Value(),
            2ull * 4 * 5 * 6);
}

TEST_F(TapeProfilerTest, PerOpTapeCountersRoundTripThroughJsonl) {
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  const uint64_t agg_before = reg.GetCounter("nn/tape_ops_total")->Value();
  const uint64_t mm_before =
      reg.GetCounter("nn/tape_ops_total", {{"op", "matmul"}})->Value();
  RunMatMulGraph();
  // Graph: 2 leaves + matmul + sum_all = 4 nodes; exactly one matmul.
  EXPECT_EQ(reg.GetCounter("nn/tape_ops_total")->Value(), agg_before + 4);
  EXPECT_EQ(reg.GetCounter("nn/tape_ops_total", {{"op", "matmul"}})->Value(),
            mm_before + 1);
  // The labeled series must survive JSONL export with its label attached.
  std::ostringstream os;
  reg.WriteJsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  bool found = false;
  while (std::getline(lines, line)) {
    if (line.find("\"nn/tape_ops_total\"") == std::string::npos) continue;
    if (line.find("\"op\":\"matmul\"") == std::string::npos) continue;
    found = true;
    EXPECT_NE(line.find("\"type\":\"counter\""), std::string::npos) << line;
  }
  EXPECT_TRUE(found) << "no labeled nn/tape_ops_total{op=matmul} line";
}

}  // namespace
}  // namespace ucad::nn
