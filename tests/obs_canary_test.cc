// CanaryEngine with fake score/expect callbacks: probe construction
// (normal / rare-injection / mimicry substitution and its fallback),
// verdict accounting into the canary/* metrics, and the rolling hit-rate
// window. The real-detector integration lives in canary_shadow_test.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/canary.h"
#include "obs/metrics.h"
#include "sql/statement.h"
#include "sql/vocabulary.h"
#include "util/rng.h"
#include "workload/commenting.h"
#include "workload/scenario.h"

namespace ucad::obs {
namespace {

/// Generator + frozen vocabulary over the commenting scenario — the same
/// construction the CLI uses before handing both to the engine.
class CanaryEngineTest : public ::testing::Test {
 protected:
  CanaryEngineTest() : generator_(workload::MakeCommentingScenario()) {
    util::Rng rng(11);
    for (int i = 0; i < 200; ++i) {
      for (const auto& op : generator_.GenerateNormal(&rng).operations) {
        vocab_.GetOrAssign(sql::ParseStatement(op.sql));
      }
    }
  }

  workload::SessionGenerator generator_;
  sql::Vocabulary vocab_;
};

TEST_F(CanaryEngineTest, NormalProbeTokenizesToKnownKeys) {
  MetricsRegistry registry;
  std::vector<int> seen;
  CanaryEngine engine(
      &generator_, &vocab_,
      [&seen](const std::vector<int>& keys) {
        seen = keys;
        return false;
      },
      nullptr, CanaryOptions{}, &registry);
  const ProbeResult result = engine.RunProbe(ProbeClass::kNormal);
  EXPECT_FALSE(result.expected_abnormal);
  EXPECT_FALSE(result.flagged);
  EXPECT_TRUE(result.Correct());
  ASSERT_FALSE(seen.empty());
  // A vocabulary frozen over the same scenario knows every key: no k0.
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 0), 0);
}

TEST_F(CanaryEngineTest, MimicryProbeSubstitutesTheExpectCallbacksCandidate) {
  MetricsRegistry registry;
  CanaryOptions options;
  options.top_p = 5;
  std::vector<int> seen;
  int expect_calls = 0;
  int asked_top_k = 0;
  CanaryEngine engine(
      &generator_, &vocab_,
      [&seen](const std::vector<int>& keys) {
        seen = keys;
        return true;
      },
      // Fake model: the (top_p+1)-th expected candidate is the sentinel
      // 9999, which no tokenized session can contain.
      [&expect_calls, &asked_top_k](const std::vector<int>& keys,
                                    int position, int top_k) {
        EXPECT_GE(position, 1);
        EXPECT_LT(position, static_cast<int>(keys.size()));
        ++expect_calls;
        asked_top_k = top_k;
        return std::vector<int>{1, 2, 3, 4, 5, 9999};
      },
      options, &registry);
  const ProbeResult result = engine.RunProbe(ProbeClass::kMimicry);
  EXPECT_TRUE(result.expected_abnormal);
  EXPECT_EQ(expect_calls, 1);
  // The engine asks for one candidate beyond the admission set...
  EXPECT_EQ(asked_top_k, options.top_p + 1);
  // ...and substitutes exactly that candidate into the scored session.
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 9999), 1);
}

TEST_F(CanaryEngineTest, MimicryFallsBackToUnknownKeyWhenNoCandidate) {
  // An expect callback whose vocabulary is smaller than top_p+1 cannot
  // name a key outside the admission set: the probe degrades to an
  // unknown-key (k0) substitution, which always flags.
  MetricsRegistry registry;
  std::vector<int> seen;
  CanaryEngine engine(
      &generator_, &vocab_,
      [&seen](const std::vector<int>& keys) {
        seen = keys;
        return true;
      },
      [](const std::vector<int>&, int, int) {
        return std::vector<int>{1, 2};  // fewer than top_p+1 candidates
      },
      CanaryOptions{}, &registry);
  const ProbeResult result = engine.RunProbe(ProbeClass::kMimicry);
  EXPECT_TRUE(result.expected_abnormal);
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 0), 1);
}

TEST_F(CanaryEngineTest, RunRoundSkipsMimicryWithoutExpectCallback) {
  MetricsRegistry registry;
  CanaryEngine without(
      &generator_, &vocab_, [](const std::vector<int>&) { return false; },
      nullptr, CanaryOptions{}, &registry);
  EXPECT_EQ(without.RunRound().size(), 2u);
  MetricsRegistry registry2;
  CanaryEngine with(
      &generator_, &vocab_, [](const std::vector<int>&) { return false; },
      [](const std::vector<int>&, int, int) {
        return std::vector<int>{1, 2, 3, 4, 5, 6};
      },
      CanaryOptions{}, &registry2);
  const std::vector<ProbeResult> round = with.RunRound();
  ASSERT_EQ(round.size(), 3u);
  EXPECT_EQ(round[0].probe_class, ProbeClass::kNormal);
  EXPECT_EQ(round[1].probe_class, ProbeClass::kRareInjection);
  EXPECT_EQ(round[2].probe_class, ProbeClass::kMimicry);
}

TEST_F(CanaryEngineTest, AccountingSplitsVerdictsByExpectation) {
  // A detector that flags EVERYTHING: expected-abnormal probes become true
  // flags, the known-normal probe becomes a false flag.
  MetricsRegistry registry;
  CanaryEngine engine(
      &generator_, &vocab_, [](const std::vector<int>&) { return true; },
      [](const std::vector<int>&, int, int) {
        return std::vector<int>{1, 2, 3, 4, 5, 9999};
      },
      CanaryOptions{}, &registry);
  engine.RunRound();
  EXPECT_EQ(engine.ProbesTotal(), 3u);
  EXPECT_EQ(engine.TrueFlags(), 2u);
  EXPECT_EQ(engine.MissedFlags(), 0u);
  EXPECT_EQ(engine.FalseFlags(), 1u);
  EXPECT_EQ(registry.GetCounter("canary/true_flag_total")->Value(), 2u);
  EXPECT_EQ(registry.GetCounter("canary/missed_flag_total")->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("canary/false_flag_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("canary/clean_probes_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("canary/expected_flag_total")->Value(), 2u);
  for (const char* cls : {"normal", "rare_injection", "mimicry"}) {
    EXPECT_EQ(registry
                  .GetCounter("canary/probes_total", {{"class", cls}})
                  ->Value(),
              1u)
        << cls;
    EXPECT_EQ(registry
                  .GetHistogram("canary/probe_latency_ms", {{"class", cls}},
                                Histogram::DefaultLatencyBounds())
                  ->Count(),
              1u)
        << cls;
  }
  // 2 correct out of 3: the rolling gauge mirrors HitRate().
  EXPECT_NEAR(engine.HitRate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(registry.GetGauge("canary/hit_rate")->Value(), 2.0 / 3.0,
              1e-12);
}

TEST_F(CanaryEngineTest, SilentDetectorAccumulatesMisses) {
  // A detector that flags NOTHING: expected-abnormal probes are misses.
  MetricsRegistry registry;
  CanaryEngine engine(
      &generator_, &vocab_, [](const std::vector<int>&) { return false; },
      nullptr, CanaryOptions{}, &registry);
  engine.RunRound();
  engine.RunRound();
  EXPECT_EQ(engine.MissedFlags(), 2u);
  EXPECT_EQ(engine.TrueFlags(), 0u);
  EXPECT_EQ(engine.FalseFlags(), 0u);
  EXPECT_EQ(registry.GetCounter("canary/missed_flag_total")->Value(), 2u);
  EXPECT_EQ(registry.GetCounter("canary/expected_flag_total")->Value(), 2u);
  // Normal probes were correct, rare-injection probes were not.
  EXPECT_NEAR(engine.HitRate(), 0.5, 1e-12);
}

TEST_F(CanaryEngineTest, HitRateIsARollingWindow) {
  MetricsRegistry registry;
  bool verdict = false;
  CanaryOptions options;
  options.hit_rate_window = 4;
  CanaryEngine engine(
      &generator_, &vocab_,
      [&verdict](const std::vector<int>&) { return verdict; }, nullptr,
      options, &registry);
  EXPECT_DOUBLE_EQ(engine.HitRate(), 1.0);  // before any probe
  // 4 wrong verdicts (normal probes flagged), then 4 right ones: the
  // window must forget the wrong run entirely.
  verdict = true;
  for (int i = 0; i < 4; ++i) engine.RunProbe(ProbeClass::kNormal);
  EXPECT_DOUBLE_EQ(engine.HitRate(), 0.0);
  verdict = false;
  for (int i = 0; i < 4; ++i) engine.RunProbe(ProbeClass::kNormal);
  EXPECT_DOUBLE_EQ(engine.HitRate(), 1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("canary/hit_rate")->Value(), 1.0);
}

}  // namespace
}  // namespace ucad::obs
