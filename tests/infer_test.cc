// Locks down the tentpole guarantee of the tape-free inference engine
// (src/nn/infer): for any model config, window, and thread count, the fused
// forward kernels produce all-key logits BITWISE-identical to the recording
// autograd tape, while performing zero tensor allocations at steady state.
// Also covers the fused masked-softmax's numerical stability at extreme
// magnitudes and the unknown-key contract of the shared Eq. 10 scorer.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "eval/dataset.h"
#include "eval/experiment_config.h"
#include "nn/infer.h"
#include "nn/tape.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ucad {
namespace {

/// Restores single-thread mode even when a test fails mid-way, so later
/// tests in this binary never inherit a parallel pool unexpectedly.
class ThreadGuard {
 public:
  ~ThreadGuard() { util::SetNumThreads(1); }
};

void ExpectBitwiseEqual(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_TRUE(a.SameShape(b));
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a.at(i, j), b.at(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

std::vector<int> RandomWindow(const transdas::TransDasConfig& config,
                              util::Rng* rng) {
  std::vector<int> window(config.window);
  for (int& key : window) {
    key = static_cast<int>(rng->UniformU64(config.vocab_size));
  }
  return window;
}

/// Tape-path all-key logits for one window (the reference engine).
nn::Tensor TapeLogits(transdas::TransDasModel* model,
                      const std::vector<int>& window) {
  nn::Tape tape;
  nn::VarId outputs =
      model->Forward(&tape, window, /*training=*/false, nullptr);
  return tape.value(model->AllKeyLogits(&tape, outputs));
}

// ---------- Bitwise parity: tape engine == inference engine ----------

TEST(InferParityTest, LogitsMatchTapeBitwiseAcrossConfigsAndThreadCounts) {
  ThreadGuard guard;
  // Three configs spanning window length, head count, depth, mask mode,
  // and the position-embedding ablation.
  std::vector<transdas::TransDasConfig> configs(3);
  configs[0].vocab_size = 20;
  configs[0].window = 6;
  configs[0].hidden_dim = 8;
  configs[0].num_heads = 2;
  configs[0].num_blocks = 1;
  configs[1].vocab_size = 37;
  configs[1].window = 12;
  configs[1].hidden_dim = 12;
  configs[1].num_heads = 3;
  configs[1].num_blocks = 2;
  configs[1].use_position_embedding = true;
  configs[1].mask_mode = transdas::MaskMode::kCausal;
  configs[2].vocab_size = 51;
  configs[2].window = 30;
  configs[2].hidden_dim = 10;
  configs[2].num_heads = 2;
  configs[2].num_blocks = 3;

  util::Rng rng(1234);
  for (size_t c = 0; c < configs.size(); ++c) {
    transdas::TransDasModel model(configs[c], &rng);
    nn::InferenceContext ctx;
    for (int trial = 0; trial < 4; ++trial) {
      const std::vector<int> window = RandomWindow(configs[c], &rng);
      util::SetNumThreads(1);
      const nn::Tensor serial_tape = TapeLogits(&model, window);
      for (int threads : {1, 2, 8}) {
        util::SetNumThreads(threads);
        // Tape at this thread count must equal the serial tape (the PR 4
        // guarantee), and the fused engine must equal the tape — and hence
        // the serial reference — bitwise, reusing one context across every
        // trial and thread count.
        ExpectBitwiseEqual(TapeLogits(&model, window), serial_tape);
        const nn::Tensor& fused = model.AllKeyLogitsInference(
            &ctx, model.ForwardInference(&ctx, window));
        ExpectBitwiseEqual(fused, serial_tape);
      }
      util::SetNumThreads(1);
    }
  }
}

TEST(InferParityTest, TailRestrictedRowsMatchFullForwardBitwise) {
  ThreadGuard guard;
  // The detector only reads logits rows >= rows_from, so the engine skips
  // the final block's row-wise tail below that row. Every computed row must
  // still be bitwise what the full forward (and hence the tape) produces,
  // for any cut point, including the streaming scorer's L-1.
  transdas::TransDasConfig config;
  config.vocab_size = 23;
  config.window = 10;
  config.hidden_dim = 10;
  config.num_heads = 2;
  config.num_blocks = 2;
  util::Rng rng(99);
  transdas::TransDasModel model(config, &rng);
  nn::InferenceContext full_ctx;
  nn::InferenceContext tail_ctx;
  for (int trial = 0; trial < 3; ++trial) {
    const std::vector<int> window = RandomWindow(config, &rng);
    const nn::Tensor reference = TapeLogits(&model, window);
    for (int rows_from : {0, 1, 4, config.window - 1}) {
      const nn::Tensor& restricted = model.AllKeyLogitsInference(
          &tail_ctx, model.ForwardInference(&tail_ctx, window, rows_from),
          rows_from);
      ASSERT_TRUE(restricted.SameShape(reference));
      for (int i = rows_from; i < config.window; ++i) {
        for (int j = 0; j < reference.cols(); ++j) {
          ASSERT_EQ(restricted.at(i, j), reference.at(i, j))
              << "rows_from " << rows_from << " at (" << i << ", " << j << ")";
        }
      }
    }
    // A full forward on a context that previously ran restricted frames
    // must also stay exact (workspace slots are shared across cut points).
    ExpectBitwiseEqual(model.AllKeyLogitsInference(
                           &full_ctx, model.ForwardInference(&full_ctx, window)),
                       reference);
  }
}

TEST(InferParityTest, FineTuneInvalidatesCachedTransposedTable) {
  transdas::TransDasConfig config;
  config.vocab_size = 16;
  config.window = 6;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 1;
  util::Rng rng(77);
  transdas::TransDasModel model(config, &rng);
  nn::InferenceContext ctx;
  const std::vector<int> window = RandomWindow(config, &rng);
  ExpectBitwiseEqual(
      model.AllKeyLogitsInference(&ctx, model.ForwardInference(&ctx, window)),
      TapeLogits(&model, window));
  // Mutate the embedding table the way fine-tuning does (optimizer step +
  // FreezePaddingRow bumps weight_version): the cached M^T must rebuild.
  nn::Tensor& table = model.embedding().table().value();
  for (int i = 0; i < table.rows(); ++i) {
    for (int j = 0; j < table.cols(); ++j) table.at(i, j) += 0.25f;
  }
  model.FreezePaddingRow();
  ExpectBitwiseEqual(
      model.AllKeyLogitsInference(&ctx, model.ForwardInference(&ctx, window)),
      TapeLogits(&model, window));
}

// ---------- Verdict identity on Table 2 workloads ----------

TEST(InferParityTest, DetectSessionVerdictsIdenticalOnScenarioWorkloads) {
  ThreadGuard guard;
  eval::ScenarioConfig config = eval::ScenarioIConfig(eval::Scale::kSmoke);
  const eval::ScenarioDataset dataset =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  config.model.vocab_size = dataset.vocab.size();
  util::Rng rng(5);
  transdas::TransDasModel model(config.model, &rng);
  config.training.epochs = 2;
  transdas::TransDasTrainer trainer(&model, config.training);
  trainer.Train(dataset.train);

  transdas::DetectorOptions tape_opts = config.detection;
  tape_opts.use_tape_engine = true;
  transdas::DetectorOptions infer_opts = config.detection;
  infer_opts.use_tape_engine = false;
  const transdas::TransDasDetector tape_engine(&model, tape_opts);
  const transdas::TransDasDetector infer_engine(&model, infer_opts);

  int sessions = 0;
  for (const eval::LabeledSet& set : dataset.TestSets()) {
    for (const std::vector<int>& keys : set.sessions) {
      for (int threads : {1, 4}) {
        util::SetNumThreads(threads);
        const transdas::SessionVerdict expected =
            tape_engine.DetectSession(keys);
        const transdas::SessionVerdict got = infer_engine.DetectSession(keys);
        ASSERT_EQ(expected.abnormal, got.abnormal);
        ASSERT_EQ(expected.operations.size(), got.operations.size());
        for (size_t i = 0; i < expected.operations.size(); ++i) {
          ASSERT_EQ(expected.operations[i].position, got.operations[i].position);
          ASSERT_EQ(expected.operations[i].rank, got.operations[i].rank);
          ASSERT_EQ(expected.operations[i].abnormal, got.operations[i].abnormal);
          ASSERT_EQ(expected.operations[i].score, got.operations[i].score);
          ASSERT_EQ(expected.operations[i].margin, got.operations[i].margin);
        }
      }
      util::SetNumThreads(1);
      ++sessions;
    }
  }
  EXPECT_GT(sessions, 0);
}

TEST(InferParityTest, StreamingScorerMatchesAcrossEngines) {
  transdas::TransDasConfig config;
  config.vocab_size = 24;
  config.window = 8;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 2;
  util::Rng rng(11);
  transdas::TransDasModel model(config, &rng);
  transdas::DetectorOptions tape_opts;
  tape_opts.use_tape_engine = true;
  const transdas::TransDasDetector tape_engine(&model, tape_opts);
  const transdas::TransDasDetector infer_engine(&model,
                                                transdas::DetectorOptions{});
  std::vector<int> preceding;
  for (int step = 0; step < 12; ++step) {
    const int next = 1 + static_cast<int>(rng.UniformU64(config.vocab_size - 1));
    const transdas::OperationVerdict a =
        tape_engine.ScoreNextOperation(preceding, next);
    const transdas::OperationVerdict b =
        infer_engine.ScoreNextOperation(preceding, next);
    ASSERT_EQ(a.rank, b.rank);
    ASSERT_EQ(a.score, b.score);
    ASSERT_EQ(a.margin, b.margin);
    ASSERT_EQ(a.abnormal, b.abnormal);
    preceding.push_back(next);
  }
}

// ---------- Masked-softmax numerical stability ----------

TEST(MaskedSoftmaxKernelTest, ExtremeMagnitudesStayFinite) {
  // Rows mixing |x| >= 80 entries of both signs with -1e9 mask terms: the
  // max-subtracted exp keeps every probability finite and normalized.
  nn::Tensor scores(4, 6);
  nn::Tensor mask(4, 6);
  util::Rng rng(3);
  for (int r = 0; r < scores.rows(); ++r) {
    for (int c = 0; c < scores.cols(); ++c) {
      const float magnitude = 80.0f + static_cast<float>(rng.UniformU64(40));
      scores.at(r, c) = rng.Bernoulli(0.5) ? magnitude : -magnitude;
      mask.at(r, c) = (c == (r + 1) % scores.cols()) ? -1e9f : 0.0f;
    }
  }
  nn::MaskedSoftmaxKernel(&scores, 1.0f, mask);
  for (int r = 0; r < scores.rows(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < scores.cols(); ++c) {
      ASSERT_TRUE(std::isfinite(scores.at(r, c)));
      ASSERT_GE(scores.at(r, c), 0.0f);
      sum += scores.at(r, c);
      if (mask.at(r, c) < 0.0f) {
        EXPECT_EQ(scores.at(r, c), 0.0f);
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(MaskedSoftmaxKernelTest, ExtremeWeightsStayFiniteInBothEngines) {
  transdas::TransDasConfig config;
  config.vocab_size = 14;
  config.window = 6;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 2;
  util::Rng rng(21);
  transdas::TransDasModel model(config, &rng);
  // Blow the embedding magnitudes up so attention scores clear |x| >= 80
  // before masking; both engines must stay NaN/Inf-free and agree bitwise.
  nn::Tensor& table = model.embedding().table().value();
  for (int i = 1; i < table.rows(); ++i) {
    for (int j = 0; j < table.cols(); ++j) table.at(i, j) *= 60.0f;
  }
  model.MarkWeightsUpdated();
  const std::vector<int> window = RandomWindow(config, &rng);
  const nn::Tensor tape_logits = TapeLogits(&model, window);
  nn::InferenceContext ctx;
  const nn::Tensor& fused = model.AllKeyLogitsInference(
      &ctx, model.ForwardInference(&ctx, window));
  for (int i = 0; i < fused.rows(); ++i) {
    for (int j = 0; j < fused.cols(); ++j) {
      ASSERT_TRUE(std::isfinite(fused.at(i, j)));
    }
  }
  ExpectBitwiseEqual(fused, tape_logits);
}

// ---------- Unknown-key contract of the shared scorer ----------

TEST(ScoreLogitsRowTest, UnknownKeysKeepInfiniteNegativeMargin) {
  const std::vector<float> logits = {0.0f, 3.0f, 2.0f, 1.0f, -1.0f};
  for (int key : {0, -3, 5, 99}) {
    const nn::RowScore rs =
        nn::ScoreLogitsRow(logits.data(), static_cast<int>(logits.size()),
                           key, /*top_p=*/2);
    EXPECT_EQ(rs.rank, static_cast<int>(logits.size()) + 1);
    EXPECT_EQ(rs.score, 0.0f);
    EXPECT_TRUE(std::isinf(rs.margin));
    EXPECT_LT(rs.margin, 0.0f);
    EXPECT_TRUE(rs.abnormal);
  }
}

TEST(ScoreLogitsRowTest, RankAndMarginAgreeOnKnownKeys) {
  const std::vector<float> logits = {0.0f, 3.0f, 2.0f, 1.0f, -1.0f};
  // key 2 has logit 2.0: rank 2, cutoff = 2nd-largest = 2.0 -> margin 0.
  nn::RowScore rs = nn::ScoreLogitsRow(logits.data(), 5, 2, /*top_p=*/2);
  EXPECT_EQ(rs.rank, 2);
  EXPECT_EQ(rs.score, 2.0f);
  EXPECT_EQ(rs.margin, 0.0f);
  EXPECT_FALSE(rs.abnormal);
  // key 4 has the worst logit: rank 4 > p, margin < 0.
  rs = nn::ScoreLogitsRow(logits.data(), 5, 4, /*top_p=*/2);
  EXPECT_EQ(rs.rank, 4);
  EXPECT_EQ(rs.score, -1.0f);
  EXPECT_LT(rs.margin, 0.0f);
  EXPECT_TRUE(rs.abnormal);
}

TEST(ScoreLogitsRowTest, DetectorFlagsUnknownKeyWithInfiniteMargin) {
  transdas::TransDasConfig config;
  config.vocab_size = 12;
  config.window = 6;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 1;
  util::Rng rng(9);
  transdas::TransDasModel model(config, &rng);
  const transdas::TransDasDetector detector(&model,
                                            transdas::DetectorOptions{});
  // Key 0 (k0/unknown) mid-session must be flagged with margin -inf under
  // the fused engine.
  const transdas::SessionVerdict verdict =
      detector.DetectSession({1, 2, 0, 4, 5, 6});
  ASSERT_TRUE(verdict.abnormal);
  bool found = false;
  for (const transdas::OperationVerdict& op : verdict.operations) {
    if (op.position == 2) {
      EXPECT_EQ(op.rank, config.vocab_size + 1);
      EXPECT_TRUE(std::isinf(op.margin));
      EXPECT_LT(op.margin, 0.0f);
      EXPECT_TRUE(op.abnormal);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------- Workspace reuse: zero steady-state allocations ----------

TEST(WorkspaceTest, SteadyStateForwardsAllocateNothing) {
  transdas::TransDasConfig config;
  config.vocab_size = 30;
  config.window = 10;
  config.hidden_dim = 12;
  config.num_heads = 2;
  config.num_blocks = 2;
  util::Rng rng(13);
  transdas::TransDasModel model(config, &rng);
  nn::InferenceContext ctx;
  const std::vector<int> warm = RandomWindow(config, &rng);
  model.AllKeyLogitsInference(&ctx, model.ForwardInference(&ctx, warm));

  nn::SetTensorMemTrackingEnabled(true);
  const uint64_t allocs_before = nn::TensorMemStats().alloc_count;
  const uint64_t forwards_before = nn::internal::InferForwardsTotal();
  for (int trial = 0; trial < 8; ++trial) {
    const std::vector<int> window = RandomWindow(config, &rng);
    model.AllKeyLogitsInference(&ctx, model.ForwardInference(&ctx, window));
  }
  const uint64_t allocs_after = nn::TensorMemStats().alloc_count;
  nn::SetTensorMemTrackingEnabled(false);
  EXPECT_EQ(allocs_after, allocs_before)
      << "warm inference forwards must not allocate tensors";
  EXPECT_EQ(nn::internal::InferForwardsTotal(), forwards_before + 8);
  EXPECT_GT(ctx.workspace().TotalBytes(), 0u);
  EXPECT_GT(ctx.workspace().NumBuffers(), 0u);
}

TEST(WorkspaceTest, PublishesInferMetrics) {
  transdas::TransDasConfig config;
  config.vocab_size = 10;
  config.window = 4;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 1;
  util::Rng rng(17);
  transdas::TransDasModel model(config, &rng);
  {
    nn::InferenceContext ctx;
    const std::vector<int> window = RandomWindow(config, &rng);
    model.AllKeyLogitsInference(&ctx, model.ForwardInference(&ctx, window));
    obs::MetricsRegistry registry;
    nn::PublishInferMetrics(&registry);
    EXPECT_GE(registry.GetCounter("nn/infer/contexts_total")->Value(), 1u);
    EXPECT_GE(registry.GetCounter("nn/infer/forwards_total")->Value(), 1u);
    EXPECT_GE(registry.GetGauge("nn/infer/live_contexts")->Value(), 1.0);
    EXPECT_GT(registry.GetGauge("nn/infer/workspace_live_bytes")->Value(),
              0.0);
    EXPECT_GT(registry.GetGauge("nn/infer/workspace_peak_bytes")->Value(),
              0.0);
  }
}

}  // namespace
}  // namespace ucad
