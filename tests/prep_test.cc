#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "prep/access_control.h"
#include "prep/dbscan.h"
#include "prep/ngram.h"
#include "prep/preprocessor.h"
#include "prep/session_filter.h"
#include "util/rng.h"
#include "workload/commenting.h"
#include "workload/location.h"

namespace ucad::prep {
namespace {

// ---------- NgramProfile / Jaccard ----------

TEST(NgramTest, IdenticalSequencesSimilarityOne) {
  NgramProfile a({1, 2, 3, 4}, 2);
  NgramProfile b({1, 2, 3, 4}, 2);
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 1.0);
  EXPECT_DOUBLE_EQ(a.Distance(b), 0.0);
}

TEST(NgramTest, DisjointSequencesSimilarityZero) {
  NgramProfile a({1, 2, 3}, 2);
  NgramProfile b({7, 8, 9}, 2);
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 0.0);
}

TEST(NgramTest, SymmetricAndBounded) {
  NgramProfile a({1, 2, 3, 1, 2}, 3);
  NgramProfile b({2, 3, 1, 2, 4}, 3);
  const double ab = a.Jaccard(b);
  EXPECT_DOUBLE_EQ(ab, b.Jaccard(a));
  EXPECT_GT(ab, 0.0);
  EXPECT_LT(ab, 1.0);
}

TEST(NgramTest, SharedPrefixMoreSimilarThanDisjoint) {
  NgramProfile base({1, 2, 3, 4, 5}, 2);
  NgramProfile close({1, 2, 3, 4, 6}, 2);
  NgramProfile far({9, 8, 7, 6, 5}, 2);
  EXPECT_GT(base.Jaccard(close), base.Jaccard(far));
}

TEST(NgramTest, EmptyProfiles) {
  NgramProfile a({}, 2);
  NgramProfile b({}, 2);
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 1.0);
  NgramProfile c({1}, 2);
  EXPECT_DOUBLE_EQ(a.Jaccard(c), 0.0);
}

// ---------- DBSCAN ----------

double PointDistance(const std::vector<double>& xs, size_t i, size_t j) {
  return std::abs(xs[i] - xs[j]);
}

TEST(DbscanTest, FindsTwoBlobsAndNoise) {
  // Two 1-D blobs around 0 and 10, one outlier at 100.
  std::vector<double> xs = {0.0, 0.1, 0.2, 0.15, 10.0, 10.1, 10.2, 100.0};
  DbscanOptions options;
  options.eps = 0.5;
  options.min_points = 2;
  const DbscanResult result = Dbscan(
      xs.size(), [&xs](size_t i, size_t j) { return PointDistance(xs, i, j); },
      options);
  EXPECT_EQ(result.num_clusters, 2);
  EXPECT_EQ(result.labels[0], result.labels[3]);
  EXPECT_EQ(result.labels[4], result.labels[6]);
  EXPECT_NE(result.labels[0], result.labels[4]);
  EXPECT_EQ(result.labels[7], DbscanResult::kNoise);
}

TEST(DbscanTest, ChainExpandsThroughCorePoints) {
  // A chain of points each within eps of the next forms one cluster.
  std::vector<double> xs;
  for (int i = 0; i < 10; ++i) xs.push_back(i * 0.4);
  DbscanOptions options;
  options.eps = 0.5;
  options.min_points = 2;
  const DbscanResult result = Dbscan(
      xs.size(), [&xs](size_t i, size_t j) { return PointDistance(xs, i, j); },
      options);
  EXPECT_EQ(result.num_clusters, 1);
  for (int label : result.labels) EXPECT_EQ(label, 0);
}

TEST(DbscanTest, MinPointsPreventsTinyClusters) {
  std::vector<double> xs = {0.0, 0.1, 50.0};
  DbscanOptions options;
  options.eps = 0.5;
  options.min_points = 3;
  const DbscanResult result = Dbscan(
      xs.size(), [&xs](size_t i, size_t j) { return PointDistance(xs, i, j); },
      options);
  EXPECT_EQ(result.num_clusters, 0);
  for (int label : result.labels) EXPECT_EQ(label, DbscanResult::kNoise);
}

TEST(DbscanTest, EmptyInput) {
  const DbscanResult result =
      Dbscan(0, [](size_t, size_t) { return 0.0; }, DbscanOptions());
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_TRUE(result.labels.empty());
}

// ---------- Access control ----------

sql::RawSession SessionWith(const std::string& user,
                            const std::string& address, int hour) {
  sql::RawSession s;
  s.attrs.user = user;
  s.attrs.client_address = address;
  s.attrs.start_time_s = 1767225600 + hour * 3600;
  sql::OperationRecord op;
  op.sql = "SELECT * FROM t WHERE x=1";
  op.time_offset_s = 0;
  s.operations.push_back(op);
  return s;
}

TEST(AccessControlTest, KnownUserAddress) {
  KnownUserAddressPolicy policy;
  policy.Allow("alice", "10.0.0.1");
  EXPECT_FALSE(policy.Violates(SessionWith("alice", "10.0.0.1", 10)));
  EXPECT_TRUE(policy.Violates(SessionWith("alice", "8.8.8.8", 10)));
  EXPECT_TRUE(policy.Violates(SessionWith("mallory", "10.0.0.1", 10)));
}

TEST(AccessControlTest, AccessHours) {
  AccessHoursPolicy policy(8, 20);
  EXPECT_FALSE(policy.Violates(SessionWith("u", "a", 8)));
  EXPECT_FALSE(policy.Violates(SessionWith("u", "a", 19)));
  EXPECT_TRUE(policy.Violates(SessionWith("u", "a", 3)));
  EXPECT_TRUE(policy.Violates(SessionWith("u", "a", 20)));
}

TEST(AccessControlTest, ForbiddenTable) {
  ForbiddenTablePolicy policy({"t_credentials"});
  sql::RawSession ok = SessionWith("u", "a", 10);
  EXPECT_FALSE(policy.Violates(ok));
  sql::OperationRecord op;
  op.sql = "SELECT * FROM t_credentials WHERE uid=7";
  ok.operations.push_back(op);
  EXPECT_TRUE(policy.Violates(ok));
}

TEST(AccessControlTest, MaxOpInterval) {
  MaxOpIntervalPolicy policy(100);
  sql::RawSession s = SessionWith("u", "a", 10);
  sql::OperationRecord op;
  op.sql = "SELECT 1";
  op.time_offset_s = 50;
  s.operations.push_back(op);
  EXPECT_FALSE(policy.Violates(s));
  s.operations.back().time_offset_s = 500;
  EXPECT_TRUE(policy.Violates(s));
}

TEST(PolicyEngineTest, AdmitsAndRejects) {
  PolicyEngine engine;
  auto users = std::make_unique<KnownUserAddressPolicy>();
  users->Allow("alice", "10.0.0.1");
  engine.AddPolicy(std::move(users));
  engine.AddPolicy(std::make_unique<AccessHoursPolicy>(8, 20));
  EXPECT_TRUE(engine.Admits(SessionWith("alice", "10.0.0.1", 10)));
  EXPECT_FALSE(engine.Admits(SessionWith("alice", "10.0.0.1", 2)));
  EXPECT_EQ(engine.FirstViolation(SessionWith("bob", "10.0.0.1", 10)),
            "known-user-address");
  EXPECT_EQ(engine.FirstViolation(SessionWith("alice", "10.0.0.1", 2)),
            "access-hours");

  std::vector<sql::RawSession> admitted, rejected;
  engine.Filter({SessionWith("alice", "10.0.0.1", 10),
                 SessionWith("bob", "1.2.3.4", 10)},
                &admitted, &rejected);
  EXPECT_EQ(admitted.size(), 1u);
  EXPECT_EQ(rejected.size(), 1u);
}

// ---------- Session filter ----------

sql::KeySession KeysOf(std::vector<int> keys) {
  sql::KeySession s;
  s.keys = std::move(keys);
  return s;
}

TEST(SessionFilterTest, RemovesOutlierPattern) {
  // 12 sessions of pattern A, 12 of pattern B, 1 weird outlier.
  std::vector<sql::KeySession> sessions;
  util::Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    sessions.push_back(KeysOf({1, 2, 3, 4, 1, 2, 3, 4}));
    sessions.push_back(KeysOf({5, 6, 7, 8, 5, 6, 7, 8}));
  }
  sessions.push_back(KeysOf({9, 9, 9, 9, 9, 9, 9, 9}));
  SessionFilterOptions options;
  options.dbscan.eps = 0.3;
  options.dbscan.min_points = 3;
  SessionFilterStats stats;
  const auto kept = FilterSessions(sessions, options, &rng, &stats);
  EXPECT_EQ(stats.input_sessions, 25);
  EXPECT_EQ(stats.clusters, 2);
  EXPECT_EQ(stats.removed_noise_points, 1);
  for (const auto& s : kept) {
    EXPECT_NE(s.keys[0], 9);
  }
}

TEST(SessionFilterTest, UnderSamplesDominantCluster) {
  // Three clusters sized 60/10/10: the median is 10, so the dominant
  // pattern must be under-sampled to oversample_factor * 10.
  std::vector<sql::KeySession> sessions;
  util::Rng rng(6);
  for (int i = 0; i < 60; ++i) sessions.push_back(KeysOf({1, 2, 3, 1, 2, 3}));
  for (int i = 0; i < 10; ++i) sessions.push_back(KeysOf({5, 6, 7, 5, 6, 7}));
  for (int i = 0; i < 10; ++i) sessions.push_back(KeysOf({8, 9, 8, 9, 8, 9}));
  SessionFilterOptions options;
  options.dbscan.eps = 0.3;
  options.dbscan.min_points = 3;
  options.oversample_factor = 2.0;
  SessionFilterStats stats;
  const auto kept = FilterSessions(sessions, options, &rng, &stats);
  EXPECT_EQ(stats.removed_by_undersampling, 40);
  int big = 0, small = 0;
  for (const auto& s : kept) (s.keys[0] == 1 ? big : small) += 1;
  EXPECT_EQ(big, 20);
  EXPECT_EQ(small, 20);
}

TEST(SessionFilterTest, DropsShortSessions) {
  std::vector<sql::KeySession> sessions;
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    sessions.push_back(KeysOf({1, 2, 3, 4, 1, 2, 3, 4, 1, 2}));
  }
  sessions.push_back(KeysOf({1, 2}));  // same pattern but far too short
  SessionFilterOptions options;
  options.dbscan.eps = 0.8;
  options.dbscan.min_points = 2;
  options.short_session_ratio = 0.5;
  SessionFilterStats stats;
  const auto kept = FilterSessions(sessions, options, &rng, &stats);
  EXPECT_EQ(stats.removed_short_sessions, 1);
  for (const auto& s : kept) EXPECT_GT(s.keys.size(), 2u);
}

TEST(SessionFilterTest, EmptyInput) {
  util::Rng rng(8);
  SessionFilterStats stats;
  const auto kept =
      FilterSessions({}, SessionFilterOptions(), &rng, &stats);
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(stats.input_sessions, 0);
}

// ---------- Preprocessor end-to-end ----------

TEST(PreprocessorTest, EndToEndOnGeneratedLog) {
  const workload::ScenarioSpec spec = workload::MakeCommentingScenario();
  workload::SessionGenerator generator(spec);
  util::Rng rng(11);
  std::vector<sql::RawSession> log = generator.GenerateNormalBatch(60, &rng);
  log.push_back(generator.GenerateNoisy(workload::NoiseKind::kUnknownAddress,
                                        &rng));
  log.push_back(
      generator.GenerateNoisy(workload::NoiseKind::kOffHours, &rng));

  PolicyEngine engine = MakeDefaultPolicyEngine(
      spec.users, spec.addresses, spec.business_start_hour,
      spec.business_end_hour);
  SessionFilterOptions filter;
  filter.dbscan.eps = 0.95;  // permissive: keep most generated sessions
  filter.dbscan.min_points = 2;
  Preprocessor prep(std::move(engine), filter);
  const auto purified = prep.PrepareTrainingData(log, &rng);

  EXPECT_EQ(prep.rejected_by_policy(), 2);
  EXPECT_GT(purified.size(), 20u);
  EXPECT_TRUE(prep.vocabulary().frozen());
  EXPECT_GT(prep.vocabulary().size(), 10);

  // Active-session path: a clean session is admitted and tokenized.
  bool known_attack = true;
  const sql::KeySession active = prep.PrepareActiveSession(
      generator.GenerateNormal(&rng), &known_attack);
  EXPECT_FALSE(known_attack);
  EXPECT_FALSE(active.keys.empty());

  // A policy-violating session is flagged before the model.
  prep.PrepareActiveSession(
      generator.GenerateNoisy(workload::NoiseKind::kUnknownAddress, &rng),
      &known_attack);
  EXPECT_TRUE(known_attack);
}

}  // namespace
}  // namespace ucad::prep

namespace ucad::prep {
namespace {

TEST(PreprocessorTest, CoarsenedProfilesKeepWideVocabularies) {
  // With hundreds of statement keys, raw-key Jaccard distances collapse to
  // ~1 and DBSCAN marks everything noise; the (table, command) coarsening
  // must keep the bulk of a normal log.
  workload::LocationOptions wl;
  wl.select_variants = 8;
  wl.insert_variants = 8;
  wl.picn_insert_variants = 3;
  wl.update_variants = 8;
  const workload::ScenarioSpec spec = workload::MakeLocationScenario(wl);
  workload::SessionGenerator generator(spec);
  util::Rng rng(21);
  const auto log = generator.GenerateNormalBatch(80, &rng);

  SessionFilterOptions coarse;
  coarse.coarsen_by_table_command = true;
  coarse.dbscan.eps = 0.7;
  coarse.dbscan.min_points = 3;
  Preprocessor prep_coarse(
      MakeDefaultPolicyEngine(spec.users, spec.addresses,
                              spec.business_start_hour,
                              spec.business_end_hour),
      coarse);
  const auto kept = prep_coarse.PrepareTrainingData(log, &rng);
  EXPECT_GT(kept.size(), 50u)
      << "coarsened clustering should keep most normal sessions";
}

TEST(SessionFilterTest, ProfileKeyMapIsApplied) {
  // With a map collapsing all keys to one group, every session looks
  // identical -> a single cluster, nothing removed as noise.
  std::vector<sql::KeySession> sessions;
  for (int i = 0; i < 10; ++i) {
    sql::KeySession s;
    for (int j = 0; j < 8; ++j) s.keys.push_back(1 + (i * 13 + j * 7) % 40);
    sessions.push_back(std::move(s));
  }
  SessionFilterOptions options;
  options.dbscan.eps = 0.2;
  options.dbscan.min_points = 2;
  options.profile_key_map = [](int) { return 1; };
  util::Rng rng(4);
  SessionFilterStats stats;
  const auto kept = FilterSessions(sessions, options, &rng, &stats);
  EXPECT_EQ(stats.clusters, 1);
  EXPECT_EQ(stats.removed_noise_points, 0);
  EXPECT_EQ(kept.size(), sessions.size());
}

}  // namespace
}  // namespace ucad::prep
