// Autograd fuzzing: random operation chains are built from a seed and
// their analytic gradients are verified against central finite
// differences. This complements the per-op checks in tape_test.cc by
// exercising arbitrary compositions (including diamond-shaped reuse).

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "nn/gradcheck.h"
#include "nn/tape.h"
#include "util/rng.h"

namespace ucad::nn {
namespace {

/// Builds a random scalar-valued graph over `p` (3x4) with `depth` random
/// unary/binary transformations. All ops are smooth or piecewise-smooth;
/// inputs are kept away from kinks by the value ranges used.
VarId BuildRandomGraph(Tape* tape, VarId p, uint64_t seed, int depth) {
  util::Rng rng(seed);
  VarId current = p;
  VarId other = p;
  for (int d = 0; d < depth; ++d) {
    switch (rng.UniformU64(8)) {
      case 0:
        current = tape->Scale(current, 0.5f + 0.1f * (d % 3));
        break;
      case 1:
        current = tape->AddScalar(current, 0.25f);
        break;
      case 2:
        current = tape->Sigmoid(current);
        break;
      case 3:
        current = tape->Tanh(current);
        break;
      case 4:
        current = tape->Add(current, other);
        break;
      case 5:
        current = tape->Mul(current, tape->Sigmoid(other));
        break;
      case 6:
        current = tape->SoftmaxRows(current);
        break;
      default:
        // Diamond: remember this node and merge it back later.
        other = current;
        break;
    }
  }
  // Attention-like tail: [3x4] x [4x3] -> softmax -> weighted sum.
  VarId scores = tape->MatMul(current, tape->Transpose(p));
  VarId attention = tape->SoftmaxRows(scores);
  VarId mixed = tape->MatMul(attention, current);
  return tape->MeanAll(tape->Mul(mixed, mixed));
}

class AutogradFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradFuzzTest, RandomGraphGradientsMatchFiniteDifferences) {
  util::Rng init(GetParam() * 31 + 7);
  Parameter param(Tensor::Randn(3, 4, 0.6f, &init));
  const int depth = 4 + static_cast<int>(GetParam() % 5);

  auto loss_only = [&]() -> double {
    Tape tape;
    VarId p = tape.Param(&param);
    VarId loss = BuildRandomGraph(&tape, p, GetParam(), depth);
    return tape.value(loss).at(0, 0);
  };
  auto loss_backward = [&]() -> double {
    Tape tape;
    VarId p = tape.Param(&param);
    VarId loss = BuildRandomGraph(&tape, p, GetParam(), depth);
    tape.Backward(loss);
    return tape.value(loss).at(0, 0);
  };
  const GradCheckResult result =
      CheckGradients(loss_backward, loss_only, {&param});
  EXPECT_GT(result.entries, 0u);
  EXPECT_LT(result.max_rel_error, 6e-2f)
      << "seed " << GetParam() << " depth " << depth
      << " abs=" << result.max_abs_error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u, 144u, 233u));

}  // namespace
}  // namespace ucad::nn
