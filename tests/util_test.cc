#include <algorithm>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace ucad::util {
namespace {

// ---------- Logging ----------

TEST(LoggingTest, ConcurrentLogLinesDoNotInterleave) {
  constexpr int kThreads = 8;
  constexpr int kLines = 50;
  testing::internal::CaptureStderr();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t]() {
        for (int i = 0; i < kLines; ++i) {
          UCAD_LOG(INFO) << "thread=" << t << " line=" << i << " end";
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const std::string captured = testing::internal::GetCapturedStderr();
  std::istringstream is(captured);
  std::string line;
  int count = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++count;
    // Each line is written with a single fwrite, so it must be whole:
    // prefix [INFO <stamp> t<id> file:line] and the full message.
    EXPECT_EQ(line.rfind("[INFO ", 0), 0u) << "shredded line: " << line;
    EXPECT_NE(line.find("util_test.cc"), std::string::npos) << line;
    EXPECT_NE(line.find(" t"), std::string::npos) << line;
    EXPECT_EQ(line.substr(line.size() - 4), " end") << "torn line: " << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::OutOfRange("boom"); };
  auto wrapper = [&]() -> Status {
    UCAD_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntHitsAllValues) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalHasRoughlyZeroMeanUnitVariance) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ones += rng.Categorical(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(23);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleLargerThanPopulationReturnsAll) {
  Rng rng(29);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

// ---------- Strings ----------

TEST(StringTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringTest, SplitWhitespaceDropsEmpty) {
  const auto parts = SplitWhitespace("  select *\t from  t ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "select");
  EXPECT_EQ(parts[3], "t");
}

TEST(StringTest, TrimStripsBothEnds) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringTest, JoinConcatenates) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(StartsWith("delete from t", "delete"));
  EXPECT_FALSE(StartsWith("del", "delete"));
  EXPECT_TRUE(EndsWith("a.cc", ".cc"));
  EXPECT_FALSE(EndsWith("cc", "a.cc"));
}

TEST(StringTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.98168, 5), "0.98168");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
}

// ---------- TablePrinter ----------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Method", "F1"});
  t.AddRow({"Ours", "0.98"});
  t.AddRow({"OneClassSVM", "0.79"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("OneClassSVM"), std::string::npos);
  // All lines equal width up to trailing spaces is hard to assert exactly;
  // check the separator exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, NumericRowFormatsWithPrecision) {
  TablePrinter t({"Method", "P", "R"});
  t.AddRow("Ours", {0.96535, 0.99857});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("0.96535"), std::string::npos);
  EXPECT_NE(out.find("0.99857"), std::string::npos);
}

// ---------- Timer ----------

TEST(TimerTest, MeasuresElapsed) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

}  // namespace
}  // namespace ucad::util

namespace ucad::util {
namespace {

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(55);
  Rng child = parent.Fork();
  // The child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, CategoricalIgnoresNegativeWeights) {
  Rng rng(56);
  std::vector<double> weights = {-5.0, 1.0, -2.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, CategoricalUniformFallbackOnZeroTotal) {
  Rng rng(57);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Categorical(weights));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(TablePrinterTest, RowSizeMismatchAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "Check failed");
}

}  // namespace
}  // namespace ucad::util
