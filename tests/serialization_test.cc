#include <sstream>

#include <gtest/gtest.h>

#include "sql/statement.h"
#include "transdas/detector.h"
#include "transdas/serialization.h"
#include "transdas/trainer.h"
#include "util/binary_io.h"
#include "util/rng.h"

namespace ucad {
namespace {

// ---------- binary_io round trips ----------

TEST(BinaryIoTest, PrimitivesRoundTrip) {
  std::stringstream ss;
  util::WriteU32(ss, 0xDEADBEEF);
  util::WriteI32(ss, -42);
  util::WriteF32(ss, 3.25f);
  util::WriteString(ss, "hello world");
  util::WriteFloatVector(ss, {1.0f, -2.0f, 0.5f});

  uint32_t u = 0;
  int32_t i = 0;
  float f = 0;
  std::string s;
  std::vector<float> v;
  ASSERT_TRUE(util::ReadU32(ss, &u).ok());
  ASSERT_TRUE(util::ReadI32(ss, &i).ok());
  ASSERT_TRUE(util::ReadF32(ss, &f).ok());
  ASSERT_TRUE(util::ReadString(ss, &s).ok());
  ASSERT_TRUE(util::ReadFloatVector(ss, &v).ok());
  EXPECT_EQ(u, 0xDEADBEEFu);
  EXPECT_EQ(i, -42);
  EXPECT_FLOAT_EQ(f, 3.25f);
  EXPECT_EQ(s, "hello world");
  EXPECT_EQ(v, (std::vector<float>{1.0f, -2.0f, 0.5f}));
}

TEST(BinaryIoTest, TruncatedInputIsOutOfRange) {
  std::stringstream ss;
  util::WriteU32(ss, 7);
  ss.str(ss.str().substr(0, 2));  // chop mid-integer
  uint32_t u = 0;
  EXPECT_EQ(util::ReadU32(ss, &u).code(), util::StatusCode::kOutOfRange);
}

TEST(BinaryIoTest, OversizedStringRejected) {
  std::stringstream ss;
  util::WriteU32(ss, 1u << 30);  // absurd length prefix
  std::string s;
  EXPECT_EQ(util::ReadString(ss, &s).code(),
            util::StatusCode::kOutOfRange);
}

TEST(BinaryIoTest, EmptyStringAndVector) {
  std::stringstream ss;
  util::WriteString(ss, "");
  util::WriteFloatVector(ss, {});
  std::string s = "x";
  std::vector<float> v = {1};
  ASSERT_TRUE(util::ReadString(ss, &s).ok());
  ASSERT_TRUE(util::ReadFloatVector(ss, &v).ok());
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(v.empty());
}

// ---------- model serialization ----------

class SerializationTest : public ::testing::Test {
 protected:
  SerializationTest() : rng_(5) {
    vocab_.GetOrAssign(sql::ParseStatement("SELECT * FROM a WHERE x=1"));
    vocab_.GetOrAssign(sql::ParseStatement("INSERT INTO a(x) VALUES (1)"));
    vocab_.GetOrAssign(sql::ParseStatement("SELECT * FROM b WHERE y=2"));
    vocab_.GetOrAssign(sql::ParseStatement("DELETE FROM b WHERE y=3"));
    vocab_.Freeze();

    config_.vocab_size = vocab_.size();
    config_.window = 6;
    config_.hidden_dim = 8;
    config_.num_heads = 2;
    config_.num_blocks = 2;
    model_ = std::make_unique<transdas::TransDasModel>(config_, &rng_);
    // Light training so weights are nontrivial.
    transdas::TrainOptions options;
    options.epochs = 3;
    transdas::TransDasTrainer trainer(model_.get(), options);
    trainer.Train({{1, 2, 1, 3, 4, 1, 2, 1}, {3, 1, 2, 1, 3, 1, 2}});
  }

  util::Rng rng_;
  sql::Vocabulary vocab_;
  transdas::TransDasConfig config_;
  std::unique_ptr<transdas::TransDasModel> model_;
};

TEST_F(SerializationTest, RoundTripPreservesConfigAndWeights) {
  std::stringstream ss;
  ASSERT_TRUE(transdas::SaveModel(model_.get(), vocab_, ss).ok());

  util::Result<transdas::ModelBundle> loaded = transdas::LoadModel(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->model->config().window, config_.window);
  EXPECT_EQ(loaded->model->config().hidden_dim, config_.hidden_dim);
  EXPECT_EQ(loaded->vocabulary.size(), vocab_.size());
  EXPECT_TRUE(loaded->vocabulary.frozen());
  EXPECT_EQ(loaded->vocabulary.Lookup("select * from a where x=$1"), 1);

  // Identical weights -> identical detector behavior.
  const auto params_a = model_->Params();
  const auto params_b = loaded->model->Params();
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t i = 0; i < params_a.size(); ++i) {
    ASSERT_TRUE(params_a[i]->value().SameShape(params_b[i]->value()));
    for (size_t j = 0; j < params_a[i]->value().size(); ++j) {
      EXPECT_EQ(params_a[i]->value().data()[j],
                params_b[i]->value().data()[j]);
    }
  }
  transdas::DetectorOptions detector_options;
  detector_options.top_p = 2;
  transdas::TransDasDetector da(model_.get(), detector_options);
  transdas::TransDasDetector db(loaded->model.get(), detector_options);
  const std::vector<int> session = {1, 2, 1, 3, 4, 1, 2};
  const auto va = da.DetectSession(session);
  const auto vb = db.DetectSession(session);
  ASSERT_EQ(va.operations.size(), vb.operations.size());
  for (size_t i = 0; i < va.operations.size(); ++i) {
    EXPECT_EQ(va.operations[i].rank, vb.operations[i].rank);
  }
}

TEST_F(SerializationTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ucad_model.bin";
  ASSERT_TRUE(transdas::SaveModelToFile(model_.get(), vocab_, path).ok());
  util::Result<transdas::ModelBundle> loaded =
      transdas::LoadModelFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->model->config().vocab_size, vocab_.size());
}

TEST_F(SerializationTest, MissingFileIsNotFound) {
  const auto loaded =
      transdas::LoadModelFromFile("/nonexistent/dir/model.bin");
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST_F(SerializationTest, GarbageInputRejected) {
  std::stringstream ss;
  ss << "this is not a model file at all";
  const auto loaded = transdas::LoadModel(ss);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, TruncatedModelRejected) {
  std::stringstream ss;
  ASSERT_TRUE(transdas::SaveModel(model_.get(), vocab_, ss).ok());
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  const auto loaded = transdas::LoadModel(truncated);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SerializationTest, VocabularyMismatchRejectedAtSave) {
  sql::Vocabulary other;  // size 1 != model vocab
  std::stringstream ss;
  EXPECT_EQ(transdas::SaveModel(model_.get(), other, ss).code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ucad
