// Locks down the tentpole guarantee of the parallel subsystem: for a fixed
// seed, training losses, model weights, and detection verdicts are
// IDENTICAL at any thread count. The kernels partition output rows and
// accumulate each element in a fixed order, minibatch gradients merge via
// a fixed-order tree, and per-window RNG streams are split from the seed —
// so parallel runs are bitwise-equal to serial ones, not merely close.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "nn/tensor.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ucad {
namespace {

/// Restores single-thread mode even when a test fails mid-way, so later
/// tests in this binary never inherit a parallel pool unexpectedly.
class ThreadGuard {
 public:
  ~ThreadGuard() { util::SetNumThreads(1); }
};

// ---------- Kernel-level: parallel == serial, bitwise ----------

nn::Tensor RandomTensor(int rows, int cols, util::Rng* rng) {
  nn::Tensor t(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      t.at(i, j) = static_cast<float>(rng->Normal(0.0, 1.0));
    }
  }
  return t;
}

void ExpectBitwiseEqual(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_TRUE(a.SameShape(b));
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a.at(i, j), b.at(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(ParallelKernelTest, MatMulMatchesSerialBitwiseOverRandomShapes) {
  ThreadGuard guard;
  util::Rng rng(42);
  // Force every product through the parallel path regardless of size.
  nn::SetParallelMatMulMinWork(0);
  for (int trial = 0; trial < 25; ++trial) {
    const int m = 1 + static_cast<int>(rng.UniformU64(96));
    const int k = 1 + static_cast<int>(rng.UniformU64(96));
    const int n = 1 + static_cast<int>(rng.UniformU64(96));
    const nn::Tensor a = RandomTensor(m, k, &rng);
    const nn::Tensor b = RandomTensor(k, n, &rng);

    util::SetNumThreads(1);
    nn::Tensor serial(m, n);
    nn::MatMul(a, b, &serial);

    for (int threads : {2, 4, 8}) {
      util::SetNumThreads(threads);
      nn::Tensor parallel(m, n);
      nn::MatMul(a, b, &parallel);
      ExpectBitwiseEqual(serial, parallel);
    }
  }
  nn::SetParallelMatMulMinWork(int64_t{1} << 18);
}

TEST(ParallelKernelTest, TransposedMatMulsMatchSerialBitwise) {
  ThreadGuard guard;
  util::Rng rng(43);
  nn::SetParallelMatMulMinWork(0);
  for (int trial = 0; trial < 25; ++trial) {
    const int m = 2 + static_cast<int>(rng.UniformU64(64));
    const int k = 2 + static_cast<int>(rng.UniformU64(64));
    const int n = 2 + static_cast<int>(rng.UniformU64(64));

    // A^T * B: a is [k x m], out is [m x n].
    const nn::Tensor at = RandomTensor(k, m, &rng);
    const nn::Tensor b = RandomTensor(k, n, &rng);
    util::SetNumThreads(1);
    nn::Tensor serial_a(m, n);
    nn::MatMulTransposeAAccum(at, b, &serial_a);
    util::SetNumThreads(4);
    nn::Tensor parallel_a(m, n);
    nn::MatMulTransposeAAccum(at, b, &parallel_a);
    ExpectBitwiseEqual(serial_a, parallel_a);

    // A * B^T: b is [n x k], out is [m x n].
    const nn::Tensor a = RandomTensor(m, k, &rng);
    const nn::Tensor bt = RandomTensor(n, k, &rng);
    util::SetNumThreads(1);
    nn::Tensor serial_b(m, n);
    nn::MatMulTransposeBAccum(a, bt, &serial_b);
    util::SetNumThreads(4);
    nn::Tensor parallel_b(m, n);
    nn::MatMulTransposeBAccum(a, bt, &parallel_b);
    ExpectBitwiseEqual(serial_b, parallel_b);
  }
  nn::SetParallelMatMulMinWork(int64_t{1} << 18);
}

// ---------- Training + detection: verdicts invariant to threads ----------

transdas::TransDasConfig SmallConfig() {
  transdas::TransDasConfig config;
  config.vocab_size = 14;
  config.window = 8;
  config.hidden_dim = 12;
  config.num_heads = 2;
  config.num_blocks = 2;
  config.dropout = 0.1f;  // exercises the per-window RNG streams
  return config;
}

std::vector<std::vector<int>> GrammarSessions(int count) {
  // Simple repeating grammar: enough structure for losses to move.
  std::vector<std::vector<int>> sessions;
  util::Rng rng(7);
  for (int s = 0; s < count; ++s) {
    std::vector<int> keys;
    const int reps = 3 + static_cast<int>(rng.UniformU64(3));
    for (int r = 0; r < reps; ++r) {
      for (int k = 1; k <= 4; ++k) keys.push_back(k);
      if (rng.UniformU64(2) == 0) keys.push_back(5);
    }
    sessions.push_back(std::move(keys));
  }
  return sessions;
}

struct TrainedRun {
  std::vector<double> losses;
  std::vector<transdas::SessionVerdict> verdicts;
};

TrainedRun TrainAndDetect(int threads, int batch_size) {
  util::SetNumThreads(threads);
  util::Rng model_rng(1234);
  transdas::TransDasModel model(SmallConfig(), &model_rng);
  transdas::TrainOptions options;
  options.epochs = 3;
  options.seed = 11;
  options.batch_size = batch_size;
  transdas::TransDasTrainer trainer(&model, options);
  TrainedRun run;
  for (const transdas::EpochStats& e :
       trainer.Train(GrammarSessions(12))) {
    run.losses.push_back(e.mean_loss);
  }
  transdas::TransDasDetector detector(&model, transdas::DetectorOptions{});
  const std::vector<std::vector<int>> probes = {
      {1, 2, 3, 4, 1, 2, 3, 4, 5},
      {1, 2, 13, 4, 1, 2, 3, 4},
      {4, 3, 2, 1, 5, 5, 5},
  };
  for (const auto& probe : probes) {
    run.verdicts.push_back(detector.DetectSession(probe));
  }
  return run;
}

void ExpectSameRun(const TrainedRun& a, const TrainedRun& b) {
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (size_t i = 0; i < a.losses.size(); ++i) {
    // Identical window partitions + fixed-order reductions: the float ops
    // happen in the same order, so even the doubles agree exactly. Allow
    // 1e-10 headroom for any future platform whose libm differs.
    EXPECT_NEAR(a.losses[i], b.losses[i], 1e-10) << "epoch " << i;
  }
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (size_t s = 0; s < a.verdicts.size(); ++s) {
    EXPECT_EQ(a.verdicts[s].abnormal, b.verdicts[s].abnormal);
    ASSERT_EQ(a.verdicts[s].operations.size(),
              b.verdicts[s].operations.size());
    for (size_t i = 0; i < a.verdicts[s].operations.size(); ++i) {
      const auto& va = a.verdicts[s].operations[i];
      const auto& vb = b.verdicts[s].operations[i];
      EXPECT_EQ(va.position, vb.position);
      EXPECT_EQ(va.rank, vb.rank);
      EXPECT_EQ(va.abnormal, vb.abnormal);
      EXPECT_NEAR(va.score, vb.score, 1e-10);
    }
  }
}

TEST(ParallelDeterminismTest, BatchedTrainingInvariantToThreadCount) {
  ThreadGuard guard;
  const TrainedRun one = TrainAndDetect(/*threads=*/1, /*batch_size=*/4);
  const TrainedRun two = TrainAndDetect(/*threads=*/2, /*batch_size=*/4);
  const TrainedRun eight = TrainAndDetect(/*threads=*/8, /*batch_size=*/4);
  ExpectSameRun(one, two);
  ExpectSameRun(one, eight);
}

TEST(ParallelDeterminismTest, LegacyPerWindowTrainingInvariantToThreadCount) {
  // batch_size=1 keeps the historical shared-RNG walk; thread count must
  // still not leak in (kernels and detection are the only parallel parts).
  ThreadGuard guard;
  const TrainedRun one = TrainAndDetect(/*threads=*/1, /*batch_size=*/1);
  const TrainedRun four = TrainAndDetect(/*threads=*/4, /*batch_size=*/1);
  ExpectSameRun(one, four);
}

TEST(ParallelDeterminismTest, DetectionVerdictsInvariantToThreadCount) {
  ThreadGuard guard;
  util::SetNumThreads(1);
  util::Rng model_rng(99);
  transdas::TransDasModel model(SmallConfig(), &model_rng);
  const std::vector<int> session = {1, 2, 3, 4, 1, 2, 3, 4, 5, 1, 2,
                                    3, 4, 13, 2, 3, 4, 5, 1, 2};
  for (bool batched : {true, false}) {
    transdas::DetectorOptions options;
    options.batched = batched;
    transdas::TransDasDetector detector(&model, options);
    util::SetNumThreads(1);
    const transdas::SessionVerdict serial = detector.DetectSession(session);
    util::SetNumThreads(4);
    const transdas::SessionVerdict parallel =
        detector.DetectSession(session);
    ASSERT_EQ(serial.operations.size(), parallel.operations.size());
    EXPECT_EQ(serial.abnormal, parallel.abnormal);
    for (size_t i = 0; i < serial.operations.size(); ++i) {
      EXPECT_EQ(serial.operations[i].position,
                parallel.operations[i].position);
      EXPECT_EQ(serial.operations[i].rank, parallel.operations[i].rank);
      EXPECT_EQ(serial.operations[i].score, parallel.operations[i].score);
      EXPECT_EQ(serial.operations[i].abnormal,
                parallel.operations[i].abnormal);
    }
  }
}

}  // namespace
}  // namespace ucad
