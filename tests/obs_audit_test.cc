#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/audit_log.h"

namespace ucad::obs {
namespace {

std::string TempPath(const std::string& stem) {
  return testing::TempDir() + "/" + stem;
}

AuditRecord MakeRecord(int position) {
  AuditRecord r;
  r.session_id = "s1";
  r.position = position;
  r.key = 7;
  r.observed = "SELECT * FROM t WHERE id = ?";
  r.rank = 3;
  r.score = 1.25f;
  r.margin = 0.5f;
  r.abnormal = false;
  r.wall_ms = 1700000000000 + position;
  r.model_hash = "deadbeefcafe";
  return r;
}

TEST(AuditRecordTest, JsonRoundTrip) {
  AuditRecord r = MakeRecord(4);
  r.abnormal = true;
  r.expected = {{2, 3.5f}, {9, 2.25f}};
  const std::string line = AuditRecordToJson(r);
  auto parsed = ParseAuditRecord(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->session_id, r.session_id);
  EXPECT_EQ(parsed->position, r.position);
  EXPECT_EQ(parsed->key, r.key);
  EXPECT_EQ(parsed->observed, r.observed);
  EXPECT_EQ(parsed->rank, r.rank);
  EXPECT_FLOAT_EQ(parsed->score, r.score);
  EXPECT_FLOAT_EQ(parsed->margin, r.margin);
  EXPECT_EQ(parsed->abnormal, r.abnormal);
  EXPECT_EQ(parsed->wall_ms, r.wall_ms);
  EXPECT_EQ(parsed->model_hash, r.model_hash);
  ASSERT_EQ(parsed->expected.size(), 2u);
  EXPECT_EQ(parsed->expected[0].key, 2);
  EXPECT_FLOAT_EQ(parsed->expected[0].score, 3.5f);
  EXPECT_EQ(parsed->expected[1].key, 9);
  EXPECT_FLOAT_EQ(parsed->expected[1].score, 2.25f);
}

TEST(AuditRecordTest, UnknownKeyMarginSerializesAsNull) {
  AuditRecord r = MakeRecord(1);
  r.margin = -std::numeric_limits<float>::infinity();
  r.score = 0.0f;
  const std::string line = AuditRecordToJson(r);
  EXPECT_NE(line.find("\"margin\":null"), std::string::npos) << line;
  auto parsed = ParseAuditRecord(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(std::isinf(parsed->margin));
  EXPECT_LT(parsed->margin, 0.0f);
}

TEST(AuditRecordTest, ObservedTemplateIsEscaped) {
  AuditRecord r = MakeRecord(1);
  r.observed = "SELECT \"a\\b\"\nFROM t";
  auto parsed = ParseAuditRecord(AuditRecordToJson(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->observed, r.observed);
}

TEST(AuditRecordTest, MalformedLineIsAnError) {
  EXPECT_FALSE(ParseAuditRecord("{\"session\":").ok());
  EXPECT_FALSE(ParseAuditRecord("42").ok());
}

TEST(AuditLogTest, WritesParseableJsonl) {
  const std::string path = TempPath("audit_basic.jsonl");
  auto log = AuditLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  const int n = 100;
  for (int i = 1; i <= n; ++i) {
    EXPECT_TRUE((*log)->Append(MakeRecord(i)));
  }
  (*log)->Close();
  EXPECT_EQ((*log)->appended(), static_cast<uint64_t>(n));
  EXPECT_EQ((*log)->dropped(), 0u);

  auto records = ReadAuditLogFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ((*records)[i].position, i + 1);  // log order preserved
  }
}

TEST(AuditLogTest, StampsWallClockAndModelHashWhenUnset) {
  const std::string path = TempPath("audit_stamp.jsonl");
  AuditLogOptions options;
  options.model_hash = "feedface";
  auto log = AuditLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  AuditRecord r = MakeRecord(1);
  r.wall_ms = 0;
  r.model_hash.clear();
  ASSERT_TRUE((*log)->Append(r));
  (*log)->Close();
  auto records = ReadAuditLogFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_GT(records->front().wall_ms, 0);
  EXPECT_EQ(records->front().model_hash, "feedface");
}

TEST(AuditLogTest, DropsBeyondQueueCapacityInsteadOfBlocking) {
  const std::string path = TempPath("audit_drop.jsonl");
  AuditLogOptions options;
  options.queue_capacity = 4;
  auto log = AuditLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  // Appends outrun the writer only transiently; what the contract
  // guarantees is appended + dropped == offered and nothing ever blocks.
  const int offered = 10000;
  for (int i = 1; i <= offered; ++i) (*log)->Append(MakeRecord(i));
  (*log)->Close();
  EXPECT_EQ((*log)->appended() + (*log)->dropped(),
            static_cast<uint64_t>(offered));
  auto records = ReadAuditLogFile(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), (*log)->appended());
}

TEST(AuditLogTest, FlushMakesRecordsVisibleBeforeClose) {
  const std::string path = TempPath("audit_flush.jsonl");
  auto log = AuditLog::Open(path);
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 8; ++i) ASSERT_TRUE((*log)->Append(MakeRecord(i)));
  (*log)->Flush();
  auto records = ReadAuditLogFile(path);  // log still open
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 8u);
  (*log)->Close();
}

TEST(AuditLogTest, ConcurrentAppendersLoseNothingWithinCapacity) {
  const std::string path = TempPath("audit_mt.jsonl");
  AuditLogOptions options;
  options.queue_capacity = 1 << 16;
  auto log = AuditLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  const int threads = 4;
  const int per_thread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&log, t] {
      for (int i = 0; i < per_thread; ++i) {
        AuditRecord r = MakeRecord(i);
        r.session_id = "t" + std::to_string(t);
        (*log)->Append(std::move(r));
      }
    });
  }
  for (auto& w : workers) w.join();
  (*log)->Close();
  auto records = ReadAuditLogFile(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), static_cast<size_t>(threads * per_thread));
  EXPECT_EQ((*log)->dropped(), 0u);
}

TEST(AuditLogTest, OpenFailsOnUnwritablePath) {
  auto log = AuditLog::Open("/nonexistent-dir/audit.jsonl");
  EXPECT_FALSE(log.ok());
}

TEST(AuditLogTest, ReadFileRejectsMalformedLine) {
  const std::string path = TempPath("audit_bad.jsonl");
  {
    std::ofstream os(path);
    os << AuditRecordToJson(MakeRecord(1)) << "\n";
    os << "{not json}\n";
  }
  EXPECT_FALSE(ReadAuditLogFile(path).ok());
}

TEST(AuditLogTest, ReadFileSkipsBlankLines) {
  const std::string path = TempPath("audit_blank.jsonl");
  {
    std::ofstream os(path);
    os << AuditRecordToJson(MakeRecord(1)) << "\n\n";
    os << AuditRecordToJson(MakeRecord(2)) << "\n";
  }
  auto records = ReadAuditLogFile(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

// ---------- explain block ----------

ExplainBlock MakeExplain() {
  ExplainBlock block;
  ExplainContribution a;
  a.position = 2;
  a.key = 5;
  a.tmpl = "INSERT INTO t VALUES (?)";
  a.attention = 0.625f;
  a.cf_rank = 11;
  a.cf_score = -0.75f;
  ExplainContribution b;
  b.position = 0;
  b.key = 3;
  b.attention = 0.25f;
  b.cf_rank = 4;
  b.cf_score = 1.5f;
  block.contributions = {a, b};
  block.signature =
      IncidentSignature("SELECT * FROM t WHERE id = ?",
                        {a.tmpl, "key:3"});
  return block;
}

TEST(AuditRecordTest, ExplainBlockJsonRoundTrip) {
  AuditRecord r = MakeRecord(4);
  r.abnormal = true;
  r.explain = MakeExplain();
  r.has_explain = true;
  const std::string line = AuditRecordToJson(r);
  EXPECT_NE(line.find("\"explain\":"), std::string::npos) << line;
  auto parsed = ParseAuditRecord(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->has_explain);
  EXPECT_EQ(parsed->explain.signature, r.explain.signature);
  ASSERT_EQ(parsed->explain.contributions.size(), 2u);
  const ExplainContribution& a = parsed->explain.contributions[0];
  EXPECT_EQ(a.position, 2);
  EXPECT_EQ(a.key, 5);
  EXPECT_EQ(a.tmpl, "INSERT INTO t VALUES (?)");
  EXPECT_FLOAT_EQ(a.attention, 0.625f);
  EXPECT_EQ(a.cf_rank, 11);
  EXPECT_FLOAT_EQ(a.cf_score, -0.75f);
  const ExplainContribution& b = parsed->explain.contributions[1];
  EXPECT_EQ(b.key, 3);
  EXPECT_TRUE(b.tmpl.empty());
  EXPECT_EQ(b.cf_rank, 4);
}

TEST(AuditRecordTest, RecordWithoutExplainStaysWithoutExplain) {
  auto parsed = ParseAuditRecord(AuditRecordToJson(MakeRecord(1)));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->has_explain);
  EXPECT_TRUE(parsed->explain.empty());
}

TEST(ExplainTest, SignatureIsOrderInvariantOverContext) {
  const uint64_t sig =
      IncidentSignature("DELETE FROM t", {"a", "b", "c"});
  EXPECT_EQ(sig, IncidentSignature("DELETE FROM t", {"c", "a", "b"}));
  EXPECT_NE(sig, IncidentSignature("DELETE FROM t", {"a", "b"}));
  EXPECT_NE(sig, IncidentSignature("DELETE FROM u", {"a", "b", "c"}));
  // The separator keeps adjacent-template concatenations distinct.
  EXPECT_NE(IncidentSignature("x", {"ab", "c"}),
            IncidentSignature("x", {"a", "bc"}));
  EXPECT_EQ(SignatureHex(sig).size(), 16u);
}

// ---------- size-capped rotation ----------

TEST(AuditLogTest, RotatesPastSizeCap) {
  const std::string path = TempPath("audit_rotate.jsonl");
  AuditLogOptions options;
  // One serialized MakeRecord line is ~200 bytes: a few appends + Flush
  // cycles are guaranteed to trip a 1 KiB cap more than once.
  options.max_bytes = 1024;
  auto log = AuditLog::Open(path, options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  for (int i = 1; i <= 60; ++i) {
    ASSERT_TRUE((*log)->Append(MakeRecord(i)));
    // Flush between appends so batches stay small and rotation points are
    // deterministic enough to observe (rotation is checked per batch).
    if (i % 5 == 0) (*log)->Flush();
  }
  (*log)->Close();
  EXPECT_GE((*log)->rotations(), 2u);

  // Both the live file and the rollover hold whole, parseable JSONL lines.
  auto live = ReadAuditLogFile(path);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  auto rolled = ReadAuditLogFile(path + ".1");
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  ASSERT_FALSE(rolled->empty());
  // Nothing was lost mid-rotation: live + rolled cover the tail of the
  // stream contiguously (earlier rotations discarded the head by design).
  // The live file may be empty when a rotation landed after the final
  // batch; the rollover then carries the stream's tail.
  if (live->empty()) {
    EXPECT_EQ(rolled->back().position, 60);
  } else {
    EXPECT_EQ(live->front().position, rolled->back().position + 1);
    EXPECT_EQ(live->back().position, 60);
  }
  std::remove((path + ".1").c_str());
}

TEST(AuditLogTest, NoRotationWithoutCap) {
  const std::string path = TempPath("audit_norotate.jsonl");
  auto log = AuditLog::Open(path);
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 50; ++i) ASSERT_TRUE((*log)->Append(MakeRecord(i)));
  (*log)->Close();
  EXPECT_EQ((*log)->rotations(), 0u);
  auto records = ReadAuditLogFile(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 50u);
}

}  // namespace
}  // namespace ucad::obs
