#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/audit_log.h"

namespace ucad::obs {
namespace {

std::string TempPath(const std::string& stem) {
  return testing::TempDir() + "/" + stem;
}

AuditRecord MakeRecord(int position) {
  AuditRecord r;
  r.session_id = "s1";
  r.position = position;
  r.key = 7;
  r.observed = "SELECT * FROM t WHERE id = ?";
  r.rank = 3;
  r.score = 1.25f;
  r.margin = 0.5f;
  r.abnormal = false;
  r.wall_ms = 1700000000000 + position;
  r.model_hash = "deadbeefcafe";
  return r;
}

TEST(AuditRecordTest, JsonRoundTrip) {
  AuditRecord r = MakeRecord(4);
  r.abnormal = true;
  r.expected = {{2, 3.5f}, {9, 2.25f}};
  const std::string line = AuditRecordToJson(r);
  auto parsed = ParseAuditRecord(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->session_id, r.session_id);
  EXPECT_EQ(parsed->position, r.position);
  EXPECT_EQ(parsed->key, r.key);
  EXPECT_EQ(parsed->observed, r.observed);
  EXPECT_EQ(parsed->rank, r.rank);
  EXPECT_FLOAT_EQ(parsed->score, r.score);
  EXPECT_FLOAT_EQ(parsed->margin, r.margin);
  EXPECT_EQ(parsed->abnormal, r.abnormal);
  EXPECT_EQ(parsed->wall_ms, r.wall_ms);
  EXPECT_EQ(parsed->model_hash, r.model_hash);
  ASSERT_EQ(parsed->expected.size(), 2u);
  EXPECT_EQ(parsed->expected[0].key, 2);
  EXPECT_FLOAT_EQ(parsed->expected[0].score, 3.5f);
  EXPECT_EQ(parsed->expected[1].key, 9);
  EXPECT_FLOAT_EQ(parsed->expected[1].score, 2.25f);
}

TEST(AuditRecordTest, UnknownKeyMarginSerializesAsNull) {
  AuditRecord r = MakeRecord(1);
  r.margin = -std::numeric_limits<float>::infinity();
  r.score = 0.0f;
  const std::string line = AuditRecordToJson(r);
  EXPECT_NE(line.find("\"margin\":null"), std::string::npos) << line;
  auto parsed = ParseAuditRecord(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(std::isinf(parsed->margin));
  EXPECT_LT(parsed->margin, 0.0f);
}

TEST(AuditRecordTest, ObservedTemplateIsEscaped) {
  AuditRecord r = MakeRecord(1);
  r.observed = "SELECT \"a\\b\"\nFROM t";
  auto parsed = ParseAuditRecord(AuditRecordToJson(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->observed, r.observed);
}

TEST(AuditRecordTest, MalformedLineIsAnError) {
  EXPECT_FALSE(ParseAuditRecord("{\"session\":").ok());
  EXPECT_FALSE(ParseAuditRecord("42").ok());
}

TEST(AuditLogTest, WritesParseableJsonl) {
  const std::string path = TempPath("audit_basic.jsonl");
  auto log = AuditLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  const int n = 100;
  for (int i = 1; i <= n; ++i) {
    EXPECT_TRUE((*log)->Append(MakeRecord(i)));
  }
  (*log)->Close();
  EXPECT_EQ((*log)->appended(), static_cast<uint64_t>(n));
  EXPECT_EQ((*log)->dropped(), 0u);

  auto records = ReadAuditLogFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ((*records)[i].position, i + 1);  // log order preserved
  }
}

TEST(AuditLogTest, StampsWallClockAndModelHashWhenUnset) {
  const std::string path = TempPath("audit_stamp.jsonl");
  AuditLogOptions options;
  options.model_hash = "feedface";
  auto log = AuditLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  AuditRecord r = MakeRecord(1);
  r.wall_ms = 0;
  r.model_hash.clear();
  ASSERT_TRUE((*log)->Append(r));
  (*log)->Close();
  auto records = ReadAuditLogFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_GT(records->front().wall_ms, 0);
  EXPECT_EQ(records->front().model_hash, "feedface");
}

TEST(AuditLogTest, DropsBeyondQueueCapacityInsteadOfBlocking) {
  const std::string path = TempPath("audit_drop.jsonl");
  AuditLogOptions options;
  options.queue_capacity = 4;
  auto log = AuditLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  // Appends outrun the writer only transiently; what the contract
  // guarantees is appended + dropped == offered and nothing ever blocks.
  const int offered = 10000;
  for (int i = 1; i <= offered; ++i) (*log)->Append(MakeRecord(i));
  (*log)->Close();
  EXPECT_EQ((*log)->appended() + (*log)->dropped(),
            static_cast<uint64_t>(offered));
  auto records = ReadAuditLogFile(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), (*log)->appended());
}

TEST(AuditLogTest, FlushMakesRecordsVisibleBeforeClose) {
  const std::string path = TempPath("audit_flush.jsonl");
  auto log = AuditLog::Open(path);
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 8; ++i) ASSERT_TRUE((*log)->Append(MakeRecord(i)));
  (*log)->Flush();
  auto records = ReadAuditLogFile(path);  // log still open
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 8u);
  (*log)->Close();
}

TEST(AuditLogTest, ConcurrentAppendersLoseNothingWithinCapacity) {
  const std::string path = TempPath("audit_mt.jsonl");
  AuditLogOptions options;
  options.queue_capacity = 1 << 16;
  auto log = AuditLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  const int threads = 4;
  const int per_thread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&log, t] {
      for (int i = 0; i < per_thread; ++i) {
        AuditRecord r = MakeRecord(i);
        r.session_id = "t" + std::to_string(t);
        (*log)->Append(std::move(r));
      }
    });
  }
  for (auto& w : workers) w.join();
  (*log)->Close();
  auto records = ReadAuditLogFile(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), static_cast<size_t>(threads * per_thread));
  EXPECT_EQ((*log)->dropped(), 0u);
}

TEST(AuditLogTest, OpenFailsOnUnwritablePath) {
  auto log = AuditLog::Open("/nonexistent-dir/audit.jsonl");
  EXPECT_FALSE(log.ok());
}

TEST(AuditLogTest, ReadFileRejectsMalformedLine) {
  const std::string path = TempPath("audit_bad.jsonl");
  {
    std::ofstream os(path);
    os << AuditRecordToJson(MakeRecord(1)) << "\n";
    os << "{not json}\n";
  }
  EXPECT_FALSE(ReadAuditLogFile(path).ok());
}

TEST(AuditLogTest, ReadFileSkipsBlankLines) {
  const std::string path = TempPath("audit_blank.jsonl");
  {
    std::ofstream os(path);
    os << AuditRecordToJson(MakeRecord(1)) << "\n\n";
    os << AuditRecordToJson(MakeRecord(2)) << "\n";
  }
  auto records = ReadAuditLogFile(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

}  // namespace
}  // namespace ucad::obs
