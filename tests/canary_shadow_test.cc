// Shadow-mode detection: ShadowDetectSession must be bitwise-identical to
// DetectSession (same ranks, scores, margins — at every thread count, in
// both batched and non-batched mode) while leaving every cumulative
// observability surface untouched: detector/* counters, the anomaly-rate
// gauge, and the DetectionMonitor's quantile/PSI state. This is what lets
// the canary engine probe the live detector without contaminating the
// statistics it is guarding.

#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/monitor.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ucad {
namespace {

transdas::TransDasConfig SmallConfig() {
  transdas::TransDasConfig config;
  config.vocab_size = 14;
  config.window = 8;
  config.hidden_dim = 12;
  config.num_heads = 2;
  config.num_blocks = 2;
  config.dropout = 0.0f;
  return config;
}

std::vector<std::vector<int>> ProbeSessions() {
  return {
      {1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4},
      {4, 3, 2, 1, 8, 7, 6, 5},
      {1, 1, 2, 2, 3, 3, 13, 4},
      {5, 6, 7, 0, 9, 10},  // unknown key: -inf margin path
      {2, 9},
  };
}

void ExpectBitwiseEqual(const transdas::SessionVerdict& a,
                        const transdas::SessionVerdict& b) {
  EXPECT_EQ(a.abnormal, b.abnormal);
  ASSERT_EQ(a.operations.size(), b.operations.size());
  for (size_t i = 0; i < a.operations.size(); ++i) {
    const transdas::OperationVerdict& x = a.operations[i];
    const transdas::OperationVerdict& y = b.operations[i];
    EXPECT_EQ(x.position, y.position);
    EXPECT_EQ(x.rank, y.rank) << "position " << i;
    EXPECT_EQ(x.abnormal, y.abnormal) << "position " << i;
    // EXPECT_EQ on floats is exact equality — bitwise parity, not "close".
    EXPECT_EQ(x.score, y.score) << "position " << i;
    EXPECT_EQ(x.margin, y.margin) << "position " << i;
  }
}

class CanaryShadowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetMetricsEnabled(true);
    obs::SetDetectionMonitorEnabled(true);
  }
  void TearDown() override {
    obs::SetDetectionMonitorEnabled(false);
    obs::SetMetricsEnabled(false);
    util::SetNumThreads(1);
  }
};

TEST_F(CanaryShadowTest, ShadowVerdictsAreBitwiseIdenticalAcrossThreads) {
  util::Rng rng(21);
  transdas::TransDasModel model(SmallConfig(), &rng);
  for (const bool batched : {true, false}) {
    transdas::DetectorOptions options;
    options.batched = batched;
    transdas::TransDasDetector detector(&model, options);
    for (const int threads : {1, 2, 8}) {
      util::SetNumThreads(threads);
      for (const std::vector<int>& session : ProbeSessions()) {
        const transdas::SessionVerdict real = detector.DetectSession(session);
        const transdas::SessionVerdict shadow =
            detector.ShadowDetectSession(session);
        ExpectBitwiseEqual(real, shadow);
      }
    }
  }
}

TEST_F(CanaryShadowTest, ShadowLeavesCumulativeMetricsUntouched) {
  util::Rng rng(22);
  transdas::TransDasModel model(SmallConfig(), &rng);
  transdas::TransDasDetector detector(&model, transdas::DetectorOptions{});
  obs::MetricsRegistry& registry = obs::DefaultMetrics();
  obs::DetectionMonitor& monitor = obs::DefaultDetectionMonitor();

  // Warm the instruments so every series exists before the baseline read.
  detector.DetectSession({1, 2, 3, 4, 5, 6});

  const uint64_t sessions_before =
      registry.GetCounter("detector/sessions_total")->Value();
  const uint64_t operations_before =
      registry.GetCounter("detector/operations_total")->Value();
  const double anomaly_rate_before =
      registry.GetGauge("detector/anomaly_rate")->Value();
  const uint64_t monitor_ops_before = monitor.Operations();

  for (const std::vector<int>& session : ProbeSessions()) {
    const transdas::SessionVerdict verdict =
        detector.ShadowDetectSession(session);
    EXPECT_EQ(verdict.operations.size(), session.size() - 1);
  }

  // Shadow scoring ran real inference but no cumulative statistic moved.
  EXPECT_EQ(registry.GetCounter("detector/sessions_total")->Value(),
            sessions_before);
  EXPECT_EQ(registry.GetCounter("detector/operations_total")->Value(),
            operations_before);
  EXPECT_EQ(registry.GetGauge("detector/anomaly_rate")->Value(),
            anomaly_rate_before);
  EXPECT_EQ(monitor.Operations(), monitor_ops_before);

  // The real path still observes: the same sessions scored for real move
  // every one of those surfaces.
  for (const std::vector<int>& session : ProbeSessions()) {
    detector.DetectSession(session);
  }
  EXPECT_EQ(registry.GetCounter("detector/sessions_total")->Value(),
            sessions_before + ProbeSessions().size());
  EXPECT_GT(registry.GetCounter("detector/operations_total")->Value(),
            operations_before);
  EXPECT_GT(monitor.Operations(), monitor_ops_before);
}

}  // namespace
}  // namespace ucad
