// Locks down the verdict-attribution engine (TransDasDetector::
// AttributeOperation + the InferenceContext attention-capture hook):
//
//  * EXACT counterfactuals — the leave-one-out re-score through the pooled
//    workspace + row-tail-restricted path must be bitwise-identical to
//    scoring the edited session from scratch (streaming scorer and
//    non-batched DetectSession), at every thread count.
//  * Arming the capture must not perturb the forward — logits stay bitwise
//    what an uncaptured forward (and hence the tape) produces.
//  * Attention attribution semantics — shares are averaged over heads, sum
//    to ~1 over the real (non-padding) window, come out attention-sorted,
//    and never point at padding slots.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/infer.h"
#include "nn/tensor.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ucad {
namespace {

/// Restores single-thread mode even when a test fails mid-way.
class ThreadGuard {
 public:
  ~ThreadGuard() { util::SetNumThreads(1); }
};

transdas::TransDasConfig SmallConfig() {
  transdas::TransDasConfig config;
  config.vocab_size = 31;
  config.window = 8;
  config.hidden_dim = 12;
  config.num_heads = 3;
  config.num_blocks = 2;
  return config;
}

std::vector<int> RandomSession(int length, int vocab, util::Rng* rng) {
  std::vector<int> keys(length);
  for (int& key : keys) {
    key = 1 + static_cast<int>(rng->UniformU64(vocab - 1));
  }
  return keys;
}

// ---------- exact counterfactuals ----------

TEST(ExplainAttributionTest, CounterfactualsMatchFromScratchRescoreBitwise) {
  ThreadGuard guard;
  util::Rng rng(2024);
  transdas::TransDasModel model(SmallConfig(), &rng);
  transdas::TransDasDetector detector(&model,
                                      transdas::DetectorOptions{.top_p = 3});
  const std::vector<int> session = RandomSession(20, 31, &rng);
  for (int threads : {1, 2, 8}) {
    util::SetNumThreads(threads);
    // Positions below, at, and beyond the window length L=8 exercise both
    // the left-padded and the sliding-window alignment.
    for (int position : {1, 3, 7, 8, 13, 19}) {
      const auto attribution =
          detector.AttributeOperation(session, position, /*top_k=*/4);
      const std::vector<int> preceding(session.begin(),
                                       session.begin() + position);
      // The attribution's base verdict is the verdict being explained.
      const transdas::OperationVerdict base =
          detector.ScoreNextOperation(preceding, session[position]);
      ASSERT_EQ(attribution.verdict.rank, base.rank);
      ASSERT_EQ(attribution.verdict.score, base.score);
      ASSERT_EQ(attribution.verdict.margin, base.margin);
      ASSERT_FALSE(attribution.contributions.empty());
      for (const auto& entry : attribution.contributions) {
        ASSERT_GE(entry.session_position, 0);
        ASSERT_LT(entry.session_position, position);
        // Leave-one-out from scratch: mask the contributing op in the
        // session prefix and re-score the observed op with a fresh window.
        std::vector<int> edited = preceding;
        edited[entry.session_position] = 0;
        const transdas::OperationVerdict rescored =
            detector.ScoreNextOperation(edited, session[position]);
        // Bitwise: EXPECT_EQ on floats, not EXPECT_FLOAT_EQ.
        EXPECT_EQ(entry.counterfactual.rank, rescored.rank);
        EXPECT_EQ(entry.counterfactual.score, rescored.score);
        EXPECT_EQ(entry.counterfactual.margin, rescored.margin);
        EXPECT_EQ(entry.counterfactual.abnormal, rescored.abnormal);
      }
    }
  }
}

TEST(ExplainAttributionTest,
     CounterfactualsMatchNonBatchedDetectSessionBitwise) {
  ThreadGuard guard;
  util::Rng rng(7);
  transdas::TransDasModel model(SmallConfig(), &rng);
  transdas::DetectorOptions options;
  options.top_p = 3;
  options.batched = false;  // per-op sliding windows, same as streaming
  transdas::TransDasDetector detector(&model, options);
  const std::vector<int> session = RandomSession(14, 31, &rng);
  const int position = 11;
  for (int threads : {1, 2, 8}) {
    util::SetNumThreads(threads);
    const auto attribution =
        detector.AttributeOperation(session, position, /*top_k=*/3);
    for (const auto& entry : attribution.contributions) {
      // Score the whole edited session from scratch and pull the verdict
      // of the explained op out of it.
      std::vector<int> edited(session.begin(),
                              session.begin() + position + 1);
      edited[entry.session_position] = 0;
      const transdas::SessionVerdict verdict = detector.DetectSession(edited);
      const auto op = std::find_if(
          verdict.operations.begin(), verdict.operations.end(),
          [&](const transdas::OperationVerdict& v) {
            return v.position == position;
          });
      ASSERT_NE(op, verdict.operations.end());
      EXPECT_EQ(entry.counterfactual.rank, op->rank);
      EXPECT_EQ(entry.counterfactual.score, op->score);
      EXPECT_EQ(entry.counterfactual.margin, op->margin);
    }
  }
}

// ---------- the capture hook cannot perturb the forward ----------

TEST(ExplainAttributionTest, ArmedCaptureLeavesLogitsBitwiseIdentical) {
  ThreadGuard guard;
  util::Rng rng(99);
  const transdas::TransDasConfig config = SmallConfig();
  transdas::TransDasModel model(config, &rng);
  const int L = config.window;
  std::vector<int> window(L);
  for (int& key : window) {
    key = static_cast<int>(rng.UniformU64(config.vocab_size));
  }
  nn::InferenceContext plain;
  nn::InferenceContext armed;
  armed.SetAttentionCaptureRow(L - 1);
  for (int threads : {1, 2, 8}) {
    util::SetNumThreads(threads);
    const nn::Tensor& expected =
        model.AllKeyLogitsInference(&plain, model.ForwardInference(&plain,
                                                                   window));
    const nn::Tensor& captured =
        model.AllKeyLogitsInference(&armed, model.ForwardInference(&armed,
                                                                   window));
    ASSERT_TRUE(expected.SameShape(captured));
    for (int i = 0; i < expected.rows(); ++i) {
      for (int j = 0; j < expected.cols(); ++j) {
        ASSERT_EQ(expected.at(i, j), captured.at(i, j))
            << "threads=" << threads << " at (" << i << "," << j << ")";
      }
    }
    // The armed context actually captured: one row per head, each a
    // softmax row over the window.
    ASSERT_EQ(armed.captured_attention().size(),
              static_cast<size_t>(config.num_heads));
    for (const std::vector<float>& row : armed.captured_attention()) {
      ASSERT_EQ(row.size(), static_cast<size_t>(L));
      float sum = 0.0f;
      for (float w : row) sum += w;
      EXPECT_NEAR(sum, 1.0f, 1e-3f);
    }
  }
}

TEST(ExplainAttributionTest, AttributionDoesNotDisturbPooledScoring) {
  // Attribution leases contexts from the same pool the scoring paths use;
  // a verdict computed after an attribution must equal one computed
  // before, bitwise.
  ThreadGuard guard;
  util::Rng rng(5);
  transdas::TransDasModel model(SmallConfig(), &rng);
  transdas::TransDasDetector detector(&model,
                                      transdas::DetectorOptions{.top_p = 3});
  const std::vector<int> session = RandomSession(12, 31, &rng);
  const std::vector<int> preceding(session.begin(), session.begin() + 9);
  const transdas::OperationVerdict before =
      detector.ScoreNextOperation(preceding, session[9]);
  detector.AttributeOperation(session, 9, 5);
  const transdas::OperationVerdict after =
      detector.ScoreNextOperation(preceding, session[9]);
  EXPECT_EQ(before.rank, after.rank);
  EXPECT_EQ(before.score, after.score);
  EXPECT_EQ(before.margin, after.margin);
}

// ---------- attention semantics ----------

TEST(ExplainAttributionTest, AttentionSharesSortedAndSumToOne) {
  ThreadGuard guard;
  util::Rng rng(17);
  transdas::TransDasModel model(SmallConfig(), &rng);
  transdas::TransDasDetector detector(&model,
                                      transdas::DetectorOptions{.top_p = 3});
  const std::vector<int> session = RandomSession(20, 31, &rng);
  // top_k >= L returns every real context position: the head-averaged
  // shares then cover the full window and must sum to ~1 (each head's
  // softmax row sums to 1; row L-1 is unmasked).
  const auto attribution = detector.AttributeOperation(session, 13, 100);
  ASSERT_EQ(attribution.contributions.size(), 8u);  // take = min(L, 13) = 8
  float total = 0.0f;
  for (size_t i = 0; i < attribution.contributions.size(); ++i) {
    const auto& entry = attribution.contributions[i];
    total += entry.attention;
    EXPECT_GE(entry.attention, 0.0f);
    if (i > 0) {
      EXPECT_LE(entry.attention,
                attribution.contributions[i - 1].attention);
    }
    // The right-aligned window covers session positions [5, 13).
    EXPECT_GE(entry.session_position, 5);
    EXPECT_LT(entry.session_position, 13);
    EXPECT_EQ(entry.key, session[entry.session_position]);
  }
  EXPECT_NEAR(total, 1.0f, 1e-3f);
}

TEST(ExplainAttributionTest, ShortContextExcludesPaddingSlots) {
  ThreadGuard guard;
  util::Rng rng(23);
  transdas::TransDasModel model(SmallConfig(), &rng);
  transdas::TransDasDetector detector(&model,
                                      transdas::DetectorOptions{.top_p = 3});
  const std::vector<int> session = RandomSession(8, 31, &rng);
  // position=2: only session positions 0 and 1 are real context; the six
  // k0-padding slots must never surface as contributions even with a huge
  // top_k.
  const auto attribution = detector.AttributeOperation(session, 2, 100);
  ASSERT_EQ(attribution.contributions.size(), 2u);
  for (const auto& entry : attribution.contributions) {
    EXPECT_GE(entry.session_position, 0);
    EXPECT_LT(entry.session_position, 2);
  }
}

TEST(ExplainAttributionTest, TopKTruncatesToHighestAttention) {
  ThreadGuard guard;
  util::Rng rng(31);
  transdas::TransDasModel model(SmallConfig(), &rng);
  transdas::TransDasDetector detector(&model,
                                      transdas::DetectorOptions{.top_p = 3});
  const std::vector<int> session = RandomSession(20, 31, &rng);
  const auto full = detector.AttributeOperation(session, 13, 100);
  const auto top2 = detector.AttributeOperation(session, 13, 2);
  ASSERT_EQ(top2.contributions.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(top2.contributions[i].session_position,
              full.contributions[i].session_position);
    EXPECT_EQ(top2.contributions[i].attention,
              full.contributions[i].attention);
  }
}

}  // namespace
}  // namespace ucad
