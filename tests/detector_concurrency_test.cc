// TSan regression tests for the detection hot path. The metric call sites
// in TransDasDetector::ScoreNextOperation / DetectSession route through
// the atomic Counter/Gauge/Histogram instruments and the mutex-guarded
// DetectionMonitor, so many detectors sharing one model (and one metrics
// registry) must be race-free. CI runs this binary under
// -DUCAD_SANITIZE=thread with UCAD_THREADS=4.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/monitor.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ucad {
namespace {

transdas::TransDasConfig SmallConfig() {
  transdas::TransDasConfig config;
  config.vocab_size = 14;
  config.window = 8;
  config.hidden_dim = 12;
  config.num_heads = 2;
  config.num_blocks = 2;
  config.dropout = 0.0f;
  return config;
}

class DetectorConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetMetricsEnabled(true);
    obs::SetDetectionMonitorEnabled(true);
  }
  void TearDown() override {
    obs::SetDetectionMonitorEnabled(false);
    obs::SetMetricsEnabled(false);
    util::SetNumThreads(1);
  }
};

TEST_F(DetectorConcurrencyTest, ConcurrentDetectSessionsShareModelSafely) {
  util::Rng rng(5);
  transdas::TransDasModel model(SmallConfig(), &rng);
  transdas::TransDasDetector detector(&model, transdas::DetectorOptions{});
  const std::vector<std::vector<int>> sessions = {
      {1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4},
      {4, 3, 2, 1, 8, 7, 6, 5},
      {1, 1, 2, 2, 3, 3, 13, 4},
  };
  std::atomic<int> scored{0};
  auto drive = [&detector, &sessions, &scored](int offset) {
    for (int r = 0; r < 8; ++r) {
      const auto& s = sessions[(offset + r) % sessions.size()];
      const transdas::SessionVerdict verdict = detector.DetectSession(s);
      scored.fetch_add(static_cast<int>(verdict.operations.size()));
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(drive, t);
  for (std::thread& t : threads) t.join();
  EXPECT_GT(scored.load(), 0);
  // Counters saw every operation exactly once across all threads.
  const uint64_t ops =
      obs::DefaultMetrics().GetCounter("detector/operations_total")->Value();
  EXPECT_GE(ops, static_cast<uint64_t>(scored.load()));
}

TEST_F(DetectorConcurrencyTest, ScoreNextOperationConcurrentWithPoolWork) {
  // The per-op scorer must be safe both when called from external threads
  // and while the internal pool is busy with a batched DetectSession.
  util::SetNumThreads(4);
  util::Rng rng(6);
  transdas::TransDasModel model(SmallConfig(), &rng);
  transdas::TransDasDetector detector(&model, transdas::DetectorOptions{});
  std::atomic<bool> stop{false};
  std::thread scorer([&detector, &stop] {
    const std::vector<int> preceding = {1, 2, 3, 4};
    while (!stop.load(std::memory_order_relaxed)) {
      const transdas::OperationVerdict op =
          detector.ScoreNextOperation(preceding, 5);
      ASSERT_GE(op.rank, 1);
    }
  });
  const std::vector<int> session = {1, 2, 3, 4, 5, 6, 7, 8,
                                    1, 2, 3, 4, 5, 6, 7, 8};
  for (int r = 0; r < 6; ++r) {
    const transdas::SessionVerdict verdict = detector.DetectSession(session);
    EXPECT_EQ(verdict.operations.size(), session.size() - 1);
  }
  stop.store(true);
  scorer.join();
}

TEST_F(DetectorConcurrencyTest, MonitorObservationsSurviveConcurrency) {
  util::Rng rng(7);
  transdas::TransDasModel model(SmallConfig(), &rng);
  transdas::TransDasDetector detector(&model, transdas::DetectorOptions{});
  const std::vector<int> session = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&detector, &session] {
      for (int r = 0; r < 5; ++r) detector.DetectSession(session);
    });
  }
  for (std::thread& t : threads) t.join();
  // 4 threads x 5 sessions x 7 scored positions each.
  const uint64_t sessions_total =
      obs::DefaultMetrics().GetCounter("detector/sessions_total")->Value();
  EXPECT_GE(sessions_total, 20u);
}

}  // namespace
}  // namespace ucad
