#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "nn/tensor.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace ucad::nn {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12u);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(t.at(r, c), 0.0f);
  }
}

TEST(TensorTest, ExplicitData) {
  Tensor t(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, FillAndScale) {
  Tensor t = Tensor::Full(2, 3, 2.0f);
  t.Scale(1.5f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 3.0f);
  t.SetZero();
  EXPECT_FLOAT_EQ(t.Sum(), 0.0f);
}

TEST(TensorTest, AddInPlaceAndScaled) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.at(0, 1), 22.0f);
  a.AddScaled(b, -1.0f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 2.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t(2, 2, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.Sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.SquaredNorm(), 30.0f);
  EXPECT_FLOAT_EQ(t.MaxAbs(), 4.0f);
}

TEST(TensorTest, RandnStatistics) {
  util::Rng rng(3);
  Tensor t = Tensor::Randn(100, 100, 0.5f, &rng);
  double mean = 0.0, var = 0.0;
  for (size_t i = 0; i < t.size(); ++i) mean += t.data()[i];
  mean /= t.size();
  for (size_t i = 0; i < t.size(); ++i) {
    var += (t.data()[i] - mean) * (t.data()[i] - mean);
  }
  var /= t.size();
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(var), 0.5, 0.02);
}

TEST(TensorTest, XavierBounds) {
  util::Rng rng(4);
  Tensor t = Tensor::XavierUniform(30, 50, &rng);
  const float bound = std::sqrt(6.0f / 80.0f);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::abs(t.data()[i]), bound);
  }
}

TEST(MatMulTest, KnownProduct) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor out(2, 2);
  MatMul(a, b, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154.0f);
}

TEST(MatMulTest, AccumAddsOntoExisting) {
  Tensor a(1, 2, {1, 1});
  Tensor b(2, 1, {2, 3});
  Tensor out = Tensor::Full(1, 1, 10.0f);
  MatMulAccum(a, b, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 15.0f);
}

TEST(MatMulTest, TransposeVariantsAgreeWithExplicitTranspose) {
  util::Rng rng(5);
  Tensor a = Tensor::Randn(4, 3, 1.0f, &rng);
  Tensor b = Tensor::Randn(4, 5, 1.0f, &rng);
  // a^T * b via helper.
  Tensor out1(3, 5);
  MatMulTransposeAAccum(a, b, &out1);
  // Explicit transpose then MatMul.
  Tensor at(3, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  Tensor out2(3, 5);
  MatMul(at, b, &out2);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(out1.at(r, c), out2.at(r, c), 1e-4f);
    }
  }

  // a * b2^T via helper.
  Tensor b2 = Tensor::Randn(5, 3, 1.0f, &rng);
  Tensor out3(4, 5);
  MatMulTransposeBAccum(a, b2, &out3);
  Tensor b2t(3, 5);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 3; ++c) b2t.at(c, r) = b2.at(r, c);
  }
  Tensor out4(4, 5);
  MatMul(a, b2t, &out4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(out3.at(r, c), out4.at(r, c), 1e-4f);
    }
  }
}

// ---------- Memory accounting ----------

/// Serializes tests that toggle the process-wide allocation tracker.
class TensorMemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTensorMemTrackingEnabled(true);
    ResetTensorMemStats();
  }
  void TearDown() override {
    SetTensorMemTrackingEnabled(false);
    ResetTensorMemStats();
  }
};

TEST_F(TensorMemTest, LiveAndPeakTrackScopes) {
  const int64_t base_live = TensorMemStats().live_bytes;
  {
    Tensor a(100, 100);  // 40 KB
    const TensorMemSnapshot during = TensorMemStats();
    EXPECT_EQ(during.live_bytes, base_live + 40000);
    EXPECT_GE(during.peak_live_bytes, base_live + 40000);
    EXPECT_GE(during.alloc_count, 1u);
  }
  const TensorMemSnapshot after = TensorMemStats();
  EXPECT_EQ(after.live_bytes, base_live);           // freed on scope exit
  EXPECT_GE(after.peak_live_bytes, base_live + 40000);  // peak persists
}

TEST_F(TensorMemTest, CopyCountsMoveDoesNot) {
  Tensor a(10, 10);  // 400 B
  const TensorMemSnapshot before = TensorMemStats();
  Tensor copied = a;  // new allocation
  EXPECT_EQ(TensorMemStats().live_bytes, before.live_bytes + 400);
  Tensor moved = std::move(copied);  // ownership transfer, no new bytes
  EXPECT_EQ(TensorMemStats().live_bytes, before.live_bytes + 400);
}

TEST_F(TensorMemTest, BalancedAcrossEnableToggle) {
  Tensor tracked(10, 10);
  SetTensorMemTrackingEnabled(false);
  const int64_t live_with_tracked = TensorMemStats().live_bytes;
  {
    Tensor untracked(50, 50);  // allocated while tracking is off
    EXPECT_EQ(TensorMemStats().live_bytes, live_with_tracked);
  }
  SetTensorMemTrackingEnabled(true);
  // The untracked tensor's destruction must not underflow the gauge, and
  // destroying the tracked tensor releases exactly what it recorded.
  EXPECT_EQ(TensorMemStats().live_bytes, live_with_tracked);
}

TEST_F(TensorMemTest, AssignmentReleasesOldAllocation) {
  Tensor a(10, 10);                     // 400 B
  const int64_t base = TensorMemStats().live_bytes;
  a = Tensor(20, 20);                   // 1600 B replaces 400 B
  EXPECT_EQ(TensorMemStats().live_bytes, base - 400 + 1600);
}

TEST_F(TensorMemTest, PublishExportsGaugesAndCounters) {
  Tensor a(100, 100);
  PublishTensorMemMetrics();
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  EXPECT_GE(reg.GetGauge("nn/tensor/peak_live_bytes")->Value(), 40000.0);
  EXPECT_GE(reg.GetCounter("nn/tensor/allocs_total")->Value(), 1u);
}

}  // namespace
}  // namespace ucad::nn
