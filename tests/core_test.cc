#include <gtest/gtest.h>

#include "core/ucad.h"
#include "util/rng.h"
#include "workload/anomaly.h"
#include "workload/cases.h"
#include "workload/commenting.h"

namespace ucad::core {
namespace {

UcadOptions SmokeOptions() {
  UcadOptions options;
  options.model.window = 12;
  options.model.hidden_dim = 12;
  options.model.num_heads = 2;
  options.model.num_blocks = 2;
  options.training.epochs = 14;
  options.detection.top_p = 7;
  // Permissive clustering so the small smoke log survives.
  options.filter.dbscan.eps = 0.95;
  options.filter.dbscan.min_points = 2;
  options.filter.small_cluster_ratio = 0.0;
  options.filter.short_session_ratio = 0.0;
  return options;
}

class UcadTest : public ::testing::Test {
 protected:
  UcadTest()
      : spec_(workload::MakeCommentingScenario()),
        generator_(spec_),
        synthesizer_(&generator_),
        rng_(77) {}

  prep::PolicyEngine MakePolicies() const {
    return prep::MakeDefaultPolicyEngine(spec_.users, spec_.addresses,
                                         spec_.business_start_hour,
                                         spec_.business_end_hour);
  }

  workload::ScenarioSpec spec_;
  workload::SessionGenerator generator_;
  workload::AnomalySynthesizer synthesizer_;
  util::Rng rng_;
};

TEST_F(UcadTest, TrainRejectsEmptyLog) {
  Ucad ucad(SmokeOptions(), MakePolicies());
  const util::Status status = ucad.Train({});
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(ucad.trained());
}

TEST_F(UcadTest, EndToEndTrainDetectFineTune) {
  Ucad ucad(SmokeOptions(), MakePolicies());
  ASSERT_TRUE(ucad.Train(generator_.GenerateNormalBatch(80, &rng_)).ok());
  ASSERT_TRUE(ucad.trained());

  // A clean session should not be escalated (allow occasional FP).
  int clean_flags = 0;
  for (int i = 0; i < 10; ++i) {
    const UcadDetection d = ucad.Detect(generator_.GenerateNormal(&rng_));
    EXPECT_FALSE(d.known_attack);
    clean_flags += d.abnormal() ? 1 : 0;
  }
  EXPECT_LE(clean_flags, 5);

  // A policy-violating session is a known attack (model never runs).
  const UcadDetection noisy = ucad.Detect(generator_.GenerateNoisy(
      workload::NoiseKind::kUnknownAddress, &rng_));
  EXPECT_TRUE(noisy.known_attack);
  EXPECT_EQ(noisy.violated_policy, "known-user-address");
  EXPECT_TRUE(noisy.abnormal());

  // A stealthy A2 session should usually be flagged.
  int theft_flags = 0;
  for (int i = 0; i < 10; ++i) {
    const auto theft = synthesizer_.CredentialStealing(
        generator_.GenerateNormal(&rng_), &rng_);
    theft_flags += ucad.Detect(theft).abnormal() ? 1 : 0;
  }
  EXPECT_GE(theft_flags, 5);

  // Fine-tuning on verified normals keeps the system usable.
  ASSERT_TRUE(
      ucad.FineTune(generator_.GenerateNormalBatch(10, &rng_)).ok());
  const UcadDetection after = ucad.Detect(generator_.GenerateNormal(&rng_));
  EXPECT_FALSE(after.known_attack);
}

TEST_F(UcadTest, FineTuneBeforeTrainFails) {
  Ucad ucad(SmokeOptions(), MakePolicies());
  const util::Status status =
      ucad.FineTune(generator_.GenerateNormalBatch(2, &rng_));
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(UcadTest, DanmuBotCaseStudyFlagged) {
  Ucad ucad(SmokeOptions(), MakePolicies());
  ASSERT_TRUE(ucad.Train(generator_.GenerateNormalBatch(80, &rng_)).ok());
  const workload::CaseStudy cs =
      workload::MakeDanmuBotCase(generator_, &rng_);
  EXPECT_TRUE(ucad.Detect(cs.suspicious).abnormal())
      << "bot session should be flagged: " << cs.expected_finding;
}

}  // namespace
}  // namespace ucad::core
