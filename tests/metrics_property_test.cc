// Randomized property tests for the evaluation metrics: for arbitrary
// classifiers and test-set layouts, the derived rates must satisfy the
// standard identities. Also the accounting invariants of the incremental/
// batched inference tier: slide-cache hits + misses must equal the number
// of slide-enabled forwards, and the batch-occupancy gauge must stay a
// valid ratio in (0, 1].

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "nn/infer.h"
#include "obs/metrics.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "util/rng.h"

namespace ucad::eval {
namespace {

/// Builds a random six-set layout and a pseudo-random classifier; returns
/// both the framework's metrics and a hand-computed confusion matrix.
struct Scenario {
  std::vector<LabeledSet> sets;
  SessionClassifier classifier;
  int tp = 0, fp = 0, tn = 0, fn = 0;
};

Scenario MakeScenario(uint64_t seed) {
  util::Rng rng(seed);
  Scenario sc;
  const sql::SessionLabel labels[] = {
      sql::SessionLabel::kNormal,        sql::SessionLabel::kNormalSwapped,
      sql::SessionLabel::kNormalReduced, sql::SessionLabel::kPrivilegeAbuse,
      sql::SessionLabel::kCredentialTheft, sql::SessionLabel::kMisoperation,
  };
  // Classifier: flags a session iff its first key is odd.
  sc.classifier = [](const std::vector<int>& s) {
    return !s.empty() && s[0] % 2 == 1;
  };
  for (sql::SessionLabel label : labels) {
    LabeledSet set;
    set.label = label;
    const int n = 1 + static_cast<int>(rng.UniformU64(20));
    for (int i = 0; i < n; ++i) {
      const int first = static_cast<int>(rng.UniformU64(10));
      set.sessions.push_back({first, 2, 3});
      const bool flagged = first % 2 == 1;
      if (sql::IsAbnormalLabel(label)) {
        (flagged ? sc.tp : sc.fn) += 1;
      } else {
        (flagged ? sc.fp : sc.tn) += 1;
      }
    }
    sc.sets.push_back(std::move(set));
  }
  return sc;
}

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, ConfusionMatrixMatchesHandCount) {
  const Scenario sc = MakeScenario(GetParam());
  const EvalResult r = Evaluate(sc.classifier, sc.sets);
  EXPECT_EQ(r.true_positives, sc.tp);
  EXPECT_EQ(r.false_positives, sc.fp);
  EXPECT_EQ(r.true_negatives, sc.tn);
  EXPECT_EQ(r.false_negatives, sc.fn);
}

TEST_P(MetricsPropertyTest, StandardIdentitiesHold) {
  const Scenario sc = MakeScenario(GetParam());
  const EvalResult r = Evaluate(sc.classifier, sc.sets);
  // Rates in [0, 1].
  for (const auto& [label, rate] : r.per_set_rate) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_GE(r.precision, 0.0);
  EXPECT_LE(r.precision, 1.0);
  EXPECT_GE(r.recall, 0.0);
  EXPECT_LE(r.recall, 1.0);
  // F1 is the harmonic mean when both parts are nonzero.
  if (r.precision + r.recall > 0) {
    EXPECT_NEAR(r.f1,
                2 * r.precision * r.recall / (r.precision + r.recall),
                1e-12);
    // Harmonic mean is bounded by min and max of its parts.
    EXPECT_LE(r.f1, std::max(r.precision, r.recall) + 1e-12);
    EXPECT_GE(r.f1, std::min(r.precision, r.recall) - 1e-12);
  } else {
    EXPECT_EQ(r.f1, 0.0);
  }
  // Precision/recall recomputed from the confusion matrix.
  if (r.true_positives + r.false_positives > 0) {
    EXPECT_NEAR(r.precision,
                static_cast<double>(r.true_positives) /
                    (r.true_positives + r.false_positives),
                1e-12);
  }
  if (r.true_positives + r.false_negatives > 0) {
    EXPECT_NEAR(r.recall,
                static_cast<double>(r.true_positives) /
                    (r.true_positives + r.false_negatives),
                1e-12);
  }
}

TEST_P(MetricsPropertyTest, FlagEverythingGivesPerfectRecall) {
  const Scenario sc = MakeScenario(GetParam());
  const EvalResult r =
      Evaluate([](const std::vector<int>&) { return true; }, sc.sets);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  for (const auto& [label, rate] : r.per_set_rate) {
    if (sql::IsAbnormalLabel(label)) {
      EXPECT_DOUBLE_EQ(rate, 0.0);  // FNR
    } else {
      EXPECT_DOUBLE_EQ(rate, 1.0);  // FPR
    }
  }
}

TEST_P(MetricsPropertyTest, BinaryAgreesWithSetEvaluation) {
  const Scenario sc = MakeScenario(GetParam());
  // Flatten the sets into a binary-labeled list and compare.
  std::vector<std::vector<int>> sessions;
  std::vector<bool> labels;
  for (const auto& set : sc.sets) {
    for (const auto& s : set.sessions) {
      sessions.push_back(s);
      labels.push_back(sql::IsAbnormalLabel(set.label));
    }
  }
  const BinaryMetrics b = EvaluateBinary(sc.classifier, sessions, labels);
  const EvalResult r = Evaluate(sc.classifier, sc.sets);
  EXPECT_NEAR(b.precision, r.precision, 1e-12);
  EXPECT_NEAR(b.recall, r.recall, 1e-12);
  EXPECT_NEAR(b.f1, r.f1, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u,
                                           31337u, 271828u, 314159u));

// ---------- Incremental/batched tier accounting invariants ----------

class InferAccountingPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(InferAccountingPropertyTest, SlideCacheHitsPlusMissesEqualScoredOps) {
  util::Rng rng(GetParam());
  transdas::TransDasConfig config;
  config.vocab_size = 15 + static_cast<int>(rng.UniformU64(10));
  config.window = 4 + static_cast<int>(rng.UniformU64(5));
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 1 + static_cast<int>(rng.UniformU64(2));
  transdas::TransDasModel model(config, &rng);
  transdas::DetectorOptions opts;
  opts.incremental = true;
  const transdas::TransDasDetector detector(&model, opts);

  const uint64_t hits0 = nn::internal::SlideCacheHitsTotal();
  const uint64_t misses0 = nn::internal::SlideCacheMissesTotal();
  uint64_t scored = 0;
  std::vector<int> preceding;
  const int ops = 5 + static_cast<int>(rng.UniformU64(20));
  for (int i = 0; i < ops; ++i) {
    const int next = static_cast<int>(rng.UniformU64(config.vocab_size));
    detector.ScoreNextOperation(preceding, next);
    ++scored;
    preceding.push_back(next);
  }
  // Every incremental position scored notes exactly one hit or one miss —
  // no forward is double-counted and none escapes the accounting.
  const uint64_t hits = nn::internal::SlideCacheHitsTotal() - hits0;
  const uint64_t misses = nn::internal::SlideCacheMissesTotal() - misses0;
  EXPECT_EQ(hits + misses, scored);
  // Single-threaded single-session stream: at most the first forward (plus
  // a possible L-boundary re-prime) can miss; the slide chain then holds.
  EXPECT_GE(hits, scored - 2);
}

TEST_P(InferAccountingPropertyTest, BatchOccupancyGaugeStaysARatio) {
  util::Rng rng(GetParam() + 17);
  transdas::TransDasConfig config;
  config.vocab_size = 18;
  config.window = 5;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 1;
  transdas::TransDasModel model(config, &rng);
  transdas::DetectorOptions opts;
  opts.batch_windows = 2 + static_cast<int>(rng.UniformU64(4));
  const transdas::TransDasDetector detector(&model, opts);

  const uint64_t windows0 = nn::internal::BatchedWindowsTotal();
  const uint64_t slots0 = nn::internal::BatchedSlotsTotal();
  const uint64_t batches0 = nn::internal::BatchForwardsTotal();
  std::vector<std::vector<int>> sessions(6);
  for (std::vector<int>& keys : sessions) {
    keys.resize(2 + rng.UniformU64(25));
    for (int& key : keys) {
      key = static_cast<int>(rng.UniformU64(config.vocab_size));
    }
  }
  detector.DetectSessions(sessions);
  const uint64_t windows = nn::internal::BatchedWindowsTotal() - windows0;
  const uint64_t slots = nn::internal::BatchedSlotsTotal() - slots0;
  const uint64_t batches = nn::internal::BatchForwardsTotal() - batches0;
  ASSERT_GT(batches, 0u);
  // Each batch contributes capacity slots and 1..capacity windows, so the
  // occupancy ratio is bounded by (0, 1] and the slot count is exactly
  // batches * batch_windows.
  EXPECT_EQ(slots, batches * static_cast<uint64_t>(opts.batch_windows));
  EXPECT_GE(windows, batches);  // at least one window per batch
  EXPECT_LE(windows, slots);
  // The published gauge is the cumulative ratio and must stay in (0, 1].
  obs::MetricsRegistry registry;
  nn::PublishInferMetrics(&registry);
  const double occupancy =
      registry.GetGauge("nn/infer/batch_occupancy")->Value();
  EXPECT_GT(occupancy, 0.0);
  EXPECT_LE(occupancy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InferAccountingPropertyTest,
                         ::testing::Values(3u, 19u, 777u, 4242u));

}  // namespace
}  // namespace ucad::eval
