// SLO evaluation: multi-window burn-rate semantics (no data never
// degrades, fast-only blips never degrade, breach requires both windows,
// escalation to unhealthy, recovery), the published slo/* gauges, and the
// /healthz endpoint wired through MetricsHttpServer's health handler.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace ucad::obs {
namespace {

/// Counter-ratio objective used throughout: err/req must stay under 10%,
/// with short windows so tests can craft breach/recovery timelines.
SloSpec ErrRatioSpec() {
  SloSpec spec;
  spec.name = "err-ratio";
  spec.signal = SloSignal::kCounterRatio;
  spec.series = "svc/err_total";
  spec.denominator = "svc/req_total";
  spec.ceiling = 0.1;
  spec.fast_window_ms = 60'000;
  spec.slow_window_ms = 120'000;
  spec.unhealthy_factor = 2.0;
  spec.description = "request error ratio";
  return spec;
}

TEST(SloEvaluatorTest, EmptyStoreIsOk) {
  MetricsRegistry registry;
  TimeSeriesStore store(&registry);
  SloEvaluator evaluator({ErrRatioSpec()}, &store, &registry);
  const HealthReport report = evaluator.Evaluate();
  EXPECT_EQ(report.grade, HealthGrade::kOk);
  ASSERT_EQ(report.slos.size(), 1u);
  EXPECT_EQ(report.slos[0].grade, HealthGrade::kOk);
  EXPECT_DOUBLE_EQ(report.slos[0].burn_fast, 0.0);
  EXPECT_DOUBLE_EQ(report.slos[0].burn_slow, 0.0);
  EXPECT_NE(report.ToText().find("ok"), std::string::npos);
  EXPECT_NE(report.ToText().find("slo ok: 1/1"), std::string::npos);
}

TEST(SloEvaluatorTest, MissingSeriesNeverDegrades) {
  // Ticks exist but the objective's series was never emitted: absence of
  // evidence is not a breach.
  MetricsRegistry registry;
  registry.GetCounter("other/counter_total")->Increment();
  TimeSeriesStore store(&registry);
  store.Sample(1000);
  store.Sample(31'000);
  SloEvaluator evaluator({ErrRatioSpec()}, &store, &registry);
  EXPECT_EQ(evaluator.Evaluate().grade, HealthGrade::kOk);
}

TEST(SloEvaluatorTest, FastWindowBlipAloneDoesNotDegrade) {
  MetricsRegistry registry;
  Counter* req = registry.GetCounter("svc/req_total");
  Counter* err = registry.GetCounter("svc/err_total");
  TimeSeriesStore store(&registry);
  // 8 clean half-minutes, then one bad half-minute: the fast 60s window
  // burns hot (ratio 0.5) but the slow 120s window stays at budget.
  int64_t t = 1'000'000;
  for (int i = 0; i < 8; ++i) {
    req->Increment(100);
    store.Sample(t += 30'000);
  }
  req->Increment(100);
  err->Increment(30);
  store.Sample(t += 30'000);
  SloEvaluator evaluator({ErrRatioSpec()}, &store, &registry);
  const HealthReport report = evaluator.Evaluate();
  ASSERT_EQ(report.slos.size(), 1u);
  EXPECT_GT(report.slos[0].burn_fast, 1.0);
  EXPECT_LE(report.slos[0].burn_slow, 1.0);
  EXPECT_EQ(report.grade, HealthGrade::kOk)
      << report.ToText();
}

TEST(SloEvaluatorTest, SustainedBreachDegradesThenRecovers) {
  MetricsRegistry registry;
  Counter* req = registry.GetCounter("svc/req_total");
  Counter* err = registry.GetCounter("svc/err_total");
  TimeSeriesStore store(&registry);
  SloEvaluator evaluator({ErrRatioSpec()}, &store, &registry);
  // Sustained 15% error ratio: burn 1.5 in both windows -> degraded (but
  // under the 2.0 unhealthy factor).
  int64_t t = 1'000'000;
  store.Sample(t);
  for (int i = 0; i < 6; ++i) {
    req->Increment(100);
    err->Increment(15);
    store.Sample(t += 30'000);
  }
  HealthReport report = evaluator.Evaluate();
  EXPECT_EQ(report.grade, HealthGrade::kDegraded) << report.ToText();
  ASSERT_EQ(report.slos.size(), 1u);
  EXPECT_NEAR(report.slos[0].burn_fast, 1.5, 1e-9);
  EXPECT_NEAR(report.slos[0].burn_slow, 1.5, 1e-9);
  EXPECT_NE(report.slos[0].reason.find("request error ratio"),
            std::string::npos);
  EXPECT_NE(report.ToText().find("slo err-ratio degraded"),
            std::string::npos);

  // Recovery: enough clean ticks to flush both windows -> ok again.
  for (int i = 0; i < 6; ++i) {
    req->Increment(100);
    store.Sample(t += 30'000);
  }
  report = evaluator.Evaluate();
  EXPECT_EQ(report.grade, HealthGrade::kOk) << report.ToText();
}

TEST(SloEvaluatorTest, DeepBreachEscalatesToUnhealthy) {
  MetricsRegistry registry;
  Counter* req = registry.GetCounter("svc/req_total");
  Counter* err = registry.GetCounter("svc/err_total");
  TimeSeriesStore store(&registry);
  int64_t t = 1'000'000;
  store.Sample(t);
  for (int i = 0; i < 6; ++i) {
    req->Increment(100);
    err->Increment(30);  // 30% ratio: burn 3.0 >= unhealthy_factor 2.0
    store.Sample(t += 30'000);
  }
  SloEvaluator evaluator({ErrRatioSpec()}, &store, &registry);
  const HealthReport report = evaluator.Evaluate();
  EXPECT_EQ(report.grade, HealthGrade::kUnhealthy) << report.ToText();
  EXPECT_NE(report.ToText().find("unhealthy"), std::string::npos);
}

TEST(SloEvaluatorTest, GaugeCeilingAndBandSignals) {
  MetricsRegistry registry;
  Gauge* psi = registry.GetGauge("det/psi");
  Gauge* rate = registry.GetGauge("det/rate");
  TimeSeriesStore store(&registry);
  SloSpec psi_spec;
  psi_spec.name = "psi";
  psi_spec.signal = SloSignal::kGauge;
  psi_spec.series = "det/psi";
  psi_spec.ceiling = 0.25;
  psi_spec.fast_window_ms = 60'000;
  psi_spec.slow_window_ms = 120'000;
  SloSpec band_spec;
  band_spec.name = "rate-band";
  band_spec.signal = SloSignal::kGaugeBand;
  band_spec.series = "det/rate";
  band_spec.ceiling = 0.9;
  band_spec.floor = 0.01;
  band_spec.fast_window_ms = 60'000;
  band_spec.slow_window_ms = 120'000;
  int64_t t = 1'000'000;
  psi->Set(0.5);   // 2x the PSI ceiling, sustained
  rate->Set(0.0);  // detector gone silent: below the band floor
  for (int i = 0; i < 5; ++i) store.Sample(t += 30'000);
  SloEvaluator evaluator({psi_spec, band_spec}, &store, &registry);
  const HealthReport report = evaluator.Evaluate();
  ASSERT_EQ(report.slos.size(), 2u);
  EXPECT_NE(report.slos[0].grade, HealthGrade::kOk) << report.ToText();
  EXPECT_NEAR(report.slos[0].burn_fast, 2.0, 1e-9);
  // Silence burns 2.0 - 0/floor = 2.0 on the band's floor side.
  EXPECT_NE(report.slos[1].grade, HealthGrade::kOk) << report.ToText();
  EXPECT_NEAR(report.slos[1].burn_fast, 2.0, 1e-9);
}

TEST(SloEvaluatorTest, HistogramP99Signal) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("svc/latency_ms", {}, {10.0, 100.0, 1000.0});
  TimeSeriesStore store(&registry);
  SloSpec spec;
  spec.name = "latency-p99";
  spec.signal = SloSignal::kHistogramP99;
  spec.series = "svc/latency_ms";
  spec.ceiling = 50.0;
  spec.fast_window_ms = 60'000;
  spec.slow_window_ms = 120'000;
  int64_t t = 1'000'000;
  store.Sample(t);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 20; ++j) h->Observe(500.0);  // way past the ceiling
    store.Sample(t += 30'000);
  }
  SloEvaluator evaluator({spec}, &store, &registry);
  const HealthReport report = evaluator.Evaluate();
  EXPECT_NE(report.grade, HealthGrade::kOk) << report.ToText();
  EXPECT_GT(report.slos[0].measured, 50.0);
}

TEST(SloEvaluatorTest, EvaluateAndPublishMirrorsIntoGauges) {
  MetricsRegistry registry;
  Counter* req = registry.GetCounter("svc/req_total");
  Counter* err = registry.GetCounter("svc/err_total");
  TimeSeriesStore store(&registry);
  SloEvaluator evaluator({ErrRatioSpec()}, &store, &registry);
  int64_t t = 1'000'000;
  store.Sample(t);
  for (int i = 0; i < 6; ++i) {
    req->Increment(100);
    err->Increment(15);
    store.Sample(t += 30'000);
  }
  const HealthReport report = evaluator.EvaluateAndPublish();
  EXPECT_EQ(report.grade, HealthGrade::kDegraded);
  EXPECT_DOUBLE_EQ(registry.GetGauge("slo/status")->Value(), 1.0);
  const Labels labels = {{"slo", "err-ratio"}};
  EXPECT_NEAR(registry.GetGauge("slo/burn_rate", labels)->Value(), 1.5,
              1e-9);
  EXPECT_DOUBLE_EQ(registry.GetGauge("slo/ok", labels)->Value(), 0.0);
}

TEST(SloEvaluatorTest, ReportJsonCarriesEverySlo) {
  MetricsRegistry registry;
  TimeSeriesStore store(&registry);
  SloEvaluator evaluator({ErrRatioSpec()}, &store, &registry);
  const std::string json = evaluator.Evaluate().ToJson();
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"err-ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"burn_fast\":"), std::string::npos);
}

TEST(DefaultSloSpecsTest, ShipsCanaryAndDetectorObjectives) {
  const std::vector<SloSpec> specs = DefaultSloSpecs();
  ASSERT_GE(specs.size(), 5u);
  std::vector<std::string> names;
  for (const SloSpec& s : specs) names.push_back(s.name);
  for (const char* expected :
       {"score-p99", "anomaly-band", "psi-drift", "canary-miss",
        "canary-false-flag"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing default SLO " << expected;
  }
}

// ---------- /healthz through the server ----------

/// One blocking HTTP/1.0 round-trip against 127.0.0.1:`port`.
std::string HttpGet(int port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = request_line + "\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HealthzEndpointTest, ReflectsSloGradeAndRecovers) {
  MetricsRegistry registry;
  Counter* req = registry.GetCounter("svc/req_total");
  Counter* err = registry.GetCounter("svc/err_total");
  TimeSeriesStore store(&registry);
  SloEvaluator evaluator({ErrRatioSpec()}, &store, &registry);
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  // The CLI's wiring: ok/degraded answer 200 (scrapes must keep working
  // while degraded), only unhealthy answers 503.
  server.SetHealthHandler([&evaluator]() -> std::pair<int, std::string> {
    const HealthReport report = evaluator.Evaluate();
    return {report.grade == HealthGrade::kUnhealthy ? 503 : 200,
            report.ToText()};
  });

  // Healthy: no data yet.
  std::string response = HttpGet(server.port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos) << response;
  EXPECT_NE(response.find("ok"), std::string::npos);

  // Induce a sustained deep breach -> unhealthy -> 503 with the reason.
  int64_t t = 1'000'000;
  store.Sample(t);
  for (int i = 0; i < 6; ++i) {
    req->Increment(100);
    err->Increment(30);
    store.Sample(t += 30'000);
  }
  response = HttpGet(server.port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(response.find("HTTP/1.0 503"), std::string::npos) << response;
  EXPECT_NE(response.find("unhealthy"), std::string::npos);
  EXPECT_NE(response.find("err-ratio"), std::string::npos);

  // Recovery flushes both windows -> 200 "ok" again.
  for (int i = 0; i < 8; ++i) {
    req->Increment(100);
    store.Sample(t += 30'000);
  }
  response = HttpGet(server.port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos) << response;

  // Detaching the handler restores the static answer.
  server.SetHealthHandler(nullptr);
  response = HttpGet(server.port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(response.find("ok\n"), std::string::npos);
}

}  // namespace
}  // namespace ucad::obs
