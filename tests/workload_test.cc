#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "sql/statement.h"
#include "sql/vocabulary.h"
#include "workload/anomaly.h"
#include "workload/cases.h"
#include "workload/commenting.h"
#include "workload/location.h"
#include "workload/scenario.h"
#include "workload/syslog.h"

namespace ucad::workload {
namespace {

// ---------- Scenario generation ----------

class ScenarioGenerationTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  ScenarioSpec MakeSpec() const {
    if (std::string(GetParam()) == "commenting") {
      return MakeCommentingScenario();
    }
    LocationOptions small;
    small.select_variants = 4;
    small.insert_variants = 4;
    small.picn_insert_variants = 2;
    small.update_variants = 4;
    small.min_tasks = 3;
    small.max_tasks = 6;
    return MakeLocationScenario(small);
  }
};

TEST_P(ScenarioGenerationTest, SessionsNonEmptyAndAttributed) {
  const ScenarioSpec spec = MakeSpec();
  SessionGenerator generator(spec);
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const sql::RawSession s = generator.GenerateNormal(&rng);
    EXPECT_GT(s.operations.size(), 2u);
    EXPECT_FALSE(s.attrs.user.empty());
    EXPECT_FALSE(s.attrs.client_address.empty());
    EXPECT_EQ(s.label, sql::SessionLabel::kNormal);
    // Times monotonically non-decreasing.
    for (size_t j = 1; j < s.operations.size(); ++j) {
      EXPECT_GE(s.operations[j].time_offset_s,
                s.operations[j - 1].time_offset_s);
    }
  }
}

TEST_P(ScenarioGenerationTest, AttributesComeFromPopulation) {
  const ScenarioSpec spec = MakeSpec();
  SessionGenerator generator(spec);
  util::Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const sql::RawSession s = generator.GenerateNormal(&rng);
    auto it = std::find(spec.users.begin(), spec.users.end(), s.attrs.user);
    ASSERT_NE(it, spec.users.end());
    const size_t idx = it - spec.users.begin();
    EXPECT_EQ(s.attrs.client_address, spec.addresses[idx]);
  }
}

TEST_P(ScenarioGenerationTest, DeterministicForSeed) {
  const ScenarioSpec spec = MakeSpec();
  SessionGenerator generator(spec);
  util::Rng rng1(77), rng2(77);
  const sql::RawSession a = generator.GenerateNormal(&rng1);
  const sql::RawSession b = generator.GenerateNormal(&rng2);
  ASSERT_EQ(a.operations.size(), b.operations.size());
  for (size_t i = 0; i < a.operations.size(); ++i) {
    EXPECT_EQ(a.operations[i].sql, b.operations[i].sql);
  }
}

TEST_P(ScenarioGenerationTest, VocabularyIsBoundedAndStable) {
  const ScenarioSpec spec = MakeSpec();
  SessionGenerator generator(spec);
  util::Rng rng(3);
  sql::Vocabulary vocab;
  for (int i = 0; i < 150; ++i) {
    const sql::RawSession s = generator.GenerateNormal(&rng);
    for (const auto& op : s.operations) {
      vocab.GetOrAssign(sql::ParseStatement(op.sql));
    }
  }
  // Upper bound: sum of shape variants over all families.
  int bound = 1;
  for (const auto& family : spec.families) {
    bound += static_cast<int>(family.shape_variants.size());
  }
  EXPECT_LE(vocab.size(), bound);
  EXPECT_GT(vocab.size(), 5);
}

TEST_P(ScenarioGenerationTest, NoisySessionsViolateExactlyTheirDimension) {
  const ScenarioSpec spec = MakeSpec();
  SessionGenerator generator(spec);
  util::Rng rng(4);
  const sql::RawSession unknown_addr =
      generator.GenerateNoisy(NoiseKind::kUnknownAddress, &rng);
  EXPECT_EQ(std::find(spec.addresses.begin(), spec.addresses.end(),
                      unknown_addr.attrs.client_address),
            spec.addresses.end());

  const sql::RawSession off_hours =
      generator.GenerateNoisy(NoiseKind::kOffHours, &rng);
  EXPECT_EQ((off_hours.attrs.start_time_s % 86400) / 3600, 3);

  const sql::RawSession forbidden =
      generator.GenerateNoisy(NoiseKind::kForbiddenTable, &rng);
  bool touches = false;
  for (const auto& op : forbidden.operations) {
    touches |= sql::ExtractTable(op.sql) == "t_credentials";
  }
  EXPECT_TRUE(touches);

  const sql::RawSession gaps =
      generator.GenerateNoisy(NoiseKind::kHugeGaps, &rng);
  ASSERT_GE(gaps.operations.size(), 2u);
  EXPECT_GE(gaps.operations[1].time_offset_s -
                gaps.operations[0].time_offset_s,
            3600);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ScenarioGenerationTest,
                         ::testing::Values("commenting", "location"));

TEST(CommentingScenarioTest, KeyBreakdownMatchesTable1) {
  SessionGenerator generator(MakeCommentingScenario());
  util::Rng rng(5);
  sql::Vocabulary vocab;
  for (int i = 0; i < 600; ++i) {
    for (const auto& op : generator.GenerateNormal(&rng).operations) {
      vocab.GetOrAssign(sql::ParseStatement(op.sql));
    }
  }
  // Paper Table 1 Scenario-I: 20 keys = 7 select, 4 insert, 4 update,
  // 5 delete over 7 tables.
  EXPECT_EQ(vocab.CountCommand(sql::CommandType::kSelect), 7);
  EXPECT_EQ(vocab.CountCommand(sql::CommandType::kInsert), 4);
  EXPECT_EQ(vocab.CountCommand(sql::CommandType::kUpdate), 4);
  EXPECT_LE(vocab.CountCommand(sql::CommandType::kDelete), 5);
  EXPECT_GE(vocab.CountCommand(sql::CommandType::kDelete), 4);
  EXPECT_EQ(vocab.CountTables(), 7);
}

TEST(LocationScenarioTest, SelectInsertDominateDeletesRare) {
  LocationOptions opts;
  opts.select_variants = 6;
  opts.insert_variants = 6;
  opts.picn_insert_variants = 3;
  opts.update_variants = 6;
  SessionGenerator generator(MakeLocationScenario(opts));
  util::Rng rng(6);
  std::map<sql::CommandType, int> ops;
  for (int i = 0; i < 100; ++i) {
    for (const auto& op : generator.GenerateNormal(&rng).operations) {
      ++ops[sql::ClassifyCommand(op.sql)];
    }
  }
  EXPECT_GT(ops[sql::CommandType::kSelect], ops[sql::CommandType::kDelete]);
  EXPECT_GT(ops[sql::CommandType::kInsert], ops[sql::CommandType::kDelete]);
  // Deletes occur but are rare (4 rare keys, Table 1).
  EXPECT_LT(ops[sql::CommandType::kDelete] * 20,
            ops[sql::CommandType::kSelect] + ops[sql::CommandType::kInsert]);
}

// ---------- Anomaly synthesizers ----------

class AnomalyTest : public ::testing::Test {
 protected:
  AnomalyTest()
      : spec_(MakeCommentingScenario()),
        generator_(spec_),
        synthesizer_(&generator_),
        rng_(9) {}

  ScenarioSpec spec_;
  SessionGenerator generator_;
  AnomalySynthesizer synthesizer_;
  util::Rng rng_;
};

TEST_F(AnomalyTest, PartialSwapPreservesMultiset) {
  for (int i = 0; i < 10; ++i) {
    const sql::RawSession base = generator_.GenerateNormal(&rng_);
    const sql::RawSession swapped = synthesizer_.PartialSwap(base, &rng_);
    EXPECT_EQ(swapped.label, sql::SessionLabel::kNormalSwapped);
    ASSERT_EQ(swapped.operations.size(), base.operations.size());
    std::multiset<std::string> a, b;
    for (const auto& op : base.operations) a.insert(op.sql);
    for (const auto& op : swapped.operations) b.insert(op.sql);
    EXPECT_EQ(a, b);
  }
}

TEST_F(AnomalyTest, PartialSwapOnlyMovesSwapGroupMembers) {
  const sql::RawSession base = generator_.GenerateNormal(&rng_);
  const sql::RawSession swapped = synthesizer_.PartialSwap(base, &rng_);
  for (size_t i = 0; i < base.operations.size(); ++i) {
    if (base.operations[i].swap_group < 0) {
      EXPECT_EQ(swapped.operations[i].sql, base.operations[i].sql)
          << "non-interchangeable op moved at " << i;
    }
  }
}

TEST_F(AnomalyTest, PartialRemoveOnlyDropsRemovable) {
  for (int i = 0; i < 10; ++i) {
    const sql::RawSession base = generator_.GenerateNormal(&rng_);
    const sql::RawSession reduced = synthesizer_.PartialRemove(base, &rng_);
    EXPECT_EQ(reduced.label, sql::SessionLabel::kNormalReduced);
    EXPECT_LE(reduced.operations.size(), base.operations.size());
    // Every non-removable op survives, in order.
    std::vector<std::string> expected;
    for (const auto& op : base.operations) {
      if (!op.removable) expected.push_back(op.sql);
    }
    std::vector<std::string> kept_required;
    for (const auto& op : reduced.operations) {
      if (!op.removable) kept_required.push_back(op.sql);
    }
    EXPECT_EQ(kept_required, expected);
  }
}

TEST_F(AnomalyTest, PrivilegeAbuseAddsSelects) {
  const sql::RawSession base = generator_.GenerateNormal(&rng_);
  const sql::RawSession abuse = synthesizer_.PrivilegeAbuse(base, &rng_);
  EXPECT_EQ(abuse.label, sql::SessionLabel::kPrivilegeAbuse);
  EXPECT_GT(abuse.operations.size(), base.operations.size());
  int injected = 0;
  for (const auto& op : abuse.operations) {
    if (op.injected) {
      ++injected;
      EXPECT_EQ(sql::ClassifyCommand(op.sql), sql::CommandType::kSelect);
    }
  }
  EXPECT_GE(injected, 4);
}

TEST_F(AnomalyTest, CredentialStealingStaysBelowTenPercent) {
  for (int i = 0; i < 20; ++i) {
    const sql::RawSession base = generator_.GenerateNormal(&rng_);
    const sql::RawSession theft =
        synthesizer_.CredentialStealing(base, &rng_);
    EXPECT_EQ(theft.label, sql::SessionLabel::kCredentialTheft);
    const size_t injected =
        theft.operations.size() - base.operations.size();
    EXPECT_GE(injected, 1u);
    EXPECT_LE(injected,
              std::max<size_t>(1, base.operations.size() / 10));
  }
}

TEST_F(AnomalyTest, MisoperationUsesMostlyRareOps) {
  const sql::RawSession mis = synthesizer_.Misoperation(24, &rng_);
  EXPECT_EQ(mis.label, sql::SessionLabel::kMisoperation);
  EXPECT_GE(mis.operations.size(), 4u);
  for (const auto& op : mis.operations) EXPECT_TRUE(op.injected);
}

TEST_F(AnomalyTest, HybridMixerAddsRequestedRatio) {
  std::vector<sql::RawSession> normals(
      20, generator_.GenerateNormal(&rng_));
  std::vector<sql::RawSession> anomalies = {
      synthesizer_.Misoperation(10, &rng_)};
  const auto mixed = MixHybridTraining(normals, anomalies, 0.2, &rng_);
  EXPECT_EQ(mixed.size(), 24u);
  int abnormal = 0;
  for (const auto& s : mixed) {
    abnormal += sql::IsAbnormalLabel(s.label) ? 1 : 0;
  }
  EXPECT_EQ(abnormal, 4);
}

// ---------- Syslog datasets ----------

class SyslogTest : public ::testing::TestWithParam<int> {};

TEST_P(SyslogTest, ShapesAndLabels) {
  util::Rng rng(13);
  SyslogOptions opts;
  opts.train_sessions = 40;
  opts.normal_test_sessions = 20;
  opts.abnormal_test_sessions = 10;
  LogDataset ds;
  switch (GetParam()) {
    case 0:
      ds = MakeHdfsLikeDataset(opts, &rng);
      break;
    case 1:
      ds = MakeBglLikeDataset(opts, &rng);
      break;
    default:
      ds = MakeThunderbirdLikeDataset(opts, &rng);
      break;
  }
  EXPECT_GE(static_cast<int>(ds.train.size()), 30);
  EXPECT_EQ(ds.test_sessions.size(), ds.test_labels.size());
  int abnormal = 0;
  for (bool label : ds.test_labels) abnormal += label ? 1 : 0;
  EXPECT_EQ(abnormal, 10);
  // All keys in range; training keys never include the anomaly-only tail.
  for (const auto& s : ds.train) {
    for (int k : s) {
      EXPECT_GT(k, 0);
      EXPECT_LT(k, ds.vocab_size);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, SyslogTest, ::testing::Values(0, 1, 2));

TEST(SyslogTest2, TrainKeysDisjointFromAnomalyBurstKeys) {
  util::Rng rng(14);
  SyslogOptions opts;
  opts.train_sessions = 30;
  opts.normal_test_sessions = 10;
  opts.abnormal_test_sessions = 10;
  const LogDataset ds = MakeBglLikeDataset(opts, &rng);
  std::set<int> train_keys;
  for (const auto& s : ds.train) train_keys.insert(s.begin(), s.end());
  // Abnormal windows contain at least one key never seen in training.
  for (size_t i = 0; i < ds.test_sessions.size(); ++i) {
    if (!ds.test_labels[i]) continue;
    bool has_unseen = false;
    for (int k : ds.test_sessions[i]) {
      has_unseen |= train_keys.count(k) == 0;
    }
    EXPECT_TRUE(has_unseen);
  }
}

// ---------- Case studies ----------

TEST(CaseStudyTest, DanmuBotCaseIsWellFormed) {
  SessionGenerator generator(MakeCommentingScenario());
  util::Rng rng(15);
  const CaseStudy cs = MakeDanmuBotCase(generator, &rng);
  EXPECT_FALSE(cs.description.empty());
  EXPECT_GE(cs.normal.operations.size(), 5u);
  EXPECT_GE(cs.suspicious.operations.size(), 5u);
  EXPECT_EQ(cs.normal.label, sql::SessionLabel::kNormal);
  EXPECT_TRUE(sql::IsAbnormalLabel(cs.suspicious.label));
  int injected = 0;
  for (const auto& op : cs.suspicious.operations) injected += op.injected;
  EXPECT_GE(injected, 2);
}

TEST(CaseStudyTest, RepackagedAppCaseFloodsInserts) {
  LocationOptions small;
  small.select_variants = 3;
  small.insert_variants = 3;
  small.picn_insert_variants = 2;
  small.update_variants = 3;
  SessionGenerator generator(MakeLocationScenario(small));
  util::Rng rng(16);
  const CaseStudy cs = MakeRepackagedAppCase(generator, &rng);
  int consecutive_inserts = 0, best = 0;
  for (const auto& op : cs.suspicious.operations) {
    if (sql::ClassifyCommand(op.sql) == sql::CommandType::kInsert) {
      best = std::max(best, ++consecutive_inserts);
    } else {
      consecutive_inserts = 0;
    }
  }
  EXPECT_GE(best, 8);
}

}  // namespace
}  // namespace ucad::workload

namespace ucad::workload {
namespace {

// ---------- Statement-shape and task-chain mechanisms ----------

TEST(StickyShapeTest, SameUserReusesTemplatesAcrossSessions) {
  // One user's sessions draw each family's statements from a single shape,
  // so the set of templates a user emits for a family is a singleton.
  LocationOptions opts;
  opts.select_variants = 6;
  opts.insert_variants = 6;
  opts.picn_insert_variants = 3;
  opts.update_variants = 6;
  SessionGenerator generator(MakeLocationScenario(opts));
  util::Rng rng(71);
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      templates_by_user_table;
  for (int i = 0; i < 60; ++i) {
    const sql::RawSession s = generator.GenerateNormal(&rng);
    for (const auto& op : s.operations) {
      const sql::Statement stmt = sql::ParseStatement(op.sql);
      if (stmt.command != sql::CommandType::kInsert) continue;
      if (stmt.table.rfind("t_cell_fp_", 0) != 0) continue;
      templates_by_user_table[s.attrs.user][stmt.table].insert(
          stmt.template_text);
    }
  }
  int checked = 0;
  for (const auto& [user, tables] : templates_by_user_table) {
    for (const auto& [table, templates] : tables) {
      EXPECT_EQ(templates.size(), 1u)
          << user << " uses multiple shapes on " << table;
      ++checked;
    }
  }
  EXPECT_GT(checked, 5);
}

TEST(ZipfShapeTest, HeadVariantDominates) {
  LocationOptions opts;
  opts.select_variants = 8;
  opts.insert_variants = 8;
  opts.picn_insert_variants = 3;
  opts.update_variants = 8;
  const ScenarioSpec spec = MakeLocationScenario(opts);
  // The fp-select families carry Zipf weights: w0 must dominate.
  bool found = false;
  for (const auto& family : spec.families) {
    if (family.shape_weights.empty()) continue;
    found = true;
    ASSERT_EQ(family.shape_weights.size(), family.shape_variants.size());
    for (size_t v = 1; v < family.shape_weights.size(); ++v) {
      EXPECT_GT(family.shape_weights[0], family.shape_weights[v]);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MarkovTaskTest, TransitionsShapeTaskSequences) {
  // In the commenting scenario, "like" is followed by "watch" with
  // probability 0.55 but by "moderate" with only 0.02; over many sessions
  // the like->watch bigram must dominate like->moderate.
  const ScenarioSpec spec = MakeCommentingScenario();
  ASSERT_EQ(spec.task_transitions.size(), spec.tasks.size());
  for (const auto& row : spec.task_transitions) {
    ASSERT_EQ(row.size(), spec.tasks.size());
    double total = 0.0;
    for (double w : row) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_GT(total, 0.0);
  }
  // Behavioral check: sessions starting a "like" (sel_danmu, ins_like,
  // sel_like) transition into watch-like reads far more often than into
  // moderation deletes.
  SessionGenerator generator(spec);
  util::Rng rng(72);
  int after_like_select = 0, after_like_delete = 0;
  for (int i = 0; i < 200; ++i) {
    const sql::RawSession s = generator.GenerateNormal(&rng);
    for (size_t j = 2; j + 1 < s.operations.size(); ++j) {
      const sql::Statement cur = sql::ParseStatement(s.operations[j].sql);
      if (cur.table != "t_like" ||
          cur.command != sql::CommandType::kSelect) {
        continue;
      }
      const sql::Statement next =
          sql::ParseStatement(s.operations[j + 1].sql);
      if (next.command == sql::CommandType::kSelect) ++after_like_select;
      if (next.command == sql::CommandType::kDelete) ++after_like_delete;
    }
  }
  EXPECT_GT(after_like_select, 4 * (after_like_delete + 1));
}

}  // namespace
}  // namespace ucad::workload
