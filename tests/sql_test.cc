#include <gtest/gtest.h>

#include "sql/session.h"
#include "sql/statement.h"
#include "sql/vocabulary.h"

namespace ucad::sql {
namespace {

// ---------- Literal abstraction ----------

TEST(AbstractLiteralsTest, PaperExample) {
  EXPECT_EQ(
      AbstractLiterals("Update T_content set count=23 where danmuKey=94"),
      "update t_content set count=$1 where danmukey=$2");
}

TEST(AbstractLiteralsTest, QuotedStrings) {
  EXPECT_EQ(AbstractLiterals("INSERT INTO t(name) VALUES ('alice')"),
            "insert into t(name) values ($1)");
  EXPECT_EQ(AbstractLiterals("SELECT * FROM t WHERE a='x''y'"),
            "select * from t where a=$1");
  EXPECT_EQ(AbstractLiterals("SELECT * FROM t WHERE a=\"z\""),
            "select * from t where a=$1");
}

TEST(AbstractLiteralsTest, DecimalsAndMultipleLiterals) {
  EXPECT_EQ(AbstractLiterals("SELECT * FROM t WHERE lat=1.5 AND lon=2.25"),
            "select * from t where lat=$1 and lon=$2");
}

TEST(AbstractLiteralsTest, DigitsInsideIdentifiersKept) {
  EXPECT_EQ(AbstractLiterals("SELECT * FROM t_cell_fp_9 WHERE pnci=42"),
            "select * from t_cell_fp_9 where pnci=$1");
}

TEST(AbstractLiteralsTest, WhitespaceCollapsed) {
  EXPECT_EQ(AbstractLiterals("SELECT  *\n FROM   t  "),
            "select * from t");
}

TEST(AbstractLiteralsTest, FineGrainedColumnDifferencePreserved) {
  // The paper's motivating pair: literally similar, semantically distinct.
  const std::string a =
      AbstractLiterals("delete from t_mac where normal_mac=1");
  const std::string b =
      AbstractLiterals("delete from t_mac where abnormal_mac=1");
  EXPECT_NE(a, b);
}

TEST(AbstractLiteralsTest, Idempotent) {
  const std::string once =
      AbstractLiterals("UPDATE t SET a=3 WHERE b='x' AND c=9");
  // Placeholders contain digits, but '$' precedes them so a second pass
  // must not re-abstract.
  EXPECT_EQ(AbstractLiterals(once), once);
}

// ---------- Command classification / table extraction ----------

TEST(ClassifyCommandTest, AllCategories) {
  EXPECT_EQ(ClassifyCommand("SELECT 1"), CommandType::kSelect);
  EXPECT_EQ(ClassifyCommand("  insert into t values (1)"),
            CommandType::kInsert);
  EXPECT_EQ(ClassifyCommand("Update t set a=1"), CommandType::kUpdate);
  EXPECT_EQ(ClassifyCommand("DELETE FROM t"), CommandType::kDelete);
  EXPECT_EQ(ClassifyCommand("SHOW TABLES"), CommandType::kOther);
}

TEST(ExtractTableTest, CommonForms) {
  EXPECT_EQ(ExtractTable("SELECT * FROM t_video WHERE vid=1"), "t_video");
  EXPECT_EQ(ExtractTable("INSERT INTO t_like(danmuKey, uid) VALUES (1,2)"),
            "t_like");
  EXPECT_EQ(ExtractTable("UPDATE t_stat SET views=2 WHERE day=3"), "t_stat");
  EXPECT_EQ(ExtractTable("DELETE FROM danmu_display WHERE danmuKey=1"),
            "danmu_display");
  EXPECT_EQ(ExtractTable("SHOW TABLES"), "");
}

TEST(ParseStatementTest, FullParse) {
  const Statement s =
      ParseStatement("DELETE FROM t_rm_mac WHERE abnormal_mac='aa:bb'");
  EXPECT_EQ(s.command, CommandType::kDelete);
  EXPECT_EQ(s.table, "t_rm_mac");
  EXPECT_EQ(s.template_text,
            "delete from t_rm_mac where abnormal_mac=$1");
}

// ---------- Vocabulary ----------

TEST(VocabularyTest, AssignsSequentialKeysFromOne) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.size(), 1);  // k0 preallocated
  const Statement a = ParseStatement("SELECT * FROM t WHERE x=1");
  const Statement b = ParseStatement("SELECT * FROM t WHERE y=1");
  EXPECT_EQ(vocab.GetOrAssign(a), 1);
  EXPECT_EQ(vocab.GetOrAssign(b), 2);
  EXPECT_EQ(vocab.GetOrAssign(a), 1);  // stable
  EXPECT_EQ(vocab.size(), 3);
}

TEST(VocabularyTest, SameTemplateDifferentLiteralsSameKey) {
  Vocabulary vocab;
  const Key k1 = vocab.GetOrAssign(ParseStatement("SELECT * FROM t WHERE x=1"));
  const Key k2 =
      vocab.GetOrAssign(ParseStatement("SELECT * FROM t WHERE x=999"));
  EXPECT_EQ(k1, k2);
}

TEST(VocabularyTest, FrozenLookupMapsUnknownToPadding) {
  Vocabulary vocab;
  vocab.GetOrAssign(ParseStatement("SELECT * FROM t WHERE x=1"));
  vocab.Freeze();
  EXPECT_EQ(vocab.Lookup("select * from t where x=$1"), 1);
  EXPECT_EQ(vocab.Lookup("select * from unknown where x=$1"), kPaddingKey);
}

TEST(VocabularyTest, CountsCommandsAndTables) {
  Vocabulary vocab;
  vocab.GetOrAssign(ParseStatement("SELECT * FROM a WHERE x=1"));
  vocab.GetOrAssign(ParseStatement("SELECT * FROM b WHERE x=1"));
  vocab.GetOrAssign(ParseStatement("DELETE FROM a WHERE x=1"));
  EXPECT_EQ(vocab.CountCommand(CommandType::kSelect), 2);
  EXPECT_EQ(vocab.CountCommand(CommandType::kDelete), 1);
  EXPECT_EQ(vocab.CountCommand(CommandType::kInsert), 0);
  EXPECT_EQ(vocab.CountTables(), 2);
}

TEST(VocabularyTest, MetadataAccessors) {
  Vocabulary vocab;
  const Key k = vocab.GetOrAssign(ParseStatement("UPDATE t SET a=1"));
  EXPECT_EQ(vocab.CommandOf(k), CommandType::kUpdate);
  EXPECT_EQ(vocab.TableOf(k), "t");
  EXPECT_EQ(vocab.TemplateOf(k), "update t set a=$1");
  EXPECT_EQ(vocab.TemplateOf(kPaddingKey), "<pad>");
}

// ---------- Session tokenization ----------

RawSession MakeRawSession() {
  RawSession raw;
  raw.attrs.user = "user1";
  for (const char* sql :
       {"SELECT * FROM t WHERE x=1", "INSERT INTO t(a) VALUES (2)",
        "SELECT * FROM t WHERE x=5"}) {
    OperationRecord op;
    op.sql = sql;
    raw.operations.push_back(op);
  }
  return raw;
}

TEST(SessionTest, TokenizeGrowsVocabulary) {
  Vocabulary vocab;
  const KeySession keys = TokenizeSession(MakeRawSession(), &vocab, true);
  ASSERT_EQ(keys.keys.size(), 3u);
  EXPECT_EQ(keys.keys[0], 1);
  EXPECT_EQ(keys.keys[1], 2);
  EXPECT_EQ(keys.keys[2], 1);  // same template as op 0
  EXPECT_EQ(keys.attrs.user, "user1");
}

TEST(SessionTest, FrozenTokenizeMapsUnknownToPadding) {
  Vocabulary vocab;
  TokenizeSession(MakeRawSession(), &vocab, true);
  vocab.Freeze();
  RawSession other = MakeRawSession();
  other.operations[1].sql = "DELETE FROM elsewhere WHERE z=1";
  const KeySession keys = TokenizeSessionFrozen(other, vocab);
  EXPECT_EQ(keys.keys[0], 1);
  EXPECT_EQ(keys.keys[1], kPaddingKey);
}

TEST(SessionLabelTest, AbnormalPartition) {
  EXPECT_FALSE(IsAbnormalLabel(SessionLabel::kNormal));
  EXPECT_FALSE(IsAbnormalLabel(SessionLabel::kNormalSwapped));
  EXPECT_FALSE(IsAbnormalLabel(SessionLabel::kNormalReduced));
  EXPECT_TRUE(IsAbnormalLabel(SessionLabel::kPrivilegeAbuse));
  EXPECT_TRUE(IsAbnormalLabel(SessionLabel::kCredentialTheft));
  EXPECT_TRUE(IsAbnormalLabel(SessionLabel::kMisoperation));
  EXPECT_STREQ(SessionLabelName(SessionLabel::kCredentialTheft), "A2");
}

}  // namespace
}  // namespace ucad::sql

namespace ucad::sql {
namespace {

// ---------- Abstraction property tests over generated SQL ----------

TEST(AbstractLiteralsPropertyTest, IdempotentOnArbitraryStatements) {
  const char* statements[] = {
      "SELECT * FROM t_cell_fp_9 WHERE pnci=1 and gridId IN (2, 3, 36)",
      "INSERT INTO t_cell_fp_3 (pnci, gridId, fps) VALUES (1, 2, 3), "
      "(4, 5, 6)",
      "UPDATE t SET a='it''s', b=2.5 WHERE c=\"q\"",
      "DELETE FROM x WHERE ts<1700000000",
      "select 1",
      "",
  };
  for (const char* raw : statements) {
    const std::string once = AbstractLiterals(raw);
    EXPECT_EQ(AbstractLiterals(once), once) << raw;
  }
}

TEST(AbstractLiteralsPropertyTest, PlaceholdersAreSequential) {
  const std::string t = AbstractLiterals(
      "INSERT INTO t(a,b,c,d) VALUES (10, 'x', 2.5, \"y\")");
  EXPECT_NE(t.find("$1"), std::string::npos);
  EXPECT_NE(t.find("$2"), std::string::npos);
  EXPECT_NE(t.find("$3"), std::string::npos);
  EXPECT_NE(t.find("$4"), std::string::npos);
  EXPECT_EQ(t.find("$5"), std::string::npos);
}

TEST(ExtractTableTest, EdgeCases) {
  // Table name directly followed by a column list.
  EXPECT_EQ(ExtractTable("INSERT INTO t_like(danmuKey) VALUES (1)"),
            "t_like");
  // Lower/upper case mix.
  EXPECT_EQ(ExtractTable("Select * From MyTable Where x=1"), "mytable");
  // Trailing punctuation.
  EXPECT_EQ(ExtractTable("DELETE FROM t;"), "t");
  // Missing target.
  EXPECT_EQ(ExtractTable(""), "");
  EXPECT_EQ(ExtractTable("SELECT 1"), "");
}

TEST(VocabularyPropertyTest, KeysAreDenseAndStableUnderReinsertion) {
  Vocabulary vocab;
  std::vector<Key> keys;
  const char* stmts[] = {
      "SELECT * FROM a WHERE x=1", "SELECT * FROM b WHERE x=1",
      "INSERT INTO a(x) VALUES (1)", "DELETE FROM a WHERE x=1",
  };
  for (const char* s : stmts) {
    keys.push_back(vocab.GetOrAssign(ParseStatement(s)));
  }
  // Dense: 1..n.
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], static_cast<Key>(i + 1));
  }
  // Stable under arbitrary re-insertion order (including new literals).
  EXPECT_EQ(vocab.GetOrAssign(ParseStatement("DELETE FROM a WHERE x=77")),
            keys[3]);
  EXPECT_EQ(vocab.GetOrAssign(ParseStatement("SELECT * FROM a WHERE x=9")),
            keys[0]);
}

}  // namespace
}  // namespace ucad::sql

#include <sstream>

#include "sql/log_reader.h"

namespace ucad::sql {
namespace {

// ---------- Text audit-log reader ----------

constexpr char kLog[] =
    "# session\n"
    "user1\t10.0.0.11\t1767250800\tSELECT * FROM t WHERE x=1\n"
    "user1\t10.0.0.11\t1767250807\tINSERT INTO t(a) VALUES (2)\n"
    "\n"
    "user2\t10.0.0.12\t1767250900\tDELETE FROM t WHERE x=3\n";

TEST(LogReaderTest, ParsesSessionsAndOffsets) {
  std::istringstream is(kLog);
  auto sessions = ReadSessionLog(is);
  ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
  ASSERT_EQ(sessions->size(), 2u);
  const RawSession& first = (*sessions)[0];
  EXPECT_EQ(first.attrs.user, "user1");
  EXPECT_EQ(first.attrs.client_address, "10.0.0.11");
  EXPECT_EQ(first.attrs.start_time_s, 1767250800);
  ASSERT_EQ(first.operations.size(), 2u);
  EXPECT_EQ(first.operations[1].time_offset_s, 7);
  EXPECT_EQ((*sessions)[1].attrs.user, "user2");
}

TEST(LogReaderTest, UserChangeStartsNewSession) {
  std::istringstream is(
      "a\tx\t100\tSELECT 1\n"
      "b\tx\t105\tSELECT 2\n");
  auto sessions = ReadSessionLog(is);
  ASSERT_TRUE(sessions.ok());
  EXPECT_EQ(sessions->size(), 2u);
}

TEST(LogReaderTest, MalformedLineReportsLineNumber) {
  std::istringstream is("only two\tfields\n");
  auto sessions = ReadSessionLog(is);
  ASSERT_FALSE(sessions.ok());
  EXPECT_NE(sessions.status().message().find("line 1"), std::string::npos);
}

TEST(LogReaderTest, BadTimestampRejected) {
  std::istringstream is("u\ta\tnot-a-number\tSELECT 1\n");
  auto sessions = ReadSessionLog(is);
  ASSERT_FALSE(sessions.ok());
  EXPECT_NE(sessions.status().message().find("timestamp"),
            std::string::npos);
}

TEST(LogReaderTest, DecreasingTimestampRejected) {
  std::istringstream is(
      "u\ta\t200\tSELECT 1\n"
      "u\ta\t100\tSELECT 2\n");
  auto sessions = ReadSessionLog(is);
  EXPECT_FALSE(sessions.ok());
}

TEST(LogReaderTest, SqlWithTabsIsRejoined) {
  std::istringstream is("u\ta\t100\tSELECT\t*\tFROM t\n");
  auto sessions = ReadSessionLog(is);
  ASSERT_TRUE(sessions.ok());
  EXPECT_EQ((*sessions)[0].operations[0].sql, "SELECT\t*\tFROM t");
}

TEST(LogReaderTest, WriteReadRoundTrip) {
  std::istringstream is(kLog);
  auto sessions = ReadSessionLog(is);
  ASSERT_TRUE(sessions.ok());
  std::ostringstream os;
  WriteSessionLog(*sessions, os);
  std::istringstream is2(os.str());
  auto reparsed = ReadSessionLog(is2);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), sessions->size());
  for (size_t i = 0; i < sessions->size(); ++i) {
    EXPECT_EQ((*reparsed)[i].attrs.user, (*sessions)[i].attrs.user);
    ASSERT_EQ((*reparsed)[i].operations.size(),
              (*sessions)[i].operations.size());
    for (size_t j = 0; j < (*sessions)[i].operations.size(); ++j) {
      EXPECT_EQ((*reparsed)[i].operations[j].sql,
                (*sessions)[i].operations[j].sql);
    }
  }
}

TEST(LogReaderTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadSessionLogFile("/no/such/file.log").status().code(),
            util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace ucad::sql
