#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/deeplog.h"
#include "baselines/iforest.h"
#include "baselines/logcluster.h"
#include "baselines/mazzawi.h"
#include "baselines/ocsvm.h"
#include "baselines/session_detector.h"
#include "baselines/usad.h"
#include "util/rng.h"

namespace ucad::baselines {
namespace {

constexpr int kVocab = 12;

/// Normal sessions: repetitions of the blocks [1 2 3 4] / [5 6 7 8].
std::vector<std::vector<int>> NormalSessions(int count, util::Rng* rng) {
  std::vector<std::vector<int>> out;
  for (int i = 0; i < count; ++i) {
    std::vector<int> s;
    const int blocks = 3 + static_cast<int>(rng->UniformU64(3));
    for (int b = 0; b < blocks; ++b) {
      if (rng->Bernoulli(0.5)) {
        s.insert(s.end(), {1, 2, 3, 4});
      } else {
        s.insert(s.end(), {5, 6, 7, 8});
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Blatant anomaly: one known key repeated far beyond any normal count
/// (visible to count-based, sequence, and cluster detectors alike; a
/// never-seen key would be invisible to count-split methods like iForest,
/// whose trees cannot split on constant-zero training features).
std::vector<int> BlatantAnomaly() {
  return std::vector<int>(30, 1);
}

// ---------- Shared helpers ----------

TEST(CountVectorTest, CountsAndIgnoresOutOfRange) {
  const auto v = CountVector({1, 1, 3, 99, -2}, 5);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v[3], 1.0);
  EXPECT_EQ(v[0], 0.0);
}

TEST(L2NormalizeTest, UnitNormAndZeroSafe) {
  std::vector<double> v = {3.0, 4.0};
  L2Normalize(&v);
  EXPECT_NEAR(v[0], 0.6, 1e-12);
  EXPECT_NEAR(v[1], 0.8, 1e-12);
  std::vector<double> zero = {0.0, 0.0};
  L2Normalize(&zero);
  EXPECT_EQ(zero[0], 0.0);
}

TEST(EuclideanDistanceTest, KnownValue) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
}

// ---------- Parameterized separation test over all detectors ----------

enum class Kind { kIForest, kOcsvm, kMazzawi, kDeepLog, kUsad, kLogCluster };

std::unique_ptr<SessionDetector> Make(Kind kind) {
  switch (kind) {
    case Kind::kIForest:
      // Contamination tuned as the paper tunes baseline hyper-parameters:
      // a single-axis count outlier isolates no faster than the most
      // extreme training session, so the decision quantile must be looser.
      return std::make_unique<IsolationForest>(
          kVocab, IsolationForest::Options{.num_trees = 50,
                                           .contamination = 0.15,
                                           .seed = 1});
    case Kind::kOcsvm:
      return std::make_unique<OneClassSvm>(kVocab, OneClassSvm::Options{});
    case Kind::kMazzawi: {
      std::vector<int> commands(kVocab, 0);
      for (int k = 5; k < 9; ++k) commands[k] = 1;
      for (int k = 9; k < kVocab; ++k) commands[k] = 3;
      return std::make_unique<MazzawiDetector>(kVocab, commands,
                                               MazzawiDetector::Options{});
    }
    case Kind::kDeepLog: {
      DeepLog::Options options;
      options.epochs = 2;
      options.hidden_dim = 24;
      options.embed_dim = 12;
      options.top_g = 4;
      return std::make_unique<DeepLog>(kVocab, options);
    }
    case Kind::kUsad: {
      Usad::Options options;
      options.epochs = 8;
      options.window = 8;
      return std::make_unique<Usad>(kVocab, options);
    }
    case Kind::kLogCluster:
      return std::make_unique<LogCluster>(kVocab, LogCluster::Options{});
  }
  return nullptr;
}

class DetectorSeparationTest : public ::testing::TestWithParam<Kind> {};

TEST_P(DetectorSeparationTest, FlagsBlatantAnomalyAcceptsMostNormal) {
  util::Rng rng(31);
  const auto train = NormalSessions(60, &rng);
  auto detector = Make(GetParam());
  detector->Train(train);

  EXPECT_TRUE(detector->IsAbnormal(BlatantAnomaly()))
      << detector->name() << " missed the blatant anomaly";

  const auto held_out = NormalSessions(20, &rng);
  int false_positives = 0;
  for (const auto& s : held_out) {
    false_positives += detector->IsAbnormal(s) ? 1 : 0;
  }
  EXPECT_LE(false_positives, 8)
      << detector->name() << " flags too many normal sessions";
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, DetectorSeparationTest,
                         ::testing::Values(Kind::kIForest, Kind::kOcsvm,
                                           Kind::kMazzawi, Kind::kDeepLog,
                                           Kind::kUsad, Kind::kLogCluster),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           switch (info.param) {
                             case Kind::kIForest:
                               return "iForest";
                             case Kind::kOcsvm:
                               return "OneClassSVM";
                             case Kind::kMazzawi:
                               return "Mazzawi";
                             case Kind::kDeepLog:
                               return "DeepLog";
                             case Kind::kUsad:
                               return "USAD";
                             case Kind::kLogCluster:
                               return "LogCluster";
                           }
                           return "unknown";
                         });

// ---------- Method-specific behavior ----------

TEST(IsolationForestTest, ScoreHigherForOutlier) {
  util::Rng rng(32);
  IsolationForest forest(kVocab, IsolationForest::Options{.num_trees = 50});
  const auto train = NormalSessions(50, &rng);
  forest.Train(train);
  double normal_score = 0.0;
  for (int i = 0; i < 10; ++i) normal_score += forest.Score(train[i]);
  normal_score /= 10;
  EXPECT_GT(forest.Score(BlatantAnomaly()), normal_score);
}

TEST(OneClassSvmTest, DecisionPositiveInsideSupport) {
  util::Rng rng(33);
  OneClassSvm svm(kVocab, OneClassSvm::Options{.nu = 0.1});
  const auto train = NormalSessions(40, &rng);
  svm.Train(train);
  int positive = 0;
  for (const auto& s : train) positive += svm.Decision(s) >= 0 ? 1 : 0;
  // At most ~nu fraction of training points end up outside.
  EXPECT_GE(positive, 30);
  EXPECT_LT(svm.Decision(BlatantAnomaly()), 0.0);
}

TEST(MazzawiTest, CountDisguisedContextAnomalyMissed) {
  // The paper's core claim: a stealthy A2-style anomaly (one misplaced but
  // individually common operation) is invisible to count-based behavioral
  // features.
  util::Rng rng(34);
  std::vector<int> commands(kVocab, 0);
  MazzawiDetector detector(kVocab, commands, MazzawiDetector::Options{});
  const auto train = NormalSessions(60, &rng);
  detector.Train(train);
  // Take a normal session and swap a single op for another common key.
  std::vector<int> stealthy = {1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4};
  stealthy[5] = 2;  // key 2 is common; context now wrong
  EXPECT_FALSE(detector.IsAbnormal(stealthy));
}

TEST(DeepLogTest, RankNextPrefersGrammarContinuation) {
  util::Rng rng(35);
  DeepLog::Options options;
  options.epochs = 3;
  options.hidden_dim = 24;
  options.embed_dim = 12;
  DeepLog deeplog(kVocab, options);
  deeplog.Train(NormalSessions(80, &rng));
  // After [1 2 3] the grammar always continues with 4.
  const int rank_good = deeplog.RankNext({1, 2, 3}, 4);
  const int rank_bad = deeplog.RankNext({1, 2, 3}, 9);
  EXPECT_LT(rank_good, rank_bad);
  EXPECT_LE(rank_good, 3);
}

TEST(UsadTest, ScoreSeparatesAnomalies) {
  util::Rng rng(36);
  Usad::Options options;
  options.epochs = 8;
  options.window = 8;
  Usad usad(kVocab, options);
  const auto train = NormalSessions(50, &rng);
  usad.Train(train);
  double normal = 0.0;
  for (int i = 0; i < 10; ++i) normal += usad.Score(train[i]);
  normal /= 10;
  EXPECT_GT(usad.Score(BlatantAnomaly()), normal);
}

TEST(LogClusterTest, ScoreIsRadiusNormalized) {
  util::Rng rng(37);
  LogCluster lc(kVocab, LogCluster::Options{});
  const auto train = NormalSessions(40, &rng);
  lc.Train(train);
  EXPECT_LE(lc.Score(train[0]), 1.0);
  EXPECT_GT(lc.Score(BlatantAnomaly()), 1.0);
}

}  // namespace
}  // namespace ucad::baselines
