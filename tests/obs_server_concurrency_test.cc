// TSan job for the whole quality-observability surface running at once:
// detector threads scoring (real + shadow) into the default registry, the
// TimeSeriesStore sampler ticking and re-evaluating SLOs, and scraper
// threads hammering /metrics, /history, and /healthz concurrently. CI runs
// this binary under -DUCAD_SANITIZE=thread.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "obs/monitor.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ucad {
namespace {

transdas::TransDasConfig SmallConfig() {
  transdas::TransDasConfig config;
  config.vocab_size = 14;
  config.window = 8;
  config.hidden_dim = 12;
  config.num_heads = 2;
  config.num_blocks = 2;
  config.dropout = 0.0f;
  return config;
}

/// One blocking HTTP/1.0 round-trip against 127.0.0.1:`port`.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ObsServerConcurrencyTest, ScrapesAndHistoryWhileScoringAndSampling) {
  obs::SetMetricsEnabled(true);
  obs::SetDetectionMonitorEnabled(true);
  util::SetNumThreads(2);

  util::Rng rng(31);
  transdas::TransDasModel model(SmallConfig(), &rng);
  transdas::TransDasDetector detector(&model, transdas::DetectorOptions{});

  obs::TimeSeriesOptions ts_options;
  ts_options.capacity = 128;
  ts_options.interval_ms = 1;
  obs::TimeSeriesStore store(&obs::DefaultMetrics(), ts_options);
  obs::SloEvaluator evaluator(obs::DefaultSloSpecs(), &store);
  store.Start([&evaluator](int64_t) { evaluator.EvaluateAndPublish(); });

  obs::MetricsHttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  server.SetHistorySource(&store);
  server.SetHealthHandler([&evaluator]() -> std::pair<int, std::string> {
    const obs::HealthReport report = evaluator.Evaluate();
    return {report.grade == obs::HealthGrade::kUnhealthy ? 503 : 200,
            report.ToText()};
  });

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes_ok{0};

  std::thread scorer([&detector, &stop] {
    const std::vector<std::vector<int>> sessions = {
        {1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4},
        {4, 3, 2, 1, 8, 7, 6, 5},
    };
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto& s = sessions[i++ % sessions.size()];
      // Alternate real and shadow scoring — the canary engine interleaves
      // both against the same detector while scrapes are in flight.
      if (i % 2 == 0) {
        detector.DetectSession(s);
      } else {
        detector.ShadowDetectSession(s);
      }
    }
  });

  std::vector<std::thread> scrapers;
  const std::vector<std::string> paths = {"/metrics", "/history?ticks=16",
                                          "/healthz",
                                          "/history?prefix=slo/"};
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&, t] {
      int i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string response =
            HttpGet(server.port(), paths[i++ % paths.size()]);
        if (response.find("HTTP/1.0 200") != std::string::npos) {
          scrapes_ok.fetch_add(1);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  scorer.join();
  for (std::thread& t : scrapers) t.join();
  store.Stop();
  server.Stop();

  EXPECT_GT(scrapes_ok.load(), 0);
  EXPECT_GE(store.TickCount(), 2u);
  // The history view contains both detector series and SLO gauges by now.
  const std::string history = store.HistoryJson();
  EXPECT_NE(history.find("detector/sessions_total"), std::string::npos);
  EXPECT_NE(history.find("slo/status"), std::string::npos);

  obs::SetDetectionMonitorEnabled(false);
  obs::SetMetricsEnabled(false);
  util::SetNumThreads(1);
}

}  // namespace
}  // namespace ucad
