#include <cmath>
#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "nn/tensor.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "util/rng.h"

namespace ucad::transdas {
namespace {

TransDasConfig SmallConfig(int vocab = 12) {
  TransDasConfig config;
  config.vocab_size = vocab;
  config.window = 8;
  config.hidden_dim = 12;
  config.num_heads = 2;
  config.num_blocks = 2;
  config.dropout = 0.0f;
  return config;
}

// ---------- Windows ----------

TEST(MakeWindowsTest, SlidesWithStride) {
  const std::vector<std::vector<int>> sessions = {{1, 2, 3, 4, 5, 6, 7}};
  const auto windows = MakeWindows(sessions, /*window=*/4, /*stride=*/2);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].input, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(windows[0].target, (std::vector<int>{2, 3, 4, 5}));
  EXPECT_EQ(windows[1].input, (std::vector<int>{3, 4, 5, 6}));
  EXPECT_EQ(windows[1].target, (std::vector<int>{4, 5, 6, 7}));
}

TEST(MakeWindowsTest, PadsShortSessions) {
  const std::vector<std::vector<int>> sessions = {{7, 8}};
  const auto windows = MakeWindows(sessions, /*window=*/4, /*stride=*/1);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].input, (std::vector<int>{0, 0, 0, 7}));
  EXPECT_EQ(windows[0].target, (std::vector<int>{0, 0, 7, 8}));
}

TEST(MakeWindowsTest, TracksSessionIndex) {
  const std::vector<std::vector<int>> sessions = {{1, 2, 3, 4, 5},
                                                  {6, 7, 8, 9, 10}};
  const auto windows = MakeWindows(sessions, 4, 1);
  std::set<int> indices;
  for (const auto& w : windows) indices.insert(w.session_index);
  EXPECT_EQ(indices, (std::set<int>{0, 1}));
}

// ---------- Model ----------

TEST(TransDasModelTest, ForwardShape) {
  util::Rng rng(1);
  TransDasModel model(SmallConfig(), &rng);
  nn::Tape tape;
  const std::vector<int> window = {1, 2, 3, 4, 5, 6, 7, 8};
  nn::VarId out = model.Forward(&tape, window, false, nullptr);
  EXPECT_EQ(tape.value(out).rows(), 8);
  EXPECT_EQ(tape.value(out).cols(), 12);
  nn::VarId logits = model.AllKeyLogits(&tape, out);
  EXPECT_EQ(tape.value(logits).rows(), 8);
  EXPECT_EQ(tape.value(logits).cols(), 12);
}

TEST(TransDasModelTest, SkipNextMaskZeroesAttentionToPredictionTarget) {
  util::Rng rng(2);
  TransDasConfig config = SmallConfig();
  config.mask_mode = MaskMode::kBidirectionalSkipNext;
  TransDasModel model(config, &rng);
  nn::Tape tape;
  std::vector<nn::VarId> attention;
  model.Forward(&tape, {1, 2, 3, 4, 5, 6, 7, 8}, false, nullptr, &attention);
  ASSERT_EQ(attention.size(), 2u);  // one per head, first block
  for (nn::VarId a : attention) {
    const nn::Tensor& weights = tape.value(a);
    for (int i = 0; i + 1 < weights.rows(); ++i) {
      EXPECT_NEAR(weights.at(i, i + 1), 0.0f, 1e-6f)
          << "Q_" << i << " must be disconnected from K_" << i + 1;
      // Bidirectional: other connections are live.
      EXPECT_GT(weights.at(i, i), 0.0f);
      if (i + 2 < weights.cols()) EXPECT_GT(weights.at(i, i + 2), 0.0f);
    }
  }
}

TEST(TransDasModelTest, CausalMaskZeroesAllFuture) {
  util::Rng rng(3);
  TransDasConfig config = SmallConfig();
  config.mask_mode = MaskMode::kCausal;
  TransDasModel model(config, &rng);
  nn::Tape tape;
  std::vector<nn::VarId> attention;
  model.Forward(&tape, {1, 2, 3, 4, 5, 6, 7, 8}, false, nullptr, &attention);
  for (nn::VarId a : attention) {
    const nn::Tensor& weights = tape.value(a);
    for (int i = 0; i < weights.rows(); ++i) {
      for (int j = i + 1; j < weights.cols(); ++j) {
        EXPECT_NEAR(weights.at(i, j), 0.0f, 1e-6f);
      }
    }
  }
}

TEST(TransDasModelTest, NoMaskFullyConnected) {
  util::Rng rng(4);
  TransDasConfig config = SmallConfig();
  config.mask_mode = MaskMode::kNone;
  TransDasModel model(config, &rng);
  nn::Tape tape;
  std::vector<nn::VarId> attention;
  model.Forward(&tape, {1, 2, 3, 4, 5, 6, 7, 8}, false, nullptr, &attention);
  for (nn::VarId a : attention) {
    const nn::Tensor& weights = tape.value(a);
    for (int i = 0; i < weights.rows(); ++i) {
      for (int j = 0; j < weights.cols(); ++j) {
        EXPECT_GT(weights.at(i, j), 0.0f);
      }
    }
  }
}

TEST(TransDasModelTest, OrderFreeEmbeddingIsPermutationEquivariant) {
  // Without position embeddings and with the kNone mask, permuting the
  // input permutes the outputs identically (order independence, §4.2).
  util::Rng rng(5);
  TransDasConfig config = SmallConfig();
  config.mask_mode = MaskMode::kNone;
  config.use_position_embedding = false;
  TransDasModel model(config, &rng);

  const std::vector<int> window = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<int> swapped = window;
  std::swap(swapped[1], swapped[6]);

  nn::Tape tape1, tape2;
  const nn::Tensor& out1 =
      tape1.value(model.Forward(&tape1, window, false, nullptr));
  const nn::Tensor& out2 =
      tape2.value(model.Forward(&tape2, swapped, false, nullptr));
  for (int c = 0; c < out1.cols(); ++c) {
    EXPECT_NEAR(out1.at(1, c), out2.at(6, c), 1e-4f);
    EXPECT_NEAR(out1.at(6, c), out2.at(1, c), 1e-4f);
    EXPECT_NEAR(out1.at(0, c), out2.at(0, c), 1e-4f);
  }
}

TEST(TransDasModelTest, PositionEmbeddingBreaksPermutationEquivariance) {
  util::Rng rng(6);
  TransDasConfig config = SmallConfig();
  config.mask_mode = MaskMode::kNone;
  config.use_position_embedding = true;
  TransDasModel model(config, &rng);

  const std::vector<int> window = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<int> swapped = window;
  std::swap(swapped[1], swapped[6]);
  nn::Tape tape1, tape2;
  const nn::Tensor& out1 =
      tape1.value(model.Forward(&tape1, window, false, nullptr));
  const nn::Tensor& out2 =
      tape2.value(model.Forward(&tape2, swapped, false, nullptr));
  float diff = 0.0f;
  for (int c = 0; c < out1.cols(); ++c) {
    diff += std::abs(out1.at(1, c) - out2.at(6, c));
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(TransDasModelTest, PaddingRowFrozenThroughTraining) {
  util::Rng rng(7);
  TransDasModel model(SmallConfig(), &rng);
  TrainOptions options;
  options.epochs = 2;
  TransDasTrainer trainer(&model, options);
  trainer.Train({{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1, 2}});
  for (int c = 0; c < model.config().hidden_dim; ++c) {
    EXPECT_EQ(model.embedding().table().value().at(0, c), 0.0f);
  }
}

// ---------- Training ----------

/// A tiny deterministic grammar: sessions alternate task blocks
/// [1 2 3 4] and [5 6 7 8]; key 9-11 appear only as anomalies.
std::vector<std::vector<int>> GrammarSessions(int count, util::Rng* rng) {
  std::vector<std::vector<int>> sessions;
  for (int i = 0; i < count; ++i) {
    std::vector<int> s;
    const int blocks = 3 + static_cast<int>(rng->UniformU64(3));
    for (int b = 0; b < blocks; ++b) {
      if (rng->Bernoulli(0.5)) {
        s.insert(s.end(), {1, 2, 3, 4});
      } else {
        s.insert(s.end(), {5, 6, 7, 8});
      }
    }
    sessions.push_back(std::move(s));
  }
  return sessions;
}

TEST(TrainerTest, LossDecreases) {
  util::Rng rng(8);
  TransDasModel model(SmallConfig(), &rng);
  TrainOptions options;
  options.epochs = 6;
  options.learning_rate = 5e-3f;
  TransDasTrainer trainer(&model, options);
  const auto stats = trainer.Train(GrammarSessions(30, &rng));
  ASSERT_EQ(stats.size(), 6u);
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss);
  for (const auto& epoch : stats) {
    EXPECT_GT(epoch.windows, 0);
    EXPECT_GE(epoch.seconds, 0.0);
  }
}

TEST(TrainerTest, FineTuneRunsAndKeepsModelUsable) {
  util::Rng rng(9);
  TransDasModel model(SmallConfig(), &rng);
  TrainOptions options;
  options.epochs = 3;
  TransDasTrainer trainer(&model, options);
  trainer.Train(GrammarSessions(20, &rng));
  const auto ft = trainer.FineTune(GrammarSessions(5, &rng));
  EXPECT_EQ(ft.size(), 2u);
  TransDasDetector detector(&model, DetectorOptions{.top_p = 4});
  const auto verdict = detector.DetectSession({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_FALSE(verdict.operations.empty());
}

TEST(TrainerTest, SteadyStateTrainingAllocationsGoFlat) {
  // The per-window loop reuses one tape (or one per batch lane) through
  // Tape::Reset() and pre-seeded gradient sinks, so once the pools are warm
  // a further epoch performs zero tensor allocations.
  for (int batch : {1, 4}) {
    util::Rng rng(50 + batch);
    TransDasModel model(SmallConfig(), &rng);
    TrainOptions options;
    options.epochs = 1;
    options.batch_size = batch;
    TransDasTrainer trainer(&model, options);
    const auto sessions = GrammarSessions(12, &rng);
    trainer.Train(sessions);  // warms tape pools, grad sinks, Adam state
    nn::SetTensorMemTrackingEnabled(true);
    const uint64_t allocs_before = nn::TensorMemStats().alloc_count;
    trainer.FineTune(sessions, /*epochs=*/1);
    const uint64_t allocs_after = nn::TensorMemStats().alloc_count;
    nn::SetTensorMemTrackingEnabled(false);
    EXPECT_EQ(allocs_after, allocs_before)
        << "steady-state allocs not flat at batch_size=" << batch;
  }
}

// ---------- Detection ----------

class DetectorTest : public ::testing::Test {
 protected:
  DetectorTest() : rng_(10), model_(SmallConfig(), &rng_) {
    TrainOptions options;
    options.epochs = 12;
    options.learning_rate = 5e-3f;
    options.seed = 33;
    TransDasTrainer trainer(&model_, options);
    trainer.Train(GrammarSessions(40, &rng_));
  }

  util::Rng rng_;
  TransDasModel model_;
};

TEST_F(DetectorTest, NormalSessionPasses) {
  TransDasDetector detector(&model_, DetectorOptions{.top_p = 4});
  const auto verdict =
      detector.DetectSession({1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4});
  EXPECT_FALSE(verdict.abnormal)
      << "abnormal positions: " << verdict.AbnormalPositions().size();
}

TEST_F(DetectorTest, UnknownKeyFlagged) {
  TransDasDetector detector(&model_, DetectorOptions{.top_p = 4});
  // Key 0 (unseen template) must always be abnormal.
  const auto verdict = detector.DetectSession({1, 2, 0, 4, 5, 6, 7, 8});
  EXPECT_TRUE(verdict.abnormal);
  const auto positions = verdict.AbnormalPositions();
  EXPECT_NE(std::find(positions.begin(), positions.end(), 2),
            positions.end());
}

TEST_F(DetectorTest, ContextuallyWrongKeyFlagged) {
  TransDasDetector detector(&model_, DetectorOptions{.top_p = 2});
  // Key 11 exists in the vocabulary but never appeared in training.
  const auto verdict =
      detector.DetectSession({1, 2, 3, 4, 11, 5, 6, 7, 8});
  EXPECT_TRUE(verdict.abnormal);
}

TEST_F(DetectorTest, BatchedAndPerOpModesAgreeOnVerdicts) {
  TransDasDetector batched(&model_,
                           DetectorOptions{.top_p = 4, .batched = true});
  TransDasDetector per_op(&model_,
                          DetectorOptions{.top_p = 4, .batched = false});
  util::Rng rng(20);
  int disagreements = 0;
  const auto sessions = GrammarSessions(10, &rng);
  for (const auto& s : sessions) {
    const bool a = batched.DetectSession(s).abnormal;
    const bool b = per_op.DetectSession(s).abnormal;
    disagreements += a != b ? 1 : 0;
  }
  // The two scoring modes see slightly different contexts; verdicts must
  // agree on the large majority of clean sessions.
  EXPECT_LE(disagreements, 2);
}

TEST_F(DetectorTest, EveryOperationScoredOnce) {
  TransDasDetector detector(&model_, DetectorOptions{.top_p = 4});
  const std::vector<int> session = {1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3,
                                    4, 5, 6, 7, 8, 1, 2, 3, 4};
  const auto verdict = detector.DetectSession(session);
  ASSERT_EQ(verdict.operations.size(), session.size() - 1);
  std::set<int> positions;
  for (const auto& op : verdict.operations) positions.insert(op.position);
  EXPECT_EQ(positions.size(), session.size() - 1);
  EXPECT_EQ(*positions.begin(), 1);
  EXPECT_EQ(*positions.rbegin(), static_cast<int>(session.size()) - 1);
}

TEST_F(DetectorTest, RanksAreWithinBounds) {
  TransDasDetector detector(&model_, DetectorOptions{.top_p = 4});
  const auto verdict = detector.DetectSession({1, 2, 3, 4, 5, 6, 7, 8});
  for (const auto& op : verdict.operations) {
    EXPECT_GE(op.rank, 1);
    EXPECT_LE(op.rank, model_.config().vocab_size + 1);
  }
}

TEST_F(DetectorTest, TinySessionsHandled) {
  TransDasDetector detector(&model_, DetectorOptions{.top_p = 4});
  EXPECT_FALSE(detector.DetectSession({}).abnormal);
  EXPECT_FALSE(detector.DetectSession({1}).abnormal);
  const auto verdict = detector.DetectSession({1, 2});
  EXPECT_EQ(verdict.operations.size(), 1u);
}

TEST(TopPTest, LargerPFlagsFewerOperations) {
  util::Rng rng(21);
  TransDasModel model(SmallConfig(), &rng);
  TrainOptions options;
  options.epochs = 6;
  TransDasTrainer trainer(&model, options);
  trainer.Train(GrammarSessions(30, &rng));

  const auto sessions = GrammarSessions(10, &rng);
  int flagged_small = 0, flagged_large = 0;
  TransDasDetector strict(&model, DetectorOptions{.top_p = 1});
  TransDasDetector lax(&model, DetectorOptions{.top_p = 8});
  for (const auto& s : sessions) {
    flagged_small +=
        static_cast<int>(strict.DetectSession(s).AbnormalPositions().size());
    flagged_large +=
        static_cast<int>(lax.DetectSession(s).AbnormalPositions().size());
  }
  EXPECT_GE(flagged_small, flagged_large);
}

}  // namespace
}  // namespace ucad::transdas

namespace ucad::transdas {
namespace {

// ---------- Property sweep over model shapes ----------

struct ShapeCase {
  int window;
  int hidden;
  int heads;
  int blocks;
};

class ModelShapeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ModelShapeTest, ForwardShapesAndGradientFlow) {
  const ShapeCase& sc = GetParam();
  TransDasConfig config;
  config.vocab_size = 17;
  config.window = sc.window;
  config.hidden_dim = sc.hidden;
  config.num_heads = sc.heads;
  config.num_blocks = sc.blocks;
  config.dropout = 0.0f;
  util::Rng rng(42);
  TransDasModel model(config, &rng);

  std::vector<int> window(sc.window);
  for (int i = 0; i < sc.window; ++i) window[i] = 1 + i % 16;
  std::vector<int> target(sc.window);
  for (int i = 0; i < sc.window; ++i) target[i] = 1 + (i + 1) % 16;

  nn::Tape tape;
  nn::VarId out = model.Forward(&tape, window, /*training=*/false, nullptr);
  EXPECT_EQ(tape.value(out).rows(), sc.window);
  EXPECT_EQ(tape.value(out).cols(), sc.hidden);
  nn::VarId logits = model.AllKeyLogits(&tape, out);
  EXPECT_EQ(tape.value(logits).cols(), config.vocab_size);

  // Every parameter participates in the graph: after one backward pass,
  // every parameter (except the frozen padding row) receives gradient mass.
  nn::VarId loss = tape.SoftmaxCrossEntropy(logits, target);
  tape.Backward(loss);
  int with_grads = 0;
  const auto params = model.Params();
  for (nn::Parameter* p : params) {
    if (p->grad().MaxAbs() > 0.0f) ++with_grads;
    p->ZeroGrad();
  }
  // Allow a small number of saturated/unused tensors but require the vast
  // majority to be live.
  EXPECT_GE(with_grads, static_cast<int>(params.size()) - 2)
      << "dead parameters in the graph";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ModelShapeTest,
    ::testing::Values(ShapeCase{4, 8, 1, 1}, ShapeCase{8, 8, 2, 2},
                      ShapeCase{12, 16, 4, 3}, ShapeCase{6, 12, 3, 2},
                      ShapeCase{16, 8, 2, 4}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      const ShapeCase& sc = info.param;
      return "L" + std::to_string(sc.window) + "h" +
             std::to_string(sc.hidden) + "m" + std::to_string(sc.heads) +
             "B" + std::to_string(sc.blocks);
    });

TEST(TrainerPropertyTest, LossIsFiniteAcrossMargins) {
  for (float margin : {0.0f, 0.25f, 0.5f, 1.0f}) {
    util::Rng rng(9);
    TransDasConfig config;
    config.vocab_size = 12;
    config.window = 6;
    config.hidden_dim = 8;
    config.num_heads = 2;
    config.num_blocks = 1;
    TransDasModel model(config, &rng);
    TrainOptions options;
    options.epochs = 2;
    options.margin = margin;
    TransDasTrainer trainer(&model, options);
    const auto stats = trainer.Train({{1, 2, 3, 4, 5, 6, 7, 8}});
    for (const auto& epoch : stats) {
      EXPECT_TRUE(std::isfinite(epoch.mean_loss)) << "margin " << margin;
      EXPECT_GE(epoch.mean_loss, 0.0);
    }
  }
}

TEST(TrainerPropertyTest, CosineDecayReducesLearningRateMonotonically) {
  // Indirect check: with decay the late-epoch losses should not oscillate
  // upward (smoke-level assertion: final <= max of first two).
  util::Rng rng(10);
  TransDasConfig config;
  config.vocab_size = 12;
  config.window = 6;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 1;
  TransDasModel model(config, &rng);
  TrainOptions options;
  options.epochs = 8;
  options.cosine_decay = true;
  TransDasTrainer trainer(&model, options);
  const auto stats =
      trainer.Train({{1, 2, 3, 4, 5, 6, 7, 8}, {5, 6, 7, 8, 1, 2, 3, 4}});
  const double early =
      std::max(stats[0].mean_loss, stats[1].mean_loss);
  EXPECT_LE(stats.back().mean_loss, early + 1e-6);
}

}  // namespace
}  // namespace ucad::transdas

namespace ucad::transdas {
namespace {

TEST(ExplainTest, TopCandidatesContainTheGrammarContinuation) {
  util::Rng rng(77);
  TransDasModel model(SmallConfig(), &rng);
  TrainOptions options;
  options.epochs = 12;
  options.negative_samples = 4;
  TransDasTrainer trainer(&model, options);
  trainer.Train(GrammarSessions(40, &rng));
  TransDasDetector detector(&model, DetectorOptions{.top_p = 4});

  const std::vector<int> session = {1, 2, 3, 4, 5, 6, 7, 8};
  // After [1 2 3] the grammar always continues with 4.
  const auto candidates = detector.ExplainOperation(session, 3, 4);
  ASSERT_EQ(candidates.size(), 4u);
  bool found = false;
  for (const auto& c : candidates) found |= c.key == 4;
  EXPECT_TRUE(found) << "expected continuation missing from explanation";
  // Scores are sorted best-first.
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].score, candidates[i].score);
  }
}

TEST(ExplainTest, TopKClampsToVocabulary) {
  util::Rng rng(78);
  TransDasModel model(SmallConfig(/*vocab=*/6), &rng);
  TransDasDetector detector(&model, DetectorOptions{.top_p = 2});
  const auto candidates = detector.ExplainOperation({1, 2, 3}, 1, 50);
  EXPECT_EQ(candidates.size(), 5u);  // vocab-1 (k0 excluded)
}

// ---------- Streaming scoring parity + margin invariant ----------

TEST_F(DetectorTest, ScoreNextOperationMatchesStreamingDetectSession) {
  // The streaming per-operation API must agree position-by-position with
  // the non-batched session scorer (the batched mode sees bidirectional
  // context, so it is deliberately excluded from this equivalence).
  TransDasDetector detector(&model_,
                            DetectorOptions{.top_p = 4, .batched = false});
  util::Rng rng(30);
  auto sessions = GrammarSessions(6, &rng);
  // Splice in an unknown key and an out-of-context key so the parity
  // covers abnormal verdicts too.
  sessions[0].insert(sessions[0].begin() + 3, 11);
  sessions[1].insert(sessions[1].begin() + 2, 0);
  for (const auto& session : sessions) {
    const auto verdict = detector.DetectSession(session);
    ASSERT_EQ(verdict.operations.size(), session.size() - 1);
    for (size_t i = 1; i < session.size(); ++i) {
      const std::vector<int> preceding(session.begin(),
                                       session.begin() + i);
      const OperationVerdict op =
          detector.ScoreNextOperation(preceding, session[i]);
      const OperationVerdict& expected = verdict.operations[i - 1];
      EXPECT_EQ(op.rank, expected.rank) << "position " << i;
      EXPECT_EQ(op.abnormal, expected.abnormal) << "position " << i;
      EXPECT_EQ(detector.RankNextOperation(preceding, session[i]), op.rank);
      if (std::isfinite(expected.margin)) {
        EXPECT_NEAR(op.score, expected.score, 1e-5f) << "position " << i;
        EXPECT_NEAR(op.margin, expected.margin, 1e-5f) << "position " << i;
      } else {
        EXPECT_FALSE(std::isfinite(op.margin));
      }
    }
  }
}

TEST_F(DetectorTest, MarginSignEncodesTheVerdict) {
  // margin >= 0 exactly when rank <= top_p: the documented invariant that
  // lets audit-log consumers recover the verdict from the margin alone.
  for (int top_p : {1, 2, 4, 8}) {
    TransDasDetector detector(&model_, DetectorOptions{.top_p = top_p});
    util::Rng rng(31);
    for (const auto& session : GrammarSessions(5, &rng)) {
      for (const auto& op : detector.DetectSession(session).operations) {
        EXPECT_EQ(op.margin >= 0.0f, op.rank <= top_p)
            << "top_p=" << top_p << " rank=" << op.rank
            << " margin=" << op.margin;
        EXPECT_EQ(op.abnormal, op.margin < 0.0f);
      }
    }
  }
}

TEST_F(DetectorTest, UnknownKeyHasNullScoreAndNegativeInfiniteMargin) {
  TransDasDetector detector(&model_, DetectorOptions{.top_p = 4});
  const OperationVerdict op =
      detector.ScoreNextOperation({1, 2, 3}, /*next_key=*/0);
  EXPECT_TRUE(op.abnormal);
  EXPECT_EQ(op.rank, model_.config().vocab_size + 1);
  EXPECT_EQ(op.score, 0.0f);
  EXPECT_TRUE(std::isinf(op.margin));
  EXPECT_LT(op.margin, 0.0f);
}

TEST_F(DetectorTest, BatchedModeSharesTheMarginInvariant) {
  // Batched scoring uses different context but the same single-pass
  // ScoreKey, so the invariant holds there too.
  TransDasDetector detector(&model_,
                            DetectorOptions{.top_p = 3, .batched = true});
  util::Rng rng(32);
  for (const auto& session : GrammarSessions(5, &rng)) {
    for (const auto& op : detector.DetectSession(session).operations) {
      EXPECT_EQ(op.margin >= 0.0f, op.rank <= 3);
    }
  }
}

}  // namespace
}  // namespace ucad::transdas
