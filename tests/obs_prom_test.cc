#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "obs/prom_text.h"
#include "obs/timeseries.h"

namespace ucad::obs {
namespace {

// ---------- Name / label sanitization ----------

TEST(PromNameTest, SlashSeparatorsBecomeUnderscores) {
  EXPECT_EQ(PromName("detector/drift/psi"), "detector_drift_psi");
  EXPECT_EQ(PromName("eval/deeplog/train_ms"), "eval_deeplog_train_ms");
}

TEST(PromNameTest, IllegalCharactersAndLeadingDigits) {
  EXPECT_EQ(PromName("9lives"), "_lives");
  EXPECT_EQ(PromName("a-b.c"), "a_b_c");
  EXPECT_EQ(PromName(""), "_");
  EXPECT_EQ(PromName("name:with:colons"), "name:with:colons");
}

TEST(PromNameTest, LabelNamesRejectColons) {
  EXPECT_EQ(PromLabelName("le:gal"), "le_gal");
  EXPECT_EQ(PromLabelName("method"), "method");
}

TEST(PromLabelValueTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(PromLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PromLabelValue("two\nlines"), "two\\nlines");
}

/// Inverse of PromLabelValue's escaping (what a scraper does when parsing
/// a label value back out of the exposition).
std::string PromUnescape(const std::string& escaped) {
  std::string out;
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '\\' && i + 1 < escaped.size()) {
      const char next = escaped[++i];
      out += next == 'n' ? '\n' : next;
    } else {
      out += escaped[i];
    }
  }
  return out;
}

TEST(PromLabelValueTest, EscapingRoundTrips) {
  const std::vector<std::string> values = {
      "plain",
      "back\\slash",
      "trailing backslash\\",
      "\\\\double",
      "quote\"inside\"",
      "line\none\ntwo",
      "mix\\\"of\nall\\n three",
      "utf-8 bytes: caf\xc3\xa9 \xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e",
      std::string("embedded\0nul", 12),
  };
  for (const std::string& v : values) {
    const std::string escaped = PromLabelValue(v);
    // The escaped form must not contain a raw quote or newline (either
    // would corrupt the sample line)...
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << v;
    for (size_t i = 0; i < escaped.size(); ++i) {
      if (escaped[i] == '"') {
        ASSERT_GT(i, 0u) << v;
        size_t backslashes = 0;
        for (size_t j = i; j-- > 0 && escaped[j] == '\\';) ++backslashes;
        EXPECT_EQ(backslashes % 2, 1u) << "unescaped quote in: " << escaped;
      }
    }
    // ...and unescaping must reproduce the original byte-for-byte.
    EXPECT_EQ(PromUnescape(escaped), v);
  }
}

// ---------- Text exposition ----------

TEST(PromTextTest, CountersAndGauges) {
  MetricsRegistry registry;
  registry.GetCounter("detector/operations_total")->Increment(42);
  registry.GetGauge("detector/anomaly_rate")->Set(0.125);
  const std::string text = PromText(registry);
  EXPECT_NE(text.find("# TYPE detector_operations_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("detector_operations_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE detector_anomaly_rate gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("detector_anomaly_rate 0.125\n"), std::string::npos);
}

TEST(PromTextTest, TypeLineEmittedOncePerNameAcrossLabelVariants) {
  MetricsRegistry registry;
  registry.GetCounter("eval/runs_total", {{"method", "DeepLog"}})
      ->Increment();
  registry.GetCounter("eval/runs_total", {{"method", "USAD"}})->Increment(2);
  const std::string text = PromText(registry);
  size_t type_lines = 0;
  size_t pos = 0;
  while ((pos = text.find("# TYPE eval_runs_total", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("eval_runs_total{method=\"DeepLog\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("eval_runs_total{method=\"USAD\"} 2\n"),
            std::string::npos);
}

TEST(PromTextTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("req/latency_ms", {}, {1.0, 5.0, 10.0});
  h->Observe(0.5);   // bucket le=1
  h->Observe(4.0);   // bucket le=5
  h->Observe(4.5);   // bucket le=5
  h->Observe(100.0); // overflow
  const std::string text = PromText(registry);
  EXPECT_NE(text.find("# TYPE req_latency_ms histogram\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("req_latency_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_latency_ms_bucket{le=\"5\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_latency_ms_bucket{le=\"10\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_latency_ms_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_latency_ms_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("req_latency_ms_sum 109\n"), std::string::npos);
}

TEST(PromTextTest, NonFiniteGaugeUsesPrometheusSpelling) {
  MetricsRegistry registry;
  registry.GetGauge("weird/pos_inf")->Set(INFINITY);
  registry.GetGauge("weird/neg_inf")->Set(-INFINITY);
  registry.GetGauge("weird/nan")->Set(NAN);
  const std::string text = PromText(registry);
  EXPECT_NE(text.find("weird_pos_inf +Inf\n"), std::string::npos) << text;
  EXPECT_NE(text.find("weird_neg_inf -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("weird_nan NaN\n"), std::string::npos);
}

TEST(PromTextTest, EveryLineIsTypeCommentOrSample) {
  // Structural validity: each line is either "# TYPE <name> <type>" or
  // "<name>[{labels}] <value>" — what a Prometheus scraper requires.
  MetricsRegistry registry;
  registry.GetCounter("a/b_total", {{"k", "v1"}})->Increment();
  registry.GetGauge("c/d")->Set(1.5);
  registry.GetHistogram("e/f_ms", {}, {1.0, 2.0})->Observe(1.5);
  std::istringstream lines(PromText(registry));
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable sample value in: " << line;
    ++samples;
  }
  EXPECT_GE(samples, 6);  // counter + gauge + 2 buckets + inf + sum + count
}

TEST(PromTextTest, DeterministicUnderLabelInsertionOrder) {
  // Two registries populated with the same series but with label maps
  // built in opposite orders must render byte-identical expositions —
  // snapshot diffs and scrape checksums depend on it.
  MetricsRegistry forward;
  forward.GetCounter("eval/runs_total", {{"method", "USAD"}, {"arm", "a"}})
      ->Increment(3);
  forward.GetGauge("obs/build_info", {{"git_sha", "abc"}, {"build_type", "R"}})
      ->Set(1.0);
  MetricsRegistry reverse;
  reverse.GetGauge("obs/build_info", {{"build_type", "R"}, {"git_sha", "abc"}})
      ->Set(1.0);
  reverse.GetCounter("eval/runs_total", {{"arm", "a"}, {"method", "USAD"}})
      ->Increment(3);
  const std::string a = PromText(forward);
  const std::string b = PromText(reverse);
  EXPECT_EQ(a, b);
  // Label keys themselves render sorted.
  EXPECT_NE(a.find("eval_runs_total{arm=\"a\",method=\"USAD\"} 3\n"),
            std::string::npos)
      << a;
  EXPECT_NE(a.find("obs_build_info{build_type=\"R\",git_sha=\"abc\"} 1\n"),
            std::string::npos);
}

// ---------- HTTP endpoint ----------

/// One blocking HTTP/1.0 round-trip against 127.0.0.1:`port`.
std::string HttpGet(int port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = request_line + "\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServerTest, ServesMetricsAndHealthz) {
  MetricsRegistry registry;
  registry.GetGauge("detector/anomaly_rate")->Set(0.25);
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());  // ephemeral port
  ASSERT_TRUE(server.serving());
  ASSERT_GT(server.port(), 0);

  const std::string health = HttpGet(server.port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics =
      HttpGet(server.port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("detector_anomaly_rate 0.25"), std::string::npos);

  // The endpoint's own request counter observes both requests (it may or
  // may not include the in-flight one depending on registry identity; here
  // the counter lives in the served registry).
  EXPECT_GE(server.requests(), 2u);
  server.Stop();
  EXPECT_FALSE(server.serving());
}

TEST(MetricsHttpServerTest, UnknownRouteIs404WithHelpfulBody) {
  MetricsRegistry registry;
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response =
      HttpGet(server.port(), "GET /nope HTTP/1.0");
  EXPECT_NE(response.find("HTTP/1.0 404 Not Found"), std::string::npos)
      << response;
  // The body names the path it rejected and the routes that do exist, so a
  // misconfigured scraper fails with a self-explanatory answer.
  EXPECT_NE(response.find("not found: /nope"), std::string::npos);
  EXPECT_NE(response.find("/metrics"), std::string::npos);
  EXPECT_NE(response.find("/healthz"), std::string::npos);
  EXPECT_NE(response.find("/history"), std::string::npos);
}

TEST(MetricsHttpServerTest, NonGetMethodsAre405WithAllowHeader) {
  MetricsRegistry registry;
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  for (const char* request :
       {"POST /metrics HTTP/1.0", "PUT /healthz HTTP/1.0",
        "DELETE /history HTTP/1.0", "HEAD /metrics HTTP/1.0"}) {
    const std::string response = HttpGet(server.port(), request);
    EXPECT_NE(response.find("HTTP/1.0 405 Method Not Allowed"),
              std::string::npos)
        << request << " -> " << response;
    EXPECT_NE(response.find("Allow: GET"), std::string::npos) << request;
    EXPECT_NE(response.find("method not allowed"), std::string::npos)
        << request;
  }
  // GET on the same routes keeps working after the rejects.
  const std::string metrics = HttpGet(server.port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
}

TEST(MetricsHttpServerTest, HistoryWithoutStoreIs404) {
  MetricsRegistry registry;
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response =
      HttpGet(server.port(), "GET /history HTTP/1.0");
  EXPECT_NE(response.find("HTTP/1.0 404"), std::string::npos) << response;
  EXPECT_NE(response.find("no time-series store attached"),
            std::string::npos);
}

TEST(MetricsHttpServerTest, HistoryServesStoreJsonWithQueryParameters) {
  MetricsRegistry registry;
  registry.GetCounter("canary/probes_total")->Increment(5);
  registry.GetCounter("detector/sessions_total")->Increment(7);
  TimeSeriesStore store(&registry);
  store.Sample(1000);
  store.Sample(2000);
  store.Sample(3000);
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  server.SetHistorySource(&store);

  const std::string all = HttpGet(server.port(), "GET /history HTTP/1.0");
  EXPECT_NE(all.find("HTTP/1.0 200 OK"), std::string::npos) << all;
  EXPECT_NE(all.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(all.find("\"ticks\":[1000,2000,3000]"), std::string::npos);
  EXPECT_NE(all.find("canary/probes_total"), std::string::npos);
  EXPECT_NE(all.find("detector/sessions_total"), std::string::npos);

  // ?ticks= limits the view, ?prefix= filters series.
  const std::string filtered = HttpGet(
      server.port(), "GET /history?ticks=2&prefix=canary/ HTTP/1.0");
  EXPECT_NE(filtered.find("\"ticks\":[2000,3000]"), std::string::npos)
      << filtered;
  EXPECT_NE(filtered.find("canary/probes_total"), std::string::npos);
  EXPECT_EQ(filtered.find("detector/sessions_total"), std::string::npos);

  // Detaching the store restores the 404.
  server.SetHistorySource(nullptr);
  const std::string detached =
      HttpGet(server.port(), "GET /history HTTP/1.0");
  EXPECT_NE(detached.find("HTTP/1.0 404"), std::string::npos);
}

TEST(MetricsHttpServerTest, MalformedRequestIs400) {
  MetricsRegistry registry;
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = HttpGet(server.port(), "BOGUS");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
}

TEST(MetricsHttpServerTest, StopIsIdempotentAndRestartable) {
  MetricsRegistry registry;
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  const int first_port = server.port();
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.serving());
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_TRUE(server.serving());
  (void)first_port;
  const std::string health = HttpGet(server.port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(health.find("200"), std::string::npos);
}

TEST(MetricsHttpServerTest, StartTwiceFails) {
  MetricsRegistry registry;
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_FALSE(server.Start(0).ok());
}

TEST(MetricsHttpServerTest, PublishesBuildInfoAndUptime) {
  MetricsRegistry registry;
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  const std::string metrics =
      HttpGet(server.port(), "GET /metrics HTTP/1.0");
  // Every scrape self-identifies the binary: a constant-1 info gauge
  // labeled with the build's provenance, plus a per-scrape uptime gauge.
  EXPECT_NE(metrics.find("obs_build_info{build_type=\""), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("git_sha=\""), std::string::npos);
  EXPECT_NE(metrics.find("} 1\n"), std::string::npos);
  // Uptime advances between scrapes. Anchor at the sample line (the
  // "# TYPE proc_uptime_seconds gauge" comment also matches a bare find).
  const auto uptime_sample = [](const std::string& text) {
    const size_t at = text.find("\nproc_uptime_seconds ");
    EXPECT_NE(at, std::string::npos) << text;
    return std::strtod(text.c_str() + at + 21, nullptr);
  };
  const double first = uptime_sample(metrics);
  EXPECT_GT(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double second =
      uptime_sample(HttpGet(server.port(), "GET /metrics HTTP/1.0"));
  EXPECT_GT(second, first);
}

TEST(MetricsHttpServerTest, SurvivesClientClosingMidResponse) {
  MetricsRegistry registry;
  // A deliberately huge exposition, so the response cannot fit in the
  // socket buffers and SendAll must keep writing after the peer is gone.
  for (int i = 0; i < 20000; ++i) {
    registry.GetCounter("stress/series_total",
                        {{"i", std::to_string(i)}})
        ->Increment();
  }
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());

  // Client 1: request /metrics, then slam the connection shut with an RST
  // (SO_LINGER, zero timeout) without reading the body.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  const linger hard_close{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close, sizeof(hard_close));
  ::close(fd);  // RST: the server's next send() fails instead of blocking

  // Client 2: the server must shrug off the dead peer and keep serving.
  // (Regression: a SendAll that retried on send()<=0 would spin forever
  // in the accept thread and this request would hang.)
  const std::string health = HttpGet(server.port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(health.find("200"), std::string::npos) << health;
  const std::string metrics =
      HttpGet(server.port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(metrics.find("stress_series_total"), std::string::npos);
}

}  // namespace
}  // namespace ucad::obs
