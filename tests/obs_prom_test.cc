#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "obs/prom_text.h"

namespace ucad::obs {
namespace {

// ---------- Name / label sanitization ----------

TEST(PromNameTest, SlashSeparatorsBecomeUnderscores) {
  EXPECT_EQ(PromName("detector/drift/psi"), "detector_drift_psi");
  EXPECT_EQ(PromName("eval/deeplog/train_ms"), "eval_deeplog_train_ms");
}

TEST(PromNameTest, IllegalCharactersAndLeadingDigits) {
  EXPECT_EQ(PromName("9lives"), "_lives");
  EXPECT_EQ(PromName("a-b.c"), "a_b_c");
  EXPECT_EQ(PromName(""), "_");
  EXPECT_EQ(PromName("name:with:colons"), "name:with:colons");
}

TEST(PromNameTest, LabelNamesRejectColons) {
  EXPECT_EQ(PromLabelName("le:gal"), "le_gal");
  EXPECT_EQ(PromLabelName("method"), "method");
}

TEST(PromLabelValueTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(PromLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PromLabelValue("two\nlines"), "two\\nlines");
}

// ---------- Text exposition ----------

TEST(PromTextTest, CountersAndGauges) {
  MetricsRegistry registry;
  registry.GetCounter("detector/operations_total")->Increment(42);
  registry.GetGauge("detector/anomaly_rate")->Set(0.125);
  const std::string text = PromText(registry);
  EXPECT_NE(text.find("# TYPE detector_operations_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("detector_operations_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE detector_anomaly_rate gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("detector_anomaly_rate 0.125\n"), std::string::npos);
}

TEST(PromTextTest, TypeLineEmittedOncePerNameAcrossLabelVariants) {
  MetricsRegistry registry;
  registry.GetCounter("eval/runs_total", {{"method", "DeepLog"}})
      ->Increment();
  registry.GetCounter("eval/runs_total", {{"method", "USAD"}})->Increment(2);
  const std::string text = PromText(registry);
  size_t type_lines = 0;
  size_t pos = 0;
  while ((pos = text.find("# TYPE eval_runs_total", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("eval_runs_total{method=\"DeepLog\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("eval_runs_total{method=\"USAD\"} 2\n"),
            std::string::npos);
}

TEST(PromTextTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("req/latency_ms", {}, {1.0, 5.0, 10.0});
  h->Observe(0.5);   // bucket le=1
  h->Observe(4.0);   // bucket le=5
  h->Observe(4.5);   // bucket le=5
  h->Observe(100.0); // overflow
  const std::string text = PromText(registry);
  EXPECT_NE(text.find("# TYPE req_latency_ms histogram\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("req_latency_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_latency_ms_bucket{le=\"5\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_latency_ms_bucket{le=\"10\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_latency_ms_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_latency_ms_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("req_latency_ms_sum 109\n"), std::string::npos);
}

TEST(PromTextTest, NonFiniteGaugeUsesPrometheusSpelling) {
  MetricsRegistry registry;
  registry.GetGauge("weird/pos_inf")->Set(INFINITY);
  registry.GetGauge("weird/neg_inf")->Set(-INFINITY);
  registry.GetGauge("weird/nan")->Set(NAN);
  const std::string text = PromText(registry);
  EXPECT_NE(text.find("weird_pos_inf +Inf\n"), std::string::npos) << text;
  EXPECT_NE(text.find("weird_neg_inf -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("weird_nan NaN\n"), std::string::npos);
}

TEST(PromTextTest, EveryLineIsTypeCommentOrSample) {
  // Structural validity: each line is either "# TYPE <name> <type>" or
  // "<name>[{labels}] <value>" — what a Prometheus scraper requires.
  MetricsRegistry registry;
  registry.GetCounter("a/b_total", {{"k", "v1"}})->Increment();
  registry.GetGauge("c/d")->Set(1.5);
  registry.GetHistogram("e/f_ms", {}, {1.0, 2.0})->Observe(1.5);
  std::istringstream lines(PromText(registry));
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable sample value in: " << line;
    ++samples;
  }
  EXPECT_GE(samples, 6);  // counter + gauge + 2 buckets + inf + sum + count
}

// ---------- HTTP endpoint ----------

/// One blocking HTTP/1.0 round-trip against 127.0.0.1:`port`.
std::string HttpGet(int port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = request_line + "\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServerTest, ServesMetricsAndHealthz) {
  MetricsRegistry registry;
  registry.GetGauge("detector/anomaly_rate")->Set(0.25);
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());  // ephemeral port
  ASSERT_TRUE(server.serving());
  ASSERT_GT(server.port(), 0);

  const std::string health = HttpGet(server.port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics =
      HttpGet(server.port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("detector_anomaly_rate 0.25"), std::string::npos);

  // The endpoint's own request counter observes both requests (it may or
  // may not include the in-flight one depending on registry identity; here
  // the counter lives in the served registry).
  EXPECT_GE(server.requests(), 2u);
  server.Stop();
  EXPECT_FALSE(server.serving());
}

TEST(MetricsHttpServerTest, UnknownRouteIs404) {
  MetricsRegistry registry;
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response =
      HttpGet(server.port(), "GET /nope HTTP/1.0");
  EXPECT_NE(response.find("404"), std::string::npos) << response;
}

TEST(MetricsHttpServerTest, MalformedRequestIs400) {
  MetricsRegistry registry;
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = HttpGet(server.port(), "BOGUS");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
}

TEST(MetricsHttpServerTest, StopIsIdempotentAndRestartable) {
  MetricsRegistry registry;
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  const int first_port = server.port();
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.serving());
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_TRUE(server.serving());
  (void)first_port;
  const std::string health = HttpGet(server.port(), "GET /healthz HTTP/1.0");
  EXPECT_NE(health.find("200"), std::string::npos);
}

TEST(MetricsHttpServerTest, StartTwiceFails) {
  MetricsRegistry registry;
  MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_FALSE(server.Start(0).ok());
}

}  // namespace
}  // namespace ucad::obs
