// Cross-module integration tests: the transfer pipeline on system logs,
// poisoned-training robustness, and failure injection at module seams.

#include <gtest/gtest.h>

#include "baselines/deeplog.h"
#include "baselines/logcluster.h"
#include "eval/dataset.h"
#include "eval/experiment_config.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "util/rng.h"
#include "workload/syslog.h"

namespace ucad {
namespace {

// ---------- Transfer pipeline (Table 6 path) ----------

class TransferTest : public ::testing::Test {
 protected:
  TransferTest() {
    util::Rng rng(3);
    workload::SyslogOptions options;
    options.train_sessions = 120;
    options.normal_test_sessions = 60;
    options.abnormal_test_sessions = 30;
    ds_ = workload::MakeHdfsLikeDataset(options, &rng);
  }

  workload::LogDataset ds_;
};

TEST_F(TransferTest, TransDasDetectsLogAnomalies) {
  transdas::TransDasConfig config;
  config.vocab_size = ds_.vocab_size;
  config.window = 10;   // paper Table 6: L=10
  config.hidden_dim = 16;
  config.num_heads = 2;
  config.num_blocks = 2;
  util::Rng rng(4);
  transdas::TransDasModel model(config, &rng);
  transdas::TrainOptions training;
  training.epochs = 6;
  training.negative_samples = 4;
  training.window_stride = 4;
  transdas::TransDasTrainer trainer(&model, training);
  trainer.Train(ds_.train);
  transdas::TransDasDetector detector(
      &model, transdas::DetectorOptions{.top_p = 5});
  const eval::BinaryMetrics m = eval::EvaluateBinary(
      [&detector](const std::vector<int>& s) {
        return detector.DetectSession(s).abnormal;
      },
      ds_.test_sessions, ds_.test_labels);
  EXPECT_GT(m.recall, 0.8) << "UCAD should recall nearly every log anomaly";
  EXPECT_GT(m.f1, 0.6);
}

TEST_F(TransferTest, BaselinesRunOnLogDatasets) {
  baselines::LogCluster logcluster(ds_.vocab_size,
                                   baselines::LogCluster::Options{});
  logcluster.Train(ds_.train);
  baselines::DeepLog::Options dl;
  dl.epochs = 1;
  dl.stride = 2;
  baselines::DeepLog deeplog(ds_.vocab_size, dl);
  deeplog.Train(ds_.train);
  for (auto* detector :
       std::initializer_list<baselines::SessionDetector*>{&logcluster,
                                                          &deeplog}) {
    const eval::BinaryMetrics m = eval::EvaluateBinary(
        [detector](const std::vector<int>& s) {
          return detector->IsAbnormal(s);
        },
        ds_.test_sessions, ds_.test_labels);
    EXPECT_GT(m.recall, 0.3) << detector->name();
  }
}

// ---------- Poisoned-training robustness (Figure 8 path) ----------

TEST(RobustnessTest, ModeratePoisoningDegradesGracefully) {
  eval::ScenarioConfig config = eval::ScenarioIConfig(eval::Scale::kSmoke);
  config.training.epochs = 8;
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  util::Rng rng(5);
  const eval::TransDasRun clean = eval::RunTransDas(
      ds, config.model, config.training, config.detection, ds.train);
  const eval::TransDasRun poisoned = eval::RunTransDas(
      ds, config.model, config.training, config.detection,
      ds.HybridTrain(0.2, &rng));
  // 20% poisoning must not collapse detection to zero; allow wide noise in
  // the smoke regime but require the model to stay functional.
  EXPECT_GT(poisoned.metrics.recall, 0.3);
  EXPECT_GT(clean.metrics.f1, 0.0);
}

// ---------- Failure injection at module seams ----------

TEST(FailureInjectionTest, DetectorsHandleDegenerateSessions) {
  transdas::TransDasConfig config;
  config.vocab_size = 8;
  config.window = 6;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 1;
  util::Rng rng(6);
  transdas::TransDasModel model(config, &rng);
  transdas::TrainOptions training;
  training.epochs = 1;
  transdas::TransDasTrainer trainer(&model, training);
  trainer.Train({{1, 2, 3, 4, 5, 6, 7, 1, 2}});
  transdas::TransDasDetector detector(&model,
                                      transdas::DetectorOptions{.top_p = 3});
  EXPECT_FALSE(detector.DetectSession({}).abnormal);
  EXPECT_FALSE(detector.DetectSession({1}).abnormal);
  // Out-of-range keys are treated as unknown (abnormal), not a crash.
  const auto verdict = detector.DetectSession({1, 99, 2});
  EXPECT_TRUE(verdict.abnormal);
  // All-padding sessions are scored without crashing.
  (void)detector.DetectSession({0, 0, 0, 0});
}

TEST(FailureInjectionTest, BaselinesHandleDegenerateSessions) {
  util::Rng rng(7);
  std::vector<std::vector<int>> train;
  for (int i = 0; i < 30; ++i) train.push_back({1, 2, 3, 4, 1, 2, 3, 4});
  baselines::DeepLog::Options dl;
  dl.epochs = 1;
  baselines::DeepLog deeplog(8, dl);
  deeplog.Train(train);
  EXPECT_FALSE(deeplog.IsAbnormal({}));
  EXPECT_FALSE(deeplog.IsAbnormal({1}));
  EXPECT_TRUE(deeplog.IsAbnormal({1, 99}));  // out-of-vocab key

  baselines::LogCluster lc(8, baselines::LogCluster::Options{});
  lc.Train(train);
  (void)lc.IsAbnormal({});  // must not crash
}

// ---------- End-to-end determinism ----------

TEST(DeterminismTest, FullPipelineIsReproducible) {
  eval::ScenarioConfig config = eval::ScenarioIConfig(eval::Scale::kSmoke);
  config.training.epochs = 3;
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  const eval::TransDasRun a = eval::RunTransDas(
      ds, config.model, config.training, config.detection, ds.train);
  const eval::TransDasRun b = eval::RunTransDas(
      ds, config.model, config.training, config.detection, ds.train);
  EXPECT_DOUBLE_EQ(a.metrics.f1, b.metrics.f1);
  EXPECT_DOUBLE_EQ(a.metrics.precision, b.metrics.precision);
  EXPECT_EQ(a.metrics.true_positives, b.metrics.true_positives);
}

}  // namespace
}  // namespace ucad
