#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/prom_text.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ucad::obs {
namespace {

std::string TempPath(const std::string& stem) {
  return testing::TempDir() + "/" + stem;
}

void SpinMs(double ms) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(static_cast<int64_t>(ms * 1e3));
  while (std::chrono::steady_clock::now() < until) {
  }
}

/// One fully-stamped window trace on `recorder` (every stage boundary
/// crossed), totalling roughly `slow_ms` of wall time when nonzero.
void RecordWindow(FlightRecorder* recorder, int position, int rank,
                  bool abnormal, double slow_ms = 0.0) {
  recorder->Begin(CurrentFlightSession(), position);
  FlightStageBoundary(FlightStage::kContextAcquire);
  FlightStageBoundary(FlightStage::kEmbed);
  FlightStageBoundary(FlightStage::kAttention);
  if (slow_ms > 0.0) SpinMs(slow_ms);
  FlightStageBoundary(FlightStage::kFfn);
  FlightStageBoundary(FlightStage::kLogits);
  FlightStageBoundary(FlightStage::kScore);
  recorder->End(rank, /*score=*/1.5f, /*margin=*/0.25f, abnormal);
}

// ---------- Record layout + stage names ----------

TEST(WindowTraceTest, LayoutIsDumpStable) {
  // The binary dump format (and the crash handler) depend on this layout;
  // the static_asserts in flight.h are the real gate, this documents it.
  EXPECT_EQ(sizeof(WindowTrace), 80u);
  EXPECT_TRUE(std::is_trivially_copyable_v<WindowTrace>);
  const char* expected[kFlightStageCount] = {
      "context_acquire", "embed", "attention", "ffn",
      "logits",          "score", "verdict"};
  for (int s = 0; s < kFlightStageCount; ++s) {
    EXPECT_STREQ(FlightStageName(s), expected[s]);
  }
  EXPECT_STREQ(FlightStageName(-1), "unknown");
  EXPECT_STREQ(FlightStageName(kFlightStageCount), "unknown");
}

// ---------- Recording ----------

TEST(FlightRecorderTest, ManualTraceRoundTrip) {
  MetricsRegistry registry;
  FlightOptions options;
  options.lane_capacity = 16;
  FlightRecorder recorder(options, &registry);
  {
    FlightSessionScope scope(std::string("sess-42"));
    RecordWindow(&recorder, /*position=*/7, /*rank=*/3, /*abnormal=*/false);
  }
  EXPECT_EQ(recorder.RecordsTotal(), 1u);
  const std::vector<WindowTrace> traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const WindowTrace& t = traces[0];
  EXPECT_EQ(t.seq, 1u);
  EXPECT_EQ(t.session_hash, Fnv1aHash64("sess-42"));
  EXPECT_EQ(t.position, 7);
  EXPECT_EQ(t.rank, 3);
  EXPECT_FLOAT_EQ(t.score, 1.5f);
  EXPECT_FLOAT_EQ(t.margin, 0.25f);
  EXPECT_EQ(t.flags, 0u);
  EXPECT_GT(t.wall_ms, 0);
  // Stage attribution is exhaustive by construction: the per-stage times
  // sum to the trace total (verdict absorbs End's residual).
  float stage_sum = 0.0f;
  for (int s = 0; s < kFlightStageCount; ++s) {
    EXPECT_GE(t.stage_ms[s], 0.0f);
    stage_sum += t.stage_ms[s];
  }
  EXPECT_NEAR(stage_sum, t.total_ms, 1e-3f);
  // The registry saw one observation per stage histogram + the total.
  for (int s = 0; s < kFlightStageCount; ++s) {
    const std::string name =
        std::string("detector/stage/") + FlightStageName(s) + "_ms";
    EXPECT_EQ(registry.GetHistogram(name)->Count(), 1u) << name;
  }
  EXPECT_EQ(registry.GetHistogram("detector/window_total_ms")->Count(), 1u);
  EXPECT_EQ(registry.GetCounter("flight/records_total")->Value(), 1u);
}

TEST(FlightRecorderTest, RingWrapKeepsNewestTraces) {
  MetricsRegistry registry;
  FlightOptions options;
  options.lane_capacity = 4;
  FlightRecorder recorder(options, &registry);
  for (int i = 0; i < 10; ++i) {
    RecordWindow(&recorder, /*position=*/i, /*rank=*/1, /*abnormal=*/false);
  }
  EXPECT_EQ(recorder.RecordsTotal(), 10u);
  const std::vector<WindowTrace> traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 4u);  // the ring holds the last lane_capacity
  for (size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].seq, 7u + i);  // seq-ascending, newest 4 of 10
  }
}

TEST(FlightRecorderTest, AbandonDropsOpenTrace) {
  MetricsRegistry registry;
  FlightRecorder recorder({}, &registry);
  recorder.Begin(0, 0);
  recorder.Abandon();
  recorder.End(1, 0.0f, 0.0f, false);  // no open trace: must be a no-op
  EXPECT_EQ(recorder.RecordsTotal(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

// ---------- Tail sampling ----------

TEST(FlightRecorderTest, PromotesAbnormalAndSlowTail) {
  MetricsRegistry registry;
  FlightOptions options;
  options.lane_capacity = 64;
  options.retained_capacity = 8;
  options.slow_quantile = 0.9;
  options.slow_warmup = 16;
  FlightRecorder recorder(options, &registry);
  // Normal fast windows first, so the P² sketch warms up on ~0ms totals.
  // Once warmed, jittery steady-state windows above their own p90 may be
  // promoted too — that's the sampling policy, not noise to assert away.
  for (int i = 0; i < 32; ++i) {
    RecordWindow(&recorder, i, /*rank=*/1, /*abnormal=*/false);
  }
  const uint64_t steady_promoted = recorder.PromotedTotal();
  // An abnormal window is promoted regardless of latency.
  RecordWindow(&recorder, 100, /*rank=*/40, /*abnormal=*/true);
  // A window far above the warmed-up latency quantile is promoted as slow.
  RecordWindow(&recorder, 101, /*rank=*/1, /*abnormal=*/false,
               /*slow_ms=*/25.0);
  EXPECT_EQ(recorder.PromotedTotal(), steady_promoted + 2);
  EXPECT_GT(recorder.SlowThresholdMs(), 0.0);
  const std::vector<WindowTrace> retained = recorder.Retained();
  ASSERT_GE(retained.size(), 2u);
  const WindowTrace& abnormal = retained[retained.size() - 2];
  const WindowTrace& slow = retained[retained.size() - 1];
  EXPECT_EQ(abnormal.position, 100);
  EXPECT_EQ(abnormal.flags & kFlightAbnormal, kFlightAbnormal);
  EXPECT_EQ(slow.position, 101);
  EXPECT_EQ(slow.flags & kFlightSlow, kFlightSlow);
  EXPECT_GE(slow.total_ms, 20.0f);
}

TEST(FlightRecorderTest, PromotedWindowExportsExemplar) {
  MetricsRegistry registry;
  FlightRecorder recorder({}, &registry);
  {
    FlightSessionScope scope(std::string("s9"));
    RecordWindow(&recorder, 3, /*rank=*/50, /*abnormal=*/true);
  }
  Exemplar ex;
  bool found = false;
  const Histogram* total = registry.GetHistogram("detector/window_total_ms");
  for (size_t i = 0; i <= total->bounds().size() && !found; ++i) {
    found = total->LatestExemplar(i, &ex);
  }
  ASSERT_TRUE(found);
  EXPECT_GT(ex.unix_ms, 0);
  ASSERT_EQ(ex.labels.size(), 3u);  // seq, session, position (sorted)
  // The exposition carries the exemplar on the matching bucket line.
  const std::string text = PromText(registry);
  EXPECT_NE(text.find("_bucket"), std::string::npos);
  EXPECT_NE(text.find(" # {"), std::string::npos);
  EXPECT_NE(text.find("seq=\"1\""), std::string::npos);
}

// ---------- Enable toggle ----------

TEST(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  MetricsRegistry registry;
  FlightRecorder recorder({}, &registry);
  SetFlightRecorderEnabled(false);
  RecordWindow(&recorder, 0, 1, true);
  SetFlightRecorderEnabled(true);
  EXPECT_EQ(recorder.RecordsTotal(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_TRUE(recorder.Retained().empty());
  RecordWindow(&recorder, 1, 1, false);
  EXPECT_EQ(recorder.RecordsTotal(), 1u);
}

// ---------- Binary dump ----------

TEST(FlightDumpTest, DumpFileRoundTrip) {
  MetricsRegistry registry;
  FlightOptions options;
  options.lane_capacity = 8;
  FlightRecorder recorder(options, &registry);
  {
    FlightSessionScope scope(std::string("dump-session"));
    for (int i = 0; i < 5; ++i) {
      RecordWindow(&recorder, i, /*rank=*/i + 1, /*abnormal=*/i == 4);
    }
  }
  const std::string path = TempPath("flight_roundtrip.flight");
  ASSERT_TRUE(recorder.WriteDumpFile(path).ok());
  auto dump = ReadFlightDumpFile(path);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump->version, 1u);
  EXPECT_EQ(dump->signal, 0u);
  EXPECT_EQ(dump->stage_count, static_cast<uint32_t>(kFlightStageCount));
  EXPECT_EQ(dump->records_total, 5u);
  EXPECT_EQ(dump->promoted_total, 1u);
  ASSERT_EQ(dump->records.size(), 5u);
  ASSERT_EQ(dump->retained.size(), 1u);
  EXPECT_EQ(dump->retained[0].position, 4);
  EXPECT_EQ(dump->retained[0].flags & kFlightAbnormal, kFlightAbnormal);
  for (size_t i = 0; i < dump->records.size(); ++i) {
    const WindowTrace& t = dump->records[i];
    EXPECT_EQ(t.seq, i + 1);
    EXPECT_EQ(t.session_hash, Fnv1aHash64("dump-session"));
    EXPECT_EQ(t.rank, static_cast<int>(i) + 1);
  }
}

TEST(FlightDumpTest, RejectsForeignFile) {
  const std::string path = TempPath("flight_bogus.flight");
  std::ofstream(path) << "this is not a flight dump at all";
  auto dump = ReadFlightDumpFile(path);
  EXPECT_FALSE(dump.ok());
}

// ---------- Crash forensics ----------

TEST(FlightCrashTest, SigsegvProducesParseableDump) {
  const std::string dir = TempPath("flight_crash_dir");
  std::filesystem::remove_all(dir);
  // Populate the default recorder (what the handler dumps) in the parent;
  // the child inherits rings and handler through fork.
  FlightRecorder::Default().Reset();
  {
    FlightSessionScope scope(std::string("crash-session"));
    for (int i = 0; i < 4; ++i) {
      FlightBegin(i);
      FlightStageBoundary(FlightStage::kScore);
      FlightEnd(/*rank=*/2, /*score=*/0.5f, /*margin=*/0.1f,
                /*abnormal=*/false);
    }
  }
  ASSERT_TRUE(InstallFlightCrashHandler(dir, "{\"run_id\":\"crash-test\"}")
                  .ok());
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: die the way an instrumented production binary would.
    ::raise(SIGSEGV);
    ::_exit(0);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  UninstallFlightCrashHandler();
  // The handler re-raises after dumping, so the exit reason is unchanged.
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::string stem = dir + "/crash-" + std::to_string(pid);
  auto dump = ReadFlightDumpFile(stem + ".flight");
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump->signal, static_cast<uint32_t>(SIGSEGV));
  ASSERT_EQ(dump->records.size(), 4u);
  for (size_t i = 0; i < dump->records.size(); ++i) {
    EXPECT_EQ(dump->records[i].seq, i + 1);
    EXPECT_EQ(dump->records[i].session_hash, Fnv1aHash64("crash-session"));
  }
  std::ifstream manifest(stem + ".manifest.json");
  ASSERT_TRUE(manifest.good());
  std::string manifest_text((std::istreambuf_iterator<char>(manifest)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(manifest_text, "{\"run_id\":\"crash-test\"}");
  // The metrics snapshot is pre-rendered at install time, so it exists
  // even though the child recorded nothing after the fork.
  EXPECT_TRUE(std::ifstream(stem + ".metrics.jsonl").good());
}

// ---------- End-to-end stage attribution through the detector ----------

TEST(FlightAttributionTest, StageP50sSumToScoreLatencyP50) {
  // Acceptance gate: per-stage p50s must add up to the detector's
  // score-latency p50 within 15% — otherwise the attribution is lying
  // about where the time goes.
  util::SetNumThreads(1);
  transdas::TransDasConfig config;
  config.vocab_size = 128;
  config.window = 16;
  config.hidden_dim = 32;
  config.num_heads = 2;
  config.num_blocks = 3;
  config.dropout = 0.0f;
  util::Rng rng(7);
  transdas::TransDasModel model(config, &rng);
  transdas::DetectorOptions options;
  options.batched = false;  // streaming path: one window per operation
  transdas::TransDasDetector detector(&model, options);

  FlightRecorder::Default().Reset();
  const auto run_sessions = [&](int count, int base) {
    for (int s = 0; s < count; ++s) {
      // Length-2 sessions: exactly one scored window per session, so the
      // per-session score latency and the per-window total coincide.
      const std::vector<int> keys = {1 + (s + base) % 100,
                                     1 + (s + base + 13) % 100};
      detector.DetectSession(keys);
    }
  };
  // Warm up caches and the lane allocation outside the measured windows.
  SetMetricsEnabled(false);
  run_sessions(50, 0);
  FlightRecorder::Default().Reset();
  SetMetricsEnabled(true);
  run_sessions(400, 50);

  MetricsRegistry& reg = DefaultMetrics();
  const double score_p50 =
      reg.GetHistogram("detector/score_latency_ms")->Percentile(0.5);
  ASSERT_GT(score_p50, 0.0);
  double stage_p50_sum = 0.0;
  for (int s = 0; s < kFlightStageCount; ++s) {
    const std::string name =
        std::string("detector/stage/") + FlightStageName(s) + "_ms";
    const Histogram* h = reg.GetHistogram(name);
    // >= because DefaultMetrics is process-wide: other tests in this
    // binary may have recorded windows when run without a gtest filter.
    EXPECT_GE(h->Count(), 400u) << name;
    stage_p50_sum += h->Percentile(0.5);
  }
  EXPECT_NEAR(stage_p50_sum, score_p50, 0.15 * score_p50)
      << "stage p50 sum " << stage_p50_sum << " vs score latency p50 "
      << score_p50;
  // Every recorded trace individually attributes all of its wall time.
  const std::vector<WindowTrace> traces = FlightRecorder::Default().Snapshot();
  ASSERT_FALSE(traces.empty());
  for (const WindowTrace& t : traces) {
    float sum = 0.0f;
    for (int s = 0; s < kFlightStageCount; ++s) sum += t.stage_ms[s];
    EXPECT_NEAR(sum, t.total_ms, 1e-2f + 1e-3f * t.total_ms);
    // The dominant cost of a scored window must be attributed to real
    // model stages, not the bookkeeping residual.
    EXPECT_LT(t.stage_ms[static_cast<int>(FlightStage::kVerdict)],
              0.5f * t.total_ms + 0.05f);
  }
}

}  // namespace
}  // namespace ucad::obs
