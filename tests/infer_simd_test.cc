// Locks down the kernel-tier contract (docs/INFERENCE.md "Kernel tiers"):
// the vectorized tier (runtime-dispatched SIMD kernels with relaxed
// rounding) must be VERDICT-identical to the reference tier across configs,
// thread counts, and scoring tiers (plain, batched, incremental), and its
// per-kernel outputs must stay within tight error bounds of the scalar
// reference. The int8 tier's quantization must honor its analytic bounds
// and agree with the reference verdicts on trained scenario workloads.
// Also: the dispatcher's forced-scalar override, tier plumbing defaults,
// and the new nn/infer tier metrics.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/dataset.h"
#include "eval/experiment_config.h"
#include "nn/infer.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ucad {
namespace {

/// Restores single-thread mode even when a test fails mid-way, so later
/// tests in this binary never inherit a parallel pool unexpectedly.
class ThreadGuard {
 public:
  ~ThreadGuard() { util::SetNumThreads(1); }
};

/// Clears any ISA override on scope exit, so a failing dispatch test can't
/// leave the rest of the binary pinned to scalar.
class IsaOverrideGuard {
 public:
  ~IsaOverrideGuard() { util::ClearSimdIsaOverride(); }
};

std::vector<int> RandomSession(const transdas::TransDasConfig& config,
                               int length, util::Rng* rng) {
  std::vector<int> keys(length);
  for (int& key : keys) {
    key = 1 + static_cast<int>(rng->UniformU64(config.vocab_size - 1));
  }
  return keys;
}

/// Verdict identity as the kernel-tier contract defines it: the same
/// positions flagged, with the same ranks. On untrained random-init
/// models (every cross-tier config below) adjacent rank candidates can
/// sit within one ulp of each other, and the *reference* kernels round
/// differently across -march levels — so ranks are held to within one
/// step here, while flags stay exact. The trained Scenario-I test below
/// asserts exact rank identity, which is the contract on real models.
void ExpectVerdictEqual(const transdas::SessionVerdict& a,
                        const transdas::SessionVerdict& b) {
  ASSERT_EQ(a.abnormal, b.abnormal);
  ASSERT_EQ(a.operations.size(), b.operations.size());
  for (size_t i = 0; i < a.operations.size(); ++i) {
    ASSERT_EQ(a.operations[i].position, b.operations[i].position);
    ASSERT_LE(std::abs(a.operations[i].rank - b.operations[i].rank), 1)
        << "op " << i << ": rank " << a.operations[i].rank << " vs "
        << b.operations[i].rank;
    ASSERT_EQ(a.operations[i].abnormal, b.operations[i].abnormal);
  }
}

/// Exact rank identity — the contract on trained models, where margins
/// dwarf the fast tiers' rounding differences.
void ExpectVerdictExact(const transdas::SessionVerdict& a,
                        const transdas::SessionVerdict& b) {
  ASSERT_EQ(a.abnormal, b.abnormal);
  ASSERT_EQ(a.operations.size(), b.operations.size());
  for (size_t i = 0; i < a.operations.size(); ++i) {
    ASSERT_EQ(a.operations[i].position, b.operations[i].position);
    ASSERT_EQ(a.operations[i].rank, b.operations[i].rank);
    ASSERT_EQ(a.operations[i].abnormal, b.operations[i].abnormal);
  }
}

std::vector<transdas::TransDasConfig> ParityConfigs() {
  // Spans window length, head count, depth, mask mode, and the
  // position-embedding ablation (which disables the slide cache but not
  // the batcher); config 2 is the paper's Scenario-I shape.
  std::vector<transdas::TransDasConfig> configs(3);
  configs[0].vocab_size = 20;
  configs[0].window = 6;
  configs[0].hidden_dim = 8;
  configs[0].num_heads = 2;
  configs[0].num_blocks = 1;
  configs[1].vocab_size = 37;
  configs[1].window = 12;
  configs[1].hidden_dim = 12;
  configs[1].num_heads = 3;
  configs[1].num_blocks = 2;
  configs[1].use_position_embedding = true;
  configs[1].mask_mode = transdas::MaskMode::kCausal;
  configs[2].vocab_size = 51;
  configs[2].window = 30;
  configs[2].hidden_dim = 10;
  configs[2].num_heads = 2;
  configs[2].num_blocks = 3;
  return configs;
}

nn::Tensor RandomTensor(int rows, int cols, util::Rng* rng,
                        float scale = 1.0f) {
  nn::Tensor t(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      t.at(i, j) = scale * static_cast<float>(rng->Normal());
    }
  }
  return t;
}

float MaxAbs(const nn::Tensor& t) {
  float m = 0.0f;
  for (int i = 0; i < t.rows(); ++i) {
    for (int j = 0; j < t.cols(); ++j) {
      m = std::max(m, std::abs(t.at(i, j)));
    }
  }
  return m;
}

// ---------- Tier plumbing defaults ----------

TEST(KernelTierTest, DefaultsAndScopedRestore) {
  EXPECT_EQ(transdas::DetectorOptions{}.kernel_tier,
            nn::KernelTier::kReference);
  EXPECT_EQ(nn::CurrentKernelTier(), nn::KernelTier::kReference);
  {
    nn::ScopedKernelTier scope(nn::KernelTier::kVectorized);
    EXPECT_EQ(nn::CurrentKernelTier(), nn::KernelTier::kVectorized);
    {
      nn::ScopedKernelTier inner(nn::KernelTier::kInt8);
      EXPECT_EQ(nn::CurrentKernelTier(), nn::KernelTier::kInt8);
    }
    EXPECT_EQ(nn::CurrentKernelTier(), nn::KernelTier::kVectorized);
  }
  EXPECT_EQ(nn::CurrentKernelTier(), nn::KernelTier::kReference);
}

TEST(KernelTierTest, NamesParseRoundTrip) {
  for (nn::KernelTier tier :
       {nn::KernelTier::kReference, nn::KernelTier::kVectorized,
        nn::KernelTier::kInt8}) {
    nn::KernelTier parsed;
    ASSERT_TRUE(nn::ParseKernelTier(nn::KernelTierName(tier), &parsed));
    EXPECT_EQ(parsed, tier);
  }
  nn::KernelTier parsed = nn::KernelTier::kInt8;
  EXPECT_FALSE(nn::ParseKernelTier("avx512-extreme", &parsed));
  EXPECT_EQ(parsed, nn::KernelTier::kInt8);  // junk leaves *out alone
}

TEST(SimdDispatchTest, ScalarOverrideNarrowsDispatch) {
  IsaOverrideGuard guard;
  // Whatever the hardware offers, a scalar override must win (the CI
  // fallback leg and the bench's pinned-reference runs rely on it)...
  util::SetSimdIsaOverride(util::SimdIsa::kScalar);
  EXPECT_EQ(util::ActiveSimdIsa(), util::SimdIsa::kScalar);
  util::ClearSimdIsaOverride();
  // ...and a widening override must NOT: dispatch never exceeds what the
  // build + CPU support.
  const util::SimdIsa native = util::ActiveSimdIsa();
  util::SetSimdIsaOverride(util::SimdIsa::kAvx2);
  EXPECT_EQ(util::ActiveSimdIsa(), native);
  util::ClearSimdIsaOverride();

  util::SimdIsa parsed;
  for (util::SimdIsa isa :
       {util::SimdIsa::kScalar, util::SimdIsa::kAvx2, util::SimdIsa::kNeon}) {
    ASSERT_TRUE(util::ParseSimdIsa(util::SimdIsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  EXPECT_FALSE(util::ParseSimdIsa("mmx", &parsed));
  EXPECT_FALSE(util::CpuFeaturesString().empty());
}

// ---------- Per-kernel error bounds: vectorized vs scalar reference ----------

TEST(FastKernelBoundsTest, PolynomialExpMatchesLibm) {
  // The softmax only ever feeds x <= 0 (max-subtracted), but hold the bound
  // on both sides of the clamp range.
  float max_rel = 0.0f;
  for (float x = -87.0f; x <= 88.0f; x += 0.0137f) {
    const float ref = std::exp(x);
    const float got = nn::fast::Exp(x);
    if (ref > 0.0f) {
      max_rel = std::max(max_rel, std::abs(got - ref) / ref);
    }
  }
  EXPECT_LT(max_rel, 3e-7f);
  // Deep underflow clamps instead of producing garbage.
  EXPECT_GE(nn::fast::Exp(-1e9f), 0.0f);
  EXPECT_LT(nn::fast::Exp(-1e9f), 1e-30f);
}

TEST(FastKernelBoundsTest, MatMulSliceWithinTolerance) {
  util::Rng rng(404);
  for (const auto& [rows, k, cols] : std::vector<std::array<int, 3>>{
           {30, 10, 32}, {12, 15, 51}, {7, 8, 9}, {30, 10, 200}}) {
    const nn::Tensor a = RandomTensor(rows, k, &rng);
    const nn::Tensor b = RandomTensor(k, cols, &rng);
    nn::Tensor ref(rows, cols);
    nn::MatMulSliceKernel(a, 0, k, b, 0, &ref, 0.5f);
    nn::Tensor got(rows, cols);
    nn::fast::MatMulSlice(a, 0, k, b, 0, rows, 0.5f, &got);
    // Relaxed accumulation order + FMA: error grows with depth, bounded by
    // a few ULP per accumulation step.
    const float tol = 1e-5f * std::max(1.0f, MaxAbs(ref));
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        ASSERT_NEAR(got.at(i, j), ref.at(i, j), tol)
            << rows << "x" << k << "x" << cols << " at (" << i << "," << j
            << ")";
      }
    }
  }
}

TEST(FastKernelBoundsTest, MaskedSoftmaxWithinTolerance) {
  util::Rng rng(405);
  const int L = 30;
  nn::Tensor mask(L, L);
  for (int i = 0; i + 1 < L; ++i) mask.at(i, i + 1) = -1e9f;
  nn::Tensor ref = RandomTensor(L, L, &rng, 4.0f);
  nn::Tensor got = ref;
  nn::MaskedSoftmaxKernel(&ref, 0.25f, mask);
  nn::fast::MaskedSoftmax(&got, 0.25f, mask, 0);
  for (int i = 0; i < L; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < L; ++j) {
      ASSERT_NEAR(got.at(i, j), ref.at(i, j), 2e-6f)
          << "at (" << i << "," << j << ")";
      sum += got.at(i, j);
      if (mask.at(i, j) < 0.0f) {
        // The polynomial exp underflows masked terms to a denormal instead
        // of the reference's exact zero; they must still be negligible.
        EXPECT_LT(got.at(i, j), 1e-30f);
      }
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(FastKernelBoundsTest, ResidualLayerNormBiasAndContextWithinTolerance) {
  util::Rng rng(406);
  const int L = 30, h = 10;
  const nn::Tensor x = RandomTensor(L, h, &rng);
  const nn::Tensor res = RandomTensor(L, h, &rng);
  const nn::Tensor gain = RandomTensor(1, h, &rng, 0.5f);
  const nn::Tensor bias = RandomTensor(1, h, &rng, 0.5f);
  nn::Tensor ref(L, h);
  nn::ResidualLayerNormKernel(x, res, gain, bias, 1e-5f, &ref);
  nn::Tensor got(L, h);
  nn::fast::ResidualLayerNorm(x, res, gain, bias, 1e-5f, &got, 0, L);
  for (int i = 0; i < L; ++i) {
    for (int j = 0; j < h; ++j) {
      ASSERT_NEAR(got.at(i, j), ref.at(i, j), 1e-4f);
    }
  }

  nn::Tensor br_ref = RandomTensor(L, h, &rng);
  nn::Tensor br_got = br_ref;
  nn::BiasReluKernel(&br_ref, bias);
  nn::fast::BiasRelu(&br_got, bias, 0, L);
  for (int i = 0; i < L; ++i) {
    for (int j = 0; j < h; ++j) {
      // Same adds in the same order: bitwise, vectorized or not.
      ASSERT_EQ(br_got.at(i, j), br_ref.at(i, j));
    }
  }

  const int hd = 5;
  nn::Tensor att = RandomTensor(L, L, &rng);
  nn::MaskedSoftmaxKernel(&att, 1.0f, nn::Tensor(L, L));
  const nn::Tensor qkv = RandomTensor(L, 32, &rng);
  nn::Tensor ctx_ref(L, h);
  nn::AttnContextKernel(att, 0, qkv, 20, hd, 0, &ctx_ref);
  nn::Tensor ctx_got(L, h);
  nn::fast::AttnContext(att, 0, qkv, 20, hd, 0, &ctx_got);
  for (int i = 0; i < L; ++i) {
    for (int j = 0; j < hd; ++j) {
      ASSERT_NEAR(ctx_got.at(i, j), ctx_ref.at(i, j), 1e-5f);
    }
  }
}

// ---------- int8 quantization bounds ----------

TEST(Int8QuantTest, RoundTripHonorsAnalyticBound) {
  util::Rng rng(407);
  const nn::Tensor w = RandomTensor(37, 12, &rng, 2.0f);
  nn::QuantizedWeight q;
  nn::QuantizeWeightRows(w, /*transpose=*/false, &q);
  ASSERT_EQ(q.rows, 37);
  ASSERT_EQ(q.cols, 12);
  ASSERT_EQ(q.padded_cols % 32, 0);
  float worst = 0.0f;
  for (int r = 0; r < q.rows; ++r) {
    // Symmetric round-to-nearest: |deq - orig| <= scale / 2.
    const float bound = q.scales[r] * 0.5f + 1e-7f;
    for (int c = 0; c < q.cols; ++c) {
      const float deq = static_cast<float>(q.data[r * q.padded_cols + c]) *
                        q.scales[r];
      const float err = std::abs(deq - w.at(r, c));
      ASSERT_LE(err, bound) << "row " << r << " col " << c;
      worst = std::max(worst, err);
    }
    // Padding stays zero so vector dots never read garbage.
    for (int c = q.cols; c < q.padded_cols; ++c) {
      ASSERT_EQ(q.data[r * q.padded_cols + c], 0);
    }
  }
  EXPECT_FLOAT_EQ(q.max_abs_err, worst);

  // Transposed quantization: row r of q is column r of the source.
  nn::QuantizedWeight qt;
  nn::QuantizeWeightRows(w, /*transpose=*/true, &qt);
  ASSERT_EQ(qt.rows, 12);
  ASSERT_EQ(qt.cols, 37);
  for (int r = 0; r < qt.rows; ++r) {
    for (int c = 0; c < qt.cols; ++c) {
      const float deq = static_cast<float>(qt.data[r * qt.padded_cols + c]) *
                        qt.scales[r];
      ASSERT_LE(std::abs(deq - w.at(c, r)), qt.scales[r] * 0.5f + 1e-7f);
    }
  }
}

TEST(Int8QuantTest, GemmMatchesFloatWithinQuantError) {
  util::Rng rng(408);
  const int m = 30, k = 10, n = 51;
  const nn::Tensor a = RandomTensor(m, k, &rng);
  const nn::Tensor b = RandomTensor(k, n, &rng);
  nn::Tensor ref(m, n);
  nn::MatMulSliceKernel(a, 0, k, b, 0, &ref);
  nn::QuantizedWeight q;
  nn::QuantizeWeightRows(b, /*transpose=*/true, &q);
  nn::Tensor got(m, n);
  nn::Int8GemmKernel(a, 0, k, q, 0, &got);
  // Both factors quantized to 8 bits: worst-case per-element error is
  // k * (|a|max * wscale/2 + |w|max * ascale/2) — for unit normals and
  // k = 10 comfortably inside 2% of the output range.
  const float tol = 0.02f * std::max(1.0f, MaxAbs(ref));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_NEAR(got.at(i, j), ref.at(i, j), tol)
          << "at (" << i << "," << j << ")";
    }
  }
  // Row purity: recomputing a single row must reproduce the full-fill row
  // bitwise (the slide cache's one-row recompute depends on this).
  nn::Tensor single(m, n);
  nn::Int8GemmKernel(a, 0, k, q, m - 1, &single);
  for (int j = 0; j < n; ++j) {
    ASSERT_EQ(single.at(m - 1, j), got.at(m - 1, j));
  }
  EXPECT_GT(nn::internal::Int8GemmRowsTotal(), 0u);
  EXPECT_GT(nn::internal::QuantWeightMaxAbsErr(), 0.0);
}

// ---------- Verdict identity: vectorized vs reference ----------

void ExpectVerdictIdentityAcrossTiers(nn::KernelTier tier) {
  ThreadGuard guard;
  util::Rng rng(1234);
  for (const transdas::TransDasConfig& config : ParityConfigs()) {
    transdas::TransDasModel model(config, &rng);
    transdas::DetectorOptions ref_opts;
    transdas::DetectorOptions fast_opts;
    fast_opts.kernel_tier = tier;
    transdas::DetectorOptions ref_batch = ref_opts;
    ref_batch.batch_windows = 4;
    transdas::DetectorOptions fast_batch = fast_opts;
    fast_batch.batch_windows = 4;
    const transdas::TransDasDetector reference(&model, ref_opts);
    const transdas::TransDasDetector vectorized(&model, fast_opts);
    const transdas::TransDasDetector ref_batched(&model, ref_batch);
    const transdas::TransDasDetector fast_batched(&model, fast_batch);
    for (int trial = 0; trial < 3; ++trial) {
      const std::vector<int> keys =
          RandomSession(config, 3 * config.window + trial, &rng);
      for (int threads : {1, 2, 8}) {
        util::SetNumThreads(threads);
        const transdas::SessionVerdict expected = reference.DetectSession(keys);
        ExpectVerdictEqual(expected, vectorized.DetectSession(keys));
        ExpectVerdictEqual(ref_batched.DetectSession(keys),
                           fast_batched.DetectSession(keys));
      }
      util::SetNumThreads(1);
    }
    // Incremental streaming tier (slide cache active when supported).
    transdas::DetectorOptions ref_inc = ref_opts;
    ref_inc.incremental = true;
    transdas::DetectorOptions fast_inc = fast_opts;
    fast_inc.incremental = true;
    const transdas::TransDasDetector ref_stream(&model, ref_inc);
    const transdas::TransDasDetector fast_stream(&model, fast_inc);
    std::vector<int> preceding;
    for (int step = 0; step < 2 * config.window; ++step) {
      const int next =
          1 + static_cast<int>(rng.UniformU64(config.vocab_size - 1));
      const transdas::OperationVerdict a =
          ref_stream.ScoreNextOperation(preceding, next);
      const transdas::OperationVerdict b =
          fast_stream.ScoreNextOperation(preceding, next);
      ASSERT_EQ(a.rank, b.rank) << "step " << step;
      ASSERT_EQ(a.abnormal, b.abnormal);
      preceding.push_back(next);
    }
  }
}

TEST(SimdVerdictIdentityTest, VectorizedMatchesReferenceAcrossTiers) {
  ExpectVerdictIdentityAcrossTiers(nn::KernelTier::kVectorized);
}

TEST(SimdVerdictIdentityTest, ForcedScalarDispatchMatchesReference) {
  // Pin dispatch to the generic bodies (what the non-AVX2 CI leg and
  // aarch64 run) and re-run the whole identity suite: the relaxed math
  // must be verdict-safe regardless of which body computes it.
  IsaOverrideGuard guard;
  util::SetSimdIsaOverride(util::SimdIsa::kScalar);
  ASSERT_EQ(util::ActiveSimdIsa(), util::SimdIsa::kScalar);
  ExpectVerdictIdentityAcrossTiers(nn::KernelTier::kVectorized);
}

TEST(SimdVerdictIdentityTest, TrainedScenarioVerdictsAcrossAllTiers) {
  ThreadGuard guard;
  // The acceptance contract: on a trained Table 2 scenario workload the
  // vectorized tier is verdict-identical, and the int8 tier agrees on the
  // overwhelming majority of operations (its errors are bounded by the
  // quantization scales, far below trained margins for almost every op).
  eval::ScenarioConfig config = eval::ScenarioIConfig(eval::Scale::kSmoke);
  const eval::ScenarioDataset dataset =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  config.model.vocab_size = dataset.vocab.size();
  util::Rng rng(5);
  transdas::TransDasModel model(config.model, &rng);
  config.training.epochs = 2;
  transdas::TransDasTrainer trainer(&model, config.training);
  trainer.Train(dataset.train);

  transdas::DetectorOptions ref_opts = config.detection;
  transdas::DetectorOptions vec_opts = config.detection;
  vec_opts.kernel_tier = nn::KernelTier::kVectorized;
  transdas::DetectorOptions int8_opts = config.detection;
  int8_opts.kernel_tier = nn::KernelTier::kInt8;
  const transdas::TransDasDetector reference(&model, ref_opts);
  const transdas::TransDasDetector vectorized(&model, vec_opts);
  const transdas::TransDasDetector quantized(&model, int8_opts);

  int64_t ops = 0, int8_flag_matches = 0, int8_session_matches = 0;
  int64_t sessions = 0;
  for (const eval::LabeledSet& set : dataset.TestSets()) {
    for (const std::vector<int>& keys : set.sessions) {
      for (int threads : {1, 4}) {
        util::SetNumThreads(threads);
        const transdas::SessionVerdict expected = reference.DetectSession(keys);
        ExpectVerdictExact(expected, vectorized.DetectSession(keys));
        if (threads != 1) continue;
        const transdas::SessionVerdict q = quantized.DetectSession(keys);
        ASSERT_EQ(expected.operations.size(), q.operations.size());
        ++sessions;
        if (expected.abnormal == q.abnormal) ++int8_session_matches;
        for (size_t i = 0; i < expected.operations.size(); ++i) {
          ++ops;
          if (expected.operations[i].abnormal == q.operations[i].abnormal) {
            ++int8_flag_matches;
          }
        }
      }
      util::SetNumThreads(1);
    }
  }
  ASSERT_GT(ops, 0);
  EXPECT_GE(static_cast<double>(int8_flag_matches) / ops, 0.98)
      << int8_flag_matches << "/" << ops << " operation flags agree";
  EXPECT_GE(static_cast<double>(int8_session_matches) / sessions, 0.9)
      << int8_session_matches << "/" << sessions << " session flags agree";
}

// ---------- Metrics ----------

TEST(KernelTierMetricsTest, PublishesTierAndQuantSeries) {
  transdas::TransDasConfig config;
  config.vocab_size = 16;
  config.window = 6;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 1;
  util::Rng rng(17);
  transdas::TransDasModel model(config, &rng);
  transdas::DetectorOptions vec_opts;
  vec_opts.kernel_tier = nn::KernelTier::kVectorized;
  transdas::DetectorOptions int8_opts;
  int8_opts.kernel_tier = nn::KernelTier::kInt8;
  const transdas::TransDasDetector vectorized(&model, vec_opts);
  const transdas::TransDasDetector quantized(&model, int8_opts);
  util::Rng wrng(18);
  const std::vector<int> keys = RandomSession(config, 2 * config.window, &wrng);
  vectorized.DetectSession(keys);
  quantized.DetectSession(keys);

  obs::MetricsRegistry registry;
  nn::PublishInferMetrics(&registry);
  EXPECT_GE(registry
                .GetCounter("nn/infer/tier_forwards_total",
                            {{"tier", "vectorized"}})
                ->Value(),
            1u);
  EXPECT_GE(registry
                .GetCounter("nn/infer/tier_forwards_total", {{"tier", "int8"}})
                ->Value(),
            1u);
  EXPECT_GE(registry.GetCounter("nn/infer/int8_gemm_rows_total")->Value(), 1u);
  // The int8 detector ran last on this thread's pool, but another test may
  // have run since; the gauge only promises a valid tier code.
  const double tier = registry.GetGauge("nn/infer/kernel_tier")->Value();
  EXPECT_GE(tier, 0.0);
  EXPECT_LE(tier, 2.0);
  const double isa = registry.GetGauge("nn/infer/simd_isa")->Value();
  EXPECT_GE(isa, 0.0);
  EXPECT_LE(isa, 2.0);
  EXPECT_GT(registry.GetGauge("nn/infer/quant_weight_max_abs_err")->Value(),
            0.0);
  EXPECT_GT(registry.GetGauge("nn/infer/quant_act_max_abs_err")->Value(), 0.0);
}

}  // namespace
}  // namespace ucad
