#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace ucad::obs {
namespace {

// ---------- JSON parser ----------

TEST(ParseJsonTest, ParsesScalarsArraysObjects) {
  auto v = ParseJson(R"({"a": [1, 2.5, -3e2], "b": {"c": "x\n"}, "d": true,
                         "e": null})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type, JsonValue::Type::kObject);
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  const JsonValue* b = v->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->Find("c")->string_value, "x\n");
  EXPECT_TRUE(v->Find("d")->bool_value);
  EXPECT_EQ(v->Find("e")->type, JsonValue::Type::kNull);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("{'a':1}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

// ---------- Snapshot loading ----------

/// JSONL fixture mimicking a bench_<slug>.json / --metrics-out dump.
std::string DemoJsonl(double epoch_min) {
  std::ostringstream os;
  os << R"({"name":"nn/tape_ops_total","labels":{},"type":"counter","value":42})"
     << "\n";
  os << R"({"name":"eval/train_seconds","labels":{"method":"DeepLog"},"type":"gauge","value":1.5})"
     << "\n";
  os << R"({"name":"trainer/epoch_ms","labels":{},"type":"histogram",)"
     << R"("count":3,"sum":9.0,"min":)" << epoch_min
     << R"(,"max":4.0,"mean":3.0,"p50":3.0,"p90":3.9,"p99":4.0,"buckets":[]})"
     << "\n";
  return os.str();
}

TEST(ParseSnapshotTest, LoadsJsonlSeries) {
  auto snap = ParseSnapshot(DemoJsonl(2.0));
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->size(), 3u);
  ASSERT_TRUE(snap->count("nn/tape_ops_total"));
  EXPECT_DOUBLE_EQ(snap->at("nn/tape_ops_total").Statistic(), 42.0);
  // Labels become part of the series key.
  ASSERT_TRUE(snap->count("eval/train_seconds{method=DeepLog}"));
  // Histograms compare on `min`, not mean or sum.
  ASSERT_TRUE(snap->count("trainer/epoch_ms"));
  EXPECT_DOUBLE_EQ(snap->at("trainer/epoch_ms").Statistic(), 2.0);
}

TEST(ParseSnapshotTest, LoadsMetricsArrayFromManifest) {
  // A manifest is one JSON object with the registry snapshot under
  // "metrics"; ParseSnapshot must accept it interchangeably with JSONL.
  RunManifest manifest("unit_test");
  manifest.SetSeed(7);
  std::ostringstream os;
  MetricsRegistry& reg = DefaultMetrics();
  reg.GetCounter("snapshot_test/manifest_counter")->Increment(5);
  manifest.Write(os);
  auto snap = ParseSnapshot(os.str());
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(snap->count("snapshot_test/manifest_counter"));
  EXPECT_DOUBLE_EQ(snap->at("snapshot_test/manifest_counter").value, 5.0);
}

TEST(ParseSnapshotTest, RejectsGarbage) {
  EXPECT_FALSE(ParseSnapshot("not json at all\n").ok());
}

// ---------- Manifest document ----------

TEST(RunManifestTest, WritesValidJsonWithProvenance) {
  RunManifest manifest("unit_test");
  manifest.SetCommandLine({"unit_test", "--flag"});
  manifest.SetSeed(1234);
  manifest.SetConfigText("epochs=4;hidden=16");
  manifest.AddNote("peak_live_tensor_bytes", "40000");
  std::ostringstream os;
  manifest.Write(os);
  auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("tool")->string_value, "unit_test");
  EXPECT_FALSE(doc->Find("git_sha")->string_value.empty());
  EXPECT_DOUBLE_EQ(doc->Find("seed")->number, 1234.0);
  EXPECT_NE(doc->Find("config_hash"), nullptr);
  ASSERT_NE(doc->Find("hardware"), nullptr);
  EXPECT_GT(doc->Find("hardware")->Find("hardware_concurrency")->number, 0.0);
  EXPECT_GE(doc->Find("peak_rss_bytes")->number, 0.0);
  EXPECT_GE(doc->Find("wall_seconds")->number, 0.0);
  ASSERT_NE(doc->Find("notes"), nullptr);
  EXPECT_EQ(doc->Find("notes")->Find("peak_live_tensor_bytes")->string_value,
            "40000");
  EXPECT_EQ(doc->Find("metrics")->type, JsonValue::Type::kArray);
}

TEST(RunManifestTest, ConfigHashIsStable) {
  EXPECT_EQ(Fnv1aHash64("epochs=4"), Fnv1aHash64("epochs=4"));
  EXPECT_NE(Fnv1aHash64("epochs=4"), Fnv1aHash64("epochs=5"));
}

// ---------- Classification / merge ----------

TEST(ClassifyMetricTest, TimingSuffixesAndCounters) {
  EXPECT_EQ(ClassifyMetric("trainer/epoch_ms", "histogram"),
            MetricClass::kTiming);
  EXPECT_EQ(ClassifyMetric("eval/train_seconds", "gauge"),
            MetricClass::kTiming);
  EXPECT_EQ(ClassifyMetric("detector/score_latency_ms", "histogram"),
            MetricClass::kTiming);
  EXPECT_EQ(ClassifyMetric("nn/tape_ops_total", "counter"),
            MetricClass::kCount);
  EXPECT_EQ(ClassifyMetric("eval/f1", "gauge"), MetricClass::kOther);
}

TEST(MergeMinOfNTest, KeepsMinimumTimingAcrossRuns) {
  auto run1 = ParseSnapshot(DemoJsonl(3.0));
  auto run2 = ParseSnapshot(DemoJsonl(1.5));
  auto run3 = ParseSnapshot(DemoJsonl(2.5));
  ASSERT_TRUE(run1.ok() && run2.ok() && run3.ok());
  const Snapshot merged = MergeMinOfN({*run1, *run2, *run3});
  EXPECT_DOUBLE_EQ(merged.at("trainer/epoch_ms").Statistic(), 1.5);
  // Non-timing series keep their first-run value.
  EXPECT_DOUBLE_EQ(merged.at("nn/tape_ops_total").Statistic(), 42.0);
}

// ---------- Comparison gate ----------

TEST(CompareSnapshotsTest, IdenticalSnapshotsPass) {
  auto snap = ParseSnapshot(DemoJsonl(2.0));
  ASSERT_TRUE(snap.ok());
  const CompareOptions options;
  const CompareReport report = CompareSnapshots(*snap, *snap, options);
  EXPECT_TRUE(report.Ok(options));
  EXPECT_TRUE(report.regressions.empty());
  EXPECT_EQ(report.compared, 3);
  EXPECT_NE(report.Format(options).find("no regressions"),
            std::string::npos);
}

TEST(CompareSnapshotsTest, TimingRegressionBeyondToleranceFails) {
  auto baseline = ParseSnapshot(DemoJsonl(2.0));
  auto candidate = ParseSnapshot(DemoJsonl(4.0));  // 2x slower epoch min
  ASSERT_TRUE(baseline.ok() && candidate.ok());
  const CompareOptions options;  // +25% tolerance, 0.5ms floor
  const CompareReport report =
      CompareSnapshots(*baseline, *candidate, options);
  EXPECT_FALSE(report.Ok(options));
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].series, "trainer/epoch_ms");
  EXPECT_NEAR(report.regressions[0].rel_change, 1.0, 1e-9);
  const std::string text = report.Format(options);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("trainer/epoch_ms"), std::string::npos);
}

TEST(CompareSnapshotsTest, AbsFloorSuppressesMicroRegressions) {
  // 0.1ms -> 0.3ms is +200% but only +0.2ms: below the floor, not a
  // regression. This is what keeps scheduler noise out of the CI gate.
  auto baseline = ParseSnapshot(DemoJsonl(0.1));
  auto candidate = ParseSnapshot(DemoJsonl(0.3));
  ASSERT_TRUE(baseline.ok() && candidate.ok());
  const CompareOptions options;
  EXPECT_TRUE(CompareSnapshots(*baseline, *candidate, options).Ok(options));
  CompareOptions tight = options;
  tight.abs_floor_ms = 0.05;
  EXPECT_FALSE(CompareSnapshots(*baseline, *candidate, tight).Ok(tight));
}

TEST(CompareSnapshotsTest, ImprovementsReportedNotFailed) {
  auto baseline = ParseSnapshot(DemoJsonl(4.0));
  auto candidate = ParseSnapshot(DemoJsonl(2.0));
  ASSERT_TRUE(baseline.ok() && candidate.ok());
  const CompareOptions options;
  const CompareReport report =
      CompareSnapshots(*baseline, *candidate, options);
  EXPECT_TRUE(report.Ok(options));
  ASSERT_EQ(report.improvements.size(), 1u);
  EXPECT_EQ(report.improvements[0].series, "trainer/epoch_ms");
}

TEST(CompareSnapshotsTest, MissingSeriesGatedByOption) {
  auto baseline = ParseSnapshot(DemoJsonl(2.0));
  ASSERT_TRUE(baseline.ok());
  Snapshot candidate = *baseline;
  candidate.erase("trainer/epoch_ms");
  CompareOptions options;
  CompareReport report = CompareSnapshots(*baseline, candidate, options);
  EXPECT_TRUE(report.Ok(options));  // informational by default
  ASSERT_EQ(report.missing_in_candidate.size(), 1u);
  options.fail_on_missing = true;
  report = CompareSnapshots(*baseline, candidate, options);
  EXPECT_FALSE(report.Ok(options));
}

TEST(CompareSnapshotsTest, CountersGatedOnlyWhenRequested) {
  auto baseline = ParseSnapshot(DemoJsonl(2.0));
  auto candidate = ParseSnapshot(DemoJsonl(2.0));
  ASSERT_TRUE(baseline.ok() && candidate.ok());
  candidate->at("nn/tape_ops_total").value = 43.0;  // count drifted
  CompareOptions options;
  EXPECT_TRUE(CompareSnapshots(*baseline, *candidate, options).Ok(options));
  options.check_counters = true;
  const CompareReport report =
      CompareSnapshots(*baseline, *candidate, options);
  EXPECT_FALSE(report.Ok(options));
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].series, "nn/tape_ops_total");
}

// ---------- Windowed snapshot delta ----------

MetricSample CounterSample(const std::string& series, double value) {
  MetricSample s;
  s.name = series;
  s.series = series;
  s.type = "counter";
  s.value = value;
  return s;
}

MetricSample GaugeSample(const std::string& series, double value) {
  MetricSample s = CounterSample(series, value);
  s.type = "gauge";
  return s;
}

MetricSample HistogramSample(const std::string& series, double count,
                             double sum) {
  MetricSample s;
  s.name = series;
  s.series = series;
  s.type = "histogram";
  s.count = count;
  s.sum = sum;
  s.min = 0.1;
  s.max = 9.0;
  s.mean = count > 0 ? sum / count : 0.0;
  s.p50 = 1.0;
  s.p90 = 5.0;
  s.p99 = 8.0;
  return s;
}

TEST(SubtractSnapshotsTest, CountersSubtractAndClampAtZero) {
  Snapshot earlier, later;
  earlier["a_total"] = CounterSample("a_total", 10.0);
  later["a_total"] = CounterSample("a_total", 35.0);
  // Restarted process: the later scrape is BELOW the earlier baseline.
  earlier["b_total"] = CounterSample("b_total", 100.0);
  later["b_total"] = CounterSample("b_total", 3.0);
  const Snapshot delta = SubtractSnapshots(later, earlier);
  EXPECT_DOUBLE_EQ(delta.at("a_total").value, 25.0);
  EXPECT_DOUBLE_EQ(delta.at("b_total").value, 0.0);
}

TEST(SubtractSnapshotsTest, GaugesKeepLaterInstantaneousValue) {
  Snapshot earlier, later;
  earlier["rate"] = GaugeSample("rate", 0.9);
  later["rate"] = GaugeSample("rate", 0.2);
  const Snapshot delta = SubtractSnapshots(later, earlier);
  EXPECT_DOUBLE_EQ(delta.at("rate").value, 0.2);
}

TEST(SubtractSnapshotsTest, HistogramsSubtractCountAndSum) {
  Snapshot earlier, later;
  earlier["lat_ms"] = HistogramSample("lat_ms", 10.0, 40.0);
  later["lat_ms"] = HistogramSample("lat_ms", 16.0, 58.0);
  const Snapshot delta = SubtractSnapshots(later, earlier);
  EXPECT_DOUBLE_EQ(delta.at("lat_ms").count, 6.0);
  EXPECT_DOUBLE_EQ(delta.at("lat_ms").sum, 18.0);
  // Mean is recomputed from the window; the summary-only distribution
  // stats cannot be subtracted and are zeroed.
  EXPECT_DOUBLE_EQ(delta.at("lat_ms").mean, 3.0);
  EXPECT_DOUBLE_EQ(delta.at("lat_ms").p99, 0.0);
  EXPECT_DOUBLE_EQ(delta.at("lat_ms").max, 0.0);
}

TEST(SubtractSnapshotsTest, HistogramRestartClampsToEmptyNotUnderflow) {
  // The later snapshot carries fewer observations than the earlier one:
  // the producing process restarted, so the delta must clamp to an empty
  // histogram — a negative or wrapped count would poison every consumer.
  Snapshot earlier, later;
  earlier["lat_ms"] = HistogramSample("lat_ms", 1000.0, 5000.0);
  later["lat_ms"] = HistogramSample("lat_ms", 4.0, 2.0);
  const Snapshot delta = SubtractSnapshots(later, earlier);
  EXPECT_DOUBLE_EQ(delta.at("lat_ms").count, 0.0);
  EXPECT_DOUBLE_EQ(delta.at("lat_ms").sum, 0.0);
  EXPECT_DOUBLE_EQ(delta.at("lat_ms").mean, 0.0);
  EXPECT_DOUBLE_EQ(delta.at("lat_ms").p50, 0.0);
}

TEST(SubtractSnapshotsTest, SeriesBornInsideWindowPassThrough) {
  Snapshot earlier, later;
  later["new_total"] = CounterSample("new_total", 7.0);
  later["new_ms"] = HistogramSample("new_ms", 3.0, 9.0);
  const Snapshot delta = SubtractSnapshots(later, earlier);
  EXPECT_DOUBLE_EQ(delta.at("new_total").value, 7.0);
  EXPECT_DOUBLE_EQ(delta.at("new_ms").count, 3.0);
}

}  // namespace
}  // namespace ucad::obs
