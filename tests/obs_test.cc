#include <atomic>
#include <cctype>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ucad::obs {
namespace {

// ---------- Minimal JSON well-formedness checker ----------
//
// Recursive-descent validator (no DOM): enough to prove the JSONL and
// Chrome-trace exports are parseable by a real JSON parser, without
// adding a dependency.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          if (pos_ + 4 >= s_.size()) return false;
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               s_[pos_ - 1]));
  }

  bool Literal(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":\"x\\n\"}}"));
  EXPECT_TRUE(IsValidJson("[]"));
  EXPECT_FALSE(IsValidJson("{\"a\":}"));
  EXPECT_FALSE(IsValidJson("{\"a\":1,}"));
  EXPECT_FALSE(IsValidJson("{'a':1}"));
  EXPECT_FALSE(IsValidJson("{\"a\":1} extra"));
}

// ---------- Counter / Gauge ----------

TEST(CounterTest, IncrementAndValue) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test/events");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(CounterTest, SameNameSameInstance) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.GetCounter("test/x"), reg.GetCounter("test/x"));
  EXPECT_NE(reg.GetCounter("test/x"), reg.GetCounter("test/y"));
  EXPECT_EQ(reg.Size(), 2u);
}

TEST(GaugeTest, SetAddValue) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("test/level");
  g->Set(1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 1.5);
  g->Add(0.25);
  EXPECT_DOUBLE_EQ(g->Value(), 1.75);
  g->Set(-3.0);
  EXPECT_DOUBLE_EQ(g->Value(), -3.0);
}

// ---------- Labels ----------

TEST(LabelsTest, DistinctLabelValuesAreDistinctSeries) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("runs", {{"method", "DeepLog"}});
  Counter* b = reg.GetCounter("runs", {{"method", "USAD"}});
  EXPECT_NE(a, b);
  a->Increment();
  EXPECT_EQ(a->Value(), 1u);
  EXPECT_EQ(b->Value(), 0u);
}

TEST(LabelsTest, LabelOrderDoesNotMatter) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("runs", {{"x", "1"}, {"y", "2"}});
  Counter* b = reg.GetCounter("runs", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.Size(), 1u);
}

TEST(LabelsTest, LabeledAndUnlabeledAreDistinct) {
  MetricsRegistry reg;
  EXPECT_NE(reg.GetCounter("runs"), reg.GetCounter("runs", {{"m", "a"}}));
}

// ---------- Histogram ----------

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(500.0);  // overflow bucket
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
  EXPECT_DOUBLE_EQ(h.Max(), 500.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 555.5 / 4);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.OverflowCount(), 1u);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h({1.0});
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, PercentilesAreOrderedAndBracketed) {
  Histogram h(Histogram::DefaultLatencyBounds());
  for (int i = 1; i <= 1000; ++i) h.Observe(i * 0.1);  // 0.1 .. 100
  const double p50 = h.Percentile(0.50);
  const double p90 = h.Percentile(0.90);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, h.Min());
  EXPECT_LE(p99, h.Max());
  // True p50 is ~50: the fixed 1-2.5-5 ladder puts it in the (25, 50]
  // bucket; interpolation should land the estimate in a sane range.
  EXPECT_GT(p50, 10.0);
  EXPECT_LT(p50, 60.0);
  EXPECT_GT(p99, 50.0);
}

TEST(HistogramTest, PercentileOfUniformValue) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.Observe(3.0);
  // All mass in one bucket; min == max == 3 pins the interpolation.
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 3.0);
}

TEST(HistogramTest, PercentileEdgeQuantiles) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.7);
  h.Observe(5.0);
  h.Observe(42.0);
  // q=0 must answer the exact smallest observation — not a bucket lower
  // bound above it — and q=1 the exact largest.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.7);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 42.0);
}

TEST(HistogramTest, PercentileClampsOutOfRangeQ) {
  Histogram h({1.0, 10.0});
  h.Observe(0.5);
  h.Observe(8.0);
  EXPECT_DOUBLE_EQ(h.Percentile(-0.3), h.Percentile(0.0));
  EXPECT_DOUBLE_EQ(h.Percentile(-0.3), 0.5);
  EXPECT_DOUBLE_EQ(h.Percentile(1.7), h.Percentile(1.0));
  EXPECT_DOUBLE_EQ(h.Percentile(1.7), 8.0);
}

TEST(HistogramTest, PercentileSingleObservation) {
  Histogram h({1.0, 10.0});
  h.Observe(3.0);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 3.0) << "q=" << q;
  }
}

// ---------- Concurrency ----------

TEST(ConcurrencyTest, CountersFromManyThreads) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg]() {
      // Each thread resolves the series itself: exercises the registry
      // lock as well as the counter atomics.
      Counter* c = reg.GetCounter("test/concurrent");
      Histogram* h = reg.GetHistogram("test/latency", {}, {1.0, 10.0});
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        h->Observe(i % 20);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("test/concurrent")->Value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.GetHistogram("test/latency")->Count(),
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ConcurrencyTest, RegistryCreationRace) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<Counter*> seen[kThreads];
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t]() {
      seen[t].store(reg.GetCounter("test/raced", {{"k", "v"}}));
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t].load(), seen[0].load());
  }
  EXPECT_EQ(reg.Size(), 1u);
}

// ---------- JSONL export ----------

TEST(JsonlExportTest, EveryLineParsesAndCarriesExpectedFields) {
  MetricsRegistry reg;
  reg.GetCounter("app/events", {{"kind", "write\"quoted\""}})->Increment(7);
  reg.GetGauge("app/ratio")->Set(0.25);
  Histogram* h = reg.GetHistogram("app/latency_ms");
  h->Observe(0.5);
  h->Observe(3.0);

  std::ostringstream os;
  reg.WriteJsonl(os);
  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_TRUE(IsValidJson(line)) << "invalid JSONL line: " << line;
    if (line.find("\"type\":\"counter\"") != std::string::npos) {
      saw_counter = true;
      EXPECT_NE(line.find("\"value\":7"), std::string::npos);
      EXPECT_NE(line.find("write\\\"quoted\\\""), std::string::npos);
    }
    if (line.find("\"type\":\"gauge\"") != std::string::npos) {
      saw_gauge = true;
      EXPECT_NE(line.find("0.25"), std::string::npos);
    }
    if (line.find("\"type\":\"histogram\"") != std::string::npos) {
      saw_histogram = true;
      EXPECT_NE(line.find("\"count\":2"), std::string::npos);
      EXPECT_NE(line.find("\"p50\""), std::string::npos);
      EXPECT_NE(line.find("\"buckets\""), std::string::npos);
    }
  }
  EXPECT_EQ(lines, 3);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
}

TEST(JsonlExportTest, ClearEmptiesRegistry) {
  MetricsRegistry reg;
  reg.GetCounter("x")->Increment();
  reg.Clear();
  EXPECT_EQ(reg.Size(), 0u);
  std::ostringstream os;
  reg.WriteJsonl(os);
  EXPECT_TRUE(os.str().empty());
}

// ---------- Trace spans ----------

/// Serializes tests that toggle the global trace state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClearTrace();
    SetTraceEnabled(true);
  }
  void TearDown() override {
    SetTraceEnabled(false);
    ClearTrace();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  SetTraceEnabled(false);
  { UCAD_TRACE_SPAN("unseen"); }
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST_F(TraceTest, NestedSpansAreRecorded) {
  {
    UCAD_TRACE_SPAN("outer");
    {
      UCAD_TRACE_SPAN("inner");
    }
    { UCAD_TRACE_SPAN("inner2"); }
  }
  EXPECT_EQ(TraceEventCount(), 3u);
  std::ostringstream os;
  WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  // Inner spans complete (and are recorded) before the outer span.
  const size_t outer = json.find("\"outer\"");
  const size_t inner = json.find("\"inner\"");
  ASSERT_NE(outer, std::string::npos);
  ASSERT_NE(inner, std::string::npos);
  EXPECT_LT(inner, outer);
}

TEST_F(TraceTest, SpanHalfOpenAtDisableStillSafe) {
  // A span constructed while tracing is on records even if tracing is
  // turned off mid-span (name_ was latched); one constructed while off
  // records nothing even if tracing turns on before destruction.
  {
    UCAD_TRACE_SPAN("latched");
    SetTraceEnabled(false);
  }
  EXPECT_EQ(TraceEventCount(), 1u);
  {
    UCAD_TRACE_SPAN("missed");
    SetTraceEnabled(true);
  }
  EXPECT_EQ(TraceEventCount(), 1u);
}

TEST_F(TraceTest, ChromeTraceShapeAndThreads) {
  { UCAD_TRACE_SPAN("main_thread"); }
  std::thread t([]() { UCAD_TRACE_SPAN("worker_thread"); });
  t.join();
  EXPECT_EQ(TraceEventCount(), 2u);

  std::ostringstream os;
  WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // The two spans ran on different threads and must carry different tids.
  const size_t first_tid = json.find("\"tid\":");
  const size_t second_tid = json.find("\"tid\":", first_tid + 1);
  ASSERT_NE(second_tid, std::string::npos);
  EXPECT_NE(json.substr(first_tid, json.find(',', first_tid) - first_tid),
            json.substr(second_tid, json.find(',', second_tid) - second_tid));
}

TEST_F(TraceTest, ConcurrentSpansFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([]() {
      for (int i = 0; i < kSpans; ++i) {
        UCAD_TRACE_SPAN("stress");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(TraceEventCount(), static_cast<size_t>(kThreads) * kSpans);
  std::ostringstream os;
  WriteChromeTrace(os);
  EXPECT_TRUE(IsValidJson(os.str()));
}

// ---------- Global toggles ----------

TEST(MetricsEnabledTest, ToggleRoundTrips) {
  EXPECT_TRUE(MetricsEnabled());  // default on
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
}

}  // namespace
}  // namespace ucad::obs
