#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace ucad::util {
namespace {

// ---------- Lifecycle ----------

TEST(ThreadPoolTest, ConstructsAndJoinsCleanly) {
  for (int n : {1, 2, 4, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
  // Destructor ran for each pool without hanging; nothing to assert beyond
  // getting here.
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, DestructorJoinsIdleWorkers) {
  // A pool that never ran a job must still shut down (workers are parked
  // on the condition variable, not spinning).
  auto pool = std::make_unique<ThreadPool>(4);
  pool.reset();
}

// ---------- ParallelFor correctness ----------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10007;  // prime: exercises a ragged tail chunk
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, /*grain=*/64, [&hits](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHonorsNonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, 200, /*grain=*/7, [&sum](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  int64_t expected = 0;
  for (int64_t i = 100; i < 200; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, EmptyAndSingleElementRanges) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&calls](int64_t, int64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(7, 6, 1, [&calls](int64_t, int64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(5, 6, 1, [&calls](int64_t b, int64_t e) {
    EXPECT_EQ(b, 5);
    EXPECT_EQ(e, 6);
    calls++;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfScheduling) {
  // The chunk partition must be a pure function of (begin, end, grain,
  // lanes): run the same loop many times and record the set of [b, e)
  // pairs each run produces.
  ThreadPool pool(4);
  std::vector<std::pair<int64_t, int64_t>> first;
  for (int run = 0; run < 20; ++run) {
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    pool.ParallelFor(0, 1000, /*grain=*/100,
                     [&mu, &chunks](int64_t b, int64_t e) {
                       std::lock_guard<std::mutex> lock(mu);
                       chunks.emplace_back(b, e);
                     });
    std::sort(chunks.begin(), chunks.end());
    if (run == 0) {
      first = chunks;
    } else {
      ASSERT_EQ(chunks, first) << "run " << run;
    }
  }
}

// ---------- Serial equivalence at n == 1 ----------

TEST(ThreadPoolTest, SingleThreadRunsInlineAsOneChunk) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(0, 1000, /*grain=*/10,
                   [&calls, caller](int64_t b, int64_t e) {
                     EXPECT_EQ(std::this_thread::get_id(), caller);
                     EXPECT_EQ(b, 0);
                     EXPECT_EQ(e, 1000);
                     ++calls;
                   });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SerialAndParallelSumsMatchExactly) {
  // Integer accumulation per chunk then ordered merge: identical for any
  // lane count because the chunk layout is lane-count-deterministic only
  // in [b, e) content, and integer addition is associative.
  auto run = [](ThreadPool* pool) {
    constexpr int64_t kN = 4096;
    std::vector<int64_t> values(kN);
    std::iota(values.begin(), values.end(), 1);
    std::atomic<int64_t> sum{0};
    pool->ParallelFor(0, kN, 128, [&](int64_t b, int64_t e) {
      int64_t local = 0;
      for (int64_t i = b; i < e; ++i) local += values[i] * values[i];
      sum.fetch_add(local);
    });
    return sum.load();
  };
  ThreadPool serial(1);
  ThreadPool parallel(4);
  EXPECT_EQ(run(&serial), run(&parallel));
}

// ---------- Exception propagation ----------

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000, 1,
                       [](int64_t b, int64_t) {
                         if (b == 500) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, PoolUsableAfterException) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(0, 100, 1, [](int64_t, int64_t) {
      throw std::logic_error("first");
    });
  } catch (const std::logic_error&) {
  }
  // All chunks drained despite the throw; the next loop must run normally.
  std::atomic<int64_t> count{0};
  pool.ParallelFor(0, 100, 1, [&count](int64_t b, int64_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 100);
}

// ---------- Nested submission (deadlock guard) ----------

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int64_t> inner_total{0};
  pool.ParallelFor(0, 8, 1, [&pool, &inner_total](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      EXPECT_TRUE(ThreadPool::InParallelRegion());
      // Re-entrant call: must execute inline as a single chunk instead of
      // queueing behind the outer job (which would deadlock a full pool).
      int calls = 0;
      pool.ParallelFor(0, 100, 1, [&](int64_t ib, int64_t ie) {
        ++calls;
        inner_total.fetch_add(ie - ib);
      });
      EXPECT_EQ(calls, 1);
    }
  });
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  EXPECT_EQ(inner_total.load(), 8 * 100);
}

TEST(ThreadPoolTest, ConcurrentCallersBothComplete) {
  // Two external threads drive the same pool at once; both loops must
  // finish with full coverage (jobs share the worker set).
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  auto drive = [&pool, &total] {
    for (int r = 0; r < 20; ++r) {
      pool.ParallelFor(0, 1000, 10, [&total](int64_t b, int64_t e) {
        total.fetch_add(e - b);
      });
    }
  };
  std::thread a(drive), b(drive);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 20 * 1000);
}

// ---------- Stats ----------

TEST(ThreadPoolTest, StatsCountChunksAndWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.Stats().tasks_total, 0u);
  EXPECT_EQ(pool.Stats().worker_busy_ns.size(), 2u);  // lanes - caller
  pool.ParallelFor(0, 300, 1, [](int64_t, int64_t) {});
  const ThreadPoolStats stats = pool.Stats();
  EXPECT_GE(stats.tasks_total, 1u);
  EXPECT_LE(stats.tasks_total, 3u);  // at most one chunk per lane
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_GE(stats.max_queue_depth, 1);
}

// ---------- Global pool ----------

TEST(GlobalThreadPoolTest, SetNumThreadsRebuildsPool) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  EXPECT_EQ(GlobalThreadPool().num_threads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
  EXPECT_EQ(GlobalThreadPool().num_threads(), 1);
}

TEST(GlobalThreadPoolTest, FreeParallelForUsesGlobalPool) {
  SetNumThreads(4);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 1000, 10, [&sum](int64_t b, int64_t e) {
    sum.fetch_add(e - b);
  });
  EXPECT_EQ(sum.load(), 1000);
  SetNumThreads(1);
}

}  // namespace
}  // namespace ucad::util
