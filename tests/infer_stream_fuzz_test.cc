// Fuzz-style randomized session-stream harness for the incremental/batched
// scoring tier: many sessions with random lengths, resets, unknown keys,
// and out-of-order arrival are interleaved through a SHARED detector (whose
// context pool shuffles slide caches across sessions), and every session's
// verdict sequence must match a clean serial replay on a from-scratch
// reference detector. The concurrent variants run under TSan in CI
// (UCAD_SANITIZE=thread, UCAD_THREADS=4).

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ucad {
namespace {

transdas::TransDasConfig FuzzConfig() {
  transdas::TransDasConfig config;
  config.vocab_size = 19;
  config.window = 6;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 2;
  return config;
}

/// A session plus its streaming state inside the interleaved run.
struct Stream {
  std::vector<int> keys;
  size_t pos = 0;
  std::vector<transdas::OperationVerdict> verdicts;
};

std::vector<Stream> RandomStreams(int count, int vocab, int max_len,
                                  util::Rng* rng) {
  std::vector<Stream> streams(count);
  for (Stream& s : streams) {
    s.keys.resize(1 + rng->UniformU64(max_len));
    for (int& key : s.keys) {
      const uint64_t pick = rng->UniformU64(16);
      if (pick == 0) {
        key = -7;  // unknown: negative
      } else if (pick == 1) {
        key = vocab + static_cast<int>(rng->UniformU64(3));  // unknown: high
      } else {
        key = static_cast<int>(rng->UniformU64(vocab));
      }
    }
  }
  return streams;
}

void ExpectOperationEqual(const transdas::OperationVerdict& a,
                          const transdas::OperationVerdict& b) {
  ASSERT_EQ(a.rank, b.rank);
  ASSERT_EQ(a.abnormal, b.abnormal);
  ASSERT_EQ(a.score, b.score);
  ASSERT_EQ(a.margin, b.margin);
}

/// Serially replays `keys` on `reference` and checks the recorded verdicts.
void ExpectMatchesSerialReplay(const transdas::TransDasDetector& reference,
                               const Stream& s) {
  ASSERT_EQ(s.verdicts.size(), s.keys.size());
  for (size_t i = 0; i < s.keys.size(); ++i) {
    const std::vector<int> preceding(s.keys.begin(), s.keys.begin() + i);
    ExpectOperationEqual(reference.ScoreNextOperation(preceding, s.keys[i]),
                         s.verdicts[i]);
  }
}

class StreamFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamFuzzTest, InterleavedStreamsWithResetsMatchSerialReplay) {
  util::Rng rng(GetParam());
  const transdas::TransDasConfig config = FuzzConfig();
  transdas::TransDasModel model(config, &rng);
  transdas::DetectorOptions opts;
  opts.incremental = true;
  const transdas::TransDasDetector detector(&model, opts);
  const transdas::TransDasDetector reference(&model,
                                             transdas::DetectorOptions{});

  std::vector<Stream> streams =
      RandomStreams(10, config.vocab_size, 25, &rng);
  // Random interleave: at every step pick any unfinished stream and advance
  // it one operation; occasionally reset a stream to position 0 (its
  // recorded run restarts, so the final record is one clean pass). Arrival
  // order across sessions is therefore arbitrary, and the shared context
  // pool hands slide caches primed by OTHER sessions to each call — which
  // may only ever cause cache misses, never different verdicts.
  bool remaining = true;
  while (remaining) {
    remaining = false;
    std::vector<size_t> open;
    for (size_t i = 0; i < streams.size(); ++i) {
      if (streams[i].pos < streams[i].keys.size()) open.push_back(i);
    }
    if (open.empty()) break;
    remaining = true;
    Stream& s = streams[open[rng.UniformU64(open.size())]];
    if (s.pos > 0 && rng.UniformU64(20) == 0) {
      s.pos = 0;
      s.verdicts.clear();
      continue;
    }
    const std::vector<int> preceding(s.keys.begin(), s.keys.begin() + s.pos);
    s.verdicts.push_back(
        detector.ScoreNextOperation(preceding, s.keys[s.pos]));
    ++s.pos;
  }
  for (const Stream& s : streams) {
    ExpectMatchesSerialReplay(reference, s);
  }
}

TEST_P(StreamFuzzTest, ShuffledSessionBatchesMatchPerSessionVerdicts) {
  util::Rng rng(GetParam() + 1000);
  const transdas::TransDasConfig config = FuzzConfig();
  transdas::TransDasModel model(config, &rng);
  transdas::DetectorOptions opts;
  opts.batch_windows = 4;
  const transdas::TransDasDetector batcher(&model, opts);
  const transdas::TransDasDetector reference(&model,
                                             transdas::DetectorOptions{});
  std::vector<Stream> streams =
      RandomStreams(14, config.vocab_size, 30, &rng);
  // Present the sessions in a random order (out-of-order arrival into the
  // cross-session batcher): verdicts must be independent of both ordering
  // and how the spans land in batches.
  std::vector<size_t> order(streams.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.UniformU64(i)]);
  }
  std::vector<std::vector<int>> sessions;
  sessions.reserve(order.size());
  for (size_t idx : order) sessions.push_back(streams[idx].keys);
  const std::vector<transdas::SessionVerdict> verdicts =
      batcher.DetectSessions(sessions);
  ASSERT_EQ(verdicts.size(), sessions.size());
  for (size_t i = 0; i < sessions.size(); ++i) {
    const transdas::SessionVerdict expected =
        reference.DetectSession(sessions[i]);
    ASSERT_EQ(expected.abnormal, verdicts[i].abnormal);
    ASSERT_EQ(expected.operations.size(), verdicts[i].operations.size());
    for (size_t k = 0; k < expected.operations.size(); ++k) {
      ASSERT_EQ(expected.operations[k].position,
                verdicts[i].operations[k].position);
      ExpectOperationEqual(expected.operations[k], verdicts[i].operations[k]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamFuzzTest,
                         ::testing::Values(11u, 29u, 47u));

TEST(StreamFuzzConcurrencyTest, ConcurrentStreamsAndBatchesStayExact) {
  // TSan target: four external threads stream disjoint session sets through
  // ONE shared incremental detector (slide caches migrate between sessions
  // via the context pool) while a fifth hammers the cross-session batcher,
  // all above an active internal pool. Afterwards every recorded verdict
  // must match a clean serial replay — races would show up either as TSan
  // reports or as verdict drift.
  util::SetNumThreads(2);
  util::Rng rng(5);
  const transdas::TransDasConfig config = FuzzConfig();
  transdas::TransDasModel model(config, &rng);
  transdas::DetectorOptions opts;
  opts.incremental = true;
  opts.batch_windows = 3;
  transdas::TransDasDetector detector(&model, opts);

  constexpr int kThreads = 4;
  std::vector<std::vector<Stream>> lanes(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    lanes[t] = RandomStreams(4, config.vocab_size, 18, &rng);
  }
  std::vector<std::vector<int>> batch_sessions;
  for (const Stream& s : RandomStreams(6, config.vocab_size, 20, &rng)) {
    batch_sessions.push_back(s.keys);
  }

  std::atomic<bool> failed{false};
  auto drive = [&detector, &failed](std::vector<Stream>* streams,
                                    uint64_t seed) {
    util::Rng lane_rng(seed);
    bool remaining = true;
    while (remaining && !failed.load(std::memory_order_relaxed)) {
      remaining = false;
      std::vector<size_t> open;
      for (size_t i = 0; i < streams->size(); ++i) {
        if ((*streams)[i].pos < (*streams)[i].keys.size()) open.push_back(i);
      }
      if (open.empty()) break;
      remaining = true;
      Stream& s = (*streams)[open[lane_rng.UniformU64(open.size())]];
      const std::vector<int> preceding(s.keys.begin(),
                                       s.keys.begin() + s.pos);
      s.verdicts.push_back(
          detector.ScoreNextOperation(preceding, s.keys[s.pos]));
      ++s.pos;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(drive, &lanes[t], 100 + t);
  }
  std::vector<std::vector<transdas::SessionVerdict>> batch_runs(3);
  threads.emplace_back([&detector, &batch_sessions, &batch_runs] {
    for (auto& run : batch_runs) {
      run = detector.DetectSessions(batch_sessions);
    }
  });
  for (std::thread& t : threads) t.join();
  util::SetNumThreads(1);

  const transdas::TransDasDetector reference(&model,
                                             transdas::DetectorOptions{});
  for (const std::vector<Stream>& lane : lanes) {
    for (const Stream& s : lane) {
      ExpectMatchesSerialReplay(reference, s);
    }
  }
  for (const std::vector<transdas::SessionVerdict>& run : batch_runs) {
    ASSERT_EQ(run.size(), batch_sessions.size());
    for (size_t i = 0; i < batch_sessions.size(); ++i) {
      const transdas::SessionVerdict expected =
          reference.DetectSession(batch_sessions[i]);
      ASSERT_EQ(expected.abnormal, run[i].abnormal);
      ASSERT_EQ(expected.operations.size(), run[i].operations.size());
      for (size_t k = 0; k < expected.operations.size(); ++k) {
        ExpectOperationEqual(expected.operations[k], run[i].operations[k]);
      }
    }
  }
}

}  // namespace
}  // namespace ucad
