// Locks down the incremental/batched scoring tier (PR 9): the multi-window
// batched forward and the cross-window slide cache must be bitwise-identical
// to the from-scratch fused engine on every computed row — across configs,
// batch sizes, partial batches, and thread counts — and the detector tiers
// built on them (DetectSessions, batch_windows, incremental streaming) must
// be verdict-identical to the PR 5 paths. Also the weight-version staleness
// contract: a MarkWeightsUpdated landing mid-forward can never mix weight
// versions within one pass.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "nn/infer.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ucad {
namespace {

/// Restores single-thread mode even when a test fails mid-way, so later
/// tests in this binary never inherit a parallel pool unexpectedly.
class ThreadGuard {
 public:
  ~ThreadGuard() { util::SetNumThreads(1); }
};

std::vector<int> RandomWindow(const transdas::TransDasConfig& config,
                              util::Rng* rng) {
  std::vector<int> window(config.window);
  for (int& key : window) {
    key = static_cast<int>(rng->UniformU64(config.vocab_size));
  }
  return window;
}

void ExpectOperationEqual(const transdas::OperationVerdict& a,
                          const transdas::OperationVerdict& b) {
  ASSERT_EQ(a.position, b.position);
  ASSERT_EQ(a.rank, b.rank);
  ASSERT_EQ(a.abnormal, b.abnormal);
  ASSERT_EQ(a.score, b.score);
  ASSERT_EQ(a.margin, b.margin);
}

void ExpectVerdictEqual(const transdas::SessionVerdict& a,
                        const transdas::SessionVerdict& b) {
  ASSERT_EQ(a.abnormal, b.abnormal);
  ASSERT_EQ(a.operations.size(), b.operations.size());
  for (size_t i = 0; i < a.operations.size(); ++i) {
    ExpectOperationEqual(a.operations[i], b.operations[i]);
  }
}

std::vector<transdas::TransDasConfig> ParityConfigs() {
  // Spans window length, head count (incl. non-power-of-two head_dim),
  // depth, mask mode, and the position-embedding ablation (which disables
  // the slide cache but not the batcher).
  std::vector<transdas::TransDasConfig> configs(3);
  configs[0].vocab_size = 20;
  configs[0].window = 6;
  configs[0].hidden_dim = 8;
  configs[0].num_heads = 2;
  configs[0].num_blocks = 1;
  configs[1].vocab_size = 37;
  configs[1].window = 12;
  configs[1].hidden_dim = 15;
  configs[1].num_heads = 3;
  configs[1].num_blocks = 2;
  configs[1].use_position_embedding = true;
  configs[1].mask_mode = transdas::MaskMode::kCausal;
  configs[2].vocab_size = 29;
  configs[2].window = 10;
  configs[2].hidden_dim = 10;
  configs[2].num_heads = 2;
  configs[2].num_blocks = 3;
  return configs;
}

// ---------- Batched forward: bitwise parity with per-window ----------

TEST(BatchedInferTest, BatchedLogitsMatchPerWindowBitwise) {
  ThreadGuard guard;
  util::Rng rng(4242);
  for (const transdas::TransDasConfig& config : ParityConfigs()) {
    transdas::TransDasModel model(config, &rng);
    const int L = config.window;
    nn::InferenceContext ref_ctx;
    nn::InferenceContext batch_ctx;
    for (int B : {1, 3, 5}) {
      // Capacity above B exercises partially filled batches: unused slots
      // must never disturb the occupied rows.
      const int capacity = B + (B % 2);
      std::vector<int> keys;
      std::vector<int> rows_from(B);
      std::vector<std::vector<int>> windows(B);
      for (int b = 0; b < B; ++b) {
        windows[b] = RandomWindow(config, &rng);
        keys.insert(keys.end(), windows[b].begin(), windows[b].end());
        rows_from[b] = static_cast<int>(rng.UniformU64(L));
      }
      // Per-window references (full forwards; computed rows >= rows_from
      // agree bitwise with tail-restricted ones per the PR 5 contract).
      std::vector<nn::Tensor> refs;
      refs.reserve(B);
      for (int b = 0; b < B; ++b) {
        refs.push_back(model.AllKeyLogitsInference(
            &ref_ctx, model.ForwardInference(&ref_ctx, windows[b])));
      }
      for (int threads : {1, 2, 8}) {
        util::SetNumThreads(threads);
        const nn::Tensor& batched = model.AllKeyLogitsInferenceBatched(
            &batch_ctx,
            model.ForwardInferenceBatched(&batch_ctx, keys, rows_from,
                                          capacity),
            rows_from, capacity);
        ASSERT_EQ(batched.rows(), capacity * L);
        for (int b = 0; b < B; ++b) {
          for (int i = rows_from[b]; i < L; ++i) {
            for (int j = 0; j < refs[b].cols(); ++j) {
              ASSERT_EQ(batched.at(b * L + i, j), refs[b].at(i, j))
                  << "B " << B << " window " << b << " at (" << i << ", " << j
                  << ") threads " << threads;
            }
          }
        }
      }
      util::SetNumThreads(1);
    }
  }
}

// ---------- Slide cache: incremental forward bitwise parity ----------

TEST(SlideCacheTest, SlidingForwardMatchesFromScratchBitwise) {
  ThreadGuard guard;
  transdas::TransDasConfig config;
  config.vocab_size = 31;
  config.window = 9;
  config.hidden_dim = 10;
  config.num_heads = 2;
  config.num_blocks = 2;
  util::Rng rng(7);
  transdas::TransDasModel model(config, &rng);
  ASSERT_TRUE(model.SupportsSlideCache());
  const int L = config.window;
  nn::InferenceContext slide_ctx;
  nn::InferenceContext ref_ctx;
  // A sliding stream: each window drops the head key and appends one.
  std::vector<int> window = RandomWindow(config, &rng);
  for (int threads : {1, 2, 8}) {
    util::SetNumThreads(threads);
    for (int step = 0; step < 2 * L; ++step) {
      const nn::Tensor ref = model.AllKeyLogitsInference(
          &ref_ctx, model.ForwardInference(&ref_ctx, window, L - 1), L - 1);
      const nn::Tensor& inc = model.AllKeyLogitsInference(
          &slide_ctx,
          model.ForwardInference(&slide_ctx, window, L - 1, /*slide=*/true),
          L - 1);
      for (int j = 0; j < ref.cols(); ++j) {
        ASSERT_EQ(inc.at(L - 1, j), ref.at(L - 1, j))
            << "step " << step << " col " << j << " threads " << threads;
      }
      window.erase(window.begin());
      window.push_back(static_cast<int>(rng.UniformU64(config.vocab_size)));
    }
  }
}

TEST(SlideCacheTest, HitMissAccountingAndInterleavedSessionsStayExact) {
  transdas::TransDasConfig config;
  config.vocab_size = 17;
  config.window = 5;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 1;
  util::Rng rng(13);
  transdas::TransDasModel model(config, &rng);
  const int L = config.window;
  nn::InferenceContext ctx;
  nn::InferenceContext ref_ctx;
  // Two interleaved sliding streams through ONE context: every alternation
  // breaks the slide chain (a miss), but results must stay exact because
  // validity is keyed by the window keys themselves, not session identity.
  std::vector<std::vector<int>> streams = {RandomWindow(config, &rng),
                                           RandomWindow(config, &rng)};
  const uint64_t hits0 = nn::internal::SlideCacheHitsTotal();
  const uint64_t misses0 = nn::internal::SlideCacheMissesTotal();
  int forwards = 0;
  for (int step = 0; step < 8; ++step) {
    for (std::vector<int>& window : streams) {
      const nn::Tensor ref = model.AllKeyLogitsInference(
          &ref_ctx, model.ForwardInference(&ref_ctx, window, L - 1), L - 1);
      const nn::Tensor& inc = model.AllKeyLogitsInference(
          &ctx, model.ForwardInference(&ctx, window, L - 1, /*slide=*/true),
          L - 1);
      ++forwards;
      for (int j = 0; j < ref.cols(); ++j) {
        ASSERT_EQ(inc.at(L - 1, j), ref.at(L - 1, j));
      }
      window.erase(window.begin());
      window.push_back(static_cast<int>(rng.UniformU64(config.vocab_size)));
    }
  }
  // Every slide-enabled forward notes exactly one hit or miss.
  EXPECT_EQ((nn::internal::SlideCacheHitsTotal() - hits0) +
                (nn::internal::SlideCacheMissesTotal() - misses0),
            static_cast<uint64_t>(forwards));
  // Alternation defeats the cache here, so misses dominate — but none of
  // them may corrupt a row (asserted above). A single-stream control:
  const uint64_t hits1 = nn::internal::SlideCacheHitsTotal();
  std::vector<int>& window = streams[0];
  for (int step = 0; step < 6; ++step) {
    model.ForwardInference(&ctx, window, L - 1, /*slide=*/true);
    window.erase(window.begin());
    window.push_back(static_cast<int>(rng.UniformU64(config.vocab_size)));
  }
  // After the first re-priming forward, every subsequent slide hits.
  EXPECT_GE(nn::internal::SlideCacheHitsTotal() - hits1, 5u);
}

TEST(SlideCacheTest, WeightUpdateInvalidatesCache) {
  transdas::TransDasConfig config;
  config.vocab_size = 19;
  config.window = 6;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 2;
  util::Rng rng(23);
  transdas::TransDasModel model(config, &rng);
  const int L = config.window;
  nn::InferenceContext ctx;
  nn::InferenceContext ref_ctx;
  std::vector<int> window = RandomWindow(config, &rng);
  // Prime the cache, then hot-swap the embedding mid-stream: the stale
  // cached rows must never leak into a post-update forward.
  for (int step = 0; step < 10; ++step) {
    if (step == 4) {
      nn::Tensor& table = model.embedding().table().value();
      for (int i = 1; i < table.rows(); ++i) {
        for (int j = 0; j < table.cols(); ++j) table.at(i, j) += 0.5f;
      }
      model.MarkWeightsUpdated();
    }
    const nn::Tensor ref = model.AllKeyLogitsInference(
        &ref_ctx, model.ForwardInference(&ref_ctx, window, L - 1), L - 1);
    const nn::Tensor& inc = model.AllKeyLogitsInference(
        &ctx, model.ForwardInference(&ctx, window, L - 1, /*slide=*/true),
        L - 1);
    for (int j = 0; j < ref.cols(); ++j) {
      ASSERT_EQ(inc.at(L - 1, j), ref.at(L - 1, j)) << "step " << step;
    }
    window.erase(window.begin());
    window.push_back(static_cast<int>(rng.UniformU64(config.vocab_size)));
  }
}

// ---------- Detector tiers: verdict identity ----------

std::vector<std::vector<int>> RandomSessions(int count, int vocab,
                                             util::Rng* rng) {
  std::vector<std::vector<int>> sessions(count);
  for (std::vector<int>& keys : sessions) {
    const int n = static_cast<int>(rng->UniformU64(40));
    keys.resize(n);
    for (int& key : keys) {
      // Mostly in-vocab, with occasional unknown (negative / >= vocab) keys
      // to exercise sanitization through the batcher.
      const uint64_t pick = rng->UniformU64(20);
      if (pick == 0) {
        key = -3;
      } else if (pick == 1) {
        key = vocab + static_cast<int>(rng->UniformU64(5));
      } else {
        key = static_cast<int>(rng->UniformU64(vocab));
      }
    }
  }
  return sessions;
}

TEST(BatchedDetectorTest, BatchWindowsTierIsVerdictIdentical) {
  ThreadGuard guard;
  transdas::TransDasConfig config;
  config.vocab_size = 25;
  config.window = 7;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 2;
  util::Rng rng(99);
  transdas::TransDasModel model(config, &rng);
  const transdas::TransDasDetector reference(&model,
                                             transdas::DetectorOptions{});
  transdas::DetectorOptions batch_opts;
  batch_opts.batch_windows = 3;
  const transdas::TransDasDetector batcher(&model, batch_opts);
  const std::vector<std::vector<int>> sessions =
      RandomSessions(24, config.vocab_size, &rng);
  for (int threads : {1, 2, 8}) {
    util::SetNumThreads(threads);
    // Per-session batched tier.
    for (const std::vector<int>& keys : sessions) {
      transdas::SessionVerdict expected = reference.DetectSession(keys);
      transdas::SessionVerdict got = batcher.DetectSession(keys);
      ExpectVerdictEqual(expected, got);
    }
    // Cross-session batcher: spans of all sessions packed in input order.
    const std::vector<transdas::SessionVerdict> many =
        batcher.DetectSessions(sessions);
    ASSERT_EQ(many.size(), sessions.size());
    for (size_t s = 0; s < sessions.size(); ++s) {
      ExpectVerdictEqual(reference.DetectSession(sessions[s]), many[s]);
    }
  }
  util::SetNumThreads(1);
  // The fallback (batching disabled) must behave like a per-session loop.
  const std::vector<transdas::SessionVerdict> fallback =
      reference.DetectSessions(sessions);
  for (size_t s = 0; s < sessions.size(); ++s) {
    ExpectVerdictEqual(reference.DetectSession(sessions[s]), fallback[s]);
  }
}

TEST(BatchedDetectorTest, DetectSessionsHandlesDegenerateSessions) {
  transdas::TransDasConfig config;
  config.vocab_size = 15;
  config.window = 6;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 1;
  util::Rng rng(3);
  transdas::TransDasModel model(config, &rng);
  transdas::DetectorOptions opts;
  opts.batch_windows = 4;
  const transdas::TransDasDetector detector(&model, opts);
  // Empty and single-key sessions produce empty verdicts in place without
  // perturbing their scored neighbors.
  const std::vector<std::vector<int>> sessions = {
      {}, {1, 2, 3, 4, 5, 6, 7, 8}, {9}, {2, 3}};
  const std::vector<transdas::SessionVerdict> verdicts =
      detector.DetectSessions(sessions);
  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_TRUE(verdicts[0].operations.empty());
  EXPECT_FALSE(verdicts[0].abnormal);
  EXPECT_EQ(verdicts[1].operations.size(), 7u);
  EXPECT_TRUE(verdicts[2].operations.empty());
  EXPECT_EQ(verdicts[3].operations.size(), 1u);
  ExpectVerdictEqual(detector.DetectSession(sessions[1]), verdicts[1]);
  ExpectVerdictEqual(detector.DetectSession(sessions[3]), verdicts[3]);
}

TEST(IncrementalDetectorTest, StreamingVerdictsIdenticalAcrossTiers) {
  ThreadGuard guard;
  // Covers both the slide-cache path and the position-embedding fallback
  // (SupportsSlideCache() == false → incremental silently scores from
  // scratch, same verdicts either way).
  for (bool with_pe : {false, true}) {
    transdas::TransDasConfig config;
    config.vocab_size = 23;
    config.window = 8;
    config.hidden_dim = 8;
    config.num_heads = 2;
    config.num_blocks = 2;
    config.use_position_embedding = with_pe;
    util::Rng rng(31);
    transdas::TransDasModel model(config, &rng);
    ASSERT_EQ(model.SupportsSlideCache(), !with_pe);
    const transdas::TransDasDetector reference(&model,
                                               transdas::DetectorOptions{});
    transdas::DetectorOptions inc_opts;
    inc_opts.incremental = true;
    const transdas::TransDasDetector incremental(&model, inc_opts);
    for (int threads : {1, 2, 8}) {
      util::SetNumThreads(threads);
      std::vector<int> preceding;
      for (int step = 0; step < 20; ++step) {
        const int next =
            step % 7 == 6
                ? config.vocab_size + 2  // unknown key mid-stream
                : static_cast<int>(rng.UniformU64(config.vocab_size));
        ExpectOperationEqual(reference.ScoreNextOperation(preceding, next),
                             incremental.ScoreNextOperation(preceding, next));
        preceding.push_back(next);
      }
      util::SetNumThreads(1);
    }
  }
}

TEST(IncrementalDetectorTest, MidSessionWeightHotSwapStaysIdentical) {
  transdas::TransDasConfig config;
  config.vocab_size = 21;
  config.window = 6;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 2;
  util::Rng rng(57);
  transdas::TransDasModel model(config, &rng);
  const transdas::TransDasDetector reference(&model,
                                             transdas::DetectorOptions{});
  transdas::DetectorOptions inc_opts;
  inc_opts.incremental = true;
  const transdas::TransDasDetector incremental(&model, inc_opts);
  std::vector<int> preceding;
  for (int step = 0; step < 16; ++step) {
    if (step == 8) {
      // Fine-tune-style hot swap mid-session: both tiers must track the new
      // weights from the very next operation.
      nn::Tensor& table = model.embedding().table().value();
      for (int i = 1; i < table.rows(); ++i) {
        for (int j = 0; j < table.cols(); ++j) table.at(i, j) *= 1.25f;
      }
      model.FreezePaddingRow();  // bumps weight_version
    }
    const int next = static_cast<int>(rng.UniformU64(config.vocab_size));
    ExpectOperationEqual(reference.ScoreNextOperation(preceding, next),
                         incremental.ScoreNextOperation(preceding, next));
    preceding.push_back(next);
  }
}

// ---------- Weight-version staleness: no mixing within one pass ----------

TEST(WeightVersionTest, MidForwardBumpNeverMixesVersionsInOnePass) {
  transdas::TransDasConfig config;
  config.vocab_size = 18;
  config.window = 6;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 2;
  util::Rng rng(71);
  transdas::TransDasModel model(config, &rng);
  const int L = config.window;
  // The last block's first-head wq: Params() pushes, per block, 3 weights
  // per head then wo, 2 layer-norm params, w1, b1, w2, b2, 2 more norm
  // params — so the final block's params are the trailing 3m+9 entries.
  std::vector<nn::Parameter*> params = model.Params();
  const size_t per_block = 3 * config.num_heads + 9;
  nn::Parameter* last_wq = params[params.size() - per_block];
  ASSERT_EQ(last_wq->value().rows(), config.hidden_dim);
  ASSERT_EQ(last_wq->value().cols(),
            config.hidden_dim / config.num_heads);

  nn::InferenceContext ctx;
  const std::vector<int> window = RandomWindow(config, &rng);
  // Warm every block's packed-QKV cache at the current version, and take
  // the reference logits.
  const nn::Tensor reference = model.AllKeyLogitsInference(
      &ctx, model.ForwardInference(&ctx, window, L - 1), L - 1);
  const nn::Tensor saved_wq = last_wq->value();

  // Scribble the last block's wq and bump the version *between* block 0's
  // weight resolution and block 1's, mid-forward. The pass pinned its
  // version at entry, so block 1 must resolve the packed weights cached at
  // that version — never rebuild from the scribbled values.
  const uint64_t entry_version = model.weight_version();
  int scribbles = 0;
  model.SetBlockWeightsHookForTest(
      [&](int block_idx, uint64_t wv) {
        EXPECT_EQ(wv, entry_version);  // both blocks see the entry snapshot
        if (block_idx == 0 && scribbles == 0) {
          ++scribbles;
          nn::Tensor& w = last_wq->value();
          for (int i = 0; i < w.rows(); ++i) {
            for (int j = 0; j < w.cols(); ++j) w.at(i, j) += 1000.0f;
          }
          model.MarkWeightsUpdated();
        }
      });
  const nn::Tensor& mid_bump = model.AllKeyLogitsInference(
      &ctx, model.ForwardInference(&ctx, window, L - 1), L - 1);
  ASSERT_EQ(scribbles, 1);
  for (int j = 0; j < reference.cols(); ++j) {
    ASSERT_EQ(mid_bump.at(L - 1, j), reference.at(L - 1, j))
        << "a mid-forward version bump leaked into the pass at col " << j;
  }
  model.SetBlockWeightsHookForTest(nullptr);

  // Control: the scribbled weights + bumped version ARE picked up by the
  // next pass (the cache really does rebuild on version changes).
  const nn::Tensor& after = model.AllKeyLogitsInference(
      &ctx, model.ForwardInference(&ctx, window, L - 1), L - 1);
  bool any_diff = false;
  for (int j = 0; j < reference.cols() && !any_diff; ++j) {
    any_diff = after.at(L - 1, j) != reference.at(L - 1, j);
  }
  EXPECT_TRUE(any_diff) << "version bump must rebuild derived weights";

  // Restore and bump again: back to the reference bitwise.
  last_wq->value() = saved_wq;
  model.MarkWeightsUpdated();
  const nn::Tensor& restored = model.AllKeyLogitsInference(
      &ctx, model.ForwardInference(&ctx, window, L - 1), L - 1);
  for (int j = 0; j < reference.cols(); ++j) {
    ASSERT_EQ(restored.at(L - 1, j), reference.at(L - 1, j));
  }
}

TEST(WeightVersionTest, MidForwardBumpDuringBatchedPassStaysConsistent) {
  transdas::TransDasConfig config;
  config.vocab_size = 16;
  config.window = 5;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 2;
  util::Rng rng(83);
  transdas::TransDasModel model(config, &rng);
  const int L = config.window;
  std::vector<nn::Parameter*> params = model.Params();
  const size_t per_block = 3 * config.num_heads + 9;
  nn::Parameter* last_wq = params[params.size() - per_block];

  nn::InferenceContext ctx;
  const int B = 3;
  std::vector<int> keys;
  std::vector<int> rows_from(B, 0);
  for (int b = 0; b < B; ++b) {
    const std::vector<int> w = RandomWindow(config, &rng);
    keys.insert(keys.end(), w.begin(), w.end());
  }
  const nn::Tensor reference = model.AllKeyLogitsInferenceBatched(
      &ctx, model.ForwardInferenceBatched(&ctx, keys, rows_from, B), rows_from,
      B);
  const nn::Tensor saved_wq = last_wq->value();
  int scribbles = 0;
  model.SetBlockWeightsHookForTest([&](int block_idx, uint64_t) {
    if (block_idx == 0 && scribbles == 0) {
      ++scribbles;
      nn::Tensor& w = last_wq->value();
      for (int i = 0; i < w.rows(); ++i) {
        for (int j = 0; j < w.cols(); ++j) w.at(i, j) -= 500.0f;
      }
      model.MarkWeightsUpdated();
    }
  });
  const nn::Tensor& mid_bump = model.AllKeyLogitsInferenceBatched(
      &ctx, model.ForwardInferenceBatched(&ctx, keys, rows_from, B), rows_from,
      B);
  ASSERT_EQ(scribbles, 1);
  for (int r = 0; r < B * L; ++r) {
    for (int j = 0; j < reference.cols(); ++j) {
      ASSERT_EQ(mid_bump.at(r, j), reference.at(r, j))
          << "batched pass mixed weight versions at (" << r << ", " << j
          << ")";
    }
  }
  model.SetBlockWeightsHookForTest(nullptr);
  last_wq->value() = saved_wq;
  model.MarkWeightsUpdated();
}

// ---------- Observability of the new tier ----------

TEST(BatchedInferTest, PublishesSlideAndBatchMetrics) {
  transdas::TransDasConfig config;
  config.vocab_size = 12;
  config.window = 4;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.num_blocks = 1;
  util::Rng rng(5);
  transdas::TransDasModel model(config, &rng);
  nn::InferenceContext ctx;
  const std::vector<int> window = RandomWindow(config, &rng);
  model.ForwardInference(&ctx, window, 0, /*slide=*/true);
  std::vector<int> keys;
  for (int b = 0; b < 2; ++b) {
    keys.insert(keys.end(), window.begin(), window.end());
  }
  const std::vector<int> rows_from(2, 0);
  model.ForwardInferenceBatched(&ctx, keys, rows_from, 4);
  obs::MetricsRegistry registry;
  nn::PublishInferMetrics(&registry);
  EXPECT_GE(registry.GetCounter("nn/infer/slide_cache_misses")->Value() +
                registry.GetCounter("nn/infer/slide_cache_hits")->Value(),
            1u);
  EXPECT_GE(registry.GetCounter("nn/infer/batches_total")->Value(), 1u);
  EXPECT_GE(registry.GetCounter("nn/infer/batched_windows_total")->Value(),
            2u);
  const double occupancy =
      registry.GetGauge("nn/infer/batch_occupancy")->Value();
  EXPECT_GT(occupancy, 0.0);
  EXPECT_LE(occupancy, 1.0);
}

}  // namespace
}  // namespace ucad
