// Reproduces paper Figure 8: robustness to abnormal sessions in the
// training set. (a)/(b): Trans-DAS F1 in both scenarios as the poisoning
// ratio grows 0% -> 20%. (c)/(d): all methods under the same poisoning.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"

namespace {

using namespace ucad;  // NOLINT

void RunScenario(const eval::ScenarioConfig& config, bool include_baselines,
                 util::TablePrinter* table) {
  std::printf("\n--- %s ---\n", config.name.c_str());
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  util::Rng rng(404);
  const std::vector<double> ratios = {0.0, 0.05, 0.10, 0.15, 0.20};
  for (double ratio : ratios) {
    const std::vector<std::vector<int>> hybrid = ds.HybridTrain(ratio, &rng);
    auto ratio_str = util::FormatDouble(ratio * 100, 0) + "%";

    const eval::TransDasRun run = eval::RunTransDas(
        ds, config.model, config.training, config.detection, hybrid);
    table->AddRow({config.name, ratio_str, "Trans-DAS",
                   util::FormatDouble(run.metrics.f1, 5)});
    std::printf("  ratio %-4s Trans-DAS       F1 %.5f\n", ratio_str.c_str(),
                run.metrics.f1);

    if (!include_baselines) continue;
    for (const std::string& name : eval::BaselineNames()) {
      auto detector = eval::MakeBaseline(name, config, ds);
      const eval::EvalResult r =
          eval::RunBaseline(detector.get(), ds, hybrid);
      table->AddRow({config.name, ratio_str, name,
                     util::FormatDouble(r.f1, 5)});
      std::printf("  ratio %-4s %-15s F1 %.5f\n", ratio_str.c_str(),
                  name.c_str(), r.f1);
    }
  }
}

}  // namespace

int main() {
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner("Figure 8: robustness to abnormal training data (0-20%)",
                scale);
  util::TablePrinter table({"Scenario", "Anomaly%", "Method", "F1"});
  // (a)+(c): Scenario-I with all methods; (b)+(d): Scenario-II likewise.
  RunScenario(bench::SweepSized(eval::ScenarioIConfig(scale), scale),
              /*include_baselines=*/true, &table);
  RunScenario(bench::SweepSized(eval::ScenarioIIConfig(scale), scale),
              /*include_baselines=*/true, &table);
  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "paper:    Trans-DAS declines slowly (about -0.13 in Scenario-I and\n"
      "          -0.08 in Scenario-II at 20%% poisoning) and keeps the\n"
      "          highest F1 in most cases; Mazzawi collapses under any\n"
      "          poisoning; DeepLog and USAD lose ~0.09-0.10 on average.\n");
  return 0;
}
