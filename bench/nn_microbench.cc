// Microbenchmarks (google-benchmark) for the substrate kernels on the
// training/detection hot paths: matmul, softmax, a full attention block,
// one Trans-DAS training step, preprocessing primitives, and the per-tier
// inference kernels (reference vs vectorized vs int8 GEMM) at the
// detector's Scenario-I shapes.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "nn/infer.h"
#include "nn/simd.h"
#include "nn/tape.h"
#include "nn/tensor.h"
#include "prep/ngram.h"
#include "sql/statement.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace ucad;  // NOLINT

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn(n, n, 1.0f, &rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, 1.0f, &rng);
  nn::Tensor out(n, n);
  for (auto _ : state) {
    nn::MatMul(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  for (auto _ : state) {
    nn::Tape tape;
    nn::VarId a = tape.Constant(nn::Tensor::Randn(n, n, 1.0f, &rng));
    benchmark::DoNotOptimize(tape.value(tape.SoftmaxRows(a)).data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(50)->Arg(100);

void BM_TransDasForward(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  const int h = static_cast<int>(state.range(1));
  transdas::TransDasConfig config;
  config.vocab_size = 256;
  config.window = L;
  config.hidden_dim = h;
  config.num_heads = std::max(1, h / 8);
  config.num_blocks = 3;
  util::Rng rng(3);
  transdas::TransDasModel model(config, &rng);
  std::vector<int> window(L);
  for (int i = 0; i < L; ++i) window[i] = 1 + (i % 200);
  for (auto _ : state) {
    nn::Tape tape;
    nn::VarId out = model.Forward(&tape, window, false, nullptr);
    benchmark::DoNotOptimize(tape.value(out).data());
  }
}
BENCHMARK(BM_TransDasForward)->Args({30, 16})->Args({50, 32})->Args({100, 64});

void BM_TransDasTrainStep(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  transdas::TransDasConfig config;
  config.vocab_size = 128;
  config.window = L;
  config.hidden_dim = 32;
  config.num_heads = 4;
  config.num_blocks = 3;
  util::Rng rng(4);
  transdas::TransDasModel model(config, &rng);
  transdas::TrainOptions options;
  options.epochs = 1;
  transdas::TransDasTrainer trainer(&model, options);
  std::vector<int> session(2 * L);
  for (size_t i = 0; i < session.size(); ++i) {
    session[i] = 1 + static_cast<int>(i % 100);
  }
  for (auto _ : state) {
    trainer.Train({session});
  }
}
BENCHMARK(BM_TransDasTrainStep)->Arg(30)->Arg(50);

// ---- Per-tier inference kernels (docs/INFERENCE.md "Kernel tiers") ----
//
// Arg 0 selects the tier (0 = reference, 1 = vectorized); shapes are the
// detection hot path's: [L=30 x h=10] activations against the packed Q|K|V
// ([10 x 32]) and all-key-logits ([10 x vocab]) weights. The int8 GEMM has
// its own benchmark (it replaces these matmuls at the model level rather
// than inside MatMulSliceKernel).

void BM_InferMatMulSlice(benchmark::State& state) {
  const auto tier = static_cast<nn::KernelTier>(state.range(0));
  const int cols = static_cast<int>(state.range(1));
  const int L = 30, h = 10;
  util::Rng rng(6);
  const nn::Tensor a = nn::Tensor::Randn(L, h, 1.0f, &rng);
  const nn::Tensor b = nn::Tensor::Randn(h, cols, 1.0f, &rng);
  nn::Tensor out(L, cols);
  nn::ScopedKernelTier scope(tier);
  for (auto _ : state) {
    nn::MatMulSliceKernel(a, 0, h, b, 0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * L * h * cols);
}
BENCHMARK(BM_InferMatMulSlice)
    ->Args({0, 32})
    ->Args({1, 32})
    ->Args({0, 512})
    ->Args({1, 512});

void BM_InferInt8Gemm(benchmark::State& state) {
  const int cols = static_cast<int>(state.range(0));
  const int L = 30, h = 10;
  util::Rng rng(6);
  const nn::Tensor a = nn::Tensor::Randn(L, h, 1.0f, &rng);
  const nn::Tensor b = nn::Tensor::Randn(h, cols, 1.0f, &rng);
  nn::QuantizedWeight q;
  nn::QuantizeWeightRows(b, /*transpose=*/true, &q);
  nn::Tensor out(L, cols);
  for (auto _ : state) {
    nn::Int8GemmKernel(a, 0, h, q, 0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * L * h * cols);
}
BENCHMARK(BM_InferInt8Gemm)->Arg(32)->Arg(512);

void BM_InferMaskedSoftmax(benchmark::State& state) {
  const auto tier = static_cast<nn::KernelTier>(state.range(0));
  const int L = 30;
  util::Rng rng(7);
  const nn::Tensor src = nn::Tensor::Randn(L, L, 2.0f, &rng);
  nn::Tensor mask(L, L);
  for (int i = 0; i + 1 < L; ++i) mask.at(i, i + 1) = -1e9f;
  nn::Tensor scores(L, L);
  nn::ScopedKernelTier scope(tier);
  for (auto _ : state) {
    // Both tiers pay the same refill; softmax runs on identical inputs.
    std::memcpy(scores.data(), src.data(),
                static_cast<size_t>(L) * L * sizeof(float));
    nn::MaskedSoftmaxKernel(&scores, 0.316f, mask);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * L * L);
}
BENCHMARK(BM_InferMaskedSoftmax)->Arg(0)->Arg(1);

void BM_InferResidualLayerNorm(benchmark::State& state) {
  const auto tier = static_cast<nn::KernelTier>(state.range(0));
  const int L = 30, h = 10;
  util::Rng rng(8);
  const nn::Tensor x = nn::Tensor::Randn(L, h, 1.0f, &rng);
  const nn::Tensor res = nn::Tensor::Randn(L, h, 1.0f, &rng);
  const nn::Tensor gain = nn::Tensor::Randn(1, h, 0.5f, &rng);
  const nn::Tensor bias = nn::Tensor::Randn(1, h, 0.5f, &rng);
  nn::Tensor out(L, h);
  nn::ScopedKernelTier scope(tier);
  for (auto _ : state) {
    nn::ResidualLayerNormKernel(x, res, gain, bias, 1e-5f, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * L * h);
}
BENCHMARK(BM_InferResidualLayerNorm)->Arg(0)->Arg(1);

void BM_InferAttnContext(benchmark::State& state) {
  const auto tier = static_cast<nn::KernelTier>(state.range(0));
  const int L = 30, h = 10, hd = 5;
  util::Rng rng(9);
  nn::Tensor att = nn::Tensor::Randn(L, L, 1.0f, &rng);
  nn::MaskedSoftmaxKernel(&att, 1.0f, nn::Tensor(L, L));
  const nn::Tensor qkv = nn::Tensor::Randn(L, 32, 1.0f, &rng);
  nn::Tensor concat(L, h);
  nn::ScopedKernelTier scope(tier);
  for (auto _ : state) {
    nn::AttnContextKernel(att, 0, qkv, 20, hd, 0, &concat);
    benchmark::DoNotOptimize(concat.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * L * L * hd);
}
BENCHMARK(BM_InferAttnContext)->Arg(0)->Arg(1);

void BM_InferForwardTier(benchmark::State& state) {
  const auto tier = static_cast<nn::KernelTier>(state.range(0));
  transdas::TransDasConfig config;
  config.vocab_size = 512;
  config.window = 30;
  config.hidden_dim = 10;
  config.num_heads = 2;
  config.num_blocks = 6;
  util::Rng rng(10);
  transdas::TransDasModel model(config, &rng);
  nn::InferenceContext ctx;
  std::vector<int> window(config.window);
  for (int i = 0; i < config.window; ++i) window[i] = 1 + (i * 17) % 500;
  nn::ScopedKernelTier scope(tier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.AllKeyLogitsInference(&ctx, model.ForwardInference(&ctx, window))
            .data());
  }
  state.SetItemsProcessed(state.iterations() * config.window);
}
BENCHMARK(BM_InferForwardTier)->Arg(0)->Arg(1)->Arg(2);

void BM_StatementAbstraction(benchmark::State& state) {
  const std::string sql =
      "INSERT INTO t_cell_fp_3 (pnci, gridId, fps) VALUES (101, 102, 103), "
      "(104, 105, 106), (107, 108, 109), (110, 111, 112)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::AbstractLiterals(sql));
  }
}
BENCHMARK(BM_StatementAbstraction);

void BM_NgramJaccard(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  util::Rng rng(5);
  std::vector<int> a(len), b(len);
  for (int i = 0; i < len; ++i) {
    a[i] = static_cast<int>(rng.UniformU64(64));
    b[i] = static_cast<int>(rng.UniformU64(64));
  }
  prep::NgramProfile pa(a, 2), pb(b, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pa.Jaccard(pb));
  }
}
BENCHMARK(BM_NgramJaccard)->Arg(30)->Arg(130);

}  // namespace

// Like BENCHMARK_MAIN() but strips a --threads[=| ]N flag first, sizing the
// global pool before any benchmark runs (same effect as UCAD_THREADS; the
// CI speedup smoke compares --threads 1 vs --threads 4 on one binary).
int main(int argc, char** argv) {
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      ucad::util::SetNumThreads(std::atoi(arg.c_str() + 10));
    } else if (arg == "--threads" && i + 1 < argc) {
      ucad::util::SetNumThreads(std::atoi(argv[++i]));
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
