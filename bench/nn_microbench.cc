// Microbenchmarks (google-benchmark) for the substrate kernels on the
// training/detection hot paths: matmul, softmax, a full attention block,
// one Trans-DAS training step, and preprocessing primitives.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "nn/tape.h"
#include "nn/tensor.h"
#include "prep/ngram.h"
#include "sql/statement.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace ucad;  // NOLINT

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn(n, n, 1.0f, &rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, 1.0f, &rng);
  nn::Tensor out(n, n);
  for (auto _ : state) {
    nn::MatMul(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  for (auto _ : state) {
    nn::Tape tape;
    nn::VarId a = tape.Constant(nn::Tensor::Randn(n, n, 1.0f, &rng));
    benchmark::DoNotOptimize(tape.value(tape.SoftmaxRows(a)).data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(50)->Arg(100);

void BM_TransDasForward(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  const int h = static_cast<int>(state.range(1));
  transdas::TransDasConfig config;
  config.vocab_size = 256;
  config.window = L;
  config.hidden_dim = h;
  config.num_heads = std::max(1, h / 8);
  config.num_blocks = 3;
  util::Rng rng(3);
  transdas::TransDasModel model(config, &rng);
  std::vector<int> window(L);
  for (int i = 0; i < L; ++i) window[i] = 1 + (i % 200);
  for (auto _ : state) {
    nn::Tape tape;
    nn::VarId out = model.Forward(&tape, window, false, nullptr);
    benchmark::DoNotOptimize(tape.value(out).data());
  }
}
BENCHMARK(BM_TransDasForward)->Args({30, 16})->Args({50, 32})->Args({100, 64});

void BM_TransDasTrainStep(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  transdas::TransDasConfig config;
  config.vocab_size = 128;
  config.window = L;
  config.hidden_dim = 32;
  config.num_heads = 4;
  config.num_blocks = 3;
  util::Rng rng(4);
  transdas::TransDasModel model(config, &rng);
  transdas::TrainOptions options;
  options.epochs = 1;
  transdas::TransDasTrainer trainer(&model, options);
  std::vector<int> session(2 * L);
  for (size_t i = 0; i < session.size(); ++i) {
    session[i] = 1 + static_cast<int>(i % 100);
  }
  for (auto _ : state) {
    trainer.Train({session});
  }
}
BENCHMARK(BM_TransDasTrainStep)->Arg(30)->Arg(50);

void BM_StatementAbstraction(benchmark::State& state) {
  const std::string sql =
      "INSERT INTO t_cell_fp_3 (pnci, gridId, fps) VALUES (101, 102, 103), "
      "(104, 105, 106), (107, 108, 109), (110, 111, 112)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::AbstractLiterals(sql));
  }
}
BENCHMARK(BM_StatementAbstraction);

void BM_NgramJaccard(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  util::Rng rng(5);
  std::vector<int> a(len), b(len);
  for (int i = 0; i < len; ++i) {
    a[i] = static_cast<int>(rng.UniformU64(64));
    b[i] = static_cast<int>(rng.UniformU64(64));
  }
  prep::NgramProfile pa(a, 2), pb(b, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pa.Jaccard(pb));
  }
}
BENCHMARK(BM_NgramJaccard)->Arg(30)->Arg(130);

}  // namespace

// Like BENCHMARK_MAIN() but strips a --threads[=| ]N flag first, sizing the
// global pool before any benchmark runs (same effect as UCAD_THREADS; the
// CI speedup smoke compares --threads 1 vs --threads 4 on one binary).
int main(int argc, char** argv) {
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      ucad::util::SetNumThreads(std::atoi(arg.c_str() + 10));
    } else if (arg == "--threads" && i + 1 < argc) {
      ucad::util::SetNumThreads(std::atoi(argv[++i]));
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
