// Reproduces paper Figure 9: the two real-world production incidents UCAD
// surfaced — (a) a reward-farming danmu bot, (b) a maliciously repackaged
// location app — replayed against trained UCAD instances.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/ucad.h"
#include "workload/cases.h"
#include "workload/commenting.h"
#include "workload/location.h"

namespace {

using namespace ucad;  // NOLINT

core::UcadOptions OptionsFor(const eval::ScenarioConfig& config) {
  core::UcadOptions options;
  options.model = config.model;
  options.training = config.training;
  options.detection = config.detection;
  options.filter = eval::DatasetOptions::DefaultFilterOptions();
  return options;
}

void Report(const char* which, const workload::CaseStudy& cs,
            const core::Ucad& ucad) {
  std::printf("\n--- case %s: %s ---\n%s\n", which, cs.name.c_str(),
              cs.description.c_str());
  const core::UcadDetection normal = ucad.Detect(cs.normal);
  const core::UcadDetection suspicious = ucad.Detect(cs.suspicious);
  std::printf("normal session    : %s\n",
              normal.abnormal() ? "FLAGGED (false positive)" : "clean");
  std::printf("suspicious session: %s",
              suspicious.abnormal() ? "FLAGGED" : "missed");
  if (suspicious.verdict.abnormal) {
    std::printf(" at operations:");
    for (int pos : suspicious.verdict.AbnormalPositions()) {
      std::printf(" #%d", pos + 1);
    }
  }
  std::printf("\nexpected finding  : %s\n", cs.expected_finding.c_str());
}

}  // namespace

int main() {
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner("Figure 9: real-world case studies", scale);
  util::Rng rng(909);

  // (a) Commenting scenario: the danmu bot.
  {
    eval::ScenarioConfig config =
        bench::SweepSized(eval::ScenarioIConfig(scale), scale);
    workload::SessionGenerator generator(config.spec);
    core::Ucad ucad(OptionsFor(config),
                    prep::MakeDefaultPolicyEngine(
                        config.spec.users, config.spec.addresses,
                        config.spec.business_start_hour,
                        config.spec.business_end_hour));
    const util::Status st = ucad.Train(generator.GenerateNormalBatch(
        config.dataset.normal_sessions, &rng));
    UCAD_CHECK(st.ok()) << st.ToString();
    Report("9a", workload::MakeDanmuBotCase(generator, &rng), ucad);
  }

  // (b) Location scenario: the repackaged app.
  {
    eval::ScenarioConfig config =
        bench::SweepSized(eval::ScenarioIIConfig(scale), scale);
    workload::SessionGenerator generator(config.spec);
    core::Ucad ucad(OptionsFor(config),
                    prep::MakeDefaultPolicyEngine(
                        config.spec.users, config.spec.addresses,
                        config.spec.business_start_hour,
                        config.spec.business_end_hour));
    const util::Status st = ucad.Train(generator.GenerateNormalBatch(
        config.dataset.normal_sessions, &rng));
    UCAD_CHECK(st.ok()) << st.ToString();
    Report("9b", workload::MakeRepackagedAppCase(generator, &rng), ucad);
  }

  std::printf(
      "\npaper: in both incidents the DBAs confirmed the anomalies after\n"
      "UCAD flagged the deviating operations (the bot's post/like without\n"
      "opening the panel; the repackaged app's high-frequency location\n"
      "inserts).\n");
  return 0;
}
