// Reproduces paper Figure 6: visualization of the first attention block's
// weights for a normal Scenario-II session — each row shows how strongly
// one operation attends to its contexts, and the per-row maximum marks the
// most relevant context (operations on the same table attend to each
// other).

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/runner.h"
#include "transdas/model.h"
#include "transdas/trainer.h"

int main() {
  using namespace ucad;  // NOLINT
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner("Figure 6: attention-weight visualization (Scenario-II)",
                scale);

  eval::ScenarioConfig config =
      bench::SweepSized(eval::ScenarioIIConfig(scale), scale);
  // A compact window keeps the printed heatmap readable, as in the figure
  // (13 operations).
  config.model.window = 13;
  config.training.window_stride = 6;
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);

  transdas::TransDasConfig model_config = config.model;
  model_config.vocab_size = ds.vocab.size();
  util::Rng rng(55);
  transdas::TransDasModel model(model_config, &rng);
  transdas::TransDasTrainer trainer(&model, config.training);
  trainer.Train(ds.train);

  // Pick a window from a held-out normal session.
  const int L = model_config.window;
  std::vector<int> window;
  for (const auto& session : ds.v1) {
    if (static_cast<int>(session.size()) >= L) {
      window.assign(session.begin(), session.begin() + L);
      break;
    }
  }
  if (window.empty()) {
    window.assign(L, 1);
  }

  nn::Tape tape;
  std::vector<nn::VarId> heads;
  model.Forward(&tape, window, /*training=*/false, nullptr, &heads);

  // Average the heads of the first block (the figure shows one map).
  nn::Tensor weights(L, L);
  for (nn::VarId head : heads) {
    weights.AddInPlace(tape.value(head));
  }
  weights.Scale(1.0f / heads.size());

  std::printf("\nsession keys and statements:\n");
  for (int i = 0; i < L; ++i) {
    std::printf("  t%-2d key %-4d %s\n", i + 1, window[i],
                ds.vocab.TemplateOf(window[i]).c_str());
  }

  std::printf("\nattention weights (row = operation, col = context; "
              "'#'>0.2 '+'>0.1 '.'>0.05, '[x]' = row max):\n      ");
  for (int j = 0; j < L; ++j) std::printf("t%-3d", j + 1);
  std::printf("\n");
  for (int i = 0; i < L; ++i) {
    int argmax = 0;
    for (int j = 1; j < L; ++j) {
      if (weights.at(i, j) > weights.at(i, argmax)) argmax = j;
    }
    std::printf("  t%-2d ", i + 1);
    for (int j = 0; j < L; ++j) {
      const float w = weights.at(i, j);
      char c = w > 0.2f ? '#' : w > 0.1f ? '+' : w > 0.05f ? '.' : ' ';
      if (j == argmax) {
        std::printf("[%c] ", c);
      } else {
        std::printf(" %c  ", c);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nmost relevant context per operation (c.f. the red squares of "
      "Figure 6):\n");
  int same_table = 0, scored = 0;
  for (int i = 0; i < L; ++i) {
    int argmax = 0;
    for (int j = 1; j < L; ++j) {
      if (weights.at(i, j) > weights.at(i, argmax)) argmax = j;
    }
    const std::string& ti = ds.vocab.TableOf(window[i]);
    const std::string& tj = ds.vocab.TableOf(window[argmax]);
    std::printf("  t%-2d (key %-4d, %-13s) -> t%-2d (key %-4d, %-13s)%s\n",
                i + 1, window[i], ti.c_str(), argmax + 1, window[argmax],
                tj.c_str(), ti == tj && i != argmax ? "  [same table]" : "");
    if (i != argmax) {
      ++scored;
      same_table += ti == tj ? 1 : 0;
    }
  }
  std::printf(
      "\n%d/%d operations attend most to an operation on the same table.\n"
      "paper: the highest-weight context of each operation is a\n"
      "semantically related statement (same table / same maintenance "
      "task).\n",
      same_table, scored);
  return 0;
}
