// Ablation for the concept-drift strategy of §5.2: when user behavior
// drifts, compare (a) keeping the stale model, (b) fine-tuning it on newly
// verified normal sessions (the paper's strategy), and (c) training a
// fresh model on the new sessions only. The paper argues fine-tuning
// retains historical patterns while adapting; retraining from scratch is
// constrained by the small amount of new data.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"

namespace {

using namespace ucad;  // NOLINT

/// Evaluates one model on both behavioral regimes.
struct RegimeF1 {
  double old_regime = 0.0;
  double new_regime = 0.0;
};

RegimeF1 Evaluate(transdas::TransDasModel* model,
                  const transdas::DetectorOptions& options,
                  const eval::ScenarioDataset& old_ds,
                  const eval::ScenarioDataset& new_ds) {
  transdas::TransDasDetector detector(model, options);
  auto classify = [&detector](const std::vector<int>& s) {
    return detector.DetectSession(s).abnormal;
  };
  RegimeF1 out;
  out.old_regime = eval::Evaluate(classify, old_ds.TestSets()).f1;
  out.new_regime = eval::Evaluate(classify, new_ds.TestSets()).f1;
  return out;
}

}  // namespace

int main() {
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner(
      "Ablation: concept drift — stale vs fine-tuned vs retrained (§5.2)",
      scale);

  eval::ScenarioConfig config =
      bench::SweepSized(eval::ScenarioIConfig(scale), scale);

  // Old regime: the stock commenting scenario. New regime: user habits
  // drift — posting dominates watching and moderation triples.
  workload::ScenarioSpec drifted = config.spec;
  drifted.tasks[0].weight = 1.0;  // watch: 3.0 -> 1.0
  drifted.tasks[1].weight = 4.0;  // post:  3.0 -> 4.0
  drifted.tasks[3].weight = 1.5;  // moderate: 0.5 -> 1.5
  // Habit chains shift too: after posting, users keep posting.
  drifted.task_transitions[1] = {0.20, 0.45, 0.20, 0.05, 0.05, 0.05};

  const eval::ScenarioDataset old_ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  eval::DatasetOptions new_options = config.dataset;
  new_options.seed += 17;
  new_options.normal_sessions = config.dataset.normal_sessions / 3;
  const eval::ScenarioDataset new_ds =
      eval::BuildScenarioDataset(drifted, new_options);

  // NOTE: both datasets build their own vocabulary; the drifted scenario
  // uses the same statement families, so the template sets match and we
  // can evaluate one model on both (keys are assigned in generation order,
  // which is deterministic per spec).
  transdas::TransDasConfig model_config = config.model;
  model_config.vocab_size =
      std::max(old_ds.vocab.size(), new_ds.vocab.size());

  util::TablePrinter table(
      {"Strategy", "F1 (old regime)", "F1 (new regime)"});
  auto add = [&table](const char* name, const RegimeF1& r) {
    table.AddRow(name, {r.old_regime, r.new_regime});
    std::printf("  %-22s old %.5f new %.5f\n", name, r.old_regime,
                r.new_regime);
  };

  // (a) Stale model: trained on the old regime only.
  util::Rng rng(2024);
  transdas::TransDasModel stale(model_config, &rng);
  {
    transdas::TransDasTrainer trainer(&stale, config.training);
    trainer.Train(old_ds.train);
  }
  add("Stale (no update)", Evaluate(&stale, config.detection, old_ds, new_ds));

  // (b) Fine-tuned: the paper's strategy — short low-LR run on new data.
  util::Rng rng2(2024);
  transdas::TransDasModel tuned(model_config, &rng2);
  {
    transdas::TransDasTrainer trainer(&tuned, config.training);
    trainer.Train(old_ds.train);
    trainer.FineTune(new_ds.train, /*epochs=*/std::max(
                         2, config.training.epochs / 6),
                     /*lr_scale=*/0.3f);
  }
  add("Fine-tuned (paper)",
      Evaluate(&tuned, config.detection, old_ds, new_ds));

  // (c) Retrained from scratch on the (small) new dataset only.
  util::Rng rng3(2024);
  transdas::TransDasModel fresh(model_config, &rng3);
  {
    transdas::TransDasTrainer trainer(&fresh, config.training);
    trainer.Train(new_ds.train);
  }
  add("Retrained on new only",
      Evaluate(&fresh, config.detection, old_ds, new_ds));

  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "expected shape (paper §5.2): the stale model degrades on the new\n"
      "regime; retraining on the small new batch forgets the old regime;\n"
      "fine-tuning holds up on both.\n");
  return 0;
}
