// Reproduces paper Table 5: training time per epoch and F1 under different
// input sizes L in Scenario-II — time grows linearly with L; F1 peaks when
// L matches the average session length.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"

int main() {
  using namespace ucad;  // NOLINT
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner(
      "Table 5: F1 and training time vs input size L (Scenario-II)", scale);

  eval::ScenarioConfig config =
      bench::SweepSized(eval::ScenarioIIConfig(scale), scale);
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  std::printf("average training-session length: %.0f\n",
              ds.avg_train_length);

  std::vector<int> sizes;
  switch (scale) {
    case eval::Scale::kSmoke:
      sizes = {8, 16};
      break;
    case eval::Scale::kRepro:
      // Paper sweeps 50..150 around its average length 129; the repro
      // workload averages ~60 ops, so the sweep brackets that instead.
      sizes = {25, 40, 55, 70};
      break;
    case eval::Scale::kPaper:
      sizes = {50, 75, 100, 125, 150};
      break;
  }

  util::TablePrinter table({"Input size L", "Time (s/epoch)", "F1-score"});
  for (int L : sizes) {
    transdas::TransDasConfig model = config.model;
    model.window = L;
    transdas::TrainOptions training = config.training;
    training.window_stride = std::max(1, L / 2);
    const eval::TransDasRun run =
        eval::RunTransDas(ds, model, training, config.detection, ds.train);
    table.AddRow(std::to_string(L), {run.MeanEpochSeconds(), run.metrics.f1});
    std::printf("  L=%-4d epoch %.2fs F1 %.5f\n", L, run.MeanEpochSeconds(),
                run.metrics.f1);
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "paper:    L = 50/75/100/125/150 -> 16/30/49/74/105 s per epoch,\n"
      "          F1 = 0.97025/0.97473/0.98168/0.96783/0.96866\n"
      "          (time linear in L, best F1 near the average length)\n");
  return 0;
}
