// Reproduces paper Table 1: statistics of the training / testing datasets
// for the two database application scenarios. The paper's traces are
// proprietary; this prints the statistics of the synthetic workloads
// calibrated against them (see DESIGN.md §1).

#include <cstdio>

#include "bench/bench_common.h"
#include "sql/statement.h"

namespace {

using namespace ucad;  // NOLINT

void Describe(const eval::ScenarioConfig& config, const char* paper_row) {
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  std::printf("\n--- %s ---\n", config.name.c_str());
  std::printf("paper:    %s\n", paper_row);
  const int keys = ds.vocab.size() - 1;  // excluding k0
  std::printf(
      "measured: #train=%zu avg_len=%.0f #keys=%d (%d, %d, %d, %d) "
      "#tables=%d #test=%zux3 abnormal + %zux3 normal\n",
      ds.train.size(), ds.avg_train_length, keys,
      ds.vocab.CountCommand(sql::CommandType::kSelect),
      ds.vocab.CountCommand(sql::CommandType::kInsert),
      ds.vocab.CountCommand(sql::CommandType::kUpdate),
      ds.vocab.CountCommand(sql::CommandType::kDelete),
      ds.vocab.CountTables(), ds.a1.size(), ds.v1.size());
}

}  // namespace

int main() {
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner("Table 1: dataset statistics (paper vs generated)", scale);
  Describe(eval::ScenarioIConfig(scale),
           "#train=354 avg_len=24  #keys=20 (7, 4, 4, 5)     #tables=7  "
           "#test=89x3 abnormal + 89x3 normal");
  Describe(eval::ScenarioIIConfig(scale),
           "#train=3722 avg_len=129 #keys=593 (238, 351, 146, 4) #tables=15 "
           "#test=930x3 abnormal + 930x3 normal");
  std::printf(
      "\nNote: at repro scale Scenario-II is generated with a reduced\n"
      "session count and vocabulary density (see EXPERIMENTS.md); the\n"
      "paper-scale statistics are produced with UCAD_SCALE=paper.\n");
  return 0;
}
