#ifndef UCAD_BENCH_BENCH_COMMON_H_
#define UCAD_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "eval/dataset.h"
#include "eval/experiment_config.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace ucad::bench {

/// Prints the standard bench banner: which experiment, which scale.
inline void Banner(const std::string& title, eval::Scale scale) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("scale: %s (set UCAD_SCALE=smoke|repro|paper)\n",
              eval::ScaleName(scale));
  std::printf("==================================================\n");
}

/// Formats an EvalResult as the paper's Table 2 row:
/// FPR(V1,V2,V3) FNR(A1,A2,A3) P R F1.
inline std::vector<std::string> MetricsRow(const std::string& method,
                                           const eval::EvalResult& r) {
  auto f = [](double v) { return util::FormatDouble(v, 5); };
  return {method,
          f(r.Rate(sql::SessionLabel::kNormal)),
          f(r.Rate(sql::SessionLabel::kNormalSwapped)),
          f(r.Rate(sql::SessionLabel::kNormalReduced)),
          f(r.Rate(sql::SessionLabel::kPrivilegeAbuse)),
          f(r.Rate(sql::SessionLabel::kCredentialTheft)),
          f(r.Rate(sql::SessionLabel::kMisoperation)),
          f(r.precision),
          f(r.recall),
          f(r.f1)};
}

/// Header matching MetricsRow.
inline std::vector<std::string> MetricsHeader(const std::string& first) {
  return {first,     "FPR(V1)", "FPR(V2)", "FPR(V3)", "FNR(A1)",
          "FNR(A2)", "FNR(A3)", "P",       "R",       "F1"};
}

/// Reduces a scenario config for the inner sweep loops of Tables 4/5 and
/// Figures 7/8, where dozens of models are trained: fewer sessions and
/// epochs, same relative comparisons.
inline eval::ScenarioConfig SweepSized(eval::ScenarioConfig config,
                                       eval::Scale scale) {
  if (scale == eval::Scale::kRepro) {
    config.dataset.normal_sessions =
        std::min(config.dataset.normal_sessions, 260);
    config.training.epochs = std::min(config.training.epochs, 30);
    config.deeplog.epochs = 1;
    config.usad.epochs = std::min(config.usad.epochs, 8);
  }
  return config;
}

}  // namespace ucad::bench

#endif  // UCAD_BENCH_BENCH_COMMON_H_
