#ifndef UCAD_BENCH_BENCH_COMMON_H_
#define UCAD_BENCH_BENCH_COMMON_H_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/dataset.h"
#include "eval/experiment_config.h"
#include "eval/metrics.h"
#include "nn/infer.h"
#include "nn/tape.h"
#include "nn/tensor.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/pool_metrics.h"
#include "util/thread_pool.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace ucad::bench {

namespace internal {

inline std::string& MetricsSnapshotName() {
  static std::string name;
  return name;
}

/// Manifest anchored at Banner time so wall_seconds covers the whole bench.
inline obs::RunManifest& BenchManifest() {
  static obs::RunManifest manifest;
  return manifest;
}

inline void DumpMetricsAtExit() {
  const std::string& name = MetricsSnapshotName();
  if (name.empty()) return;
  // Fold allocator + profiler state into the registry before snapshotting so
  // both the JSONL file and the manifest carry them.
  nn::PublishTensorMemMetrics();
  nn::PublishInferMetrics(&obs::DefaultMetrics());
  nn::TapeProfiler::ExportTo(&obs::DefaultMetrics());
  obs::PublishThreadPoolMetrics(&obs::DefaultMetrics());
  const std::string path = "bench_" + name + ".json";
  const util::Status st = obs::DefaultMetrics().WriteJsonlFile(path);
  if (st.ok()) {
    std::printf("metrics snapshot: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
  }
  obs::RunManifest& manifest = BenchManifest();
  manifest.AddNote("peak_live_tensor_bytes",
                   std::to_string(nn::TensorMemStats().peak_live_bytes));
  const std::string run_path = "bench_" + name + ".run.json";
  const util::Status mst = manifest.WriteFile(run_path);
  if (mst.ok()) {
    std::printf("run manifest: %s\n", run_path.c_str());
  } else {
    std::fprintf(stderr, "%s\n", mst.ToString().c_str());
  }
}

/// "Table 2: comparison" -> "table_2_comparison".
inline std::string SlugifyTitle(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

}  // namespace internal

/// Prints the standard bench banner: which experiment, which scale. Also
/// registers an exit hook that dumps the metrics registry to
/// `bench_<slug(title)>.json` next to the printed table, so run records
/// (loss terms, per-method timings, latency histograms) are collected
/// machine-readably alongside every reproduction table. Set
/// UCAD_BENCH_METRICS=0 to suppress the snapshot.
inline void Banner(const std::string& title, eval::Scale scale) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("scale: %s (set UCAD_SCALE=smoke|repro|paper)\n",
              eval::ScaleName(scale));
  std::printf("threads: %d (set UCAD_THREADS=n)\n", util::NumThreads());
  std::printf("==================================================\n");
  const char* env = std::getenv("UCAD_BENCH_METRICS");
  if (env != nullptr && std::string(env) == "0") return;
  const bool first = internal::MetricsSnapshotName().empty();
  internal::MetricsSnapshotName() = internal::SlugifyTitle(title);
  internal::BenchManifest()
      .SetTool("bench/" + internal::MetricsSnapshotName())
      .AddNote("scale", eval::ScaleName(scale));
  if (first) std::atexit(internal::DumpMetricsAtExit);
}

/// Attaches a key/value note to the run manifest Banner registered (a
/// no-op record if metrics snapshots are suppressed). Lets benches stamp
/// mode-specific context — e.g. which kernel tiers ran — into run.json.
inline void AddManifestNote(const std::string& key, const std::string& value) {
  internal::BenchManifest().AddNote(key, value);
}

/// Formats an EvalResult as the paper's Table 2 row:
/// FPR(V1,V2,V3) FNR(A1,A2,A3) P R F1.
inline std::vector<std::string> MetricsRow(const std::string& method,
                                           const eval::EvalResult& r) {
  auto f = [](double v) { return util::FormatDouble(v, 5); };
  return {method,
          f(r.Rate(sql::SessionLabel::kNormal)),
          f(r.Rate(sql::SessionLabel::kNormalSwapped)),
          f(r.Rate(sql::SessionLabel::kNormalReduced)),
          f(r.Rate(sql::SessionLabel::kPrivilegeAbuse)),
          f(r.Rate(sql::SessionLabel::kCredentialTheft)),
          f(r.Rate(sql::SessionLabel::kMisoperation)),
          f(r.precision),
          f(r.recall),
          f(r.f1)};
}

/// Header matching MetricsRow.
inline std::vector<std::string> MetricsHeader(const std::string& first) {
  return {first,     "FPR(V1)", "FPR(V2)", "FPR(V3)", "FNR(A1)",
          "FNR(A2)", "FNR(A3)", "P",       "R",       "F1"};
}

/// Reduces a scenario config for the inner sweep loops of Tables 4/5 and
/// Figures 7/8, where dozens of models are trained: fewer sessions and
/// epochs, same relative comparisons.
inline eval::ScenarioConfig SweepSized(eval::ScenarioConfig config,
                                       eval::Scale scale) {
  if (scale == eval::Scale::kRepro) {
    config.dataset.normal_sessions =
        std::min(config.dataset.normal_sessions, 260);
    config.training.epochs = std::min(config.training.epochs, 30);
    config.deeplog.epochs = 1;
    config.usad.epochs = std::min(config.usad.epochs, 8);
  }
  return config;
}

}  // namespace ucad::bench

#endif  // UCAD_BENCH_BENCH_COMMON_H_
