// Extension implementing the paper's §7 "Limitations" direction: a data
// augmentation process to reduce false positives on rarely-appearing
// normal patterns. Training sessions are augmented with their own
// swap/remove mutations (which are normal by construction); the bench
// compares FPR/F1 with and without augmentation.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"

int main() {
  using namespace ucad;  // NOLINT
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner(
      "Extension: training-data augmentation (paper §7 future work)", scale);

  util::TablePrinter table({"Variant", "FPR(V1)", "FPR(V2)", "FPR(V3)",
                            "Recall", "F1"});
  for (int augment : {0, 2}) {
    eval::ScenarioConfig config =
        bench::SweepSized(eval::ScenarioIConfig(scale), scale);
    config.dataset.augment_per_session = augment;
    const eval::ScenarioDataset ds =
        eval::BuildScenarioDataset(config.spec, config.dataset);
    const eval::TransDasRun run = eval::RunTransDas(
        ds, config.model, config.training, config.detection, ds.train);
    const std::string label =
        augment == 0 ? "No augmentation"
                     : "+" + std::to_string(augment) + " mutations/session";
    table.AddRow(label,
                 {run.metrics.Rate(sql::SessionLabel::kNormal),
                  run.metrics.Rate(sql::SessionLabel::kNormalSwapped),
                  run.metrics.Rate(sql::SessionLabel::kNormalReduced),
                  run.metrics.recall, run.metrics.f1});
    std::printf("  %-24s FPR(V1) %.5f F1 %.5f (train %zu sessions)\n",
                label.c_str(), run.metrics.Rate(sql::SessionLabel::kNormal),
                run.metrics.f1, ds.train.size());
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "expected shape: augmentation lowers the FPR on the swapped/reduced\n"
      "normal variants (the model sees more of the normal manifold) at\n"
      "little or no recall cost.\n");
  return 0;
}
