// Ablation for the detection-mode design choice (DESIGN.md §4): the
// paper's §5.3 scores one operation per forward pass over its preceding
// window; the default detector scores a full window per pass (bidirectional
// training-consistent context). This bench measures their verdict
// agreement and the wall-clock speedup.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "util/timer.h"

int main() {
  using namespace ucad;  // NOLINT
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner("Ablation: batched vs per-operation detection", scale);

  eval::ScenarioConfig config =
      bench::SweepSized(eval::ScenarioIConfig(scale), scale);
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  transdas::TransDasConfig model_config = config.model;
  model_config.vocab_size = ds.vocab.size();
  util::Rng rng(77);
  transdas::TransDasModel model(model_config, &rng);
  transdas::TransDasTrainer trainer(&model, config.training);
  trainer.Train(ds.train);

  transdas::DetectorOptions batched_options = config.detection;
  batched_options.batched = true;
  transdas::DetectorOptions per_op_options = config.detection;
  per_op_options.batched = false;
  transdas::TransDasDetector batched(&model, batched_options);
  transdas::TransDasDetector per_op(&model, per_op_options);

  // Verdict agreement + timing over the normal and stealthy sets.
  int sessions = 0, agree = 0;
  double batched_seconds = 0.0, per_op_seconds = 0.0;
  double batched_f1 = 0.0, per_op_f1 = 0.0;
  {
    util::Timer t;
    batched_f1 = eval::Evaluate(
                     [&](const std::vector<int>& s) {
                       return batched.DetectSession(s).abnormal;
                     },
                     ds.TestSets())
                     .f1;
    batched_seconds = t.ElapsedSeconds();
  }
  {
    util::Timer t;
    per_op_f1 = eval::Evaluate(
                    [&](const std::vector<int>& s) {
                      return per_op.DetectSession(s).abnormal;
                    },
                    ds.TestSets())
                    .f1;
    per_op_seconds = t.ElapsedSeconds();
  }
  for (const auto& set : ds.TestSets()) {
    for (const auto& s : set.sessions) {
      ++sessions;
      agree += batched.DetectSession(s).abnormal ==
                       per_op.DetectSession(s).abnormal
                   ? 1
                   : 0;
    }
  }

  util::TablePrinter table({"Mode", "F1", "Detection time (s)"});
  table.AddRow("Batched (default)", {batched_f1, batched_seconds});
  table.AddRow("Per-op (paper §5.3)", {per_op_f1, per_op_seconds});
  table.Print(std::cout);
  std::printf(
      "\nverdict agreement: %d/%d sessions (%.1f%%), speedup %.1fx\n",
      agree, sessions, 100.0 * agree / sessions,
      per_op_seconds / std::max(1e-9, batched_seconds));
  return 0;
}
