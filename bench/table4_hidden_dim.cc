// Reproduces paper Table 4: training time per epoch and F1 under different
// latent dimensions h in Scenario-II. The paper's finding — time grows
// linearly with h while F1 moves only slightly — is scale-invariant.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"

int main() {
  using namespace ucad;  // NOLINT
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner("Table 4: F1 and training time vs hidden dimension h "
                "(Scenario-II)", scale);

  eval::ScenarioConfig config =
      bench::SweepSized(eval::ScenarioIIConfig(scale), scale);
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);

  std::vector<int> dims;
  switch (scale) {
    case eval::Scale::kSmoke:
      dims = {8, 16};
      break;
    case eval::Scale::kRepro:
      dims = {8, 16, 32, 64};
      break;
    case eval::Scale::kPaper:
      dims = {16, 32, 64, 128, 256};
      break;
  }

  util::TablePrinter table({"Dimension h", "Time (s/epoch)", "F1-score"});
  for (int h : dims) {
    transdas::TransDasConfig model = config.model;
    model.hidden_dim = h;
    // Head count must divide h; keep head width roughly constant.
    model.num_heads = std::max(1, h / 8);
    const eval::TransDasRun run = eval::RunTransDas(
        ds, model, config.training, config.detection, ds.train);
    table.AddRow(std::to_string(h), {run.MeanEpochSeconds(), run.metrics.f1});
    std::printf("  h=%-4d epoch %.2fs F1 %.5f\n", h, run.MeanEpochSeconds(),
                run.metrics.f1);
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "paper:    h = 16/32/64/128/256 -> 41/43/49/62/83 s per epoch,\n"
      "          F1 = 0.96989/0.98099/0.98168/0.98268/0.98183\n"
      "          (time linear in h, F1 nearly flat)\n");
  return 0;
}
