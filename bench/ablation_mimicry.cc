// Extension stressing the paper's §7 adversarial-examples discussion: a
// mimicry attacker (Wagner & Soto [80]) cannot craft arbitrary SQL — only
// reuse legitimate statement templates — and tries to disguise the
// injected operation by wrapping it in the context it normally appears in.
// The bench compares detection of naive A2 injections vs context-wrapped
// (mimicry) injections.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "workload/anomaly.h"

namespace {

using namespace ucad;  // NOLINT

/// Wraps each injected operation with the operations that legitimately
/// precede/follow it in the moderation flow (mimicry): the attacker
/// prepends the select that normally precedes the delete.
sql::RawSession MimicryInjection(const workload::SessionGenerator& generator,
                                 const sql::RawSession& base,
                                 util::Rng* rng) {
  sql::RawSession out = base;
  out.label = sql::SessionLabel::kCredentialTheft;
  // The stealthy delete plus its usual context prologue.
  std::vector<std::string> block = {
      generator.RealizeByName("sel_rm_mac", rng),
      generator.RealizeByName("ins_rm_mac", rng),
      generator.RealizeByName("del_rm_mac_abnormal", rng),
  };
  const size_t pos = 1 + rng->UniformU64(out.operations.size());
  for (size_t i = 0; i < block.size(); ++i) {
    sql::OperationRecord op;
    op.sql = block[i];
    op.injected = true;
    out.operations.insert(out.operations.begin() + pos + i, std::move(op));
  }
  int64_t offset = 0;
  for (auto& op : out.operations) {
    op.time_offset_s = offset;
    offset += rng->UniformInt(1, 20);
  }
  return out;
}

}  // namespace

int main() {
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner("Extension: mimicry attacker (paper §7 discussion)", scale);

  eval::ScenarioConfig config =
      bench::SweepSized(eval::ScenarioIConfig(scale), scale);
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);

  workload::SessionGenerator generator(config.spec);
  workload::AnomalySynthesizer synthesizer(&generator);
  util::Rng rng(4242);

  // Train one detector.
  transdas::TransDasConfig model_config = config.model;
  model_config.vocab_size = ds.vocab.size();
  util::Rng model_rng(1234);
  transdas::TransDasModel model(model_config, &model_rng);
  transdas::TransDasTrainer trainer(&model, config.training);
  trainer.Train(ds.train);
  transdas::TransDasDetector detector(&model, config.detection);

  auto detect_rate = [&](const std::vector<sql::RawSession>& sessions) {
    int caught = 0;
    for (const auto& raw : sessions) {
      const sql::KeySession keys = sql::TokenizeSessionFrozen(raw, ds.vocab);
      caught += detector.DetectSession(keys.keys).abnormal ? 1 : 0;
    }
    return static_cast<double>(caught) / sessions.size();
  };

  const int n = 60;
  std::vector<sql::RawSession> naive, mimicry;
  for (int i = 0; i < n; ++i) {
    const sql::RawSession base = generator.GenerateNormal(&rng);
    naive.push_back(synthesizer.CredentialStealing(base, &rng));
    mimicry.push_back(MimicryInjection(generator, base, &rng));
  }

  const double naive_rate = detect_rate(naive);
  const double mimicry_rate = detect_rate(mimicry);
  util::TablePrinter table({"Attack variant", "Detection rate"});
  table.AddRow("Naive A2 injection", {naive_rate});
  table.AddRow("Mimicry (context-wrapped)", {mimicry_rate});
  table.Print(std::cout);
  std::printf(
      "\ninterpretation: the mimicry block reuses a legitimate moderation\n"
      "flow, so per-operation intent matching weakens against it — but the\n"
      "block itself must appear where moderation never happens, which the\n"
      "surrounding context still exposes on a fraction of sessions. The\n"
      "paper argues full evasion needs statement templates the attacker\n"
      "cannot craft under the application's prepared-statement discipline.\n");
  return 0;
}
