// Detection-throughput benchmark: the tape-free inference engine
// (src/nn/infer, fused kernels + reusable workspaces) against the recording
// autograd tape on the same trained Scenario-I model and Table 2 test
// sessions. Reports windows/sec per engine and the fused/tape speedup, and
// — when UCAD_BENCH_ASSERT_SPEEDUP is set — exits non-zero if the fused
// engine falls below that multiple, which is how CI enforces the win.
// UCAD_BENCH_EXPLAIN=1 additionally runs verdict attribution (attention
// capture + leave-one-out counterfactuals) for every abnormal verdict,
// interleaved with scoring exactly as `ucad_cli --explain` does. The
// attribution work is timed separately and reported, while the verdict
// slices exclude it — so the same speedup gate proves explanation stays
// off the verdict hot path even while attribution shares the context pool.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "nn/simd.h"
#include "obs/canary.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/scenario.h"

namespace {

using namespace ucad;  // NOLINT

struct EngineResult {
  std::string name;
  double best_pass_ms = 0.0;
  double windows_per_sec = 0.0;
};

/// Windows the batched detector runs for one session: one forward per
/// disjoint span of L scored positions.
int64_t SessionWindows(size_t session_len, int L) {
  if (session_len < 2) return 0;
  const int64_t scored = static_cast<int64_t>(session_len) - 1;
  return (scored + L - 1) / L;
}

/// Times both engines over the same session stream, interleaved per
/// session so machine-load shifts (shared hosts, frequency scaling) hit
/// tape and fused passes equally — a sequential tape-then-fused layout
/// lets a load spike land on one engine only and skew the ratio. Each
/// engine's pass time is the sum of its per-session slices; the reported
/// figure is the best pass, matching bench_compare's min-of-N convention.
///
/// With `explain`, every abnormal verdict is additionally attributed
/// (attention capture + top-3 leave-one-out counterfactuals) between the
/// timed slices — the production interleaving of `--explain`, which leases
/// contexts from the same pool the fused engine scores through. The
/// attribution time is accumulated into `attrib_ms` and reported, but the
/// verdict slices exclude it: the speedup gate then proves explanation
/// stays off the verdict hot path (no pool contention, workspace churn, or
/// capture-hook overhead leaking into scoring).
std::pair<EngineResult, EngineResult> RunEngines(
    const transdas::TransDasDetector& tape_engine,
    const transdas::TransDasDetector& fused_engine,
    const std::vector<std::vector<int>>& sessions, int64_t total_windows,
    int passes, bool explain, double* attrib_ms, int64_t* attrib_ops,
    const std::function<void()>& after_pass) {
  // One untimed pass per engine warms caches (and, for the fused engine,
  // sizes the context workspaces so the timed passes run at steady state).
  for (const std::vector<int>& keys : sessions) {
    tape_engine.DetectSession(keys);
    fused_engine.DetectSession(keys);
  }
  EngineResult tape{"tape", 0.0, 0.0};
  EngineResult fused{"fused", 0.0, 0.0};
  obs::Histogram* tape_hist =
      obs::DefaultMetrics().GetHistogram("bench/detect/tape_pass_ms");
  obs::Histogram* fused_hist =
      obs::DefaultMetrics().GetHistogram("bench/detect/fused_pass_ms");
  for (int pass = 0; pass < passes; ++pass) {
    double tape_ms = 0.0;
    double fused_ms = 0.0;
    for (const std::vector<int>& keys : sessions) {
      util::Timer timer;
      tape_engine.DetectSession(keys);
      const double mid = timer.ElapsedMillis();
      const transdas::SessionVerdict verdict =
          fused_engine.DetectSession(keys);
      const double end = timer.ElapsedMillis();
      tape_ms += mid;
      fused_ms += end - mid;
      if (explain) {
        for (int pos : verdict.AbnormalPositions()) {
          fused_engine.AttributeOperation(keys, pos, 3);
          ++*attrib_ops;
        }
        *attrib_ms += timer.ElapsedMillis() - end;
      }
    }
    tape_hist->Observe(tape_ms);
    fused_hist->Observe(fused_ms);
    if (tape.best_pass_ms == 0.0 || tape_ms < tape.best_pass_ms) {
      tape.best_pass_ms = tape_ms;
    }
    if (fused.best_pass_ms == 0.0 || fused_ms < fused.best_pass_ms) {
      fused.best_pass_ms = fused_ms;
    }
    // Quality-observability work (canary rounds) runs BETWEEN passes, off
    // the timed slices: the speedup gate then proves the monitoring
    // machinery leaves the verdict hot path untouched.
    if (after_pass) after_pass();
  }
  for (EngineResult* r : {&tape, &fused}) {
    r->windows_per_sec =
        static_cast<double>(total_windows) / (r->best_pass_ms / 1000.0);
    obs::DefaultMetrics()
        .GetGauge("bench/detect/" + r->name + "_windows_per_sec")
        ->Set(r->windows_per_sec);
  }
  return {tape, fused};
}

/// Per-operation streaming walk over every session (the §5.3 online
/// formulation): one ScoreNextOperation per scored position. Returns the
/// wall time of the walk in ms.
double StreamWalk(const transdas::TransDasDetector& detector,
                  const std::vector<std::vector<int>>& sessions) {
  util::Timer timer;
  for (const std::vector<int>& keys : sessions) {
    if (keys.size() < 2) continue;
    std::vector<int> preceding;
    preceding.reserve(keys.size());
    preceding.push_back(keys[0]);
    for (size_t i = 1; i < keys.size(); ++i) {
      detector.ScoreNextOperation(preceding, keys[i]);
      preceding.push_back(keys[i]);
    }
  }
  return timer.ElapsedMillis();
}

bool SameVerdict(const transdas::SessionVerdict& a,
                 const transdas::SessionVerdict& b) {
  if (a.abnormal != b.abnormal ||
      a.operations.size() != b.operations.size()) {
    return false;
  }
  for (size_t i = 0; i < a.operations.size(); ++i) {
    if (a.operations[i].rank != b.operations[i].rank ||
        a.operations[i].score != b.operations[i].score ||
        a.operations[i].margin != b.operations[i].margin ||
        a.operations[i].abnormal != b.operations[i].abnormal) {
      return false;
    }
  }
  return true;
}

/// UCAD_BENCH_INCREMENTAL=1: the PR 9 scoring tiers against their PR 5
/// from-scratch counterparts on the same trained Scenario-I model —
/// (a) multi-window batched DetectSessions vs per-window DetectSession,
/// (b) slide-cache incremental streaming vs from-scratch streaming. All
/// four slices run back-to-back inside each pass (min-of-N best pass), so
/// machine-load shifts hit every tier of a pass equally. Warmup passes
/// double as a verdict-identity check: any divergence fails the run before
/// a single timed pass. UCAD_BENCH_ASSERT_BATCH_SPEEDUP gates the batched
/// tier's windows/sec multiple over the fused from-scratch path.
int RunIncrementalMode(eval::Scale scale) {
  bench::Banner("Detect throughput incremental", scale);

  eval::ScenarioConfig config = eval::ScenarioIConfig(scale);
  util::Timer timer;
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  config.model.vocab_size = ds.vocab.size();
  util::Rng rng(41);
  transdas::TransDasModel model(config.model, &rng);
  transdas::TransDasTrainer trainer(&model, config.training);
  trainer.Train(ds.train);
  std::printf("dataset + training: %.1fs (vocab %d, L=%d)\n",
              timer.ElapsedSeconds(), config.model.vocab_size,
              config.model.window);

  std::vector<std::vector<int>> sessions;
  int64_t total_windows = 0;
  int64_t total_ops = 0;
  for (const eval::LabeledSet& set : ds.TestSets()) {
    for (const std::vector<int>& keys : set.sessions) {
      total_windows += SessionWindows(keys.size(), config.model.window);
      if (keys.size() >= 2) {
        total_ops += static_cast<int64_t>(keys.size()) - 1;
      }
      sessions.push_back(keys);
    }
  }
  std::printf("scoring %zu sessions (%lld windows, %lld streamed ops) per "
              "pass\n",
              sessions.size(), static_cast<long long>(total_windows),
              static_cast<long long>(total_ops));

  transdas::DetectorOptions fused_opts = config.detection;
  fused_opts.use_tape_engine = false;
  transdas::DetectorOptions batch_opts = fused_opts;
  batch_opts.batch_windows = 16;
  transdas::DetectorOptions incr_opts = fused_opts;
  incr_opts.incremental = true;
  const transdas::TransDasDetector fused_engine(&model, fused_opts);
  const transdas::TransDasDetector batch_engine(&model, batch_opts);
  const transdas::TransDasDetector stream_engine(&model, fused_opts);
  const transdas::TransDasDetector incr_engine(&model, incr_opts);

  // Warmup (sizes workspaces, primes weight caches) + parity: the batched
  // tier must be verdict-identical to the per-window fused path.
  const std::vector<transdas::SessionVerdict> batched_verdicts =
      batch_engine.DetectSessions(sessions);
  for (size_t s = 0; s < sessions.size(); ++s) {
    if (!SameVerdict(fused_engine.DetectSession(sessions[s]),
                     batched_verdicts[s])) {
      std::fprintf(stderr,
                   "FAIL: batched verdicts diverge from fused on session "
                   "%zu\n",
                   s);
      return 1;
    }
  }
  StreamWalk(stream_engine, sessions);
  StreamWalk(incr_engine, sessions);

  struct Tier {
    std::string name;
    double best_ms = 0.0;
    int64_t units = 0;  // windows or streamed ops per pass
  };
  Tier fused{"fused", 0.0, total_windows};
  Tier batch{"batch", 0.0, total_windows};
  Tier stream{"stream", 0.0, total_ops};
  Tier incr{"incr", 0.0, total_ops};
  const int passes = scale == eval::Scale::kSmoke ? 5 : 8;
  for (int pass = 0; pass < passes; ++pass) {
    util::Timer slice;
    for (const std::vector<int>& keys : sessions) {
      fused_engine.DetectSession(keys);
    }
    const double fused_ms = slice.ElapsedMillis();
    util::Timer batch_timer;
    batch_engine.DetectSessions(sessions);
    const double batch_ms = batch_timer.ElapsedMillis();
    const double stream_ms = StreamWalk(stream_engine, sessions);
    const double incr_ms = StreamWalk(incr_engine, sessions);
    const double pass_ms[] = {fused_ms, batch_ms, stream_ms, incr_ms};
    Tier* tiers[] = {&fused, &batch, &stream, &incr};
    for (int t = 0; t < 4; ++t) {
      obs::DefaultMetrics()
          .GetHistogram("bench/detect/" + tiers[t]->name + "_pass_ms")
          ->Observe(pass_ms[t]);
      if (tiers[t]->best_ms == 0.0 || pass_ms[t] < tiers[t]->best_ms) {
        tiers[t]->best_ms = pass_ms[t];
      }
    }
  }

  util::TablePrinter table({"Tier", "best pass (ms)", "units/sec"});
  for (const Tier* t : {&fused, &batch, &stream, &incr}) {
    const double per_sec =
        static_cast<double>(t->units) / (t->best_ms / 1000.0);
    obs::DefaultMetrics()
        .GetGauge("bench/detect/" + t->name +
                  (t->units == total_windows ? "_windows_per_sec"
                                             : "_ops_per_sec"))
        ->Set(per_sec);
    table.AddRow({t->name, util::FormatDouble(t->best_ms, 2),
                  util::FormatDouble(per_sec, 0)});
  }
  table.Print(std::cout);

  const double batch_speedup = fused.best_ms / batch.best_ms;
  const double incr_speedup = stream.best_ms / incr.best_ms;
  obs::DefaultMetrics()
      .GetGauge("bench/detect/speedup_batch_over_fused")
      ->Set(batch_speedup);
  obs::DefaultMetrics()
      .GetGauge("bench/detect/speedup_incr_over_stream")
      ->Set(incr_speedup);
  std::printf("batched speedup over fused per-window: %.2fx\n",
              batch_speedup);
  std::printf("incremental speedup over from-scratch streaming: %.2fx\n",
              incr_speedup);

  const char* assert_env = std::getenv("UCAD_BENCH_ASSERT_BATCH_SPEEDUP");
  if (assert_env != nullptr && *assert_env != '\0') {
    const double required = std::atof(assert_env);
    if (!(batch_speedup >= required)) {
      std::fprintf(stderr,
                   "FAIL: batched speedup %.2fx below required %.2fx\n",
                   batch_speedup, required);
      return 1;
    }
    std::printf("batch speedup gate: %.2fx >= %.2fx OK\n", batch_speedup,
                required);
  }
  return 0;
}

/// Verdict identity as the kernel-tier contract defines it: the same
/// positions flagged with the same ranks. Scores and margins are allowed
/// to differ in low-order bits (the vectorized tier reassociates float
/// sums), so unlike SameVerdict this does not compare them.
bool SameVerdictStructure(const transdas::SessionVerdict& a,
                          const transdas::SessionVerdict& b) {
  if (a.abnormal != b.abnormal ||
      a.operations.size() != b.operations.size()) {
    return false;
  }
  for (size_t i = 0; i < a.operations.size(); ++i) {
    if (a.operations[i].rank != b.operations[i].rank ||
        a.operations[i].abnormal != b.operations[i].abnormal) {
      return false;
    }
  }
  return true;
}

/// UCAD_BENCH_SIMD=1: the kernel tiers (docs/INFERENCE.md) against each
/// other on the same trained Scenario-I model — reference, vectorized,
/// and int8 detectors share the model and run back-to-back inside each
/// pass, so machine-load shifts hit every tier of a pass equally. The
/// warmup pass doubles as the verdict cross-check: the vectorized tier
/// must be verdict-identical (ranks + flags) to reference on every test
/// session, and the int8 tier's flag agreement is measured and reported.
/// UCAD_BENCH_ASSERT_SIMD_SPEEDUP gates the vectorized tier's
/// windows/sec multiple over reference (a within-run ratio, immune to
/// machine-speed differences); the int8 ratio is reported only — at
/// Scenario-I shapes the quantize/dequantize overhead typically exceeds
/// the multiply savings, and the tier exists for memory-bound deployments.
int RunSimdMode(eval::Scale scale) {
  bench::Banner("Detect throughput simd", scale);
  std::printf("cpu features: %s, active isa: %s\n",
              util::CpuFeaturesString().c_str(),
              util::SimdIsaName(util::ActiveSimdIsa()));
  bench::AddManifestNote("kernel_tiers", "reference,vectorized,int8");

  eval::ScenarioConfig config = eval::ScenarioIConfig(scale);
  // The kernel comparison runs at the paper's Scenario-I dims regardless
  // of scale (scale still sizes the dataset and epochs): smoke shrinks
  // the model to L=12/B=2, below the point where vector width matters,
  // and the resulting ratio would measure detector overhead, not kernels.
  // The vocabulary is likewise padded to a production-sized key space —
  // the all-key logits GEMM is the widest kernel on the verdict path,
  // and a ~21-key smoke vocab reduces it to a sliver.
  config.model.window = 30;
  config.model.hidden_dim = 10;
  config.model.num_heads = 2;
  config.model.num_blocks = 6;
  util::Timer timer;
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  config.model.vocab_size =
      std::max<int>(static_cast<int>(ds.vocab.size()), 512);
  util::Rng rng(41);
  transdas::TransDasModel model(config.model, &rng);
  transdas::TransDasTrainer trainer(&model, config.training);
  trainer.Train(ds.train);
  std::printf("dataset + training: %.1fs (vocab %d, L=%d)\n",
              timer.ElapsedSeconds(), config.model.vocab_size,
              config.model.window);

  std::vector<std::vector<int>> sessions;
  int64_t total_windows = 0;
  for (const eval::LabeledSet& set : ds.TestSets()) {
    for (const std::vector<int>& keys : set.sessions) {
      total_windows += SessionWindows(keys.size(), config.model.window);
      sessions.push_back(keys);
    }
  }
  std::printf("scoring %zu sessions (%lld windows) per pass\n",
              sessions.size(), static_cast<long long>(total_windows));

  transdas::DetectorOptions ref_opts = config.detection;
  ref_opts.use_tape_engine = false;
  transdas::DetectorOptions vec_opts = ref_opts;
  vec_opts.kernel_tier = nn::KernelTier::kVectorized;
  transdas::DetectorOptions int8_opts = ref_opts;
  int8_opts.kernel_tier = nn::KernelTier::kInt8;
  const transdas::TransDasDetector ref_engine(&model, ref_opts);
  const transdas::TransDasDetector vec_engine(&model, vec_opts);
  const transdas::TransDasDetector int8_engine(&model, int8_opts);

  // Warmup (sizes workspaces, builds the int8 weight cache) + parity: the
  // vectorized tier must be verdict-identical to reference; int8 flag
  // agreement is measured per operation and per session.
  int64_t ops_total = 0, ops_agree = 0;
  int64_t flags_agree = 0;
  for (size_t s = 0; s < sessions.size(); ++s) {
    const transdas::SessionVerdict ref = ref_engine.DetectSession(sessions[s]);
    const transdas::SessionVerdict vec = vec_engine.DetectSession(sessions[s]);
    const transdas::SessionVerdict i8 = int8_engine.DetectSession(sessions[s]);
    if (!SameVerdictStructure(ref, vec)) {
      std::fprintf(stderr,
                   "FAIL: vectorized verdicts diverge from reference on "
                   "session %zu\n",
                   s);
      return 1;
    }
    if (i8.abnormal == ref.abnormal) ++flags_agree;
    for (size_t i = 0;
         i < ref.operations.size() && i < i8.operations.size(); ++i) {
      ++ops_total;
      if (i8.operations[i].abnormal == ref.operations[i].abnormal) {
        ++ops_agree;
      }
    }
  }
  const double int8_op_agreement =
      ops_total > 0 ? static_cast<double>(ops_agree) / ops_total : 1.0;
  std::printf("vectorized verdict identity: OK (%zu sessions)\n",
              sessions.size());
  std::printf("int8 flag agreement: %.4f per-op, %lld/%zu sessions\n",
              int8_op_agreement, static_cast<long long>(flags_agree),
              sessions.size());
  obs::DefaultMetrics()
      .GetGauge("bench/detect/int8_flag_agreement")
      ->Set(int8_op_agreement);

  struct Tier {
    std::string name;
    const transdas::TransDasDetector* engine;
    double best_ms = 0.0;
  };
  Tier tiers[] = {{"reference", &ref_engine, 0.0},
                  {"vectorized", &vec_engine, 0.0},
                  {"int8", &int8_engine, 0.0}};
  const int passes = scale == eval::Scale::kSmoke ? 5 : 8;
  for (int pass = 0; pass < passes; ++pass) {
    for (Tier& t : tiers) {
      util::Timer slice;
      for (const std::vector<int>& keys : sessions) {
        t.engine->DetectSession(keys);
      }
      const double ms = slice.ElapsedMillis();
      obs::DefaultMetrics()
          .GetHistogram("bench/detect/" + t.name + "_pass_ms")
          ->Observe(ms);
      if (t.best_ms == 0.0 || ms < t.best_ms) t.best_ms = ms;
    }
  }

  util::TablePrinter table({"Tier", "best pass (ms)", "windows/sec"});
  for (const Tier& t : tiers) {
    const double per_sec =
        static_cast<double>(total_windows) / (t.best_ms / 1000.0);
    obs::DefaultMetrics()
        .GetGauge("bench/detect/" + t.name + "_windows_per_sec")
        ->Set(per_sec);
    table.AddRow({t.name, util::FormatDouble(t.best_ms, 2),
                  util::FormatDouble(per_sec, 0)});
  }
  table.Print(std::cout);

  const double vec_speedup = tiers[0].best_ms / tiers[1].best_ms;
  const double int8_speedup = tiers[0].best_ms / tiers[2].best_ms;
  obs::DefaultMetrics()
      .GetGauge("bench/detect/speedup_vectorized_over_reference")
      ->Set(vec_speedup);
  obs::DefaultMetrics()
      .GetGauge("bench/detect/speedup_int8_over_reference")
      ->Set(int8_speedup);
  std::printf("vectorized speedup over reference: %.2fx\n", vec_speedup);
  std::printf("int8 speedup over reference: %.2fx (reported, not gated)\n",
              int8_speedup);

  const char* assert_env = std::getenv("UCAD_BENCH_ASSERT_SIMD_SPEEDUP");
  if (assert_env != nullptr && *assert_env != '\0') {
    const double required = std::atof(assert_env);
    if (!(vec_speedup >= required)) {
      std::fprintf(stderr,
                   "FAIL: vectorized speedup %.2fx below required %.2fx\n",
                   vec_speedup, required);
      return 1;
    }
    std::printf("simd speedup gate: %.2fx >= %.2fx OK\n", vec_speedup,
                required);
  }
  return 0;
}

}  // namespace

int main() {
  const eval::Scale scale = eval::ScaleFromEnv();
  const char* simd_env = std::getenv("UCAD_BENCH_SIMD");
  if (simd_env != nullptr && *simd_env != '\0' &&
      std::string(simd_env) != "0") {
    return RunSimdMode(scale);
  }
  const char* inc_env = std::getenv("UCAD_BENCH_INCREMENTAL");
  if (inc_env != nullptr && *inc_env != '\0' && std::string(inc_env) != "0") {
    return RunIncrementalMode(scale);
  }
  bench::Banner("Detect throughput", scale);

  eval::ScenarioConfig config = eval::ScenarioIConfig(scale);
  util::Timer timer;
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  config.model.vocab_size = ds.vocab.size();
  util::Rng rng(41);
  transdas::TransDasModel model(config.model, &rng);
  transdas::TransDasTrainer trainer(&model, config.training);
  trainer.Train(ds.train);
  std::printf("dataset + training: %.1fs (vocab %d, L=%d)\n",
              timer.ElapsedSeconds(), config.model.vocab_size,
              config.model.window);

  std::vector<std::vector<int>> sessions;
  int64_t total_windows = 0;
  for (const eval::LabeledSet& set : ds.TestSets()) {
    for (const std::vector<int>& keys : set.sessions) {
      total_windows += SessionWindows(keys.size(), config.model.window);
      sessions.push_back(keys);
    }
  }
  std::printf("scoring %zu sessions (%lld windows) per pass\n",
              sessions.size(), static_cast<long long>(total_windows));

  transdas::DetectorOptions tape_opts = config.detection;
  tape_opts.use_tape_engine = true;
  transdas::DetectorOptions fused_opts = config.detection;
  fused_opts.use_tape_engine = false;
  const transdas::TransDasDetector tape_engine(&model, tape_opts);
  const transdas::TransDasDetector fused_engine(&model, fused_opts);

  const char* explain_env = std::getenv("UCAD_BENCH_EXPLAIN");
  const bool explain = explain_env != nullptr && *explain_env != '\0' &&
                       std::string(explain_env) != "0";
  if (explain) {
    std::printf("explain mode: abnormal verdicts attributed between timed "
                "slices\n");
  }

  // UCAD_BENCH_QUALITY=1 runs the full quality-observability stack
  // alongside the benchmark: the time-series sampler ticking at its
  // default interval on a background thread and one canary round (shadow
  // scoring through the fused engine) between each timed pass. The serial
  // gate below runs unchanged at its default threshold, so CI proves the
  // monitoring machinery does not perturb the verdict hot path.
  const char* quality_env = std::getenv("UCAD_BENCH_QUALITY");
  const bool quality = quality_env != nullptr && *quality_env != '\0' &&
                       std::string(quality_env) != "0";
  std::unique_ptr<obs::TimeSeriesStore> store;
  std::unique_ptr<workload::SessionGenerator> canary_generator;
  std::unique_ptr<obs::CanaryEngine> canary;
  std::function<void()> after_pass;
  if (quality) {
    std::printf("quality mode: sampler ticking + canary rounds between "
                "timed passes\n");
    store = std::make_unique<obs::TimeSeriesStore>(&obs::DefaultMetrics(),
                                                   obs::TimeSeriesOptions{});
    store->Start();
    canary_generator =
        std::make_unique<workload::SessionGenerator>(config.spec);
    obs::CanaryOptions canary_options;
    canary_options.top_p = config.detection.top_p;
    canary = std::make_unique<obs::CanaryEngine>(
        canary_generator.get(), &ds.vocab,
        [&fused_engine](const std::vector<int>& keys) {
          return fused_engine.ShadowDetectSession(keys).abnormal;
        },
        [&fused_engine](const std::vector<int>& keys, int position,
                        int top_k) {
          std::vector<int> out;
          for (const auto& cand :
               fused_engine.ExplainOperation(keys, position, top_k)) {
            out.push_back(cand.key);
          }
          return out;
        },
        canary_options);
    after_pass = [&canary] { canary->RunRound(); };
  }

  const int passes = scale == eval::Scale::kSmoke ? 5 : 8;
  double attrib_ms = 0.0;
  int64_t attrib_ops = 0;
  const auto [tape, fused] =
      RunEngines(tape_engine, fused_engine, sessions, total_windows, passes,
                 explain, &attrib_ms, &attrib_ops, after_pass);
  if (store) store->Stop();
  const double speedup = tape.best_pass_ms / fused.best_pass_ms;
  obs::DefaultMetrics()
      .GetGauge("bench/detect/speedup_fused_over_tape")
      ->Set(speedup);

  util::TablePrinter table({"Engine", "best pass (ms)", "windows/sec"});
  for (const EngineResult& r : {tape, fused}) {
    table.AddRow({r.name, util::FormatDouble(r.best_pass_ms, 2),
                  util::FormatDouble(r.windows_per_sec, 0)});
  }
  table.Print(std::cout);
  std::printf("fused speedup over tape: %.2fx\n", speedup);
  if (explain && attrib_ops > 0) {
    obs::DefaultMetrics()
        .GetGauge("bench/detect/attrib_ms_per_verdict")
        ->Set(attrib_ms / static_cast<double>(attrib_ops));
    std::printf("attribution: %lld abnormal verdicts across %d passes, "
                "%.3f ms each (off the timed verdict slices)\n",
                static_cast<long long>(attrib_ops), passes,
                attrib_ms / static_cast<double>(attrib_ops));
  }

  if (canary) {
    obs::DefaultMetrics().GetGauge("bench/detect/canary_hit_rate")
        ->Set(canary->HitRate());
    std::printf("quality: %llu canary probes (%llu true / %llu missed / "
                "%llu false flags), hit rate %.2f, %zu sampler ticks\n",
                static_cast<unsigned long long>(canary->ProbesTotal()),
                static_cast<unsigned long long>(canary->TrueFlags()),
                static_cast<unsigned long long>(canary->MissedFlags()),
                static_cast<unsigned long long>(canary->FalseFlags()),
                canary->HitRate(), store->TickCount());
  }

  const char* assert_env = std::getenv("UCAD_BENCH_ASSERT_SPEEDUP");
  if (assert_env != nullptr && *assert_env != '\0') {
    const double required = std::atof(assert_env);
    if (!(speedup >= required)) {
      std::fprintf(stderr,
                   "FAIL: fused engine speedup %.2fx below required %.2fx\n",
                   speedup, required);
      return 1;
    }
    std::printf("speedup gate: %.2fx >= %.2fx OK\n", speedup, required);
  }
  return 0;
}
