// Reproduces paper Figure 7: sensitivity of UCAD's F1 to the four major
// hyper-parameters — top-p, input size L, margin g, hidden dimension h —
// in both scenarios. The paper's finding: the variation of F1 is small
// (< ~0.04) around the defaults.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"

namespace {

using namespace ucad;  // NOLINT

/// (a) top-p sweep: one trained model, many detector settings.
void SweepTopP(const eval::ScenarioConfig& config,
               const eval::ScenarioDataset& ds, util::TablePrinter* table) {
  transdas::TransDasConfig model_config = config.model;
  model_config.vocab_size = ds.vocab.size();
  util::Rng rng(301);
  transdas::TransDasModel model(model_config, &rng);
  transdas::TransDasTrainer trainer(&model, config.training);
  trainer.Train(ds.train);
  const int max_p = std::max(2, config.detection.top_p * 2);
  for (int p = 1; p <= max_p; p = p < 4 ? p + 1 : p + 2) {
    transdas::TransDasDetector detector(
        &model, transdas::DetectorOptions{.top_p = p});
    const eval::EvalResult r = eval::Evaluate(
        [&detector](const std::vector<int>& s) {
          return detector.DetectSession(s).abnormal;
        },
        ds.TestSets());
    table->AddRow({config.name, "p", std::to_string(p),
                   util::FormatDouble(r.f1, 5)});
    std::printf("  p=%-3d F1 %.5f\n", p, r.f1);
  }
}

/// Generic retrain sweep over a config mutation.
template <typename Mutate>
void SweepRetrain(const eval::ScenarioConfig& config,
                  const eval::ScenarioDataset& ds, const char* knob,
                  const std::vector<double>& values, Mutate mutate,
                  util::TablePrinter* table) {
  for (double value : values) {
    transdas::TransDasConfig model = config.model;
    transdas::TrainOptions training = config.training;
    mutate(value, &model, &training);
    const eval::TransDasRun run =
        eval::RunTransDas(ds, model, training, config.detection, ds.train);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", value);
    table->AddRow({config.name, knob, buf,
                   util::FormatDouble(run.metrics.f1, 5)});
    std::printf("  %s=%-6g F1 %.5f\n", knob, value, run.metrics.f1);
  }
}

void RunScenario(const eval::ScenarioConfig& config,
                 util::TablePrinter* table) {
  std::printf("\n--- %s ---\n", config.name.c_str());
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);

  SweepTopP(config, ds, table);

  // (b) window size L.
  const int L0 = config.model.window;
  SweepRetrain(config, ds, "L", {L0 * 0.5, 1.0 * L0, L0 * 1.5},
               [](double v, transdas::TransDasConfig* m,
                  transdas::TrainOptions* t) {
                 m->window = std::max(4, static_cast<int>(v));
                 t->window_stride = std::max(1, m->window / 2);
               },
               table);

  // (c) triplet margin g.
  SweepRetrain(config, ds, "g", {0.1, 0.5, 0.9},
               [](double v, transdas::TransDasConfig*,
                  transdas::TrainOptions* t) {
                 t->margin = static_cast<float>(v);
               },
               table);

  // (d) hidden dimension h.
  const int h0 = config.model.hidden_dim;
  SweepRetrain(config, ds, "h", {h0 * 0.5, 1.0 * h0, h0 * 2.0},
               [](double v, transdas::TransDasConfig* m,
                  transdas::TrainOptions*) {
                 m->hidden_dim = std::max(4, static_cast<int>(v));
                 m->num_heads =
                     std::max(1, std::min(m->num_heads, m->hidden_dim / 4));
                 while (m->hidden_dim % m->num_heads != 0) --m->num_heads;
               },
               table);
}

}  // namespace

int main() {
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner("Figure 7: hyper-parameter sensitivity (p, L, g, h)", scale);
  util::TablePrinter table({"Scenario", "Knob", "Value", "F1"});
  RunScenario(bench::SweepSized(eval::ScenarioIConfig(scale), scale),
              &table);
  RunScenario(bench::SweepSized(eval::ScenarioIIConfig(scale), scale),
              &table);
  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "paper:    F1 varies < ~0.04 across each sweep; p peaks at the\n"
      "          scenario default (5 / 10), L peaks at the average session\n"
      "          length, g and h are flat.\n");
  return 0;
}
