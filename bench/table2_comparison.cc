// Reproduces paper Table 2: detection performance of UCAD vs the five
// unsupervised baselines in both scenarios — FPR on the normal testing
// sets (V1-V3), FNR on the abnormal sets (A1-A3), and session-level
// precision / recall / F1.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"
#include "util/timer.h"

namespace {

using namespace ucad;  // NOLINT

void RunScenario(const eval::ScenarioConfig& config,
                 const char* paper_summary) {
  std::printf("\n--- %s ---\n", config.name.c_str());
  util::Timer timer;
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  std::printf("dataset: %zu train sessions, vocab %d, built in %.1fs\n",
              ds.train.size(), ds.vocab.size(), timer.ElapsedSeconds());

  util::TablePrinter table(bench::MetricsHeader("Method"));
  // All six methods fan out across the pool (serial at UCAD_THREADS=1);
  // rows come back in the fixed Table 2 order either way.
  const std::vector<eval::MethodResult> results =
      eval::RunAllMethods(config, ds);
  for (const eval::MethodResult& r : results) {
    table.AddRow(bench::MetricsRow(r.name, r.metrics));
    std::printf("  %-16s done in %.1fs (F1 %.5f)\n", r.name.c_str(),
                r.seconds, r.metrics.f1);
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf("paper:    %s\n", paper_summary);
}

}  // namespace

int main() {
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner("Table 2: UCAD vs baselines (both scenarios)", scale);
  RunScenario(
      eval::ScenarioIConfig(scale),
      "F1 = 0.83582 (OCSVM), 0.81834 (iForest), 0.65403 (Mazzawi), "
      "0.78041 (DeepLog), 0.81429 (USAD), 0.89693 (UCAD)");
  RunScenario(
      eval::ScenarioIIConfig(scale),
      "F1 = 0.79407 (OCSVM), 0.87698 (iForest), 0.49656 (Mazzawi), "
      "0.74699 (DeepLog), 0.84742 (USAD), 0.98168 (UCAD)");
  return 0;
}
