// Reproduces paper Table 3: the contribution of each Trans-DAS design —
// order-free embedding, bidirectional skip-next masking, triplet training
// objective — added separately on top of the base transformer, plus the
// full Trans-DAS.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "eval/runner.h"

namespace {

using namespace ucad;  // NOLINT

struct Variant {
  const char* name;
  bool position_embedding;
  transdas::MaskMode mask;
  bool triplet;
};

constexpr Variant kVariants[] = {
    {"Base Transformer", true, transdas::MaskMode::kCausal, false},
    {"Our embedding layer", false, transdas::MaskMode::kCausal, false},
    {"Our masking mechanism", true,
     transdas::MaskMode::kBidirectionalSkipNext, false},
    {"Our training objective", true, transdas::MaskMode::kCausal, true},
    {"Trans-DAS", false, transdas::MaskMode::kBidirectionalSkipNext, true},
};

void RunScenario(const eval::ScenarioConfig& config,
                 const char* paper_summary) {
  std::printf("\n--- %s ---\n", config.name.c_str());
  const eval::ScenarioDataset ds =
      eval::BuildScenarioDataset(config.spec, config.dataset);
  util::TablePrinter table(bench::MetricsHeader("Model Variant"));
  for (const Variant& v : kVariants) {
    transdas::TransDasConfig model = config.model;
    model.use_position_embedding = v.position_embedding;
    model.mask_mode = v.mask;
    transdas::TrainOptions training = config.training;
    training.use_triplet = v.triplet;
    const eval::TransDasRun run =
        eval::RunTransDas(ds, model, training, config.detection, ds.train);
    table.AddRow(bench::MetricsRow(v.name, run.metrics));
    std::printf("  %-24s F1 %.5f\n", v.name, run.metrics.f1);
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf("paper:    %s\n", paper_summary);
}

}  // namespace

int main() {
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner("Table 3: contribution of the Trans-DAS designs", scale);
  // The ablation needs converged models to separate the variants; use the
  // full Scenario-I budget (cheap) and a moderately reduced Scenario-II.
  RunScenario(eval::ScenarioIConfig(scale),
              "F1 = 0.86713 (base), 0.87434 (+embed), 0.88417 (+mask), "
              "0.89416 (+objective), 0.89693 (Trans-DAS)");
  eval::ScenarioConfig two = eval::ScenarioIIConfig(scale);
  if (scale == eval::Scale::kRepro) {
    two.dataset.normal_sessions = 380;
    two.training.epochs = 50;
  }
  RunScenario(two,
              "F1 = 0.95721 (base), 0.95458 (+embed), 0.96991 (+mask), "
              "0.96930 (+objective), 0.98168 (Trans-DAS)");
  return 0;
}
