// Reproduces paper Table 6: transferability of UCAD to system-log anomaly
// detection (HDFS / BGL / Thunderbird-like datasets) against LogCluster
// and DeepLog. Paper parameters: L=10, g=0.5, h=64.

#include <cstdio>
#include <iostream>

#include "baselines/deeplog.h"
#include "baselines/logcluster.h"
#include "bench/bench_common.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "workload/syslog.h"

namespace {

using namespace ucad;  // NOLINT

eval::BinaryMetrics RunUcad(const workload::LogDataset& ds,
                            eval::Scale scale) {
  transdas::TransDasConfig config;
  config.vocab_size = ds.vocab_size;
  config.window = 10;               // paper: L=10
  config.hidden_dim = scale == eval::Scale::kPaper ? 64 : 32;  // paper: h=64
  config.num_heads = 4;
  config.num_blocks = scale == eval::Scale::kPaper ? 6 : 3;
  util::Rng rng(101);
  transdas::TransDasModel model(config, &rng);
  transdas::TrainOptions training;
  training.epochs = scale == eval::Scale::kSmoke ? 1 : 8;
  training.negative_samples = 4;
  training.margin = 0.5f;           // paper: g=0.5
  training.window_stride = 4;
  transdas::TransDasTrainer trainer(&model, training);
  trainer.Train(ds.train);
  // The paper's Table 6 setting fixes L=10, g=0.5, h=64 but leaves p
  // unspecified; p=9 mirrors DeepLog's top-9 acceptance.
  transdas::TransDasDetector detector(
      &model, transdas::DetectorOptions{.top_p = 9});
  return eval::EvaluateBinary(
      [&detector](const std::vector<int>& s) {
        return detector.DetectSession(s).abnormal;
      },
      ds.test_sessions, ds.test_labels);
}

eval::BinaryMetrics RunBaselineBinary(baselines::SessionDetector* detector,
                                      const workload::LogDataset& ds) {
  detector->Train(ds.train);
  return eval::EvaluateBinary(
      [detector](const std::vector<int>& s) {
        return detector->IsAbnormal(s);
      },
      ds.test_sessions, ds.test_labels);
}

void AddRows(util::TablePrinter* table, const std::string& dataset,
             const eval::BinaryMetrics& lc, const eval::BinaryMetrics& dl,
             const eval::BinaryMetrics& ours) {
  auto f = [](double v) { return util::FormatDouble(v, 5); };
  table->AddRow({dataset, "Precision", f(lc.precision), f(dl.precision),
                 f(ours.precision)});
  table->AddRow({"", "Recall", f(lc.recall), f(dl.recall), f(ours.recall)});
  table->AddRow({"", "F1-score", f(lc.f1), f(dl.f1), f(ours.f1)});
}

}  // namespace

int main() {
  const eval::Scale scale = eval::ScaleFromEnv();
  bench::Banner("Table 6: transfer to system-log anomaly detection", scale);

  workload::SyslogOptions options;
  if (scale == eval::Scale::kSmoke) {
    options.train_sessions = 60;
    options.normal_test_sessions = 40;
    options.abnormal_test_sessions = 15;
  } else if (scale == eval::Scale::kPaper) {
    options.train_sessions = 2000;
    options.normal_test_sessions = 1000;
    options.abnormal_test_sessions = 300;
  }

  util::Rng rng(7);
  std::vector<workload::LogDataset> datasets = {
      workload::MakeHdfsLikeDataset(options, &rng),
      workload::MakeBglLikeDataset(options, &rng),
      workload::MakeThunderbirdLikeDataset(options, &rng),
  };

  util::TablePrinter table(
      {"Dataset", "Metric", "LogCluster", "DeepLog", "Ours"});
  for (const workload::LogDataset& ds : datasets) {
    std::printf("running %s (vocab %d, %zu train sessions)...\n",
                ds.name.c_str(), ds.vocab_size, ds.train.size());
    baselines::LogCluster logcluster(ds.vocab_size,
                                     baselines::LogCluster::Options{});
    baselines::DeepLog::Options dl_options;
    dl_options.epochs = scale == eval::Scale::kSmoke ? 1 : 2;
    dl_options.stride = 2;
    baselines::DeepLog deeplog(ds.vocab_size, dl_options);
    AddRows(&table, ds.name, RunBaselineBinary(&logcluster, ds),
            RunBaselineBinary(&deeplog, ds), RunUcad(ds, scale));
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "paper:    HDFS  P/R/F1: 0.87371/0.74109/0.80195 (LogCluster), "
      "0.87022/0.96073/0.91324 (DeepLog), 0.84248/0.97213/0.90267 (Ours)\n"
      "          BGL   P/R/F1: 0.95463/0.64012/0.76636, "
      "0.89741/0.82783/0.86122, 0.90449/0.95823/0.93063\n"
      "          Thund P/R/F1: 0.98280/0.42782/0.59614, "
      "0.77421/1.00000/0.87273, 0.89080/1.00000/0.94225\n"
      "          (Ours: highest recall everywhere; LogCluster: highest "
      "precision)\n");
  return 0;
}
