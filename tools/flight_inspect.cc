// Offline rendering of a flight-recorder dump (binary file produced by
// `ucad_cli --flight-out` or the `--flight-dump-dir` crash handler):
//
//   flight_inspect <dump.flight> [--slowest N] [--audit audit.jsonl]
//
// Prints the dump header (records captured vs. recorded, promoted/dropped
// counts, the signal for crash dumps, the live slow-window threshold), a
// per-stage latency attribution table (exact p50/p90/p99/max over the
// captured windows plus each stage's share of total wall time), the N
// slowest windows with their full stage breakdown, and the retained
// (tail-sampled) windows. With --audit, retained windows are cross-
// referenced against the audit JSONL: the trace's session hash is matched
// to FNV-1a of each audit record's session_id, recovering the readable
// session id and SQL template behind an exemplar.
//
// Exit codes: 0 ok, 1 usage/IO/parse error.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/audit_log.h"
#include "obs/flight.h"
#include "obs/manifest.h"
#include "util/table_printer.h"

using namespace ucad;  // NOLINT

namespace {

double ExactQuantile(std::vector<float> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<size_t>(
      std::lround(q * static_cast<double>(values.size() - 1)));
  return values[idx];
}

std::string Fixed(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string SessionHex(uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "s%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string FlagNames(uint32_t flags) {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ",";
    out += name;
  };
  if (flags & obs::kFlightAbnormal) add("abnormal");
  if (flags & obs::kFlightDrift) add("drift");
  if (flags & obs::kFlightSlow) add("slow");
  return out.empty() ? "-" : out;
}

/// Index over an audit log for exemplar cross-references: trace records
/// carry only the FNV-1a hash of the session id, so the join key is
/// (hash(session_id), position). Distinct session ids can collide on the
/// hash, so both maps are multi-valued: a join is attributed only when the
/// (hash, position) key resolves to a single session — otherwise the
/// ambiguity is reported instead of silently picking a winner.
struct AuditIndex {
  std::map<std::pair<uint64_t, int>, std::vector<const obs::AuditRecord*>>
      by_key;
  /// Distinct session ids per hash, in first-seen order.
  std::map<uint64_t, std::vector<std::string>> sessions_by_hash;

  void Build(const std::vector<obs::AuditRecord>& records) {
    for (const obs::AuditRecord& r : records) {
      const uint64_t h = obs::Fnv1aHash64(r.session_id);
      std::vector<std::string>& names = sessions_by_hash[h];
      if (std::find(names.begin(), names.end(), r.session_id) ==
          names.end()) {
        names.push_back(r.session_id);
      }
      by_key[{h, r.position}].push_back(&r);
    }
  }

  /// Prints one warning per colliding hash (distinct ids, same FNV-1a).
  /// Joins stay usable where only one colliding session has a record at
  /// the traced position; the rest print as ambiguous.
  void WarnCollisions() const {
    for (const auto& [hash, names] : sessions_by_hash) {
      if (names.size() < 2) continue;
      std::fprintf(stderr,
                   "warning: audit session ids collide on fnv1a hash "
                   "%016llx:",
                   static_cast<unsigned long long>(hash));
      for (const std::string& name : names) {
        std::fprintf(stderr, " \"%s\"", name.c_str());
      }
      std::fprintf(stderr,
                   " — joins at positions present in more than one of them "
                   "are reported as ambiguous\n");
    }
  }
};

/// Distinct session ids among `records` (collision probe for one join key).
std::vector<std::string> DistinctSessions(
    const std::vector<const obs::AuditRecord*>& records) {
  std::vector<std::string> names;
  for (const obs::AuditRecord* r : records) {
    if (std::find(names.begin(), names.end(), r->session_id) ==
        names.end()) {
      names.push_back(r->session_id);
    }
  }
  return names;
}

void PrintWindow(const obs::WindowTrace& t, const AuditIndex* audit) {
  std::printf("  seq=%llu session=%s position=%d rank=%d score=%.4f "
              "margin=%.4f queue=%d flags=%s\n",
              static_cast<unsigned long long>(t.seq),
              SessionHex(t.session_hash).c_str(), t.position, t.rank,
              static_cast<double>(t.score), static_cast<double>(t.margin),
              t.queue_depth, FlagNames(t.flags).c_str());
  std::printf("    total %.3f ms =", static_cast<double>(t.total_ms));
  for (int s = 0; s < obs::kFlightStageCount; ++s) {
    std::printf(" %s %.3f", obs::FlightStageName(s),
                static_cast<double>(t.stage_ms[s]));
  }
  std::printf("\n");
  if (audit == nullptr) return;
  const auto it = audit->by_key.find({t.session_hash, t.position});
  if (it == audit->by_key.end()) {
    const auto names = audit->sessions_by_hash.find(t.session_hash);
    if (names != audit->sessions_by_hash.end()) {
      std::printf("    audit: session \"%s\", no record at position %d\n",
                  names->second.front().c_str(), t.position);
    }
    return;
  }
  const std::vector<std::string> sessions = DistinctSessions(it->second);
  if (sessions.size() > 1) {
    // Hash collision AND both sessions have a record at this position:
    // nothing distinguishes them, so refuse to attribute.
    std::printf("    audit: AMBIGUOUS — session hash %016llx is shared by",
                static_cast<unsigned long long>(t.session_hash));
    for (const std::string& name : sessions) {
      std::printf(" \"%s\"", name.c_str());
    }
    std::printf(", all with a record at position %d\n", t.position);
    return;
  }
  const obs::AuditRecord& r = *it->second.front();
  std::printf("    audit: session \"%s\" key=%d rank=%d%s%s\n",
              r.session_id.c_str(), r.key, r.rank,
              r.abnormal ? " ABNORMAL" : "",
              r.observed.empty() ? "" : (" " + r.observed).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string audit_path;
  int slowest_n = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--slowest" && i + 1 < argc) {
      slowest_n = std::atoi(argv[++i]);
    } else if (arg == "--audit" && i + 1 < argc) {
      audit_path = argv[++i];
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 1;
    }
  }
  if (path.empty() || slowest_n < 0) {
    std::fprintf(stderr,
                 "usage: flight_inspect <dump.flight> [--slowest N] "
                 "[--audit audit.jsonl]\n");
    return 1;
  }

  auto dump_result = obs::ReadFlightDumpFile(path);
  if (!dump_result.ok()) {
    std::fprintf(stderr, "%s\n", dump_result.status().ToString().c_str());
    return 1;
  }
  const obs::FlightDump& dump = dump_result.value();

  // The index holds pointers into this vector, so it must outlive `audit`.
  std::vector<obs::AuditRecord> audit_records;
  AuditIndex audit;
  const AuditIndex* audit_ptr = nullptr;
  if (!audit_path.empty()) {
    auto records = obs::ReadAuditLogFile(audit_path);
    if (!records.ok()) {
      std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
      return 1;
    }
    audit_records = std::move(records).value();
    audit.Build(audit_records);
    audit.WarnCollisions();
    audit_ptr = &audit;
  }

  std::printf("flight dump %s\n", path.c_str());
  std::printf("  windows recorded %llu, captured in rings %zu, retained %zu\n",
              static_cast<unsigned long long>(dump.records_total),
              dump.records.size(), dump.retained.size());
  std::printf("  promoted %llu, dropped %llu, slow threshold %.3f ms\n",
              static_cast<unsigned long long>(dump.promoted_total),
              static_cast<unsigned long long>(dump.dropped_total),
              dump.slow_threshold_ms);
  if (dump.signal != 0) {
    std::printf("  CRASH DUMP: fatal signal %u\n", dump.signal);
  }
  if (dump.records.empty() && dump.retained.empty()) {
    std::printf("  (no committed window traces)\n");
    return 0;
  }

  // Stage attribution over every captured trace (ring + retained traces
  // that are not also in the ring — dedup by seq).
  std::vector<const obs::WindowTrace*> all;
  all.reserve(dump.records.size() + dump.retained.size());
  {
    std::map<uint64_t, const obs::WindowTrace*> by_seq;
    for (const obs::WindowTrace& t : dump.records) by_seq.emplace(t.seq, &t);
    for (const obs::WindowTrace& t : dump.retained) by_seq.emplace(t.seq, &t);
    for (const auto& [seq, t] : by_seq) all.push_back(t);
  }

  double grand_total = 0.0;
  for (const obs::WindowTrace* t : all) grand_total += t->total_ms;
  util::TablePrinter table(
      {"stage", "p50_ms", "p90_ms", "p99_ms", "max_ms", "share"});
  for (int s = 0; s < obs::kFlightStageCount; ++s) {
    std::vector<float> ms;
    ms.reserve(all.size());
    double sum = 0.0;
    for (const obs::WindowTrace* t : all) {
      ms.push_back(t->stage_ms[s]);
      sum += t->stage_ms[s];
    }
    const double share = grand_total > 0.0 ? 100.0 * sum / grand_total : 0.0;
    table.AddRow({obs::FlightStageName(s), Fixed(ExactQuantile(ms, 0.5), 3),
                  Fixed(ExactQuantile(ms, 0.9), 3),
                  Fixed(ExactQuantile(ms, 0.99), 3),
                  Fixed(ExactQuantile(ms, 1.0), 3),
                  Fixed(share, 1) + "%"});
  }
  {
    std::vector<float> ms;
    ms.reserve(all.size());
    for (const obs::WindowTrace* t : all) ms.push_back(t->total_ms);
    table.AddRow({"total", Fixed(ExactQuantile(ms, 0.5), 3),
                  Fixed(ExactQuantile(ms, 0.9), 3),
                  Fixed(ExactQuantile(ms, 0.99), 3),
                  Fixed(ExactQuantile(ms, 1.0), 3), "100.0%"});
  }
  std::printf("\nper-stage latency attribution (%zu windows)\n", all.size());
  table.Print(std::cout);

  if (slowest_n > 0) {
    std::vector<const obs::WindowTrace*> slowest = all;
    std::sort(slowest.begin(), slowest.end(),
              [](const obs::WindowTrace* a, const obs::WindowTrace* b) {
                return a->total_ms > b->total_ms;
              });
    if (static_cast<size_t>(slowest_n) < slowest.size()) {
      slowest.resize(static_cast<size_t>(slowest_n));
    }
    std::printf("\nslowest %zu windows\n", slowest.size());
    for (const obs::WindowTrace* t : slowest) PrintWindow(*t, audit_ptr);
  }

  if (!dump.retained.empty()) {
    std::printf("\nretained (tail-sampled) windows: %zu\n",
                dump.retained.size());
    for (const obs::WindowTrace& t : dump.retained) PrintWindow(t, audit_ptr);
  }
  return 0;
}
