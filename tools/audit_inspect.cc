// Offline aggregation/replay of a detection audit log (JSONL produced by
// `ucad_cli detect --audit-out` / `ucad_cli monitor --audit-out`):
//
//   audit_inspect <audit.jsonl> [--top N] [--window W] [--json]
//
// Prints session/verdict totals, the rank distribution (exact quantiles +
// CDF over the monitor's rank buckets), the top offending keys by abnormal
// verdict count, and a drift timeline: the records replayed in windows of
// W, each window's rank histogram PSI'd against the first window — the
// same statistic the live monitor publishes as detector/drift/psi.
//
// --json emits the same aggregation as one machine-readable JSON object on
// stdout (for dashboards and CI assertions) instead of the tables.
//
// Exit codes: 0 ok, 1 usage/IO/parse error.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "util/table_printer.h"

using namespace ucad;  // NOLINT

namespace {

struct KeyStats {
  std::string observed;  // last seen template for the key
  uint64_t total = 0;
  uint64_t abnormal = 0;
  int worst_rank = 0;
};

struct DriftWindow {
  double abnormal_rate = 0.0;
  double psi = 0.0;  // 0 for the reference window
  bool reference = false;
};

double ExactQuantile(const std::vector<int>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<size_t>(
      std::lround(q * static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

std::string Fixed(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int top_n = 10;
  int window = 256;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--top" || arg == "--window") && i + 1 < argc) {
      const int value = std::atoi(argv[++i]);
      (arg == "--top" ? top_n : window) = value;
    } else if (arg == "--json") {
      json = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 1;
    }
  }
  if (path.empty() || top_n < 1 || window < 2) {
    std::fprintf(stderr,
                 "usage: audit_inspect <audit.jsonl> [--top N] [--window "
                 "W] [--json]\n");
    return 1;
  }

  auto records = obs::ReadAuditLogFile(path);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 1;
  }
  if (records->empty()) {
    if (json) {
      std::printf("{\"path\":\"%s\",\"records\":0}\n",
                  obs::JsonEscape(path).c_str());
    } else {
      std::printf("%s: empty audit log\n", path.c_str());
    }
    return 0;
  }

  // ---- Totals --------------------------------------------------------
  std::map<std::string, bool> sessions;  // id -> any abnormal verdict
  std::map<int, KeyStats> keys;
  std::vector<int> ranks;
  ranks.reserve(records->size());
  uint64_t abnormal_records = 0;
  double closest_normal_margin = std::numeric_limits<double>::infinity();
  int64_t first_ms = records->front().wall_ms;
  int64_t last_ms = first_ms;
  for (const obs::AuditRecord& r : *records) {
    sessions[r.session_id] = sessions[r.session_id] || r.abnormal;
    KeyStats& ks = keys[r.key];
    if (!r.observed.empty()) ks.observed = r.observed;
    ++ks.total;
    ks.worst_rank = std::max(ks.worst_rank, r.rank);
    if (r.abnormal) {
      ++ks.abnormal;
      ++abnormal_records;
    } else if (std::isfinite(r.margin)) {
      closest_normal_margin =
          std::min(closest_normal_margin, static_cast<double>(r.margin));
    }
    ranks.push_back(r.rank);
    first_ms = std::min(first_ms, r.wall_ms);
    last_ms = std::max(last_ms, r.wall_ms);
  }
  uint64_t abnormal_sessions = 0;
  for (const auto& [id, abnormal] : sessions) {
    if (abnormal) ++abnormal_sessions;
  }

  // ---- Rank distribution --------------------------------------------
  std::sort(ranks.begin(), ranks.end());
  std::vector<uint64_t> bucket_counts(obs::RankBuckets::Size(), 0);
  for (int rank : ranks) ++bucket_counts[obs::RankBuckets::BucketOf(rank)];

  // ---- Top offending keys -------------------------------------------
  std::vector<std::pair<int, KeyStats>> offenders(keys.begin(), keys.end());
  std::sort(offenders.begin(), offenders.end(),
            [](const auto& a, const auto& b) {
              return a.second.abnormal != b.second.abnormal
                         ? a.second.abnormal > b.second.abnormal
                         : a.second.worst_rank > b.second.worst_rank;
            });

  // ---- Drift timeline (replay) --------------------------------------
  // Windows of `window` records in log order, PSI against the first full
  // window — the offline mirror of detector/drift/psi.
  const size_t n_windows = records->size() / static_cast<size_t>(window);
  std::vector<DriftWindow> drift_windows;
  if (n_windows >= 2) {
    std::vector<uint64_t> reference(obs::RankBuckets::Size(), 0);
    for (size_t w = 0; w < n_windows; ++w) {
      std::vector<uint64_t> counts(obs::RankBuckets::Size(), 0);
      uint64_t abnormal_in_window = 0;
      for (size_t i = w * window; i < (w + 1) * static_cast<size_t>(window);
           ++i) {
        const obs::AuditRecord& r = (*records)[i];
        ++counts[obs::RankBuckets::BucketOf(r.rank)];
        if (r.abnormal) ++abnormal_in_window;
      }
      DriftWindow dw;
      dw.abnormal_rate = static_cast<double>(abnormal_in_window) / window;
      if (w == 0) {
        reference = counts;
        dw.reference = true;
      } else {
        dw.psi = obs::PopulationStabilityIndex(reference, counts);
      }
      drift_windows.push_back(dw);
    }
  }

  if (json) {
    std::string out = "{\"path\":\"" + obs::JsonEscape(path) + "\"";
    out += ",\"records\":" + std::to_string(records->size());
    out += ",\"sessions\":" + std::to_string(sessions.size());
    out += ",\"span_ms\":" + std::to_string(last_ms - first_ms);
    if (!records->front().model_hash.empty()) {
      out += ",\"model_hash\":\"" +
             obs::JsonEscape(records->front().model_hash) + "\"";
    }
    out += ",\"abnormal_records\":" + std::to_string(abnormal_records);
    out += ",\"abnormal_sessions\":" + std::to_string(abnormal_sessions);
    if (std::isfinite(closest_normal_margin)) {
      out += ",\"closest_normal_margin\":" + Num(closest_normal_margin);
    }
    out += ",\"rank_quantiles\":{\"p50\":" + Num(ExactQuantile(ranks, 0.50)) +
           ",\"p90\":" + Num(ExactQuantile(ranks, 0.90)) +
           ",\"p99\":" + Num(ExactQuantile(ranks, 0.99)) +
           ",\"max\":" + std::to_string(ranks.back()) + "}";
    out += ",\"rank_buckets\":[";
    bool first = true;
    uint64_t cumulative = 0;
    for (size_t b = 0; b < bucket_counts.size(); ++b) {
      if (bucket_counts[b] == 0) continue;
      cumulative += bucket_counts[b];
      if (!first) out += ",";
      first = false;
      out += "{\"label\":\"" +
             obs::JsonEscape(obs::RankBuckets::LabelOf(b)) +
             "\",\"count\":" + std::to_string(bucket_counts[b]) +
             ",\"cdf\":" +
             Num(static_cast<double>(cumulative) /
                 static_cast<double>(ranks.size())) +
             "}";
    }
    out += "],\"top_keys\":[";
    first = true;
    int shown = 0;
    for (const auto& [key, ks] : offenders) {
      if (ks.abnormal == 0 || shown >= top_n) break;
      ++shown;
      if (!first) out += ",";
      first = false;
      out += "{\"key\":" + std::to_string(key) +
             ",\"abnormal\":" + std::to_string(ks.abnormal) +
             ",\"total\":" + std::to_string(ks.total) +
             ",\"worst_rank\":" + std::to_string(ks.worst_rank) +
             ",\"observed\":\"" + obs::JsonEscape(ks.observed) + "\"}";
    }
    out += "],\"drift\":{\"window\":" + std::to_string(window) +
           ",\"windows\":[";
    for (size_t w = 0; w < drift_windows.size(); ++w) {
      if (w > 0) out += ",";
      out += "{\"abnormal_rate\":" + Num(drift_windows[w].abnormal_rate);
      if (drift_windows[w].reference) {
        out += ",\"reference\":true";
      } else {
        out += ",\"psi\":" + Num(drift_windows[w].psi);
      }
      out += "}";
    }
    out += "]}}";
    std::printf("%s\n", out.c_str());
    return 0;
  }

  std::printf("%s: %zu verdicts over %zu sessions (%.1f s span)\n",
              path.c_str(), records->size(), sessions.size(),
              static_cast<double>(last_ms - first_ms) / 1e3);
  std::printf("  abnormal: %llu verdicts, %llu/%zu sessions",
              static_cast<unsigned long long>(abnormal_records),
              static_cast<unsigned long long>(abnormal_sessions),
              sessions.size());
  if (!records->front().model_hash.empty()) {
    std::printf("  (model %s)", records->front().model_hash.c_str());
  }
  std::printf("\n");
  if (std::isfinite(closest_normal_margin)) {
    std::printf("  closest normal verdict margin: %.4f\n",
                closest_normal_margin);
  }

  std::printf("\nrank quantiles: p50=%g p90=%g p99=%g max=%d\n",
              ExactQuantile(ranks, 0.50), ExactQuantile(ranks, 0.90),
              ExactQuantile(ranks, 0.99), ranks.back());
  util::TablePrinter cdf({"rank", "count", "cdf"});
  uint64_t cumulative = 0;
  for (size_t b = 0; b < bucket_counts.size(); ++b) {
    if (bucket_counts[b] == 0) continue;
    cumulative += bucket_counts[b];
    cdf.AddRow({obs::RankBuckets::LabelOf(b),
                std::to_string(bucket_counts[b]),
                Fixed(static_cast<double>(cumulative) /
                          static_cast<double>(ranks.size()),
                      4)});
  }
  cdf.Print(std::cout);

  std::printf("\ntop offending keys (by abnormal verdicts):\n");
  util::TablePrinter top({"key", "abnormal", "total", "worst rank",
                          "observed"});
  int shown = 0;
  for (const auto& [key, ks] : offenders) {
    if (ks.abnormal == 0 || shown >= top_n) break;
    ++shown;
    std::string observed = ks.observed;
    if (observed.size() > 48) observed = observed.substr(0, 45) + "...";
    top.AddRow({std::to_string(key), std::to_string(ks.abnormal),
                std::to_string(ks.total), std::to_string(ks.worst_rank),
                observed});
  }
  if (shown == 0) {
    std::printf("  (no abnormal verdicts)\n");
  } else {
    top.Print(std::cout);
  }

  if (!drift_windows.empty()) {
    std::printf("\ndrift timeline (window=%d, reference=window 0):\n",
                window);
    util::TablePrinter drift({"window", "abnormal rate", "psi", ""});
    for (size_t w = 0; w < drift_windows.size(); ++w) {
      const DriftWindow& dw = drift_windows[w];
      if (dw.reference) {
        drift.AddRow({"0", Fixed(dw.abnormal_rate, 4), "-", "(reference)"});
        continue;
      }
      drift.AddRow({std::to_string(w), Fixed(dw.abnormal_rate, 4),
                    Fixed(dw.psi, 4),
                    dw.psi > 0.25 ? "ALERT" : (dw.psi > 0.1 ? "shift" : "")});
    }
    drift.Print(std::cout);
  } else {
    std::printf("\ndrift timeline: not enough records for two windows of "
                "%d (have %zu)\n",
                window, records->size());
  }
  return 0;
}
