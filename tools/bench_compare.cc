// Diffs two bench/metrics snapshots (bench_<slug>.json JSONL files or
// run.json manifests) with noise-aware thresholds and exits non-zero on
// regression. Pass several candidate files from repeated runs to gate on
// the min-of-N statistic instead of a single noisy sample.
//
//   bench_compare baseline.json candidate.json
//   bench_compare baseline.json run1.json run2.json run3.json --tol 0.3
//
// Exit codes: 0 = within tolerance, 1 = regression, 2 = usage/parse error.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/snapshot.h"

using namespace ucad;  // NOLINT

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare [options] <baseline.json> <candidate.json>...\n"
      "\n"
      "Compares metric snapshots (JSONL from --metrics-out / bench_<slug>.json,\n"
      "or run.json manifests). Multiple candidate files are merged min-of-N\n"
      "per timing metric before the comparison, so rerunning a bench N times\n"
      "gates on its best (least noisy) sample.\n"
      "\n"
      "options:\n"
      "  --tol <frac>         allowed relative growth for timing metrics\n"
      "                       (default 0.25 = +25%%)\n"
      "  --abs-floor-ms <ms>  absolute growth below this is never a\n"
      "                       regression (default 0.5)\n"
      "  --fail-on-missing    baseline series absent from the candidate fail\n"
      "  --check-counters     counters must match exactly\n"
      "  -q, --quiet          print only regressions\n");
}

}  // namespace

int main(int argc, char** argv) {
  obs::CompareOptions options;
  bool quiet = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol" || arg == "--abs-floor-ms") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        return 2;
      }
      const double v = std::atof(argv[++i]);
      (arg == "--tol" ? options.rel_tolerance : options.abs_floor_ms) = v;
    } else if (arg == "--fail-on-missing") {
      options.fail_on_missing = true;
    } else if (arg == "--check-counters") {
      options.check_counters = true;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() < 2) {
    Usage();
    return 2;
  }

  util::Result<obs::Snapshot> baseline = obs::LoadSnapshotFile(files[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 2;
  }
  std::vector<obs::Snapshot> candidates;
  for (size_t i = 1; i < files.size(); ++i) {
    util::Result<obs::Snapshot> snap = obs::LoadSnapshotFile(files[i]);
    if (!snap.ok()) {
      std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
      return 2;
    }
    candidates.push_back(std::move(*snap));
  }
  const obs::Snapshot candidate = obs::MergeMinOfN(candidates);

  const obs::CompareReport report =
      obs::CompareSnapshots(*baseline, candidate, options);
  if (!quiet || !report.Ok(options)) {
    std::string extra;
    if (files.size() > 2) {
      extra = " (+" + std::to_string(files.size() - 2) + " more, min-of-N)";
    }
    std::printf("baseline:  %s\ncandidate: %s%s\n%s", files[0].c_str(),
                files[1].c_str(), extra.c_str(),
                report.Format(options).c_str());
  }
  return report.Ok(options) ? 0 : 1;
}
