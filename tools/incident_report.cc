// Offline triage report over a per-verdict audit log (JSONL produced by
// `ucad_cli detect|monitor --audit-out ... --explain`):
//
//   incident_report <audit.jsonl> [--flight dump.flight] [--top N]
//                   [--open-sec S] [--json]
//
// Folds every attributed abnormal verdict into incidents (same rollup the
// CLI computes online: one incident per explain signature), then renders
// the triage view: the incident table (count-descending), and for each of
// the top N incidents its attribution bars (mean share of final-block
// attention mass per context template across the incident's verdicts),
// the leave-one-out counterfactual deltas of the exemplar verdict, and —
// with --flight — the exemplar's window trace (per-stage latency
// breakdown) joined from the flight-recorder dump.
//
// "Open" incidents are those whose last verdict is within --open-sec
// (default 900) of the newest record in the log, so the report gives the
// same open/total split a live scrape would have shown at end of run.
//
// --json emits the same rollup as one machine-readable JSON object on
// stdout (incidents array with attribution, expected candidates, and the
// joined flight trace when --flight is given) instead of the tables.
//
// Exit codes: 0 ok, 1 usage/IO/parse error.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/audit_log.h"
#include "obs/explain.h"
#include "obs/flight.h"
#include "obs/incident.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

using namespace ucad;  // NOLINT

namespace {

/// Mean attention share per context template across one incident's
/// verdicts, plus the best counterfactual rank drop seen for it.
struct TemplateAttribution {
  double attention_sum = 0.0;
  uint64_t samples = 0;
  /// Lowest (best) counterfactual rank any verdict reached by masking
  /// this template, and the base rank of that verdict.
  int best_cf_rank = 0;
  int base_rank_at_best = 0;

  double MeanAttention() const {
    return samples > 0 ? attention_sum / static_cast<double>(samples) : 0.0;
  }
};

/// Horizontal bar: `share` in [0,1] scaled against `max_share`.
std::string Bar(double share, double max_share, int width) {
  const int filled =
      max_share > 0.0
          ? static_cast<int>(share / max_share * width + 0.5)
          : 0;
  std::string out(static_cast<size_t>(std::max(filled, 0)), '#');
  out.resize(static_cast<size_t>(width), ' ');
  return out;
}

/// Nearest traced window at or before the exemplar op for this session
/// (the rings are sampled, so the exact position may not be retained).
/// Null when the dump holds no trace for the session.
const obs::WindowTrace* FindExemplarTrace(const obs::FlightDump& dump,
                                          const std::string& session_id,
                                          int position) {
  const uint64_t hash = obs::Fnv1aHash64(session_id);
  // Ring + retained, deduped by seq — the exemplar may live in either.
  std::map<uint64_t, const obs::WindowTrace*> by_seq;
  for (const obs::WindowTrace& t : dump.records) by_seq.emplace(t.seq, &t);
  for (const obs::WindowTrace& t : dump.retained) by_seq.emplace(t.seq, &t);
  const obs::WindowTrace* best = nullptr;
  for (const auto& [seq, t] : by_seq) {
    if (t->session_hash != hash || t->position > position) continue;
    if (best == nullptr || t->position > best->position) best = t;
  }
  return best;
}

void PrintExemplarTrace(const obs::FlightDump& dump,
                        const std::string& session_id, int position) {
  const obs::WindowTrace* best =
      FindExemplarTrace(dump, session_id, position);
  if (best == nullptr) {
    std::printf("  flight: no trace for session \"%s\" at or before "
                "position %d\n",
                session_id.c_str(), position);
    return;
  }
  std::printf("  flight (seq=%llu position=%d%s): total %.3f ms =",
              static_cast<unsigned long long>(best->seq), best->position,
              best->position == position ? "" : ", nearest earlier window",
              static_cast<double>(best->total_ms));
  for (int s = 0; s < obs::kFlightStageCount; ++s) {
    std::printf(" %s %.3f", obs::FlightStageName(s),
                static_cast<double>(best->stage_ms[s]));
  }
  std::printf("\n");
}

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string audit_path;
  std::string flight_path;
  int top_n = 5;
  int open_sec = 15 * 60;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flight" && i + 1 < argc) {
      flight_path = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
    } else if (arg == "--open-sec" && i + 1 < argc) {
      open_sec = std::atoi(argv[++i]);
    } else if (arg == "--json") {
      json = true;
    } else if (audit_path.empty() && !arg.empty() && arg[0] != '-') {
      audit_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 1;
    }
  }
  if (audit_path.empty() || top_n < 1) {
    std::fprintf(stderr,
                 "usage: incident_report <audit.jsonl> "
                 "[--flight dump.flight] [--top N] [--open-sec S] "
                 "[--json]\n");
    return 1;
  }

  auto records = obs::ReadAuditLogFile(audit_path);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 1;
  }

  obs::FlightDump dump;
  bool have_flight = false;
  if (!flight_path.empty()) {
    auto dump_result = obs::ReadFlightDumpFile(flight_path);
    if (!dump_result.ok()) {
      std::fprintf(stderr, "%s\n", dump_result.status().ToString().c_str());
      return 1;
    }
    dump = std::move(dump_result).value();
    have_flight = true;
  }

  obs::IncidentAggregator aggregator(obs::IncidentOptions{
      .open_window_ms = static_cast<int64_t>(open_sec) * 1000,
      .top_n = top_n});
  uint64_t abnormal = 0;
  int64_t newest_ms = 0;
  for (const obs::AuditRecord& r : *records) {
    if (r.abnormal) ++abnormal;
    newest_ms = std::max(newest_ms, r.wall_ms);
    aggregator.Observe(r);
  }

  const std::vector<obs::Incident> incidents = aggregator.Snapshot();

  // Per-incident attribution rollup straight from the explain blocks.
  std::map<uint64_t, std::map<std::string, TemplateAttribution>> by_incident;
  std::map<uint64_t, const obs::AuditRecord*> exemplar_record;
  for (const obs::AuditRecord& r : *records) {
    if (!r.abnormal || !r.has_explain) continue;
    for (const obs::ExplainContribution& c : r.explain.contributions) {
      TemplateAttribution& attribution =
          by_incident[r.explain.signature]
                     [!c.tmpl.empty() ? c.tmpl
                                      : "key:" + std::to_string(c.key)];
      attribution.attention_sum += c.attention;
      if (attribution.samples == 0 || c.cf_rank < attribution.best_cf_rank) {
        attribution.best_cf_rank = c.cf_rank;
        attribution.base_rank_at_best = r.rank;
      }
      ++attribution.samples;
    }
  }
  for (const obs::Incident& incident : incidents) {
    for (const obs::AuditRecord& r : *records) {
      if (r.has_explain && r.explain.signature == incident.signature &&
          r.session_id == incident.exemplar_session &&
          r.position == incident.exemplar_position) {
        exemplar_record[incident.signature] = &r;
        break;
      }
    }
  }

  if (json) {
    std::string out = "{\"path\":\"" + obs::JsonEscape(audit_path) + "\"";
    out += ",\"records\":" + std::to_string(records->size());
    out += ",\"abnormal\":" + std::to_string(abnormal);
    out += ",\"attributed\":" + std::to_string(aggregator.VerdictsTotal());
    out += ",\"incidents_total\":" +
           std::to_string(aggregator.IncidentsTotal());
    out += ",\"incidents_open\":" +
           std::to_string(aggregator.OpenIncidents(newest_ms));
    out += ",\"incidents\":[";
    int emitted = 0;
    for (const obs::Incident& incident : incidents) {
      if (emitted >= top_n) break;
      if (emitted++ > 0) out += ",";
      out += "{\"signature\":\"" + obs::SignatureHex(incident.signature) +
             "\"";
      out += ",\"offending\":\"" + obs::JsonEscape(incident.offending) +
             "\"";
      out += ",\"context\":[";
      for (size_t i = 0; i < incident.context.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + obs::JsonEscape(incident.context[i]) + "\"";
      }
      out += "],\"count\":" + std::to_string(incident.count);
      out += ",\"first_seen_ms\":" + std::to_string(incident.first_seen_ms);
      out += ",\"last_seen_ms\":" + std::to_string(incident.last_seen_ms);
      out += ",\"worst_rank\":" + std::to_string(incident.worst_rank);
      out += ",\"worst_score\":" +
             Num(static_cast<double>(incident.worst_score));
      out += ",\"exemplar_session\":\"" +
             obs::JsonEscape(incident.exemplar_session) + "\"";
      out += ",\"exemplar_position\":" +
             std::to_string(incident.exemplar_position);
      const auto attribution = by_incident.find(incident.signature);
      out += ",\"attribution\":[";
      if (attribution != by_incident.end()) {
        std::vector<std::pair<std::string, const TemplateAttribution*>> rows;
        for (const auto& [tmpl, ta] : attribution->second) {
          rows.emplace_back(tmpl, &ta);
        }
        std::stable_sort(rows.begin(), rows.end(),
                         [](const auto& a, const auto& b) {
                           return a.second->MeanAttention() >
                                  b.second->MeanAttention();
                         });
        for (size_t i = 0; i < rows.size(); ++i) {
          if (i > 0) out += ",";
          out += "{\"template\":\"" + obs::JsonEscape(rows[i].first) +
                 "\",\"mean_attention\":" +
                 Num(rows[i].second->MeanAttention()) +
                 ",\"base_rank\":" +
                 std::to_string(rows[i].second->base_rank_at_best) +
                 ",\"cf_rank\":" +
                 std::to_string(rows[i].second->best_cf_rank) + "}";
        }
      }
      out += "]";
      const auto exemplar = exemplar_record.find(incident.signature);
      if (exemplar != exemplar_record.end() &&
          !exemplar->second->expected.empty()) {
        out += ",\"expected\":[";
        for (size_t i = 0; i < exemplar->second->expected.size(); ++i) {
          const obs::AuditCandidate& cand = exemplar->second->expected[i];
          if (i > 0) out += ",";
          out += "{\"key\":" + std::to_string(cand.key) + ",\"score\":" +
                 Num(static_cast<double>(cand.score)) + "}";
        }
        out += "]";
      }
      if (have_flight) {
        const obs::WindowTrace* trace = FindExemplarTrace(
            dump, incident.exemplar_session, incident.exemplar_position);
        if (trace != nullptr) {
          out += ",\"flight\":{\"seq\":" + std::to_string(trace->seq) +
                 ",\"position\":" + std::to_string(trace->position) +
                 ",\"total_ms\":" +
                 Num(static_cast<double>(trace->total_ms)) + ",\"stages\":{";
          for (int s = 0; s < obs::kFlightStageCount; ++s) {
            if (s > 0) out += ",";
            out += "\"" + std::string(obs::FlightStageName(s)) + "\":" +
                   Num(static_cast<double>(trace->stage_ms[s]));
          }
          out += "}}";
        }
      }
      out += "}";
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return 0;
  }

  std::printf("incident report: %s\n", audit_path.c_str());
  std::printf("  %zu records, %llu abnormal, %llu attributed; "
              "%llu incident(s), %llu open\n",
              records->size(), static_cast<unsigned long long>(abnormal),
              static_cast<unsigned long long>(aggregator.VerdictsTotal()),
              static_cast<unsigned long long>(aggregator.IncidentsTotal()),
              static_cast<unsigned long long>(
                  aggregator.OpenIncidents(newest_ms)));
  if (aggregator.IncidentsTotal() == 0) {
    std::printf("  (no attributed abnormal verdicts — run detect with "
                "--explain to populate the explain blocks)\n");
    return 0;
  }

  std::printf("\ntop incidents\n%s",
              obs::FormatIncidentTable(incidents, top_n).c_str());

  int shown = 0;
  for (const obs::Incident& incident : incidents) {
    if (shown++ >= top_n) break;
    std::printf("\nincident %s — %s\n",
                obs::SignatureHex(incident.signature).c_str(),
                incident.offending.c_str());
    std::printf("  %llu verdict(s), worst rank %d (score %.4f), seen "
                "%lld..%lld ms, exemplar %s@%d\n",
                static_cast<unsigned long long>(incident.count),
                incident.worst_rank,
                static_cast<double>(incident.worst_score),
                static_cast<long long>(incident.first_seen_ms),
                static_cast<long long>(incident.last_seen_ms),
                incident.exemplar_session.c_str(),
                incident.exemplar_position);
    const auto attribution = by_incident.find(incident.signature);
    if (attribution != by_incident.end()) {
      double max_share = 0.0;
      for (const auto& [tmpl, ta] : attribution->second) {
        max_share = std::max(max_share, ta.MeanAttention());
      }
      std::printf("  attribution (mean attention share; cf = rank with the "
                  "op masked):\n");
      // Sort bars attention-descending for readability.
      std::vector<std::pair<std::string, const TemplateAttribution*>> rows;
      for (const auto& [tmpl, ta] : attribution->second) {
        rows.emplace_back(tmpl, &ta);
      }
      std::stable_sort(rows.begin(), rows.end(),
                       [](const auto& a, const auto& b) {
                         return a.second->MeanAttention() >
                                b.second->MeanAttention();
                       });
      for (const auto& [tmpl, ta] : rows) {
        std::printf("    %s %5.3f  cf rank %d -> %d  %s\n",
                    Bar(ta->MeanAttention(), max_share, 24).c_str(),
                    ta->MeanAttention(), ta->base_rank_at_best,
                    ta->best_cf_rank, tmpl.c_str());
      }
    }
    const auto exemplar = exemplar_record.find(incident.signature);
    if (exemplar != exemplar_record.end() &&
        !exemplar->second->expected.empty()) {
      std::printf("  context expected instead:");
      for (const obs::AuditCandidate& cand : exemplar->second->expected) {
        std::printf(" [key=%d score=%.4f]", cand.key,
                    static_cast<double>(cand.score));
      }
      std::printf("\n");
    }
    if (have_flight) {
      PrintExemplarTrace(dump, incident.exemplar_session,
                         incident.exemplar_position);
    }
  }
  return 0;
}
