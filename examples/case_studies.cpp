// Replays both Figure 9 production incidents against freshly trained UCAD
// instances and prints an investigation narrative the way a DBA would see
// it (which operations were flagged and why).
//
//   build/examples/case_studies

#include <cstdio>

#include "core/ucad.h"
#include "transdas/detector.h"
#include "workload/cases.h"
#include "workload/commenting.h"
#include "workload/location.h"

using namespace ucad;  // NOLINT

namespace {

void Investigate(const workload::CaseStudy& cs, const core::Ucad& ucad) {
  std::printf("\n=== %s ===\n%s\n", cs.name.c_str(), cs.description.c_str());
  std::printf("\nsuspicious session:\n");
  for (size_t i = 0; i < cs.suspicious.operations.size(); ++i) {
    std::printf("  %2zu. %s\n", i + 1,
                cs.suspicious.operations[i].sql.c_str());
  }
  const core::UcadDetection verdict = ucad.Detect(cs.suspicious);
  if (!verdict.abnormal()) {
    std::printf("\nUCAD verdict: not flagged (tune training/top-p)\n");
    return;
  }
  std::printf("\nUCAD verdict: ABNORMAL — escalate to a domain expert\n");
  const sql::KeySession keys = sql::TokenizeSessionFrozen(
      cs.suspicious, ucad.preprocessor().vocabulary());
  transdas::TransDasDetector explainer(
      const_cast<core::Ucad&>(ucad).model(), ucad.options().detection);
  for (const auto& op : verdict.verdict.operations) {
    if (!op.abnormal) continue;
    std::printf("  op %2d deviates from contextual intent "
                "(similarity rank %d > top-p)\n",
                op.position + 1, op.rank);
    std::printf("      %s\n",
                cs.suspicious.operations[op.position].sql.c_str());
    const auto expected =
        explainer.ExplainOperation(keys.keys, op.position, 3);
    std::printf("      context expected instead:\n");
    for (const auto& cand : expected) {
      std::printf("        - %s\n",
                  ucad.preprocessor().vocabulary().TemplateOf(cand.key).c_str());
    }
  }
  std::printf("expert conclusion: %s\n", cs.expected_finding.c_str());

  const core::UcadDetection control = ucad.Detect(cs.normal);
  std::printf("control (legitimate session): %s\n",
              control.abnormal() ? "flagged (false positive)" : "clean");
}

}  // namespace

int main() {
  util::Rng rng(33);

  // Case 9(a): danmu bot in the commenting application.
  {
    const workload::ScenarioSpec spec = workload::MakeCommentingScenario();
    workload::SessionGenerator generator(spec);
    core::UcadOptions options;
    options.model.window = 30;
    options.model.hidden_dim = 10;
    options.model.num_heads = 2;
    options.model.num_blocks = 6;
    options.training.epochs = 120;
    options.training.negative_samples = 4;
    options.detection.top_p = 6;
    core::Ucad ucad(options, prep::MakeDefaultPolicyEngine(
                                 spec.users, spec.addresses,
                                 spec.business_start_hour,
                                 spec.business_end_hour));
    UCAD_CHECK(ucad.Train(generator.GenerateNormalBatch(350, &rng)).ok());
    Investigate(workload::MakeDanmuBotCase(generator, &rng), ucad);
  }

  // Case 9(b): repackaged app in the location service.
  {
    workload::LocationOptions wl;
    wl.select_variants = 6;
    wl.insert_variants = 8;
    wl.picn_insert_variants = 3;
    wl.update_variants = 8;
    wl.min_tasks = 4;
    wl.max_tasks = 8;
    const workload::ScenarioSpec spec = workload::MakeLocationScenario(wl);
    workload::SessionGenerator generator(spec);
    core::UcadOptions options;
    options.model.window = 40;
    options.model.hidden_dim = 32;
    options.model.num_heads = 4;
    options.model.num_blocks = 3;
    options.training.epochs = 40;
    options.training.negative_samples = 4;
    options.training.window_stride = 20;
    options.detection.top_p = 10;
    core::Ucad ucad(options, prep::MakeDefaultPolicyEngine(
                                 spec.users, spec.addresses,
                                 spec.business_start_hour,
                                 spec.business_end_hour));
    UCAD_CHECK(ucad.Train(generator.GenerateNormalBatch(250, &rng)).ok());
    Investigate(workload::MakeRepackagedAppCase(generator, &rng), ucad);
  }
  return 0;
}
