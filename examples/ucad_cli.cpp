// Command-line front end for UCAD: train on a plain-text audit log, save
// the model, and screen new sessions.
//
//   ucad_cli gen-demo <log-file>            # write a synthetic demo log
//   ucad_cli train <log-file> <model-file> [epochs]
//   ucad_cli detect <model-file> <log-file> [top_p]
//
// Log format: one operation per line,
//   user<TAB>address<TAB>unix_time<TAB>SQL
// with blank lines or `# session` separating sessions (sql/log_reader.h).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "sql/log_reader.h"
#include "transdas/detector.h"
#include "transdas/serialization.h"
#include "transdas/trainer.h"
#include "workload/commenting.h"

using namespace ucad;  // NOLINT

namespace {

int GenDemo(const std::string& path) {
  workload::SessionGenerator generator(workload::MakeCommentingScenario());
  util::Rng rng(99);
  const auto sessions = generator.GenerateNormalBatch(200, &rng);
  std::ofstream os(path);
  if (!os.is_open()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  sql::WriteSessionLog(sessions, os);
  std::printf("wrote %zu synthetic sessions to %s\n", sessions.size(),
              path.c_str());
  return 0;
}

int Train(const std::string& log_path, const std::string& model_path,
          int epochs) {
  auto log = sql::ReadSessionLogFile(log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  std::printf("read %zu sessions\n", log->size());

  sql::Vocabulary vocab;
  std::vector<std::vector<int>> sessions;
  double total_len = 0;
  for (const auto& raw : *log) {
    sessions.push_back(sql::TokenizeSession(raw, &vocab, true).keys);
    total_len += sessions.back().size();
  }
  vocab.Freeze();
  const int avg_len =
      std::max(8, static_cast<int>(total_len / sessions.size()));
  std::printf("vocabulary: %d keys; average session length %d\n",
              vocab.size(), avg_len);

  transdas::TransDasConfig config;
  config.vocab_size = vocab.size();
  config.window = avg_len;  // the paper's guidance: L ~ average length
  config.hidden_dim = 16;
  config.num_heads = 2;
  config.num_blocks = 3;
  util::Rng rng(7);
  transdas::TransDasModel model(config, &rng);
  transdas::TrainOptions training;
  training.epochs = epochs;
  training.negative_samples = 4;
  training.learning_rate = 3e-3f;
  training.window_stride = std::max(1, avg_len / 2);
  training.verbose = true;
  transdas::TransDasTrainer trainer(&model, training);
  trainer.Train(sessions);

  const util::Status saved =
      transdas::SaveModelToFile(&model, vocab, model_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("model saved to %s\n", model_path.c_str());
  return 0;
}

int Detect(const std::string& model_path, const std::string& log_path,
           int top_p) {
  auto bundle = transdas::LoadModelFromFile(model_path);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  auto log = sql::ReadSessionLogFile(log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  transdas::TransDasDetector detector(
      bundle->model.get(), transdas::DetectorOptions{.top_p = top_p});
  int flagged = 0;
  for (size_t i = 0; i < log->size(); ++i) {
    const sql::KeySession keys =
        sql::TokenizeSessionFrozen((*log)[i], bundle->vocabulary);
    const transdas::SessionVerdict verdict =
        detector.DetectSession(keys.keys);
    if (!verdict.abnormal) continue;
    ++flagged;
    std::printf("session %zu (user %s): ABNORMAL at operations", i + 1,
                (*log)[i].attrs.user.c_str());
    for (int pos : verdict.AbnormalPositions()) std::printf(" %d", pos + 1);
    std::printf("\n");
    for (int pos : verdict.AbnormalPositions()) {
      std::printf("    op %2d: %s\n", pos + 1,
                  (*log)[i].operations[pos].sql.c_str());
      const auto expected = detector.ExplainOperation(keys.keys, pos, 3);
      std::printf("      context expected:");
      for (const auto& cand : expected) {
        std::printf(" [%s]",
                    bundle->vocabulary.TemplateOf(cand.key).c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("%d/%zu sessions flagged\n", flagged, log->size());
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ucad_cli gen-demo <log-file>\n"
               "  ucad_cli train <log-file> <model-file> [epochs=80]\n"
               "  ucad_cli detect <model-file> <log-file> [top_p=6]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "gen-demo") {
    return GenDemo(argv[2]);
  }
  if (command == "train" && argc >= 4) {
    return Train(argv[2], argv[3], argc > 4 ? std::atoi(argv[4]) : 80);
  }
  if (command == "detect" && argc >= 4) {
    return Detect(argv[2], argv[3], argc > 4 ? std::atoi(argv[4]) : 6);
  }
  Usage();
  return 2;
}
