// Command-line front end for UCAD: train on a plain-text audit log, save
// the model, and screen new sessions.
//
//   ucad_cli gen-demo <log-file>            # write a synthetic demo log
//   ucad_cli train <log-file> <model-file> [epochs]
//   ucad_cli detect <model-file> <log-file> [top_p]
//   ucad_cli monitor <model-file> <log-file> [top_p]  # live drift view
//   ucad_cli quickstart [dir] [epochs]      # gen-demo + train + detect
//   ucad_cli top <port> [iterations] [interval-ms]    # live /history view
//
// Observability flags (accepted by every command, in any position):
//   --metrics-out <file>   dump the metrics registry as JSONL on exit
//   --trace-out <file>     enable tracing; write Chrome trace_event JSON
//                          (open in chrome://tracing or ui.perfetto.dev)
//   --profile              per-op autograd profile table + tensor memory
//                          accounting, printed on exit
//   --manifest-out <file>  write a run manifest (run.json) with provenance,
//                          resource usage, and the final metrics snapshot
//   --audit-out <file>     per-verdict forensic audit log (JSONL); inspect
//                          with tools/audit_inspect
//   --audit-max-mb <mb>    roll the audit log over to <file>.1 past this size
//   --explain              attribute abnormal verdicts to their context and
//                          fold them into incidents; triage with
//                          tools/incident_report
//   --incident-top <n>     incidents shown/exported in the rollup (default 5)
//   --incident-open-sec <s> incidents idle this long count as resolved
//   --serve-metrics <port> serve Prometheus /metrics, the SLO-graded
//                          /healthz, and the /history time-series JSON on
//                          127.0.0.1:<port> for the lifetime of the run
//                          (also enables the streaming drift monitor and
//                          the metrics time-series sampler)
//   --canary               run canary probe rounds during monitor: known-
//                          normal, rare-injection, and mimicry probe
//                          sessions scored in shadow mode (never touching
//                          the audit log, drift reference, or incidents)
//   --canary-every <n>     sessions between canary rounds (default 8)
//   --canary-scenario <s>  workload the probes are synthesized from:
//                          commenting (default) or location — probing a
//                          scenario the model was NOT trained on induces
//                          a visible canary SLO breach on demand
//   --flight-dump-dir <d>  install the fatal-signal handler: on
//                          SIGSEGV/SIGABRT/SIGBUS write the flight-recorder
//                          rings, metrics snapshot, and run manifest into
//                          <d>/crash-<pid>.*; inspect with
//                          tools/flight_inspect
//   --flight-out <file>    write the flight-recorder ring dump on normal
//                          exit (same format as a crash dump)
//   --linger <seconds>     keep the process (and the metrics endpoint)
//                          alive this long after the command finishes
//   --drift-window <n>     scored operations per drift window (default 256)
//   --threads <n>          worker lanes for training/detection (default:
//                          UCAD_THREADS env, else all cores; 1 = serial)
//
// Log format: one operation per line,
//   user<TAB>address<TAB>unix_time<TAB>SQL
// with blank lines or `# session` separating sessions (sql/log_reader.h).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "nn/infer.h"
#include "nn/tape.h"
#include "nn/tensor.h"
#include "obs/audit_log.h"
#include "obs/canary.h"
#include "obs/explain.h"
#include "obs/flight.h"
#include "obs/incident.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "obs/monitor.h"
#include "obs/pool_metrics.h"
#include "obs/slo.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sql/log_reader.h"
#include "transdas/detector.h"
#include "transdas/serialization.h"
#include "transdas/trainer.h"
#include "util/thread_pool.h"
#include "workload/commenting.h"
#include "workload/location.h"

using namespace ucad;  // NOLINT

namespace {

/// Set while --manifest-out is active so the command handlers can record
/// their seeds/configs into the run manifest.
obs::RunManifest* g_manifest = nullptr;

int GenDemo(const std::string& path) {
  constexpr uint64_t kGenSeed = 99;
  workload::SessionGenerator generator(workload::MakeCommentingScenario());
  util::Rng rng(kGenSeed);
  if (g_manifest != nullptr) {
    g_manifest->AddNote("gen_demo_seed", std::to_string(kGenSeed));
  }
  const auto sessions = generator.GenerateNormalBatch(200, &rng);
  std::ofstream os(path);
  if (!os.is_open()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  sql::WriteSessionLog(sessions, os);
  std::printf("wrote %zu synthetic sessions to %s\n", sessions.size(),
              path.c_str());
  return 0;
}

int Train(const std::string& log_path, const std::string& model_path,
          int epochs) {
  auto log = sql::ReadSessionLogFile(log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  std::printf("read %zu sessions\n", log->size());

  sql::Vocabulary vocab;
  std::vector<std::vector<int>> sessions;
  double total_len = 0;
  for (const auto& raw : *log) {
    sessions.push_back(sql::TokenizeSession(raw, &vocab, true).keys);
    total_len += sessions.back().size();
  }
  vocab.Freeze();
  const int avg_len =
      std::max(8, static_cast<int>(total_len / sessions.size()));
  std::printf("vocabulary: %d keys; average session length %d\n",
              vocab.size(), avg_len);

  transdas::TransDasConfig config;
  config.vocab_size = vocab.size();
  config.window = avg_len;  // the paper's guidance: L ~ average length
  config.hidden_dim = 16;
  config.num_heads = 2;
  config.num_blocks = 3;
  constexpr uint64_t kModelSeed = 7;
  if (g_manifest != nullptr) {
    g_manifest->SetSeed(kModelSeed);
    g_manifest->SetConfigText(
        "vocab=" + std::to_string(config.vocab_size) +
        ";window=" + std::to_string(config.window) +
        ";hidden=" + std::to_string(config.hidden_dim) +
        ";heads=" + std::to_string(config.num_heads) +
        ";blocks=" + std::to_string(config.num_blocks) +
        ";epochs=" + std::to_string(epochs));
  }
  util::Rng rng(kModelSeed);
  transdas::TransDasModel model(config, &rng);
  transdas::TrainOptions training;
  training.epochs = epochs;
  training.negative_samples = 4;
  training.learning_rate = 3e-3f;
  training.window_stride = std::max(1, avg_len / 2);
  training.verbose = true;
  transdas::TransDasTrainer trainer(&model, training);
  trainer.Train(sessions);

  const util::Status saved =
      transdas::SaveModelToFile(&model, vocab, model_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("model saved to %s\n", model_path.c_str());
  return 0;
}

/// Path of the per-verdict audit log requested via --audit-out (empty =
/// off). Consumed by the detect/monitor commands.
std::string g_audit_out;
/// --audit-max-mb: size cap (MiB) before the audit log rolls over to
/// <path>.1; 0 = unbounded.
int g_audit_max_mb = 0;
/// --explain: attribute each abnormal verdict to its context (attention
/// mass + leave-one-out counterfactuals) and fold verdicts into incidents.
/// Off by default — attribution costs extra row forwards per abnormal op.
bool g_explain = false;
/// --incident-top: incidents shown in the end-of-run table and exported as
/// labeled per-incident gauges.
int g_incident_top = 5;
/// --incident-open-sec: incidents idle longer than this count as resolved.
int g_incident_open_sec = 15 * 60;
/// Active incident aggregator while a detect/monitor run has --explain on.
obs::IncidentAggregator* g_incident_agg = nullptr;
/// --canary: run probe rounds during monitor (shadow-scored, known-verdict
/// sessions that measure live recall without contaminating the stats).
bool g_canary = false;
/// --canary-every: real sessions between canary rounds.
int g_canary_every = 8;
/// --canary-scenario: workload probes are synthesized from. Probing a
/// scenario the model never saw is the supported way to induce a canary
/// SLO breach (the CI smoke uses it).
std::string g_canary_scenario = "commenting";
/// Active SLO evaluator while --serve-metrics is on; Monitor prints
/// [health] lines from it at drift-window cadence.
obs::SloEvaluator* g_slo = nullptr;

int64_t NowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string ConfigText(const transdas::TransDasConfig& config) {
  return "vocab=" + std::to_string(config.vocab_size) +
         ";window=" + std::to_string(config.window) +
         ";hidden=" + std::to_string(config.hidden_dim) +
         ";heads=" + std::to_string(config.num_heads) +
         ";blocks=" + std::to_string(config.num_blocks);
}

/// Hex FNV-1a fingerprint of the model/detector configuration — the same
/// hash the run manifest records, so audit records and run.json
/// cross-reference.
std::string ConfigHashHex(const std::string& config_text) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    obs::Fnv1aHash64(config_text)));
  return buf;
}

/// Opens the --audit-out sink, stamping `model_hash` into every record.
/// Returns null (and prints) on failure.
std::unique_ptr<obs::AuditLog> OpenAuditLog(const std::string& path,
                                            const std::string& model_hash) {
  auto audit = obs::AuditLog::Open(
      path,
      obs::AuditLogOptions{
          .model_hash = model_hash,
          .max_bytes = static_cast<uint64_t>(g_audit_max_mb) * 1024 * 1024});
  if (!audit.ok()) {
    std::fprintf(stderr, "%s\n", audit.status().ToString().c_str());
    return nullptr;
  }
  return std::move(*audit);
}

/// Stable audit session id for the i-th session of the log (1-based).
std::string SessionId(size_t index) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "s%zu", index + 1);
  return buf;
}

/// Template label for `key`, falling back to "key:<n>" outside the vocab.
std::string TemplateLabel(const sql::Vocabulary& vocab, int key) {
  return key > 0 && key < vocab.size() ? vocab.TemplateOf(key)
                                       : "key:" + std::to_string(key);
}

/// Appends one forensic record per scored operation of `verdict` (when
/// `audit` is non-null) and, with --explain, attributes abnormal verdicts
/// to their context and folds them into the incident aggregator.
/// Expected-candidate explanations and attribution (one extra row forward
/// each) are computed only for abnormal verdicts.
void AuditSession(obs::AuditLog* audit,
                  const transdas::TransDasDetector& detector,
                  const sql::Vocabulary& vocab,
                  const sql::RawSession& raw_session,
                  const std::vector<int>& keys,
                  const transdas::SessionVerdict& verdict,
                  const std::string& session_id) {
  for (const transdas::OperationVerdict& op : verdict.operations) {
    obs::AuditRecord record;
    record.session_id = session_id;
    record.position = op.position;
    record.key = keys[op.position];
    record.observed =
        record.key > 0 && record.key < vocab.size()
            ? vocab.TemplateOf(record.key)
            : raw_session.operations[op.position].sql;
    record.rank = op.rank;
    record.score = op.score;
    record.margin = op.margin;
    record.abnormal = op.abnormal;
    if (op.abnormal) {
      for (const auto& cand :
           detector.ExplainOperation(keys, op.position, 3)) {
        record.expected.push_back(obs::AuditCandidate{cand.key, cand.score});
      }
      if (g_explain) {
        const transdas::TransDasDetector::VerdictAttribution attribution =
            detector.AttributeOperation(keys, op.position, 3);
        std::vector<std::string> context_templates;
        for (const auto& entry : attribution.contributions) {
          obs::ExplainContribution c;
          c.position = entry.session_position;
          c.key = entry.key;
          c.tmpl = TemplateLabel(vocab, entry.key);
          c.attention = entry.attention;
          c.cf_rank = entry.counterfactual.rank;
          c.cf_score = entry.counterfactual.score;
          context_templates.push_back(c.tmpl);
          record.explain.contributions.push_back(std::move(c));
        }
        record.explain.signature = obs::IncidentSignature(
            record.observed, std::move(context_templates));
        record.has_explain = true;
      }
    }
    if (record.wall_ms == 0) record.wall_ms = NowUnixMs();
    if (g_incident_agg != nullptr) g_incident_agg->Observe(record);
    if (audit != nullptr) audit->Append(std::move(record));
  }
}

/// One-line health rollup for the monitor's [health] status lines: the
/// grade plus the names of any breached SLOs.
std::string HealthStatusLine(const obs::HealthReport& report) {
  std::string line = obs::HealthGradeName(report.grade);
  for (const obs::SloStatus& slo : report.slos) {
    if (slo.grade == obs::HealthGrade::kOk) continue;
    line += " ";
    line += slo.name;
    line += "(burn ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f",
                  std::max(slo.burn_fast, slo.burn_slow));
    line += buf;
    line += ")";
  }
  return line;
}

/// Builds the canary engine for a monitor run: probes synthesized from the
/// --canary-scenario workload, scored through the detector's shadow path,
/// with mimicry candidates drawn from the detector's own explanations.
std::unique_ptr<obs::CanaryEngine> MakeCanaryEngine(
    const workload::SessionGenerator& generator,
    const transdas::TransDasDetector& detector,
    const sql::Vocabulary& vocab, int top_p) {
  obs::CanaryScoreFn score = [&detector](const std::vector<int>& keys) {
    return detector.ShadowDetectSession(keys).abnormal;
  };
  obs::CanaryExpectFn expect = [&detector](const std::vector<int>& keys,
                                           int position, int top_k) {
    std::vector<int> out;
    for (const auto& cand :
         detector.ExplainOperation(keys, position, top_k)) {
      out.push_back(cand.key);
    }
    return out;
  };
  obs::CanaryOptions options;
  options.top_p = top_p;
  return std::make_unique<obs::CanaryEngine>(&generator, &vocab,
                                             std::move(score),
                                             std::move(expect), options);
}

/// End-of-run incident rollup: publishes the detector/incidents_* gauges
/// and prints the triage table (shared with tools/incident_report).
void ReportIncidents(const obs::IncidentAggregator& incidents) {
  const int64_t now_ms = NowUnixMs();
  incidents.PublishMetrics(&obs::DefaultMetrics(), now_ms);
  std::printf("incidents: %llu open / %llu total (%llu abnormal verdicts "
              "attributed)\n",
              static_cast<unsigned long long>(incidents.OpenIncidents(now_ms)),
              static_cast<unsigned long long>(incidents.IncidentsTotal()),
              static_cast<unsigned long long>(incidents.VerdictsTotal()));
  const std::string table =
      obs::FormatIncidentTable(incidents.Snapshot(), g_incident_top);
  if (!table.empty()) std::printf("%s", table.c_str());
}

int Detect(const std::string& model_path, const std::string& log_path,
           int top_p) {
  auto bundle = transdas::LoadModelFromFile(model_path);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  auto log = sql::ReadSessionLogFile(log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  transdas::TransDasDetector detector(
      bundle->model.get(), transdas::DetectorOptions{.top_p = top_p});
  const std::string config_text = ConfigText(bundle->model->config()) +
                                  ";top_p=" + std::to_string(top_p);
  if (g_manifest != nullptr) g_manifest->SetConfigText(config_text);
  std::unique_ptr<obs::AuditLog> audit;
  if (!g_audit_out.empty()) {
    audit = OpenAuditLog(g_audit_out, ConfigHashHex(config_text));
    if (audit == nullptr) return 1;
  }
  obs::IncidentAggregator incidents(obs::IncidentOptions{
      .open_window_ms = static_cast<int64_t>(g_incident_open_sec) * 1000,
      .top_n = g_incident_top});
  g_incident_agg = g_explain ? &incidents : nullptr;
  int flagged = 0;
  for (size_t i = 0; i < log->size(); ++i) {
    // Flight traces recorded during this session carry its audit id.
    obs::FlightSessionScope flight_scope(SessionId(i));
    const sql::KeySession keys =
        sql::TokenizeSessionFrozen((*log)[i], bundle->vocabulary);
    const transdas::SessionVerdict verdict =
        detector.DetectSession(keys.keys);
    if (audit != nullptr || g_explain) {
      AuditSession(audit.get(), detector, bundle->vocabulary, (*log)[i],
                   keys.keys, verdict, SessionId(i));
    }
    if (!verdict.abnormal) continue;
    ++flagged;
    std::printf("session %zu (user %s): ABNORMAL at operations", i + 1,
                (*log)[i].attrs.user.c_str());
    for (int pos : verdict.AbnormalPositions()) std::printf(" %d", pos + 1);
    std::printf("\n");
    for (int pos : verdict.AbnormalPositions()) {
      std::printf("    op %2d: %s\n", pos + 1,
                  (*log)[i].operations[pos].sql.c_str());
      const auto expected = detector.ExplainOperation(keys.keys, pos, 3);
      std::printf("      context expected:");
      for (const auto& cand : expected) {
        std::printf(" [%s]",
                    bundle->vocabulary.TemplateOf(cand.key).c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("%d/%zu sessions flagged\n", flagged, log->size());
  if (g_explain) ReportIncidents(incidents);
  g_incident_agg = nullptr;
  if (audit != nullptr) {
    audit->Close();
    std::printf("audit log: %llu records (%llu dropped) written to %s\n",
                static_cast<unsigned long long>(audit->appended()),
                static_cast<unsigned long long>(audit->dropped()),
                audit->path().c_str());
  }
  return 0;
}

/// Streaming triage view: scores the log session by session with the
/// detection monitor enabled, printing a drift status line whenever a
/// window completes. The first window calibrates the reference rank
/// distribution; later windows report PSI against it.
int Monitor(const std::string& model_path, const std::string& log_path,
            int top_p) {
  auto bundle = transdas::LoadModelFromFile(model_path);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  auto log = sql::ReadSessionLogFile(log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  obs::SetDetectionMonitorEnabled(true);
  obs::DetectionMonitor& monitor = obs::DefaultDetectionMonitor();
  transdas::TransDasDetector detector(
      bundle->model.get(), transdas::DetectorOptions{.top_p = top_p});
  const std::string config_text = ConfigText(bundle->model->config()) +
                                  ";top_p=" + std::to_string(top_p);
  if (g_manifest != nullptr) g_manifest->SetConfigText(config_text);
  std::unique_ptr<obs::AuditLog> audit;
  if (!g_audit_out.empty()) {
    audit = OpenAuditLog(g_audit_out, ConfigHashHex(config_text));
    if (audit == nullptr) return 1;
  }
  std::printf("monitoring %zu sessions (drift window %d ops, PSI alert > "
              "%.2f)\n",
              log->size(), monitor.options().window,
              monitor.options().psi_alert);
  obs::IncidentAggregator incidents(obs::IncidentOptions{
      .open_window_ms = static_cast<int64_t>(g_incident_open_sec) * 1000,
      .top_n = g_incident_top});
  g_incident_agg = g_explain ? &incidents : nullptr;
  // Canary probes ride the monitor loop: every g_canary_every real
  // sessions one round of known-verdict probes is shadow-scored. The
  // generator must outlive the engine.
  std::unique_ptr<workload::SessionGenerator> canary_generator;
  std::unique_ptr<obs::CanaryEngine> canary;
  if (g_canary) {
    canary_generator = std::make_unique<workload::SessionGenerator>(
        g_canary_scenario == "location"
            ? workload::MakeLocationScenario()
            : workload::MakeCommentingScenario());
    canary = MakeCanaryEngine(*canary_generator, detector,
                              bundle->vocabulary, top_p);
    std::printf("canary probes on: scenario %s, one round per %d "
                "sessions\n",
                g_canary_scenario.c_str(), g_canary_every);
  }
  uint64_t last_windows = monitor.WindowsCompleted();
  int flagged = 0;
  for (size_t i = 0; i < log->size(); ++i) {
    {
      obs::FlightSessionScope flight_scope(SessionId(i));
      const sql::KeySession keys =
          sql::TokenizeSessionFrozen((*log)[i], bundle->vocabulary);
      const transdas::SessionVerdict verdict =
          detector.DetectSession(keys.keys);
      if (audit != nullptr || g_explain) {
        AuditSession(audit.get(), detector, bundle->vocabulary, (*log)[i],
                     keys.keys, verdict, SessionId(i));
      }
      if (verdict.abnormal) {
        ++flagged;
        std::printf("session %zu (user %s): ABNORMAL (%zu ops flagged)\n",
                    i + 1, (*log)[i].attrs.user.c_str(),
                    verdict.AbnormalPositions().size());
      }
    }
    if (canary != nullptr && (i + 1) % static_cast<size_t>(std::max(
                                           1, g_canary_every)) ==
                                 0) {
      canary->RunRound();
    }
    const uint64_t windows = monitor.WindowsCompleted();
    if (windows != last_windows) {
      last_windows = windows;
      std::printf("[drift] %s\n", monitor.StatusLine().c_str());
      if (canary != nullptr) {
        std::printf("[canary] hit rate %.2f (%llu probes, %llu missed, "
                    "%llu false)\n",
                    canary->HitRate(),
                    static_cast<unsigned long long>(canary->ProbesTotal()),
                    static_cast<unsigned long long>(canary->MissedFlags()),
                    static_cast<unsigned long long>(canary->FalseFlags()));
      }
      if (g_slo != nullptr) {
        std::printf("[health] %s\n",
                    HealthStatusLine(g_slo->Evaluate()).c_str());
      }
      // Live rollup: a scraper watching /metrics sees incident gauges move
      // at drift-window cadence, not only at process exit.
      if (g_explain) {
        incidents.PublishMetrics(&obs::DefaultMetrics(), NowUnixMs());
      }
    }
  }
  std::printf("done: %d/%zu sessions flagged; %s\n", flagged, log->size(),
              monitor.StatusLine().c_str());
  if (canary != nullptr) {
    std::printf("canary: %llu probes, hit rate %.2f (%llu true, %llu "
                "missed, %llu false flags)\n",
                static_cast<unsigned long long>(canary->ProbesTotal()),
                canary->HitRate(),
                static_cast<unsigned long long>(canary->TrueFlags()),
                static_cast<unsigned long long>(canary->MissedFlags()),
                static_cast<unsigned long long>(canary->FalseFlags()));
  }
  if (g_slo != nullptr) {
    std::printf("health: %s\n",
                HealthStatusLine(g_slo->Evaluate()).c_str());
  }
  if (g_explain) ReportIncidents(incidents);
  g_incident_agg = nullptr;
  if (audit != nullptr) {
    audit->Close();
    std::printf("audit log: %llu records (%llu dropped) written to %s\n",
                static_cast<unsigned long long>(audit->appended()),
                static_cast<unsigned long long>(audit->dropped()),
                audit->path().c_str());
  }
  return 0;
}

/// One blocking HTTP/1.0 GET against 127.0.0.1:`port`; returns the body
/// (headers stripped) or empty on any failure — `top` treats an empty
/// answer as "endpoint gone" and says so rather than crashing.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) < 0) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  return header_end == std::string::npos ? ""
                                         : response.substr(header_end + 4);
}

/// ASCII sparkline of the last `width` values, scaled to the series max.
std::string Sparkline(const std::vector<double>& values, size_t width) {
  static const char kLevels[] = " .:-=+*#%@";
  const size_t start = values.size() > width ? values.size() - width : 0;
  double max = 0.0;
  for (size_t i = start; i < values.size(); ++i) {
    max = std::max(max, values[i]);
  }
  std::string out;
  for (size_t i = start; i < values.size(); ++i) {
    const int level =
        max > 0.0 ? static_cast<int>(values[i] / max * 9.0 + 0.5) : 0;
    out += kLevels[std::clamp(level, 0, 9)];
  }
  return out;
}

/// Live terminal view over a running monitor's quality endpoints: polls
/// /healthz and /history?ticks=60, renders the health grade and a
/// sparkline-per-series table, repeats. The terminal-dashboard answer to
/// "is it still detecting?" without Prometheus/Grafana in the loop.
int Top(int port, int iterations, int interval_ms) {
  for (int it = 0; it < iterations; ++it) {
    const std::string health = HttpGet(port, "/healthz");
    const std::string history = HttpGet(port, "/history?ticks=60");
    if (health.empty() && history.empty()) {
      std::fprintf(stderr,
                   "no response from 127.0.0.1:%d — is a monitor running "
                   "with --serve-metrics %d?\n",
                   port, port);
      return 1;
    }
    // \033[H\033[2J = cursor home + clear: a live view, not a scroll.
    if (it > 0) std::printf("\033[H\033[2J");
    std::printf("ucad top — 127.0.0.1:%d (poll %d/%d)\n", port, it + 1,
                iterations);
    std::printf("health: %s", health.empty() ? "(no /healthz)\n"
                                             : health.c_str());
    const auto parsed = obs::ParseJson(history);
    if (!parsed.ok()) {
      std::printf("(no /history yet: %s)\n",
                  parsed.status().ToString().c_str());
    } else {
      const obs::JsonValue* series = parsed->Find("series");
      std::printf("%-36s %10s  %s\n", "series", "latest", "last 60 ticks");
      size_t shown = 0;
      static const std::vector<obs::JsonValue> kEmpty;
      for (const obs::JsonValue& s :
           series != nullptr ? series->array : kEmpty) {
        const obs::JsonValue* name = s.Find("series");
        const obs::JsonValue* type = s.Find("type");
        if (name == nullptr || type == nullptr) continue;
        // The interesting live series: canary + slo + detector health,
        // counter rates and latency p99s. Cap the view at a screenful.
        const std::string& key = name->string_value;
        const bool interesting =
            key.rfind("canary/", 0) == 0 || key.rfind("slo/", 0) == 0 ||
            key.rfind("detector/", 0) == 0;
        if (!interesting || shown >= 24) continue;
        const obs::JsonValue* values =
            type->string_value == "histogram" ? s.Find("p99")
            : type->string_value == "counter" ? s.Find("rates")
                                              : s.Find("values");
        if (values == nullptr || values->array.empty()) continue;
        std::vector<double> nums;
        nums.reserve(values->array.size());
        for (const obs::JsonValue& v : values->array) {
          nums.push_back(v.NumberOr(0.0));
        }
        const char* unit = type->string_value == "histogram" ? " p99"
                           : type->string_value == "counter" ? " /s"
                                                             : "";
        std::printf("%-36s %10.3f  %s\n", (key + unit).c_str(),
                    nums.back(), Sparkline(nums, 60).c_str());
        ++shown;
      }
      if (shown == 0) {
        std::printf("(no canary/slo/detector series retained yet)\n");
      }
    }
    std::fflush(stdout);
    if (it + 1 < iterations) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return 0;
}

/// End-to-end demo in one process: synthesize a log, train on it, screen
/// it. Exercises every instrumented path, so a --metrics-out snapshot from
/// this command carries trainer, detector, and nn metrics together.
int Quickstart(const std::string& dir, int epochs) {
  const std::string log_path = dir + "/ucad_demo.log";
  const std::string model_path = dir + "/ucad_demo.model";
  int rc = GenDemo(log_path);
  if (rc == 0) rc = Train(log_path, model_path, epochs);
  if (rc == 0) rc = Detect(model_path, log_path, 6);
  return rc;
}

void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ucad_cli gen-demo <log-file>\n"
               "  ucad_cli train <log-file> <model-file> [epochs=80]\n"
               "  ucad_cli detect <model-file> <log-file> [top_p=6]\n"
               "  ucad_cli monitor <model-file> <log-file> [top_p=6]\n"
               "  ucad_cli quickstart [dir=.] [epochs=20]\n"
               "  ucad_cli top <port> [iterations=20] [interval-ms=1000]\n"
               "observability flags (any command, any position):\n"
               "  --metrics-out <file>  write a JSONL metrics snapshot on "
               "exit\n"
               "  --trace-out <file>    record trace spans; write Chrome "
               "trace_event JSON\n"
               "                        (open in chrome://tracing or "
               "ui.perfetto.dev)\n"
               "  --profile             per-op autograd profile (fwd/bwd "
               "time, FLOPs, bytes)\n"
               "                        + tensor memory accounting; table "
               "printed on exit\n"
               "  --manifest-out <file> write a run manifest: git SHA, "
               "build flags, seed,\n"
               "                        config hash, hardware, peak RSS, "
               "final metrics\n"
               "  --audit-out <file>    per-verdict audit log (JSONL; "
               "detect/monitor);\n"
               "                        inspect with tools/audit_inspect\n"
               "  --audit-max-mb <mb>   roll the audit log over to "
               "<file>.1 past this\n"
               "                        size (0 = unbounded, the default)\n"
               "  --explain             attribute abnormal verdicts to "
               "their context\n"
               "                        (attention mass + leave-one-out "
               "counterfactuals)\n"
               "                        and roll them up into incidents; "
               "triage with\n"
               "                        tools/incident_report\n"
               "  --incident-top <n>    incidents shown/exported in the "
               "rollup (default 5)\n"
               "  --incident-open-sec <s>  incidents idle this long count "
               "as resolved\n"
               "                        (default 900)\n"
               "  --serve-metrics <p>   Prometheus /metrics, SLO-graded "
               "/healthz, and\n"
               "                        /history time-series JSON on "
               "127.0.0.1:<p>\n"
               "                        (0 = ephemeral port; enables the "
               "drift monitor\n"
               "                        and the 1s metrics sampler)\n"
               "  --canary              shadow-score known-verdict probe "
               "sessions during\n"
               "                        monitor; feeds the canary/* metrics "
               "and SLOs\n"
               "  --canary-every <n>    sessions between canary rounds "
               "(default 8)\n"
               "  --canary-scenario <s> probe workload: commenting|location "
               "(probing an\n"
               "                        untrained scenario induces a canary "
               "breach)\n"
               "  --flight-dump-dir <d> on SIGSEGV/SIGABRT/SIGBUS dump "
               "flight rings,\n"
               "                        metrics, and manifest to "
               "<d>/crash-<pid>.*\n"
               "  --flight-out <file>   write the flight-recorder ring dump "
               "on exit;\n"
               "                        inspect with tools/flight_inspect\n"
               "  --linger <seconds>    keep serving /metrics this long "
               "after the command\n"
               "  --drift-window <n>    scored ops per drift window "
               "(default 256)\n"
               "  --threads <n>         worker lanes for training/detection "
               "(default:\n"
               "                        UCAD_THREADS env, else all cores; "
               "1 = serial)\n");
}

/// Dumps the metrics registry / trace buffer / run manifest to the paths
/// requested via --metrics-out / --trace-out / --manifest-out (empty = not
/// requested). `manifest` must already hold the final registry state — the
/// profiler/memory exports happen in main() before this runs.
int WriteObservability(const std::string& metrics_out,
                       const std::string& trace_out,
                       const std::string& manifest_out,
                       const obs::RunManifest& manifest) {
  int rc = 0;
  if (!metrics_out.empty()) {
    const util::Status st =
        obs::DefaultMetrics().WriteJsonlFile(metrics_out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      rc = 1;
    } else {
      std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
    }
  }
  if (!trace_out.empty()) {
    const util::Status st = obs::WriteChromeTraceFile(trace_out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      rc = 1;
    } else {
      std::printf("trace (%zu spans) written to %s\n",
                  obs::TraceEventCount(), trace_out.c_str());
    }
  }
  if (!manifest_out.empty()) {
    const util::Status st = manifest.WriteFile(manifest_out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      rc = 1;
    } else {
      std::printf("run manifest written to %s\n", manifest_out.c_str());
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // Extract the observability flags first; the positional command-line is
  // whatever remains.
  std::string metrics_out;
  std::string trace_out;
  std::string manifest_out;
  bool profile = false;
  int serve_port = -1;  // -1 = endpoint off
  int linger_seconds = 0;
  int drift_window = 0;  // 0 = default
  std::string flight_dump_dir;
  std::string flight_out;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" || arg == "--trace-out" ||
        arg == "--manifest-out" || arg == "--audit-out" ||
        arg == "--audit-max-mb" || arg == "--serve-metrics" ||
        arg == "--linger" || arg == "--drift-window" || arg == "--threads" ||
        arg == "--flight-dump-dir" || arg == "--flight-out" ||
        arg == "--incident-top" || arg == "--incident-open-sec" ||
        arg == "--canary-every" || arg == "--canary-scenario") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", arg.c_str());
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--metrics-out") {
        metrics_out = value;
      } else if (arg == "--trace-out") {
        trace_out = value;
      } else if (arg == "--manifest-out") {
        manifest_out = value;
      } else if (arg == "--audit-out") {
        g_audit_out = value;
      } else if (arg == "--audit-max-mb") {
        g_audit_max_mb = std::atoi(value.c_str());
      } else if (arg == "--incident-top") {
        g_incident_top = std::atoi(value.c_str());
      } else if (arg == "--incident-open-sec") {
        g_incident_open_sec = std::atoi(value.c_str());
      } else if (arg == "--serve-metrics") {
        serve_port = std::atoi(value.c_str());
      } else if (arg == "--linger") {
        linger_seconds = std::atoi(value.c_str());
      } else if (arg == "--threads") {
        util::SetNumThreads(std::atoi(value.c_str()));
      } else if (arg == "--flight-dump-dir") {
        flight_dump_dir = value;
      } else if (arg == "--flight-out") {
        flight_out = value;
      } else if (arg == "--canary-every") {
        g_canary_every = std::atoi(value.c_str());
      } else if (arg == "--canary-scenario") {
        if (value != "commenting" && value != "location") {
          std::fprintf(stderr,
                       "--canary-scenario must be commenting or location\n");
          return 2;
        }
        g_canary_scenario = value;
      } else {
        drift_window = std::atoi(value.c_str());
      }
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--canary") {
      g_canary = true;
    } else if (arg == "--explain") {
      g_explain = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      args.push_back(arg);
    }
  }
  if (!trace_out.empty()) obs::SetTraceEnabled(true);
  if (profile) {
    nn::TapeProfiler::SetEnabled(true);
    nn::SetTensorMemTrackingEnabled(true);
  }
  if (drift_window > 0) {
    obs::MonitorOptions monitor_options;
    monitor_options.window = drift_window;
    obs::SetDefaultMonitorOptions(monitor_options);
  }
  // Quality-observability layer: the time-series sampler and the SLO
  // evaluator live while the scrape endpoint does. Declared before the
  // server (and joined in ~QualityLayer before the evaluator dies) so the
  // accept thread and the sampler callback never outlive their targets.
  struct QualityLayer {
    obs::TimeSeriesStore store;
    obs::SloEvaluator slo;
    QualityLayer()
        : store(&obs::DefaultMetrics()),
          slo(obs::DefaultSloSpecs(), &store) {}
    ~QualityLayer() { store.Stop(); }
  };
  std::unique_ptr<QualityLayer> quality;
  obs::MetricsHttpServer server;
  if (serve_port >= 0) {
    // A scrape endpoint implies live monitoring: drift/quantile series
    // should be on whatever Prometheus is watching.
    obs::SetDetectionMonitorEnabled(true);
    quality = std::make_unique<QualityLayer>();
    // Each sampler tick re-grades the SLOs, so slo/* gauges (and the
    // /healthz answer they mirror) move at tick cadence even when the
    // command loop is busy scoring.
    quality->store.Start([q = quality.get()](int64_t) {
      q->slo.EvaluateAndPublish();
    });
    server.SetHistorySource(&quality->store);
    server.SetHealthHandler(
        [q = quality.get()]() -> std::pair<int, std::string> {
          const obs::HealthReport report = q->slo.Evaluate();
          return {report.grade == obs::HealthGrade::kUnhealthy ? 503 : 200,
                  report.ToText()};
        });
    g_slo = &quality->slo;
    const util::Status st = server.Start(serve_port);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("serving metrics on http://127.0.0.1:%d/metrics "
                "(/healthz, /history)\n",
                server.port());
  }
  obs::RunManifest manifest("ucad_cli");
  manifest.SetCommandLine(argc, argv);
  g_manifest = &manifest;
  if (!flight_dump_dir.empty()) {
    // Crash forensics: the handler flushes the flight rings, the metrics
    // snapshot, and this manifest rendering (provenance as of startup).
    std::ostringstream manifest_text;
    manifest.Write(manifest_text);
    const util::Status st = obs::InstallFlightCrashHandler(
        flight_dump_dir, manifest_text.str());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("flight crash handler installed (dumps to %s/crash-%d.*)\n",
                flight_dump_dir.c_str(), static_cast<int>(getpid()));
  }

  int rc = 2;
  const std::string command = args.empty() ? "" : args[0];
  if (command == "gen-demo" && args.size() >= 2) {
    rc = GenDemo(args[1]);
  } else if (command == "train" && args.size() >= 3) {
    rc = Train(args[1], args[2],
               args.size() > 3 ? std::atoi(args[3].c_str()) : 80);
  } else if (command == "detect" && args.size() >= 3) {
    rc = Detect(args[1], args[2],
                args.size() > 3 ? std::atoi(args[3].c_str()) : 6);
  } else if (command == "monitor" && args.size() >= 3) {
    rc = Monitor(args[1], args[2],
                 args.size() > 3 ? std::atoi(args[3].c_str()) : 6);
  } else if (command == "quickstart") {
    rc = Quickstart(args.size() > 1 ? args[1] : ".",
                    args.size() > 2 ? std::atoi(args[2].c_str()) : 20);
  } else if (command == "top" && args.size() >= 2) {
    rc = Top(std::atoi(args[1].c_str()),
             args.size() > 2 ? std::atoi(args[2].c_str()) : 20,
             args.size() > 3 ? std::atoi(args[3].c_str()) : 1000);
  } else {
    Usage();
    return 2;
  }
  if (profile) {
    std::printf("%s", nn::TapeProfiler::FormatTable().c_str());
    nn::TapeProfiler::ExportTo(&obs::DefaultMetrics());
  }
  // Fold allocator state into the registry (zeros when tracking is off) so
  // snapshots and the manifest both carry it.
  nn::PublishTensorMemMetrics();
  nn::PublishInferMetrics(&obs::DefaultMetrics());
  obs::PublishThreadPoolMetrics(&obs::DefaultMetrics());
  manifest.AddNote("peak_live_tensor_bytes",
                   std::to_string(nn::TensorMemStats().peak_live_bytes));
  if (!flight_out.empty()) {
    const util::Status st =
        obs::FlightRecorder::Default().WriteDumpFile(flight_out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
    } else {
      std::printf("flight dump (%llu windows recorded) written to %s\n",
                  static_cast<unsigned long long>(
                      obs::FlightRecorder::Default().RecordsTotal()),
                  flight_out.c_str());
    }
  }
  // Dump before lingering: the linger exists so scrapers can read a
  // finished run, and killing a lingering process must not lose the files.
  const int obs_rc =
      WriteObservability(metrics_out, trace_out, manifest_out, manifest);
  g_manifest = nullptr;
  if (server.serving() && linger_seconds > 0) {
    std::printf("lingering %d s (metrics at http://127.0.0.1:%d/metrics)\n",
                linger_seconds, server.port());
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(linger_seconds));
  }
  return rc != 0 ? rc : obs_rc;
}
