// Scenario-I walkthrough: protecting an online video commenting ("danmu")
// application — the paper's first evaluation scenario and Figure 9(a)
// incident. Shows the full operational loop:
//
//   raw audit log -> preprocessing (policies + clustering) -> Trans-DAS
//   training -> online screening -> expert triage -> fine-tuning.
//
//   build/examples/commenting_app

#include <cstdio>

#include "core/ucad.h"
#include "workload/anomaly.h"
#include "workload/cases.h"
#include "workload/commenting.h"

using namespace ucad;  // NOLINT

namespace {

void PrintSession(const char* title, const sql::RawSession& session,
                  size_t max_ops = 8) {
  std::printf("%s (user %s @ %s):\n", title, session.attrs.user.c_str(),
              session.attrs.client_address.c_str());
  for (size_t i = 0; i < session.operations.size() && i < max_ops; ++i) {
    std::printf("  %2zu. %s\n", i + 1, session.operations[i].sql.c_str());
  }
  if (session.operations.size() > max_ops) {
    std::printf("  ... (%zu more)\n", session.operations.size() - max_ops);
  }
}

}  // namespace

int main() {
  const workload::ScenarioSpec spec = workload::MakeCommentingScenario();
  workload::SessionGenerator generator(spec);
  workload::AnomalySynthesizer synthesizer(&generator);
  util::Rng rng(11);

  // --- Offline stage -----------------------------------------------------
  std::vector<sql::RawSession> log = generator.GenerateNormalBatch(350, &rng);
  // Real logs are noisy: a handful of sessions violate access policies.
  for (int i = 0; i < 4; ++i) {
    log.push_back(generator.GenerateNoisy(
        static_cast<workload::NoiseKind>(i % 4), &rng));
  }
  PrintSession("\nsample audit-log session", log.front());

  core::UcadOptions options;
  options.model.window = 30;    // paper Scenario-I defaults
  options.model.hidden_dim = 10;
  options.model.num_heads = 2;
  options.model.num_blocks = 6;
  options.training.epochs = 120;
  options.training.negative_samples = 4;
  options.detection.top_p = 6;
  core::Ucad ucad(options, prep::MakeDefaultPolicyEngine(
                               spec.users, spec.addresses,
                               spec.business_start_hour,
                               spec.business_end_hour));
  const util::Status status = ucad.Train(log);
  UCAD_CHECK(status.ok()) << status.ToString();
  std::printf(
      "\ntrained: %d statement keys; policies rejected %d sessions; "
      "clustering kept %d/%d\n",
      ucad.preprocessor().vocabulary().size(),
      ucad.preprocessor().rejected_by_policy(),
      ucad.preprocessor().last_filter_stats().output_sessions,
      ucad.preprocessor().last_filter_stats().input_sessions);

  // --- Online stage -------------------------------------------------------
  // 1. Ordinary traffic passes.
  int clean_flagged = 0;
  for (int i = 0; i < 20; ++i) {
    clean_flagged +=
        ucad.Detect(generator.GenerateNormal(&rng)).abnormal() ? 1 : 0;
  }
  std::printf("\nclean sessions flagged: %d/20\n", clean_flagged);

  // 2. A stealthy credential-theft session (a few injected operations,
  //    <10%% of the session) is caught by contextual-intent comparison.
  const sql::RawSession theft =
      synthesizer.CredentialStealing(generator.GenerateNormal(&rng), &rng);
  const core::UcadDetection theft_verdict = ucad.Detect(theft);
  std::printf("stealthy theft session: %s\n",
              theft_verdict.abnormal() ? "FLAGGED" : "missed");
  if (theft_verdict.verdict.abnormal) {
    for (int pos : theft_verdict.verdict.AbnormalPositions()) {
      std::printf("  suspicious op %2d: %s%s\n", pos + 1,
                  theft.operations[pos].sql.c_str(),
                  theft.operations[pos].injected ? "   <- injected" : "");
    }
  }

  // 3. The Figure 9(a) incident: a reward-farming bot posts and likes a
  //    danmu without ever opening the panel.
  const workload::CaseStudy bot = workload::MakeDanmuBotCase(generator, &rng);
  PrintSession("\nFigure 9a bot session", bot.suspicious, 10);
  std::printf("verdict: %s\n",
              ucad.Detect(bot.suspicious).abnormal() ? "FLAGGED" : "missed");

  // 4. Expert-verified normals feed the next fine-tuning round.
  UCAD_CHECK(ucad.FineTune(generator.GenerateNormalBatch(30, &rng)).ok());
  std::printf("\nfine-tuned on 30 verified sessions — ready for the next "
              "detection round.\n");
  return 0;
}
