// Quickstart: train UCAD on a simulated audit log and screen a few active
// sessions — the five-minute tour of the public API.
//
//   build/examples/quickstart
//
// Steps:
//   1. describe the application with a scenario spec (or bring your own
//      sql::RawSession log),
//   2. construct Ucad with model options and access-control policies,
//   3. Train() on the (assumed-normal) audit log,
//   4. Detect() active sessions; escalate the flagged ones.

#include <cstdio>

#include "core/ucad.h"
#include "workload/anomaly.h"
#include "workload/commenting.h"

using namespace ucad;  // NOLINT

int main() {
  // 1. A simulated commenting application (Scenario-I of the paper) stands
  //    in for a real audit log. Any std::vector<sql::RawSession> works.
  const workload::ScenarioSpec spec = workload::MakeCommentingScenario();
  workload::SessionGenerator generator(spec);
  util::Rng rng(2024);
  const std::vector<sql::RawSession> audit_log =
      generator.GenerateNormalBatch(300, &rng);
  std::printf("audit log: %zu sessions\n", audit_log.size());

  // 2. Configure the system. The model defaults follow the paper's
  //    Scenario-I setting (L=30, h=10, m=2, B=6, top-5 detection).
  core::UcadOptions options;
  options.model.window = 30;
  options.model.hidden_dim = 10;
  options.model.num_heads = 2;
  options.model.num_blocks = 6;
  options.training.epochs = 120;
  options.training.negative_samples = 4;
  options.training.window_stride = 8;
  options.detection.top_p = 6;

  // Access-control policies screen known attack patterns before the model
  // ever runs; they are extensible (prep::AccessPolicy).
  prep::PolicyEngine policies = prep::MakeDefaultPolicyEngine(
      spec.users, spec.addresses, spec.business_start_hour,
      spec.business_end_hour);

  core::Ucad ucad(options, std::move(policies));

  // 3. Offline training: tokenization, noise removal, Trans-DAS.
  const util::Status status = ucad.Train(audit_log);
  if (!status.ok()) {
    std::printf("training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("trained: vocabulary of %d statement keys\n",
              ucad.preprocessor().vocabulary().size());

  // 4. Online detection. A fraction of clean sessions trips the top-p
  //    test (the paper's FPR); escalated false alarms return as verified
  //    normals for fine-tuning.
  int clean_flagged = 0;
  for (int i = 0; i < 10; ++i) {
    clean_flagged +=
        ucad.Detect(generator.GenerateNormal(&rng)).abnormal() ? 1 : 0;
  }
  std::printf("clean sessions      -> %d/10 flagged\n", clean_flagged);

  workload::AnomalySynthesizer synthesizer(&generator);
  const sql::RawSession theft = synthesizer.CredentialStealing(
      generator.GenerateNormal(&rng), &rng);
  const core::UcadDetection theft_verdict = ucad.Detect(theft);
  std::printf("credential theft    -> %s",
              theft_verdict.abnormal() ? "FLAGGED" : "missed");
  if (theft_verdict.verdict.abnormal) {
    std::printf(" (suspicious operations:");
    for (int pos : theft_verdict.verdict.AbnormalPositions()) {
      std::printf(" #%d", pos + 1);
    }
    std::printf(")");
  }
  std::printf("\n");

  const sql::RawSession stolen_address = generator.GenerateNoisy(
      workload::NoiseKind::kUnknownAddress, &rng);
  const core::UcadDetection policy_verdict = ucad.Detect(stolen_address);
  std::printf("unknown address     -> %s (policy: %s)\n",
              policy_verdict.abnormal() ? "FLAGGED" : "missed",
              policy_verdict.violated_policy.c_str());

  // False alarms verified by an expert feed the next fine-tuning round
  // (concept drift, paper §5.2).
  const util::Status ft = ucad.FineTune(generator.GenerateNormalBatch(20, &rng));
  std::printf("fine-tune           -> %s\n", ft.ToString().c_str());
  return 0;
}
