// Scenario-II walkthrough: a mobile location service with per-cell radio
// fingerprint maintenance — the paper's second evaluation scenario and
// Figure 9(b) incident. Demonstrates the high-cardinality template
// vocabulary (multi-row INSERTs and variable IN-lists abstract to distinct
// keys) and detection of a repackaged app that floods manipulated
// locations with a stolen credential.
//
//   build/examples/location_service

#include <cstdio>

#include "core/ucad.h"
#include "sql/statement.h"
#include "workload/cases.h"
#include "workload/location.h"

using namespace ucad;  // NOLINT

int main() {
  // Reduced vocabulary density keeps this example snappy; see
  // bench/table2_comparison for the calibrated experiment.
  workload::LocationOptions wl;
  wl.select_variants = 6;
  wl.insert_variants = 8;
  wl.picn_insert_variants = 3;
  wl.update_variants = 8;
  wl.min_tasks = 4;
  wl.max_tasks = 8;
  const workload::ScenarioSpec spec = workload::MakeLocationScenario(wl);
  workload::SessionGenerator generator(spec);
  util::Rng rng(21);

  // Show how literal abstraction maps statement shapes to distinct keys
  // (the Figure 6 statement forms).
  std::printf("template abstraction:\n");
  for (const char* name : {"sel_t_cell_fp_3", "ins_t_cell_fp_9"}) {
    const std::string sql = generator.RealizeByName(name, &rng);
    std::printf("  raw:      %.100s%s\n", sql.c_str(),
                sql.size() > 100 ? "..." : "");
    std::printf("  template: %.100s\n\n",
                sql::AbstractLiterals(sql).c_str());
  }

  core::UcadOptions options;
  options.model.window = 40;
  options.model.hidden_dim = 32;
  options.model.num_heads = 4;
  options.model.num_blocks = 3;
  options.training.epochs = 40;
  options.training.negative_samples = 4;
  options.training.window_stride = 20;
  options.detection.top_p = 10;   // paper Scenario-II top-p
  core::Ucad ucad(options, prep::MakeDefaultPolicyEngine(
                               spec.users, spec.addresses,
                               spec.business_start_hour,
                               spec.business_end_hour));

  std::printf("training on 250 app sessions...\n");
  const util::Status status =
      ucad.Train(generator.GenerateNormalBatch(250, &rng));
  UCAD_CHECK(status.ok()) << status.ToString();
  std::printf("vocabulary: %d keys over %d tables\n",
              ucad.preprocessor().vocabulary().size(),
              ucad.preprocessor().vocabulary().CountTables());

  // The Figure 9(b) incident: a repackaged app authenticates with a stolen
  // credential and reports manipulated locations at high frequency.
  const workload::CaseStudy incident =
      workload::MakeRepackagedAppCase(generator, &rng);
  std::printf("\n%s\n", incident.description.c_str());
  const core::UcadDetection verdict = ucad.Detect(incident.suspicious);
  std::printf("verdict: %s", verdict.abnormal() ? "FLAGGED" : "missed");
  if (verdict.verdict.abnormal) {
    std::printf(" at operations:");
    for (int pos : verdict.verdict.AbnormalPositions()) {
      std::printf(" #%d", pos + 1);
    }
  }
  std::printf("\nexpected: %s\n", incident.expected_finding.c_str());

  const core::UcadDetection clean = ucad.Detect(incident.normal);
  std::printf("legitimate app session: %s\n",
              clean.abnormal() ? "FLAGGED (false positive)" : "clean");
  return 0;
}
