#ifndef UCAD_UTIL_LOGGING_H_
#define UCAD_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ucad::util {

/// Severity levels for UCAD_LOG.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is printed (default: kInfo).
void SetLogLevel(LogLevel level);
/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-accumulating log line; flushes to stderr on destruction.
/// When `fatal` is true the destructor aborts the process (CHECK failure).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

/// Severity aliases consumed by the UCAD_LOG macro.
namespace log_severity {
inline constexpr LogLevel DEBUG = LogLevel::kDebug;
inline constexpr LogLevel INFO = LogLevel::kInfo;
inline constexpr LogLevel WARNING = LogLevel::kWarning;
inline constexpr LogLevel ERROR = LogLevel::kError;
}  // namespace log_severity

}  // namespace ucad::util

/// Leveled logging: UCAD_LOG(INFO) << "message";
#define UCAD_LOG(severity)                                              \
  ::ucad::util::internal::LogMessage(                                   \
      ::ucad::util::log_severity::severity, __FILE__, __LINE__)         \
      .stream()

/// Aborts with a message when `condition` is false. Used for programming
/// errors (invariant violations), not for recoverable failures.
#define UCAD_CHECK(condition)                                           \
  for (bool _ucad_ok = static_cast<bool>(condition); !_ucad_ok;         \
       _ucad_ok = true)                                                 \
  ::ucad::util::internal::LogMessage(::ucad::util::LogLevel::kError,    \
                                     __FILE__, __LINE__, /*fatal=*/true) \
      .stream()                                                         \
      << "Check failed: " #condition " "

#define UCAD_CHECK_EQ(a, b) UCAD_CHECK((a) == (b))
#define UCAD_CHECK_NE(a, b) UCAD_CHECK((a) != (b))
#define UCAD_CHECK_LT(a, b) UCAD_CHECK((a) < (b))
#define UCAD_CHECK_LE(a, b) UCAD_CHECK((a) <= (b))
#define UCAD_CHECK_GT(a, b) UCAD_CHECK((a) > (b))
#define UCAD_CHECK_GE(a, b) UCAD_CHECK((a) >= (b))

#ifndef NDEBUG
#define UCAD_DCHECK(condition) UCAD_CHECK(condition)
#else
#define UCAD_DCHECK(condition) \
  while (false) ::ucad::util::internal::NullStream()
#endif

#endif  // UCAD_UTIL_LOGGING_H_
