#ifndef UCAD_UTIL_CPU_FEATURES_H_
#define UCAD_UTIL_CPU_FEATURES_H_

#include <string>

namespace ucad::util {

/// Runtime-detected SIMD capabilities of the host CPU. Detection runs once
/// (first call) and is immutable afterwards; all fields are false when the
/// platform has no detection support (non-GNU x86, exotic arches).
struct CpuFeatureSet {
  bool sse42 = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  /// aarch64 baseline (ASIMD is mandatory on AArch64).
  bool neon = false;
};

/// The host's detected feature set (cached after the first call).
const CpuFeatureSet& DetectedCpuFeatures();

/// Comma-joined detected feature names, e.g. "sse4.2,avx2,fma,avx512f",
/// "neon", or "none" — for build_info labels and run manifests.
std::string CpuFeaturesString();

/// Vector instruction family the dispatched kernels run under. kAvx2 implies
/// FMA (the dispatcher requires both); kNeon is the AArch64 baseline, where
/// the relaxed kernels are compiler-lowered to ASIMD rather than hand-coded.
enum class SimdIsa {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Stable lowercase name ("scalar", "avx2", "neon").
const char* SimdIsaName(SimdIsa isa);

/// Parses a SimdIsaName; returns false (and leaves *out alone) on junk.
bool ParseSimdIsa(const std::string& name, SimdIsa* out);

/// The ISA the fast kernel tier dispatches to right now: the strongest
/// family that is (a) enabled in this translation of the kernels (compile
/// flags), (b) supported by the host CPU, and (c) not excluded by an
/// override. Overrides can only narrow — requesting an ISA the build/host
/// cannot run falls back to scalar, never up.
SimdIsa ActiveSimdIsa();

/// Caps ActiveSimdIsa() for the whole process (test/bench seam, also
/// settable via the UCAD_SIMD_ISA env var read on first use). Thread-safe;
/// takes effect on subsequent kernel calls.
void SetSimdIsaOverride(SimdIsa isa);

/// Removes the override (environment override included).
void ClearSimdIsaOverride();

}  // namespace ucad::util

#endif  // UCAD_UTIL_CPU_FEATURES_H_
