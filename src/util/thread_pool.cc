#include "util/thread_pool.h"

#include <chrono>
#include <cstdlib>

namespace ucad::util {

namespace {

/// Set while a thread (worker or helping caller) executes ParallelFor
/// chunks; nested calls then run inline instead of re-entering the queue.
thread_local bool t_in_parallel_region = false;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int DefaultNumThreads() {
  if (const char* env = std::getenv("UCAD_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  const int workers = num_threads_ - 1;
  worker_busy_ns_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    worker_busy_ns_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

void ThreadPool::RunChunks(Job* job, std::atomic<uint64_t>* busy_ns) {
  const bool was_in_region = t_in_parallel_region;
  t_in_parallel_region = true;
  for (;;) {
    const int64_t c = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) break;
    const int64_t chunk_begin = job->begin + c * job->chunk;
    const int64_t chunk_end = chunk_begin + job->chunk < job->end
                                  ? chunk_begin + job->chunk
                                  : job->end;
    const int64_t t0 = NowNs();
    try {
      (*job->body)(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->mu);
      if (!job->error) job->error = std::current_exception();
    }
    if (busy_ns != nullptr) {
      busy_ns->fetch_add(static_cast<uint64_t>(NowNs() - t0),
                         std::memory_order_relaxed);
    }
    tasks_total_.fetch_add(1, std::memory_order_relaxed);
    const int64_t done =
        job->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == job->num_chunks) {
      // Lock before notifying so the waiter cannot miss the wakeup between
      // its predicate check and its wait.
      std::lock_guard<std::mutex> lock(job->mu);
      job->done_cv.notify_all();
    }
  }
  t_in_parallel_region = was_in_region;
}

void ThreadPool::WorkerLoop(int worker_index) {
  std::atomic<uint64_t>* busy = worker_busy_ns_[worker_index].get();
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = jobs_.front();
      if (job->next_chunk.load(std::memory_order_relaxed) >=
          job->num_chunks) {
        // All chunks already claimed; retire the job and look again.
        jobs_.pop_front();
        continue;
      }
    }
    RunChunks(job.get(), busy);
  }
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const int64_t total = end - begin;
  // Serial fast paths: single lane, nested call from inside a body, or a
  // range too small to split.
  if (num_threads_ == 1 || t_in_parallel_region || total <= grain) {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    body(begin, end);
    t_in_parallel_region = was_in_region;
    return;
  }
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  // At most one chunk per lane, each at least `grain` iterations. Chunk
  // boundaries depend only on (begin, end, grain, lanes) — never on
  // scheduling — which is what keeps partitioned kernels deterministic.
  int64_t chunks = (total + grain - 1) / grain;
  if (chunks > num_threads_) chunks = num_threads_;
  job->chunk = (total + chunks - 1) / chunks;
  job->num_chunks = (total + job->chunk - 1) / job->chunk;
  job->body = &body;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    jobs_.push_back(job);
    const int64_t depth = static_cast<int64_t>(jobs_.size());
    int64_t max_depth = max_queue_depth_.load(std::memory_order_relaxed);
    while (depth > max_depth &&
           !max_queue_depth_.compare_exchange_weak(
               max_depth, depth, std::memory_order_relaxed)) {
    }
  }
  active_jobs_.fetch_add(1, std::memory_order_relaxed);
  queue_cv_.notify_all();
  // The caller is a full lane: it works its own job before waiting, so a
  // pool whose workers are all busy elsewhere still makes progress.
  RunChunks(job.get(), nullptr);
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock, [&job] {
      return job->done_chunks.load(std::memory_order_acquire) ==
             job->num_chunks;
    });
  }
  active_jobs_.fetch_sub(1, std::memory_order_relaxed);
  {
    // Retire the job eagerly; workers also retire exhausted fronts, but
    // this keeps the queue empty when no worker wakes up again soon.
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->get() == job.get()) {
        jobs_.erase(it);
        break;
      }
    }
  }
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPoolStats ThreadPool::Stats() const {
  ThreadPoolStats stats;
  stats.tasks_total = tasks_total_.load(std::memory_order_relaxed);
  stats.queue_depth = active_jobs_.load(std::memory_order_relaxed);
  stats.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  stats.worker_busy_ns.reserve(worker_busy_ns_.size());
  for (const auto& busy : worker_busy_ns_) {
    stats.worker_busy_ns.push_back(busy->load(std::memory_order_relaxed));
  }
  return stats;
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
int g_requested_threads = 0;  // 0 = not set: use UCAD_THREADS or hardware
/// Lock-free mirror of the effective lane count, so hot-path "is it even
/// worth splitting" checks (matmul thresholds) never touch g_pool_mu.
/// 0 = not resolved yet.
std::atomic<int> g_num_threads_cache{0};
/// Lock-free mirror of g_pool's address, so GlobalQueueDepth() — sampled
/// once per scored window by the flight recorder — never touches
/// g_pool_mu and never instantiates a pool as a side effect. Updated
/// under g_pool_mu whenever g_pool changes.
std::atomic<ThreadPool*> g_pool_raw{nullptr};

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) {
    const int n =
        g_requested_threads > 0 ? g_requested_threads : DefaultNumThreads();
    g_pool = std::make_unique<ThreadPool>(n);
    g_num_threads_cache.store(n, std::memory_order_relaxed);
    g_pool_raw.store(g_pool.get(), std::memory_order_release);
  }
  return *g_pool;
}

void SetNumThreads(int n) {
  if (n < 1) n = 1;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_requested_threads = n;
  g_num_threads_cache.store(n, std::memory_order_relaxed);
  if (g_pool != nullptr && g_pool->num_threads() == n) return;
  g_pool_raw.store(nullptr, std::memory_order_release);
  g_pool.reset();  // joins the old workers before the swap
  g_pool = std::make_unique<ThreadPool>(n);
  g_pool_raw.store(g_pool.get(), std::memory_order_release);
}

int64_t GlobalQueueDepth() {
  ThreadPool* pool = g_pool_raw.load(std::memory_order_acquire);
  return pool == nullptr ? 0 : pool->QueueDepth();
}

int NumThreads() {
  const int cached = g_num_threads_cache.load(std::memory_order_relaxed);
  if (cached > 0) return cached;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (g_pool != nullptr) return g_pool->num_threads();
    if (g_requested_threads > 0) return g_requested_threads;
  }
  const int n = DefaultNumThreads();
  g_num_threads_cache.store(n, std::memory_order_relaxed);
  return n;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  if (end - begin <= grain || ThreadPool::InParallelRegion()) {
    // Too small to split (or nested): skip pool instantiation entirely.
    body(begin, end);
    return;
  }
  GlobalThreadPool().ParallelFor(begin, end, grain, body);
}

}  // namespace ucad::util
