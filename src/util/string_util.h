#ifndef UCAD_UTIL_STRING_UTIL_H_
#define UCAD_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ucad::util {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Splits `input` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view input);

/// True iff `input` begins with `prefix` (case-sensitive).
bool StartsWith(std::string_view input, std::string_view prefix);

/// True iff `input` ends with `suffix` (case-sensitive).
bool EndsWith(std::string_view input, std::string_view suffix);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

}  // namespace ucad::util

#endif  // UCAD_UTIL_STRING_UTIL_H_
