#ifndef UCAD_UTIL_TABLE_PRINTER_H_
#define UCAD_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace ucad::util {

/// Column-aligned console table used by the benchmark harnesses to print
/// paper-style result tables.
///
/// Usage:
///   TablePrinter t({"Method", "F1"});
///   t.AddRow({"Ours", "0.98168"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  /// Creates a table with the given header row.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; its size must match the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: appends a row of already-formatted cells, converting
  /// doubles with 5-digit precision (the paper's convention).
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 5);

  /// Renders the table with a separator under the header.
  void Print(std::ostream& os) const;

  /// Renders to a string (for tests).
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ucad::util

#endif  // UCAD_UTIL_TABLE_PRINTER_H_
