#include "util/logging.h"

#include <atomic>
#include <cstring>

namespace ucad::util {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal), enabled_(fatal || level >= GetLogLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str() << std::flush;
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace ucad::util
