#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>

namespace ucad::util {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

/// Small, stable per-thread id for log prefixes (std::this_thread::get_id
/// prints as an opaque pointer-sized number; a dense counter is readable).
uint32_t LogThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal), enabled_(fatal || level >= GetLogLevel()) {
  if (enabled_) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                            now.time_since_epoch())
                            .count() %
                        1000;
    std::tm tm_buf{};
    localtime_r(&secs, &tm_buf);
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "%02d%02d %02d:%02d:%02d.%03d",
                  tm_buf.tm_mon + 1, tm_buf.tm_mday, tm_buf.tm_hour,
                  tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(millis));
    stream_ << "[" << LevelName(level_) << " " << stamp << " t"
            << LogThreadId() << " " << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    // One fwrite per line: stdio locks the stream around the whole call, so
    // concurrent threads emit whole lines instead of interleaved fragments
    // (streaming chunks through std::cerr sheds that atomicity).
    const std::string line = stream_.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace ucad::util
