#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace ucad::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  UCAD_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  UCAD_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << row[c]
         << std::string(widths[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace ucad::util
