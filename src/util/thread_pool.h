#ifndef UCAD_UTIL_THREAD_POOL_H_
#define UCAD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ucad::util {

/// Point-in-time view of a pool's lifetime accounting, for the obs layer
/// (pool/tasks_total, pool/queue_depth, per-worker busy time).
struct ThreadPoolStats {
  /// Chunks executed (by workers and by callers helping their own jobs).
  uint64_t tasks_total = 0;
  /// Jobs currently queued or running.
  int64_t queue_depth = 0;
  /// High-water mark of queue_depth.
  int64_t max_queue_depth = 0;
  /// Busy nanoseconds per background worker (size = worker count, which is
  /// num_threads - 1: the calling thread is the remaining lane).
  std::vector<uint64_t> worker_busy_ns;
};

/// Fixed-size worker pool executing chunked parallel-for loops. There is no
/// work stealing: each ParallelFor call becomes one job whose chunks are
/// claimed from a single shared counter, so chunk-to-data assignment is
/// static and results never depend on which thread ran which chunk.
///
/// Concurrency model:
///  - `num_threads` is the total lane count; the pool spawns num_threads - 1
///    background workers and the calling thread works its own job too.
///  - ParallelFor called from inside a pool-executed body runs serially
///    inline (nested-submit deadlock guard), so callers may parallelize
///    freely at every layer and only the outermost level fans out.
///  - With num_threads == 1 every ParallelFor degrades to a plain loop with
///    no locking, allocation, or thread touch at all.
///
/// Exceptions thrown by the body are captured (first one wins) and rethrown
/// on the calling thread after all chunks finish.
class ThreadPool {
 public:
  /// Spawns num_threads - 1 workers (num_threads < 1 is clamped to 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(chunk_begin, chunk_end) over a partition of [begin, end).
  /// Chunks hold at least `grain` iterations (grain < 1 is clamped to 1);
  /// bodies of distinct chunks may run concurrently and must write to
  /// disjoint data. Returns after every chunk completed.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

  /// True while the current thread is executing a ParallelFor body (worker
  /// or helping caller); nested ParallelFor calls then run inline.
  static bool InParallelRegion();

  /// Jobs currently queued or running (ThreadPoolStats::queue_depth
  /// without the full snapshot): one relaxed atomic load.
  int64_t QueueDepth() const {
    return active_jobs_.load(std::memory_order_relaxed);
  }

  ThreadPoolStats Stats() const;

 private:
  struct Job {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t chunk = 1;
    int64_t num_chunks = 0;
    const std::function<void(int64_t, int64_t)>* body = nullptr;
    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> done_chunks{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;  // first failure, guarded by mu
  };

  void WorkerLoop(int worker_index);
  /// Claims and runs chunks of `job` until none remain; `busy_ns` (may be
  /// null) accumulates execution time. Returns after the local claims are
  /// executed (other threads may still be finishing theirs).
  void RunChunks(Job* job, std::atomic<uint64_t>* busy_ns);

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> worker_busy_ns_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;

  std::atomic<uint64_t> tasks_total_{0};
  std::atomic<int64_t> active_jobs_{0};
  std::atomic<int64_t> max_queue_depth_{0};
};

/// The process-wide pool used by the nn kernels, the trainer, the detector,
/// and the eval runner. Created on first use with SetNumThreads()'s value,
/// the UCAD_THREADS environment variable, or hardware_concurrency(), in
/// that precedence order.
ThreadPool& GlobalThreadPool();

/// Resizes the global pool (tears down the old one; do not call while any
/// ParallelFor is in flight). n < 1 is clamped to 1. Overrides UCAD_THREADS.
void SetNumThreads(int n);

/// Lane count the global pool has (or would be created with).
int NumThreads();

/// Queue depth of the global pool, or 0 when it was never created.
/// Lock-free and never instantiates the pool, so per-window samplers (the
/// flight recorder) can call it unconditionally.
int64_t GlobalQueueDepth();

/// Convenience wrapper over GlobalThreadPool().ParallelFor that skips pool
/// creation entirely when the range is empty or a single chunk.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

}  // namespace ucad::util

#endif  // UCAD_UTIL_THREAD_POOL_H_
