#ifndef UCAD_UTIL_TIMER_H_
#define UCAD_UTIL_TIMER_H_

#include <chrono>

namespace ucad::util {

/// Wall-clock stopwatch used to report per-epoch training times
/// (paper Tables 4 and 5).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ucad::util

#endif  // UCAD_UTIL_TIMER_H_
