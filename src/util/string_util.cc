#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace ucad::util {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() &&
           std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace ucad::util
