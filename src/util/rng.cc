#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace ucad::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  UCAD_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  UCAD_CHECK_LE(lo, hi);
  return lo + static_cast<int>(
                  UniformU64(static_cast<uint64_t>(hi) - lo + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Guard against log(0).
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  UCAD_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0;
  if (total <= 0) return UniformU64(weights.size());
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = weights[i] > 0 ? weights[i] : 0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  if (k >= n) return all;
  // Partial Fisher-Yates: first k positions are the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformU64(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace ucad::util
