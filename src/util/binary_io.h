#ifndef UCAD_UTIL_BINARY_IO_H_
#define UCAD_UTIL_BINARY_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace ucad::util {

/// Little-endian binary primitives for model/vocabulary serialization.
/// Writers never fail (stream state is checked by the caller at the end);
/// readers return Status on truncated or malformed input.

void WriteU32(std::ostream& os, uint32_t value);
void WriteI32(std::ostream& os, int32_t value);
void WriteF32(std::ostream& os, float value);
void WriteString(std::ostream& os, const std::string& value);
void WriteFloatVector(std::ostream& os, const std::vector<float>& values);

Status ReadU32(std::istream& is, uint32_t* value);
Status ReadI32(std::istream& is, int32_t* value);
Status ReadF32(std::istream& is, float* value);
/// Strings are capped at `max_len` to reject corrupt length prefixes.
Status ReadString(std::istream& is, std::string* value,
                  uint32_t max_len = 1 << 20);
Status ReadFloatVector(std::istream& is, std::vector<float>* values,
                       uint32_t max_len = 1 << 28);

}  // namespace ucad::util

#endif  // UCAD_UTIL_BINARY_IO_H_
