#ifndef UCAD_UTIL_RNG_H_
#define UCAD_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ucad::util {

/// Deterministic pseudo-random generator (xoshiro256**, seeded via
/// splitmix64). Every stochastic component in the library takes an Rng so
/// experiments are reproducible bit-for-bit on a given platform.
class Rng {
 public:
  /// Seeds the generator; identical seeds produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal variate (Box-Muller).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive total weight falls back to uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = UniformU64(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k > n returns all of [0, n)).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ucad::util

#endif  // UCAD_UTIL_RNG_H_
