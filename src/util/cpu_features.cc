#include "util/cpu_features.h"

#include <atomic>
#include <cstdlib>

namespace ucad::util {

namespace {

CpuFeatureSet Detect() {
  CpuFeatureSet f;
#if defined(__aarch64__) || defined(_M_ARM64)
  // ASIMD (NEON) is architecturally mandatory on AArch64.
  f.neon = true;
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  f.sse42 = __builtin_cpu_supports("sse4.2");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
#endif
  return f;
}

/// -1 = no override, otherwise the SimdIsa ordinal. Seeded from the
/// UCAD_SIMD_ISA env var on first read so forced-scalar CI legs and bench
/// runs need no code changes.
std::atomic<int> g_isa_override{-2};  // -2 = env not consulted yet

int LoadOverride() {
  int v = g_isa_override.load(std::memory_order_relaxed);
  if (v != -2) return v;
  int from_env = -1;
  if (const char* env = std::getenv("UCAD_SIMD_ISA")) {
    SimdIsa isa;
    if (ParseSimdIsa(env, &isa)) from_env = static_cast<int>(isa);
  }
  // First thread in wins; a concurrent SetSimdIsaOverride may have landed,
  // in which case keep it.
  int expected = -2;
  g_isa_override.compare_exchange_strong(expected, from_env,
                                         std::memory_order_relaxed);
  return g_isa_override.load(std::memory_order_relaxed);
}

}  // namespace

const CpuFeatureSet& DetectedCpuFeatures() {
  static const CpuFeatureSet features = Detect();
  return features;
}

std::string CpuFeaturesString() {
  const CpuFeatureSet& f = DetectedCpuFeatures();
  std::string out;
  const auto add = [&out](bool on, const char* name) {
    if (!on) return;
    if (!out.empty()) out += ',';
    out += name;
  };
  add(f.sse42, "sse4.2");
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.avx512f, "avx512f");
  add(f.neon, "neon");
  return out.empty() ? "none" : out;
}

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "scalar";
}

bool ParseSimdIsa(const std::string& name, SimdIsa* out) {
  if (name == "scalar") {
    *out = SimdIsa::kScalar;
  } else if (name == "avx2") {
    *out = SimdIsa::kAvx2;
  } else if (name == "neon") {
    *out = SimdIsa::kNeon;
  } else {
    return false;
  }
  return true;
}

SimdIsa ActiveSimdIsa() {
  SimdIsa isa = SimdIsa::kScalar;
#if defined(__AVX2__) && defined(__FMA__)
  // The AVX2 kernel bodies only exist when the build enables them; the
  // runtime check matters for generic (-march=x86-64-v3 built, older host)
  // deployments.
  if (DetectedCpuFeatures().avx2 && DetectedCpuFeatures().fma) {
    isa = SimdIsa::kAvx2;
  }
#elif defined(__aarch64__) || defined(_M_ARM64)
  if (DetectedCpuFeatures().neon) isa = SimdIsa::kNeon;
#endif
  const int override_v = LoadOverride();
  if (override_v == static_cast<int>(SimdIsa::kScalar)) {
    // Overrides narrow only (scalar is the sole cross-family target):
    // forcing an ISA the build/host lacks would dispatch to kernels that
    // cannot run, so any other requested family is ignored unless it is
    // what detection already picked.
    isa = SimdIsa::kScalar;
  }
  return isa;
}

void SetSimdIsaOverride(SimdIsa isa) {
  g_isa_override.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void ClearSimdIsaOverride() {
  g_isa_override.store(-1, std::memory_order_relaxed);
}

}  // namespace ucad::util
