#ifndef UCAD_UTIL_STATUS_H_
#define UCAD_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace ucad::util {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// RocksDB-style status object: fallible library APIs return Status (or
/// Result<T>) instead of throwing. Ok() is the success value; every error
/// carries a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Named constructors for each error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The error category (kOk for success).
  StatusCode code() const { return code_; }
  /// The error message (empty for success).
  const std::string& message() const { return message_; }
  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value of type T or an error Status.
/// Dereferencing a Result that holds an error aborts the process, so call
/// sites either check ok() or accept crash-on-bug semantics (CHECK idiom).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    UCAD_CHECK(!std::get<Status>(value_).ok())
        << "Result constructed from OK status without a value";
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(value_); }

  /// The error status; OK when a value is present.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(value_);
  }

  /// The value; aborts if this Result holds an error.
  const T& value() const& {
    UCAD_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(value_);
  }
  T& value() & {
    UCAD_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(value_);
  }
  T&& value() && {
    UCAD_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace ucad::util

/// Propagates a non-OK Status from the current function.
#define UCAD_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::ucad::util::Status _st = (expr);             \
    if (!_st.ok()) return _st;                     \
  } while (false)

#endif  // UCAD_UTIL_STATUS_H_
