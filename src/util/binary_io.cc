#include "util/binary_io.h"

#include <cstring>

namespace ucad::util {

namespace {

template <typename T>
void WriteRaw(std::ostream& os, T value) {
  // The library targets little-endian hosts; a static_assert documents the
  // assumption rather than paying for byte swaps.
  static_assert(sizeof(T) <= 8);
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
Status ReadRaw(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!is.good() && !is.eof()) {
    return Status::Internal("stream read error");
  }
  if (is.gcount() != static_cast<std::streamsize>(sizeof(T))) {
    return Status::OutOfRange("truncated input");
  }
  return Status::Ok();
}

}  // namespace

void WriteU32(std::ostream& os, uint32_t value) { WriteRaw(os, value); }
void WriteI32(std::ostream& os, int32_t value) { WriteRaw(os, value); }
void WriteF32(std::ostream& os, float value) { WriteRaw(os, value); }

void WriteString(std::ostream& os, const std::string& value) {
  WriteU32(os, static_cast<uint32_t>(value.size()));
  os.write(value.data(), static_cast<std::streamsize>(value.size()));
}

void WriteFloatVector(std::ostream& os, const std::vector<float>& values) {
  WriteU32(os, static_cast<uint32_t>(values.size()));
  os.write(reinterpret_cast<const char*>(values.data()),
           static_cast<std::streamsize>(values.size() * sizeof(float)));
}

Status ReadU32(std::istream& is, uint32_t* value) {
  return ReadRaw(is, value);
}
Status ReadI32(std::istream& is, int32_t* value) { return ReadRaw(is, value); }
Status ReadF32(std::istream& is, float* value) { return ReadRaw(is, value); }

Status ReadString(std::istream& is, std::string* value, uint32_t max_len) {
  uint32_t len = 0;
  UCAD_RETURN_IF_ERROR(ReadU32(is, &len));
  if (len > max_len) {
    return Status::OutOfRange("string length " + std::to_string(len) +
                              " exceeds cap");
  }
  value->resize(len);
  is.read(value->data(), len);
  if (is.gcount() != static_cast<std::streamsize>(len)) {
    return Status::OutOfRange("truncated string");
  }
  return Status::Ok();
}

Status ReadFloatVector(std::istream& is, std::vector<float>* values,
                       uint32_t max_len) {
  uint32_t len = 0;
  UCAD_RETURN_IF_ERROR(ReadU32(is, &len));
  if (len > max_len) {
    return Status::OutOfRange("float vector length exceeds cap");
  }
  values->resize(len);
  is.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(len * sizeof(float)));
  if (is.gcount() != static_cast<std::streamsize>(len * sizeof(float))) {
    return Status::OutOfRange("truncated float vector");
  }
  return Status::Ok();
}

}  // namespace ucad::util
