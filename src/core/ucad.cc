#include "core/ucad.h"

#include <utility>

#include "util/logging.h"

namespace ucad::core {

Ucad::Ucad(const UcadOptions& options, prep::PolicyEngine policies)
    : options_(options),
      preprocessor_(std::move(policies), options.filter),
      rng_(options.seed) {}

util::Status Ucad::Train(const std::vector<sql::RawSession>& log) {
  if (log.empty()) {
    return util::Status::InvalidArgument("training log is empty");
  }
  std::vector<sql::KeySession> purified =
      preprocessor_.PrepareTrainingData(log, &rng_);
  if (purified.empty()) {
    return util::Status::FailedPrecondition(
        "preprocessing removed every session; relax the filter options");
  }
  std::vector<std::vector<int>> sessions;
  sessions.reserve(purified.size());
  for (const auto& s : purified) sessions.push_back(s.keys);

  transdas::TransDasConfig model_config = options_.model;
  model_config.vocab_size = preprocessor_.vocabulary().size();
  if (model_config.vocab_size < 2) {
    return util::Status::FailedPrecondition(
        "vocabulary has no statement keys");
  }
  model_ = std::make_unique<transdas::TransDasModel>(model_config, &rng_);
  trainer_ =
      std::make_unique<transdas::TransDasTrainer>(model_.get(),
                                                  options_.training);
  trainer_->Train(sessions);
  detector_ = std::make_unique<transdas::TransDasDetector>(
      model_.get(), options_.detection);
  return util::Status::Ok();
}

UcadDetection Ucad::Detect(const sql::RawSession& session) const {
  UCAD_CHECK(trained()) << "Detect() before Train()";
  UcadDetection result;
  bool known_attack = false;
  const sql::KeySession keys =
      preprocessor_.PrepareActiveSession(session, &known_attack);
  result.known_attack = known_attack;
  if (known_attack) {
    result.violated_policy =
        preprocessor_.policy_engine().FirstViolation(session);
    return result;
  }
  result.verdict = detector_->DetectSession(keys.keys);
  return result;
}

util::Status Ucad::FineTune(const std::vector<sql::RawSession>& verified) {
  if (!trained()) {
    return util::Status::FailedPrecondition("FineTune() before Train()");
  }
  if (verified.empty()) {
    return util::Status::InvalidArgument("no verified sessions");
  }
  std::vector<std::vector<int>> sessions;
  sessions.reserve(verified.size());
  for (const auto& raw : verified) {
    sessions.push_back(
        sql::TokenizeSessionFrozen(raw, preprocessor_.vocabulary()).keys);
  }
  trainer_->FineTune(sessions);
  return util::Status::Ok();
}

}  // namespace ucad::core
