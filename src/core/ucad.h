#ifndef UCAD_CORE_UCAD_H_
#define UCAD_CORE_UCAD_H_

#include <memory>
#include <string>
#include <vector>

#include "prep/preprocessor.h"
#include "sql/session.h"
#include "transdas/config.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "transdas/trainer.h"
#include "util/rng.h"
#include "util/status.h"

namespace ucad::core {

/// Top-level configuration of a UCAD instance.
struct UcadOptions {
  /// Trans-DAS architecture (vocab_size is derived from the training log).
  transdas::TransDasConfig model;
  /// Offline training options (§5.2).
  transdas::TrainOptions training;
  /// Online top-p detection options (§5.3).
  transdas::DetectorOptions detection;
  /// Clustering-based noise removal options (§5.1). The default coarsens
  /// profiles to (table, command) groups with a wide DBSCAN radius, which
  /// keeps the bulk of a heterogeneous normal log (raw-key Jaccard
  /// distances collapse on wide vocabularies).
  prep::SessionFilterOptions filter = DefaultFilter();
  /// Seed for model initialization and preprocessing randomness.
  uint64_t seed = 1;

  static prep::SessionFilterOptions DefaultFilter() {
    prep::SessionFilterOptions f;
    f.coarsen_by_table_command = true;
    f.dbscan.eps = 0.7;
    f.dbscan.min_points = 3;
    f.oversample_factor = 4.0;
    f.small_cluster_ratio = 0.2;
    f.short_session_ratio = 0.35;
    return f;
  }
};

/// Result of screening one active session.
struct UcadDetection {
  /// True when an access-control policy rejected the session outright
  /// (known attack pattern, filtered before the model runs — §3).
  bool known_attack = false;
  /// Name of the violated policy when known_attack is true.
  std::string violated_policy;
  /// Trans-DAS verdict (valid when !known_attack).
  transdas::SessionVerdict verdict;

  /// True when the session should be escalated to a domain expert.
  bool abnormal() const { return known_attack || verdict.abnormal; }
};

/// The complete UCAD system (§3): a preprocessing module (tokenization,
/// access-control screening, clustering-based noise removal) plus an
/// anomaly detection module (Trans-DAS trained unsupervised on purified
/// normal sessions; top-p contextual-intent matching online).
///
/// Typical usage:
///   core::Ucad ucad(options, std::move(policies));
///   UCAD_CHECK(ucad.Train(audit_log).ok());
///   UcadDetection d = ucad.Detect(active_session);
///   if (d.abnormal()) Escalate(d);
class Ucad {
 public:
  /// `policies` is the extensible ABAC rule set applied in both stages.
  Ucad(const UcadOptions& options, prep::PolicyEngine policies);

  Ucad(const Ucad&) = delete;
  Ucad& operator=(const Ucad&) = delete;

  /// Offline stage: preprocesses the raw audit log (assumed normal user
  /// traffic, possibly noisy) and trains Trans-DAS on the purified
  /// sessions. Returns InvalidArgument on an empty log and
  /// FailedPrecondition when preprocessing removes every session.
  util::Status Train(const std::vector<sql::RawSession>& log);

  /// Online stage: screens one active session. Must be called after a
  /// successful Train().
  UcadDetection Detect(const sql::RawSession& session) const;

  /// Fine-tunes the model on expert-verified normal sessions (concept
  /// drift, §5.2). Returns FailedPrecondition before Train().
  util::Status FineTune(const std::vector<sql::RawSession>& verified);

  /// True once Train() has succeeded.
  bool trained() const { return model_ != nullptr; }

  const prep::Preprocessor& preprocessor() const { return preprocessor_; }
  transdas::TransDasModel* model() { return model_.get(); }
  const UcadOptions& options() const { return options_; }

 private:
  UcadOptions options_;
  prep::Preprocessor preprocessor_;
  util::Rng rng_;
  std::unique_ptr<transdas::TransDasModel> model_;
  std::unique_ptr<transdas::TransDasTrainer> trainer_;
  std::unique_ptr<transdas::TransDasDetector> detector_;
};

}  // namespace ucad::core

#endif  // UCAD_CORE_UCAD_H_
