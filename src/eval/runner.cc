#include "eval/runner.h"

#include "transdas/detector.h"
#include "transdas/model.h"
#include "util/logging.h"

namespace ucad::eval {

double TransDasRun::MeanEpochSeconds() const {
  if (epochs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& e : epochs) total += e.seconds;
  return total / epochs.size();
}

TransDasRun RunTransDas(const ScenarioDataset& ds,
                        transdas::TransDasConfig model_config,
                        const transdas::TrainOptions& train_options,
                        const transdas::DetectorOptions& detector_options,
                        const std::vector<std::vector<int>>& train,
                        uint64_t model_seed) {
  model_config.vocab_size = ds.vocab.size();
  util::Rng rng(model_seed);
  transdas::TransDasModel model(model_config, &rng);
  transdas::TransDasTrainer trainer(&model, train_options);
  TransDasRun run;
  run.epochs = trainer.Train(train);
  transdas::TransDasDetector detector(&model, detector_options);
  run.metrics = Evaluate(
      [&detector](const std::vector<int>& session) {
        return detector.DetectSession(session).abnormal;
      },
      ds.TestSets());
  return run;
}

std::vector<std::string> BaselineNames() {
  return {"OneClassSVM", "iForest", "Mazzawi et al.", "DeepLog", "USAD"};
}

std::unique_ptr<baselines::SessionDetector> MakeBaseline(
    const std::string& name, const ScenarioConfig& config,
    const ScenarioDataset& ds) {
  const int vocab = ds.vocab.size();
  if (name == "OneClassSVM") {
    return std::make_unique<baselines::OneClassSvm>(vocab, config.ocsvm);
  }
  if (name == "iForest") {
    return std::make_unique<baselines::IsolationForest>(vocab,
                                                        config.iforest);
  }
  if (name == "Mazzawi et al.") {
    return std::make_unique<baselines::MazzawiDetector>(
        vocab, ds.key_commands, config.mazzawi);
  }
  if (name == "DeepLog") {
    return std::make_unique<baselines::DeepLog>(vocab, config.deeplog);
  }
  if (name == "USAD") {
    return std::make_unique<baselines::Usad>(vocab, config.usad);
  }
  if (name == "LogCluster") {
    return std::make_unique<baselines::LogCluster>(vocab, config.logcluster);
  }
  UCAD_CHECK(false) << "unknown baseline: " << name;
  return nullptr;
}

EvalResult RunBaseline(baselines::SessionDetector* detector,
                       const ScenarioDataset& ds,
                       const std::vector<std::vector<int>>& train) {
  detector->Train(train);
  return Evaluate(
      [detector](const std::vector<int>& session) {
        return detector->IsAbnormal(session);
      },
      ds.TestSets());
}

}  // namespace ucad::eval
