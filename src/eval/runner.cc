#include "eval/runner.h"

#include <cctype>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/pool_metrics.h"
#include "obs/trace.h"
#include "transdas/detector.h"
#include "transdas/model.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ucad::eval {

double TransDasRun::MeanEpochSeconds() const {
  if (epochs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& e : epochs) total += e.seconds;
  return total / epochs.size();
}

namespace {

/// Metric-name-safe method slug: "Mazzawi et al." -> "mazzawi_et_al".
std::string MethodSlug(const std::string& method) {
  std::string slug;
  for (char c : method) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

/// Per-method eval wall-clock, labelled so all methods of one run land in
/// the same snapshot ("eval/train_seconds{method=DeepLog}", ...). The
/// slug-named histograms ("eval/deeplog/train_ms") are what bench_compare
/// gates on: histogram `min` across repeated runs is the noise-robust
/// statistic, where a gauge would only keep the last sample.
void RecordMethodTiming(const std::string& method, double train_seconds,
                        double detect_seconds, const EvalResult& result) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  const obs::Labels labels = {{"method", method}};
  reg.GetGauge("eval/train_seconds", labels)->Set(train_seconds);
  reg.GetGauge("eval/detect_seconds", labels)->Set(detect_seconds);
  reg.GetCounter("eval/runs_total", labels)->Increment();
  const std::string slug = MethodSlug(method);
  reg.GetHistogram("eval/" + slug + "/train_ms")->Observe(train_seconds * 1e3);
  reg.GetHistogram("eval/" + slug + "/detect_ms")
      ->Observe(detect_seconds * 1e3);
  // Raw confusion counts: precision/recall are derived quantities, and a
  // dashboard holding tp/fp/fn/tn can recompute them (or any other
  // statistic) at whatever threshold or aggregation it wants.
  reg.GetCounter("eval/" + slug + "/tp")->Increment(result.true_positives);
  reg.GetCounter("eval/" + slug + "/fp")->Increment(result.false_positives);
  reg.GetCounter("eval/" + slug + "/fn")->Increment(result.false_negatives);
  reg.GetCounter("eval/" + slug + "/tn")->Increment(result.true_negatives);
  // Phase-boundary RSS high-water mark: training a method is the natural
  // allocation peak, so refreshing here makes run.json attribution useful.
  reg.GetGauge("proc/peak_rss_bytes")
      ->Set(static_cast<double>(obs::PeakRssBytes()));
}

}  // namespace

TransDasRun RunTransDas(const ScenarioDataset& ds,
                        transdas::TransDasConfig model_config,
                        const transdas::TrainOptions& train_options,
                        const transdas::DetectorOptions& detector_options,
                        const std::vector<std::vector<int>>& train,
                        uint64_t model_seed) {
  UCAD_TRACE_SPAN("eval/run_transdas");
  model_config.vocab_size = ds.vocab.size();
  util::Rng rng(model_seed);
  transdas::TransDasModel model(model_config, &rng);
  transdas::TransDasTrainer trainer(&model, train_options);
  TransDasRun run;
  util::Timer train_timer;
  run.epochs = trainer.Train(train);
  const double train_seconds = train_timer.ElapsedSeconds();
  transdas::TransDasDetector detector(&model, detector_options);
  util::Timer detect_timer;
  {
    UCAD_TRACE_SPAN("eval/detect");
    run.metrics = Evaluate(
        [&detector](const std::vector<int>& session) {
          return detector.DetectSession(session).abnormal;
        },
        ds.TestSets());
  }
  RecordMethodTiming("TransDAS", train_seconds, detect_timer.ElapsedSeconds(),
                     run.metrics);
  return run;
}

std::vector<std::string> BaselineNames() {
  return {"OneClassSVM", "iForest", "Mazzawi et al.", "DeepLog", "USAD"};
}

std::unique_ptr<baselines::SessionDetector> MakeBaseline(
    const std::string& name, const ScenarioConfig& config,
    const ScenarioDataset& ds) {
  const int vocab = ds.vocab.size();
  if (name == "OneClassSVM") {
    return std::make_unique<baselines::OneClassSvm>(vocab, config.ocsvm);
  }
  if (name == "iForest") {
    return std::make_unique<baselines::IsolationForest>(vocab,
                                                        config.iforest);
  }
  if (name == "Mazzawi et al.") {
    return std::make_unique<baselines::MazzawiDetector>(
        vocab, ds.key_commands, config.mazzawi);
  }
  if (name == "DeepLog") {
    return std::make_unique<baselines::DeepLog>(vocab, config.deeplog);
  }
  if (name == "USAD") {
    return std::make_unique<baselines::Usad>(vocab, config.usad);
  }
  if (name == "LogCluster") {
    return std::make_unique<baselines::LogCluster>(vocab, config.logcluster);
  }
  UCAD_CHECK(false) << "unknown baseline: " << name;
  return nullptr;
}

EvalResult RunBaseline(baselines::SessionDetector* detector,
                       const ScenarioDataset& ds,
                       const std::vector<std::vector<int>>& train) {
  UCAD_TRACE_SPAN("eval/run_baseline");
  util::Timer train_timer;
  {
    UCAD_TRACE_SPAN("eval/train");
    detector->Train(train);
  }
  const double train_seconds = train_timer.ElapsedSeconds();
  util::Timer detect_timer;
  EvalResult result;
  {
    UCAD_TRACE_SPAN("eval/detect");
    result = Evaluate(
        [detector](const std::vector<int>& session) {
          return detector->IsAbnormal(session);
        },
        ds.TestSets());
  }
  RecordMethodTiming(detector->name(), train_seconds,
                     detect_timer.ElapsedSeconds(), result);
  return result;
}

std::vector<MethodResult> RunAllMethods(const ScenarioConfig& config,
                                        const ScenarioDataset& ds) {
  UCAD_TRACE_SPAN("eval/run_all_methods");
  const std::vector<std::string> baselines = BaselineNames();
  const int64_t num_methods = static_cast<int64_t>(baselines.size()) + 1;
  std::vector<MethodResult> results(num_methods);
  // Method index num_methods-1 is Trans-DAS; the rest are baselines in
  // row order. Each lane writes only its own slot. Note the nested
  // parallelism inside RunTransDas (minibatch gradients, session scoring)
  // degrades gracefully: ParallelFor calls from inside a pool lane run
  // inline, so method-level fan-out always wins the threads.
  util::ParallelFor(
      0, num_methods, /*grain=*/1,
      [&config, &ds, &baselines, &results](int64_t b0, int64_t b1) {
        for (int64_t m = b0; m < b1; ++m) {
          MethodResult& out = results[m];
          util::Timer timer;
          if (m < static_cast<int64_t>(baselines.size())) {
            out.name = baselines[m];
            auto detector = MakeBaseline(out.name, config, ds);
            out.metrics = RunBaseline(detector.get(), ds, ds.train);
          } else {
            out.name = "Ours (UCAD)";
            const TransDasRun run =
                RunTransDas(ds, config.model, config.training,
                            config.detection, ds.train);
            out.metrics = run.metrics;
          }
          out.seconds = timer.ElapsedSeconds();
        }
      });
  if (obs::MetricsEnabled()) {
    obs::PublishThreadPoolMetrics(&obs::DefaultMetrics());
  }
  return results;
}

}  // namespace ucad::eval
