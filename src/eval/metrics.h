#ifndef UCAD_EVAL_METRICS_H_
#define UCAD_EVAL_METRICS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sql/session.h"

namespace ucad::eval {

/// One labeled testing set (V1/V2/V3/A1/A2/A3) of key sessions.
struct LabeledSet {
  sql::SessionLabel label;
  std::vector<std::vector<int>> sessions;
};

/// Session-granularity detection metrics over the six testing sets
/// (paper §6.1): per-normal-set FPR, per-abnormal-set FNR, and the
/// combined precision / recall / F1 (abnormal = positive).
struct EvalResult {
  /// FPR for normal sets, FNR for abnormal sets, keyed by label.
  std::map<sql::SessionLabel, double> per_set_rate;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int true_positives = 0;
  int false_positives = 0;
  int true_negatives = 0;
  int false_negatives = 0;

  /// Rate for one set (0 when the set was not evaluated).
  double Rate(sql::SessionLabel label) const;
};

/// Classifier signature: true = session flagged abnormal.
using SessionClassifier = std::function<bool(const std::vector<int>&)>;

/// Runs `classifier` over every set and aggregates the paper's metrics.
EvalResult Evaluate(const SessionClassifier& classifier,
                    const std::vector<LabeledSet>& sets);

/// Precision / recall / F1 over plain binary labels (used by the
/// transferability study, Table 6).
struct BinaryMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

BinaryMetrics EvaluateBinary(const SessionClassifier& classifier,
                             const std::vector<std::vector<int>>& sessions,
                             const std::vector<bool>& labels);

}  // namespace ucad::eval

#endif  // UCAD_EVAL_METRICS_H_
