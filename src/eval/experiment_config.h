#ifndef UCAD_EVAL_EXPERIMENT_CONFIG_H_
#define UCAD_EVAL_EXPERIMENT_CONFIG_H_

#include <string>

#include "baselines/deeplog.h"
#include "baselines/iforest.h"
#include "baselines/logcluster.h"
#include "baselines/mazzawi.h"
#include "baselines/ocsvm.h"
#include "baselines/usad.h"
#include "eval/dataset.h"
#include "transdas/config.h"
#include "workload/commenting.h"
#include "workload/location.h"

namespace ucad::eval {

/// Experiment sizing. The paper's experiments ran on an i7-8700 over hours;
/// this reproduction runs single-core, so the default is a reduced
/// `kRepro` scale that preserves every relative comparison (see
/// EXPERIMENTS.md). `kSmoke` is for tests; `kPaper` sets the paper's exact
/// parameter values.
enum class Scale { kSmoke, kRepro, kPaper };

/// Reads UCAD_SCALE (smoke|repro|paper) from the environment; defaults to
/// kRepro.
Scale ScaleFromEnv();

/// Short name for a scale.
const char* ScaleName(Scale scale);

/// Everything needed to run one scenario's experiments.
struct ScenarioConfig {
  std::string name;
  workload::ScenarioSpec spec;
  DatasetOptions dataset;
  transdas::TransDasConfig model;     // vocab_size filled after dataset build
  transdas::TrainOptions training;
  transdas::DetectorOptions detection;
  baselines::DeepLog::Options deeplog;
  baselines::Usad::Options usad;
  baselines::IsolationForest::Options iforest;
  baselines::OneClassSvm::Options ocsvm;
  baselines::MazzawiDetector::Options mazzawi;
  baselines::LogCluster::Options logcluster;
};

/// Scenario-I (commenting application): paper defaults L=30, p=5, g=0.5,
/// h=10, m=2, B=6 and 354 training sessions.
ScenarioConfig ScenarioIConfig(Scale scale);

/// Scenario-II (location service): paper defaults L=100, p=10, g=0.5,
/// h=64, m=8, B=6 and 3722 training sessions.
ScenarioConfig ScenarioIIConfig(Scale scale);

}  // namespace ucad::eval

#endif  // UCAD_EVAL_EXPERIMENT_CONFIG_H_
