#ifndef UCAD_EVAL_DATASET_H_
#define UCAD_EVAL_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "prep/session_filter.h"
#include "sql/session.h"
#include "sql/vocabulary.h"
#include "util/rng.h"
#include "workload/scenario.h"

namespace ucad::eval {

/// Sizing of a generated scenario dataset (paper Table 1 / §6.1: the
/// purified normal sessions split 8:2 into training T and testing V1; V2,
/// V3 derive from V1; A1-A3 are synthesized with |Ai| = |V1|).
struct DatasetOptions {
  int normal_sessions = 400;   // before the 8:2 split
  /// Noisy sessions mixed into the raw log (exercises the preprocessing
  /// module; they are filtered before training).
  int noisy_sessions = 0;
  uint64_t seed = 42;
  /// Run the clustering-based noise filter on the training split.
  bool run_session_filter = true;
  /// Data augmentation (paper §7, future work): add this many swap/remove
  /// mutations of each training session to the purified training set,
  /// teaching the model that interchangeable orderings are normal.
  int augment_per_session = 0;
  /// Clustering knobs. Generated sessions mix heterogeneous tasks, so the
  /// profiles of two normal sessions overlap only partially — the
  /// neighborhood radius is wider than for near-duplicate logs.
  prep::SessionFilterOptions filter = DefaultFilterOptions();

  static prep::SessionFilterOptions DefaultFilterOptions() {
    prep::SessionFilterOptions f;
    f.coarsen_by_table_command = true;
    f.dbscan.eps = 0.7;
    f.dbscan.min_points = 3;
    f.oversample_factor = 4.0;
    f.small_cluster_ratio = 0.2;
    f.short_session_ratio = 0.35;
    return f;
  }
};

/// A fully materialized scenario dataset: frozen vocabulary, purified
/// training sessions, and the six testing sets — everything as key
/// sequences.
struct ScenarioDataset {
  std::string scenario_name;
  sql::Vocabulary vocab;
  /// 0=select,1=insert,2=update,3=delete,4=other per key (Mazzawi features
  /// and Table 1 statistics).
  std::vector<int> key_commands;

  std::vector<std::vector<int>> train;  // T (purified)
  std::vector<std::vector<int>> v1, v2, v3, a1, a2, a3;

  /// Average training-session length (drives the choice of L).
  double avg_train_length = 0.0;

  /// The six labeled testing sets in paper order.
  std::vector<LabeledSet> TestSets() const;

  /// Training set poisoned with `ratio` * |train| abnormal sessions drawn
  /// from A1∪A2∪A3 (robustness study, §6.5).
  std::vector<std::vector<int>> HybridTrain(double ratio,
                                            util::Rng* rng) const;
};

/// Generates, preprocesses, and tokenizes a complete dataset from a
/// scenario spec.
ScenarioDataset BuildScenarioDataset(const workload::ScenarioSpec& spec,
                                     const DatasetOptions& options);

}  // namespace ucad::eval

#endif  // UCAD_EVAL_DATASET_H_
