#include "eval/dataset.h"

#include <utility>

#include "prep/preprocessor.h"
#include "util/logging.h"
#include "workload/anomaly.h"

namespace ucad::eval {

std::vector<LabeledSet> ScenarioDataset::TestSets() const {
  return {
      {sql::SessionLabel::kNormal, v1},
      {sql::SessionLabel::kNormalSwapped, v2},
      {sql::SessionLabel::kNormalReduced, v3},
      {sql::SessionLabel::kPrivilegeAbuse, a1},
      {sql::SessionLabel::kCredentialTheft, a2},
      {sql::SessionLabel::kMisoperation, a3},
  };
}

std::vector<std::vector<int>> ScenarioDataset::HybridTrain(
    double ratio, util::Rng* rng) const {
  std::vector<std::vector<int>> out = train;
  std::vector<const std::vector<std::vector<int>>*> pools = {&a1, &a2, &a3};
  const int count = static_cast<int>(train.size() * ratio + 0.5);
  for (int i = 0; i < count; ++i) {
    const auto* pool = pools[rng->UniformU64(pools.size())];
    if (pool->empty()) continue;
    out.push_back((*pool)[rng->UniformU64(pool->size())]);
  }
  rng->Shuffle(&out);
  return out;
}

ScenarioDataset BuildScenarioDataset(const workload::ScenarioSpec& spec,
                                     const DatasetOptions& options) {
  UCAD_CHECK_GE(options.normal_sessions, 10);
  util::Rng rng(options.seed);
  workload::SessionGenerator generator(spec);
  workload::AnomalySynthesizer synthesizer(&generator);

  // Raw audit log: normal sessions plus (optionally) noisy ones that the
  // access-control policies must filter.
  std::vector<sql::RawSession> log =
      generator.GenerateNormalBatch(options.normal_sessions, &rng);
  const int train_count = static_cast<int>(log.size() * 0.8);
  std::vector<sql::RawSession> train_raw(log.begin(),
                                         log.begin() + train_count);
  std::vector<sql::RawSession> test_raw(log.begin() + train_count, log.end());
  for (int i = 0; i < options.noisy_sessions; ++i) {
    const auto kind = static_cast<workload::NoiseKind>(rng.UniformU64(4));
    train_raw.push_back(generator.GenerateNoisy(kind, &rng));
  }
  rng.Shuffle(&train_raw);

  // Preprocess the training split: policies + vocabulary + clustering.
  prep::PolicyEngine engine = prep::MakeDefaultPolicyEngine(
      spec.users, spec.addresses, spec.business_start_hour,
      spec.business_end_hour);
  prep::SessionFilterOptions filter_options = options.filter;
  if (!options.run_session_filter) {
    // Effectively disable pruning while keeping the code path exercised.
    filter_options.small_cluster_ratio = 0.0;
    filter_options.short_session_ratio = 0.0;
    filter_options.oversample_factor = 1e9;
    filter_options.dbscan.eps = 1.0;
    filter_options.dbscan.min_points = 1;
  }
  prep::Preprocessor preprocessor(std::move(engine), filter_options);

  ScenarioDataset ds;
  ds.scenario_name = spec.name;
  std::vector<sql::KeySession> purified =
      preprocessor.PrepareTrainingData(train_raw, &rng);
  UCAD_CHECK(!purified.empty()) << "preprocessing removed every session";
  double total_len = 0.0;
  for (const auto& session : purified) {
    ds.train.push_back(session.keys);
    total_len += session.keys.size();
  }
  ds.avg_train_length = total_len / purified.size();
  ds.vocab = preprocessor.vocabulary();

  // Optional augmentation (§7): swap/remove mutations of training sessions
  // are themselves normal, so adding them enlarges the normal manifold the
  // model learns. Mutations need the generator's swap/removable metadata,
  // so they are derived from the raw sessions and tokenized frozen.
  if (options.augment_per_session > 0) {
    for (const sql::RawSession& raw : train_raw) {
      // Skip the raw-log sessions the policy engine rejected.
      if (!preprocessor.policy_engine().Admits(raw)) continue;
      for (int a = 0; a < options.augment_per_session; ++a) {
        const sql::RawSession mutated =
            rng.Bernoulli(0.5) ? synthesizer.PartialSwap(raw, &rng)
                               : synthesizer.PartialRemove(raw, &rng);
        ds.train.push_back(
            sql::TokenizeSessionFrozen(mutated, ds.vocab).keys);
      }
    }
  }
  ds.key_commands.reserve(ds.vocab.size());
  for (int k = 0; k < ds.vocab.size(); ++k) {
    switch (ds.vocab.CommandOf(k)) {
      case sql::CommandType::kSelect:
        ds.key_commands.push_back(0);
        break;
      case sql::CommandType::kInsert:
        ds.key_commands.push_back(1);
        break;
      case sql::CommandType::kUpdate:
        ds.key_commands.push_back(2);
        break;
      case sql::CommandType::kDelete:
        ds.key_commands.push_back(3);
        break;
      case sql::CommandType::kOther:
        ds.key_commands.push_back(4);
        break;
    }
  }

  // Testing sets. V1 = held-out normal; V2/V3 mutations of V1; A1/A2
  // derived from V1; A3 synthesized from rare operations. |Ai| = |V1|.
  auto tokenize = [&ds](const sql::RawSession& raw) {
    return sql::TokenizeSessionFrozen(raw, ds.vocab).keys;
  };
  double avg_test_len = 0.0;
  for (const sql::RawSession& raw : test_raw) {
    ds.v1.push_back(tokenize(raw));
    avg_test_len += raw.operations.size();
    ds.v2.push_back(tokenize(synthesizer.PartialSwap(raw, &rng)));
    ds.v3.push_back(tokenize(synthesizer.PartialRemove(raw, &rng)));
    ds.a1.push_back(tokenize(synthesizer.PrivilegeAbuse(raw, &rng)));
    ds.a2.push_back(tokenize(synthesizer.CredentialStealing(raw, &rng)));
  }
  avg_test_len /= std::max<size_t>(1, test_raw.size());
  for (size_t i = 0; i < test_raw.size(); ++i) {
    ds.a3.push_back(tokenize(synthesizer.Misoperation(
        static_cast<int>(avg_test_len), &rng)));
  }
  return ds;
}

}  // namespace ucad::eval
