#include "eval/metrics.h"

#include "util/logging.h"

namespace ucad::eval {

double EvalResult::Rate(sql::SessionLabel label) const {
  auto it = per_set_rate.find(label);
  return it == per_set_rate.end() ? 0.0 : it->second;
}

EvalResult Evaluate(const SessionClassifier& classifier,
                    const std::vector<LabeledSet>& sets) {
  EvalResult result;
  for (const LabeledSet& set : sets) {
    const bool abnormal_set = sql::IsAbnormalLabel(set.label);
    int flagged = 0;
    for (const auto& session : set.sessions) {
      if (classifier(session)) ++flagged;
    }
    const int n = static_cast<int>(set.sessions.size());
    if (abnormal_set) {
      result.true_positives += flagged;
      result.false_negatives += n - flagged;
      result.per_set_rate[set.label] =
          n == 0 ? 0.0 : static_cast<double>(n - flagged) / n;  // FNR
    } else {
      result.false_positives += flagged;
      result.true_negatives += n - flagged;
      result.per_set_rate[set.label] =
          n == 0 ? 0.0 : static_cast<double>(flagged) / n;  // FPR
    }
  }
  const int tp = result.true_positives;
  const int fp = result.false_positives;
  const int fn = result.false_negatives;
  result.precision = tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  result.recall = tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  result.f1 = result.precision + result.recall == 0.0
                  ? 0.0
                  : 2.0 * result.precision * result.recall /
                        (result.precision + result.recall);
  return result;
}

BinaryMetrics EvaluateBinary(const SessionClassifier& classifier,
                             const std::vector<std::vector<int>>& sessions,
                             const std::vector<bool>& labels) {
  UCAD_CHECK_EQ(sessions.size(), labels.size());
  int tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < sessions.size(); ++i) {
    const bool flagged = classifier(sessions[i]);
    if (flagged && labels[i]) ++tp;
    if (flagged && !labels[i]) ++fp;
    if (!flagged && labels[i]) ++fn;
  }
  BinaryMetrics m;
  m.precision = tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  m.recall = tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  m.f1 = m.precision + m.recall == 0.0
             ? 0.0
             : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

}  // namespace ucad::eval
