#ifndef UCAD_EVAL_RUNNER_H_
#define UCAD_EVAL_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/session_detector.h"
#include "eval/dataset.h"
#include "eval/experiment_config.h"
#include "eval/metrics.h"
#include "transdas/config.h"
#include "transdas/trainer.h"

namespace ucad::eval {

/// Outcome of training + evaluating one Trans-DAS (or variant) model.
struct TransDasRun {
  EvalResult metrics;
  std::vector<transdas::EpochStats> epochs;

  /// Mean training seconds per epoch (Tables 4/5).
  double MeanEpochSeconds() const;
};

/// Trains a Trans-DAS with the given configs on `train` (pass
/// ds.train or a hybrid set) and evaluates it on ds.TestSets().
/// model_config.vocab_size is overwritten from the dataset vocabulary.
TransDasRun RunTransDas(const ScenarioDataset& ds,
                        transdas::TransDasConfig model_config,
                        const transdas::TrainOptions& train_options,
                        const transdas::DetectorOptions& detector_options,
                        const std::vector<std::vector<int>>& train,
                        uint64_t model_seed = 1234);

/// The five baseline names in the paper's Table 2 row order.
std::vector<std::string> BaselineNames();

/// Instantiates a baseline by name ("OneClassSVM", "iForest",
/// "Mazzawi et al.", "DeepLog", "USAD", "LogCluster") configured from
/// `config` for the dataset's vocabulary.
std::unique_ptr<baselines::SessionDetector> MakeBaseline(
    const std::string& name, const ScenarioConfig& config,
    const ScenarioDataset& ds);

/// Trains a baseline on `train` and evaluates it on ds.TestSets().
EvalResult RunBaseline(baselines::SessionDetector* detector,
                       const ScenarioDataset& ds,
                       const std::vector<std::vector<int>>& train);

/// One method's outcome from a RunAllMethods fan-out.
struct MethodResult {
  std::string name;    ///< Table 2 row label ("OneClassSVM", "Ours (UCAD)")
  EvalResult metrics;
  double seconds = 0.0;  ///< train + detect wall-clock for this method
};

/// Trains and evaluates every Table 2 method — the five baselines plus
/// Trans-DAS — on `ds.train`, fanning the methods out across the global
/// thread pool (util::SetNumThreads / UCAD_THREADS). Each method owns its
/// detector and model, so lanes share only the read-only dataset; results
/// come back in the fixed Table 2 row order regardless of which lane
/// finishes first. With one thread this is exactly the serial method loop.
std::vector<MethodResult> RunAllMethods(const ScenarioConfig& config,
                                        const ScenarioDataset& ds);

}  // namespace ucad::eval

#endif  // UCAD_EVAL_RUNNER_H_
