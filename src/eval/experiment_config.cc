#include "eval/experiment_config.h"

#include <cstdlib>
#include <cstring>

namespace ucad::eval {

Scale ScaleFromEnv() {
  const char* value = std::getenv("UCAD_SCALE");
  if (value == nullptr) return Scale::kRepro;
  if (std::strcmp(value, "smoke") == 0) return Scale::kSmoke;
  if (std::strcmp(value, "paper") == 0) return Scale::kPaper;
  return Scale::kRepro;
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kRepro:
      return "repro";
    case Scale::kPaper:
      return "paper";
  }
  return "?";
}

ScenarioConfig ScenarioIConfig(Scale scale) {
  ScenarioConfig c;
  c.name = "Scenario-I (commenting)";

  workload::CommentingOptions wl;
  c.dataset.seed = 42;
  // Paper model defaults for Scenario-I: L=30, p=5, g=0.5, h=10, m=2, B=6.
  c.model.window = 30;
  c.model.hidden_dim = 10;
  c.model.num_heads = 2;
  c.model.num_blocks = 6;
  c.detection.top_p = 5;
  c.training.margin = 0.5f;
  c.training.learning_rate = 3e-3f;
  c.training.window_stride = 8;

  switch (scale) {
    case Scale::kSmoke:
      wl.min_tasks = 2;
      wl.max_tasks = 4;
      c.dataset.normal_sessions = 60;
      c.model.window = 12;
      c.model.hidden_dim = 8;
      c.model.num_blocks = 2;
      c.training.epochs = 2;
      c.deeplog.epochs = 1;
      c.usad.epochs = 2;
      break;
    case Scale::kRepro:
      c.dataset.normal_sessions = 440;  // ~354 train / ~88 test, as Table 1
      c.training.epochs = 120;
      c.training.negative_samples = 4;
      // The paper selects p per scenario by validation (Fig. 7 peaks at
      // its dataset's operating point); the repro workload's peak sits one
      // notch higher.
      c.detection.top_p = 6;
      c.deeplog.epochs = 2;
      c.deeplog.stride = 2;
      break;
    case Scale::kPaper:
      c.dataset.normal_sessions = 443;
      c.training.epochs = 200;
      c.training.negative_samples = 4;
      c.deeplog.epochs = 4;
      break;
  }
  c.spec = workload::MakeCommentingScenario(wl);
  return c;
}

ScenarioConfig ScenarioIIConfig(Scale scale) {
  ScenarioConfig c;
  c.name = "Scenario-II (location)";

  workload::LocationOptions wl;
  c.dataset.seed = 43;
  // Paper model defaults for Scenario-II: L=100, p=10, g=0.5, h=64, m=8,
  // B=6 over 3722 training sessions; the repro scale shrinks the session
  // count, vocabulary density, window, and depth proportionally (see
  // EXPERIMENTS.md) while keeping every comparison relative.
  c.detection.top_p = 10;
  c.training.margin = 0.5f;
  c.training.learning_rate = 3e-3f;

  switch (scale) {
    case Scale::kSmoke:
      wl.select_variants = 3;
      wl.insert_variants = 3;
      wl.picn_insert_variants = 2;
      wl.update_variants = 3;
      wl.min_tasks = 2;
      wl.max_tasks = 4;
      c.dataset.normal_sessions = 60;
      c.model.window = 16;
      c.model.hidden_dim = 16;
      c.model.num_heads = 2;
      c.model.num_blocks = 2;
      c.training.epochs = 2;
      c.training.window_stride = 16;
      c.deeplog.epochs = 1;
      c.deeplog.stride = 4;
      c.usad.epochs = 2;
      break;
    case Scale::kRepro:
      wl.select_variants = 8;
      wl.insert_variants = 10;
      wl.picn_insert_variants = 4;
      wl.update_variants = 12;
      wl.min_tasks = 4;
      wl.max_tasks = 7;
      c.dataset.normal_sessions = 500;  // ~400 train / ~100 test
      c.model.window = 50;
      c.model.hidden_dim = 32;
      c.model.num_heads = 4;
      c.model.num_blocks = 3;
      c.training.epochs = 60;
      c.training.negative_samples = 8;
      c.training.window_stride = 25;
      c.deeplog.epochs = 2;
      c.deeplog.stride = 4;
      c.usad.stride = 5;
      break;
    case Scale::kPaper:
      c.dataset.normal_sessions = 4650;  // ~3722 train, as Table 1
      c.model.window = 100;
      c.model.hidden_dim = 64;
      c.model.num_heads = 8;
      c.model.num_blocks = 6;
      c.training.epochs = 30;
      c.training.negative_samples = 4;
      c.training.window_stride = 50;
      c.deeplog.epochs = 3;
      c.deeplog.stride = 4;
      break;
  }
  c.spec = workload::MakeLocationScenario(wl);
  return c;
}

}  // namespace ucad::eval
