#ifndef UCAD_BASELINES_SESSION_DETECTOR_H_
#define UCAD_BASELINES_SESSION_DETECTOR_H_

#include <string>
#include <vector>

namespace ucad::baselines {

/// Common interface of the unsupervised baseline detectors (§6.1): train on
/// normal key sessions only, then classify test sessions. All baselines
/// operate at session granularity (the paper's comparison granularity).
class SessionDetector {
 public:
  virtual ~SessionDetector() = default;

  /// Fits the detector to normal sessions (keys in [0, vocab)).
  virtual void Train(const std::vector<std::vector<int>>& sessions) = 0;

  /// True when the session is classified abnormal.
  virtual bool IsAbnormal(const std::vector<int>& session) const = 0;

  /// Display name for result tables.
  virtual std::string name() const = 0;
};

/// Session -> per-key count vector of dimension `vocab` (the featurization
/// the paper applies for the non-sequence baselines: "profile each session
/// as a vector of n dimensions and count the appearances of each
/// operation").
std::vector<double> CountVector(const std::vector<int>& session, int vocab);

/// L2-normalizes a vector in place (no-op on the zero vector).
void L2Normalize(std::vector<double>* v);

/// Euclidean distance between equal-length vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace ucad::baselines

#endif  // UCAD_BASELINES_SESSION_DETECTOR_H_
