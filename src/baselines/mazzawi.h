#ifndef UCAD_BASELINES_MAZZAWI_H_
#define UCAD_BASELINES_MAZZAWI_H_

#include <vector>

#include "baselines/session_detector.h"

namespace ucad::baselines {

/// Statistical behavioral-patterning detector in the spirit of Mazzawi et
/// al., ICDE 2017 [52]: each session is profiled by a small vector of
/// behavioral statistics (volume, command mix, key rarity, repetition);
/// per-feature Gaussians are fit on normal sessions and a session is
/// flagged when any feature deviates beyond a z-score threshold calibrated
/// on the training data. Like the original, it captures *point* anomalies
/// in behavior statistics but carries no sequence semantics.
class MazzawiDetector : public SessionDetector {
 public:
  struct Options {
    /// Training-score quantile defining the threshold.
    double quantile = 0.995;
    /// Multiplicative slack above the quantile.
    double slack = 1.15;
  };

  MazzawiDetector(int vocab,
                  const std::vector<int>& key_commands,  // 0=sel,1=ins,2=upd,3=del,4=other per key
                  const Options& options);

  void Train(const std::vector<std::vector<int>>& sessions) override;
  bool IsAbnormal(const std::vector<int>& session) const override;
  std::string name() const override { return "Mazzawi et al."; }

  /// Max per-feature |z| score of a session.
  double Score(const std::vector<int>& session) const;

 private:
  std::vector<double> Features(const std::vector<int>& session) const;

  int vocab_;
  std::vector<int> key_commands_;
  Options options_;
  std::vector<double> key_log_freq_;  // -log p(key) from training
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
  double threshold_ = 0.0;
};

}  // namespace ucad::baselines

#endif  // UCAD_BASELINES_MAZZAWI_H_
