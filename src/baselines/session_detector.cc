#include "baselines/session_detector.h"

#include <cmath>

#include "util/logging.h"

namespace ucad::baselines {

std::vector<double> CountVector(const std::vector<int>& session, int vocab) {
  std::vector<double> counts(vocab, 0.0);
  for (int key : session) {
    if (key >= 0 && key < vocab) counts[key] += 1.0;
  }
  return counts;
}

void L2Normalize(std::vector<double>* v) {
  double norm = 0.0;
  for (double x : *v) norm += x * x;
  norm = std::sqrt(norm);
  if (norm <= 0.0) return;
  for (double& x : *v) x /= norm;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  UCAD_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace ucad::baselines
