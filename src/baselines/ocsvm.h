#ifndef UCAD_BASELINES_OCSVM_H_
#define UCAD_BASELINES_OCSVM_H_

#include <vector>

#include "baselines/session_detector.h"

namespace ucad::baselines {

/// One-class SVM (Schölkopf et al. 2001 [67]) with an RBF kernel over
/// L2-normalized session count vectors. The dual problem
///   min ½ αᵀQα  s.t. 0 ≤ αᵢ ≤ 1/(νl), Σαᵢ = 1
/// is solved by SMO-style pairwise coordinate descent; the decision
/// function is f(x) = Σᵢ αᵢ k(xᵢ, x) − ρ, with x abnormal when f(x) < 0.
class OneClassSvm : public SessionDetector {
 public:
  struct Options {
    /// Upper bound on the outlier fraction / lower bound on the support
    /// vector fraction.
    double nu = 0.05;
    /// RBF kernel width k(x,y) = exp(-gamma ||x-y||²).
    double gamma = 2.0;
    /// SMO sweeps over all pairs.
    int max_sweeps = 60;
    double tolerance = 1e-6;
  };

  OneClassSvm(int vocab, const Options& options);

  void Train(const std::vector<std::vector<int>>& sessions) override;
  bool IsAbnormal(const std::vector<int>& session) const override;
  std::string name() const override { return "OneClassSVM"; }

  /// Signed decision value; negative = abnormal.
  double Decision(const std::vector<int>& session) const;

 private:
  double Kernel(const std::vector<double>& a,
                const std::vector<double>& b) const;

  int vocab_;
  Options options_;
  std::vector<std::vector<double>> support_;  // training features
  std::vector<double> alpha_;
  double rho_ = 0.0;
};

}  // namespace ucad::baselines

#endif  // UCAD_BASELINES_OCSVM_H_
