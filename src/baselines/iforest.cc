#include "baselines/iforest.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ucad::baselines {

namespace {

/// Average path length of an unsuccessful BST search over n points —
/// the normalizer c(n) of the iForest paper.
double AveragePathLength(int n) {
  if (n <= 1) return 0.0;
  const double h = std::log(n - 1.0) + 0.5772156649015329;  // harmonic approx
  return 2.0 * h - 2.0 * (n - 1.0) / n;
}

}  // namespace

struct IsolationForest::Node {
  int feature = -1;      // -1 marks a leaf
  double split = 0.0;
  int size = 0;          // points reaching a leaf
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;
};

namespace {

std::unique_ptr<IsolationForest::Node> BuildTreeImpl(
    const std::vector<const std::vector<double>*>& points, int depth,
    int max_depth, util::Rng* rng);

}  // namespace

IsolationForest::IsolationForest(int vocab, const Options& options)
    : vocab_(vocab), options_(options) {
  UCAD_CHECK_GT(vocab_, 0);
  UCAD_CHECK_GT(options_.num_trees, 0);
}

IsolationForest::~IsolationForest() = default;

namespace {

std::unique_ptr<IsolationForest::Node> BuildTreeImpl(
    const std::vector<const std::vector<double>*>& points, int depth,
    int max_depth, util::Rng* rng) {
  auto node = std::make_unique<IsolationForest::Node>();
  node->size = static_cast<int>(points.size());
  if (points.size() <= 1 || depth >= max_depth) return node;
  const int dims = static_cast<int>(points[0]->size());
  // Pick a feature with spread; give up after a few attempts (constant
  // region).
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int feature = static_cast<int>(rng->UniformU64(dims));
    double lo = (*points[0])[feature], hi = lo;
    for (const auto* p : points) {
      lo = std::min(lo, (*p)[feature]);
      hi = std::max(hi, (*p)[feature]);
    }
    if (hi <= lo) continue;
    const double split = rng->UniformDouble(lo, hi);
    std::vector<const std::vector<double>*> left, right;
    for (const auto* p : points) {
      ((*p)[feature] < split ? left : right).push_back(p);
    }
    if (left.empty() || right.empty()) continue;
    node->feature = feature;
    node->split = split;
    node->left = BuildTreeImpl(left, depth + 1, max_depth, rng);
    node->right = BuildTreeImpl(right, depth + 1, max_depth, rng);
    return node;
  }
  return node;  // leaf: no separating split found
}

double PathLength(const IsolationForest::Node* node,
                  const std::vector<double>& x, int depth) {
  if (node->feature < 0) {
    return depth + AveragePathLength(node->size);
  }
  const IsolationForest::Node* child =
      x[node->feature] < node->split ? node->left.get() : node->right.get();
  return PathLength(child, x, depth + 1);
}

}  // namespace

void IsolationForest::Train(const std::vector<std::vector<int>>& sessions) {
  UCAD_CHECK(!sessions.empty());
  std::vector<std::vector<double>> features;
  features.reserve(sessions.size());
  for (const auto& s : sessions) features.push_back(CountVector(s, vocab_));

  util::Rng rng(options_.seed);
  const int psi =
      std::min<int>(options_.subsample, static_cast<int>(features.size()));
  const int max_depth =
      static_cast<int>(std::ceil(std::log2(std::max(2, psi))));
  expected_path_ = AveragePathLength(psi);

  trees_.clear();
  trees_.reserve(options_.num_trees);
  for (int t = 0; t < options_.num_trees; ++t) {
    const std::vector<size_t> sample =
        rng.SampleWithoutReplacement(features.size(), psi);
    std::vector<const std::vector<double>*> points;
    points.reserve(sample.size());
    for (size_t i : sample) points.push_back(&features[i]);
    trees_.push_back(BuildTreeImpl(points, 0, max_depth, &rng));
  }

  // Threshold at the contamination quantile of training scores.
  std::vector<double> scores;
  scores.reserve(features.size());
  for (const auto& fjs : features) scores.push_back(ScoreVector(fjs));
  std::sort(scores.begin(), scores.end());
  const size_t idx = static_cast<size_t>(
      (1.0 - options_.contamination) * (scores.size() - 1));
  threshold_ = scores[idx];
}

double IsolationForest::ScoreVector(const std::vector<double>& x) const {
  UCAD_CHECK(!trees_.empty()) << "Train() must be called first";
  double mean_path = 0.0;
  for (const auto& tree : trees_) mean_path += PathLength(tree.get(), x, 0);
  mean_path /= trees_.size();
  if (expected_path_ <= 0.0) return 0.5;
  return std::pow(2.0, -mean_path / expected_path_);
}

double IsolationForest::Score(const std::vector<int>& session) const {
  return ScoreVector(CountVector(session, vocab_));
}

bool IsolationForest::IsAbnormal(const std::vector<int>& session) const {
  return Score(session) > threshold_;
}

}  // namespace ucad::baselines
