#include "baselines/logcluster.h"

#include <algorithm>
#include <map>

#include "prep/dbscan.h"
#include "util/logging.h"

namespace ucad::baselines {

LogCluster::LogCluster(int vocab, const Options& options)
    : vocab_(vocab), options_(options) {
  UCAD_CHECK_GT(vocab_, 0);
}

void LogCluster::Train(const std::vector<std::vector<int>>& sessions) {
  UCAD_CHECK(!sessions.empty());
  std::vector<std::vector<double>> features;
  features.reserve(sessions.size());
  for (const auto& s : sessions) {
    std::vector<double> v = CountVector(s, vocab_);
    L2Normalize(&v);
    features.push_back(std::move(v));
  }

  prep::DbscanOptions dbscan_options;
  dbscan_options.eps = options_.dbscan_eps;
  dbscan_options.min_points = options_.dbscan_min_points;
  const prep::DbscanResult clustering = prep::Dbscan(
      features.size(),
      [&features](size_t i, size_t j) {
        return EuclideanDistance(features[i], features[j]);
      },
      dbscan_options);

  std::map<int, std::vector<size_t>> members;
  for (size_t i = 0; i < features.size(); ++i) {
    if (clustering.labels[i] != prep::DbscanResult::kNoise) {
      members[clustering.labels[i]].push_back(i);
    }
  }
  // Degenerate fallback: everything in one cluster.
  if (members.empty()) {
    members[0].reserve(features.size());
    for (size_t i = 0; i < features.size(); ++i) members[0].push_back(i);
  }

  centroids_.clear();
  radii_.clear();
  for (const auto& [label, idx] : members) {
    std::vector<double> centroid(vocab_, 0.0);
    for (size_t i : idx) {
      for (int d = 0; d < vocab_; ++d) centroid[d] += features[i][d];
    }
    for (double& c : centroid) c /= idx.size();
    double radius = 0.0;
    for (size_t i : idx) {
      radius = std::max(radius, EuclideanDistance(centroid, features[i]));
    }
    centroids_.push_back(std::move(centroid));
    radii_.push_back(std::max(radius, 1e-3) * options_.slack);
  }
}

double LogCluster::Score(const std::vector<int>& session) const {
  UCAD_CHECK(!centroids_.empty()) << "Train() must be called first";
  std::vector<double> v = CountVector(session, vocab_);
  L2Normalize(&v);
  double best = 1e30;
  for (size_t c = 0; c < centroids_.size(); ++c) {
    best = std::min(best, EuclideanDistance(centroids_[c], v) / radii_[c]);
  }
  return best;
}

bool LogCluster::IsAbnormal(const std::vector<int>& session) const {
  return Score(session) > 1.0;
}

}  // namespace ucad::baselines
