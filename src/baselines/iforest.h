#ifndef UCAD_BASELINES_IFOREST_H_
#define UCAD_BASELINES_IFOREST_H_

#include <memory>
#include <vector>

#include "baselines/session_detector.h"
#include "util/rng.h"

namespace ucad::baselines {

/// Isolation Forest (Liu, Ting & Zhou 2008 [48]) over session count
/// vectors. Anomalies are isolated by shorter average path lengths in
/// randomly built partition trees.
class IsolationForest : public SessionDetector {
 public:
  struct Options {
    int num_trees = 100;
    /// Subsample size per tree (clamped to the training-set size).
    int subsample = 256;
    /// Training-score quantile used as the decision threshold (plays the
    /// role of the sklearn `contamination` parameter).
    double contamination = 0.1;
    uint64_t seed = 11;
  };

  IsolationForest(int vocab, const Options& options);
  ~IsolationForest() override;

  void Train(const std::vector<std::vector<int>>& sessions) override;
  bool IsAbnormal(const std::vector<int>& session) const override;
  std::string name() const override { return "iForest"; }

  /// Raw anomaly score in (0, 1); larger = more anomalous.
  double Score(const std::vector<int>& session) const;
  double threshold() const { return threshold_; }

  /// Tree node (public so the builder helpers can name it).
  struct Node;

 private:
  double ScoreVector(const std::vector<double>& features) const;

  int vocab_;
  Options options_;
  std::vector<std::unique_ptr<Node>> trees_;
  double expected_path_ = 1.0;
  double threshold_ = 0.5;
};

}  // namespace ucad::baselines

#endif  // UCAD_BASELINES_IFOREST_H_
