#include "baselines/mazzawi.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace ucad::baselines {

MazzawiDetector::MazzawiDetector(int vocab,
                                 const std::vector<int>& key_commands,
                                 const Options& options)
    : vocab_(vocab), key_commands_(key_commands), options_(options) {
  UCAD_CHECK_GT(vocab_, 0);
  UCAD_CHECK_EQ(static_cast<int>(key_commands_.size()), vocab_);
}

std::vector<double> MazzawiDetector::Features(
    const std::vector<int>& session) const {
  const double n = std::max<size_t>(1, session.size());
  double cmd[5] = {0, 0, 0, 0, 0};
  double rarity = 0.0;
  int max_run = 0, run = 0, prev = -1;
  std::unordered_set<int> distinct;
  for (int key : session) {
    const int c = (key >= 0 && key < vocab_) ? key_commands_[key] : 4;
    cmd[std::clamp(c, 0, 4)] += 1.0;
    rarity += (key >= 0 && key < vocab_) ? key_log_freq_[key]
                                         : key_log_freq_.empty() ? 0.0
                                                                 : 12.0;
    if (key == prev) {
      ++run;
    } else {
      run = 1;
      prev = key;
    }
    max_run = std::max(max_run, run);
    distinct.insert(key);
  }
  return {
      std::log(n),                                // volume
      cmd[0] / n, cmd[1] / n, cmd[2] / n, cmd[3] / n,  // command mix
      rarity / n,                                 // mean key rarity
      static_cast<double>(max_run),               // longest repetition
      static_cast<double>(distinct.size()) / n,   // distinct ratio
  };
}

void MazzawiDetector::Train(const std::vector<std::vector<int>>& sessions) {
  UCAD_CHECK(!sessions.empty());
  // Global key frequencies -> rarity.
  std::vector<double> counts(vocab_, 0.0);
  double total = 0.0;
  for (const auto& s : sessions) {
    for (int key : s) {
      if (key >= 0 && key < vocab_) {
        counts[key] += 1.0;
        total += 1.0;
      }
    }
  }
  key_log_freq_.assign(vocab_, 0.0);
  for (int k = 0; k < vocab_; ++k) {
    const double p = (counts[k] + 0.5) / (total + 0.5 * vocab_);
    key_log_freq_[k] = -std::log(p);
  }

  // Per-feature Gaussians.
  std::vector<std::vector<double>> feats;
  feats.reserve(sessions.size());
  for (const auto& s : sessions) feats.push_back(Features(s));
  const size_t dims = feats[0].size();
  feature_mean_.assign(dims, 0.0);
  feature_std_.assign(dims, 0.0);
  for (const auto& fv : feats) {
    for (size_t d = 0; d < dims; ++d) feature_mean_[d] += fv[d];
  }
  for (size_t d = 0; d < dims; ++d) feature_mean_[d] /= feats.size();
  for (const auto& fv : feats) {
    for (size_t d = 0; d < dims; ++d) {
      const double diff = fv[d] - feature_mean_[d];
      feature_std_[d] += diff * diff;
    }
  }
  for (size_t d = 0; d < dims; ++d) {
    feature_std_[d] = std::sqrt(feature_std_[d] / feats.size());
    if (feature_std_[d] < 1e-6) feature_std_[d] = 1e-6;
  }

  // Threshold from the training-score distribution.
  std::vector<double> scores;
  scores.reserve(sessions.size());
  for (const auto& s : sessions) scores.push_back(Score(s));
  std::sort(scores.begin(), scores.end());
  const size_t idx = static_cast<size_t>(
      options_.quantile * (scores.size() - 1));
  threshold_ = scores[idx] * options_.slack;
}

double MazzawiDetector::Score(const std::vector<int>& session) const {
  UCAD_CHECK(!feature_mean_.empty()) << "Train() must be called first";
  const std::vector<double> fv = Features(session);
  double worst = 0.0;
  for (size_t d = 0; d < fv.size(); ++d) {
    worst = std::max(worst,
                     std::abs(fv[d] - feature_mean_[d]) / feature_std_[d]);
  }
  return worst;
}

bool MazzawiDetector::IsAbnormal(const std::vector<int>& session) const {
  return Score(session) > threshold_;
}

}  // namespace ucad::baselines
