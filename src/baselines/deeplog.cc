#include "baselines/deeplog.h"

#include <algorithm>

#include "nn/tape.h"
#include "util/logging.h"

namespace ucad::baselines {

DeepLog::DeepLog(int vocab, const Options& options)
    : vocab_(vocab), options_(options), init_rng_(options.seed) {
  UCAD_CHECK_GT(vocab_, 1);
  embedding_ = std::make_unique<nn::Embedding>(vocab_, options_.embed_dim,
                                               &init_rng_);
  lstm_ = std::make_unique<nn::LstmCell>(options_.embed_dim,
                                         options_.hidden_dim, &init_rng_);
  output_ =
      std::make_unique<nn::Linear>(options_.hidden_dim, vocab_, &init_rng_);
}

nn::VarId DeepLog::ForwardLogits(nn::Tape* tape,
                                 const std::vector<int>& window) {
  nn::VarId embeds = embedding_->Forward(tape, window);
  nn::LstmCell::State state = lstm_->InitialState(tape);
  for (size_t t = 0; t < window.size(); ++t) {
    nn::VarId x = tape->Row(embeds, static_cast<int>(t));
    state = lstm_->Step(tape, x, state);
  }
  return output_->Forward(tape, state.h);  // [1 x vocab]
}

void DeepLog::Train(const std::vector<std::vector<int>>& sessions) {
  std::vector<nn::Parameter*> params = embedding_->Params();
  for (nn::Parameter* p : lstm_->Params()) params.push_back(p);
  for (nn::Parameter* p : output_->Params()) params.push_back(p);
  nn::Adam optimizer(params, options_.learning_rate);

  // (context window, next key) pairs.
  struct Sample {
    std::vector<int> window;
    int target;
  };
  std::vector<Sample> samples;
  for (const auto& session : sessions) {
    for (size_t t = 1; t < session.size();
         t += static_cast<size_t>(options_.stride)) {
      Sample s;
      s.window.assign(options_.window, 0);
      const size_t take = std::min<size_t>(options_.window, t);
      for (size_t i = 0; i < take; ++i) {
        s.window[options_.window - take + i] = session[t - take + i];
      }
      s.target = session[t];
      samples.push_back(std::move(s));
    }
  }
  UCAD_CHECK(!samples.empty());

  util::Rng rng(options_.seed + 1);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&samples);
    for (const Sample& s : samples) {
      nn::Tape tape;
      nn::VarId logits = ForwardLogits(&tape, s.window);
      nn::VarId loss = tape.SoftmaxCrossEntropy(logits, {s.target});
      tape.Backward(loss);
      optimizer.ClipGradNorm(5.0f);
      optimizer.Step();
    }
  }
}

namespace {

/// Out-of-range keys map to k0 (padding) so corrupt inputs cannot reach
/// the embedding gather.
int Sanitize(int key, int vocab) { return key >= 0 && key < vocab ? key : 0; }

}  // namespace

int DeepLog::RankNext(const std::vector<int>& context, int next_key) const {
  if (next_key < 0 || next_key >= vocab_) return vocab_ + 1;
  std::vector<int> window(options_.window, 0);
  const size_t take =
      std::min<size_t>(options_.window, context.size());
  for (size_t i = 0; i < take; ++i) {
    window[options_.window - take + i] =
        Sanitize(context[context.size() - take + i], vocab_);
  }
  nn::Tape tape;
  // const_cast: ForwardLogits only reads parameters; the tape is local.
  nn::VarId logits =
      const_cast<DeepLog*>(this)->ForwardLogits(&tape, window);
  const nn::Tensor& row = tape.value(logits);
  const float score = row.at(0, next_key);
  int rank = 1;
  for (int k = 1; k < vocab_; ++k) {
    if (k != next_key && row.at(0, k) > score) ++rank;
  }
  return rank;
}

bool DeepLog::IsAbnormal(const std::vector<int>& session) const {
  if (session.size() < 2) return false;
  // Streaming evaluation: one LSTM pass over the session, scoring the next
  // key at every step (equivalent to the windowed formulation but without
  // re-running the recurrence per operation).
  DeepLog* self = const_cast<DeepLog*>(this);
  std::vector<int> sanitized;
  sanitized.reserve(session.size());
  for (int key : session) sanitized.push_back(Sanitize(key, vocab_));
  nn::Tape tape;
  nn::VarId embeds =
      self->embedding_->Forward(&tape, sanitized);
  nn::LstmCell::State state = self->lstm_->InitialState(&tape);
  for (size_t t = 0; t + 1 < session.size(); ++t) {
    nn::VarId x = tape.Row(embeds, static_cast<int>(t));
    state = self->lstm_->Step(&tape, x, state);
    nn::VarId logits = self->output_->Forward(&tape, state.h);
    const nn::Tensor& row = tape.value(logits);
    const int next = session[t + 1];
    if (next <= 0 || next >= vocab_) return true;
    const float score = row.at(0, next);
    int rank = 1;
    for (int k = 1; k < vocab_ && rank <= options_.top_g; ++k) {
      if (k != next && row.at(0, k) > score) ++rank;
    }
    if (rank > options_.top_g) return true;
  }
  return false;
}

}  // namespace ucad::baselines
