#ifndef UCAD_BASELINES_DEEPLOG_H_
#define UCAD_BASELINES_DEEPLOG_H_

#include <memory>
#include <vector>

#include "baselines/session_detector.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace ucad::baselines {

/// DeepLog (Du et al., CCS 2017 [21]): an LSTM language model over key
/// sequences. For each position it predicts a distribution over the next
/// key from the preceding window; an operation whose observed key is not
/// among the top-g candidates is an anomaly, and any anomalous operation
/// flags the session. Heavy reliance on operation *order* is exactly the
/// property the paper contrasts against (high FPR under heterogeneous
/// access patterns).
class DeepLog : public SessionDetector {
 public:
  struct Options {
    int window = 10;
    int embed_dim = 24;
    int hidden_dim = 64;
    /// Observed key must rank within the top-g predictions to be normal.
    int top_g = 9;
    int epochs = 3;
    float learning_rate = 3e-3f;
    /// Stride between training windows.
    int stride = 1;
    uint64_t seed = 17;
  };

  DeepLog(int vocab, const Options& options);

  void Train(const std::vector<std::vector<int>>& sessions) override;
  bool IsAbnormal(const std::vector<int>& session) const override;
  std::string name() const override { return "DeepLog"; }

  /// Rank (1 = most likely) of `next_key` after `context`.
  int RankNext(const std::vector<int>& context, int next_key) const;

 private:
  /// Runs the LSTM over `window` keys; returns logits over the vocabulary.
  nn::VarId ForwardLogits(nn::Tape* tape, const std::vector<int>& window);

  int vocab_;
  Options options_;
  util::Rng init_rng_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::Linear> output_;
};

}  // namespace ucad::baselines

#endif  // UCAD_BASELINES_DEEPLOG_H_
