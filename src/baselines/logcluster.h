#ifndef UCAD_BASELINES_LOGCLUSTER_H_
#define UCAD_BASELINES_LOGCLUSTER_H_

#include <vector>

#include "baselines/session_detector.h"

namespace ucad::baselines {

/// LogCluster (Lin et al., ICSE 2016 [46]): clusters normal sessions and
/// flags a test session when it is far from every learned cluster
/// representative. Representatives are centroids of normalized count
/// vectors clustered with DBSCAN over cosine-like (Euclidean on the unit
/// sphere) distance; the decision radius per cluster is the maximum
/// training member distance plus slack.
class LogCluster : public SessionDetector {
 public:
  struct Options {
    double dbscan_eps = 0.35;
    int dbscan_min_points = 3;
    double slack = 1.2;
  };

  LogCluster(int vocab, const Options& options);

  void Train(const std::vector<std::vector<int>>& sessions) override;
  bool IsAbnormal(const std::vector<int>& session) const override;
  std::string name() const override { return "LogCluster"; }

  /// Distance to the nearest cluster representative, normalized by that
  /// cluster's radius (> 1 means abnormal).
  double Score(const std::vector<int>& session) const;

 private:
  int vocab_;
  Options options_;
  std::vector<std::vector<double>> centroids_;
  std::vector<double> radii_;
};

}  // namespace ucad::baselines

#endif  // UCAD_BASELINES_LOGCLUSTER_H_
