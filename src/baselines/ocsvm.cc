#include "baselines/ocsvm.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ucad::baselines {

OneClassSvm::OneClassSvm(int vocab, const Options& options)
    : vocab_(vocab), options_(options) {
  UCAD_CHECK_GT(vocab_, 0);
  UCAD_CHECK(options_.nu > 0.0 && options_.nu <= 1.0);
}

double OneClassSvm::Kernel(const std::vector<double>& a,
                           const std::vector<double>& b) const {
  const double d = EuclideanDistance(a, b);
  return std::exp(-options_.gamma * d * d);
}

void OneClassSvm::Train(const std::vector<std::vector<int>>& sessions) {
  UCAD_CHECK(!sessions.empty());
  const int l = static_cast<int>(sessions.size());
  support_.clear();
  support_.reserve(l);
  for (const auto& s : sessions) {
    std::vector<double> v = CountVector(s, vocab_);
    L2Normalize(&v);
    support_.push_back(std::move(v));
  }

  // Kernel matrix (l is a few hundred to a few thousand sessions).
  std::vector<std::vector<double>> K(l, std::vector<double>(l));
  for (int i = 0; i < l; ++i) {
    for (int j = i; j < l; ++j) {
      K[i][j] = K[j][i] = Kernel(support_[i], support_[j]);
    }
  }

  const double upper = 1.0 / (options_.nu * l);
  alpha_.assign(l, 1.0 / l);  // feasible start: Σα = 1, 0 ≤ α ≤ upper
  // Gradient of ½αᵀQα is g_i = Σ_j α_j K_ij.
  std::vector<double> grad(l, 0.0);
  for (int i = 0; i < l; ++i) {
    double g = 0.0;
    for (int j = 0; j < l; ++j) g += alpha_[j] * K[i][j];
    grad[i] = g;
  }

  for (int sweep = 0; sweep < options_.max_sweeps; ++sweep) {
    double max_step = 0.0;
    for (int i = 0; i < l; ++i) {
      // Pair i with the coordinate of most-violating gradient difference.
      int j = -1;
      double best = 0.0;
      for (int c = 0; c < l; ++c) {
        if (c == i) continue;
        const double diff = grad[i] - grad[c];
        // Moving mass from the higher-gradient to the lower-gradient
        // coordinate decreases the objective.
        if (std::abs(diff) > best) {
          best = std::abs(diff);
          j = c;
        }
      }
      if (j < 0) continue;
      const double denom = K[i][i] + K[j][j] - 2.0 * K[i][j];
      if (denom <= 1e-12) continue;
      // Unconstrained optimal transfer t: α_i -= t, α_j += t.
      double t = (grad[i] - grad[j]) / denom;
      // Box constraints.
      t = std::min(t, alpha_[i]);                 // α_i ≥ 0
      t = std::min(t, upper - alpha_[j]);         // α_j ≤ upper
      t = std::max(t, alpha_[i] - upper);         // α_i ≤ upper
      t = std::max(t, -alpha_[j]);                // α_j ≥ 0
      if (std::abs(t) < options_.tolerance) continue;
      alpha_[i] -= t;
      alpha_[j] += t;
      for (int c = 0; c < l; ++c) grad[c] += t * (K[j][c] - K[i][c]);
      max_step = std::max(max_step, std::abs(t));
    }
    if (max_step < options_.tolerance) break;
  }

  // ρ = decision value at an unbounded support vector (0 < α < upper);
  // fall back to the mean over support vectors.
  double rho_sum = 0.0;
  int rho_count = 0;
  for (int i = 0; i < l; ++i) {
    if (alpha_[i] > 1e-8 && alpha_[i] < upper - 1e-8) {
      rho_sum += grad[i];
      ++rho_count;
    }
  }
  if (rho_count == 0) {
    for (int i = 0; i < l; ++i) {
      if (alpha_[i] > 1e-8) {
        rho_sum += grad[i];
        ++rho_count;
      }
    }
  }
  rho_ = rho_count > 0 ? rho_sum / rho_count : 0.0;
}

double OneClassSvm::Decision(const std::vector<int>& session) const {
  UCAD_CHECK(!support_.empty()) << "Train() must be called first";
  std::vector<double> x = CountVector(session, vocab_);
  L2Normalize(&x);
  double f = 0.0;
  for (size_t i = 0; i < support_.size(); ++i) {
    if (alpha_[i] > 1e-10) f += alpha_[i] * Kernel(support_[i], x);
  }
  return f - rho_;
}

bool OneClassSvm::IsAbnormal(const std::vector<int>& session) const {
  return Decision(session) < 0.0;
}

}  // namespace ucad::baselines
