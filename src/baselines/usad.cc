#include "baselines/usad.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"
#include "nn/tape.h"
#include "util/logging.h"

namespace ucad::baselines {

namespace {

nn::Tensor RowTensor(const std::vector<double>& v) {
  nn::Tensor t(1, static_cast<int>(v.size()));
  for (size_t i = 0; i < v.size(); ++i) {
    t.at(0, static_cast<int>(i)) = static_cast<float>(v[i]);
  }
  return t;
}

}  // namespace

Usad::Usad(int vocab, const Options& options)
    : vocab_(vocab), options_(options), init_rng_(options.seed) {
  UCAD_CHECK_GT(vocab_, 0);
  encoder_ =
      std::make_unique<nn::Linear>(vocab_, options_.latent_dim, &init_rng_);
  decoder1_ =
      std::make_unique<nn::Linear>(options_.latent_dim, vocab_, &init_rng_);
  decoder2_ =
      std::make_unique<nn::Linear>(options_.latent_dim, vocab_, &init_rng_);
}

std::vector<std::vector<double>> Usad::WindowVectors(
    const std::vector<int>& session, int stride) const {
  std::vector<std::vector<double>> out;
  if (session.empty()) return out;
  const int w = options_.window;
  const int n = static_cast<int>(session.size());
  for (int start = 0; start == 0 || start + w <= n; start += stride) {
    const int end = std::min(n, start + w);
    std::vector<int> slice(session.begin() + start, session.begin() + end);
    std::vector<double> counts = CountVector(slice, vocab_);
    // Normalize by window length so short tails are comparable.
    for (double& c : counts) c /= std::max(1, end - start);
    out.push_back(std::move(counts));
    if (end == n) break;
  }
  return out;
}

void Usad::Train(const std::vector<std::vector<int>>& sessions) {
  std::vector<std::vector<double>> windows;
  for (const auto& s : sessions) {
    for (auto& w : WindowVectors(s, options_.stride)) {
      windows.push_back(std::move(w));
    }
  }
  UCAD_CHECK(!windows.empty());

  // AE1 path trains E + D1, AE2 path trains E + D2; both optimizers share
  // the encoder, mirroring the two-objective adversarial scheme.
  std::vector<nn::Parameter*> params1 = encoder_->Params();
  for (nn::Parameter* p : decoder1_->Params()) params1.push_back(p);
  std::vector<nn::Parameter*> params2 = encoder_->Params();
  for (nn::Parameter* p : decoder2_->Params()) params2.push_back(p);
  nn::Adam opt1(params1, options_.learning_rate);
  nn::Adam opt2(params2, options_.learning_rate);

  util::Rng rng(options_.seed + 1);
  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    rng.Shuffle(&windows);
    // The original schedule drives the adversarial weight to 1 - 1/t; we
    // cap it at 1/2 so D2 stays anchored to reconstructing real windows
    // (otherwise it degenerates to a constant-output error maximizer on
    // single-sample updates).
    const float inv_t = std::max(0.5f, 1.0f / static_cast<float>(epoch));
    for (const auto& w : windows) {
      const nn::Tensor input = RowTensor(w);
      // Phase 1: minimize L1 over {E, D1}.
      {
        nn::Tape tape;
        nn::VarId x = tape.Constant(input);
        nn::VarId z = tape.Tanh(encoder_->Forward(&tape, x));
        nn::VarId ae1 = tape.Sigmoid(decoder1_->Forward(&tape, z));
        nn::VarId z2 = tape.Tanh(encoder_->Forward(&tape, ae1));
        nn::VarId ae2ae1 = tape.Sigmoid(decoder2_->Forward(&tape, z2));
        nn::VarId d1 = tape.Sub(x, ae1);
        nn::VarId d2 = tape.Sub(x, ae2ae1);
        nn::VarId loss = tape.Add(
            tape.Scale(tape.MeanAll(tape.Mul(d1, d1)), inv_t),
            tape.Scale(tape.MeanAll(tape.Mul(d2, d2)), 1.0f - inv_t));
        tape.Backward(loss);
        // Discard the D2 gradients from this phase (the shared encoder's
        // gradients must survive for opt1).
        for (nn::Parameter* p : decoder2_->Params()) p->ZeroGrad();
        opt1.ClipGradNorm(5.0f);
        opt1.Step();
      }
      // Phase 2: minimize L2 over {E, D2} (maximize the adversarial term
      // against AE1's reconstruction).
      {
        nn::Tape tape;
        nn::VarId x = tape.Constant(input);
        nn::VarId z = tape.Tanh(encoder_->Forward(&tape, x));
        nn::VarId ae2 = tape.Sigmoid(decoder2_->Forward(&tape, z));
        nn::VarId ae1 = tape.Sigmoid(decoder1_->Forward(&tape, z));
        nn::VarId z2 = tape.Tanh(encoder_->Forward(&tape, ae1));
        nn::VarId ae2ae1 = tape.Sigmoid(decoder2_->Forward(&tape, z2));
        nn::VarId d2 = tape.Sub(x, ae2);
        nn::VarId dadv = tape.Sub(x, ae2ae1);
        nn::VarId loss = tape.Sub(
            tape.Scale(tape.MeanAll(tape.Mul(d2, d2)), inv_t),
            tape.Scale(tape.MeanAll(tape.Mul(dadv, dadv)), 1.0f - inv_t));
        tape.Backward(loss);
        // GAN-style stabilization: the adversarial phase updates D2 only.
        // Letting the shared encoder chase the negative term collapses it
        // to a constant representation (observed on wide vocabularies).
        for (nn::Parameter* p : decoder1_->Params()) p->ZeroGrad();
        for (nn::Parameter* p : encoder_->Params()) p->ZeroGrad();
        opt2.ClipGradNorm(5.0f);
        opt2.Step();
      }
    }
  }

  // Threshold on training window scores.
  std::vector<double> scores;
  for (const auto& w : windows) scores.push_back(WindowScore(w));
  std::sort(scores.begin(), scores.end());
  const size_t idx = static_cast<size_t>(
      options_.quantile * (scores.size() - 1));
  threshold_ = scores[idx] * options_.slack;
}

double Usad::WindowScore(const std::vector<double>& w) const {
  nn::Tape tape;
  Usad* self = const_cast<Usad*>(this);
  nn::VarId x = tape.Constant(RowTensor(w));
  nn::VarId z = tape.Tanh(self->encoder_->Forward(&tape, x));
  nn::VarId ae1 = tape.Sigmoid(self->decoder1_->Forward(&tape, z));
  nn::VarId z2 = tape.Tanh(self->encoder_->Forward(&tape, ae1));
  nn::VarId ae2ae1 = tape.Sigmoid(self->decoder2_->Forward(&tape, z2));
  nn::VarId d1 = tape.Sub(x, ae1);
  nn::VarId d2 = tape.Sub(x, ae2ae1);
  const double e1 = tape.value(tape.MeanAll(tape.Mul(d1, d1))).at(0, 0);
  const double e2 = tape.value(tape.MeanAll(tape.Mul(d2, d2))).at(0, 0);
  return options_.alpha * e1 + options_.beta * e2;
}

double Usad::Score(const std::vector<int>& session) const {
  double worst = 0.0;
  for (const auto& w : WindowVectors(session, options_.window)) {
    worst = std::max(worst, WindowScore(w));
  }
  return worst;
}

bool Usad::IsAbnormal(const std::vector<int>& session) const {
  return Score(session) > threshold_;
}

}  // namespace ucad::baselines
