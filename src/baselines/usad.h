#ifndef UCAD_BASELINES_USAD_H_
#define UCAD_BASELINES_USAD_H_

#include <memory>
#include <vector>

#include "baselines/session_detector.h"
#include "nn/module.h"
#include "util/rng.h"

namespace ucad::baselines {

/// USAD (Audibert et al., KDD 2020 [11]): two autoencoders AE1 = D1∘E and
/// AE2 = D2∘E sharing an encoder, trained adversarially —
///   L1 = (1/t)·||W - AE1(W)||² + (1 - 1/t)·||W - AE2(AE1(W))||²
///   L2 = (1/t)·||W - AE2(W)||² - (1 - 1/t)·||W - AE2(AE1(W))||²
/// over sliding-window feature vectors (decoder outputs are sigmoid-
/// bounded, as in the original, to keep the adversarial phase stable).
/// The anomaly score is
///   α·||W - AE1(W)||² + β·||W - AE2(AE1(W))||².
/// Windows here are key-count vectors over `window` consecutive operations;
/// a session's score is its worst window, thresholded on a training
/// quantile.
class Usad : public SessionDetector {
 public:
  struct Options {
    int window = 10;
    int latent_dim = 16;
    int epochs = 12;
    float learning_rate = 2e-3f;
    double alpha = 0.5;
    double beta = 0.5;
    /// Threshold = this quantile of training window scores, times slack.
    double quantile = 0.99;
    double slack = 1.3;
    int stride = 5;
    uint64_t seed = 23;
  };

  Usad(int vocab, const Options& options);

  void Train(const std::vector<std::vector<int>>& sessions) override;
  bool IsAbnormal(const std::vector<int>& session) const override;
  std::string name() const override { return "USAD"; }

  /// Worst window score of a session.
  double Score(const std::vector<int>& session) const;
  double threshold() const { return threshold_; }

 private:
  std::vector<std::vector<double>> WindowVectors(
      const std::vector<int>& session, int stride) const;
  double WindowScore(const std::vector<double>& w) const;

  int vocab_;
  Options options_;
  util::Rng init_rng_;
  // Shared encoder, two decoders.
  std::unique_ptr<nn::Linear> encoder_;
  std::unique_ptr<nn::Linear> decoder1_;
  std::unique_ptr<nn::Linear> decoder2_;
  double threshold_ = 0.0;
};

}  // namespace ucad::baselines

#endif  // UCAD_BASELINES_USAD_H_
