#include "sql/session.h"

namespace ucad::sql {

bool IsAbnormalLabel(SessionLabel label) {
  switch (label) {
    case SessionLabel::kNormal:
    case SessionLabel::kNormalSwapped:
    case SessionLabel::kNormalReduced:
      return false;
    case SessionLabel::kPrivilegeAbuse:
    case SessionLabel::kCredentialTheft:
    case SessionLabel::kMisoperation:
      return true;
  }
  return false;
}

const char* SessionLabelName(SessionLabel label) {
  switch (label) {
    case SessionLabel::kNormal:
      return "V1";
    case SessionLabel::kNormalSwapped:
      return "V2";
    case SessionLabel::kNormalReduced:
      return "V3";
    case SessionLabel::kPrivilegeAbuse:
      return "A1";
    case SessionLabel::kCredentialTheft:
      return "A2";
    case SessionLabel::kMisoperation:
      return "A3";
  }
  return "?";
}

KeySession TokenizeSession(const RawSession& raw, Vocabulary* vocab,
                           bool assign_new) {
  KeySession out;
  out.attrs = raw.attrs;
  out.label = raw.label;
  out.keys.reserve(raw.operations.size());
  out.time_offsets_s.reserve(raw.operations.size());
  for (const OperationRecord& op : raw.operations) {
    const Statement stmt = ParseStatement(op.sql);
    const Key key = assign_new ? vocab->GetOrAssign(stmt)
                               : vocab->Lookup(stmt.template_text);
    out.keys.push_back(key);
    out.time_offsets_s.push_back(op.time_offset_s);
  }
  return out;
}

KeySession TokenizeSessionFrozen(const RawSession& raw,
                                 const Vocabulary& vocab) {
  KeySession out;
  out.attrs = raw.attrs;
  out.label = raw.label;
  out.keys.reserve(raw.operations.size());
  out.time_offsets_s.reserve(raw.operations.size());
  for (const OperationRecord& op : raw.operations) {
    const Statement stmt = ParseStatement(op.sql);
    out.keys.push_back(vocab.Lookup(stmt.template_text));
    out.time_offsets_s.push_back(op.time_offset_s);
  }
  return out;
}

std::vector<KeySession> TokenizeSessions(const std::vector<RawSession>& raw,
                                         Vocabulary* vocab, bool assign_new) {
  std::vector<KeySession> out;
  out.reserve(raw.size());
  for (const RawSession& session : raw) {
    out.push_back(TokenizeSession(session, vocab, assign_new));
  }
  return out;
}

}  // namespace ucad::sql
