#include "sql/vocabulary.h"

#include <unordered_set>

#include "util/logging.h"

namespace ucad::sql {

Vocabulary::Vocabulary() {
  // Key 0: reserved for padding / unknown.
  entries_.push_back(Entry{"<pad>", CommandType::kOther, ""});
}

Key Vocabulary::GetOrAssign(const Statement& statement) {
  auto it = index_.find(statement.template_text);
  if (it != index_.end()) return it->second;
  UCAD_CHECK(!frozen_) << "GetOrAssign on a frozen vocabulary; use Lookup";
  const Key key = static_cast<Key>(entries_.size());
  entries_.push_back(
      Entry{statement.template_text, statement.command, statement.table});
  index_.emplace(statement.template_text, key);
  return key;
}

Key Vocabulary::AppendEntry(std::string template_text, CommandType command,
                            std::string table) {
  UCAD_CHECK(!frozen_) << "AppendEntry on a frozen vocabulary";
  UCAD_CHECK(index_.find(template_text) == index_.end())
      << "duplicate template: " << template_text;
  const Key key = static_cast<Key>(entries_.size());
  index_.emplace(template_text, key);
  entries_.push_back(Entry{std::move(template_text), command,
                           std::move(table)});
  return key;
}

Key Vocabulary::Lookup(std::string_view template_text) const {
  auto it = index_.find(std::string(template_text));
  return it == index_.end() ? kPaddingKey : it->second;
}

const std::string& Vocabulary::TemplateOf(Key key) const {
  UCAD_CHECK(key >= 0 && key < size());
  return entries_[key].template_text;
}

CommandType Vocabulary::CommandOf(Key key) const {
  UCAD_CHECK(key >= 0 && key < size());
  return entries_[key].command;
}

const std::string& Vocabulary::TableOf(Key key) const {
  UCAD_CHECK(key >= 0 && key < size());
  return entries_[key].table;
}

int Vocabulary::CountCommand(CommandType type) const {
  int count = 0;
  for (size_t k = 1; k < entries_.size(); ++k) {
    if (entries_[k].command == type) ++count;
  }
  return count;
}

int Vocabulary::CountTables() const {
  std::unordered_set<std::string> tables;
  for (size_t k = 1; k < entries_.size(); ++k) {
    if (!entries_[k].table.empty()) tables.insert(entries_[k].table);
  }
  return static_cast<int>(tables.size());
}

}  // namespace ucad::sql
