#ifndef UCAD_SQL_SESSION_H_
#define UCAD_SQL_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/statement.h"
#include "sql/vocabulary.h"

namespace ucad::sql {

/// Ground-truth label classes used by the evaluation harness. Normal
/// variants (V2/V3) and anomaly families (A1-A3) follow paper §6.1.
enum class SessionLabel {
  kNormal,            // V1: held-out real (generated) sessions
  kNormalSwapped,     // V2: partially swapped
  kNormalReduced,     // V3: partially removed
  kPrivilegeAbuse,    // A1
  kCredentialTheft,   // A2
  kMisoperation,      // A3
};

/// True for the three abnormal families.
bool IsAbnormalLabel(SessionLabel label);

/// Short display name ("V1", "A2", ...).
const char* SessionLabelName(SessionLabel label);

/// Per-operation metadata emitted by the workload generators.
struct OperationRecord {
  /// Raw SQL text.
  std::string sql;
  /// Seconds since session start at which the operation executed.
  int64_t time_offset_s = 0;
  /// Operations sharing a non-negative swap group are interchangeable
  /// within the session (candidates for the V2 "partial swap" mutation).
  int swap_group = -1;
  /// True when removing the operation preserves the session goal
  /// (candidates for the V3 "partial remove" mutation).
  bool removable = false;
  /// Ground truth: true when the op was injected by an anomaly synthesizer.
  bool injected = false;
};

/// User/context attributes recorded with each session (used by the
/// attribute-based access-control policies, paper §5.1).
struct SessionAttributes {
  std::string user;
  std::string client_address;
  /// Seconds since epoch at session start.
  int64_t start_time_s = 0;
};

/// One user session as recorded in the (simulated) database audit log.
struct RawSession {
  SessionAttributes attrs;
  std::vector<OperationRecord> operations;
  SessionLabel label = SessionLabel::kNormal;
};

/// A tokenized session: the operation key sequence plus carried-over
/// attributes and label.
struct KeySession {
  SessionAttributes attrs;
  std::vector<Key> keys;
  /// Per-key time offsets (parallel to `keys`).
  std::vector<int64_t> time_offsets_s;
  SessionLabel label = SessionLabel::kNormal;
};

/// Tokenizes a raw session against `vocab`. When `assign_new` is true the
/// vocabulary grows (training stage); otherwise unknown templates map to k0
/// (detection stage).
KeySession TokenizeSession(const RawSession& raw, Vocabulary* vocab,
                           bool assign_new);

/// Tokenizes a batch of sessions.
std::vector<KeySession> TokenizeSessions(const std::vector<RawSession>& raw,
                                         Vocabulary* vocab, bool assign_new);

/// Tokenizes against a frozen (read-only) vocabulary: unknown templates map
/// to k0.
KeySession TokenizeSessionFrozen(const RawSession& raw,
                                 const Vocabulary& vocab);

}  // namespace ucad::sql

#endif  // UCAD_SQL_SESSION_H_
