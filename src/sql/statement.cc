#include "sql/statement.h"

#include <cctype>
#include <string>

#include "util/string_util.h"

namespace ucad::sql {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

const char* CommandTypeName(CommandType type) {
  switch (type) {
    case CommandType::kSelect:
      return "select";
    case CommandType::kInsert:
      return "insert";
    case CommandType::kUpdate:
      return "update";
    case CommandType::kDelete:
      return "delete";
    case CommandType::kOther:
      return "other";
  }
  return "?";
}

std::string AbstractLiterals(std::string_view raw_sql) {
  std::string out;
  out.reserve(raw_sql.size());
  int next_placeholder = 1;
  size_t i = 0;
  auto emit_placeholder = [&]() {
    out += '$';
    out += std::to_string(next_placeholder++);
  };
  while (i < raw_sql.size()) {
    const char c = raw_sql[i];
    if (c == '\'' || c == '"') {
      // Quoted string literal; supports '' escaping inside single quotes.
      const char quote = c;
      ++i;
      while (i < raw_sql.size()) {
        if (raw_sql[i] == quote) {
          if (i + 1 < raw_sql.size() && raw_sql[i + 1] == quote) {
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        ++i;
      }
      emit_placeholder();
      continue;
    }
    // A digit run is a literal unless it continues an identifier or an
    // existing "$n" placeholder (which keeps abstraction idempotent).
    if (IsDigit(c) &&
        (out.empty() || (!IsIdentChar(out.back()) && out.back() != '$'))) {
      // Numeric literal (integer or decimal) not part of an identifier.
      while (i < raw_sql.size() && (IsDigit(raw_sql[i]) || raw_sql[i] == '.')) {
        ++i;
      }
      emit_placeholder();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      // Collapse whitespace runs to one space.
      if (!out.empty() && out.back() != ' ') out += ' ';
      ++i;
      continue;
    }
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    ++i;
  }
  // Trim a trailing space.
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

CommandType ClassifyCommand(std::string_view sql) {
  const std::string lowered = util::ToLower(util::Trim(sql));
  if (util::StartsWith(lowered, "select")) return CommandType::kSelect;
  if (util::StartsWith(lowered, "insert")) return CommandType::kInsert;
  if (util::StartsWith(lowered, "update")) return CommandType::kUpdate;
  if (util::StartsWith(lowered, "delete")) return CommandType::kDelete;
  return CommandType::kOther;
}

std::string ExtractTable(std::string_view sql) {
  const std::string lowered = util::ToLower(sql);
  const std::vector<std::string> tokens = util::SplitWhitespace(lowered);
  auto clean = [](std::string token) {
    // Strip a trailing '(' chunk and punctuation, e.g. "t(a,b)" -> "t".
    size_t paren = token.find('(');
    if (paren != std::string::npos) token = token.substr(0, paren);
    while (!token.empty() &&
           !IsIdentChar(token.back())) {
      token.pop_back();
    }
    return token;
  };
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (t == "from" || t == "into") return clean(tokens[i + 1]);
    if (t == "update" && i == 0) return clean(tokens[i + 1]);
  }
  // "insert t values ..." without INTO.
  if (!tokens.empty() && tokens[0] == "insert" && tokens.size() > 1 &&
      tokens[1] != "into") {
    return clean(tokens[1]);
  }
  return "";
}

Statement ParseStatement(std::string_view raw_sql) {
  Statement stmt;
  stmt.raw = std::string(raw_sql);
  stmt.template_text = AbstractLiterals(raw_sql);
  stmt.command = ClassifyCommand(raw_sql);
  stmt.table = ExtractTable(raw_sql);
  return stmt;
}

}  // namespace ucad::sql
