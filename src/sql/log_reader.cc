#include "sql/log_reader.h"

#include <fstream>

#include "util/string_util.h"

namespace ucad::sql {

util::Result<std::vector<RawSession>> ReadSessionLog(std::istream& is) {
  std::vector<RawSession> sessions;
  RawSession current;
  bool open = false;
  int line_number = 0;

  auto flush = [&]() {
    if (open && !current.operations.empty()) {
      sessions.push_back(std::move(current));
    }
    current = RawSession();
    open = false;
  };

  std::string line;
  while (std::getline(is, line)) {
    ++line_number;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      flush();  // blank line / comment terminates the current session
      continue;
    }
    const std::vector<std::string> fields = util::Split(line, '\t');
    if (fields.size() < 4) {
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": expected user<TAB>address<TAB>time<TAB>sql");
    }
    char* end = nullptr;
    const long long timestamp = std::strtoll(fields[2].c_str(), &end, 10);
    if (end == fields[2].c_str() || *end != '\0') {
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": bad timestamp '" +
          fields[2] + "'");
    }
    // Re-join in case the SQL itself contains tabs.
    std::string sql = fields[3];
    for (size_t f = 4; f < fields.size(); ++f) sql += "\t" + fields[f];
    if (util::Trim(sql).empty()) {
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": empty SQL");
    }

    const bool same_session = open && current.attrs.user == fields[0] &&
                              current.attrs.client_address == fields[1];
    if (!same_session) flush();
    if (!open) {
      current.attrs.user = fields[0];
      current.attrs.client_address = fields[1];
      current.attrs.start_time_s = timestamp;
      open = true;
    }
    OperationRecord op;
    op.sql = std::move(sql);
    op.time_offset_s = timestamp - current.attrs.start_time_s;
    if (op.time_offset_s < 0) {
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": timestamps must be non-decreasing within a session");
    }
    current.operations.push_back(std::move(op));
  }
  flush();
  return sessions;
}

util::Result<std::vector<RawSession>> ReadSessionLogFile(
    const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    return util::Status::NotFound("cannot open " + path);
  }
  return ReadSessionLog(is);
}

void WriteSessionLog(const std::vector<RawSession>& sessions,
                     std::ostream& os) {
  for (const RawSession& session : sessions) {
    os << "# session\n";
    for (const OperationRecord& op : session.operations) {
      os << session.attrs.user << '\t' << session.attrs.client_address
         << '\t' << session.attrs.start_time_s + op.time_offset_s << '\t'
         << op.sql << '\n';
    }
  }
}

}  // namespace ucad::sql
