#ifndef UCAD_SQL_STATEMENT_H_
#define UCAD_SQL_STATEMENT_H_

#include <string>
#include <string_view>

namespace ucad::sql {

/// SQL command categories tracked by UCAD (paper Table 1 groups keys by
/// select / insert / update / delete).
enum class CommandType {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kOther,
};

/// Short lowercase name ("select", ...) for a command type.
const char* CommandTypeName(CommandType type);

/// A single parsed data-access operation.
struct Statement {
  /// The raw SQL text as recorded in the log.
  std::string raw;
  /// Literal-abstracted template, e.g.
  /// "update t_content set count=$1 where danmukey=$2" (paper §5.1).
  std::string template_text;
  /// Parsed command category.
  CommandType command = CommandType::kOther;
  /// Primary target table ("" when none could be extracted).
  std::string table;
};

/// Replaces every literal (quoted string or numeric constant) in `raw_sql`
/// with "$1", "$2", ... in order of appearance, lower-cases keywords and
/// identifiers, and collapses whitespace. Identifiers — including column
/// names — are preserved so that statements differing only in a column name
/// map to distinct templates (the paper's fine-grained tokenization
/// requirement, §5.1).
std::string AbstractLiterals(std::string_view raw_sql);

/// Full parse: abstraction + command classification + table extraction.
Statement ParseStatement(std::string_view raw_sql);

/// Classifies the leading keyword.
CommandType ClassifyCommand(std::string_view sql);

/// Extracts the primary table name (after FROM / INTO / UPDATE / DELETE
/// FROM); empty if not found.
std::string ExtractTable(std::string_view sql);

}  // namespace ucad::sql

#endif  // UCAD_SQL_STATEMENT_H_
