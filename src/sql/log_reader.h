#ifndef UCAD_SQL_LOG_READER_H_
#define UCAD_SQL_LOG_READER_H_

#include <istream>
#include <string>
#include <vector>

#include "sql/session.h"
#include "util/status.h"

namespace ucad::sql {

/// Plain-text audit-log format, one operation per line:
///
///   user <TAB> client_address <TAB> unix_time_seconds <TAB> SQL text
///
/// Consecutive lines with the same (user, address) belong to one session
/// until a blank line or a `# session` separator; lines starting with '#'
/// are comments. This is the interchange format consumed by the
/// `ucad_cli` tool.
///
/// Example:
///   # session
///   user1\t10.0.0.11\t1767250800\tSELECT * FROM t_video WHERE vid=7
///   user1\t10.0.0.11\t1767250807\tINSERT INTO danmu_display(...) ...
///
/// Returns InvalidArgument with a line number on malformed input.
util::Result<std::vector<RawSession>> ReadSessionLog(std::istream& is);

/// Reads the format from a file (NotFound if unreadable).
util::Result<std::vector<RawSession>> ReadSessionLogFile(
    const std::string& path);

/// Writes sessions in the same format (inverse of ReadSessionLog).
void WriteSessionLog(const std::vector<RawSession>& sessions,
                     std::ostream& os);

}  // namespace ucad::sql

#endif  // UCAD_SQL_LOG_READER_H_
