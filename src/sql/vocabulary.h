#ifndef UCAD_SQL_VOCABULARY_H_
#define UCAD_SQL_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sql/statement.h"

namespace ucad::sql {

/// Statement key: a small integer identifying one abstracted SQL template.
/// Key 0 (k0) is reserved for padding and templates first seen during
/// detection (paper §5.1).
using Key = int;

/// Reserved padding / unknown key.
inline constexpr Key kPaddingKey = 0;

/// Bidirectional map between abstracted statement templates and keys.
/// During offline training the vocabulary grows (GetOrAssign); before online
/// detection it is frozen (Freeze), after which unseen templates map to k0.
class Vocabulary {
 public:
  Vocabulary();

  /// Returns the key for `template_text`, assigning the next free key when
  /// unseen. Aborts if called after Freeze().
  Key GetOrAssign(const Statement& statement);

  /// Returns the key for `template_text`, or kPaddingKey when unseen.
  Key Lookup(std::string_view template_text) const;

  /// Appends an entry with explicit metadata (deserialization path); the
  /// assigned key is the previous size(). Aborts when frozen or when the
  /// template already exists.
  Key AppendEntry(std::string template_text, CommandType command,
                  std::string table);

  /// Stops vocabulary growth; subsequent unseen templates map to k0.
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Number of keys including k0.
  int size() const { return static_cast<int>(entries_.size()); }

  /// Template / metadata for an assigned key. Key must be in [0, size()).
  const std::string& TemplateOf(Key key) const;
  CommandType CommandOf(Key key) const;
  const std::string& TableOf(Key key) const;

  /// Number of keys (excluding k0) with the given command type
  /// (paper Table 1 "#Keys" breakdown).
  int CountCommand(CommandType type) const;

  /// Number of distinct tables over all assigned keys (paper Table 1).
  int CountTables() const;

 private:
  struct Entry {
    std::string template_text;
    CommandType command;
    std::string table;
  };

  bool frozen_ = false;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, Key> index_;
};

}  // namespace ucad::sql

#endif  // UCAD_SQL_VOCABULARY_H_
