#ifndef UCAD_NN_GRADCHECK_H_
#define UCAD_NN_GRADCHECK_H_

#include <functional>
#include <vector>

#include "nn/tape.h"

namespace ucad::nn {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  /// Largest absolute difference between analytic and numeric gradients.
  float max_abs_error = 0.0f;
  /// Largest relative error max(|a-n| / max(1e-3, |a|+|n|)).
  float max_rel_error = 0.0f;
  /// Number of parameter entries compared.
  size_t entries = 0;
};

/// Verifies analytic gradients of `loss_fn` w.r.t. `params` against central
/// finite differences. `loss_fn` must build a fresh graph each call, reading
/// parameter values at call time, and return the scalar loss value.
///
/// The analytic gradient is obtained by calling `loss_fn` once in "grad"
/// mode: the caller's closure should run Backward itself and leave gradients
/// accumulated in the parameters.
GradCheckResult CheckGradients(
    const std::function<double()>& loss_with_backward,
    const std::function<double()>& loss_only,
    const std::vector<Parameter*>& params, float epsilon = 1e-3f);

}  // namespace ucad::nn

#endif  // UCAD_NN_GRADCHECK_H_
