#include "nn/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace ucad::nn {

void Optimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

double Optimizer::GradNorm() const {
  double total = 0.0;
  for (const Parameter* p : params_) total += p->grad().SquaredNorm();
  return std::sqrt(total);
}

double Optimizer::ClipGradNorm(float max_norm) {
  if (max_norm <= 0.0f) return 0.0;
  const double norm = GradNorm();
  if (norm <= max_norm) return norm;
  const float scale = static_cast<float>(max_norm / (norm + 1e-12));
  for (Parameter* p : params_) p->grad().Scale(scale);
  return norm;
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) {
      velocity_.emplace_back(p->value().rows(), p->value().cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Tensor& w = p->value();
    Tensor& g = p->grad();
    if (weight_decay_ > 0.0f) g.AddScaled(w, weight_decay_);
    if (momentum_ > 0.0f) {
      Tensor& v = velocity_[i];
      v.Scale(momentum_);
      v.AddInPlace(g);
      w.AddScaled(v, -lr_);
    } else {
      w.AddScaled(g, -lr_);
    }
    g.SetZero();
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void Adam::Step() {
  ++step_count_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Tensor& w = p->value();
    Tensor& g = p->grad();
    if (weight_decay_ > 0.0f) g.AddScaled(w, weight_decay_);
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (size_t j = 0; j < w.size(); ++j) {
      const float gj = g.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.0f - beta1_) * gj;
      v.data()[j] = beta2_ * v.data()[j] + (1.0f - beta2_) * gj * gj;
      const float mhat = m.data()[j] / bc1;
      const float vhat = v.data()[j] / bc2;
      w.data()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    g.SetZero();
  }
}

}  // namespace ucad::nn
