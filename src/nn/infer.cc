#include "nn/infer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "nn/parallel_thresholds.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace ucad::nn {

namespace {

std::atomic<uint64_t> g_contexts_total{0};
std::atomic<int64_t> g_live_contexts{0};
std::atomic<uint64_t> g_forwards_total{0};
std::atomic<int64_t> g_ws_live_bytes{0};
std::atomic<int64_t> g_ws_peak_bytes{0};
std::atomic<uint64_t> g_slide_hits_total{0};
std::atomic<uint64_t> g_slide_misses_total{0};
std::atomic<uint64_t> g_batches_total{0};
std::atomic<uint64_t> g_batched_windows_total{0};
std::atomic<uint64_t> g_batched_slots_total{0};
std::atomic<uint64_t> g_tier_forwards_total[3] = {{0}, {0}, {0}};
std::atomic<int> g_last_forward_tier{0};

}  // namespace

namespace internal {

void RecordWorkspaceBytes(int64_t delta) {
  const int64_t live =
      g_ws_live_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  int64_t peak = g_ws_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_ws_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

int64_t WorkspaceLiveBytes() {
  return g_ws_live_bytes.load(std::memory_order_relaxed);
}

uint64_t InferForwardsTotal() {
  return g_forwards_total.load(std::memory_order_relaxed);
}

uint64_t SlideCacheHitsTotal() {
  return g_slide_hits_total.load(std::memory_order_relaxed);
}

uint64_t SlideCacheMissesTotal() {
  return g_slide_misses_total.load(std::memory_order_relaxed);
}

uint64_t BatchForwardsTotal() {
  return g_batches_total.load(std::memory_order_relaxed);
}

uint64_t BatchedWindowsTotal() {
  return g_batched_windows_total.load(std::memory_order_relaxed);
}

uint64_t BatchedSlotsTotal() {
  return g_batched_slots_total.load(std::memory_order_relaxed);
}

uint64_t TierForwardsTotal(KernelTier tier) {
  return g_tier_forwards_total[static_cast<int>(tier)].load(
      std::memory_order_relaxed);
}

}  // namespace internal

Workspace::~Workspace() {
  internal::RecordWorkspaceBytes(-static_cast<int64_t>(TotalBytes()));
}

Tensor* Workspace::Acquire(int rows, int cols) {
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Tensor>(rows, cols));
    internal::RecordWorkspaceBytes(
        static_cast<int64_t>(slots_.back()->size() * sizeof(float)));
  } else {
    Tensor& slot = *slots_[cursor_];
    if (slot.rows() != rows || slot.cols() != cols) {
      // Shape drift (different model/config through the same workspace):
      // replace the slot. Steady-state frames never take this branch.
      internal::RecordWorkspaceBytes(
          static_cast<int64_t>(rows) * cols * static_cast<int64_t>(sizeof(float)) -
          static_cast<int64_t>(slot.size() * sizeof(float)));
      slot = Tensor(rows, cols);
    }
  }
  return slots_[cursor_++].get();
}

size_t Workspace::TotalBytes() const {
  size_t bytes = 0;
  for (const auto& slot : slots_) bytes += slot->size() * sizeof(float);
  return bytes;
}

InferenceContext::InferenceContext() {
  g_contexts_total.fetch_add(1, std::memory_order_relaxed);
  g_live_contexts.fetch_add(1, std::memory_order_relaxed);
}

InferenceContext::~InferenceContext() {
  g_live_contexts.fetch_sub(1, std::memory_order_relaxed);
  // The two workspaces subtract their own bytes in ~Workspace; the derived
  // weight caches (float and quantized) and the slide cache are accounted
  // here.
  int64_t cached_bytes = 0;
  for (const auto& [key, entry] : weight_cache_) {
    cached_bytes += static_cast<int64_t>(entry.tensor.size() * sizeof(float));
  }
  for (const auto& [key, entry] : quant_cache_) {
    cached_bytes += static_cast<int64_t>(entry.weight.bytes());
  }
  cached_bytes += static_cast<int64_t>(
      (slide_cache_.embed.size() + slide_cache_.qkv0.size()) * sizeof(float));
  internal::RecordWorkspaceBytes(-cached_bytes);
}

void InferenceContext::EnsureSlideCacheShapes(int window, int hidden,
                                              int packed_cols) {
  WindowSlideCache& sc = slide_cache_;
  if (sc.embed.rows() == window && sc.embed.cols() == hidden &&
      sc.qkv0.rows() == window && sc.qkv0.cols() == packed_cols) {
    return;
  }
  const int64_t before = static_cast<int64_t>(
      (sc.embed.size() + sc.qkv0.size()) * sizeof(float));
  sc.embed = Tensor(window, hidden);
  sc.qkv0 = Tensor(window, packed_cols);
  sc.keys.assign(static_cast<size_t>(window), 0);
  sc.valid = false;
  internal::RecordWorkspaceBytes(
      static_cast<int64_t>((sc.embed.size() + sc.qkv0.size()) *
                           sizeof(float)) -
      before);
}

const Tensor& InferenceContext::CachedWeight(
    const void* key, uint64_t version, int rows, int cols,
    const std::function<void(Tensor*)>& fill) {
  CacheEntry& entry = weight_cache_[key];
  if (entry.version != version || entry.tensor.rows() != rows ||
      entry.tensor.cols() != cols) {
    const int64_t before =
        static_cast<int64_t>(entry.tensor.size() * sizeof(float));
    if (entry.tensor.rows() != rows || entry.tensor.cols() != cols) {
      entry.tensor = Tensor(rows, cols);
    }
    fill(&entry.tensor);
    entry.version = version;
    internal::RecordWorkspaceBytes(
        static_cast<int64_t>(entry.tensor.size() * sizeof(float)) - before);
  }
  return entry.tensor;
}

const Tensor& InferenceContext::TransposedCopy(const Tensor& src,
                                               uint64_t version) {
  return CachedWeight(&src, version, src.cols(), src.rows(),
                      [&src](Tensor* out) { TransposeKernel(src, out); });
}

const QuantizedWeight& InferenceContext::CachedQuantWeight(const void* key,
                                                           uint64_t version,
                                                           const Tensor& src,
                                                           bool transpose) {
  QuantCacheEntry& entry = quant_cache_[key];
  if (entry.version != version || entry.src_rows != src.rows() ||
      entry.src_cols != src.cols() || entry.weight.scales.empty()) {
    const int64_t before = static_cast<int64_t>(entry.weight.bytes());
    QuantizeWeightRows(src, transpose, &entry.weight);
    entry.version = version;
    entry.src_rows = src.rows();
    entry.src_cols = src.cols();
    internal::RecordWorkspaceBytes(
        static_cast<int64_t>(entry.weight.bytes()) - before);
  }
  return entry.weight;
}

void InferenceContext::NoteForward(KernelTier tier) {
  g_forwards_total.fetch_add(1, std::memory_order_relaxed);
  g_tier_forwards_total[static_cast<int>(tier)].fetch_add(
      1, std::memory_order_relaxed);
  g_last_forward_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void InferenceContext::NoteSlideCache(bool hit) {
  (hit ? g_slide_hits_total : g_slide_misses_total)
      .fetch_add(1, std::memory_order_relaxed);
}

void InferenceContext::NoteBatchForward(int windows, int capacity) {
  g_batches_total.fetch_add(1, std::memory_order_relaxed);
  g_batched_windows_total.fetch_add(static_cast<uint64_t>(windows),
                                    std::memory_order_relaxed);
  g_batched_slots_total.fetch_add(static_cast<uint64_t>(capacity),
                                  std::memory_order_relaxed);
}

void InferenceContext::RecordAttentionRow(size_t head, const float* row,
                                          int cols) {
  if (head == 0) captured_attention_.clear();
  UCAD_DCHECK(head == captured_attention_.size());
  captured_attention_.emplace_back(row, row + cols);
}

void GatherRowsKernel(const Tensor& table, const std::vector<int>& indices,
                      Tensor* out) {
  // >= rather than ==: the batched engine gathers B*L rows into a
  // capacity-sized buffer and leaves the unused slots untouched.
  UCAD_DCHECK(out->rows() >= static_cast<int>(indices.size()));
  UCAD_DCHECK(out->cols() == table.cols());
  const int cols = table.cols();
  RowParallelFor(0, static_cast<int>(indices.size()), cols,
                 [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int idx = indices[static_cast<size_t>(r)];
      UCAD_DCHECK(idx >= 0 && idx < table.rows());
      std::memcpy(out->row(static_cast<int>(r)), table.row(idx),
                  static_cast<size_t>(cols) * sizeof(float));
    }
  });
}

void TransposeKernel(const Tensor& a, Tensor* out) {
  UCAD_DCHECK(out->rows() == a.cols() && out->cols() == a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out->at(c, r) = a.at(r, c);
  }
}

void TransposeSliceKernel(const Tensor& a, int col0, int cols, Tensor* out) {
  UCAD_DCHECK(out->rows() == cols && out->cols() == a.rows());
  UCAD_DCHECK(col0 >= 0 && col0 + cols <= a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r) + col0;
    for (int c = 0; c < cols; ++c) out->at(c, r) = arow[c];
  }
}

namespace {

/// `R` output rows of out[i, :] = a[i, acol0:acol0+k] * b, interleaved in
/// one depth loop. Each output element still accumulates its products in
/// ascending depth order with the zero-operand skip — exactly
/// MatMulAccum's per-element recipe, so interleaving rows (independent
/// accumulation chains) cannot perturb bitwise parity. It just hides fma
/// latency and reuses each b row across R outputs.
template <int R, int K>
void MatMulRowBlock(const Tensor& a, int acol0, int k, const Tensor& b,
                    int64_t i0, Tensor* out) {
  const int n = b.cols();
  const int depth = K > 0 ? K : k;
  const float* arow[R];
  float* orow[R];
  for (int r = 0; r < R; ++r) {
    arow[r] = a.row(static_cast<int>(i0) + r) + acol0;
    orow[r] = out->row(static_cast<int>(i0) + r);
    for (int j = 0; j < n; ++j) orow[r][j] = 0.0f;
  }
  for (int p = 0; p < depth; ++p) {
    const float* __restrict__ brow = b.row(p);
    for (int r = 0; r < R; ++r) {
      const float av = arow[r][p];
      if (av == 0.0f) continue;
      float* __restrict__ o = orow[r];
      for (int j = 0; j < n; ++j) o[j] += av * brow[j];
    }
  }
}

/// Row-range driver for one compile-time depth: 4-row blocks + remainder.
template <int K>
void MatMulRows(const Tensor& a, int acol0, int k, const Tensor& b, int64_t r0,
                int64_t r1, Tensor* out) {
  int64_t i = r0;
  for (; i + 4 <= r1; i += 4) MatMulRowBlock<4, K>(a, acol0, k, b, i, out);
  switch (r1 - i) {
    case 3:
      MatMulRowBlock<3, K>(a, acol0, k, b, i, out);
      break;
    case 2:
      MatMulRowBlock<2, K>(a, acol0, k, b, i, out);
      break;
    case 1:
      MatMulRowBlock<1, K>(a, acol0, k, b, i, out);
      break;
    default:
      break;
  }
}

/// Same row-interleaving for the attention context: R rows of
/// concat[i, ccol0:ccol0+hd] = att[i, :] * qkv[:, vcol0:vcol0+hd]. HD is a
/// compile-time head width where possible (4 and 5 cover every shipped
/// config) — with a runtime trip count this 4-or-5-iteration loop drowns
/// in generic-vector-loop setup; fully unrolled it is a handful of fmas.
/// HD = 0 selects the runtime-width fallback.
template <int R, int HD>
void AttnRowBlock(const Tensor& att, const Tensor& qkv, int vcol0, int hd,
                  int ccol0, int64_t i0, Tensor* concat) {
  const int k = att.cols();
  const float* arow[R];
  for (int r = 0; r < R; ++r) {
    arow[r] = att.row(static_cast<int>(i0) + r);
  }
  if constexpr (HD > 0) {
    // Register-resident accumulators (see MatMulRowBlock): R x HD floats,
    // fully unrolled, stored to the concat block once at the end.
    float acc[R][HD];
    for (int r = 0; r < R; ++r) {
      for (int d = 0; d < HD; ++d) acc[r][d] = 0.0f;
    }
    for (int p = 0; p < k; ++p) {
      const float* vrow = qkv.row(p) + vcol0;
      for (int r = 0; r < R; ++r) {
        const float av = arow[r][p];
        if (av == 0.0f) continue;
        for (int d = 0; d < HD; ++d) acc[r][d] += av * vrow[d];
      }
    }
    for (int r = 0; r < R; ++r) {
      float* crow = concat->row(static_cast<int>(i0) + r) + ccol0;
      for (int d = 0; d < HD; ++d) crow[d] = acc[r][d];
    }
    return;
  }
  float* crow[R];
  for (int r = 0; r < R; ++r) {
    crow[r] = concat->row(static_cast<int>(i0) + r) + ccol0;
    for (int d = 0; d < hd; ++d) crow[r][d] = 0.0f;
  }
  for (int p = 0; p < k; ++p) {
    const float* vrow = qkv.row(p) + vcol0;
    for (int r = 0; r < R; ++r) {
      const float av = arow[r][p];
      if (av == 0.0f) continue;
      float* c = crow[r];
      for (int d = 0; d < hd; ++d) c[d] += av * vrow[d];
    }
  }
}

template <int HD>
void AttnContextRows(const Tensor& att, const Tensor& qkv, int vcol0, int hd,
                     int ccol0, int64_t r0, int64_t r1, Tensor* concat) {
  int64_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    AttnRowBlock<4, HD>(att, qkv, vcol0, hd, ccol0, i, concat);
  }
  switch (r1 - i) {
    case 3:
      AttnRowBlock<3, HD>(att, qkv, vcol0, hd, ccol0, i, concat);
      break;
    case 2:
      AttnRowBlock<2, HD>(att, qkv, vcol0, hd, ccol0, i, concat);
      break;
    case 1:
      AttnRowBlock<1, HD>(att, qkv, vcol0, hd, ccol0, i, concat);
      break;
    default:
      break;
  }
}

}  // namespace

void MatMulSliceKernel(const Tensor& a, int acol0, int k, const Tensor& b,
                       int row0, Tensor* out, float post_scale, int row1) {
  UCAD_DCHECK(acol0 >= 0 && acol0 + k <= a.cols());
  UCAD_DCHECK(b.rows() == k);
  UCAD_DCHECK(out->rows() == a.rows() && out->cols() == b.cols());
  const int end = row1 < 0 ? a.rows() : row1;
  UCAD_DCHECK(row0 >= 0 && row0 <= end && end <= a.rows());
  if (CurrentKernelTier() != KernelTier::kReference) {
    fast::MatMulSlice(a, acol0, k, b, row0, end, post_scale, out);
    return;
  }
  const int n = b.cols();
  RowParallelFor(row0, end, k * n, [&](int64_t r0, int64_t r1) {
    // Compile-time depth for the shipped head/hidden widths: a fully
    // unrolled 4-10 deep accumulation loop beats the generic counted one.
    switch (k) {
      case 4:
        MatMulRows<4>(a, acol0, k, b, r0, r1, out);
        break;
      case 5:
        MatMulRows<5>(a, acol0, k, b, r0, r1, out);
        break;
      case 8:
        MatMulRows<8>(a, acol0, k, b, r0, r1, out);
        break;
      case 10:
        MatMulRows<10>(a, acol0, k, b, r0, r1, out);
        break;
      default:
        MatMulRows<0>(a, acol0, k, b, r0, r1, out);
        break;
    }
    if (post_scale != 1.0f) {
      for (int64_t ri = r0; ri < r1; ++ri) {
        float* orow = out->row(static_cast<int>(ri));
        for (int j = 0; j < n; ++j) orow[j] *= post_scale;
      }
    }
  });
}

void AttnContextKernel(const Tensor& att, int row0, const Tensor& qkv,
                       int vcol0, int hd, int ccol0, Tensor* concat) {
  UCAD_DCHECK(att.cols() == qkv.rows());
  UCAD_DCHECK(vcol0 >= 0 && vcol0 + hd <= qkv.cols());
  UCAD_DCHECK(ccol0 >= 0 && ccol0 + hd <= concat->cols());
  UCAD_DCHECK(concat->rows() == att.rows());
  if (CurrentKernelTier() != KernelTier::kReference) {
    fast::AttnContext(att, row0, qkv, vcol0, hd, ccol0, concat);
    return;
  }
  const int k = att.cols();
  RowParallelFor(row0, att.rows(), k * hd, [&](int64_t r0, int64_t r1) {
    switch (hd) {
      case 4:
        AttnContextRows<4>(att, qkv, vcol0, hd, ccol0, r0, r1, concat);
        break;
      case 5:
        AttnContextRows<5>(att, qkv, vcol0, hd, ccol0, r0, r1, concat);
        break;
      case 8:
        AttnContextRows<8>(att, qkv, vcol0, hd, ccol0, r0, r1, concat);
        break;
      default:
        AttnContextRows<0>(att, qkv, vcol0, hd, ccol0, r0, r1, concat);
        break;
    }
  });
}

namespace {

/// One row of the masked-attention softmax, shared by MaskedSoftmaxKernel
/// and the batched attention pipeline. The mask add is fused with the
/// running max: add-then-compare has no mul-feeding-add shape, so
/// contraction cannot merge what the tape stores as separate Add and
/// SoftmaxRows-max traversals. Peeling c=0 preserves the tape's exact max
/// seeding (max_v = o[0], then std::max pairs in ascending order — NaN
/// handling included); the normalization is byte-for-byte the tape's
/// SoftmaxRows row loop (exp of the float difference, double sum, one
/// float reciprocal).
inline void MaskedSoftmaxRow(float* o, const float* m, int n) {
  o[0] += m[0];
  float max_v = o[0];
  for (int c = 1; c < n; ++c) {
    o[c] += m[c];
    max_v = std::max(max_v, o[c]);
  }
  double sum = 0.0;
  for (int c = 0; c < n; ++c) {
    o[c] = std::exp(o[c] - max_v);
    sum += o[c];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (int c = 0; c < n; ++c) o[c] *= inv;
}

}  // namespace

void MaskedSoftmaxKernel(Tensor* scores, float scale, const Tensor& mask,
                         int row0) {
  UCAD_DCHECK(scores->SameShape(mask));
  if (CurrentKernelTier() != KernelTier::kReference) {
    fast::MaskedSoftmax(scores, scale, mask, row0);
    return;
  }
  const int n = scores->cols();
  RowParallelFor(row0, scores->rows(), n, [&](int64_t r0, int64_t r1) {
    for (int64_t ri = r0; ri < r1; ++ri) {
      const int r = static_cast<int>(ri);
      float* o = scores->row(r);
      // Scale in its own pass so each store rounds exactly like the tape's
      // Scale node (no cross-op FMA contraction with the mask add). Callers
      // that pre-scaled (the scores kernel's epilogue) pass scale == 1, and
      // x * 1.0f == x bitwise, so the identity pass can be skipped outright.
      if (scale != 1.0f) {
        for (int c = 0; c < n; ++c) o[c] *= scale;
      }
      MaskedSoftmaxRow(o, mask.row(r), n);
    }
  });
}

namespace {

/// Row-range worker of BatchedAttentionHeadKernel: each global row r maps
/// to window b = r / L, query position i = r % L, and runs the exact
/// per-row pipelines of MatMulSliceKernel (zeroed destination, ascending-
/// depth accumulation, zero-operand skip, scale epilogue), MaskedSoftmaxRow
/// (window-local mask row i), and AttnContextKernel (value rows of window b
/// only). HD is the compile-time head width where possible, HD = 0 the
/// runtime fallback — same dispatch as the single-window kernels.
template <int HD>
void BatchedAttnRows(const Tensor& qkv, int L, const int* rows_from, int qoff,
                     int hd, const Tensor& kt, float scale, const Tensor& mask,
                     int voff, int ccol0, int64_t r0, int64_t r1,
                     Tensor* scores, Tensor* concat) {
  const int depth = HD > 0 ? HD : hd;
  for (int64_t gr = r0; gr < r1; ++gr) {
    const int r = static_cast<int>(gr);
    const int b = r / L;
    const int i = r - b * L;
    if (rows_from != nullptr && i < rows_from[b]) continue;
    float* o = scores->row(r);
    const float* q = qkv.row(r) + qoff;
    for (int j = 0; j < L; ++j) o[j] = 0.0f;
    for (int p = 0; p < depth; ++p) {
      const float av = q[p];
      if (av == 0.0f) continue;
      const float* __restrict__ brow = kt.row(b * hd + p);
      for (int j = 0; j < L; ++j) o[j] += av * brow[j];
    }
    if (scale != 1.0f) {
      for (int j = 0; j < L; ++j) o[j] *= scale;
    }
    MaskedSoftmaxRow(o, mask.row(i), L);
    const int vbase = b * L;
    float* crow = concat->row(r) + ccol0;
    if constexpr (HD > 0) {
      float acc[HD > 0 ? HD : 1];
      for (int d = 0; d < HD; ++d) acc[d] = 0.0f;
      for (int p = 0; p < L; ++p) {
        const float av = o[p];
        if (av == 0.0f) continue;
        const float* vrow = qkv.row(vbase + p) + voff;
        for (int d = 0; d < HD; ++d) acc[d] += av * vrow[d];
      }
      for (int d = 0; d < HD; ++d) crow[d] = acc[d];
    } else {
      for (int d = 0; d < hd; ++d) crow[d] = 0.0f;
      for (int p = 0; p < L; ++p) {
        const float av = o[p];
        if (av == 0.0f) continue;
        const float* vrow = qkv.row(vbase + p) + voff;
        for (int d = 0; d < hd; ++d) crow[d] += av * vrow[d];
      }
    }
  }
}

}  // namespace

void BatchedTransposeSliceKernel(const Tensor& qkv, int num_windows, int L,
                                 int col0, int cols, Tensor* out) {
  UCAD_DCHECK(out->rows() >= num_windows * cols && out->cols() == L);
  UCAD_DCHECK(qkv.rows() >= num_windows * L);
  UCAD_DCHECK(col0 >= 0 && col0 + cols <= qkv.cols());
  for (int b = 0; b < num_windows; ++b) {
    for (int i = 0; i < L; ++i) {
      const float* arow = qkv.row(b * L + i) + col0;
      for (int c = 0; c < cols; ++c) out->at(b * cols + c, i) = arow[c];
    }
  }
}

void BatchedAttentionHeadKernel(const Tensor& qkv, int num_windows, int L,
                                const int* rows_from, int qoff, int hd,
                                const Tensor& kt, float scale,
                                const Tensor& mask, int voff, int ccol0,
                                Tensor* scores, Tensor* concat) {
  UCAD_DCHECK(qkv.rows() >= num_windows * L);
  UCAD_DCHECK(kt.rows() >= num_windows * hd && kt.cols() == L);
  UCAD_DCHECK(mask.rows() == L && mask.cols() == L);
  UCAD_DCHECK(scores->rows() >= num_windows * L && scores->cols() == L);
  UCAD_DCHECK(concat->rows() >= num_windows * L);
  UCAD_DCHECK(qoff >= 0 && qoff + hd <= qkv.cols());
  UCAD_DCHECK(voff >= 0 && voff + hd <= qkv.cols());
  UCAD_DCHECK(ccol0 >= 0 && ccol0 + hd <= concat->cols());
  if (CurrentKernelTier() != KernelTier::kReference) {
    fast::BatchedAttnHead(qkv, num_windows, L, rows_from, qoff, hd, kt, scale,
                          mask, voff, ccol0, scores, concat);
    return;
  }
  const int total = num_windows * L;
  // Per-row cost: L*hd (scores) + L (softmax) + L*hd (context).
  RowParallelFor(0, total, L * (2 * hd + 2), [&](int64_t r0, int64_t r1) {
    switch (hd) {
      case 4:
        BatchedAttnRows<4>(qkv, L, rows_from, qoff, hd, kt, scale, mask, voff,
                           ccol0, r0, r1, scores, concat);
        break;
      case 5:
        BatchedAttnRows<5>(qkv, L, rows_from, qoff, hd, kt, scale, mask, voff,
                           ccol0, r0, r1, scores, concat);
        break;
      case 8:
        BatchedAttnRows<8>(qkv, L, rows_from, qoff, hd, kt, scale, mask, voff,
                           ccol0, r0, r1, scores, concat);
        break;
      default:
        BatchedAttnRows<0>(qkv, L, rows_from, qoff, hd, kt, scale, mask, voff,
                           ccol0, r0, r1, scores, concat);
        break;
    }
  });
}

void ResidualLayerNormKernel(const Tensor& x, const Tensor& res,
                             const Tensor& gain, const Tensor& bias, float eps,
                             Tensor* out, int row0, int row1) {
  UCAD_DCHECK(x.SameShape(res));
  UCAD_DCHECK(out->SameShape(x));
  UCAD_DCHECK(gain.rows() == 1 && gain.cols() == x.cols());
  UCAD_DCHECK(bias.rows() == 1 && bias.cols() == x.cols());
  const int end = row1 < 0 ? x.rows() : row1;
  UCAD_DCHECK(row0 >= 0 && row0 <= end && end <= x.rows());
  if (CurrentKernelTier() != KernelTier::kReference) {
    fast::ResidualLayerNorm(x, res, gain, bias, eps, out, row0, end);
    return;
  }
  const int n = x.cols();
  const float* vg = gain.row(0);
  const float* vb = bias.row(0);
  RowParallelFor(row0, end, n, [&](int64_t r0, int64_t r1) {
    for (int64_t ri = r0; ri < r1; ++ri) {
      const int r = static_cast<int>(ri);
      const float* xin = x.row(r);
      const float* rin = res.row(r);
      float* o = out->row(r);
      // Residual sum stored as float first (the tape's Add node), then the
      // exact LayerNormRows recipe over the stored row: double mean/var,
      // float istd, gain/bias epilogue.
      for (int c = 0; c < n; ++c) o[c] = xin[c] + rin[c];
      double mean = 0.0;
      for (int c = 0; c < n; ++c) mean += o[c];
      mean /= n;
      double var = 0.0;
      for (int c = 0; c < n; ++c) {
        const double d = o[c] - mean;
        var += d * d;
      }
      var /= n;
      const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
      for (int c = 0; c < n; ++c) {
        const float xh = (o[c] - static_cast<float>(mean)) * istd;
        o[c] = vg[c] * xh + vb[c];
      }
    }
  });
}

void BiasReluKernel(Tensor* x, const Tensor& bias, int row0, int row1) {
  UCAD_DCHECK(bias.rows() == 1 && bias.cols() == x->cols());
  const int end = row1 < 0 ? x->rows() : row1;
  UCAD_DCHECK(row0 >= 0 && row0 <= end && end <= x->rows());
  if (CurrentKernelTier() != KernelTier::kReference) {
    fast::BiasRelu(x, bias, row0, end);
    return;
  }
  const int n = x->cols();
  const float* vb = bias.row(0);
  RowParallelFor(row0, end, n, [&](int64_t r0, int64_t r1) {
    for (int64_t ri = r0; ri < r1; ++ri) {
      float* o = x->row(static_cast<int>(ri));
      // One rounded add (the AddRowVector store) then an exact max.
      for (int c = 0; c < n; ++c) o[c] = std::max(0.0f, o[c] + vb[c]);
    }
  });
}

void BiasAddKernel(Tensor* x, const Tensor& bias, int row0, int row1) {
  UCAD_DCHECK(bias.rows() == 1 && bias.cols() == x->cols());
  const int end = row1 < 0 ? x->rows() : row1;
  UCAD_DCHECK(row0 >= 0 && row0 <= end && end <= x->rows());
  if (CurrentKernelTier() != KernelTier::kReference) {
    fast::BiasAdd(x, bias, row0, end);
    return;
  }
  const int n = x->cols();
  const float* vb = bias.row(0);
  RowParallelFor(row0, end, n, [&](int64_t r0, int64_t r1) {
    for (int64_t ri = r0; ri < r1; ++ri) {
      float* o = x->row(static_cast<int>(ri));
      for (int c = 0; c < n; ++c) o[c] += vb[c];
    }
  });
}

RowScore ScoreLogitsRow(const float* logits, int vocab, int key, int top_p) {
  RowScore out;
  if (key <= 0 || key >= vocab) {
    // Unknown templates (k0) never match normal intent: worst possible
    // rank, no logit to report, unbounded negative margin.
    out.rank = vocab + 1;
    out.score = 0.0f;
    out.margin = -std::numeric_limits<float>::infinity();
    out.abnormal = true;
    obs::FlightStageBoundary(obs::FlightStage::kScore);
    return out;
  }
  const float score = logits[key];
  // One scan computes both the rank (strictly-greater count) and the top-p
  // cutoff (p-th largest logit, observed key included) via a small bounded
  // selection buffer, so rank and margin cannot disagree.
  const int p = std::min(top_p, vocab - 1);
  constexpr int kInlineCap = 64;
  float inline_top[kInlineCap];  // min-first heap of the p largest logits
  std::vector<float> heap_storage;
  float* top = inline_top;
  if (p > kInlineCap) {
    heap_storage.resize(static_cast<size_t>(p));
    top = heap_storage.data();
  }
  int top_size = 0;
  int rank = 1;
  for (int k = 1; k < vocab; ++k) {
    const float v = logits[k];
    if (k != key && v > score) ++rank;
    if (top_size < p) {
      top[top_size++] = v;
      std::push_heap(top, top + top_size, std::greater<float>());
    } else if (v > top[0]) {
      std::pop_heap(top, top + top_size, std::greater<float>());
      top[top_size - 1] = v;
      std::push_heap(top, top + top_size, std::greater<float>());
    }
  }
  const float cutoff = top_size == 0 ? score : top[0];
  out.rank = rank;
  out.score = score;
  out.margin = score - cutoff;
  out.abnormal = rank > top_p;
  obs::FlightStageBoundary(obs::FlightStage::kScore);
  return out;
}

void PublishInferMetrics(obs::MetricsRegistry* registry) {
  const auto publish_counter = [registry](const char* name, uint64_t value) {
    obs::Counter* counter = registry->GetCounter(name);
    if (value > counter->Value()) counter->Increment(value - counter->Value());
  };
  publish_counter("nn/infer/contexts_total",
                  g_contexts_total.load(std::memory_order_relaxed));
  publish_counter("nn/infer/forwards_total",
                  g_forwards_total.load(std::memory_order_relaxed));
  publish_counter("nn/infer/slide_cache_hits",
                  g_slide_hits_total.load(std::memory_order_relaxed));
  publish_counter("nn/infer/slide_cache_misses",
                  g_slide_misses_total.load(std::memory_order_relaxed));
  publish_counter("nn/infer/batches_total",
                  g_batches_total.load(std::memory_order_relaxed));
  publish_counter("nn/infer/batched_windows_total",
                  g_batched_windows_total.load(std::memory_order_relaxed));
  for (const KernelTier tier : {KernelTier::kReference, KernelTier::kVectorized,
                                KernelTier::kInt8}) {
    obs::Counter* counter = registry->GetCounter(
        "nn/infer/tier_forwards_total", {{"tier", KernelTierName(tier)}});
    const uint64_t value = internal::TierForwardsTotal(tier);
    if (value > counter->Value()) counter->Increment(value - counter->Value());
  }
  publish_counter("nn/infer/int8_gemm_rows_total",
                  internal::Int8GemmRowsTotal());
  registry->GetGauge("nn/infer/kernel_tier")
      ->Set(static_cast<double>(
          g_last_forward_tier.load(std::memory_order_relaxed)));
  registry->GetGauge("nn/infer/simd_isa")
      ->Set(static_cast<double>(static_cast<int>(util::ActiveSimdIsa())));
  registry->GetGauge("nn/infer/quant_weight_max_abs_err")
      ->Set(internal::QuantWeightMaxAbsErr());
  registry->GetGauge("nn/infer/quant_act_max_abs_err")
      ->Set(internal::QuantActMaxAbsErr());
  const uint64_t slots = g_batched_slots_total.load(std::memory_order_relaxed);
  registry->GetGauge("nn/infer/batch_occupancy")
      ->Set(slots == 0 ? 0.0
                       : static_cast<double>(g_batched_windows_total.load(
                             std::memory_order_relaxed)) /
                             static_cast<double>(slots));
  registry->GetGauge("nn/infer/live_contexts")
      ->Set(static_cast<double>(
          g_live_contexts.load(std::memory_order_relaxed)));
  registry->GetGauge("nn/infer/workspace_live_bytes")
      ->Set(static_cast<double>(
          g_ws_live_bytes.load(std::memory_order_relaxed)));
  registry->GetGauge("nn/infer/workspace_peak_bytes")
      ->Set(static_cast<double>(
          g_ws_peak_bytes.load(std::memory_order_relaxed)));
}

}  // namespace ucad::nn
