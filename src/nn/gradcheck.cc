#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

namespace ucad::nn {

GradCheckResult CheckGradients(
    const std::function<double()>& loss_with_backward,
    const std::function<double()>& loss_only,
    const std::vector<Parameter*>& params, float epsilon) {
  for (Parameter* p : params) p->ZeroGrad();
  (void)loss_with_backward();

  // Snapshot analytic gradients, then perturb each entry.
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (Parameter* p : params) analytic.push_back(p->grad());

  GradCheckResult result;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& w = params[pi]->value();
    for (size_t j = 0; j < w.size(); ++j) {
      const float saved = w.data()[j];
      w.data()[j] = saved + epsilon;
      const double plus = loss_only();
      w.data()[j] = saved - epsilon;
      const double minus = loss_only();
      w.data()[j] = saved;
      const float numeric =
          static_cast<float>((plus - minus) / (2.0 * epsilon));
      const float a = analytic[pi].data()[j];
      const float abs_err = std::abs(a - numeric);
      const float rel_err =
          abs_err / std::max(1e-3f, std::abs(a) + std::abs(numeric));
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      ++result.entries;
    }
  }
  for (Parameter* p : params) p->ZeroGrad();
  return result;
}

}  // namespace ucad::nn
