#ifndef UCAD_NN_TENSOR_H_
#define UCAD_NN_TENSOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace ucad::nn {

/// Dense row-major float matrix. The NN substrate is 2D-centric: vectors are
/// represented as [1 x n] or [n x 1] matrices, sequences of embeddings as
/// [L x h]. Small by design — models in this library have at most a few
/// hundred thousand parameters.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() : rows_(0), cols_(0) {}

  /// Zero-initialized tensor of the given shape.
  Tensor(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0f) {
    UCAD_CHECK_GE(rows, 0);
    UCAD_CHECK_GE(cols, 0);
  }

  /// Tensor with explicit contents (row-major, size must match).
  Tensor(int rows, int cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    UCAD_CHECK_EQ(data_.size(), static_cast<size_t>(rows) * cols);
  }

  /// Factory helpers.
  static Tensor Zeros(int rows, int cols) { return Tensor(rows, cols); }
  static Tensor Full(int rows, int cols, float value);
  /// I.i.d. normal entries with the given standard deviation.
  static Tensor Randn(int rows, int cols, float stddev, util::Rng* rng);
  /// Xavier/Glorot uniform initialization for a [fan_in x fan_out] weight.
  static Tensor XavierUniform(int fan_in, int fan_out, util::Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  float& at(int r, int c) {
    UCAD_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    UCAD_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// Sets every entry to zero.
  void SetZero();
  /// Sets every entry to `value`.
  void Fill(float value);
  /// this += other (same shape).
  void AddInPlace(const Tensor& other);
  /// this += scale * other (same shape).
  void AddScaled(const Tensor& other, float scale);
  /// this *= scale.
  void Scale(float scale);

  /// Sum of all entries.
  float Sum() const;
  /// Sum of squared entries.
  float SquaredNorm() const;
  /// Largest absolute entry (0 for empty tensors).
  float MaxAbs() const;

  /// "[r x c] {a, b, ...}" — truncated preview for logging/tests.
  std::string DebugString(int max_entries = 8) const;

 private:
  int rows_;
  int cols_;
  std::vector<float> data_;
};

/// out = a * b for [m x k] x [k x n]. `out` must be preallocated [m x n];
/// its previous contents are overwritten.
void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a * b (accumulating variant).
void MatMulAccum(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a^T * b for a [k x m], b [k x n], out [m x n].
void MatMulTransposeAAccum(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a * b^T for a [m x k], b [n x k], out [m x n].
void MatMulTransposeBAccum(const Tensor& a, const Tensor& b, Tensor* out);

}  // namespace ucad::nn

#endif  // UCAD_NN_TENSOR_H_
