#ifndef UCAD_NN_TENSOR_H_
#define UCAD_NN_TENSOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace ucad::nn {

/// Point-in-time view of the process-wide tensor memory accounting.
struct TensorMemSnapshot {
  int64_t live_bytes = 0;        ///< bytes held by currently-alive tensors
  int64_t peak_live_bytes = 0;   ///< high-water mark of live_bytes
  uint64_t alloc_count = 0;      ///< tensors that allocated storage
  uint64_t alloc_bytes_total = 0;  ///< cumulative bytes ever allocated
};

/// Tensor memory accounting is off by default; when disabled each tensor
/// construction costs one relaxed atomic load. When enabled, every tensor
/// records its payload size at construction and releases it at destruction,
/// so live/peak bytes stay balanced even across enable/disable toggles
/// (a tensor only "frees" what it recorded at allocation).
void SetTensorMemTrackingEnabled(bool enabled);
bool TensorMemTrackingEnabled();

TensorMemSnapshot TensorMemStats();

/// Zeroes counters and resets the peak to the current live byte count.
void ResetTensorMemStats();

/// Publishes the snapshot into the default metrics registry:
/// nn/tensor/live_bytes + nn/tensor/peak_live_bytes (gauges),
/// nn/tensor/allocs_total + nn/tensor/alloc_bytes_total (counters).
void PublishTensorMemMetrics();

namespace internal {
extern std::atomic<bool> g_tensor_mem_tracking;
void RecordTensorAlloc(int64_t bytes);
void RecordTensorFree(int64_t bytes);
}  // namespace internal

inline bool TensorMemTrackingEnabled() {
  return internal::g_tensor_mem_tracking.load(std::memory_order_relaxed);
}

/// Dense row-major float matrix. The NN substrate is 2D-centric: vectors are
/// represented as [1 x n] or [n x 1] matrices, sequences of embeddings as
/// [L x h]. Small by design — models in this library have at most a few
/// hundred thousand parameters.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() : rows_(0), cols_(0) {}

  /// Zero-initialized tensor of the given shape.
  Tensor(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0f) {
    UCAD_CHECK_GE(rows, 0);
    UCAD_CHECK_GE(cols, 0);
    TrackAlloc();
  }

  /// Tensor with explicit contents (row-major, size must match).
  Tensor(int rows, int cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    UCAD_CHECK_EQ(data_.size(), static_cast<size_t>(rows) * cols);
    TrackAlloc();
  }

  // Explicit copy/move so the memory accounting stays balanced: a move
  // transfers the recorded bytes, a copy records its own.
  Tensor(const Tensor& other)
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
    TrackAlloc();
  }
  Tensor(Tensor&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_),
        data_(std::move(other.data_)), tracked_bytes_(other.tracked_bytes_) {
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_.clear();
    other.tracked_bytes_ = 0;
  }
  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      TrackFree();
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_ = other.data_;
      TrackAlloc();
    }
    return *this;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      TrackFree();
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_ = std::move(other.data_);
      tracked_bytes_ = other.tracked_bytes_;
      other.rows_ = 0;
      other.cols_ = 0;
      other.data_.clear();
      other.tracked_bytes_ = 0;
    }
    return *this;
  }
  ~Tensor() { TrackFree(); }

  /// Factory helpers.
  static Tensor Zeros(int rows, int cols) { return Tensor(rows, cols); }
  static Tensor Full(int rows, int cols, float value);
  /// I.i.d. normal entries with the given standard deviation.
  static Tensor Randn(int rows, int cols, float stddev, util::Rng* rng);
  /// Xavier/Glorot uniform initialization for a [fan_in x fan_out] weight.
  static Tensor XavierUniform(int fan_in, int fan_out, util::Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  float& at(int r, int c) {
    UCAD_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    UCAD_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// Sets every entry to zero.
  void SetZero();
  /// Sets every entry to `value`.
  void Fill(float value);
  /// this += other (same shape).
  void AddInPlace(const Tensor& other);
  /// this += scale * other (same shape).
  void AddScaled(const Tensor& other, float scale);
  /// this *= scale.
  void Scale(float scale);

  /// Sum of all entries.
  float Sum() const;
  /// Sum of squared entries.
  float SquaredNorm() const;
  /// Largest absolute entry (0 for empty tensors).
  float MaxAbs() const;

  /// "[r x c] {a, b, ...}" — truncated preview for logging/tests.
  std::string DebugString(int max_entries = 8) const;

 private:
  /// Records this tensor's payload in the process accounting; only bytes
  /// recorded here are released by TrackFree, so a disable/enable toggle
  /// mid-lifetime cannot unbalance the live counter.
  void TrackAlloc() {
    if (!TensorMemTrackingEnabled() || data_.empty()) return;
    tracked_bytes_ = static_cast<int64_t>(data_.size() * sizeof(float));
    internal::RecordTensorAlloc(tracked_bytes_);
  }
  void TrackFree() {
    if (tracked_bytes_ == 0) return;
    internal::RecordTensorFree(tracked_bytes_);
    tracked_bytes_ = 0;
  }

  int rows_;
  int cols_;
  std::vector<float> data_;
  int64_t tracked_bytes_ = 0;
};

/// Minimum matmul work (multiply-accumulates, m*k*n) before the kernels
/// fan out across the global thread pool (util::ParallelFor over output
/// rows). Below the threshold the original serial loops run. Partitioned
/// execution is bitwise identical to serial: every output element
/// accumulates its k products in ascending-p order regardless of the
/// partition, and chunk boundaries never depend on scheduling.
/// Initialized from UCAD_MATMUL_MIN_WORK when set (default 1<<18).
void SetParallelMatMulMinWork(int64_t min_work);
int64_t ParallelMatMulMinWork();

/// out = a * b for [m x k] x [k x n]. `out` must be preallocated [m x n];
/// its previous contents are overwritten.
void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a * b (accumulating variant).
void MatMulAccum(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a^T * b for a [k x m], b [k x n], out [m x n].
void MatMulTransposeAAccum(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a * b^T for a [m x k], b [n x k], out [m x n].
void MatMulTransposeBAccum(const Tensor& a, const Tensor& b, Tensor* out);

}  // namespace ucad::nn

#endif  // UCAD_NN_TENSOR_H_
