#include "nn/module.h"

#include <utility>

namespace ucad::nn {

Linear::Linear(int in_features, int out_features, util::Rng* rng)
    : weight_(Tensor::XavierUniform(in_features, out_features, rng)),
      bias_(Tensor::Zeros(1, out_features)) {}

VarId Linear::Forward(Tape* tape, VarId x) {
  VarId w = tape->Param(&weight_);
  VarId b = tape->Param(&bias_);
  return tape->AddRowVector(tape->MatMul(x, w), b);
}

std::vector<Parameter*> Linear::Params() { return {&weight_, &bias_}; }

Embedding::Embedding(int vocab_size, int dim, util::Rng* rng,
                     int padding_index)
    : table_(Tensor::Randn(vocab_size, dim, 0.1f, rng)),
      padding_index_(padding_index) {
  UCAD_CHECK(padding_index >= 0 && padding_index < vocab_size);
  FreezePaddingRow();
}

VarId Embedding::Forward(Tape* tape, std::vector<int> keys) {
  VarId table = tape->Param(&table_);
  return tape->EmbeddingGather(table, std::move(keys));
}

VarId Embedding::Table(Tape* tape) { return tape->Param(&table_); }

void Embedding::FreezePaddingRow() {
  float* row = table_.value().row(padding_index_);
  for (int c = 0; c < table_.value().cols(); ++c) row[c] = 0.0f;
}

std::vector<Parameter*> Embedding::Params() { return {&table_}; }

LayerNorm::LayerNorm(int dim)
    : gain_(Tensor::Full(1, dim, 1.0f)), bias_(Tensor::Zeros(1, dim)) {}

VarId LayerNorm::Forward(Tape* tape, VarId x) {
  VarId g = tape->Param(&gain_);
  VarId b = tape->Param(&bias_);
  return tape->LayerNormRows(x, g, b);
}

std::vector<Parameter*> LayerNorm::Params() { return {&gain_, &bias_}; }

LstmCell::LstmCell(int input_dim, int hidden_dim, util::Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      weight_(Tensor::XavierUniform(input_dim + hidden_dim, 4 * hidden_dim,
                                    rng)),
      bias_(Tensor::Zeros(1, 4 * hidden_dim)) {
  // Forget-gate bias of 1 is the standard trick for gradient flow early in
  // training.
  for (int c = hidden_dim; c < 2 * hidden_dim; ++c) {
    bias_.value().at(0, c) = 1.0f;
  }
}

LstmCell::State LstmCell::InitialState(Tape* tape) const {
  return State{tape->Constant(Tensor::Zeros(1, hidden_dim_)),
               tape->Constant(Tensor::Zeros(1, hidden_dim_))};
}

LstmCell::State LstmCell::Step(Tape* tape, VarId x, const State& prev) {
  UCAD_CHECK_EQ(tape->value(x).cols(), input_dim_);
  VarId xh = tape->ConcatCols({x, prev.h});
  VarId w = tape->Param(&weight_);
  VarId b = tape->Param(&bias_);
  VarId gates = tape->AddRowVector(tape->MatMul(xh, w), b);
  VarId i = tape->Sigmoid(tape->SliceCols(gates, 0, hidden_dim_));
  VarId f = tape->Sigmoid(tape->SliceCols(gates, hidden_dim_, hidden_dim_));
  VarId g = tape->Tanh(tape->SliceCols(gates, 2 * hidden_dim_, hidden_dim_));
  VarId o = tape->Sigmoid(tape->SliceCols(gates, 3 * hidden_dim_, hidden_dim_));
  VarId c = tape->Add(tape->Mul(f, prev.c), tape->Mul(i, g));
  VarId h = tape->Mul(o, tape->Tanh(c));
  return State{h, c};
}

std::vector<Parameter*> LstmCell::Params() { return {&weight_, &bias_}; }

}  // namespace ucad::nn
