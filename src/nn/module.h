#ifndef UCAD_NN_MODULE_H_
#define UCAD_NN_MODULE_H_

#include <vector>

#include "nn/tape.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace ucad::nn {

/// Fully-connected layer: y = x W + b, x is [m x in], W is [in x out].
class Linear {
 public:
  /// Xavier-uniform weight init, zero bias.
  Linear(int in_features, int out_features, util::Rng* rng);

  /// Applies the layer on the tape.
  VarId Forward(Tape* tape, VarId x);

  /// Trainable parameters (weight, bias).
  std::vector<Parameter*> Params();

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter weight_;
  Parameter bias_;
};

/// Embedding table [vocab x dim]. Row `padding_index` (key k0, reserved for
/// padding and unseen operations — paper §4.2) is pinned to the zero vector:
/// it is zeroed at construction and re-zeroed by FreezePaddingRow() which
/// optimizers call after each step.
class Embedding {
 public:
  Embedding(int vocab_size, int dim, util::Rng* rng, int padding_index = 0);

  /// Gathers embeddings for `keys` -> [|keys| x dim].
  VarId Forward(Tape* tape, std::vector<int> keys);

  /// Places the table on the tape (for similarity computations against all
  /// keys, paper Eq. 10).
  VarId Table(Tape* tape);

  /// Re-zeroes the padding row (call after optimizer updates).
  void FreezePaddingRow();

  std::vector<Parameter*> Params();

  Parameter& table() { return table_; }
  int vocab_size() const { return table_.value().rows(); }
  int dim() const { return table_.value().cols(); }
  int padding_index() const { return padding_index_; }

 private:
  Parameter table_;
  int padding_index_;
};

/// Layer normalization over feature rows with learnable gain/bias
/// (paper Eq. 6).
class LayerNorm {
 public:
  explicit LayerNorm(int dim);

  VarId Forward(Tape* tape, VarId x);

  std::vector<Parameter*> Params();

  Parameter& gain() { return gain_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter gain_;
  Parameter bias_;
};

/// Single LSTM cell (used by the DeepLog baseline). Gate layout follows the
/// standard formulation: i, f, g, o packed into one [in+hidden x 4*hidden]
/// weight.
class LstmCell {
 public:
  LstmCell(int input_dim, int hidden_dim, util::Rng* rng);

  struct State {
    VarId h;  // [1 x hidden]
    VarId c;  // [1 x hidden]
  };

  /// Zero-initialized recurrent state.
  State InitialState(Tape* tape) const;

  /// One step: consumes x ([1 x input_dim]) and the previous state.
  State Step(Tape* tape, VarId x, const State& prev);

  std::vector<Parameter*> Params();

  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  Parameter weight_;  // [(input+hidden) x 4*hidden]
  Parameter bias_;    // [1 x 4*hidden]
};

}  // namespace ucad::nn

#endif  // UCAD_NN_MODULE_H_
