#include "nn/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>

#include "nn/parallel_thresholds.h"
#include "util/logging.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define UCAD_SIMD_HAVE_AVX2 1
#else
#define UCAD_SIMD_HAVE_AVX2 0
#endif

namespace ucad::nn {

namespace {

thread_local KernelTier t_kernel_tier = KernelTier::kReference;

/// Error watermarks stored as raw float bits: all recorded errors are
/// non-negative, and the IEEE-754 bit pattern of non-negative floats orders
/// like the values, so a monotonic integer CAS-max is a float max.
std::atomic<uint32_t> g_quant_weight_err_bits{0};
std::atomic<uint32_t> g_quant_act_err_bits{0};
std::atomic<uint64_t> g_int8_rows_total{0};

void MaxUpdate(std::atomic<uint32_t>* bits, float value) {
  if (!(value > 0.0f)) return;
  uint32_t v;
  std::memcpy(&v, &value, sizeof(v));
  uint32_t cur = bits->load(std::memory_order_relaxed);
  while (v > cur &&
         !bits->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

float LoadErr(const std::atomic<uint32_t>& bits) {
  const uint32_t v = bits.load(std::memory_order_relaxed);
  float out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

bool UseAvx2() {
#if UCAD_SIMD_HAVE_AVX2
  return util::ActiveSimdIsa() == util::SimdIsa::kAvx2;
#else
  return false;
#endif
}

}  // namespace

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kReference:
      return "reference";
    case KernelTier::kVectorized:
      return "vectorized";
    case KernelTier::kInt8:
      return "int8";
  }
  return "reference";
}

bool ParseKernelTier(const std::string& name, KernelTier* out) {
  if (name == "reference") {
    *out = KernelTier::kReference;
  } else if (name == "vectorized") {
    *out = KernelTier::kVectorized;
  } else if (name == "int8") {
    *out = KernelTier::kInt8;
  } else {
    return false;
  }
  return true;
}

KernelTier CurrentKernelTier() { return t_kernel_tier; }

ScopedKernelTier::ScopedKernelTier(KernelTier tier) : saved_(t_kernel_tier) {
  t_kernel_tier = tier;
}

ScopedKernelTier::~ScopedKernelTier() { t_kernel_tier = saved_; }

// ---- Polynomial exp --------------------------------------------------------

namespace fast {

namespace {

// Cephes expf constants: 2^n * P(r) with r = x - n*ln2 split hi/lo.
constexpr float kExpHi = 88.3762626647949f;
constexpr float kExpLo = -87.3365478515625f;
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

}  // namespace

float Exp(float x) {
  x = std::min(kExpHi, std::max(kExpLo, x));
  const float n = std::floor(x * kLog2e + 0.5f);
  float r = x - n * kLn2Hi;
  r -= n * kLn2Lo;
  float p = kExpP0;
  p = p * r + kExpP1;
  p = p * r + kExpP2;
  p = p * r + kExpP3;
  p = p * r + kExpP4;
  p = p * r + kExpP5;
  p = p * r * r + r + 1.0f;
  int32_t bits = (static_cast<int32_t>(n) + 127) << 23;
  float pow2n;
  std::memcpy(&pow2n, &bits, sizeof(pow2n));
  return p * pow2n;
}

namespace {

#if UCAD_SIMD_HAVE_AVX2

/// 8-lane twin of Exp(): same range reduction and polynomial, so scalar
/// tails and vector lanes agree to within the approximation's own error.
inline __m256 Exp8(__m256 x) {
  x = _mm256_min_ps(_mm256_set1_ps(kExpHi), x);
  x = _mm256_max_ps(_mm256_set1_ps(kExpLo), x);
  const __m256 n = _mm256_floor_ps(
      _mm256_fmadd_ps(x, _mm256_set1_ps(kLog2e), _mm256_set1_ps(0.5f)));
  __m256 r = _mm256_fnmadd_ps(n, _mm256_set1_ps(kLn2Hi), x);
  r = _mm256_fnmadd_ps(n, _mm256_set1_ps(kLn2Lo), r);
  __m256 p = _mm256_set1_ps(kExpP0);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP1));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP2));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP3));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP4));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpP5));
  p = _mm256_add_ps(
      _mm256_fmadd_ps(p, _mm256_mul_ps(r, r), r), _mm256_set1_ps(1.0f));
  const __m256i bits = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(p, _mm256_castsi256_ps(bits));
}

inline float HorizontalMax(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_max_ps(lo, hi);
  lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

/// Lane mask for a partial (rem in [1, 7]) vector: the first `rem` lanes
/// enabled. maskload/maskstore touch only enabled lanes, so partial tiles
/// never read or write past a tensor row.
inline __m256i TailMask(int rem) {
  alignas(32) static constexpr int32_t kMaskTable[16] = {
      -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - rem));
}

#endif  // UCAD_SIMD_HAVE_AVX2

// ---- Row GEMM bodies -------------------------------------------------------

#if UCAD_SIMD_HAVE_AVX2

/// One output row of out = a_row * b, register-tiled over the output
/// columns: each 8/16-wide tile accumulates across the full depth in ymm
/// registers and stores once, instead of the reference kernel's
/// read-modify-write of the output row at every depth step.
inline void MatMulRowAvx2(const float* arow, int k, const Tensor& b,
                          float post_scale, float* orow) {
  const int n = b.cols();
  const __m256 vscale = _mm256_set1_ps(post_scale);
  int j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      const __m256 av = _mm256_set1_ps(arow[p]);
      const float* brow = b.row(p) + j;
      acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
      acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), acc1);
    }
    _mm256_storeu_ps(orow + j, _mm256_mul_ps(acc0, vscale));
    _mm256_storeu_ps(orow + j + 8, _mm256_mul_ps(acc1, vscale));
  }
  for (; j + 8 <= n; j += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[p]),
                            _mm256_loadu_ps(b.row(p) + j), acc);
    }
    _mm256_storeu_ps(orow + j, _mm256_mul_ps(acc, vscale));
  }
  const int rem = n - j;
  if (rem > 0) {
    const __m256i mask = TailMask(rem);
    __m256 acc = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[p]),
                            _mm256_maskload_ps(b.row(p) + j, mask), acc);
    }
    _mm256_maskstore_ps(orow + j, mask, _mm256_mul_ps(acc, vscale));
  }
}

#endif  // UCAD_SIMD_HAVE_AVX2

/// Generic register-tiled row GEMM; the fixed-width inner tile keeps the
/// accumulators in registers for any vector ISA the compiler targets.
inline void MatMulRowGeneric(const float* arow, int k, const Tensor& b,
                             float post_scale, float* orow) {
  const int n = b.cols();
  constexpr int kTile = 16;
  int j = 0;
  for (; j + kTile <= n; j += kTile) {
    float acc[kTile] = {0.0f};
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* __restrict__ brow = b.row(p) + j;
      for (int jj = 0; jj < kTile; ++jj) acc[jj] += av * brow[jj];
    }
    for (int jj = 0; jj < kTile; ++jj) orow[j + jj] = acc[jj] * post_scale;
  }
  if (j < n) {
    const int rem = n - j;
    float acc[kTile] = {0.0f};
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* __restrict__ brow = b.row(p) + j;
      for (int jj = 0; jj < rem; ++jj) acc[jj] += av * brow[jj];
    }
    for (int jj = 0; jj < rem; ++jj) orow[j + jj] = acc[jj] * post_scale;
  }
}

// ---- Softmax row bodies ----------------------------------------------------

inline void SoftmaxRowGeneric(float* o, const float* m, float scale, int n) {
  float max_v = -std::numeric_limits<float>::infinity();
  for (int c = 0; c < n; ++c) {
    o[c] = o[c] * scale + m[c];
    max_v = std::max(max_v, o[c]);
  }
  float sum = 0.0f;
  for (int c = 0; c < n; ++c) {
    const float e = Exp(o[c] - max_v);
    o[c] = e;
    sum += e;
  }
  const float inv = 1.0f / sum;
  for (int c = 0; c < n; ++c) o[c] *= inv;
}

#if UCAD_SIMD_HAVE_AVX2

inline void SoftmaxRowAvx2(float* o, const float* m, float scale, int n) {
  // Every pass is fully 8-wide: the ragged tail runs through masked
  // loads/stores instead of a scalar loop (at the hot path's L = 30 a
  // scalar tail would cost 6 libm-free but serial lanes on all 3 passes).
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 ninf = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  const int nv = n & ~7;
  const int rem = n - nv;
  const __m256i tmask = rem > 0 ? TailMask(rem) : _mm256_setzero_si256();
  const __m256 tmaskf = _mm256_castsi256_ps(tmask);
  __m256 vmax = ninf;
  for (int c = 0; c + 8 <= n; c += 8) {
    const __m256 v =
        _mm256_fmadd_ps(_mm256_loadu_ps(o + c), vscale, _mm256_loadu_ps(m + c));
    _mm256_storeu_ps(o + c, v);
    vmax = _mm256_max_ps(vmax, v);
  }
  if (rem > 0) {
    const __m256 v = _mm256_fmadd_ps(_mm256_maskload_ps(o + nv, tmask), vscale,
                                     _mm256_maskload_ps(m + nv, tmask));
    _mm256_maskstore_ps(o + nv, tmask, v);
    // Disabled lanes must not contaminate the max: blend them to -inf.
    vmax = _mm256_max_ps(vmax, _mm256_blendv_ps(ninf, v, tmaskf));
  }
  const float max_v = HorizontalMax(vmax);
  const __m256 vmaxb = _mm256_set1_ps(max_v);
  __m256 vsum = _mm256_setzero_ps();
  for (int c = 0; c + 8 <= n; c += 8) {
    const __m256 e = Exp8(_mm256_sub_ps(_mm256_loadu_ps(o + c), vmaxb));
    _mm256_storeu_ps(o + c, e);
    vsum = _mm256_add_ps(vsum, e);
  }
  float sum;
  if (rem > 0) {
    // Disabled lanes read 0 and exponentiate to garbage; zero them before
    // they can reach the sum or the store.
    __m256 e = Exp8(_mm256_sub_ps(_mm256_maskload_ps(o + nv, tmask), vmaxb));
    e = _mm256_and_ps(e, tmaskf);
    _mm256_maskstore_ps(o + nv, tmask, e);
    sum = HorizontalSum(_mm256_add_ps(vsum, e));
  } else {
    sum = HorizontalSum(vsum);
  }
  const __m256 vinv = _mm256_set1_ps(1.0f / sum);
  for (int c = 0; c + 8 <= n; c += 8) {
    _mm256_storeu_ps(o + c, _mm256_mul_ps(_mm256_loadu_ps(o + c), vinv));
  }
  if (rem > 0) {
    _mm256_maskstore_ps(
        o + nv, tmask,
        _mm256_mul_ps(_mm256_maskload_ps(o + nv, tmask), vinv));
  }
}

/// att-weighted sum of V rows into one output row: out[0:hd] =
/// sum_p arow[p] * vbase(p)[0:hd], 8-wide with a masked ragged tile. The
/// `row` callback maps p to that depth step's V row (the single-window and
/// batched layouts differ only in that base).
template <typename RowFn>
inline void AttnContextRowAvx2(const float* arow, int k, int hd, RowFn row,
                               float* out) {
  for (int j0 = 0; j0 < hd; j0 += 8) {
    const int jn = std::min(8, hd - j0);
    if (jn == 8) {
      __m256 acc = _mm256_setzero_ps();
      for (int p = 0; p < k; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[p]),
                              _mm256_loadu_ps(row(p) + j0), acc);
      }
      _mm256_storeu_ps(out + j0, acc);
    } else {
      const __m256i tmask = TailMask(jn);
      __m256 acc = _mm256_setzero_ps();
      for (int p = 0; p < k; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[p]),
                              _mm256_maskload_ps(row(p) + j0, tmask), acc);
      }
      _mm256_maskstore_ps(out + j0, tmask, acc);
    }
  }
}

#endif  // UCAD_SIMD_HAVE_AVX2

inline void SoftmaxRow(bool avx2, float* o, const float* m, float scale,
                       int n) {
#if UCAD_SIMD_HAVE_AVX2
  if (avx2) {
    SoftmaxRowAvx2(o, m, scale, n);
    return;
  }
#else
  (void)avx2;
#endif
  SoftmaxRowGeneric(o, m, scale, n);
}

// ---- LayerNorm row bodies --------------------------------------------------

inline void ResidualLayerNormRowGeneric(const float* xin, const float* rin,
                                        const float* vg, const float* vb,
                                        float eps, int n, float* o) {
  float sum = 0.0f;
  for (int c = 0; c < n; ++c) {
    o[c] = xin[c] + rin[c];
    sum += o[c];
  }
  const float mean = sum / static_cast<float>(n);
  float var = 0.0f;
  for (int c = 0; c < n; ++c) {
    const float d = o[c] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float istd = 1.0f / std::sqrt(var + eps);
  for (int c = 0; c < n; ++c) {
    o[c] = vg[c] * ((o[c] - mean) * istd) + vb[c];
  }
}

#if UCAD_SIMD_HAVE_AVX2

inline void ResidualLayerNormRowAvx2(const float* xin, const float* rin,
                                     const float* vg, const float* vb,
                                     float eps, int n, float* o) {
  __m256 vsum = _mm256_setzero_ps();
  int c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m256 v =
        _mm256_add_ps(_mm256_loadu_ps(xin + c), _mm256_loadu_ps(rin + c));
    _mm256_storeu_ps(o + c, v);
    vsum = _mm256_add_ps(vsum, v);
  }
  float sum = HorizontalSum(vsum);
  for (; c < n; ++c) {
    o[c] = xin[c] + rin[c];
    sum += o[c];
  }
  const float mean = sum / static_cast<float>(n);
  const __m256 vmean = _mm256_set1_ps(mean);
  __m256 vvar = _mm256_setzero_ps();
  c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(o + c), vmean);
    vvar = _mm256_fmadd_ps(d, d, vvar);
  }
  float var = HorizontalSum(vvar);
  for (; c < n; ++c) {
    const float d = o[c] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float istd = 1.0f / std::sqrt(var + eps);
  const __m256 vistd = _mm256_set1_ps(istd);
  c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m256 xh =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(o + c), vmean), vistd);
    _mm256_storeu_ps(
        o + c,
        _mm256_fmadd_ps(_mm256_loadu_ps(vg + c), xh, _mm256_loadu_ps(vb + c)));
  }
  for (; c < n; ++c) {
    o[c] = vg[c] * ((o[c] - mean) * istd) + vb[c];
  }
}

#endif  // UCAD_SIMD_HAVE_AVX2

}  // namespace

// ---- Public relaxed kernels ------------------------------------------------

void MatMulSlice(const Tensor& a, int acol0, int k, const Tensor& b, int row0,
                 int row1, float post_scale, Tensor* out) {
  const bool avx2 = UseAvx2();
  RowParallelFor(row0, row1, k * b.cols(), [&, avx2](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* arow = a.row(static_cast<int>(r)) + acol0;
      float* orow = out->row(static_cast<int>(r));
#if UCAD_SIMD_HAVE_AVX2
      if (avx2) {
        MatMulRowAvx2(arow, k, b, post_scale, orow);
        continue;
      }
#endif
      MatMulRowGeneric(arow, k, b, post_scale, orow);
    }
  });
}

void MaskedSoftmax(Tensor* scores, float scale, const Tensor& mask, int row0) {
  const bool avx2 = UseAvx2();
  const int n = scores->cols();
  RowParallelFor(row0, scores->rows(), n, [&, avx2](int64_t r0, int64_t r1) {
    for (int64_t ri = r0; ri < r1; ++ri) {
      const int r = static_cast<int>(ri);
      SoftmaxRow(avx2, scores->row(r), mask.row(r), scale, n);
    }
  });
}

void ResidualLayerNorm(const Tensor& x, const Tensor& res, const Tensor& gain,
                       const Tensor& bias, float eps, Tensor* out, int row0,
                       int row1) {
  const bool avx2 = UseAvx2();
  const int n = x.cols();
  const float* vg = gain.row(0);
  const float* vb = bias.row(0);
  RowParallelFor(row0, row1, n, [&, avx2](int64_t r0, int64_t r1) {
    for (int64_t ri = r0; ri < r1; ++ri) {
      const int r = static_cast<int>(ri);
#if UCAD_SIMD_HAVE_AVX2
      if (avx2) {
        ResidualLayerNormRowAvx2(x.row(r), res.row(r), vg, vb, eps, n,
                                 out->row(r));
        continue;
      }
#endif
      ResidualLayerNormRowGeneric(x.row(r), res.row(r), vg, vb, eps, n,
                                  out->row(r));
    }
  });
}

void BiasRelu(Tensor* x, const Tensor& bias, int row0, int row1) {
  const int n = x->cols();
  const float* vb = bias.row(0);
  RowParallelFor(row0, row1, n, [&](int64_t r0, int64_t r1) {
    for (int64_t ri = r0; ri < r1; ++ri) {
      float* o = x->row(static_cast<int>(ri));
      for (int c = 0; c < n; ++c) o[c] = std::max(0.0f, o[c] + vb[c]);
    }
  });
}

void BiasAdd(Tensor* x, const Tensor& bias, int row0, int row1) {
  const int n = x->cols();
  const float* vb = bias.row(0);
  RowParallelFor(row0, row1, n, [&](int64_t r0, int64_t r1) {
    for (int64_t ri = r0; ri < r1; ++ri) {
      float* o = x->row(static_cast<int>(ri));
      for (int c = 0; c < n; ++c) o[c] += vb[c];
    }
  });
}

void AttnContext(const Tensor& att, int row0, const Tensor& qkv, int vcol0,
                 int hd, int ccol0, Tensor* concat) {
  const bool avx2 = UseAvx2();
  const int k = att.cols();
  constexpr int kMaxHd = 64;
  UCAD_DCHECK(hd <= kMaxHd);
  RowParallelFor(row0, att.rows(), k * hd, [&, avx2](int64_t r0, int64_t r1) {
    for (int64_t ri = r0; ri < r1; ++ri) {
      const int r = static_cast<int>(ri);
      const float* arow = att.row(r);
      float* crow = concat->row(r) + ccol0;
#if UCAD_SIMD_HAVE_AVX2
      if (avx2) {
        AttnContextRowAvx2(arow, k, hd, [&](int p) { return qkv.row(p) + vcol0; },
                           crow);
        continue;
      }
#endif
      float acc[kMaxHd] = {0.0f};
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* vrow = qkv.row(p) + vcol0;
        for (int d = 0; d < hd; ++d) acc[d] += av * vrow[d];
      }
      for (int d = 0; d < hd; ++d) crow[d] = acc[d];
    }
  });
}

void BatchedAttnHead(const Tensor& qkv, int num_windows, int L,
                     const int* rows_from, int qoff, int hd, const Tensor& kt,
                     float scale, const Tensor& mask, int voff, int ccol0,
                     Tensor* scores, Tensor* concat) {
  const bool avx2 = UseAvx2();
  const int total = num_windows * L;
  constexpr int kMaxHd = 64;
  UCAD_DCHECK(hd <= kMaxHd);
  RowParallelFor(0, total, L * (2 * hd + 2), [&, avx2](int64_t r0, int64_t r1) {
    for (int64_t gr = r0; gr < r1; ++gr) {
      const int r = static_cast<int>(gr);
      const int b = r / L;
      const int i = r - b * L;
      if (rows_from != nullptr && i < rows_from[b]) continue;
      float* o = scores->row(r);
      const float* q = qkv.row(r) + qoff;
      // Scores row: register-tiled dot over the head depth against this
      // window's kt rows. The kt block for window b starts at row b*hd, so
      // a column-contiguous view of it behaves exactly like the b matrix of
      // MatMulSlice restricted to those rows — done inline here because the
      // row base moves per window.
      {
#if UCAD_SIMD_HAVE_AVX2
        if (avx2) {
          int j = 0;
          for (; j + 8 <= L; j += 8) {
            __m256 acc = _mm256_setzero_ps();
            for (int p = 0; p < hd; ++p) {
              acc = _mm256_fmadd_ps(_mm256_set1_ps(q[p]),
                                    _mm256_loadu_ps(kt.row(b * hd + p) + j),
                                    acc);
            }
            _mm256_storeu_ps(o + j, acc);
          }
          const int rem = L - j;
          if (rem > 0) {
            const __m256i tmask = TailMask(rem);
            __m256 acc = _mm256_setzero_ps();
            for (int p = 0; p < hd; ++p) {
              acc = _mm256_fmadd_ps(
                  _mm256_set1_ps(q[p]),
                  _mm256_maskload_ps(kt.row(b * hd + p) + j, tmask), acc);
            }
            _mm256_maskstore_ps(o + j, tmask, acc);
          }
        } else {
#endif
          constexpr int kTile = 16;
          int j = 0;
          for (; j < L; j += kTile) {
            const int jn = std::min(kTile, L - j);
            float acc[kTile] = {0.0f};
            for (int p = 0; p < hd; ++p) {
              const float av = q[p];
              const float* __restrict__ brow = kt.row(b * hd + p) + j;
              for (int jj = 0; jj < jn; ++jj) acc[jj] += av * brow[jj];
            }
            for (int jj = 0; jj < jn; ++jj) o[j + jj] = acc[jj];
          }
#if UCAD_SIMD_HAVE_AVX2
        }
#endif
      }
      SoftmaxRow(avx2, o, mask.row(i), scale, L);
      const int vbase = b * L;
      float* crow = concat->row(r) + ccol0;
#if UCAD_SIMD_HAVE_AVX2
      if (avx2) {
        AttnContextRowAvx2(
            o, L, hd, [&](int p) { return qkv.row(vbase + p) + voff; }, crow);
        continue;
      }
#endif
      float acc[kMaxHd] = {0.0f};
      for (int p = 0; p < L; ++p) {
        const float av = o[p];
        const float* vrow = qkv.row(vbase + p) + voff;
        for (int d = 0; d < hd; ++d) acc[d] += av * vrow[d];
      }
      for (int d = 0; d < hd; ++d) crow[d] = acc[d];
    }
  });
}

}  // namespace fast

// ---- int8 quantized GEMM ---------------------------------------------------

void QuantizeWeightRows(const Tensor& src, bool transpose,
                        QuantizedWeight* out) {
  const int rows = transpose ? src.cols() : src.rows();
  const int cols = transpose ? src.rows() : src.cols();
  out->rows = rows;
  out->cols = cols;
  out->padded_cols = (cols + 31) / 32 * 32;
  out->data.assign(static_cast<size_t>(rows) * out->padded_cols, 0);
  out->scales.assign(static_cast<size_t>(rows), 0.0f);
  float worst = 0.0f;
  for (int r = 0; r < rows; ++r) {
    const auto at = [&](int c) {
      return transpose ? src.at(c, r) : src.at(r, c);
    };
    float amax = 0.0f;
    for (int c = 0; c < cols; ++c) amax = std::max(amax, std::fabs(at(c)));
    if (amax == 0.0f) continue;  // all-zero row (padding): scale 0, q = 0
    const float scale = amax / 127.0f;
    const float inv = 127.0f / amax;
    out->scales[static_cast<size_t>(r)] = scale;
    int8_t* qrow = out->data.data() + static_cast<size_t>(r) * out->padded_cols;
    for (int c = 0; c < cols; ++c) {
      const float v = at(c);
      int q = static_cast<int>(std::lround(v * inv));
      q = std::min(127, std::max(-127, q));
      qrow[c] = static_cast<int8_t>(q);
      worst = std::max(worst, std::fabs(static_cast<float>(q) * scale - v));
    }
  }
  out->max_abs_err = worst;
  internal::NoteQuantWeightError(worst);
}

namespace {

#if UCAD_SIMD_HAVE_AVX2

/// int8 x int8 -> int32 dot over a 32-padded depth: widen each 16-lane
/// half to int16 and vpmaddwd into int32 accumulators. Operand magnitudes
/// are <= 127, so the pairwise int16 products (<= 16129) and the <= depth/2
/// int32 partials are nowhere near overflow.
inline int32_t DotI8Avx2(const int8_t* x, const int8_t* y, int kp) {
  __m256i acc = _mm256_setzero_si256();
  for (int c = 0; c + 32 <= kp; c += 32) {
    const __m256i xv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + c));
    const __m256i yv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + c));
    const __m256i xlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
    const __m256i xhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
    const __m256i ylo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(yv));
    const __m256i yhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(yv, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xlo, ylo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xhi, yhi));
  }
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_add_epi32(lo, _mm_unpackhi_epi64(lo, lo));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, 1));
  return _mm_cvtsi128_si32(lo);
}

#endif  // UCAD_SIMD_HAVE_AVX2

inline int32_t DotI8Generic(const int8_t* x, const int8_t* y, int kp) {
  int32_t acc = 0;
  for (int c = 0; c < kp; ++c) {
    acc += static_cast<int32_t>(x[c]) * static_cast<int32_t>(y[c]);
  }
  return acc;
}

}  // namespace

void Int8GemmKernel(const Tensor& a, int acol0, int k, const QuantizedWeight& w,
                    int row0, Tensor* out, float post_scale, int row1) {
  UCAD_DCHECK(w.cols == k);
  UCAD_DCHECK(acol0 >= 0 && acol0 + k <= a.cols());
  UCAD_DCHECK(out->rows() == a.rows() && out->cols() == w.rows);
  const int end = row1 < 0 ? a.rows() : row1;
  UCAD_DCHECK(row0 >= 0 && row0 <= end && end <= a.rows());
  const bool avx2 = UseAvx2();
  const int kp = w.padded_cols;
  const int n = w.rows;
  RowParallelFor(row0, end, k * n, [&, avx2](int64_t r0, int64_t r1) {
    constexpr int kInlineK = 256;
    alignas(32) int8_t inline_aq[kInlineK];
    std::vector<int8_t> heap_aq;
    int8_t* aq = inline_aq;
    if (kp > kInlineK) {
      heap_aq.assign(static_cast<size_t>(kp), 0);
      aq = heap_aq.data();
    }
    std::memset(aq, 0, static_cast<size_t>(kp));
    float worst_err = 0.0f;
    for (int64_t ri = r0; ri < r1; ++ri) {
      const int r = static_cast<int>(ri);
      const float* arow = a.row(r) + acol0;
      float* orow = out->row(r);
      float amax = 0.0f;
      for (int c = 0; c < k; ++c) amax = std::max(amax, std::fabs(arow[c]));
      if (amax == 0.0f) {
        for (int j = 0; j < n; ++j) orow[j] = 0.0f;
        continue;
      }
      const float ascale = amax / 127.0f;
      const float inv = 127.0f / amax;
      for (int c = 0; c < k; ++c) {
        int q = static_cast<int>(std::lround(arow[c] * inv));
        q = std::min(127, std::max(-127, q));
        aq[c] = static_cast<int8_t>(q);
        worst_err = std::max(
            worst_err, std::fabs(static_cast<float>(q) * ascale - arow[c]));
      }
      const float s = ascale * post_scale;
      const int8_t* wdata = w.data.data();
      const float* wscales = w.scales.data();
#if UCAD_SIMD_HAVE_AVX2
      if (avx2) {
        for (int j = 0; j < n; ++j) {
          const int32_t acc =
              DotI8Avx2(aq, wdata + static_cast<size_t>(j) * kp, kp);
          orow[j] = static_cast<float>(acc) * (s * wscales[j]);
        }
        continue;
      }
#endif
      for (int j = 0; j < n; ++j) {
        const int32_t acc =
            DotI8Generic(aq, wdata + static_cast<size_t>(j) * kp, kp);
        orow[j] = static_cast<float>(acc) * (s * wscales[j]);
      }
    }
    MaxUpdate(&g_quant_act_err_bits, worst_err);
    g_int8_rows_total.fetch_add(static_cast<uint64_t>(r1 - r0),
                                std::memory_order_relaxed);
  });
}

namespace internal {

double QuantWeightMaxAbsErr() {
  return static_cast<double>(LoadErr(g_quant_weight_err_bits));
}

double QuantActMaxAbsErr() {
  return static_cast<double>(LoadErr(g_quant_act_err_bits));
}

uint64_t Int8GemmRowsTotal() {
  return g_int8_rows_total.load(std::memory_order_relaxed);
}

void NoteQuantWeightError(float max_abs_err) {
  MaxUpdate(&g_quant_weight_err_bits, max_abs_err);
}

}  // namespace internal

}  // namespace ucad::nn
