#ifndef UCAD_NN_OPTIMIZER_H_
#define UCAD_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tape.h"
#include "nn/tensor.h"

namespace ucad::nn {

/// Abstract optimizer over a fixed set of parameters. Step() consumes the
/// accumulated gradients and clears them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients, then zeroes them.
  virtual void Step() = 0;

  /// Clears accumulated gradients without updating.
  void ZeroGrad();

  /// Global L2 norm of the accumulated gradients (training-health signal).
  double GradNorm() const;

  /// Clips gradients to a global L2 norm (0 disables). Call before Step().
  /// Returns the pre-clip global norm (0 when clipping is disabled), so
  /// callers logging gradient health don't pay a second pass.
  double ClipGradNorm(float max_norm);

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

/// Plain SGD with optional momentum and decoupled L2 weight decay. With
/// weight decay > 0 this realizes the ||θ||₂ term of the paper's loss
/// (Eq. 11): for SGD, L2-in-the-loss and weight decay are equivalent.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with optional L2 weight decay added to the gradient.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace ucad::nn

#endif  // UCAD_NN_OPTIMIZER_H_
