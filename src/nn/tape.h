#ifndef UCAD_NN_TAPE_H_
#define UCAD_NN_TAPE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace ucad::obs {
class MetricsRegistry;
}  // namespace ucad::obs

namespace ucad::nn {

/// Handle to a node on a Tape.
using VarId = int;

/// Kind tag recorded on every tape node; keys the per-op profiler and the
/// per-op-kind metric labels. kCount is a sentinel, never recorded.
enum class OpKind : uint8_t {
  kConstant,
  kLeaf,
  kParam,
  kAdd,
  kSub,
  kMul,
  kAddRowVector,
  kMulRowVector,
  kScale,
  kAddScalar,
  kRelu,
  kSigmoid,
  kTanh,
  kLogSigmoid,
  kMatMul,
  kTranspose,
  kSliceCols,
  kConcatCols,
  kConcatRows,
  kRow,
  kSumRows,
  kSumAll,
  kSoftmaxRows,
  kLayerNormRows,
  kDropout,
  kEmbeddingGather,
  kSoftmaxCrossEntropy,
  kCount,
};

/// Stable lowercase identifier ("matmul", "softmax_rows", ...) used for
/// metric labels and the profile table.
const char* OpKindName(OpKind kind);

/// One aggregated row of the per-op profile.
struct OpProfile {
  OpKind kind = OpKind::kCount;
  const char* name = "";
  uint64_t calls = 0;           ///< forward executions
  uint64_t backward_calls = 0;  ///< backward closure executions
  double forward_ms = 0.0;
  double backward_ms = 0.0;
  uint64_t flops = 0;  ///< estimated forward FLOPs (2mkn for matmul, ...)
  uint64_t bytes = 0;  ///< estimated bytes touched by the forward pass
  double TotalMs() const { return forward_ms + backward_ms; }
};

/// Process-wide per-op profiler in the style of torch.autograd.profiler:
/// aggregates forward/backward wall time, call counts, and estimated
/// FLOPs/bytes per OpKind. Off by default — a disabled op costs one relaxed
/// atomic load; enabling adds two steady_clock reads per op execution.
/// Thread-safe (relaxed atomic accumulators).
class TapeProfiler {
 public:
  static void SetEnabled(bool enabled);
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Zeroes every accumulator (does not change the enabled flag).
  static void Reset();

  static void RecordForward(OpKind kind, int64_t dur_ns, uint64_t flops,
                            uint64_t bytes);
  static void RecordBackward(OpKind kind, int64_t dur_ns);

  /// Rows with at least one call, sorted by total (fwd+bwd) time descending.
  static std::vector<OpProfile> Snapshot();

  /// Column-aligned profile table (op, calls, fwd/bwd/total ms, % of total,
  /// MFLOP, GFLOP/s, MB). Empty-string when nothing was recorded.
  static std::string FormatTable();

  /// Publishes the snapshot into `registry` as per-op labeled series:
  /// nn/op/calls{op=...}, nn/op/forward_ms{op=...}, nn/op/backward_ms{op=...},
  /// nn/op/flops{op=...}, nn/op/bytes{op=...}.
  static void ExportTo(obs::MetricsRegistry* registry);

 private:
  static std::atomic<bool> enabled_;
};

/// A trainable tensor that persists across training steps. Gradients
/// accumulate into grad() when a Tape referencing the parameter runs
/// Backward(); optimizers consume and clear them.
class Parameter {
 public:
  /// Empty parameter (0x0); assign a real one before use.
  Parameter() = default;

  /// Wraps an initial value; the gradient starts at zero with same shape.
  explicit Parameter(Tensor value)
      : value_(std::move(value)), grad_(value_.rows(), value_.cols()) {}

  Tensor& value() { return value_; }
  const Tensor& value() const { return value_; }
  Tensor& grad() { return grad_; }
  const Tensor& grad() const { return grad_; }

  /// Clears the accumulated gradient.
  void ZeroGrad() { grad_.SetZero(); }

 private:
  Tensor value_;
  Tensor grad_;
};

/// Reverse-mode automatic differentiation tape. A Tape is built per
/// training step: leaf nodes are created from constants or Parameters, ops
/// append nodes recording their backward functions, and Backward() runs the
/// chain rule from a scalar root, accumulating parameter gradients.
///
/// Tapes are reusable: Reset() clears the recorded graph while retaining
/// node capacity and recycling every value/gradient/auxiliary tensor through
/// an internal shape-keyed pool, so a tape that replays the same graph
/// structure (the trainer's per-window loop) performs zero tensor
/// allocations at steady state.
///
/// All ops are 2D; see individual methods for shape contracts. The tape is
/// not thread-safe and not copyable.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Clears the graph for reuse: drops all nodes and backward closures but
  /// keeps the node vector's capacity and moves every tensor (values,
  /// gradients, op scratch buffers) into the internal pool, where the next
  /// graph's ops reacquire them by shape. Existing VarIds become invalid.
  void Reset();

  // ---- Leaves ----

  /// Non-differentiable input (gradients are still propagated *through*
  /// downstream ops but not into this node's producers — it has none).
  VarId Constant(const Tensor& value);

  /// Differentiable leaf whose gradient can be inspected after Backward().
  VarId Leaf(const Tensor& value);

  /// Leaf bound to a Parameter: after Backward(), the node's gradient is
  /// added into `param->grad()`. The value is copied at call time.
  VarId Param(Parameter* param);

  // ---- Elementwise / arithmetic ----

  /// a + b (same shape).
  VarId Add(VarId a, VarId b);
  /// a - b (same shape).
  VarId Sub(VarId a, VarId b);
  /// a ⊙ b (same shape).
  VarId Mul(VarId a, VarId b);
  /// a + row-broadcast bias; bias is [1 x n], a is [m x n].
  VarId AddRowVector(VarId a, VarId bias);
  /// a ⊙ row-broadcast scale; scale is [1 x n], a is [m x n].
  VarId MulRowVector(VarId a, VarId scale);
  /// c * a.
  VarId Scale(VarId a, float c);
  /// a + c (elementwise).
  VarId AddScalar(VarId a, float c);
  /// max(a, 0).
  VarId Relu(VarId a);
  /// 1 / (1 + exp(-a)).
  VarId Sigmoid(VarId a);
  /// tanh(a).
  VarId Tanh(VarId a);
  /// log(sigmoid(a)), computed stably as -softplus(-a).
  VarId LogSigmoid(VarId a);

  // ---- Linear algebra / shape ----

  /// [m x k] * [k x n] -> [m x n].
  VarId MatMul(VarId a, VarId b);
  /// a^T.
  VarId Transpose(VarId a);
  /// Columns [start, start+len) of a.
  VarId SliceCols(VarId a, int start, int len);
  /// Horizontal concatenation (equal row counts).
  VarId ConcatCols(const std::vector<VarId>& parts);
  /// Vertical concatenation (equal column counts).
  VarId ConcatRows(const std::vector<VarId>& parts);
  /// Row r of a as [1 x n].
  VarId Row(VarId a, int r);

  // ---- Reductions ----

  /// Row sums: [m x n] -> [m x 1].
  VarId SumRows(VarId a);
  /// Sum of all entries -> [1 x 1].
  VarId SumAll(VarId a);
  /// Mean of all entries -> [1 x 1].
  VarId MeanAll(VarId a);

  // ---- Structured ops ----

  /// Row-wise softmax.
  VarId SoftmaxRows(VarId a);

  /// Row-wise layer normalization with learnable gain/bias ([1 x n] each):
  /// y = gain ⊙ (x - mean) / sqrt(var + eps) + bias   (paper Eq. 6).
  VarId LayerNormRows(VarId x, VarId gain, VarId bias, float eps = 1e-5f);

  /// Inverted dropout: scales kept entries by 1/(1-rate) during training;
  /// identity in inference mode or when rate == 0.
  VarId Dropout(VarId a, float rate, bool training, util::Rng* rng);

  /// Gathers rows of `table` ([V x h]) at `indices` -> [|indices| x h].
  /// Backward scatter-adds into the table gradient.
  VarId EmbeddingGather(VarId table, std::vector<int> indices);

  /// Mean softmax cross-entropy over rows: logits [m x V], targets[i] in
  /// [0, V). Returns [1 x 1]. Fused for numerical stability.
  VarId SoftmaxCrossEntropy(VarId logits, std::vector<int> targets);

  // ---- Execution ----

  /// Per-Parameter gradient accumulation target for Backward with an
  /// explicit sink (data-parallel training builds one map per concurrently
  /// processed window and merges them in a fixed order before the
  /// optimizer step). Entries are created zero-initialized on first touch.
  using ParamGradMap = std::unordered_map<Parameter*, Tensor>;

  /// Runs reverse-mode differentiation from `root` (must be [1 x 1]) and
  /// accumulates gradients into every bound Parameter.
  void Backward(VarId root);

  /// As Backward(root), but parameter gradients accumulate into `*sink`
  /// instead of Parameter::grad(), so concurrent tapes over the same model
  /// never write shared state. Null sink behaves like Backward(root).
  void Backward(VarId root, ParamGradMap* sink);

  /// Node value / gradient access. Gradients are valid after Backward().
  const Tensor& value(VarId v) const;
  const Tensor& grad(VarId v) const;

  /// Number of nodes recorded so far.
  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    Tensor value;
    Tensor grad;  // allocated lazily during Backward
    std::function<void()> backward;  // may be empty (leaves/constants)
    Parameter* param = nullptr;
    OpKind kind = OpKind::kConstant;  // keys profiling + per-op metrics
  };

  VarId NewNode(OpKind kind, Tensor value,
                std::function<void()> backward = nullptr);
  Tensor& MutableGrad(VarId v);
  void EnsureGrad(VarId v);

  // ---- Tensor recycling (Reset support) ----

  /// Pops a [rows x cols] tensor from the pool (or allocates one). When
  /// `zero` is set the contents are cleared; otherwise they are unspecified
  /// and the caller must fully overwrite them.
  Tensor AcquireTensor(int rows, int cols, bool zero);
  /// Pooled tensor holding a copy of `src`.
  Tensor AcquireCopy(const Tensor& src);
  /// Pooled tensor wrapped so destruction (closure teardown / Reset)
  /// returns the storage to the pool. Contents unspecified.
  std::shared_ptr<Tensor> AcquireShared(int rows, int cols);
  void ReleaseTensor(Tensor&& t);

  /// Declared before nodes_ so it outlives the backward closures, whose
  /// shared scratch buffers release into the pool on destruction.
  std::unordered_map<uint64_t, std::vector<Tensor>> pool_;
  std::vector<Node> nodes_;
};

}  // namespace ucad::nn

#endif  // UCAD_NN_TAPE_H_
