#ifndef UCAD_NN_PARALLEL_THRESHOLDS_H_
#define UCAD_NN_PARALLEL_THRESHOLDS_H_

#include <cstdint>

namespace ucad::nn {

/// Shared work thresholds for elementwise / row-partitioned forward kernels.
/// Both engines — the autograd tape (tape.cc) and the tape-free inference
/// engine (infer.cc) — dispatch through the global thread pool above exactly
/// these limits, so a kernel that is parallel on one engine is parallel on
/// the other and parallel==serial stays bitwise on both (row and element
/// partitions never change accumulation order).
///
/// Elementwise forwards fan out across the pool only above this element
/// count (per the PR-2 TapeProfiler, smaller activations are dominated by
/// dispatch overhead); chunks hold at least kParallelElemwiseGrain elements.
constexpr int64_t kParallelElemwiseMin = int64_t{1} << 16;
constexpr int64_t kParallelElemwiseGrain = int64_t{1} << 14;

}  // namespace ucad::nn

#endif  // UCAD_NN_PARALLEL_THRESHOLDS_H_
