#ifndef UCAD_NN_PARALLEL_THRESHOLDS_H_
#define UCAD_NN_PARALLEL_THRESHOLDS_H_

#include <algorithm>
#include <cstdint>
#include <utility>

#include "util/thread_pool.h"

namespace ucad::nn {

/// Shared work thresholds for elementwise / row-partitioned forward kernels.
/// Both engines — the autograd tape (tape.cc) and the tape-free inference
/// engine (infer.cc) — dispatch through the global thread pool above exactly
/// these limits, so a kernel that is parallel on one engine is parallel on
/// the other and parallel==serial stays bitwise on both (row and element
/// partitions never change accumulation order).
///
/// Elementwise forwards fan out across the pool only above this element
/// count (per the PR-2 TapeProfiler, smaller activations are dominated by
/// dispatch overhead); chunks hold at least kParallelElemwiseGrain elements.
constexpr int64_t kParallelElemwiseMin = int64_t{1} << 16;
constexpr int64_t kParallelElemwiseGrain = int64_t{1} << 14;

/// Mirrors the tape's row-partition dispatch gate (SoftmaxRows): fan out
/// only when the row range clears the elementwise threshold and there is
/// more than one row to split. Rows are independent in every kernel that
/// uses this, so the partition never changes accumulation order. Templated
/// on the callable so the (overwhelmingly common) serial path never
/// materializes a std::function — at repro dims that is ~40 closure heap
/// allocations per window otherwise. Shared by the reference kernels
/// (infer.cc) and the relaxed tier (simd.cc), so a kernel that is parallel
/// on one tier is parallel on the other.
template <typename Fn>
void RowParallelFor(int row0, int rows, int cols, Fn&& fn) {
  const int64_t size = static_cast<int64_t>(rows - row0) * cols;
  if (size >= kParallelElemwiseMin && rows - row0 > 1 &&
      util::NumThreads() > 1) {
    const int64_t grain = std::max<int64_t>(1, kParallelElemwiseGrain / cols);
    util::ParallelFor(row0, rows, grain, std::forward<Fn>(fn));
  } else {
    fn(row0, rows);
  }
}

}  // namespace ucad::nn

#endif  // UCAD_NN_PARALLEL_THRESHOLDS_H_
