#include "nn/tape.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "nn/parallel_thresholds.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ucad::nn {

namespace {

constexpr size_t kNumOpKinds = static_cast<size_t>(OpKind::kCount);

/// Relaxed-atomic accumulators, one slot per OpKind. Never destroyed.
struct OpAccum {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> backward_calls{0};
  std::atomic<int64_t> forward_ns{0};
  std::atomic<int64_t> backward_ns{0};
  std::atomic<uint64_t> flops{0};
  std::atomic<uint64_t> bytes{0};
};

OpAccum g_op_accums[kNumOpKinds];

int64_t ProfNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// RAII forward-pass timer for one op. Latches the enabled flag at entry so
/// a mid-op toggle cannot record a garbage duration.
class OpScope {
 public:
  explicit OpScope(OpKind kind) {
    if (TapeProfiler::Enabled()) {
      kind_ = kind;
      active_ = true;
      start_ns_ = ProfNowNs();
    }
  }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  /// Estimated forward FLOPs / bytes touched; call before scope exit.
  void SetCost(uint64_t flops, uint64_t bytes) {
    flops_ = flops;
    bytes_ = bytes;
  }

  ~OpScope() {
    if (active_) {
      TapeProfiler::RecordForward(kind_, ProfNowNs() - start_ns_, flops_,
                                  bytes_);
    }
  }

 private:
  OpKind kind_ = OpKind::kCount;
  bool active_ = false;
  int64_t start_ns_ = 0;
  uint64_t flops_ = 0;
  uint64_t bytes_ = 0;
};

/// sizeof(float) as uint64 so byte estimates don't overflow int.
constexpr uint64_t kF = sizeof(float);

/// Runs fn(i0, i1) over [0, size) — split across the pool when the tensor
/// is large enough, inline otherwise.
void ElemwiseFor(int64_t size,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (size >= kParallelElemwiseMin && util::NumThreads() > 1) {
    util::ParallelFor(0, size, kParallelElemwiseGrain, fn);
  } else {
    fn(0, size);
  }
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string FormatDouble2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kConstant:
      return "constant";
    case OpKind::kLeaf:
      return "leaf";
    case OpKind::kParam:
      return "param";
    case OpKind::kAdd:
      return "add";
    case OpKind::kSub:
      return "sub";
    case OpKind::kMul:
      return "mul";
    case OpKind::kAddRowVector:
      return "add_row_vector";
    case OpKind::kMulRowVector:
      return "mul_row_vector";
    case OpKind::kScale:
      return "scale";
    case OpKind::kAddScalar:
      return "add_scalar";
    case OpKind::kRelu:
      return "relu";
    case OpKind::kSigmoid:
      return "sigmoid";
    case OpKind::kTanh:
      return "tanh";
    case OpKind::kLogSigmoid:
      return "log_sigmoid";
    case OpKind::kMatMul:
      return "matmul";
    case OpKind::kTranspose:
      return "transpose";
    case OpKind::kSliceCols:
      return "slice_cols";
    case OpKind::kConcatCols:
      return "concat_cols";
    case OpKind::kConcatRows:
      return "concat_rows";
    case OpKind::kRow:
      return "row";
    case OpKind::kSumRows:
      return "sum_rows";
    case OpKind::kSumAll:
      return "sum_all";
    case OpKind::kSoftmaxRows:
      return "softmax_rows";
    case OpKind::kLayerNormRows:
      return "layer_norm_rows";
    case OpKind::kDropout:
      return "dropout";
    case OpKind::kEmbeddingGather:
      return "embedding_gather";
    case OpKind::kSoftmaxCrossEntropy:
      return "softmax_cross_entropy";
    case OpKind::kCount:
      break;
  }
  return "unknown";
}

std::atomic<bool> TapeProfiler::enabled_{false};

void TapeProfiler::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void TapeProfiler::Reset() {
  for (OpAccum& a : g_op_accums) {
    a.calls.store(0, std::memory_order_relaxed);
    a.backward_calls.store(0, std::memory_order_relaxed);
    a.forward_ns.store(0, std::memory_order_relaxed);
    a.backward_ns.store(0, std::memory_order_relaxed);
    a.flops.store(0, std::memory_order_relaxed);
    a.bytes.store(0, std::memory_order_relaxed);
  }
}

void TapeProfiler::RecordForward(OpKind kind, int64_t dur_ns, uint64_t flops,
                                 uint64_t bytes) {
  OpAccum& a = g_op_accums[static_cast<size_t>(kind)];
  a.calls.fetch_add(1, std::memory_order_relaxed);
  a.forward_ns.fetch_add(dur_ns, std::memory_order_relaxed);
  a.flops.fetch_add(flops, std::memory_order_relaxed);
  a.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void TapeProfiler::RecordBackward(OpKind kind, int64_t dur_ns) {
  OpAccum& a = g_op_accums[static_cast<size_t>(kind)];
  a.backward_calls.fetch_add(1, std::memory_order_relaxed);
  a.backward_ns.fetch_add(dur_ns, std::memory_order_relaxed);
}

std::vector<OpProfile> TapeProfiler::Snapshot() {
  std::vector<OpProfile> rows;
  for (size_t k = 0; k < kNumOpKinds; ++k) {
    const OpAccum& a = g_op_accums[k];
    OpProfile row;
    row.kind = static_cast<OpKind>(k);
    row.name = OpKindName(row.kind);
    row.calls = a.calls.load(std::memory_order_relaxed);
    row.backward_calls = a.backward_calls.load(std::memory_order_relaxed);
    row.forward_ms = a.forward_ns.load(std::memory_order_relaxed) * 1e-6;
    row.backward_ms = a.backward_ns.load(std::memory_order_relaxed) * 1e-6;
    row.flops = a.flops.load(std::memory_order_relaxed);
    row.bytes = a.bytes.load(std::memory_order_relaxed);
    if (row.calls == 0 && row.backward_calls == 0) continue;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const OpProfile& x, const OpProfile& y) {
    return x.TotalMs() > y.TotalMs();
  });
  return rows;
}

std::string TapeProfiler::FormatTable() {
  const std::vector<OpProfile> rows = Snapshot();
  if (rows.empty()) return "";
  double grand_total_ms = 0.0;
  for (const OpProfile& r : rows) grand_total_ms += r.TotalMs();
  util::TablePrinter table(
      {"op", "calls", "fwd ms", "bwd ms", "total ms", "%", "MFLOP", "GFLOP/s",
       "MB"});
  for (const OpProfile& r : rows) {
    const double pct =
        grand_total_ms > 0.0 ? 100.0 * r.TotalMs() / grand_total_ms : 0.0;
    const double mflop = static_cast<double>(r.flops) * 1e-6;
    const double gflops =
        r.forward_ms > 0.0
            ? static_cast<double>(r.flops) / (r.forward_ms * 1e-3) * 1e-9
            : 0.0;
    table.AddRow({r.name, std::to_string(r.calls), FormatMs(r.forward_ms),
                  FormatMs(r.backward_ms), FormatMs(r.TotalMs()),
                  FormatDouble2(pct), FormatDouble2(mflop),
                  FormatDouble2(gflops),
                  FormatDouble2(static_cast<double>(r.bytes) / (1 << 20))});
  }
  return table.ToString();
}

void TapeProfiler::ExportTo(obs::MetricsRegistry* registry) {
  for (const OpProfile& r : Snapshot()) {
    const obs::Labels labels = {{"op", r.name}};
    registry->GetCounter("nn/op/calls", labels)->Increment(r.calls);
    registry->GetCounter("nn/op/backward_calls", labels)
        ->Increment(r.backward_calls);
    registry->GetGauge("nn/op/forward_ms", labels)->Set(r.forward_ms);
    registry->GetGauge("nn/op/backward_ms", labels)->Set(r.backward_ms);
    registry->GetCounter("nn/op/flops", labels)->Increment(r.flops);
    registry->GetCounter("nn/op/bytes", labels)->Increment(r.bytes);
  }
}

namespace {

/// Pool bucket key: one freelist per tensor shape.
uint64_t ShapeKey(int rows, int cols) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(rows)) << 32) |
         static_cast<uint32_t>(cols);
}

}  // namespace

VarId Tape::NewNode(OpKind kind, Tensor value, std::function<void()> backward) {
  nodes_.push_back(Node{std::move(value), Tensor(), std::move(backward),
                        /*param=*/nullptr, kind});
  return static_cast<VarId>(nodes_.size() - 1);
}

Tensor& Tape::MutableGrad(VarId v) {
  EnsureGrad(v);
  return nodes_[v].grad;
}

void Tape::EnsureGrad(VarId v) {
  Node& node = nodes_[v];
  if (!node.grad.SameShape(node.value)) {
    node.grad = AcquireTensor(node.value.rows(), node.value.cols(),
                              /*zero=*/true);
  }
}

Tensor Tape::AcquireTensor(int rows, int cols, bool zero) {
  auto it = pool_.find(ShapeKey(rows, cols));
  if (it == pool_.end() || it->second.empty()) {
    return Tensor(rows, cols);  // zero-initialized by construction
  }
  Tensor t = std::move(it->second.back());
  it->second.pop_back();
  if (zero) t.SetZero();
  return t;
}

Tensor Tape::AcquireCopy(const Tensor& src) {
  Tensor t = AcquireTensor(src.rows(), src.cols(), /*zero=*/false);
  std::copy(src.data(), src.data() + src.size(), t.data());
  return t;
}

std::shared_ptr<Tensor> Tape::AcquireShared(int rows, int cols) {
  // The deleter recycles the storage; pool_ is declared before nodes_, so
  // it outlives every closure that captured the pointer.
  return std::shared_ptr<Tensor>(
      new Tensor(AcquireTensor(rows, cols, /*zero=*/false)),
      [this](Tensor* t) {
        ReleaseTensor(std::move(*t));
        delete t;
      });
}

void Tape::ReleaseTensor(Tensor&& t) {
  if (t.size() == 0) return;
  pool_[ShapeKey(t.rows(), t.cols())].push_back(std::move(t));
}

void Tape::Reset() {
  for (Node& node : nodes_) {
    node.backward = nullptr;  // frees shared op scratch back into the pool
    ReleaseTensor(std::move(node.value));
    ReleaseTensor(std::move(node.grad));
    node.param = nullptr;
  }
  nodes_.clear();  // keeps the node vector's capacity
}

const Tensor& Tape::value(VarId v) const {
  UCAD_DCHECK(v >= 0 && v < static_cast<VarId>(nodes_.size()));
  return nodes_[v].value;
}

const Tensor& Tape::grad(VarId v) const {
  UCAD_DCHECK(v >= 0 && v < static_cast<VarId>(nodes_.size()));
  return nodes_[v].grad;
}

VarId Tape::Constant(const Tensor& value) {
  return NewNode(OpKind::kConstant, AcquireCopy(value));
}

VarId Tape::Leaf(const Tensor& value) {
  return NewNode(OpKind::kLeaf, AcquireCopy(value));
}

VarId Tape::Param(Parameter* param) {
  OpScope prof(OpKind::kParam);
  prof.SetCost(0, 2 * kF * param->value().size());
  VarId v = NewNode(OpKind::kParam, AcquireCopy(param->value()));
  nodes_[v].param = param;
  return v;
}

VarId Tape::Add(VarId a, VarId b) {
  OpScope prof(OpKind::kAdd);
  UCAD_CHECK(value(a).SameShape(value(b)));
  Tensor out = AcquireCopy(value(a));
  out.AddInPlace(value(b));
  prof.SetCost(out.size(), 3 * kF * out.size());
  VarId v = NewNode(OpKind::kAdd, std::move(out));
  nodes_[v].backward = [this, v, a, b]() {
    MutableGrad(a).AddInPlace(grad(v));
    MutableGrad(b).AddInPlace(grad(v));
  };
  return v;
}

VarId Tape::Sub(VarId a, VarId b) {
  OpScope prof(OpKind::kSub);
  UCAD_CHECK(value(a).SameShape(value(b)));
  Tensor out = AcquireCopy(value(a));
  out.AddScaled(value(b), -1.0f);
  prof.SetCost(out.size(), 3 * kF * out.size());
  VarId v = NewNode(OpKind::kSub, std::move(out));
  nodes_[v].backward = [this, v, a, b]() {
    MutableGrad(a).AddInPlace(grad(v));
    MutableGrad(b).AddScaled(grad(v), -1.0f);
  };
  return v;
}

VarId Tape::Mul(VarId a, VarId b) {
  OpScope prof(OpKind::kMul);
  UCAD_CHECK(value(a).SameShape(value(b)));
  const Tensor& va = value(a);
  const Tensor& vb = value(b);
  Tensor out = AcquireTensor(va.rows(), va.cols(), /*zero=*/false);
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = va.data()[i] * vb.data()[i];
  }
  prof.SetCost(out.size(), 3 * kF * out.size());
  VarId v = NewNode(OpKind::kMul, std::move(out));
  nodes_[v].backward = [this, v, a, b]() {
    const Tensor& g = grad(v);
    const Tensor& va2 = value(a);
    const Tensor& vb2 = value(b);
    Tensor& ga = MutableGrad(a);
    Tensor& gb = MutableGrad(b);
    for (size_t i = 0; i < g.size(); ++i) {
      ga.data()[i] += g.data()[i] * vb2.data()[i];
      gb.data()[i] += g.data()[i] * va2.data()[i];
    }
  };
  return v;
}

VarId Tape::AddRowVector(VarId a, VarId bias) {
  OpScope prof(OpKind::kAddRowVector);
  const Tensor& va = value(a);
  const Tensor& vb = value(bias);
  UCAD_CHECK_EQ(vb.rows(), 1);
  UCAD_CHECK_EQ(vb.cols(), va.cols());
  Tensor out = AcquireCopy(va);
  for (int r = 0; r < out.rows(); ++r) {
    float* orow = out.row(r);
    for (int c = 0; c < out.cols(); ++c) orow[c] += vb.at(0, c);
  }
  prof.SetCost(out.size(), 2 * kF * out.size());
  VarId v = NewNode(OpKind::kAddRowVector, std::move(out));
  nodes_[v].backward = [this, v, a, bias]() {
    const Tensor& g = grad(v);
    MutableGrad(a).AddInPlace(g);
    Tensor& gb = MutableGrad(bias);
    for (int r = 0; r < g.rows(); ++r) {
      const float* grow = g.row(r);
      for (int c = 0; c < g.cols(); ++c) gb.at(0, c) += grow[c];
    }
  };
  return v;
}

VarId Tape::MulRowVector(VarId a, VarId scale) {
  OpScope prof(OpKind::kMulRowVector);
  const Tensor& va = value(a);
  const Tensor& vs = value(scale);
  UCAD_CHECK_EQ(vs.rows(), 1);
  UCAD_CHECK_EQ(vs.cols(), va.cols());
  Tensor out = AcquireCopy(va);
  for (int r = 0; r < out.rows(); ++r) {
    float* orow = out.row(r);
    for (int c = 0; c < out.cols(); ++c) orow[c] *= vs.at(0, c);
  }
  prof.SetCost(out.size(), 2 * kF * out.size());
  VarId v = NewNode(OpKind::kMulRowVector, std::move(out));
  nodes_[v].backward = [this, v, a, scale]() {
    const Tensor& g = grad(v);
    const Tensor& va2 = value(a);
    const Tensor& vs2 = value(scale);
    Tensor& ga = MutableGrad(a);
    Tensor& gs = MutableGrad(scale);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < g.cols(); ++c) {
        ga.at(r, c) += g.at(r, c) * vs2.at(0, c);
        gs.at(0, c) += g.at(r, c) * va2.at(r, c);
      }
    }
  };
  return v;
}

VarId Tape::Scale(VarId a, float c) {
  OpScope prof(OpKind::kScale);
  Tensor out = AcquireCopy(value(a));
  out.Scale(c);
  prof.SetCost(out.size(), 2 * kF * out.size());
  VarId v = NewNode(OpKind::kScale, std::move(out));
  nodes_[v].backward = [this, v, a, c]() {
    MutableGrad(a).AddScaled(grad(v), c);
  };
  return v;
}

VarId Tape::AddScalar(VarId a, float c) {
  OpScope prof(OpKind::kAddScalar);
  Tensor out = AcquireCopy(value(a));
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] += c;
  prof.SetCost(out.size(), 2 * kF * out.size());
  VarId v = NewNode(OpKind::kAddScalar, std::move(out));
  nodes_[v].backward = [this, v, a]() {
    MutableGrad(a).AddInPlace(grad(v));
  };
  return v;
}

VarId Tape::Relu(VarId a) {
  OpScope prof(OpKind::kRelu);
  Tensor out = AcquireCopy(value(a));
  ElemwiseFor(out.size(), [&out](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      out.data()[i] = std::max(0.0f, out.data()[i]);
    }
  });
  prof.SetCost(out.size(), 2 * kF * out.size());
  VarId v = NewNode(OpKind::kRelu, std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const Tensor& g = grad(v);
    const Tensor& va = value(a);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < g.size(); ++i) {
      if (va.data()[i] > 0.0f) ga.data()[i] += g.data()[i];
    }
  };
  return v;
}

namespace {

float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace

VarId Tape::Sigmoid(VarId a) {
  OpScope prof(OpKind::kSigmoid);
  Tensor out = AcquireCopy(value(a));
  ElemwiseFor(out.size(), [&out](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      out.data()[i] = StableSigmoid(out.data()[i]);
    }
  });
  prof.SetCost(4 * out.size(), 2 * kF * out.size());
  VarId v = NewNode(OpKind::kSigmoid, std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const Tensor& g = grad(v);
    const Tensor& y = value(v);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < g.size(); ++i) {
      const float s = y.data()[i];
      ga.data()[i] += g.data()[i] * s * (1.0f - s);
    }
  };
  return v;
}

VarId Tape::Tanh(VarId a) {
  OpScope prof(OpKind::kTanh);
  Tensor out = AcquireCopy(value(a));
  ElemwiseFor(out.size(), [&out](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      out.data()[i] = std::tanh(out.data()[i]);
    }
  });
  prof.SetCost(4 * out.size(), 2 * kF * out.size());
  VarId v = NewNode(OpKind::kTanh, std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const Tensor& g = grad(v);
    const Tensor& y = value(v);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < g.size(); ++i) {
      const float t = y.data()[i];
      ga.data()[i] += g.data()[i] * (1.0f - t * t);
    }
  };
  return v;
}

VarId Tape::LogSigmoid(VarId a) {
  OpScope prof(OpKind::kLogSigmoid);
  // log sigmoid(x) = -softplus(-x) = -(log(1 + exp(-x))); stable split.
  const Tensor& va = value(a);
  Tensor out = AcquireTensor(va.rows(), va.cols(), /*zero=*/false);
  ElemwiseFor(out.size(), [&out, &va](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float x = va.data()[i];
      out.data()[i] =
          x >= 0.0f ? -std::log1p(std::exp(-x)) : x - std::log1p(std::exp(x));
    }
  });
  prof.SetCost(4 * out.size(), 2 * kF * out.size());
  VarId v = NewNode(OpKind::kLogSigmoid, std::move(out));
  nodes_[v].backward = [this, v, a]() {
    // d/dx log sigmoid(x) = 1 - sigmoid(x).
    const Tensor& g = grad(v);
    const Tensor& va2 = value(a);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < g.size(); ++i) {
      ga.data()[i] += g.data()[i] * (1.0f - StableSigmoid(va2.data()[i]));
    }
  };
  return v;
}

VarId Tape::MatMul(VarId a, VarId b) {
  OpScope prof(OpKind::kMatMul);
  const Tensor& va = value(a);
  const Tensor& vb = value(b);
  Tensor out = AcquireTensor(va.rows(), vb.cols(), /*zero=*/false);
  nn::MatMul(va, vb, &out);
  prof.SetCost(2ull * va.rows() * va.cols() * vb.cols(),
               kF * (va.size() + vb.size() + out.size()));
  VarId v = NewNode(OpKind::kMatMul, std::move(out));
  nodes_[v].backward = [this, v, a, b]() {
    const Tensor& g = grad(v);
    // dA += dOut * B^T ; dB += A^T * dOut.
    MatMulTransposeBAccum(g, value(b), &MutableGrad(a));
    MatMulTransposeAAccum(value(a), g, &MutableGrad(b));
  };
  return v;
}

VarId Tape::Transpose(VarId a) {
  OpScope prof(OpKind::kTranspose);
  const Tensor& va = value(a);
  Tensor out = AcquireTensor(va.cols(), va.rows(), /*zero=*/false);
  for (int r = 0; r < va.rows(); ++r) {
    for (int c = 0; c < va.cols(); ++c) out.at(c, r) = va.at(r, c);
  }
  prof.SetCost(0, 2 * kF * out.size());
  VarId v = NewNode(OpKind::kTranspose, std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const Tensor& g = grad(v);
    Tensor& ga = MutableGrad(a);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < g.cols(); ++c) ga.at(c, r) += g.at(r, c);
    }
  };
  return v;
}

VarId Tape::SliceCols(VarId a, int start, int len) {
  OpScope prof(OpKind::kSliceCols);
  const Tensor& va = value(a);
  UCAD_CHECK_GE(start, 0);
  UCAD_CHECK_LE(start + len, va.cols());
  Tensor out = AcquireTensor(va.rows(), len, /*zero=*/false);
  for (int r = 0; r < va.rows(); ++r) {
    for (int c = 0; c < len; ++c) out.at(r, c) = va.at(r, start + c);
  }
  prof.SetCost(0, 2 * kF * out.size());
  VarId v = NewNode(OpKind::kSliceCols, std::move(out));
  nodes_[v].backward = [this, v, a, start, len]() {
    const Tensor& g = grad(v);
    Tensor& ga = MutableGrad(a);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < len; ++c) ga.at(r, start + c) += g.at(r, c);
    }
  };
  return v;
}

VarId Tape::ConcatCols(const std::vector<VarId>& parts) {
  OpScope prof(OpKind::kConcatCols);
  UCAD_CHECK(!parts.empty());
  const int rows = value(parts[0]).rows();
  int total_cols = 0;
  for (VarId p : parts) {
    UCAD_CHECK_EQ(value(p).rows(), rows);
    total_cols += value(p).cols();
  }
  Tensor out = AcquireTensor(rows, total_cols, /*zero=*/false);
  int offset = 0;
  for (VarId p : parts) {
    const Tensor& vp = value(p);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < vp.cols(); ++c) out.at(r, offset + c) = vp.at(r, c);
    }
    offset += vp.cols();
  }
  prof.SetCost(0, 2 * kF * out.size());
  VarId v = NewNode(OpKind::kConcatCols, std::move(out));
  std::vector<VarId> parts_copy = parts;
  nodes_[v].backward = [this, v, parts_copy]() {
    const Tensor& g = grad(v);
    int off = 0;
    for (VarId p : parts_copy) {
      Tensor& gp = MutableGrad(p);
      for (int r = 0; r < gp.rows(); ++r) {
        for (int c = 0; c < gp.cols(); ++c) gp.at(r, c) += g.at(r, off + c);
      }
      off += gp.cols();
    }
  };
  return v;
}

VarId Tape::ConcatRows(const std::vector<VarId>& parts) {
  OpScope prof(OpKind::kConcatRows);
  UCAD_CHECK(!parts.empty());
  const int cols = value(parts[0]).cols();
  int total_rows = 0;
  for (VarId p : parts) {
    UCAD_CHECK_EQ(value(p).cols(), cols);
    total_rows += value(p).rows();
  }
  Tensor out = AcquireTensor(total_rows, cols, /*zero=*/false);
  int offset = 0;
  for (VarId p : parts) {
    const Tensor& vp = value(p);
    for (int r = 0; r < vp.rows(); ++r) {
      for (int c = 0; c < cols; ++c) out.at(offset + r, c) = vp.at(r, c);
    }
    offset += vp.rows();
  }
  prof.SetCost(0, 2 * kF * out.size());
  VarId v = NewNode(OpKind::kConcatRows, std::move(out));
  std::vector<VarId> parts_copy = parts;
  nodes_[v].backward = [this, v, parts_copy]() {
    const Tensor& g = grad(v);
    int off = 0;
    for (VarId p : parts_copy) {
      Tensor& gp = MutableGrad(p);
      for (int r = 0; r < gp.rows(); ++r) {
        for (int c = 0; c < gp.cols(); ++c) gp.at(r, c) += g.at(off + r, c);
      }
      off += gp.rows();
    }
  };
  return v;
}

VarId Tape::Row(VarId a, int r) {
  OpScope prof(OpKind::kRow);
  const Tensor& va = value(a);
  UCAD_CHECK(r >= 0 && r < va.rows());
  Tensor out = AcquireTensor(1, va.cols(), /*zero=*/false);
  for (int c = 0; c < va.cols(); ++c) out.at(0, c) = va.at(r, c);
  prof.SetCost(0, 2 * kF * out.size());
  VarId v = NewNode(OpKind::kRow, std::move(out));
  nodes_[v].backward = [this, v, a, r]() {
    const Tensor& g = grad(v);
    Tensor& ga = MutableGrad(a);
    for (int c = 0; c < g.cols(); ++c) ga.at(r, c) += g.at(0, c);
  };
  return v;
}

VarId Tape::SumRows(VarId a) {
  OpScope prof(OpKind::kSumRows);
  const Tensor& va = value(a);
  Tensor out = AcquireTensor(va.rows(), 1, /*zero=*/false);
  for (int r = 0; r < va.rows(); ++r) {
    double s = 0.0;
    for (int c = 0; c < va.cols(); ++c) s += va.at(r, c);
    out.at(r, 0) = static_cast<float>(s);
  }
  prof.SetCost(va.size(), kF * (va.size() + out.size()));
  VarId v = NewNode(OpKind::kSumRows, std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const Tensor& g = grad(v);
    Tensor& ga = MutableGrad(a);
    for (int r = 0; r < ga.rows(); ++r) {
      const float gr = g.at(r, 0);
      for (int c = 0; c < ga.cols(); ++c) ga.at(r, c) += gr;
    }
  };
  return v;
}

VarId Tape::SumAll(VarId a) {
  OpScope prof(OpKind::kSumAll);
  Tensor out = AcquireTensor(1, 1, /*zero=*/false);
  out.at(0, 0) = value(a).Sum();
  prof.SetCost(value(a).size(), kF * value(a).size());
  VarId v = NewNode(OpKind::kSumAll, std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const float g = grad(v).at(0, 0);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < ga.size(); ++i) ga.data()[i] += g;
  };
  return v;
}

VarId Tape::MeanAll(VarId a) {
  const size_t n = value(a).size();
  UCAD_CHECK_GT(n, 0u);
  return Scale(SumAll(a), 1.0f / static_cast<float>(n));
}

VarId Tape::SoftmaxRows(VarId a) {
  OpScope prof(OpKind::kSoftmaxRows);
  const Tensor& va = value(a);
  Tensor out = AcquireTensor(va.rows(), va.cols(), /*zero=*/false);
  auto softmax_rows = [&va, &out](int64_t r0, int64_t r1) {
    for (int64_t ri = r0; ri < r1; ++ri) {
      const int r = static_cast<int>(ri);
      const float* in = va.row(r);
      float* o = out.row(r);
      float max_v = in[0];
      for (int c = 1; c < va.cols(); ++c) max_v = std::max(max_v, in[c]);
      double sum = 0.0;
      for (int c = 0; c < va.cols(); ++c) {
        o[c] = std::exp(in[c] - max_v);
        sum += o[c];
      }
      const float inv = static_cast<float>(1.0 / sum);
      for (int c = 0; c < va.cols(); ++c) o[c] *= inv;
    }
  };
  if (static_cast<int64_t>(va.size()) >= kParallelElemwiseMin &&
      va.rows() > 1 && util::NumThreads() > 1) {
    const int64_t grain =
        std::max<int64_t>(1, kParallelElemwiseGrain / va.cols());
    util::ParallelFor(0, va.rows(), grain, softmax_rows);
  } else {
    softmax_rows(0, va.rows());
  }
  prof.SetCost(5 * out.size(), 2 * kF * out.size());
  VarId v = NewNode(OpKind::kSoftmaxRows, std::move(out));
  nodes_[v].backward = [this, v, a]() {
    // dx = (dy - rowdot(dy, y)) ⊙ y.
    const Tensor& g = grad(v);
    const Tensor& y = value(v);
    Tensor& ga = MutableGrad(a);
    for (int r = 0; r < y.rows(); ++r) {
      double dot = 0.0;
      for (int c = 0; c < y.cols(); ++c) {
        dot += static_cast<double>(g.at(r, c)) * y.at(r, c);
      }
      for (int c = 0; c < y.cols(); ++c) {
        ga.at(r, c) +=
            (g.at(r, c) - static_cast<float>(dot)) * y.at(r, c);
      }
    }
  };
  return v;
}

VarId Tape::LayerNormRows(VarId x, VarId gain, VarId bias, float eps) {
  OpScope prof(OpKind::kLayerNormRows);
  const Tensor& vx = value(x);
  const Tensor& vg = value(gain);
  const Tensor& vb = value(bias);
  UCAD_CHECK_EQ(vg.rows(), 1);
  UCAD_CHECK_EQ(vb.rows(), 1);
  UCAD_CHECK_EQ(vg.cols(), vx.cols());
  UCAD_CHECK_EQ(vb.cols(), vx.cols());
  const int n = vx.cols();
  Tensor out = AcquireTensor(vx.rows(), n, /*zero=*/false);
  // Cache normalized activations and inverse stddev for the backward pass.
  auto xhat = AcquireShared(vx.rows(), n);
  auto inv_std = std::make_shared<std::vector<float>>(vx.rows());
  for (int r = 0; r < vx.rows(); ++r) {
    const float* in = vx.row(r);
    double mean = 0.0;
    for (int c = 0; c < n; ++c) mean += in[c];
    mean /= n;
    double var = 0.0;
    for (int c = 0; c < n; ++c) {
      const double d = in[c] - mean;
      var += d * d;
    }
    var /= n;
    const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
    (*inv_std)[r] = istd;
    for (int c = 0; c < n; ++c) {
      const float xh = (in[c] - static_cast<float>(mean)) * istd;
      xhat->at(r, c) = xh;
      out.at(r, c) = vg.at(0, c) * xh + vb.at(0, c);
    }
  }
  prof.SetCost(8 * out.size(), 3 * kF * out.size());
  VarId v = NewNode(OpKind::kLayerNormRows, std::move(out));
  nodes_[v].backward = [this, v, x, gain, bias, xhat, inv_std]() {
    const Tensor& g = grad(v);
    const Tensor& vg2 = value(gain);
    Tensor& gx = MutableGrad(x);
    Tensor& gg = MutableGrad(gain);
    Tensor& gb = MutableGrad(bias);
    const int n = g.cols();
    for (int r = 0; r < g.rows(); ++r) {
      // a = gain ⊙ dy; dx = istd * (a - mean(a) - xhat * mean(a ⊙ xhat)).
      double mean_a = 0.0, mean_ax = 0.0;
      for (int c = 0; c < n; ++c) {
        const float a_c = vg2.at(0, c) * g.at(r, c);
        mean_a += a_c;
        mean_ax += static_cast<double>(a_c) * xhat->at(r, c);
      }
      mean_a /= n;
      mean_ax /= n;
      const float istd = (*inv_std)[r];
      for (int c = 0; c < n; ++c) {
        const float a_c = vg2.at(0, c) * g.at(r, c);
        gx.at(r, c) += istd * (a_c - static_cast<float>(mean_a) -
                               xhat->at(r, c) * static_cast<float>(mean_ax));
        gg.at(0, c) += g.at(r, c) * xhat->at(r, c);
        gb.at(0, c) += g.at(r, c);
      }
    }
  };
  return v;
}

VarId Tape::Dropout(VarId a, float rate, bool training, util::Rng* rng) {
  OpScope prof(OpKind::kDropout);
  if (!training || rate <= 0.0f) {
    // Identity node keeps graph structure uniform between modes.
    Tensor out = AcquireCopy(value(a));
    prof.SetCost(0, 2 * kF * out.size());
    VarId v = NewNode(OpKind::kDropout, std::move(out));
    nodes_[v].backward = [this, v, a]() {
      MutableGrad(a).AddInPlace(grad(v));
    };
    return v;
  }
  UCAD_CHECK_LT(rate, 1.0f);
  UCAD_CHECK(rng != nullptr);
  const Tensor& va = value(a);
  auto mask = AcquireShared(va.rows(), va.cols());
  const float keep_scale = 1.0f / (1.0f - rate);
  Tensor out = AcquireTensor(va.rows(), va.cols(), /*zero=*/false);
  for (size_t i = 0; i < va.size(); ++i) {
    const float m = rng->Bernoulli(rate) ? 0.0f : keep_scale;
    mask->data()[i] = m;
    out.data()[i] = va.data()[i] * m;
  }
  prof.SetCost(out.size(), 3 * kF * out.size());
  VarId v = NewNode(OpKind::kDropout, std::move(out));
  nodes_[v].backward = [this, v, a, mask]() {
    const Tensor& g = grad(v);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < g.size(); ++i) {
      ga.data()[i] += g.data()[i] * mask->data()[i];
    }
  };
  return v;
}

VarId Tape::EmbeddingGather(VarId table, std::vector<int> indices) {
  OpScope prof(OpKind::kEmbeddingGather);
  const Tensor& vt = value(table);
  Tensor out = AcquireTensor(static_cast<int>(indices.size()), vt.cols(), /*zero=*/false);
  for (size_t i = 0; i < indices.size(); ++i) {
    const int idx = indices[i];
    UCAD_CHECK(idx >= 0 && idx < vt.rows());
    for (int c = 0; c < vt.cols(); ++c) {
      out.at(static_cast<int>(i), c) = vt.at(idx, c);
    }
  }
  prof.SetCost(0, 2 * kF * out.size());
  VarId v = NewNode(OpKind::kEmbeddingGather, std::move(out));
  nodes_[v].backward = [this, v, table, indices = std::move(indices)]() {
    const Tensor& g = grad(v);
    Tensor& gt = MutableGrad(table);
    for (size_t i = 0; i < indices.size(); ++i) {
      for (int c = 0; c < g.cols(); ++c) {
        gt.at(indices[i], c) += g.at(static_cast<int>(i), c);
      }
    }
  };
  return v;
}

VarId Tape::SoftmaxCrossEntropy(VarId logits, std::vector<int> targets) {
  OpScope prof(OpKind::kSoftmaxCrossEntropy);
  const Tensor& vl = value(logits);
  UCAD_CHECK_EQ(static_cast<int>(targets.size()), vl.rows());
  const int m = vl.rows(), n = vl.cols();
  auto probs = AcquireShared(m, n);
  double loss = 0.0;
  for (int r = 0; r < m; ++r) {
    const float* in = vl.row(r);
    float* p = probs->row(r);
    float max_v = in[0];
    for (int c = 1; c < n; ++c) max_v = std::max(max_v, in[c]);
    double sum = 0.0;
    for (int c = 0; c < n; ++c) {
      p[c] = std::exp(in[c] - max_v);
      sum += p[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int c = 0; c < n; ++c) p[c] *= inv;
    const int t = targets[r];
    UCAD_CHECK(t >= 0 && t < n);
    loss -= std::log(std::max(1e-12f, p[t]));
  }
  Tensor out = AcquireTensor(1, 1, /*zero=*/false);
  out.at(0, 0) = static_cast<float>(loss / m);
  prof.SetCost(5ull * m * n, 2 * kF * static_cast<uint64_t>(m) * n);
  VarId v = NewNode(OpKind::kSoftmaxCrossEntropy, std::move(out));
  nodes_[v].backward = [this, v, logits, probs,
                        targets = std::move(targets)]() {
    const float g = grad(v).at(0, 0);
    Tensor& gl = MutableGrad(logits);
    const int m2 = gl.rows(), n2 = gl.cols();
    const float scale = g / static_cast<float>(m2);
    for (int r = 0; r < m2; ++r) {
      for (int c = 0; c < n2; ++c) {
        float delta = probs->at(r, c);
        if (c == targets[r]) delta -= 1.0f;
        gl.at(r, c) += scale * delta;
      }
    }
  };
  return v;
}

void Tape::Backward(VarId root) { Backward(root, nullptr); }

void Tape::Backward(VarId root, ParamGradMap* sink) {
  UCAD_CHECK(root >= 0 && root < static_cast<VarId>(nodes_.size()));
  UCAD_CHECK_EQ(nodes_[root].value.rows(), 1);
  UCAD_CHECK_EQ(nodes_[root].value.cols(), 1);
  UCAD_TRACE_SPAN("nn/backward");
  const bool metrics = obs::MetricsEnabled();
  const bool profiling = TapeProfiler::Enabled();
  util::Timer timer;
  EnsureGrad(root);
  nodes_[root].grad.Fill(1.0f);
  // Nodes are recorded in topological order: reverse iteration is valid.
  for (VarId v = root; v >= 0; --v) {
    Node& node = nodes_[v];
    if (!node.grad.SameShape(node.value)) continue;  // grad never touched
    if (!node.backward) continue;
    if (profiling) {
      const int64_t t0 = ProfNowNs();
      node.backward();
      TapeProfiler::RecordBackward(node.kind, ProfNowNs() - t0);
    } else {
      node.backward();
    }
  }
  for (Node& node : nodes_) {
    if (node.param != nullptr && node.grad.SameShape(node.value)) {
      if (sink == nullptr) {
        node.param->grad().AddInPlace(node.grad);
      } else {
        Tensor& g = (*sink)[node.param];
        if (!g.SameShape(node.grad)) {
          g = Tensor(node.grad.rows(), node.grad.cols());
        }
        g.AddInPlace(node.grad);
      }
    }
  }
  if (metrics) {
    obs::MetricsRegistry& reg = obs::DefaultMetrics();
    reg.GetCounter("nn/backward_total")->Increment();
    // Aggregate series kept for backward compatibility with PR-1 dashboards;
    // the labeled series below break the same count down per op kind.
    reg.GetCounter("nn/tape_ops_total")->Increment(nodes_.size());
    uint64_t per_kind[kNumOpKinds] = {};
    for (const Node& node : nodes_) {
      ++per_kind[static_cast<size_t>(node.kind)];
    }
    for (size_t k = 0; k < kNumOpKinds; ++k) {
      if (per_kind[k] == 0) continue;
      reg.GetCounter("nn/tape_ops_total",
                     {{"op", OpKindName(static_cast<OpKind>(k))}})
          ->Increment(per_kind[k]);
    }
    reg.GetHistogram("nn/backward_ms")->Observe(timer.ElapsedMillis());
  }
}

}  // namespace ucad::nn
