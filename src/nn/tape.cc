#include "nn/tape.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace ucad::nn {

VarId Tape::NewNode(Tensor value, std::function<void()> backward) {
  nodes_.push_back(Node{std::move(value), Tensor(), std::move(backward),
                        /*param=*/nullptr});
  return static_cast<VarId>(nodes_.size() - 1);
}

Tensor& Tape::MutableGrad(VarId v) {
  EnsureGrad(v);
  return nodes_[v].grad;
}

void Tape::EnsureGrad(VarId v) {
  Node& node = nodes_[v];
  if (!node.grad.SameShape(node.value)) {
    node.grad = Tensor(node.value.rows(), node.value.cols());
  }
}

const Tensor& Tape::value(VarId v) const {
  UCAD_DCHECK(v >= 0 && v < static_cast<VarId>(nodes_.size()));
  return nodes_[v].value;
}

const Tensor& Tape::grad(VarId v) const {
  UCAD_DCHECK(v >= 0 && v < static_cast<VarId>(nodes_.size()));
  return nodes_[v].grad;
}

VarId Tape::Constant(Tensor value) { return NewNode(std::move(value)); }

VarId Tape::Leaf(Tensor value) { return NewNode(std::move(value)); }

VarId Tape::Param(Parameter* param) {
  VarId v = NewNode(param->value());
  nodes_[v].param = param;
  return v;
}

VarId Tape::Add(VarId a, VarId b) {
  UCAD_CHECK(value(a).SameShape(value(b)));
  Tensor out = value(a);
  out.AddInPlace(value(b));
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a, b]() {
    MutableGrad(a).AddInPlace(grad(v));
    MutableGrad(b).AddInPlace(grad(v));
  };
  return v;
}

VarId Tape::Sub(VarId a, VarId b) {
  UCAD_CHECK(value(a).SameShape(value(b)));
  Tensor out = value(a);
  out.AddScaled(value(b), -1.0f);
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a, b]() {
    MutableGrad(a).AddInPlace(grad(v));
    MutableGrad(b).AddScaled(grad(v), -1.0f);
  };
  return v;
}

VarId Tape::Mul(VarId a, VarId b) {
  UCAD_CHECK(value(a).SameShape(value(b)));
  const Tensor& va = value(a);
  const Tensor& vb = value(b);
  Tensor out(va.rows(), va.cols());
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = va.data()[i] * vb.data()[i];
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a, b]() {
    const Tensor& g = grad(v);
    const Tensor& va2 = value(a);
    const Tensor& vb2 = value(b);
    Tensor& ga = MutableGrad(a);
    Tensor& gb = MutableGrad(b);
    for (size_t i = 0; i < g.size(); ++i) {
      ga.data()[i] += g.data()[i] * vb2.data()[i];
      gb.data()[i] += g.data()[i] * va2.data()[i];
    }
  };
  return v;
}

VarId Tape::AddRowVector(VarId a, VarId bias) {
  const Tensor& va = value(a);
  const Tensor& vb = value(bias);
  UCAD_CHECK_EQ(vb.rows(), 1);
  UCAD_CHECK_EQ(vb.cols(), va.cols());
  Tensor out = va;
  for (int r = 0; r < out.rows(); ++r) {
    float* orow = out.row(r);
    for (int c = 0; c < out.cols(); ++c) orow[c] += vb.at(0, c);
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a, bias]() {
    const Tensor& g = grad(v);
    MutableGrad(a).AddInPlace(g);
    Tensor& gb = MutableGrad(bias);
    for (int r = 0; r < g.rows(); ++r) {
      const float* grow = g.row(r);
      for (int c = 0; c < g.cols(); ++c) gb.at(0, c) += grow[c];
    }
  };
  return v;
}

VarId Tape::MulRowVector(VarId a, VarId scale) {
  const Tensor& va = value(a);
  const Tensor& vs = value(scale);
  UCAD_CHECK_EQ(vs.rows(), 1);
  UCAD_CHECK_EQ(vs.cols(), va.cols());
  Tensor out = va;
  for (int r = 0; r < out.rows(); ++r) {
    float* orow = out.row(r);
    for (int c = 0; c < out.cols(); ++c) orow[c] *= vs.at(0, c);
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a, scale]() {
    const Tensor& g = grad(v);
    const Tensor& va2 = value(a);
    const Tensor& vs2 = value(scale);
    Tensor& ga = MutableGrad(a);
    Tensor& gs = MutableGrad(scale);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < g.cols(); ++c) {
        ga.at(r, c) += g.at(r, c) * vs2.at(0, c);
        gs.at(0, c) += g.at(r, c) * va2.at(r, c);
      }
    }
  };
  return v;
}

VarId Tape::Scale(VarId a, float c) {
  Tensor out = value(a);
  out.Scale(c);
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a, c]() {
    MutableGrad(a).AddScaled(grad(v), c);
  };
  return v;
}

VarId Tape::AddScalar(VarId a, float c) {
  Tensor out = value(a);
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] += c;
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a]() {
    MutableGrad(a).AddInPlace(grad(v));
  };
  return v;
}

VarId Tape::Relu(VarId a) {
  Tensor out = value(a);
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::max(0.0f, out.data()[i]);
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const Tensor& g = grad(v);
    const Tensor& va = value(a);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < g.size(); ++i) {
      if (va.data()[i] > 0.0f) ga.data()[i] += g.data()[i];
    }
  };
  return v;
}

namespace {

float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace

VarId Tape::Sigmoid(VarId a) {
  Tensor out = value(a);
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = StableSigmoid(out.data()[i]);
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const Tensor& g = grad(v);
    const Tensor& y = value(v);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < g.size(); ++i) {
      const float s = y.data()[i];
      ga.data()[i] += g.data()[i] * s * (1.0f - s);
    }
  };
  return v;
}

VarId Tape::Tanh(VarId a) {
  Tensor out = value(a);
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::tanh(out.data()[i]);
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const Tensor& g = grad(v);
    const Tensor& y = value(v);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < g.size(); ++i) {
      const float t = y.data()[i];
      ga.data()[i] += g.data()[i] * (1.0f - t * t);
    }
  };
  return v;
}

VarId Tape::LogSigmoid(VarId a) {
  // log sigmoid(x) = -softplus(-x) = -(log(1 + exp(-x))); stable split.
  const Tensor& va = value(a);
  Tensor out(va.rows(), va.cols());
  for (size_t i = 0; i < out.size(); ++i) {
    const float x = va.data()[i];
    out.data()[i] =
        x >= 0.0f ? -std::log1p(std::exp(-x)) : x - std::log1p(std::exp(x));
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a]() {
    // d/dx log sigmoid(x) = 1 - sigmoid(x).
    const Tensor& g = grad(v);
    const Tensor& va2 = value(a);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < g.size(); ++i) {
      ga.data()[i] += g.data()[i] * (1.0f - StableSigmoid(va2.data()[i]));
    }
  };
  return v;
}

VarId Tape::MatMul(VarId a, VarId b) {
  const Tensor& va = value(a);
  const Tensor& vb = value(b);
  Tensor out(va.rows(), vb.cols());
  nn::MatMul(va, vb, &out);
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a, b]() {
    const Tensor& g = grad(v);
    // dA += dOut * B^T ; dB += A^T * dOut.
    MatMulTransposeBAccum(g, value(b), &MutableGrad(a));
    MatMulTransposeAAccum(value(a), g, &MutableGrad(b));
  };
  return v;
}

VarId Tape::Transpose(VarId a) {
  const Tensor& va = value(a);
  Tensor out(va.cols(), va.rows());
  for (int r = 0; r < va.rows(); ++r) {
    for (int c = 0; c < va.cols(); ++c) out.at(c, r) = va.at(r, c);
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const Tensor& g = grad(v);
    Tensor& ga = MutableGrad(a);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < g.cols(); ++c) ga.at(c, r) += g.at(r, c);
    }
  };
  return v;
}

VarId Tape::SliceCols(VarId a, int start, int len) {
  const Tensor& va = value(a);
  UCAD_CHECK_GE(start, 0);
  UCAD_CHECK_LE(start + len, va.cols());
  Tensor out(va.rows(), len);
  for (int r = 0; r < va.rows(); ++r) {
    for (int c = 0; c < len; ++c) out.at(r, c) = va.at(r, start + c);
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a, start, len]() {
    const Tensor& g = grad(v);
    Tensor& ga = MutableGrad(a);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < len; ++c) ga.at(r, start + c) += g.at(r, c);
    }
  };
  return v;
}

VarId Tape::ConcatCols(const std::vector<VarId>& parts) {
  UCAD_CHECK(!parts.empty());
  const int rows = value(parts[0]).rows();
  int total_cols = 0;
  for (VarId p : parts) {
    UCAD_CHECK_EQ(value(p).rows(), rows);
    total_cols += value(p).cols();
  }
  Tensor out(rows, total_cols);
  int offset = 0;
  for (VarId p : parts) {
    const Tensor& vp = value(p);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < vp.cols(); ++c) out.at(r, offset + c) = vp.at(r, c);
    }
    offset += vp.cols();
  }
  VarId v = NewNode(std::move(out));
  std::vector<VarId> parts_copy = parts;
  nodes_[v].backward = [this, v, parts_copy]() {
    const Tensor& g = grad(v);
    int off = 0;
    for (VarId p : parts_copy) {
      Tensor& gp = MutableGrad(p);
      for (int r = 0; r < gp.rows(); ++r) {
        for (int c = 0; c < gp.cols(); ++c) gp.at(r, c) += g.at(r, off + c);
      }
      off += gp.cols();
    }
  };
  return v;
}

VarId Tape::ConcatRows(const std::vector<VarId>& parts) {
  UCAD_CHECK(!parts.empty());
  const int cols = value(parts[0]).cols();
  int total_rows = 0;
  for (VarId p : parts) {
    UCAD_CHECK_EQ(value(p).cols(), cols);
    total_rows += value(p).rows();
  }
  Tensor out(total_rows, cols);
  int offset = 0;
  for (VarId p : parts) {
    const Tensor& vp = value(p);
    for (int r = 0; r < vp.rows(); ++r) {
      for (int c = 0; c < cols; ++c) out.at(offset + r, c) = vp.at(r, c);
    }
    offset += vp.rows();
  }
  VarId v = NewNode(std::move(out));
  std::vector<VarId> parts_copy = parts;
  nodes_[v].backward = [this, v, parts_copy]() {
    const Tensor& g = grad(v);
    int off = 0;
    for (VarId p : parts_copy) {
      Tensor& gp = MutableGrad(p);
      for (int r = 0; r < gp.rows(); ++r) {
        for (int c = 0; c < gp.cols(); ++c) gp.at(r, c) += g.at(off + r, c);
      }
      off += gp.rows();
    }
  };
  return v;
}

VarId Tape::Row(VarId a, int r) {
  const Tensor& va = value(a);
  UCAD_CHECK(r >= 0 && r < va.rows());
  Tensor out(1, va.cols());
  for (int c = 0; c < va.cols(); ++c) out.at(0, c) = va.at(r, c);
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a, r]() {
    const Tensor& g = grad(v);
    Tensor& ga = MutableGrad(a);
    for (int c = 0; c < g.cols(); ++c) ga.at(r, c) += g.at(0, c);
  };
  return v;
}

VarId Tape::SumRows(VarId a) {
  const Tensor& va = value(a);
  Tensor out(va.rows(), 1);
  for (int r = 0; r < va.rows(); ++r) {
    double s = 0.0;
    for (int c = 0; c < va.cols(); ++c) s += va.at(r, c);
    out.at(r, 0) = static_cast<float>(s);
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const Tensor& g = grad(v);
    Tensor& ga = MutableGrad(a);
    for (int r = 0; r < ga.rows(); ++r) {
      const float gr = g.at(r, 0);
      for (int c = 0; c < ga.cols(); ++c) ga.at(r, c) += gr;
    }
  };
  return v;
}

VarId Tape::SumAll(VarId a) {
  Tensor out(1, 1);
  out.at(0, 0) = value(a).Sum();
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a]() {
    const float g = grad(v).at(0, 0);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < ga.size(); ++i) ga.data()[i] += g;
  };
  return v;
}

VarId Tape::MeanAll(VarId a) {
  const size_t n = value(a).size();
  UCAD_CHECK_GT(n, 0u);
  return Scale(SumAll(a), 1.0f / static_cast<float>(n));
}

VarId Tape::SoftmaxRows(VarId a) {
  const Tensor& va = value(a);
  Tensor out(va.rows(), va.cols());
  for (int r = 0; r < va.rows(); ++r) {
    const float* in = va.row(r);
    float* o = out.row(r);
    float max_v = in[0];
    for (int c = 1; c < va.cols(); ++c) max_v = std::max(max_v, in[c]);
    double sum = 0.0;
    for (int c = 0; c < va.cols(); ++c) {
      o[c] = std::exp(in[c] - max_v);
      sum += o[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int c = 0; c < va.cols(); ++c) o[c] *= inv;
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a]() {
    // dx = (dy - rowdot(dy, y)) ⊙ y.
    const Tensor& g = grad(v);
    const Tensor& y = value(v);
    Tensor& ga = MutableGrad(a);
    for (int r = 0; r < y.rows(); ++r) {
      double dot = 0.0;
      for (int c = 0; c < y.cols(); ++c) {
        dot += static_cast<double>(g.at(r, c)) * y.at(r, c);
      }
      for (int c = 0; c < y.cols(); ++c) {
        ga.at(r, c) +=
            (g.at(r, c) - static_cast<float>(dot)) * y.at(r, c);
      }
    }
  };
  return v;
}

VarId Tape::LayerNormRows(VarId x, VarId gain, VarId bias, float eps) {
  const Tensor& vx = value(x);
  const Tensor& vg = value(gain);
  const Tensor& vb = value(bias);
  UCAD_CHECK_EQ(vg.rows(), 1);
  UCAD_CHECK_EQ(vb.rows(), 1);
  UCAD_CHECK_EQ(vg.cols(), vx.cols());
  UCAD_CHECK_EQ(vb.cols(), vx.cols());
  const int n = vx.cols();
  Tensor out(vx.rows(), n);
  // Cache normalized activations and inverse stddev for the backward pass.
  auto xhat = std::make_shared<Tensor>(vx.rows(), n);
  auto inv_std = std::make_shared<std::vector<float>>(vx.rows());
  for (int r = 0; r < vx.rows(); ++r) {
    const float* in = vx.row(r);
    double mean = 0.0;
    for (int c = 0; c < n; ++c) mean += in[c];
    mean /= n;
    double var = 0.0;
    for (int c = 0; c < n; ++c) {
      const double d = in[c] - mean;
      var += d * d;
    }
    var /= n;
    const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
    (*inv_std)[r] = istd;
    for (int c = 0; c < n; ++c) {
      const float xh = (in[c] - static_cast<float>(mean)) * istd;
      xhat->at(r, c) = xh;
      out.at(r, c) = vg.at(0, c) * xh + vb.at(0, c);
    }
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, x, gain, bias, xhat, inv_std]() {
    const Tensor& g = grad(v);
    const Tensor& vg2 = value(gain);
    Tensor& gx = MutableGrad(x);
    Tensor& gg = MutableGrad(gain);
    Tensor& gb = MutableGrad(bias);
    const int n = g.cols();
    for (int r = 0; r < g.rows(); ++r) {
      // a = gain ⊙ dy; dx = istd * (a - mean(a) - xhat * mean(a ⊙ xhat)).
      double mean_a = 0.0, mean_ax = 0.0;
      for (int c = 0; c < n; ++c) {
        const float a_c = vg2.at(0, c) * g.at(r, c);
        mean_a += a_c;
        mean_ax += static_cast<double>(a_c) * xhat->at(r, c);
      }
      mean_a /= n;
      mean_ax /= n;
      const float istd = (*inv_std)[r];
      for (int c = 0; c < n; ++c) {
        const float a_c = vg2.at(0, c) * g.at(r, c);
        gx.at(r, c) += istd * (a_c - static_cast<float>(mean_a) -
                               xhat->at(r, c) * static_cast<float>(mean_ax));
        gg.at(0, c) += g.at(r, c) * xhat->at(r, c);
        gb.at(0, c) += g.at(r, c);
      }
    }
  };
  return v;
}

VarId Tape::Dropout(VarId a, float rate, bool training, util::Rng* rng) {
  if (!training || rate <= 0.0f) {
    // Identity node keeps graph structure uniform between modes.
    Tensor out = value(a);
    VarId v = NewNode(std::move(out));
    nodes_[v].backward = [this, v, a]() {
      MutableGrad(a).AddInPlace(grad(v));
    };
    return v;
  }
  UCAD_CHECK_LT(rate, 1.0f);
  UCAD_CHECK(rng != nullptr);
  const Tensor& va = value(a);
  auto mask = std::make_shared<Tensor>(va.rows(), va.cols());
  const float keep_scale = 1.0f / (1.0f - rate);
  Tensor out(va.rows(), va.cols());
  for (size_t i = 0; i < va.size(); ++i) {
    const float m = rng->Bernoulli(rate) ? 0.0f : keep_scale;
    mask->data()[i] = m;
    out.data()[i] = va.data()[i] * m;
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, a, mask]() {
    const Tensor& g = grad(v);
    Tensor& ga = MutableGrad(a);
    for (size_t i = 0; i < g.size(); ++i) {
      ga.data()[i] += g.data()[i] * mask->data()[i];
    }
  };
  return v;
}

VarId Tape::EmbeddingGather(VarId table, std::vector<int> indices) {
  const Tensor& vt = value(table);
  Tensor out(static_cast<int>(indices.size()), vt.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int idx = indices[i];
    UCAD_CHECK(idx >= 0 && idx < vt.rows());
    for (int c = 0; c < vt.cols(); ++c) {
      out.at(static_cast<int>(i), c) = vt.at(idx, c);
    }
  }
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, table, indices = std::move(indices)]() {
    const Tensor& g = grad(v);
    Tensor& gt = MutableGrad(table);
    for (size_t i = 0; i < indices.size(); ++i) {
      for (int c = 0; c < g.cols(); ++c) {
        gt.at(indices[i], c) += g.at(static_cast<int>(i), c);
      }
    }
  };
  return v;
}

VarId Tape::SoftmaxCrossEntropy(VarId logits, std::vector<int> targets) {
  const Tensor& vl = value(logits);
  UCAD_CHECK_EQ(static_cast<int>(targets.size()), vl.rows());
  const int m = vl.rows(), n = vl.cols();
  auto probs = std::make_shared<Tensor>(m, n);
  double loss = 0.0;
  for (int r = 0; r < m; ++r) {
    const float* in = vl.row(r);
    float* p = probs->row(r);
    float max_v = in[0];
    for (int c = 1; c < n; ++c) max_v = std::max(max_v, in[c]);
    double sum = 0.0;
    for (int c = 0; c < n; ++c) {
      p[c] = std::exp(in[c] - max_v);
      sum += p[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int c = 0; c < n; ++c) p[c] *= inv;
    const int t = targets[r];
    UCAD_CHECK(t >= 0 && t < n);
    loss -= std::log(std::max(1e-12f, p[t]));
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / m);
  VarId v = NewNode(std::move(out));
  nodes_[v].backward = [this, v, logits, probs,
                        targets = std::move(targets)]() {
    const float g = grad(v).at(0, 0);
    Tensor& gl = MutableGrad(logits);
    const int m2 = gl.rows(), n2 = gl.cols();
    const float scale = g / static_cast<float>(m2);
    for (int r = 0; r < m2; ++r) {
      for (int c = 0; c < n2; ++c) {
        float delta = probs->at(r, c);
        if (c == targets[r]) delta -= 1.0f;
        gl.at(r, c) += scale * delta;
      }
    }
  };
  return v;
}

void Tape::Backward(VarId root) {
  UCAD_CHECK(root >= 0 && root < static_cast<VarId>(nodes_.size()));
  UCAD_CHECK_EQ(nodes_[root].value.rows(), 1);
  UCAD_CHECK_EQ(nodes_[root].value.cols(), 1);
  UCAD_TRACE_SPAN("nn/backward");
  const bool metrics = obs::MetricsEnabled();
  util::Timer timer;
  EnsureGrad(root);
  nodes_[root].grad.Fill(1.0f);
  // Nodes are recorded in topological order: reverse iteration is valid.
  for (VarId v = root; v >= 0; --v) {
    Node& node = nodes_[v];
    if (!node.grad.SameShape(node.value)) continue;  // grad never touched
    if (node.backward) node.backward();
  }
  for (Node& node : nodes_) {
    if (node.param != nullptr && node.grad.SameShape(node.value)) {
      node.param->grad().AddInPlace(node.grad);
    }
  }
  if (metrics) {
    obs::MetricsRegistry& reg = obs::DefaultMetrics();
    reg.GetCounter("nn/backward_total")->Increment();
    // Per-tape node count flushed once per Backward keeps the per-op
    // recording path free of atomics.
    reg.GetCounter("nn/tape_ops_total")->Increment(nodes_.size());
    reg.GetHistogram("nn/backward_ms")->Observe(timer.ElapsedMillis());
  }
}

}  // namespace ucad::nn
