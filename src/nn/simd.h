#ifndef UCAD_NN_SIMD_H_
#define UCAD_NN_SIMD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/cpu_features.h"

namespace ucad::nn {

// ---- Kernel tiers ----------------------------------------------------------
//
// The inference kernels in infer.cc run under one of three tiers
// (docs/INFERENCE.md "Kernel tiers"):
//
//   kReference   bitwise-identical to the autograd tape: the PR 5 contract.
//   kVectorized  relaxed rounding: runtime-dispatched (AVX2/FMA, NEON via
//                compiler lowering, scalar fallback) register-tiled GEMMs,
//                polynomial exp softmax, float (not double) accumulation in
//                softmax sums and LayerNorm moments. Contract: verdict
//                identity (ranks/flags), not logits identity.
//   kInt8        kVectorized plus int8 weight-quantized GEMMs for the packed
//                Q|K|V projections and the all-key logits matmul (per-row
//                weight scales prepared at CachedWeight time, activations
//                quantized per row on the fly). Contract: verdict agreement
//                within the eval-metric tolerance gate.
//
// The tier is a per-thread ambient (ScopedKernelTier below) set by the
// detector's forward sites from DetectorOptions::kernel_tier; kernels read
// it once at entry on the calling thread, so row partitions fanned out
// through the pool inherit the decision via the captured lambda.
enum class KernelTier {
  kReference = 0,
  kVectorized = 1,
  kInt8 = 2,
};

/// Stable lowercase name ("reference", "vectorized", "int8").
const char* KernelTierName(KernelTier tier);

/// Parses a KernelTierName; returns false (and leaves *out alone) on junk.
bool ParseKernelTier(const std::string& name, KernelTier* out);

/// The calling thread's ambient tier (kReference unless a ScopedKernelTier
/// is live — training and tape paths never see a non-reference tier).
KernelTier CurrentKernelTier();

/// RAII tier scope for the current thread. Apply at the per-thread forward
/// site (inside pool lambdas), not at session entry: util::ParallelFor runs
/// its body on pool threads whose ambient tier would otherwise stay
/// kReference.
class ScopedKernelTier {
 public:
  explicit ScopedKernelTier(KernelTier tier);
  ~ScopedKernelTier();
  ScopedKernelTier(const ScopedKernelTier&) = delete;
  ScopedKernelTier& operator=(const ScopedKernelTier&) = delete;

 private:
  KernelTier saved_;
};

// ---- int8 weight quantization ----------------------------------------------

/// A weight matrix quantized to int8 with symmetric per-row scales, laid out
/// [rows x padded_cols] with the depth dimension zero-padded to a multiple
/// of 32 so vector dot products never need a tail. Row r dequantizes as
/// data[r][c] * scales[r]; scales[r] = maxabs(row r) / 127.
struct QuantizedWeight {
  std::vector<int8_t> data;
  std::vector<float> scales;
  int rows = 0;
  int cols = 0;
  int padded_cols = 0;
  /// Largest |dequantized - original| over all elements, recorded at
  /// quantization time (feeds nn/infer/quant_weight_max_abs_err).
  float max_abs_err = 0.0f;

  size_t bytes() const {
    return data.size() * sizeof(int8_t) + scales.size() * sizeof(float);
  }
};

/// Quantizes `src` into `out`. With transpose = false, out row r is src row
/// r ([N x K] sources like the embedding table, one output feature per
/// row). With transpose = true, out row r is src column r ([K x N] sources
/// like the packed Q|K|V projection, whose output features are columns).
void QuantizeWeightRows(const Tensor& src, bool transpose,
                        QuantizedWeight* out);

/// out[row0..row1, j] = dot(a[i, acol0:acol0+k], w row j) * post_scale,
/// computed in int8 x int8 -> int32 with per-row activation scales chosen on
/// the fly (symmetric, round-to-nearest) and dequantized through
/// a_scale * w.scales[j]. `out` must have w.rows columns; rows outside
/// [row0, row1) are untouched; row1 = -1 means a.rows(). Row r of the output
/// depends only on row r of `a` (and the weights), so single-row recomputes
/// (the slide cache) match full fills exactly.
void Int8GemmKernel(const Tensor& a, int acol0, int k, const QuantizedWeight& w,
                    int row0, Tensor* out, float post_scale = 1.0f,
                    int row1 = -1);

// ---- Relaxed (vectorized-tier) kernel bodies -------------------------------
//
// Called by the infer.cc kernels when the ambient tier is not kReference.
// Each dispatches internally on util::ActiveSimdIsa(): hand-written
// AVX2+FMA bodies where the build enables them, otherwise a register-tiled
// generic body the compiler lowers to the target's vector ISA (NEON on
// aarch64). Same row-partition parallelism gates as the reference kernels.
namespace fast {

/// Polynomial expf (Cephes-style range reduction, degree-5 minimax), the
/// scalar twin of the 8-lane AVX2 body the softmax uses. |rel err| < 3e-7
/// over the softmax's operating range (inputs <= 0). Exposed for the error
/// bound tests.
float Exp(float x);

void MatMulSlice(const Tensor& a, int acol0, int k, const Tensor& b, int row0,
                 int row1, float post_scale, Tensor* out);

void MaskedSoftmax(Tensor* scores, float scale, const Tensor& mask, int row0);

void ResidualLayerNorm(const Tensor& x, const Tensor& res, const Tensor& gain,
                       const Tensor& bias, float eps, Tensor* out, int row0,
                       int row1);

void BiasRelu(Tensor* x, const Tensor& bias, int row0, int row1);

void BiasAdd(Tensor* x, const Tensor& bias, int row0, int row1);

void AttnContext(const Tensor& att, int row0, const Tensor& qkv, int vcol0,
                 int hd, int ccol0, Tensor* concat);

/// Relaxed twin of BatchedAttentionHeadKernel's row pipeline (same row
/// mapping and rows_from semantics; scores/softmax/context per row through
/// the relaxed bodies above).
void BatchedAttnHead(const Tensor& qkv, int num_windows, int L,
                     const int* rows_from, int qoff, int hd, const Tensor& kt,
                     float scale, const Tensor& mask, int voff, int ccol0,
                     Tensor* scores, Tensor* concat);

}  // namespace fast

namespace internal {
/// Quantization observability (relaxed atomics; reset-free process totals).
double QuantWeightMaxAbsErr();
double QuantActMaxAbsErr();
uint64_t Int8GemmRowsTotal();
/// Monotonic max-update of the weight-quantization error watermark; called
/// by QuantizeWeightRows and the tests.
void NoteQuantWeightError(float max_abs_err);
}  // namespace internal

}  // namespace ucad::nn

#endif  // UCAD_NN_SIMD_H_
