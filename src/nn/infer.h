#ifndef UCAD_NN_INFER_H_
#define UCAD_NN_INFER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "nn/simd.h"
#include "nn/tensor.h"

namespace ucad::obs {
class MetricsRegistry;
}  // namespace ucad::obs

namespace ucad::nn {

/// Bump/arena-style pool of preallocated forward-pass buffers. A frame is
/// one inference forward: kernels acquire buffers in a fixed (straight-line)
/// order, BeginFrame() rewinds the cursor, and because the acquisition
/// sequence is a pure function of the model config + window length, every
/// frame after the first reuses the same storage — zero allocations on the
/// steady-state hot path. Buffer addresses are stable across frames
/// (unique_ptr slots), so cached pointers into the previous frame stay valid
/// until the matching Acquire of the next frame overwrites them.
///
/// Not thread-safe: one Workspace belongs to one InferenceContext, which
/// belongs to one lane at a time.
class Workspace {
 public:
  Workspace() = default;
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Rewinds the arena cursor; the next Acquire reuses slot 0.
  void BeginFrame() { cursor_ = 0; }

  /// Returns the next buffer of the frame, shaped [rows x cols]. Contents
  /// are unspecified (previous frame's data) — every kernel fully overwrites
  /// its output. Grows (and counts an allocation) only when the slot is new
  /// or its shape changed.
  Tensor* Acquire(int rows, int cols);

  /// Total payload bytes currently held across all slots.
  size_t TotalBytes() const;

  /// Number of distinct buffers (the per-frame acquisition count).
  size_t NumBuffers() const { return slots_.size(); }

 private:
  std::vector<std::unique_ptr<Tensor>> slots_;
  size_t cursor_ = 0;
};

/// Per-lane state of the tape-free inference engine: the buffer arenas plus
/// caches of derived weights (the transposed embedding table used by the
/// all-key logits kernel and the per-block packed QKV projection matrices),
/// keyed by source pointer + weight version so fine-tuning invalidates
/// them. Create one per concurrent scoring lane and reuse it across
/// windows; construction is cheap, the first forward sizes everything.
class InferenceContext {
 public:
  /// Cross-window sliding cache for the streaming scorer. UCAD windows are
  /// order-free (no positional encodings), so a per-position row of the
  /// embedding matrix — and, because the block-0 Q|K|V projection is
  /// row-wise, that position's packed projection row — is a pure function
  /// of (key, weight version). Consecutive sliding windows share L-1 keys;
  /// the cache retains both row sets so a slide recomputes only the newly
  /// arrived position. Validity is decided by comparing the cached window's
  /// keys (not a session id): equal keys imply bitwise-equal rows, so hits
  /// across interleaved sessions are exact and misses merely recompute.
  struct WindowSlideCache {
    /// Model the rows were derived from (cache is per-model).
    const void* model = nullptr;
    /// weight_version() at fill time; any bump invalidates (hot swap,
    /// fine-tune, FreezePaddingRow).
    uint64_t version = 0;
    /// The exact (sanitized) window the rows belong to.
    std::vector<int> keys;
    /// Cached embedding rows, [L x h].
    Tensor embed;
    /// Cached block-0 packed Q|K|V projection rows, [L x packed_cols].
    Tensor qkv0;
    bool valid = false;
  };

  InferenceContext();
  InferenceContext(const InferenceContext&) = delete;
  InferenceContext& operator=(const InferenceContext&) = delete;
  ~InferenceContext();

  Workspace& workspace() { return workspace_; }

  /// Separate arena for multi-window batched forwards: batched frames have
  /// a different (capacity-sized) acquisition sequence, and sharing one
  /// arena with single-window frames would churn slot shapes every time a
  /// pooled context alternates between the two modes.
  Workspace& batch_workspace() { return batch_workspace_; }

  WindowSlideCache& slide_cache() { return slide_cache_; }

  /// Sizes (and byte-accounts) the slide-cache tensors; a no-op once the
  /// shapes match, so steady-state slides never allocate.
  void EnsureSlideCacheShapes(int window, int hidden, int packed_cols);

  /// `src` transposed, cached until `version` (or the source pointer)
  /// changes. Transposition is a pure copy, so the cache cannot perturb
  /// bitwise parity with the tape path's per-window Transpose node.
  const Tensor& TransposedCopy(const Tensor& src, uint64_t version);

  /// Generic derived-weight cache: returns the [rows x cols] tensor stored
  /// under `key`, rebuilding it through `fill` whenever the version or shape
  /// changes. `fill` must be a pure rearrangement (copy) of parameter
  /// values — caching copies cannot perturb bitwise parity.
  const Tensor& CachedWeight(const void* key, uint64_t version, int rows,
                             int cols,
                             const std::function<void(Tensor*)>& fill);

  /// int8 twin of CachedWeight: returns `src` quantized to per-row-scale
  /// int8 (QuantizeWeightRows semantics, transpose included), rebuilt
  /// whenever the version or source shape changes — i.e. prepared once per
  /// MarkWeightsUpdated, amortized across every int8-tier forward. Kept in
  /// a map separate from the float cache so a source tensor can serve as
  /// the key of both. Contexts are pooled per detector and a detector has
  /// one fixed kernel tier, so float and quantized caches never mix within
  /// a slide-cache lineage.
  const QuantizedWeight& CachedQuantWeight(const void* key, uint64_t version,
                                           const Tensor& src, bool transpose);

  /// Called by the engine after each full forward (feeds nn/infer metrics);
  /// `tier` attributes the forward to its kernel tier.
  void NoteForward(KernelTier tier = KernelTier::kReference);

  /// Slide-cache accounting (feeds nn/infer/slide_cache_{hits,misses}):
  /// called once per slide-cached forward, hit when the cache supplied the
  /// embedding + block-0 QKV rows (exact match or one-position slide).
  void NoteSlideCache(bool hit);

  /// Batched-forward accounting: one batched forward packed `windows` of
  /// `capacity` slots (feeds nn/infer/batches_total, batched_windows_total
  /// and the batch_occupancy gauge). Also counts as one forward.
  void NoteBatchForward(int windows, int capacity);

  // ---- Verdict-attribution hook ---------------------------------------
  //
  // Off by default (one int compare per block on the forward path). When
  // armed with an output row, ForwardInference copies that row of every
  // final-block head's post-softmax attention matrix into this context —
  // a pure read of values the kernels already stored, after they stored
  // them, so arming the capture cannot perturb bitwise parity and costs
  // no extra forward. The captured rows answer "which context positions
  // did the verdict's intent prediction actually attend to".

  /// Arms capture of final-block attention row `row` (>= the forward's
  /// rows_from) for subsequent forwards on this context; -1 disarms.
  void SetAttentionCaptureRow(int row) { attention_capture_row_ = row; }
  int attention_capture_row() const { return attention_capture_row_; }

  /// Called by the model inside the final block: stores `cols` attention
  /// weights of head `head`. Head 0 resets the capture for the new forward.
  void RecordAttentionRow(size_t head, const float* row, int cols);

  /// Captured rows of the most recent forward, one [L] vector per head
  /// (empty when capture was disarmed). Valid until the next forward.
  const std::vector<std::vector<float>>& captured_attention() const {
    return captured_attention_;
  }

 private:
  struct CacheEntry {
    uint64_t version = 0;
    Tensor tensor;
  };
  struct QuantCacheEntry {
    uint64_t version = 0;
    int src_rows = 0;
    int src_cols = 0;
    QuantizedWeight weight;
  };

  Workspace workspace_;
  Workspace batch_workspace_;
  WindowSlideCache slide_cache_;
  std::unordered_map<const void*, CacheEntry> weight_cache_;
  std::unordered_map<const void*, QuantCacheEntry> quant_cache_;
  int attention_capture_row_ = -1;
  std::vector<std::vector<float>> captured_attention_;
};

// ---- Fused forward kernels -------------------------------------------------
//
// Under the default KernelTier::kReference each kernel replicates the tape
// path's per-op rounding exactly: fusion saves graph recording, gradient
// bookkeeping, and intermediate buffers, but every float store happens in
// the same order with the same value as the corresponding tape ops, so the
// engines agree bitwise (docs/INFERENCE.md). When the calling thread's
// ambient tier (simd.h) is kVectorized or kInt8, the arithmetic kernels
// route to the relaxed fast:: bodies instead — runtime-dispatched
// vectorized implementations whose contract is verdict identity, not
// bitwise logits. Pure-copy kernels (gather/transpose) are tier-invariant.
// Row-partitioned kernels dispatch through the global thread pool above the
// thresholds in parallel_thresholds.h; row partitions never change
// accumulation order, so parallel==serial stays bitwise per tier. Kernels
// read the tier once at entry (on the calling thread) before fanning out,
// so pool workers inherit the decision through the captured lambda.

/// Embedding gather: out[i, :] = table[indices[i], :]. `out` must have at
/// least |indices| rows (extra rows — the unused slots of a partially
/// filled batch — are left untouched) and table.cols columns. Indices must
/// be valid rows (pre-sanitized).
void GatherRowsKernel(const Tensor& table, const std::vector<int>& indices,
                      Tensor* out);

/// out = a^T (`out` must be [a.cols x a.rows]). Pure copy.
void TransposeKernel(const Tensor& a, Tensor* out);

/// out = a[:, col0:col0+cols]^T (`out` must be [cols x a.rows]). Pure copy;
/// lifts one logical head matrix out of a packed column block without
/// materializing the slice first.
void TransposeSliceKernel(const Tensor& a, int col0, int cols, Tensor* out);

/// out[row0..row1, :] = a[row0..row1, acol0:acol0+k] * b, where b is
/// [k x out.cols]. Exactly the shared MatMulAccum recipe per output element
/// (zeroed destination, products added in ascending depth order, zero
/// operands skipped), so restricting the row range or reading `a` through a
/// column offset cannot perturb bitwise parity. Rows outside [row0, row1)
/// are untouched; `row1` = -1 means a.rows() (the batched engine passes the
/// occupied prefix of a capacity-sized buffer). `post_scale`, when not 1,
/// multiplies the finished rows in a separate epilogue pass —
/// element-for-element the tape's Scale node applied to the stored matmul
/// result (a multiply after an add cannot FMA-contract).
void MatMulSliceKernel(const Tensor& a, int acol0, int k, const Tensor& b,
                       int row0, Tensor* out, float post_scale = 1.0f,
                       int row1 = -1);

/// Attention context fused with the head concat: for rows >= row0,
/// concat[i, ccol0:ccol0+hd] = att[i, :] * qkv[:, vcol0:vcol0+hd]. Same
/// per-element accumulation recipe as MatMulAccum followed by the tape's
/// ConcatCols copy, with neither the per-head context tensor nor the copy
/// materialized.
void AttnContextKernel(const Tensor& att, int row0, const Tensor& qkv,
                       int vcol0, int hd, int ccol0, Tensor* concat);

/// In-place masked-attention softmax on rows >= row0: those rows of
/// `scores` become softmax(scores * scale + mask) with the [L x L] additive
/// mask applied in-kernel. Scale and mask-add round separately (matching
/// the tape's Scale and Add nodes) before the max-subtracted exp/sum
/// normalization, which is byte-for-byte the tape's SoftmaxRows loop.
void MaskedSoftmaxKernel(Tensor* scores, float scale, const Tensor& mask,
                         int row0 = 0);

/// Fused residual + layer norm on rows [row0, row1): out = gain ⊙
/// norm(x + res) + bias, rows normalized independently (mean/var in double,
/// matching the tape's LayerNormRows). `gain`/`bias` are [1 x n]; `out`
/// must be [x.rows x n] and may not alias the inputs. `row1` = -1 means
/// x.rows().
void ResidualLayerNormKernel(const Tensor& x, const Tensor& res,
                             const Tensor& gain, const Tensor& bias, float eps,
                             Tensor* out, int row0 = 0, int row1 = -1);

/// In-place fused bias + ReLU on rows [row0, row1):
/// x[r, c] = max(0, x[r, c] + bias[0, c]). `row1` = -1 means x->rows().
void BiasReluKernel(Tensor* x, const Tensor& bias, int row0 = 0,
                    int row1 = -1);

/// In-place row-broadcast bias add on rows [row0, row1):
/// x[r, c] += bias[0, c]. `row1` = -1 means x->rows().
void BiasAddKernel(Tensor* x, const Tensor& bias, int row0 = 0, int row1 = -1);

// ---- Multi-window batched kernels ------------------------------------------
//
// The batched engine stacks B windows' rows into one [B*L x ...] buffer so
// per-block projections run as one wide GEMM instead of B skinny ones.
// Every batched kernel is a pure row regrouping of the single-window
// kernels above — each stored float goes through the identical per-element
// accumulation chain — so batching cannot perturb bitwise parity either.

/// Per-window column-slice transpose: for each window b < num_windows,
/// out rows [b*cols, (b+1)*cols) = qkv rows [b*L, (b+1)*L) columns
/// [col0, col0+cols) transposed — B stacked TransposeSliceKernel results.
/// Pure copy; rows of `out` beyond num_windows*cols are untouched.
void BatchedTransposeSliceKernel(const Tensor& qkv, int num_windows, int L,
                                 int col0, int cols, Tensor* out);

/// One attention head over B stacked windows, block-diagonal: for window b
/// and query row i (>= rows_from[b] when given; global row r = b*L + i),
/// runs scores = Q K^T (via `kt`, the BatchedTransposeSliceKernel output),
/// post_scale epilogue, masked softmax, and the context-into-concat matmul
/// — the exact per-row pipelines of MatMulSliceKernel(post_scale) +
/// MaskedSoftmaxKernel(scale=1) + AttnContextKernel, window-local, so every
/// stored value is bitwise the single-window kernels'. `scores` ([>=B*L x
/// L]) holds the per-window post-softmax attention rows on return;
/// `rows_from` (size num_windows) restricts each window's query rows, null
/// = all rows.
void BatchedAttentionHeadKernel(const Tensor& qkv, int num_windows, int L,
                                const int* rows_from, int qoff, int hd,
                                const Tensor& kt, float scale,
                                const Tensor& mask, int voff, int ccol0,
                                Tensor* scores, Tensor* concat);

// ---- Fused logits -> Eq. 10 score kernel -----------------------------------

/// Verdict of one logits row under the paper's top-p rule (§5.3 / Eq. 10).
struct RowScore {
  /// 1 = best; vocab+1 for unknown keys.
  int rank = 0;
  /// Eq. 10 logit of the observed key; 0 for unknown keys.
  float score = 0.0f;
  /// score minus the top-p admission cutoff (>= 0 iff rank <= top_p,
  /// including ties); -inf for unknown keys.
  float margin = 0.0f;
  /// rank > top_p (always true for unknown keys).
  bool abnormal = false;
};

/// Scores one row of all-key logits in a single pass: rank (strictly-greater
/// count over keys 1..vocab-1) and the top-p cutoff (p-th largest logit,
/// observed key included) come from the same scan via a bounded min-heap, so
/// rank and margin cannot disagree. Keys outside (0, vocab) are unknown:
/// rank = vocab + 1, score = 0, margin = -inf, abnormal. Shared by the tape
/// and inference detection engines.
RowScore ScoreLogitsRow(const float* logits, int vocab, int key, int top_p);

// ---- nn/infer metrics ------------------------------------------------------

/// Publishes the process-wide inference-engine accounting into `registry`:
/// nn/infer/contexts_total + nn/infer/forwards_total +
/// nn/infer/slide_cache_hits + nn/infer/slide_cache_misses +
/// nn/infer/batches_total + nn/infer/batched_windows_total +
/// nn/infer/tier_forwards_total{tier=...} +
/// nn/infer/int8_gemm_rows_total (counters),
/// nn/infer/live_contexts + nn/infer/workspace_live_bytes +
/// nn/infer/workspace_peak_bytes + nn/infer/batch_occupancy +
/// nn/infer/kernel_tier (ordinal of the most recent forward's tier) +
/// nn/infer/simd_isa (ordinal of util::ActiveSimdIsa()) +
/// nn/infer/quant_weight_max_abs_err + nn/infer/quant_act_max_abs_err
/// (gauges; the quant errors are process-lifetime watermarks of
/// |dequantized - original|, the occupancy is cumulative batched windows /
/// batched slots, in (0, 1] once any batch ran). Counters are relaxed
/// atomics fed off the hot path (workspace growth and frame completion
/// only).
void PublishInferMetrics(obs::MetricsRegistry* registry);

namespace internal {
/// Workspace byte-accounting hooks (relaxed atomics; test seam).
void RecordWorkspaceBytes(int64_t delta);
int64_t WorkspaceLiveBytes();
uint64_t InferForwardsTotal();
uint64_t SlideCacheHitsTotal();
uint64_t SlideCacheMissesTotal();
uint64_t BatchForwardsTotal();
uint64_t BatchedWindowsTotal();
uint64_t BatchedSlotsTotal();
uint64_t TierForwardsTotal(KernelTier tier);
}  // namespace internal

}  // namespace ucad::nn

#endif  // UCAD_NN_INFER_H_
