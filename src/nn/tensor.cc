#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.h"

namespace ucad::nn {

namespace internal {

std::atomic<bool> g_tensor_mem_tracking{false};

namespace {
std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_live_bytes{0};
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes_total{0};
}  // namespace

void RecordTensorAlloc(int64_t bytes) {
  const int64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes_total.fetch_add(static_cast<uint64_t>(bytes),
                                std::memory_order_relaxed);
  int64_t peak = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_live_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void RecordTensorFree(int64_t bytes) {
  g_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace internal

void SetTensorMemTrackingEnabled(bool enabled) {
  internal::g_tensor_mem_tracking.store(enabled, std::memory_order_relaxed);
}

TensorMemSnapshot TensorMemStats() {
  using namespace internal;  // NOLINT
  TensorMemSnapshot snap;
  snap.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  snap.peak_live_bytes = g_peak_live_bytes.load(std::memory_order_relaxed);
  snap.alloc_count = g_alloc_count.load(std::memory_order_relaxed);
  snap.alloc_bytes_total =
      g_alloc_bytes_total.load(std::memory_order_relaxed);
  return snap;
}

void ResetTensorMemStats() {
  using namespace internal;  // NOLINT
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes_total.store(0, std::memory_order_relaxed);
  // Live tensors are still out there; re-seed the peak from them rather
  // than zero so it never reads below the current footprint.
  g_peak_live_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

void PublishTensorMemMetrics() {
  const TensorMemSnapshot snap = TensorMemStats();
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  reg.GetGauge("nn/tensor/live_bytes")
      ->Set(static_cast<double>(snap.live_bytes));
  reg.GetGauge("nn/tensor/peak_live_bytes")
      ->Set(static_cast<double>(snap.peak_live_bytes));
  obs::Counter* allocs = reg.GetCounter("nn/tensor/allocs_total");
  if (snap.alloc_count > allocs->Value()) {
    allocs->Increment(snap.alloc_count - allocs->Value());
  }
  obs::Counter* alloc_bytes = reg.GetCounter("nn/tensor/alloc_bytes_total");
  if (snap.alloc_bytes_total > alloc_bytes->Value()) {
    alloc_bytes->Increment(snap.alloc_bytes_total - alloc_bytes->Value());
  }
}

Tensor Tensor::Full(int rows, int cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(int rows, int cols, float stddev, util::Rng* rng) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.data_.size(); ++i) {
    t.data_[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::XavierUniform(int fan_in, int fan_out, util::Rng* rng) {
  Tensor t(fan_in, fan_out);
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  for (size_t i = 0; i < t.data_.size(); ++i) {
    t.data_[i] = static_cast<float>(rng->UniformDouble(-bound, bound));
  }
  return t;
}

void Tensor::SetZero() { std::fill(data_.begin(), data_.end(), 0.0f); }

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  UCAD_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::AddScaled(const Tensor& other, float scale) {
  UCAD_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Tensor::Scale(float scale) {
  for (float& v : data_) v *= scale;
}

float Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::SquaredNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(s);
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::string Tensor::DebugString(int max_entries) const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "] {";
  for (size_t i = 0; i < data_.size() && i < static_cast<size_t>(max_entries);
       ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (data_.size() > static_cast<size_t>(max_entries)) os << ", ...";
  os << "}";
  return os.str();
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  out->SetZero();
  MatMulAccum(a, b, out);
}

void MatMulAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  UCAD_CHECK_EQ(a.cols(), b.rows());
  UCAD_CHECK_EQ(out->rows(), a.rows());
  UCAD_CHECK_EQ(out->cols(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  // ikj loop order: streams through b and out rows contiguously.
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeAAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  UCAD_CHECK_EQ(a.rows(), b.rows());
  UCAD_CHECK_EQ(out->rows(), a.cols());
  UCAD_CHECK_EQ(out->cols(), b.cols());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out->row(i);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeBAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  UCAD_CHECK_EQ(a.cols(), b.cols());
  UCAD_CHECK_EQ(out->rows(), a.rows());
  UCAD_CHECK_EQ(out->cols(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      double dot = 0.0;
      for (int p = 0; p < k; ++p) dot += static_cast<double>(arow[p]) * brow[p];
      orow[j] += static_cast<float>(dot);
    }
  }
}

}  // namespace ucad::nn
