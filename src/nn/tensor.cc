#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace ucad::nn {

namespace internal {

std::atomic<bool> g_tensor_mem_tracking{false};

namespace {
std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_live_bytes{0};
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes_total{0};
}  // namespace

void RecordTensorAlloc(int64_t bytes) {
  const int64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes_total.fetch_add(static_cast<uint64_t>(bytes),
                                std::memory_order_relaxed);
  int64_t peak = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_live_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void RecordTensorFree(int64_t bytes) {
  g_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace internal

void SetTensorMemTrackingEnabled(bool enabled) {
  internal::g_tensor_mem_tracking.store(enabled, std::memory_order_relaxed);
}

TensorMemSnapshot TensorMemStats() {
  using namespace internal;  // NOLINT
  TensorMemSnapshot snap;
  snap.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  snap.peak_live_bytes = g_peak_live_bytes.load(std::memory_order_relaxed);
  snap.alloc_count = g_alloc_count.load(std::memory_order_relaxed);
  snap.alloc_bytes_total =
      g_alloc_bytes_total.load(std::memory_order_relaxed);
  return snap;
}

void ResetTensorMemStats() {
  using namespace internal;  // NOLINT
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes_total.store(0, std::memory_order_relaxed);
  // Live tensors are still out there; re-seed the peak from them rather
  // than zero so it never reads below the current footprint.
  g_peak_live_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

void PublishTensorMemMetrics() {
  const TensorMemSnapshot snap = TensorMemStats();
  obs::MetricsRegistry& reg = obs::DefaultMetrics();
  reg.GetGauge("nn/tensor/live_bytes")
      ->Set(static_cast<double>(snap.live_bytes));
  reg.GetGauge("nn/tensor/peak_live_bytes")
      ->Set(static_cast<double>(snap.peak_live_bytes));
  obs::Counter* allocs = reg.GetCounter("nn/tensor/allocs_total");
  if (snap.alloc_count > allocs->Value()) {
    allocs->Increment(snap.alloc_count - allocs->Value());
  }
  obs::Counter* alloc_bytes = reg.GetCounter("nn/tensor/alloc_bytes_total");
  if (snap.alloc_bytes_total > alloc_bytes->Value()) {
    alloc_bytes->Increment(snap.alloc_bytes_total - alloc_bytes->Value());
  }
}

Tensor Tensor::Full(int rows, int cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(int rows, int cols, float stddev, util::Rng* rng) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.data_.size(); ++i) {
    t.data_[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::XavierUniform(int fan_in, int fan_out, util::Rng* rng) {
  Tensor t(fan_in, fan_out);
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  for (size_t i = 0; i < t.data_.size(); ++i) {
    t.data_[i] = static_cast<float>(rng->UniformDouble(-bound, bound));
  }
  return t;
}

void Tensor::SetZero() { std::fill(data_.begin(), data_.end(), 0.0f); }

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  UCAD_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::AddScaled(const Tensor& other, float scale) {
  UCAD_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Tensor::Scale(float scale) {
  for (float& v : data_) v *= scale;
}

float Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::SquaredNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(s);
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::string Tensor::DebugString(int max_entries) const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "] {";
  for (size_t i = 0; i < data_.size() && i < static_cast<size_t>(max_entries);
       ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (data_.size() > static_cast<size_t>(max_entries)) os << ", ...";
  os << "}";
  return os.str();
}

namespace {

/// -1 = not yet initialized (first reader consults UCAD_MATMUL_MIN_WORK).
std::atomic<int64_t> g_matmul_min_work{-1};

int64_t MatMulMinWork() {
  int64_t v = g_matmul_min_work.load(std::memory_order_relaxed);
  if (v >= 0) return v;
  int64_t def = int64_t{1} << 18;  // ~262k MACs ≈ 0.1 ms serial
  if (const char* env = std::getenv("UCAD_MATMUL_MIN_WORK")) {
    const long long parsed = std::atoll(env);
    if (parsed >= 0) def = parsed;
  }
  g_matmul_min_work.store(def, std::memory_order_relaxed);
  return def;
}

/// True when an [m-row output, m*k*n MACs] kernel should fan out; `grain`
/// receives the row-chunk size that keeps at least MinWork MACs per chunk.
bool ShouldParallelize(int m, int64_t work, int64_t per_row,
                       int64_t* grain) {
  const int64_t min_work = MatMulMinWork();
  if (min_work <= 0 || m <= 1 || work < min_work ||
      util::NumThreads() <= 1) {
    return false;
  }
  *grain = std::max<int64_t>(1, min_work / std::max<int64_t>(1, per_row));
  return true;
}

}  // namespace

void SetParallelMatMulMinWork(int64_t min_work) {
  g_matmul_min_work.store(min_work < 0 ? 0 : min_work,
                          std::memory_order_relaxed);
}

int64_t ParallelMatMulMinWork() { return MatMulMinWork(); }

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  out->SetZero();
  MatMulAccum(a, b, out);
}

void MatMulAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  UCAD_CHECK_EQ(a.cols(), b.rows());
  UCAD_CHECK_EQ(out->rows(), a.rows());
  UCAD_CHECK_EQ(out->cols(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  // ikj loop order: streams through b and out rows contiguously. The
  // depth loop is tiled so a block of b rows stays cache-hot across
  // several output rows; per output element the accumulation order is
  // still p ascending, so tiled == untiled bitwise.
  auto rows = [&a, &b, out, k, n](int64_t r0, int64_t r1) {
    constexpr int64_t kRowTile = 16;
    constexpr int kDepthTile = 128;
    for (int64_t ib = r0; ib < r1; ib += kRowTile) {
      const int64_t ie = std::min(ib + kRowTile, r1);
      for (int pb = 0; pb < k; pb += kDepthTile) {
        const int pe = std::min(pb + kDepthTile, k);
        for (int64_t i = ib; i < ie; ++i) {
          const float* arow = a.row(static_cast<int>(i));
          float* orow = out->row(static_cast<int>(i));
          for (int p = pb; p < pe; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            const float* brow = b.row(p);
            for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
          }
        }
      }
    }
  };
  const int64_t work = int64_t{m} * k * n;
  int64_t grain = 0;
  if (ShouldParallelize(m, work, int64_t{k} * n, &grain)) {
    util::ParallelFor(0, m, grain, rows);
  } else {
    rows(0, m);
  }
}

void MatMulTransposeAAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  UCAD_CHECK_EQ(a.rows(), b.rows());
  UCAD_CHECK_EQ(out->rows(), a.cols());
  UCAD_CHECK_EQ(out->cols(), b.cols());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  const int64_t work = int64_t{m} * k * n;
  int64_t grain = 0;
  if (ShouldParallelize(m, work, int64_t{k} * n, &grain)) {
    // Output-row partition needs the i loop outermost (each chunk then owns
    // disjoint out rows). Per element the k products still accumulate in
    // ascending-p order, exactly as the serial p-outer loop below.
    util::ParallelFor(0, m, grain, [&a, &b, out, k, n](int64_t r0,
                                                       int64_t r1) {
      for (int64_t i = r0; i < r1; ++i) {
        float* orow = out->row(static_cast<int>(i));
        for (int p = 0; p < k; ++p) {
          const float av = a.at(p, static_cast<int>(i));
          if (av == 0.0f) continue;
          const float* brow = b.row(p);
          for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
        }
      }
    });
    return;
  }
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out->row(i);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeBAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  UCAD_CHECK_EQ(a.cols(), b.cols());
  UCAD_CHECK_EQ(out->rows(), a.rows());
  UCAD_CHECK_EQ(out->cols(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  auto rows = [&a, &b, out, k, n](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* arow = a.row(static_cast<int>(i));
      float* orow = out->row(static_cast<int>(i));
      for (int j = 0; j < n; ++j) {
        const float* brow = b.row(j);
        double dot = 0.0;
        for (int p = 0; p < k; ++p) {
          dot += static_cast<double>(arow[p]) * brow[p];
        }
        orow[j] += static_cast<float>(dot);
      }
    }
  };
  const int64_t work = int64_t{m} * k * n;
  int64_t grain = 0;
  if (ShouldParallelize(m, work, int64_t{k} * n, &grain)) {
    util::ParallelFor(0, m, grain, rows);
  } else {
    rows(0, m);
  }
}

}  // namespace ucad::nn
