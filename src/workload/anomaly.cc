#include "workload/anomaly.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/logging.h"

namespace ucad::workload {

namespace {

/// Re-sequences time offsets so they stay monotonically increasing after
/// structural edits.
void FixupTimes(sql::RawSession* session, util::Rng* rng) {
  int64_t offset = 0;
  for (auto& op : session->operations) {
    op.time_offset_s = offset;
    offset += rng->UniformInt(1, 20);
  }
}

/// Inserts `op` at a random position of `session` (never before index 0 so
/// an authentication-style prologue is preserved).
void InsertAtRandomPosition(sql::RawSession* session, sql::OperationRecord op,
                            util::Rng* rng) {
  const size_t n = session->operations.size();
  const size_t pos = n == 0 ? 0 : 1 + rng->UniformU64(n);
  session->operations.insert(session->operations.begin() + pos,
                             std::move(op));
}

}  // namespace

AnomalySynthesizer::AnomalySynthesizer(const SessionGenerator* generator)
    : generator_(generator) {
  UCAD_CHECK(generator_ != nullptr);
}

sql::RawSession AnomalySynthesizer::PartialSwap(const sql::RawSession& base,
                                                util::Rng* rng) const {
  sql::RawSession out = base;
  out.label = sql::SessionLabel::kNormalSwapped;
  // Positions per swap group.
  std::map<int, std::vector<size_t>> groups;
  for (size_t i = 0; i < out.operations.size(); ++i) {
    const int g = out.operations[i].swap_group;
    if (g >= 0) groups[g].push_back(i);
  }
  bool swapped_any = false;
  for (auto& [group, positions] : groups) {
    if (positions.size() < 2) continue;
    // Permute the operations among their positions (times stay in place).
    std::vector<size_t> perm = positions;
    rng->Shuffle(&perm);
    std::vector<sql::OperationRecord> tmp;
    tmp.reserve(positions.size());
    for (size_t p : perm) tmp.push_back(out.operations[p]);
    for (size_t j = 0; j < positions.size(); ++j) {
      const int64_t keep_time = out.operations[positions[j]].time_offset_s;
      out.operations[positions[j]] = tmp[j];
      out.operations[positions[j]].time_offset_s = keep_time;
      if (tmp[j].sql != base.operations[positions[j]].sql) swapped_any = true;
    }
  }
  // Degenerate sessions without interchangeable pairs are returned as-is
  // (still a valid normal session).
  (void)swapped_any;
  return out;
}

sql::RawSession AnomalySynthesizer::PartialRemove(const sql::RawSession& base,
                                                  util::Rng* rng) const {
  sql::RawSession out;
  out.attrs = base.attrs;
  out.label = sql::SessionLabel::kNormalReduced;
  for (const auto& op : base.operations) {
    if (op.removable && rng->Bernoulli(0.7)) continue;
    out.operations.push_back(op);
  }
  return out;
}

sql::RawSession AnomalySynthesizer::PrivilegeAbuse(const sql::RawSession& base,
                                                   util::Rng* rng) const {
  sql::RawSession out = base;
  out.label = sql::SessionLabel::kPrivilegeAbuse;
  const int n = static_cast<int>(base.operations.size());
  const int extra = std::max(4, n / 3 + rng->UniformInt(0, n / 4 + 1));
  const bool repeated_mode = rng->Bernoulli(0.5);
  std::string repeated_sql = generator_->RealizeRandom(
      sql::CommandType::kSelect, rng);
  for (int i = 0; i < extra; ++i) {
    sql::OperationRecord op;
    op.sql = repeated_mode
                 ? repeated_sql
                 : generator_->RealizeRandom(sql::CommandType::kSelect, rng);
    op.injected = true;
    if (rng->Bernoulli(0.5)) {
      InsertAtRandomPosition(&out, std::move(op), rng);
    } else {
      out.operations.push_back(std::move(op));
    }
  }
  FixupTimes(&out, rng);
  return out;
}

sql::RawSession AnomalySynthesizer::CredentialStealing(
    const sql::RawSession& base, util::Rng* rng,
    double max_injection_ratio) const {
  sql::RawSession out = base;
  out.label = sql::SessionLabel::kCredentialTheft;
  const int n = static_cast<int>(base.operations.size());
  const int budget =
      std::max(1, static_cast<int>(n * max_injection_ratio) - 1);
  const int count = rng->UniformInt(1, budget);
  for (int i = 0; i < count; ++i) {
    sql::OperationRecord op;
    // The first injected op is the stealthy delete; the rest are irrelevant
    // (but individually legitimate) operations.
    op.sql = i == 0 ? generator_->RealizeInjection(rng)
                    : generator_->RealizeAny(rng);
    op.injected = true;
    InsertAtRandomPosition(&out, std::move(op), rng);
  }
  FixupTimes(&out, rng);
  return out;
}

sql::RawSession AnomalySynthesizer::Misoperation(int approx_length,
                                                 util::Rng* rng) const {
  sql::RawSession out;
  // A confused operator still connects from a legitimate context.
  const auto& spec = generator_->spec();
  const size_t user_index = rng->UniformU64(spec.users.size());
  out.attrs.user = spec.users[user_index];
  out.attrs.client_address = spec.addresses[user_index];
  out.attrs.start_time_s = 1767225600 + rng->UniformInt(0, 364) * 86400 +
                           rng->UniformInt(9, 18) * 3600;
  out.label = sql::SessionLabel::kMisoperation;
  const int length = std::max(4, approx_length / 2 +
                                     rng->UniformInt(0, approx_length / 2));
  for (int i = 0; i < length; ++i) {
    sql::OperationRecord op;
    const std::string rare = generator_->RealizeRare(rng);
    op.sql = (!rare.empty() && rng->Bernoulli(0.7))
                 ? rare
                 : generator_->RealizeAny(rng);
    op.injected = true;
    out.operations.push_back(std::move(op));
  }
  FixupTimes(&out, rng);
  return out;
}

std::vector<sql::RawSession> MixHybridTraining(
    const std::vector<sql::RawSession>& normals,
    const std::vector<sql::RawSession>& anomalies, double anomaly_ratio,
    util::Rng* rng) {
  std::vector<sql::RawSession> out = normals;
  if (!anomalies.empty() && anomaly_ratio > 0) {
    const int count =
        static_cast<int>(normals.size() * anomaly_ratio + 0.5);
    for (int i = 0; i < count; ++i) {
      out.push_back(anomalies[rng->UniformU64(anomalies.size())]);
    }
  }
  rng->Shuffle(&out);
  return out;
}

}  // namespace ucad::workload
