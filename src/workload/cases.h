#ifndef UCAD_WORKLOAD_CASES_H_
#define UCAD_WORKLOAD_CASES_H_

#include <string>

#include "sql/session.h"
#include "util/rng.h"
#include "workload/scenario.h"

namespace ucad::workload {

/// A scripted pair of sessions reproducing one of the paper's Figure 9
/// production incidents: one legitimate session and one suspicious session
/// that UCAD should flag.
struct CaseStudy {
  std::string name;
  std::string description;
  sql::RawSession normal;
  sql::RawSession suspicious;
  /// Human explanation of which operations are anomalous and why.
  std::string expected_finding;
};

/// Figure 9(a): a bot impersonates a client to post danmu comments for
/// daily rewards — it posts and likes a comment without ever opening the
/// danmu panel (no preceding danmu reads). Requires the commenting
/// scenario's generator.
CaseStudy MakeDanmuBotCase(const SessionGenerator& generator, util::Rng* rng);

/// Figure 9(b): a maliciously repackaged app steals another app's
/// credential and reports manipulated locations — consecutive inserts into
/// loc_rm at an abnormally high frequency. Requires the location scenario's
/// generator.
CaseStudy MakeRepackagedAppCase(const SessionGenerator& generator,
                                util::Rng* rng);

}  // namespace ucad::workload

#endif  // UCAD_WORKLOAD_CASES_H_
