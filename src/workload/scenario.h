#ifndef UCAD_WORKLOAD_SCENARIO_H_
#define UCAD_WORKLOAD_SCENARIO_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sql/session.h"
#include "sql/statement.h"
#include "util/rng.h"

namespace ucad::workload {

/// A family of SQL statements sharing one textual form. Each family carries
/// a fixed list of *shape variants* (family-specific sizes such as IN-list
/// lengths or multi-row INSERT row counts); after literal abstraction each
/// (family, variant) pair yields one stable statement key. This mirrors how
/// the paper's Scenario-II reaches 593 keys over 15 tables (Figure 6 shows
/// the same SELECT with different IN-list lengths mapping to distinct keys).
struct OpFamily {
  /// Identifier for debugging and task wiring.
  std::string name;
  sql::CommandType command = sql::CommandType::kOther;
  std::string table;
  /// Allowed shape sizes; Realize receives one of these.
  std::vector<int> shape_variants = {1};
  /// Sampling weights over shape_variants (uniform when empty). Real
  /// applications issue a few statement shapes most of the time (the same
  /// batch size, the same IN-list length) with a long tail — a peaked
  /// (e.g. Zipf) weighting reproduces that.
  std::vector<double> shape_weights;
  /// Produces raw SQL with randomized literal values for a given shape.
  std::function<std::string(int shape, util::Rng* rng)> realize;
  /// Rare families feed the A3 (misoperation) pool and appear in normal
  /// traffic only through low-weight tasks.
  bool rare = false;
};

/// One step of a task: pick one candidate family, repeat it 1..n times.
struct TaskStep {
  /// Indices into ScenarioSpec::families; one is drawn uniformly.
  std::vector<int> family_choices;
  int min_repeat = 1;
  int max_repeat = 1;
  /// When true, repeats beyond the first are marked removable (V3 pool).
  bool removable = false;
  /// Steps of a task sharing a non-negative swap_group execute in
  /// user-dependent order (shuffled at generation) and their emitted ops are
  /// mutually interchangeable (V2 pool).
  int swap_group = -1;
};

/// A unit of user intent (e.g. "post a comment", "update fingerprints").
struct TaskSpec {
  std::string name;
  /// Relative sampling weight.
  double weight = 1.0;
  std::vector<TaskStep> steps;
};

/// Complete description of an application scenario.
struct ScenarioSpec {
  std::string name;
  std::vector<OpFamily> families;
  std::vector<TaskSpec> tasks;
  /// Optional first-order Markov chain over tasks: task_transitions[i][j]
  /// is the unnormalized probability of task j following task i. When
  /// empty, tasks are drawn i.i.d. from their weights. User intents are
  /// strongly sequential in practice (watch -> like -> post), which is what
  /// makes the "contextual intent" of the next operation learnable at all.
  std::vector<std::vector<double>> task_transitions;
  /// Probability that two consecutive tasks are interleaved (their
  /// operations riffle-merged, each task's internal order preserved).
  /// Humans multitask: the same intents produce wildly different exact
  /// orderings, which is the heterogeneity that breaks order-conditioned
  /// models (paper §1 challenge 2) while leaving the operation multiset —
  /// what Trans-DAS conditions on — unchanged.
  double interleave_prob = 0.0;
  /// Sessions contain a uniform number of tasks in [min_tasks, max_tasks].
  int min_tasks = 2;
  int max_tasks = 5;
  /// Legitimate (user, home address) population.
  std::vector<std::string> users;
  std::vector<std::string> addresses;  // parallel to users
  /// Normal access window (local hours) and inter-op gap in seconds.
  int business_start_hour = 8;
  int business_end_hour = 20;
  int min_op_gap_s = 1;
  int max_op_gap_s = 20;
};

/// The kinds of noisy sessions GenerateNoisy can produce; each violates one
/// attribute-based access-control dimension (paper §5.1).
enum class NoiseKind {
  kUnknownAddress,
  kOffHours,
  kForbiddenTable,
  kHugeGaps,
};

/// Samples sessions from a ScenarioSpec's task grammar.
class SessionGenerator {
 public:
  explicit SessionGenerator(ScenarioSpec spec);

  /// A normal user session: tasks drawn by weight, interchangeable steps
  /// shuffled, attributes drawn from the legitimate population.
  sql::RawSession GenerateNormal(util::Rng* rng) const;

  /// A batch of normal sessions.
  std::vector<sql::RawSession> GenerateNormalBatch(int count,
                                                   util::Rng* rng) const;

  /// A session violating one ABAC dimension (for preprocessing tests).
  sql::RawSession GenerateNoisy(NoiseKind kind, util::Rng* rng) const;

  /// Realized SQL for a random family of the given command type.
  /// Returns an empty string when the scenario has no such family.
  std::string RealizeRandom(sql::CommandType command, util::Rng* rng) const;

  /// Realized SQL drawn uniformly from all families.
  std::string RealizeAny(util::Rng* rng) const;

  /// Realized SQL for the family with the given name (aborts if unknown).
  /// `shape` selects a specific variant; -1 draws one at random.
  std::string RealizeByName(const std::string& name, util::Rng* rng,
                            int shape = -1) const;

  /// Realized SQL from the rare-family pool (A3 source); empty if none.
  std::string RealizeRare(util::Rng* rng) const;

  /// Realized SQL suited for stealthy injection (A2): rare deletes when the
  /// scenario has them, otherwise rare families, otherwise deletes.
  std::string RealizeInjection(util::Rng* rng) const;

  const ScenarioSpec& spec() const { return spec_; }

 private:
  struct EmittedOp {
    std::string sql;
    int swap_group;
    bool removable;
  };

  /// Emits one task instance (shuffling interchangeable steps).
  /// `user_shapes` pins the shape used for each family (per-user sticky).
  void EmitTask(const TaskSpec& task, util::Rng* rng,
                std::vector<EmittedOp>* out, int* next_swap_group,
                const std::vector<int>& user_shapes) const;

  std::string RealizeFamily(const OpFamily& family, util::Rng* rng) const;

  sql::RawSession AssembleSession(const std::vector<EmittedOp>& ops,
                                  util::Rng* rng, size_t user_index) const;

  ScenarioSpec spec_;
  /// Per-user sticky shape choice per family: user_shapes_[u][f] is the
  /// shape user u always uses for family f. Applications issue stable
  /// statement shapes across runs, which is what makes a several-hundred-
  /// key vocabulary learnable at all: each materialized (family, shape)
  /// key recurs across all of its user's sessions.
  std::vector<std::vector<int>> user_shapes_;
  std::vector<int> rare_families_;
  std::vector<int> rare_delete_families_;
  std::vector<int> delete_families_;
};

}  // namespace ucad::workload

#endif  // UCAD_WORKLOAD_SCENARIO_H_
