#include "workload/syslog.h"

#include <algorithm>

#include "util/logging.h"

namespace ucad::workload {

namespace {

// ---- HDFS-like event keys ----
constexpr int kHdfsAllocate = 1;
constexpr int kHdfsReceiving = 2;
constexpr int kHdfsReceived = 3;
constexpr int kHdfsResponder = 4;
constexpr int kHdfsVerify = 5;
constexpr int kHdfsClose = 6;
constexpr int kHdfsServe = 7;
constexpr int kHdfsRead = 8;
constexpr int kHdfsDelete = 9;
// Anomaly-only exception events.
constexpr int kHdfsExceptionBase = 20;
constexpr int kHdfsExceptionCount = 5;
constexpr int kHdfsVocab = 26;

std::vector<int> HdfsNormalSession(util::Rng* rng) {
  std::vector<int> s;
  s.push_back(kHdfsAllocate);
  // Three replicas; their receive/ack triples may interleave slightly.
  std::vector<std::vector<int>> replicas(3);
  for (auto& r : replicas) {
    r = {kHdfsReceiving, kHdfsReceived, kHdfsResponder};
  }
  // Interleave by repeatedly draining a random non-empty replica queue.
  std::vector<size_t> heads(3, 0);
  int remaining = 9;
  while (remaining > 0) {
    size_t pick = rng->UniformU64(3);
    if (heads[pick] >= replicas[pick].size()) continue;
    // Mostly drain in order (rigid application behavior), occasionally
    // switch replicas mid-triple.
    do {
      s.push_back(replicas[pick][heads[pick]++]);
      --remaining;
    } while (heads[pick] < replicas[pick].size() && rng->Bernoulli(0.8));
  }
  const int verifies = rng->UniformInt(0, 2);
  for (int i = 0; i < verifies; ++i) s.push_back(kHdfsVerify);
  const int reads = rng->UniformInt(0, 3);
  for (int i = 0; i < reads; ++i) {
    s.push_back(kHdfsServe);
    s.push_back(kHdfsRead);
  }
  s.push_back(kHdfsClose);
  return s;
}

std::vector<int> HdfsAbnormalSession(util::Rng* rng) {
  std::vector<int> s = HdfsNormalSession(rng);
  switch (rng->UniformU64(3)) {
    case 0: {
      // Exception events appear mid-session.
      const int count = rng->UniformInt(1, 3);
      for (int i = 0; i < count; ++i) {
        const int key =
            kHdfsExceptionBase + rng->UniformInt(0, kHdfsExceptionCount - 1);
        const size_t pos = 1 + rng->UniformU64(s.size() - 1);
        s.insert(s.begin() + pos, key);
      }
      break;
    }
    case 1: {
      // A replica ack never arrives: drop a 'received' event.
      auto it = std::find(s.begin(), s.end(), kHdfsReceived);
      if (it != s.end()) s.erase(it);
      // And the responder retries abnormally often.
      for (int i = 0; i < 4; ++i) {
        s.insert(s.begin() + 1 + rng->UniformU64(s.size() - 1),
                 kHdfsResponder);
      }
      break;
    }
    default: {
      // Spurious deletes after close.
      const int count = rng->UniformInt(2, 4);
      for (int i = 0; i < count; ++i) s.push_back(kHdfsDelete);
      break;
    }
  }
  return s;
}

// ---- Phased-stream generator (BGL / Thunderbird shape) ----

struct PhasedStreamConfig {
  std::string name;
  int phases = 4;
  int keys_per_phase = 5;
  int error_keys = 6;
  int window = 40;
  int phase_len_min = 6;
  int phase_len_max = 14;
  /// Probability of emitting an out-of-order key inside a phase.
  double jitter = 0.05;
  /// Length of an anomaly burst.
  int burst_min = 6;
  int burst_max = 16;
};

/// Emits a stream of `length` keys from cycling phases. Phase p uses keys
/// [1 + p*keys_per_phase, 1 + (p+1)*keys_per_phase) in rotating order.
std::vector<int> PhasedStream(const PhasedStreamConfig& cfg, int length,
                              util::Rng* rng) {
  std::vector<int> out;
  out.reserve(length);
  int phase = rng->UniformInt(0, cfg.phases - 1);
  while (static_cast<int>(out.size()) < length) {
    const int base = 1 + phase * cfg.keys_per_phase;
    const int span = rng->UniformInt(cfg.phase_len_min, cfg.phase_len_max);
    for (int i = 0; i < span && static_cast<int>(out.size()) < length; ++i) {
      if (rng->Bernoulli(cfg.jitter)) {
        out.push_back(base + rng->UniformInt(0, cfg.keys_per_phase - 1));
      } else {
        out.push_back(base + i % cfg.keys_per_phase);
      }
    }
    phase = (phase + 1) % cfg.phases;
  }
  return out;
}

LogDataset MakePhasedDataset(const PhasedStreamConfig& cfg,
                             const SyslogOptions& options, util::Rng* rng) {
  LogDataset ds;
  ds.name = cfg.name;
  const int error_base = 1 + cfg.phases * cfg.keys_per_phase;
  ds.vocab_size = error_base + cfg.error_keys;

  auto windows_from_stream = [&](const std::vector<int>& stream) {
    std::vector<std::vector<int>> windows;
    for (size_t start = 0; start + cfg.window <= stream.size();
         start += cfg.window) {
      windows.emplace_back(stream.begin() + start,
                           stream.begin() + start + cfg.window);
    }
    return windows;
  };

  // Training stream: purely normal.
  const int train_len = options.train_sessions * cfg.window;
  ds.train = windows_from_stream(PhasedStream(cfg, train_len, rng));

  // Normal test windows.
  const int normal_len = options.normal_test_sessions * cfg.window;
  for (auto& w : windows_from_stream(PhasedStream(cfg, normal_len, rng))) {
    ds.test_sessions.push_back(std::move(w));
    ds.test_labels.push_back(false);
  }
  // Abnormal test windows: normal background with an error burst.
  for (int i = 0; i < options.abnormal_test_sessions; ++i) {
    std::vector<int> w = PhasedStream(cfg, cfg.window, rng);
    const int burst = rng->UniformInt(cfg.burst_min, cfg.burst_max);
    const int start = rng->UniformInt(0, cfg.window - burst);
    for (int j = 0; j < burst; ++j) {
      w[start + j] = error_base + rng->UniformInt(0, cfg.error_keys - 1);
    }
    ds.test_sessions.push_back(std::move(w));
    ds.test_labels.push_back(true);
  }
  return ds;
}

}  // namespace

LogDataset MakeHdfsLikeDataset(const SyslogOptions& options, util::Rng* rng) {
  LogDataset ds;
  ds.name = "hdfs-like";
  ds.vocab_size = kHdfsVocab;
  ds.train.reserve(options.train_sessions);
  for (int i = 0; i < options.train_sessions; ++i) {
    ds.train.push_back(HdfsNormalSession(rng));
  }
  for (int i = 0; i < options.normal_test_sessions; ++i) {
    ds.test_sessions.push_back(HdfsNormalSession(rng));
    ds.test_labels.push_back(false);
  }
  for (int i = 0; i < options.abnormal_test_sessions; ++i) {
    ds.test_sessions.push_back(HdfsAbnormalSession(rng));
    ds.test_labels.push_back(true);
  }
  return ds;
}

LogDataset MakeBglLikeDataset(const SyslogOptions& options, util::Rng* rng) {
  PhasedStreamConfig cfg;
  cfg.name = "bgl-like";
  cfg.phases = 5;
  cfg.keys_per_phase = 6;
  cfg.error_keys = 8;
  cfg.window = 40;
  cfg.jitter = 0.02;
  return MakePhasedDataset(cfg, options, rng);
}

LogDataset MakeThunderbirdLikeDataset(const SyslogOptions& options,
                                      util::Rng* rng) {
  PhasedStreamConfig cfg;
  cfg.name = "thunderbird-like";
  cfg.phases = 8;
  cfg.keys_per_phase = 12;
  cfg.error_keys = 10;
  cfg.window = 50;
  cfg.jitter = 0.015;
  cfg.burst_min = 12;
  cfg.burst_max = 25;
  return MakePhasedDataset(cfg, options, rng);
}

}  // namespace ucad::workload
