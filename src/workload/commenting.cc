#include "workload/commenting.h"

#include <string>

namespace ucad::workload {

namespace {

std::string RandId(util::Rng* rng) {
  return std::to_string(rng->UniformInt(1, 99999));
}

/// Builds a fixed-shape family (one variant) whose SQL text embeds `count`
/// literal values at the positions marked by '@' in `pattern`.
OpFamily FixedFamily(std::string name, sql::CommandType command,
                     std::string table, std::string pattern,
                     bool rare = false) {
  OpFamily family;
  family.name = std::move(name);
  family.command = command;
  family.table = std::move(table);
  family.shape_variants = {1};
  family.rare = rare;
  family.realize = [pattern = std::move(pattern)](int /*shape*/,
                                                  util::Rng* rng) {
    std::string out;
    out.reserve(pattern.size() + 16);
    for (char c : pattern) {
      if (c == '@') {
        out += RandId(rng);
      } else {
        out += c;
      }
    }
    return out;
  };
  return family;
}

}  // namespace

ScenarioSpec MakeCommentingScenario(const CommentingOptions& options) {
  ScenarioSpec spec;
  spec.name = "commenting";
  spec.min_tasks = options.min_tasks;
  spec.max_tasks = options.max_tasks;
  spec.users = {"user1", "user2", "user3", "user4", "user5", "user6"};
  spec.addresses = {"10.0.0.11", "10.0.0.12", "10.0.0.13",
                    "10.0.0.14", "10.0.0.15", "10.0.0.16"};

  auto& f = spec.families;
  // --- 7 select families ---
  const int kSelVideo = static_cast<int>(f.size());
  f.push_back(FixedFamily("sel_video", sql::CommandType::kSelect, "t_video",
                          "SELECT * FROM t_video WHERE vid=@"));
  const int kSelDanmu = static_cast<int>(f.size());
  f.push_back(FixedFamily(
      "sel_danmu", sql::CommandType::kSelect, "danmu_display",
      "SELECT text, ts FROM danmu_display WHERE vid=@ AND ts>@"));
  const int kSelContent = static_cast<int>(f.size());
  f.push_back(FixedFamily("sel_content", sql::CommandType::kSelect,
                          "t_content",
                          "SELECT count FROM t_content WHERE danmuKey=@"));
  const int kSelUser = static_cast<int>(f.size());
  f.push_back(FixedFamily("sel_user", sql::CommandType::kSelect, "t_user",
                          "SELECT uid, name FROM t_user WHERE uid=@"));
  const int kSelLike = static_cast<int>(f.size());
  f.push_back(FixedFamily("sel_like", sql::CommandType::kSelect, "t_like",
                          "SELECT cnt FROM t_like WHERE danmuKey=@"));
  const int kSelStat = static_cast<int>(f.size());
  f.push_back(FixedFamily("sel_stat", sql::CommandType::kSelect, "t_stat",
                          "SELECT * FROM t_stat WHERE day=@"));
  const int kSelRmMac = static_cast<int>(f.size());
  f.push_back(FixedFamily("sel_rm_mac", sql::CommandType::kSelect, "t_rm_mac",
                          "SELECT * FROM t_rm_mac WHERE mac=@"));

  // --- 4 insert families ---
  const int kInsDanmu = static_cast<int>(f.size());
  f.push_back(FixedFamily(
      "ins_danmu", sql::CommandType::kInsert, "danmu_display",
      "INSERT INTO danmu_display(vid, uid, text, ts) VALUES (@, @, '@', @)"));
  const int kInsLike = static_cast<int>(f.size());
  f.push_back(FixedFamily("ins_like", sql::CommandType::kInsert, "t_like",
                          "INSERT INTO t_like(danmuKey, uid) VALUES (@, @)"));
  const int kInsContent = static_cast<int>(f.size());
  f.push_back(
      FixedFamily("ins_content", sql::CommandType::kInsert, "t_content",
                  "INSERT INTO t_content(danmuKey, count) VALUES (@, @)"));
  const int kInsRmMac = static_cast<int>(f.size());
  f.push_back(FixedFamily(
      "ins_rm_mac", sql::CommandType::kInsert, "t_rm_mac",
      "INSERT INTO t_rm_mac(mac, reason) VALUES ('@', '@')", /*rare=*/true));

  // --- 4 update families ---
  const int kUpdContent = static_cast<int>(f.size());
  f.push_back(
      FixedFamily("upd_content", sql::CommandType::kUpdate, "t_content",
                  "UPDATE t_content SET count=@ WHERE danmuKey=@"));
  const int kUpdStat = static_cast<int>(f.size());
  f.push_back(FixedFamily("upd_stat", sql::CommandType::kUpdate, "t_stat",
                          "UPDATE t_stat SET views=@ WHERE day=@"));
  const int kUpdUser = static_cast<int>(f.size());
  f.push_back(FixedFamily("upd_user", sql::CommandType::kUpdate, "t_user",
                          "UPDATE t_user SET last_seen=@ WHERE uid=@"));
  const int kUpdVideo = static_cast<int>(f.size());
  f.push_back(FixedFamily("upd_video", sql::CommandType::kUpdate, "t_video",
                          "UPDATE t_video SET hot=@ WHERE vid=@"));

  // --- 5 delete families ---
  const int kDelDanmu = static_cast<int>(f.size());
  f.push_back(FixedFamily("del_danmu", sql::CommandType::kDelete,
                          "danmu_display",
                          "DELETE FROM danmu_display WHERE danmuKey=@"));
  const int kDelLike = static_cast<int>(f.size());
  f.push_back(
      FixedFamily("del_like", sql::CommandType::kDelete, "t_like",
                  "DELETE FROM t_like WHERE danmuKey=@ AND uid=@"));
  const int kDelRmMacNormal = static_cast<int>(f.size());
  f.push_back(FixedFamily("del_rm_mac_normal", sql::CommandType::kDelete,
                          "t_rm_mac",
                          "DELETE FROM t_rm_mac WHERE normal_mac='@'",
                          /*rare=*/true));
  const int kDelRmMacAbnormal = static_cast<int>(f.size());
  f.push_back(FixedFamily("del_rm_mac_abnormal", sql::CommandType::kDelete,
                          "t_rm_mac",
                          "DELETE FROM t_rm_mac WHERE abnormal_mac='@'",
                          /*rare=*/true));
  const int kDelStat = static_cast<int>(f.size());
  f.push_back(FixedFamily("del_stat", sql::CommandType::kDelete, "t_stat",
                          "DELETE FROM t_stat WHERE day<@", /*rare=*/true));

  // --- Tasks ---
  // Watch: open a video and page through its comments (selects repeat and
  // are removable; comment/like reads are interchangeable).
  {
    TaskSpec task;
    task.name = "watch";
    task.weight = 3.0;
    task.steps = {
        TaskStep{{kSelVideo}, 1, 1, false, -1},
        TaskStep{{kSelDanmu}, 1, 4, true, 0},
        TaskStep{{kSelContent}, 1, 2, true, 0},
        TaskStep{{kSelLike}, 1, 1, false, 0},
    };
    spec.tasks.push_back(task);
  }
  // Post: insert a comment, create or bump its counter record, verify.
  {
    TaskSpec task;
    task.name = "post";
    task.weight = 3.0;
    task.steps = {
        TaskStep{{kSelVideo}, 1, 1, false, -1},
        TaskStep{{kInsDanmu}, 1, 1, false, -1},
        TaskStep{{kUpdContent, kInsContent}, 1, 1, false, 1},
        TaskStep{{kSelDanmu}, 1, 1, false, 1},
    };
    spec.tasks.push_back(task);
  }
  // Like: read then record a like.
  {
    TaskSpec task;
    task.name = "like";
    task.weight = 2.0;
    task.steps = {
        TaskStep{{kSelDanmu}, 1, 1, false, -1},
        TaskStep{{kInsLike}, 1, 1, false, 0},
        TaskStep{{kSelLike}, 1, 1, false, 0},
    };
    spec.tasks.push_back(task);
  }
  // Moderate: ban a client MAC and clean its comments (rare admin flow;
  // keeps the rare delete/insert families in the training vocabulary).
  {
    TaskSpec task;
    task.name = "moderate";
    task.weight = 0.5;
    task.steps = {
        TaskStep{{kSelRmMac}, 1, 1, false, -1},
        TaskStep{{kInsRmMac}, 1, 1, false, 2},
        TaskStep{{kDelRmMacNormal, kDelRmMacAbnormal}, 1, 1, false, 2},
        TaskStep{{kDelDanmu}, 1, 2, false, 2},
        TaskStep{{kDelLike}, 1, 1, false, 2},
        TaskStep{{kUpdStat}, 1, 1, false, -1},
    };
    spec.tasks.push_back(task);
  }
  // Maintenance: nightly statistics upkeep (rare).
  {
    TaskSpec task;
    task.name = "maintenance";
    task.weight = 0.4;
    task.steps = {
        TaskStep{{kSelStat}, 1, 2, true, -1},
        TaskStep{{kUpdStat}, 1, 1, false, 3},
        TaskStep{{kUpdVideo}, 1, 1, false, 3},
        TaskStep{{kDelStat}, 1, 1, false, -1},
    };
    spec.tasks.push_back(task);
  }
  // Account upkeep.
  {
    TaskSpec task;
    task.name = "account";
    task.weight = 1.0;
    task.steps = {
        TaskStep{{kSelUser}, 1, 1, false, 0},
        TaskStep{{kUpdUser}, 1, 1, false, 0},
    };
    spec.tasks.push_back(task);
  }
  spec.interleave_prob = 0.15;
  // User intents chain sequentially (watch -> like -> post -> watch ...):
  // rows/cols follow the task order above
  // {watch, post, like, moderate, maintenance, account}.
  spec.task_transitions = {
      {0.25, 0.25, 0.40, 0.02, 0.02, 0.06},  // after watch
      {0.50, 0.15, 0.25, 0.02, 0.03, 0.05},  // after post
      {0.55, 0.25, 0.10, 0.02, 0.03, 0.05},  // after like
      {0.30, 0.05, 0.05, 0.30, 0.30, 0.00},  // after moderate
      {0.40, 0.05, 0.05, 0.20, 0.25, 0.05},  // after maintenance
      {0.60, 0.20, 0.20, 0.00, 0.00, 0.00},  // after account
  };
  return spec;
}

}  // namespace ucad::workload
