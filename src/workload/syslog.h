#ifndef UCAD_WORKLOAD_SYSLOG_H_
#define UCAD_WORKLOAD_SYSLOG_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace ucad::workload {

/// A system-log anomaly-detection dataset in already-tokenized form:
/// sessions are sequences of integer event keys (key 0 reserved for
/// padding). These substitute for the public HDFS / BGL / Thunderbird
/// traces in the paper's transferability study (Table 6). Unlike human
/// database sessions, application logs follow rigid orderings — the
/// generators control exactly that property, which is what Table 6's
/// precision/recall trade-off hinges on.
struct LogDataset {
  std::string name;
  /// Keys are in [0, vocab_size); anomaly-only keys are included.
  int vocab_size = 0;
  /// Normal sessions for training.
  std::vector<std::vector<int>> train;
  /// Test sessions with ground-truth labels (true = abnormal).
  std::vector<std::vector<int>> test_sessions;
  std::vector<bool> test_labels;
};

/// Sizing knobs shared by the three generators.
struct SyslogOptions {
  int train_sessions = 300;
  int normal_test_sessions = 200;
  int abnormal_test_sessions = 60;
};

/// HDFS-like: per-block lifecycle sessions (allocate → per-replica
/// receive/ack → optional verification → close). Anomalies are exception
/// events, missing replica acks, and spurious deletes.
LogDataset MakeHdfsLikeDataset(const SyslogOptions& options, util::Rng* rng);

/// BGL-like: supercomputer node log stream cut into fixed windows; phases
/// (boot / compute / io) cycle with rigid intra-phase order. Anomalies are
/// hardware-error bursts.
LogDataset MakeBglLikeDataset(const SyslogOptions& options, util::Rng* rng);

/// Thunderbird-like: larger vocabulary stream, also windowed; anomalies are
/// sustained failure bursts (every abnormal window is saturated with error
/// keys, which is why recall 1.0 is attainable — as in the paper).
LogDataset MakeThunderbirdLikeDataset(const SyslogOptions& options,
                                      util::Rng* rng);

}  // namespace ucad::workload

#endif  // UCAD_WORKLOAD_SYSLOG_H_
