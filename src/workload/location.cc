#include "workload/location.h"

#include <cmath>
#include <string>

namespace ucad::workload {

namespace {

std::string RandId(util::Rng* rng) {
  return std::to_string(rng->UniformInt(1, 99999));
}

/// Peaked (Zipf-like) weight for the v-th shape variant: applications use
/// a few statement shapes most of the time with a long tail.
double ZipfWeight(int v) { return 1.0 / std::pow(1.0 + v, 2.2); }

/// "($a, $b, ...)" value tuple with `arity` random literals.
std::string ValueTuple(int arity, util::Rng* rng) {
  std::string out = "(";
  for (int i = 0; i < arity; ++i) {
    if (i > 0) out += ", ";
    out += RandId(rng);
  }
  out += ")";
  return out;
}

/// Comma-separated list of `count` random literals.
std::string ValueList(int count, util::Rng* rng) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    if (i > 0) out += ", ";
    out += RandId(rng);
  }
  return out;
}

/// SELECT with a variable-length IN list (Figure 6 statement form).
OpFamily SelectFpFamily(const std::string& table, int variants) {
  OpFamily family;
  family.name = "sel_" + table;
  family.command = sql::CommandType::kSelect;
  family.table = table;
  family.shape_variants.clear();
  for (int v = 0; v < variants; ++v) {
    family.shape_variants.push_back(2 + v);
    family.shape_weights.push_back(ZipfWeight(v));
  }
  family.realize = [table](int shape, util::Rng* rng) {
    return "SELECT * FROM " + table + " WHERE pnci=" + RandId(rng) +
           " and gridId IN (" + ValueList(shape, rng) + ")";
  };
  return family;
}

/// Multi-row INSERT with a variable row count (Figure 6 statement form).
OpFamily InsertRowsFamily(const std::string& table, const std::string& cols,
                          int arity, int variants) {
  OpFamily family;
  family.name = "ins_" + table;
  family.command = sql::CommandType::kInsert;
  family.table = table;
  family.shape_variants.clear();
  for (int v = 0; v < variants; ++v) {
    family.shape_variants.push_back(1 + v);
    family.shape_weights.push_back(ZipfWeight(v));
  }
  family.realize = [table, cols, arity](int shape, util::Rng* rng) {
    std::string out = "INSERT INTO " + table + "(" + cols + ") VALUES ";
    for (int r = 0; r < shape; ++r) {
      if (r > 0) out += ", ";
      out += ValueTuple(arity, rng);
    }
    return out;
  };
  return family;
}

/// UPDATE with a variable-length IN list in the predicate.
OpFamily UpdateInFamily(const std::string& table, int variants) {
  OpFamily family;
  family.name = "upd_" + table;
  family.command = sql::CommandType::kUpdate;
  family.table = table;
  family.shape_variants.clear();
  for (int v = 0; v < variants; ++v) {
    family.shape_variants.push_back(1 + v);
    family.shape_weights.push_back(ZipfWeight(v));
  }
  family.realize = [table](int shape, util::Rng* rng) {
    return "UPDATE " + table + " SET pi=" + RandId(rng) +
           ", cn=" + RandId(rng) + " WHERE pnci IN (" +
           ValueList(shape, rng) + ")";
  };
  return family;
}

/// Single fixed-shape family; '@' marks a random literal.
OpFamily FixedFamily(std::string name, sql::CommandType command,
                     std::string table, std::string pattern,
                     bool rare = false) {
  OpFamily family;
  family.name = std::move(name);
  family.command = command;
  family.table = std::move(table);
  family.shape_variants = {1};
  family.rare = rare;
  family.realize = [pattern = std::move(pattern)](int /*shape*/,
                                                  util::Rng* rng) {
    std::string out;
    out.reserve(pattern.size() + 16);
    for (char c : pattern) {
      if (c == '@') {
        out += RandId(rng);
      } else {
        out += c;
      }
    }
    return out;
  };
  return family;
}

}  // namespace

ScenarioSpec MakeLocationScenario(const LocationOptions& options) {
  ScenarioSpec spec;
  spec.name = "location";
  spec.min_tasks = options.min_tasks;
  spec.max_tasks = options.max_tasks;
  spec.users = {"app_nav",  "app_maps",  "app_fit",  "app_ride",
                "app_food", "app_photo", "app_social", "app_weather"};
  spec.addresses = {"10.1.0.21", "10.1.0.22", "10.1.0.23", "10.1.0.24",
                    "10.1.0.25", "10.1.0.26", "10.1.0.27", "10.1.0.28"};

  auto& f = spec.families;
  constexpr int kNumFpTables = 9;
  constexpr int kNumPicnTables = 3;

  // Fingerprint tables: per-table select / insert families.
  std::vector<int> sel_fp, ins_fp;
  for (int t = 1; t <= kNumFpTables; ++t) {
    const std::string table = "t_cell_fp_" + std::to_string(t);
    sel_fp.push_back(static_cast<int>(f.size()));
    f.push_back(SelectFpFamily(table, options.select_variants));
    ins_fp.push_back(static_cast<int>(f.size()));
    f.push_back(InsertRowsFamily(table, "pnci, gridId, fps", 3,
                                 options.insert_variants));
  }
  // PICN tables: select / insert / update families.
  std::vector<int> sel_picn, ins_picn, upd_picn;
  for (int t = 1; t <= kNumPicnTables; ++t) {
    const std::string table = "t_cell_picn_" + std::to_string(t);
    sel_picn.push_back(static_cast<int>(f.size()));
    f.push_back(FixedFamily("sel_" + table, sql::CommandType::kSelect, table,
                            "SELECT * FROM " + table + " WHERE pnci=@"));
    ins_picn.push_back(static_cast<int>(f.size()));
    f.push_back(InsertRowsFamily(table, "pnci, pi, cn", 3,
                                 options.picn_insert_variants));
    upd_picn.push_back(static_cast<int>(f.size()));
    f.push_back(UpdateInFamily(table, options.update_variants));
  }
  // Location report / auth / offline tables.
  const int kSelAuth = static_cast<int>(f.size());
  f.push_back(FixedFamily("sel_auth", sql::CommandType::kSelect, "t_auth",
                          "SELECT token FROM t_auth WHERE app=@"));
  const int kUpdAuth = static_cast<int>(f.size());
  f.push_back(FixedFamily("upd_auth", sql::CommandType::kUpdate, "t_auth",
                          "UPDATE t_auth SET last=@ WHERE app=@"));
  const int kInsLocRm = static_cast<int>(f.size());
  f.push_back(FixedFamily(
      "ins_loc_rm", sql::CommandType::kInsert, "loc_rm",
      "INSERT INTO loc_rm(dev, lat, lon, ts) VALUES (@, @, @, @)"));
  const int kSelLocRm = static_cast<int>(f.size());
  f.push_back(FixedFamily("sel_loc_rm", sql::CommandType::kSelect, "loc_rm",
                          "SELECT lat, lon FROM loc_rm WHERE dev=@"));
  const int kInsLocRmf = static_cast<int>(f.size());
  f.push_back(FixedFamily(
      "ins_loc_rmf", sql::CommandType::kInsert, "loc_rmf",
      "INSERT INTO loc_rmf(dev, lat, lon, ts) VALUES (@, @, @, @)"));
  // The scenario's 4 delete families; all rare (Table 1: only 4 delete
  // keys in Scenario-II).
  const int kDelLocRmf = static_cast<int>(f.size());
  f.push_back(FixedFamily("del_loc_rmf", sql::CommandType::kDelete,
                          "loc_rmf", "DELETE FROM loc_rmf WHERE ts<@",
                          /*rare=*/true));
  const int kDelLocRm = static_cast<int>(f.size());
  f.push_back(FixedFamily("del_loc_rm", sql::CommandType::kDelete, "loc_rm",
                          "DELETE FROM loc_rm WHERE ts<@", /*rare=*/true));
  const int kDelFp = static_cast<int>(f.size());
  f.push_back(FixedFamily("del_fp", sql::CommandType::kDelete, "t_cell_fp_1",
                          "DELETE FROM t_cell_fp_1 WHERE pnci=@",
                          /*rare=*/true));
  const int kDelPicn = static_cast<int>(f.size());
  f.push_back(FixedFamily("del_picn", sql::CommandType::kDelete,
                          "t_cell_picn_1",
                          "DELETE FROM t_cell_picn_1 WHERE pnci=@",
                          /*rare=*/true));

  // --- Tasks ---
  // Location report: authenticate (61+512 combo of Figure 9b), record the
  // device position, read back, mirror for offline access.
  {
    TaskSpec task;
    task.name = "report_location";
    task.weight = 3.0;
    task.steps = {
        TaskStep{{kSelAuth}, 1, 1, false, -1},
        TaskStep{{kUpdAuth}, 1, 1, false, -1},
        TaskStep{{kInsLocRm}, 2, 5, false, -1},
        TaskStep{{kSelLocRm}, 1, 2, false, 0},
        TaskStep{{kInsLocRmf}, 1, 2, false, 0},
    };
    spec.tasks.push_back(task);
  }
  // Per-table fingerprint maintenance: insert new fingerprints then verify
  // (insert/select of the *same* table, as in Figure 6's session).
  for (int t = 0; t < kNumFpTables; ++t) {
    TaskSpec task;
    task.name = "fp_update_" + std::to_string(t + 1);
    task.weight = 1.2;
    task.steps = {
        TaskStep{{ins_fp[t]}, 4, 10, false, 0},
        TaskStep{{sel_fp[t]}, 3, 8, true, 0},
    };
    spec.tasks.push_back(task);
  }
  // Per-table PICN maintenance.
  for (int t = 0; t < kNumPicnTables; ++t) {
    TaskSpec task;
    task.name = "picn_update_" + std::to_string(t + 1);
    task.weight = 0.8;
    task.steps = {
        TaskStep{{ins_picn[t]}, 2, 5, false, 0},
        TaskStep{{sel_picn[t]}, 1, 3, true, 0},
        TaskStep{{upd_picn[t]}, 2, 5, false, 0},
    };
    spec.tasks.push_back(task);
  }
  // Cross-table query: consecutive selects over different fingerprint
  // tables — the paper's canonical interchangeable/removable example.
  {
    TaskSpec task;
    task.name = "query_fp";
    task.weight = 2.5;
    task.steps = {
        TaskStep{sel_fp, 2, 5, true, 0},
        TaskStep{sel_fp, 2, 5, true, 0},
    };
    spec.tasks.push_back(task);
  }
  // Offline sync: read recent positions, mirror them, expire old mirrors.
  {
    TaskSpec task;
    task.name = "offline_sync";
    task.weight = 0.7;
    task.steps = {
        TaskStep{{kSelLocRm}, 1, 3, true, -1},
        TaskStep{{kInsLocRmf}, 1, 3, false, -1},
        TaskStep{{kDelLocRmf}, 1, 1, false, -1},
    };
    spec.tasks.push_back(task);
  }
  // Rare admin cleanup: keeps the remaining delete keys in the vocabulary.
  {
    TaskSpec task;
    task.name = "cleanup";
    task.weight = 0.25;
    task.steps = {
        TaskStep{{kSelLocRm}, 1, 1, false, -1},
        TaskStep{{kDelLocRm}, 1, 1, false, 1},
        TaskStep{{kDelFp}, 1, 1, false, 1},
        TaskStep{{kDelPicn}, 1, 1, false, 1},
    };
    spec.tasks.push_back(task);
  }
  spec.interleave_prob = 0.35;
  // Task chaining: location reports repeat; fingerprint maintenance walks
  // the tables in order (fp_update_k -> fp_update_{k+1}); queries and
  // offline syncs follow reports. Rows/cols follow the task order above:
  // {report, fp_1..fp_9, picn_1..picn_3, query, offline, cleanup}.
  const int num_tasks = static_cast<int>(spec.tasks.size());
  spec.task_transitions.assign(num_tasks, std::vector<double>(num_tasks, 0.01));
  auto& tr = spec.task_transitions;
  const int kReport = 0, kFp0 = 1, kPicn0 = 10, kQuery = 13, kOffline = 14,
            kCleanup = 15;
  // After a report: mostly another report or a query, sometimes offline.
  tr[kReport][kReport] = 0.40;
  tr[kReport][kQuery] = 0.25;
  tr[kReport][kOffline] = 0.10;
  tr[kReport][kFp0] = 0.15;
  tr[kReport][kPicn0] = 0.05;
  // Fingerprint maintenance walks tables in order, then queries.
  for (int t = 0; t < 9; ++t) {
    tr[kFp0 + t][kFp0 + (t + 1) % 9] = 0.55;
    tr[kFp0 + t][kQuery] = 0.20;
    tr[kFp0 + t][kReport] = 0.10;
    tr[kFp0 + t][kPicn0 + t % 3] = 0.08;
  }
  for (int t = 0; t < 3; ++t) {
    tr[kPicn0 + t][kPicn0 + (t + 1) % 3] = 0.45;
    tr[kPicn0 + t][kFp0 + 3 * t] = 0.20;
    tr[kPicn0 + t][kReport] = 0.15;
    tr[kPicn0 + t][kQuery] = 0.10;
  }
  tr[kQuery][kReport] = 0.40;
  tr[kQuery][kQuery] = 0.25;
  tr[kQuery][kFp0] = 0.15;
  tr[kQuery][kOffline] = 0.10;
  tr[kOffline][kReport] = 0.50;
  tr[kOffline][kQuery] = 0.25;
  tr[kOffline][kOffline] = 0.10;
  tr[kCleanup][kReport] = 0.40;
  tr[kCleanup][kCleanup] = 0.20;
  tr[kCleanup][kQuery] = 0.25;
  return spec;
}

}  // namespace ucad::workload
