#ifndef UCAD_WORKLOAD_LOCATION_H_
#define UCAD_WORKLOAD_LOCATION_H_

#include "workload/scenario.h"

namespace ucad::workload {

/// Options controlling Scenario-II workload size. The *_variants knobs set
/// how many shape variants (IN-list lengths / multi-row INSERT row counts)
/// each statement family exposes; each variant becomes one statement key
/// after abstraction. Paper-scale defaults approximate Table 1's key
/// breakdown (238 select / 351 insert / 146 update / 4 delete over 15
/// tables); pass smaller values for a reduced repro-scale vocabulary.
struct LocationOptions {
  int select_variants = 26;       // per fp table (9 tables)
  int insert_variants = 35;       // per fp table
  int picn_insert_variants = 11;  // per picn table (3 tables)
  int update_variants = 48;       // per picn table
  /// Number of tasks per session (drives the average session length).
  int min_tasks = 8;
  int max_tasks = 16;
};

/// Scenario-II: a mobile location service. Apps authenticate, report device
/// locations, and maintain per-cell radio fingerprint tables; traffic is
/// dominated by select/insert with very few deletes (paper §6.1, Figure 6).
ScenarioSpec MakeLocationScenario(
    const LocationOptions& options = LocationOptions());

}  // namespace ucad::workload

#endif  // UCAD_WORKLOAD_LOCATION_H_
