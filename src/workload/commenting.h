#ifndef UCAD_WORKLOAD_COMMENTING_H_
#define UCAD_WORKLOAD_COMMENTING_H_

#include "workload/scenario.h"

namespace ucad::workload {

/// Options controlling the generated Scenario-I workload size. Defaults
/// match the paper's Table 1 statistics (avg session length 24, 20 keys
/// {7 select, 4 insert, 4 update, 5 delete}, 7 tables).
struct CommentingOptions {
  /// Number of tasks per session (drives the average session length).
  int min_tasks = 3;
  int max_tasks = 6;
};

/// Scenario-I: an online video commenting ("danmu") application. Users
/// watch videos, post/like/moderate comments; operations are dominated by
/// insert/update/delete traffic (paper §6.1).
ScenarioSpec MakeCommentingScenario(
    const CommentingOptions& options = CommentingOptions());

}  // namespace ucad::workload

#endif  // UCAD_WORKLOAD_COMMENTING_H_
