#ifndef UCAD_WORKLOAD_ANOMALY_H_
#define UCAD_WORKLOAD_ANOMALY_H_

#include <vector>

#include "sql/session.h"
#include "util/rng.h"
#include "workload/scenario.h"

namespace ucad::workload {

/// Synthesizers for the paper's testing datasets (§6.1): two normal
/// mutations (V2 partial swap, V3 partial remove) and three anomaly
/// families (A1 privilege abuse, A2 credential stealing, A3 misoperations).
/// All take a generated normal session (and the generator, for operation
/// pools) and return a new labeled session.
class AnomalySynthesizer {
 public:
  /// `generator` must outlive the synthesizer.
  explicit AnomalySynthesizer(const SessionGenerator* generator);

  /// V2: randomly permutes operations inside interchangeable swap groups.
  /// The session goal is preserved by construction (only generator-marked
  /// interchangeable operations move).
  sql::RawSession PartialSwap(const sql::RawSession& base,
                              util::Rng* rng) const;

  /// V3: removes a random subset of generator-marked removable operations
  /// (repeated reads), preserving the session goal.
  sql::RawSession PartialRemove(const sql::RawSession& base,
                                util::Rng* rng) const;

  /// A1: combines repeatedly or randomly chosen select operations with a
  /// normal session — bulk data retrieval violating business rules.
  sql::RawSession PrivilegeAbuse(const sql::RawSession& base,
                                 util::Rng* rng) const;

  /// A2: stealthily inserts delete and other irrelevant operations into a
  /// normal session; the injected volume stays below `max_injection_ratio`
  /// (default 10%, per the paper).
  sql::RawSession CredentialStealing(const sql::RawSession& base,
                                     util::Rng* rng,
                                     double max_injection_ratio = 0.10) const;

  /// A3: random combination of rarely performed (but legitimate)
  /// operations — a logically inconsistent session.
  sql::RawSession Misoperation(int approx_length, util::Rng* rng) const;

 private:
  const SessionGenerator* generator_;
};

/// Builds a hybrid (poisoned) training set: normal sessions plus
/// `anomaly_ratio` * |normals| abnormal sessions drawn uniformly from
/// `anomalies`, shuffled (paper §6.5).
std::vector<sql::RawSession> MixHybridTraining(
    const std::vector<sql::RawSession>& normals,
    const std::vector<sql::RawSession>& anomalies, double anomaly_ratio,
    util::Rng* rng);

}  // namespace ucad::workload

#endif  // UCAD_WORKLOAD_ANOMALY_H_
