#include "workload/scenario.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>

#include "util/logging.h"

namespace ucad::workload {

namespace {

constexpr int64_t kSecondsPerDay = 24 * 3600;
// Arbitrary but fixed epoch origin for generated timestamps (2026-01-01).
constexpr int64_t kEpochOrigin = 1767225600;

/// Draws a shape variant: by shape_weights when present, else uniform.
int DrawShapeImpl(const OpFamily& family, util::Rng* rng) {
  if (!family.shape_weights.empty()) {
    UCAD_CHECK_EQ(family.shape_weights.size(), family.shape_variants.size());
    return family.shape_variants[rng->Categorical(family.shape_weights)];
  }
  return family.shape_variants[rng->UniformU64(family.shape_variants.size())];
}

}  // namespace

SessionGenerator::SessionGenerator(ScenarioSpec spec) : spec_(std::move(spec)) {
  UCAD_CHECK(!spec_.families.empty());
  UCAD_CHECK(!spec_.tasks.empty());
  UCAD_CHECK(!spec_.users.empty());
  UCAD_CHECK_EQ(spec_.users.size(), spec_.addresses.size());
  for (size_t i = 0; i < spec_.families.size(); ++i) {
    const OpFamily& family = spec_.families[i];
    UCAD_CHECK(!family.shape_variants.empty())
        << "family " << family.name << " has no shape variants";
    UCAD_CHECK(static_cast<bool>(family.realize))
        << "family " << family.name << " has no realize function";
    if (family.rare) {
      rare_families_.push_back(static_cast<int>(i));
      if (family.command == sql::CommandType::kDelete) {
        rare_delete_families_.push_back(static_cast<int>(i));
      }
    }
    if (family.command == sql::CommandType::kDelete) {
      delete_families_.push_back(static_cast<int>(i));
    }
  }
  // Deterministic per-user shape assignment (stable across generators built
  // from the same spec).
  util::Rng shape_rng(0xC0FFEEULL + spec_.users.size() * 131 +
                      spec_.families.size());
  user_shapes_.resize(spec_.users.size());
  for (auto& shapes : user_shapes_) {
    shapes.reserve(spec_.families.size());
    for (const OpFamily& family : spec_.families) {
      shapes.push_back(DrawShapeImpl(family, &shape_rng));
    }
  }
}

std::string SessionGenerator::RealizeFamily(const OpFamily& family,
                                            util::Rng* rng) const {
  return family.realize(DrawShapeImpl(family, rng), rng);
}

void SessionGenerator::EmitTask(const TaskSpec& task, util::Rng* rng,
                                std::vector<EmittedOp>* out,
                                int* next_swap_group,
                                const std::vector<int>& user_shapes) const {
  // Map the task's local swap groups to globally unique ids, then shuffle
  // the order of the steps inside each group (heterogeneous user behavior).
  std::vector<int> order(task.steps.size());
  std::iota(order.begin(), order.end(), 0);
  // Collect positions per local swap group and permute them.
  std::vector<std::pair<int, std::vector<int>>> groups;  // (local id, positions)
  for (size_t i = 0; i < task.steps.size(); ++i) {
    const int g = task.steps[i].swap_group;
    if (g < 0) continue;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [g](const auto& e) { return e.first == g; });
    if (it == groups.end()) {
      groups.push_back({g, {static_cast<int>(i)}});
    } else {
      it->second.push_back(static_cast<int>(i));
    }
  }
  for (auto& [local_id, positions] : groups) {
    std::vector<int> shuffled = positions;
    rng->Shuffle(&shuffled);
    for (size_t j = 0; j < positions.size(); ++j) {
      order[positions[j]] = shuffled[j];
    }
  }
  // Assign global swap-group ids for this task instance.
  std::vector<int> global_group(task.steps.size(), -1);
  for (auto& [local_id, positions] : groups) {
    const int gid = (*next_swap_group)++;
    for (int pos : positions) global_group[pos] = gid;
  }
  for (int step_index : order) {
    const TaskStep& step = task.steps[step_index];
    UCAD_CHECK(!step.family_choices.empty());
    const int family_index = step.family_choices[rng->UniformU64(
        step.family_choices.size())];
    UCAD_CHECK(family_index >= 0 &&
               family_index < static_cast<int>(spec_.families.size()));
    const OpFamily& family = spec_.families[family_index];
    const int repeats = rng->UniformInt(step.min_repeat, step.max_repeat);
    // The statement shape is sticky per user (see user_shapes_).
    const int shape = user_shapes[family_index];
    for (int r = 0; r < repeats; ++r) {
      EmittedOp op;
      op.sql = family.realize(shape, rng);
      op.swap_group = global_group[step_index];
      op.removable = step.removable && r > 0;
      out->push_back(std::move(op));
    }
  }
}

sql::RawSession SessionGenerator::AssembleSession(
    const std::vector<EmittedOp>& ops, util::Rng* rng,
    size_t user_index) const {
  sql::RawSession session;
  session.attrs.user = spec_.users[user_index];
  session.attrs.client_address = spec_.addresses[user_index];
  const int day = rng->UniformInt(0, 364);
  const int hour =
      rng->UniformInt(spec_.business_start_hour, spec_.business_end_hour - 1);
  const int minute = rng->UniformInt(0, 59);
  session.attrs.start_time_s =
      kEpochOrigin + day * kSecondsPerDay + hour * 3600 + minute * 60;
  int64_t offset = 0;
  session.operations.reserve(ops.size());
  for (const EmittedOp& op : ops) {
    sql::OperationRecord record;
    record.sql = op.sql;
    record.time_offset_s = offset;
    record.swap_group = op.swap_group;
    record.removable = op.removable;
    session.operations.push_back(std::move(record));
    offset += rng->UniformInt(spec_.min_op_gap_s, spec_.max_op_gap_s);
  }
  return session;
}

sql::RawSession SessionGenerator::GenerateNormal(util::Rng* rng) const {
  std::vector<double> weights;
  weights.reserve(spec_.tasks.size());
  for (const TaskSpec& t : spec_.tasks) weights.push_back(t.weight);
  const bool markov =
      spec_.task_transitions.size() == spec_.tasks.size();
  const int task_count = rng->UniformInt(spec_.min_tasks, spec_.max_tasks);
  int next_swap_group = 0;
  size_t task_index = rng->Categorical(weights);
  // The session's user determines its sticky statement shapes; draw the
  // user first so AssembleSession and EmitTask agree.
  const size_t user_index = rng->UniformU64(spec_.users.size());
  std::vector<std::vector<EmittedOp>> tasks;
  tasks.reserve(task_count);
  for (int t = 0; t < task_count; ++t) {
    std::vector<EmittedOp> task_ops;
    EmitTask(spec_.tasks[task_index], rng, &task_ops, &next_swap_group,
             user_shapes_[user_index]);
    tasks.push_back(std::move(task_ops));
    task_index = markov
                     ? rng->Categorical(spec_.task_transitions[task_index])
                     : rng->Categorical(weights);
  }
  // Concurrent-intent interleaving: adjacent tasks may riffle-merge (each
  // keeps its internal order), producing heterogeneous exact orderings
  // from identical operation multisets.
  std::vector<EmittedOp> ops;
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (t + 1 < tasks.size() && rng->Bernoulli(spec_.interleave_prob)) {
      std::vector<EmittedOp>& a = tasks[t];
      std::vector<EmittedOp>& b = tasks[t + 1];
      size_t ia = 0, ib = 0;
      while (ia < a.size() || ib < b.size()) {
        const double p_a =
            static_cast<double>(a.size() - ia) /
            ((a.size() - ia) + (b.size() - ib));
        if (ia < a.size() && (ib >= b.size() || rng->UniformDouble() < p_a)) {
          ops.push_back(std::move(a[ia++]));
        } else {
          ops.push_back(std::move(b[ib++]));
        }
      }
      ++t;  // consumed both tasks
    } else {
      for (EmittedOp& op : tasks[t]) ops.push_back(std::move(op));
    }
  }
  return AssembleSession(ops, rng, user_index);
}

std::vector<sql::RawSession> SessionGenerator::GenerateNormalBatch(
    int count, util::Rng* rng) const {
  std::vector<sql::RawSession> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(GenerateNormal(rng));
  return out;
}

sql::RawSession SessionGenerator::GenerateNoisy(NoiseKind kind,
                                                util::Rng* rng) const {
  sql::RawSession session = GenerateNormal(rng);
  switch (kind) {
    case NoiseKind::kUnknownAddress:
      session.attrs.client_address =
          "203.0.113." + std::to_string(rng->UniformInt(1, 254));
      break;
    case NoiseKind::kOffHours: {
      // Rewind to 03:00 on the same day.
      const int64_t day_start =
          session.attrs.start_time_s -
          (session.attrs.start_time_s - kEpochOrigin) % kSecondsPerDay;
      session.attrs.start_time_s = day_start + 3 * 3600;
      break;
    }
    case NoiseKind::kForbiddenTable: {
      sql::OperationRecord record;
      record.sql = "SELECT * FROM t_credentials WHERE uid=" +
                   std::to_string(rng->UniformInt(1, 9999));
      record.time_offset_s =
          session.operations.empty()
              ? 0
              : session.operations.back().time_offset_s + 5;
      session.operations.push_back(std::move(record));
      break;
    }
    case NoiseKind::kHugeGaps: {
      int64_t offset = 0;
      for (auto& op : session.operations) {
        op.time_offset_s = offset;
        offset += 3600 + rng->UniformInt(0, 1800);
      }
      break;
    }
  }
  return session;
}

std::string SessionGenerator::RealizeRandom(sql::CommandType command,
                                            util::Rng* rng) const {
  std::vector<int> candidates;
  for (size_t i = 0; i < spec_.families.size(); ++i) {
    if (spec_.families[i].command == command) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  if (candidates.empty()) return "";
  const OpFamily& family =
      spec_.families[candidates[rng->UniformU64(candidates.size())]];
  return RealizeFamily(family, rng);
}

std::string SessionGenerator::RealizeAny(util::Rng* rng) const {
  const OpFamily& family =
      spec_.families[rng->UniformU64(spec_.families.size())];
  return RealizeFamily(family, rng);
}

std::string SessionGenerator::RealizeByName(const std::string& name,
                                            util::Rng* rng, int shape) const {
  for (const OpFamily& family : spec_.families) {
    if (family.name != name) continue;
    if (shape < 0) return RealizeFamily(family, rng);
    return family.realize(shape, rng);
  }
  UCAD_CHECK(false) << "unknown op family: " << name;
  return "";
}

std::string SessionGenerator::RealizeRare(util::Rng* rng) const {
  if (rare_families_.empty()) return "";
  const OpFamily& family =
      spec_.families[rare_families_[rng->UniformU64(rare_families_.size())]];
  return RealizeFamily(family, rng);
}

std::string SessionGenerator::RealizeInjection(util::Rng* rng) const {
  const std::vector<int>* pool = nullptr;
  if (!rare_delete_families_.empty()) {
    pool = &rare_delete_families_;
  } else if (!rare_families_.empty()) {
    pool = &rare_families_;
  } else if (!delete_families_.empty()) {
    pool = &delete_families_;
  }
  if (pool == nullptr) return RealizeAny(rng);
  const OpFamily& family =
      spec_.families[(*pool)[rng->UniformU64(pool->size())]];
  return RealizeFamily(family, rng);
}

}  // namespace ucad::workload
